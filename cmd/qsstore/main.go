// Command qsstore creates and inspects QuickStore database volumes.
//
// Usage:
//
//	qsstore create     -db path.vol
//	qsstore info       -db path.vol
//	qsstore verify     -db path.vol
//	qsstore stats      -db path.vol
//	qsstore serve      -db path.vol -listen host:port
//	qsstore crashdrill [-point name] [-seeds n] [-seed n] [-hit n] [-short] [-torn] [-dir path]
//
// serve opens the volume (running restart recovery if the log demands it)
// and exposes the page server over TCP: each accepted connection speaks the
// multiplexed framed protocol, so one socket can carry many pipelined
// client sessions ("oo7bench -addr" is the matching load generator). The
// process serves until killed; committed state is durable via the WAL, so
// no orderly shutdown is required.
//
// info prints the volume geometry and the log summary; verify walks every
// header-bearing page checking slotted-page invariants and, for QuickStore
// data pages, the meta-object and its mapping/bitmap references; stats
// opens the store and prints the page server's statistics snapshot
// (OpStats), including the prefetch service and group-commit counters.
//
// crashdrill runs the deterministic fault-injection drill (DESIGN.md §9)
// on scratch volumes: seeded update workloads killed at named crash
// points, restarted, and checked against the recovery invariants. With no
// -point it sweeps every named point; with -point it runs one drill and
// prints its report. The exit status is non-zero if any invariant broke.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/harness"
	"quickstore/internal/page"
	"quickstore/internal/wal"
	"quickstore/quickstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	db := fs.String("db", "", "database volume path")
	point := fs.String("point", "", "crashdrill: crash point to arm (default: sweep all)")
	seed := fs.Int64("seed", 1, "crashdrill: base workload/fault seed")
	seeds := fs.Int("seeds", 4, "crashdrill: seeds per configuration in sweep mode")
	hitN := fs.Int("hit", 1, "crashdrill: fire the crash on the n-th hit of the point")
	short := fs.Bool("short", false, "crashdrill: crashing log flush keeps only a prefix")
	torn := fs.Bool("torn", false, "crashdrill: sub-page torn page writes (detection mode)")
	dir := fs.String("dir", "", "crashdrill: scratch directory (default: temp)")
	listen := fs.String("listen", "127.0.0.1:7707", "serve: TCP address to listen on")
	fs.Parse(os.Args[2:])
	if *db == "" && cmd != "crashdrill" {
		fmt.Fprintln(os.Stderr, "qsstore: -db is required")
		os.Exit(2)
	}
	var err error
	switch cmd {
	case "create":
		err = createStore(*db)
	case "info":
		err = info(*db)
	case "verify":
		err = verify(*db)
	case "stats":
		err = stats(*db)
	case "serve":
		err = serve(*db, *listen)
	case "crashdrill":
		err = crashdrill(*point, *seed, *seeds, *hitN, *short, *torn, *dir)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qsstore create|info|verify|stats -db <path>")
	fmt.Fprintln(os.Stderr, "       qsstore serve -db <path> [-listen host:port]")
	fmt.Fprintln(os.Stderr, "       qsstore crashdrill [-point name] [-seeds n] [-seed n] [-hit n] [-short] [-torn] [-dir path]")
	os.Exit(2)
}

// serve exposes a file-backed page server over TCP. Recovery runs at open
// (esm.OpenServer replays the log), then every accepted connection is
// multiplexed: requests from any number of pipelined sessions are dispatched
// to bounded per-connection workers and responses stream back coalesced.
func serve(path, listen string) error {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	logf, err := wal.OpenFileLog(path + ".log")
	if err != nil {
		return err
	}
	defer logf.Close()
	srv, err := esm.OpenServer(vol, logf, esm.ServerConfig{})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s on %s\n", path, ln.Addr())
	esm.Serve(ln, srv)
	return nil
}

// crashdrill runs one drill (with -point) or sweeps the full crash-point
// catalogue, reporting every recovery-invariant violation.
func crashdrill(point string, seed int64, seeds, hitN int, short, torn bool, dir string) error {
	run := func(opts harness.DrillOpts) (*harness.DrillReport, error) {
		scratch, err := os.MkdirTemp(dir, "qsdrill-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(scratch)
		opts.Dir = scratch
		return harness.RunCrashDrill(opts)
	}

	if point != "" {
		rep, err := run(harness.DrillOpts{
			Seed: seed, Point: point, HitN: hitN,
			ShortFlush: short, TornWrite: torn, AbortEvery: 3,
		})
		if err != nil {
			return err
		}
		fmt.Printf("point:      %s (hit %d, seed %d)\n", point, hitN, seed)
		fmt.Printf("crashed:    %v\n", rep.Crashed)
		fmt.Printf("committed:  %d transactions, %d aborted, in-doubt=%v\n",
			rep.Committed, rep.Aborted, rep.InDoubt)
		if len(rep.Trace) > 0 {
			fmt.Printf("trace:      %v\n", rep.Trace)
		}
		for _, v := range rep.Violations {
			fmt.Printf("VIOLATION:  %s\n", v)
		}
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d recovery invariants violated", len(rep.Violations))
		}
		fmt.Println("all recovery invariants held")
		return nil
	}

	points := append([]string{""}, faultinject.AllPoints()...)
	runs, crashes, violations := 0, 0, 0
	for _, pt := range points {
		for _, hit := range []int{1, 3} {
			for s := int64(0); s < int64(seeds); s++ {
				rep, err := run(harness.DrillOpts{
					Seed: seed + s*997 + int64(hit), Point: pt, HitN: hit,
					ShortFlush: short, TornWrite: torn, AbortEvery: 3,
					Transient: int(s%2) * 2,
				})
				if err != nil {
					return err
				}
				runs++
				if rep.Crashed {
					crashes++
				}
				for _, v := range rep.Violations {
					violations++
					name := pt
					if name == "" {
						name = "(no crash)"
					}
					fmt.Printf("VIOLATION [%s hit=%d seed=%d]: %s\n", name, hit, seed+s*997+int64(hit), v)
				}
			}
		}
	}
	fmt.Printf("crash drill: %d runs, %d crashed, %d violations\n", runs, crashes, violations)
	if violations > 0 {
		return fmt.Errorf("%d recovery invariants violated", violations)
	}
	return nil
}

func createStore(path string) error {
	st, err := quickstore.Create(path, quickstore.Options{})
	if err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("created empty store at %s (log at %s.log)\n", path, path)
	return nil
}

func info(path string) error {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	fmt.Printf("volume:      %s\n", path)
	fmt.Printf("pages:       %d (%.1f MB)\n", vol.NumPages(),
		float64(vol.NumPages())*disk.PageSize/(1<<20))
	fmt.Printf("allocated:   %d data pages\n", vol.AllocatedPages())
	logf, err := wal.OpenFileLog(path + ".log")
	if err != nil {
		return err
	}
	defer logf.Close()
	var byType [8]int64
	_ = logf.Iterate(func(r wal.Record) bool {
		if int(r.Type) < len(byType) {
			byType[r.Type]++
		}
		return true
	})
	fmt.Printf("log:         %d records, %d bytes\n", logf.Records(), logf.Bytes())
	fmt.Printf("  begins=%d updates=%d commits=%d aborts=%d clrs=%d\n",
		byType[wal.RecBegin], byType[wal.RecUpdate], byType[wal.RecCommit],
		byType[wal.RecAbort], byType[wal.RecCLR])
	return nil
}

// stats opens the store (running restart recovery if the log demands it)
// and prints the server's OpStats snapshot, with the prefetch hit/wasted
// ratio an operator tuning the prefetcher needs.
func stats(path string) error {
	st, err := quickstore.Open(path, quickstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	ss, err := st.ServerStats()
	if err != nil {
		return err
	}
	fmt.Printf("server buffer:  %d/%d pages resident\n", ss.Resident, ss.BufferPages)
	fmt.Printf("pool:           %d hits, %d misses, %d evicted", ss.PoolHits, ss.PoolMisses, ss.PoolEvicted)
	if total := ss.PoolHits + ss.PoolMisses; total > 0 {
		fmt.Printf(" (%.1f%% hit rate)", 100*float64(ss.PoolHits)/float64(total))
	}
	fmt.Println()
	fmt.Printf("volume:         %d allocated data pages\n", ss.AllocatedPages)
	fmt.Printf("log:            %d records, %d bytes\n", ss.LogRecords, ss.LogBytes)
	fmt.Printf("disk:           %d reads, %d writes\n", ss.DiskReads, ss.DiskWrites)
	fmt.Printf("prefetch:       %d pages served in batches, %d background disk reads\n",
		ss.PrefetchPages, ss.PrefetchReads)
	fmt.Printf("commit:         %d commits, %d log forces, %d piggybacked", ss.Commits, ss.LogForces, ss.LogPiggybacks)
	if ss.Commits > 0 {
		fmt.Printf(" (%.2f forces/commit)", float64(ss.LogForces)/float64(ss.Commits))
	}
	fmt.Println()

	cs := st.Stats()
	fmt.Printf("session:        %d prefetches issued, %d hits, %d wasted", cs.PrefetchIssued, cs.PrefetchHits, cs.PrefetchWasted)
	if cs.PrefetchIssued > 0 {
		fmt.Printf(" (%.1f%% hit, %.1f%% wasted)",
			100*float64(cs.PrefetchHits)/float64(cs.PrefetchIssued),
			100*float64(cs.PrefetchWasted)/float64(cs.PrefetchIssued))
	}
	fmt.Println()
	return nil
}

func verify(path string) error {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	buf := make([]byte, disk.PageSize)
	var slotted, btree, other, objects, badPages int
	for pid := disk.PageID(2); uint32(pid) < vol.NumPages(); pid++ {
		if err := vol.ReadPage(pid, buf); err != nil {
			return err
		}
		p := page.MustWrap(buf)
		switch p.Type() {
		case page.TypeSlotted:
			slotted++
			ok := true
			p.LiveObjects(func(slot, off int, data []byte) bool {
				if off < page.HeaderSize || off+len(data) > disk.PageSize {
					ok = false
					return false
				}
				objects++
				return true
			})
			if !ok {
				badPages++
				fmt.Printf("page %d: object out of bounds\n", pid)
			}
		case page.TypeBTree:
			btree++
		default:
			other++ // raw large-object data, free, or catalog pages
		}
	}
	fmt.Printf("verified %d pages: %d slotted (%d live objects), %d btree, %d other, %d bad\n",
		slotted+btree+other, slotted, objects, btree, other, badPages)
	if badPages > 0 {
		return fmt.Errorf("%d corrupt pages", badPages)
	}
	return nil
}
