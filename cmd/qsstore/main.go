// Command qsstore creates and inspects QuickStore database volumes.
//
// Usage:
//
//	qsstore create     -db path.vol
//	qsstore info       -db path.vol
//	qsstore verify     -db path.vol
//	qsstore stats      -db path.vol | -addr host:port | -shard-map spec
//	qsstore serve      -db path.vol -listen host:port [-node-id name [-replica-of host:port] [-quorum n]]
//	                   [-shard-id n -shard-map spec [-resolve-every d]]
//	qsstore crashdrill [-repl|-shards] [-point name] [-victim coord|participant]
//	                   [-seeds n] [-seed n] [-hit n] [-short] [-torn] [-dir path]
//	qsstore replbench  [-out path]
//
// serve opens the volume (running restart recovery if the log demands it)
// and exposes the page server over TCP: each accepted connection speaks the
// multiplexed framed protocol, so one socket can carry many pipelined
// client sessions ("oo7bench -addr" is the matching load generator). The
// process serves until killed; committed state is durable via the WAL, so
// no orderly shutdown is required.
//
// With -shard-id and -shard-map the server serves one shard of a
// horizontally partitioned cluster (DESIGN.md §16). The shard map — a
// comma-separated endpoint list, one entry per shard, identical on every
// node and client — is the single source of routing truth; clients route
// through it with "shard.Dial". Each shard is an ordinary page server in
// its own local id space, so sharding composes with replication: a map
// entry may be a "|"-separated replica group. The process also runs the
// presumed-abort resolution sweep every -resolve-every (default 15s),
// settling transactions left in doubt by a coordinator or client crash.
//
// With -node-id the server joins a replication cluster (DESIGN.md §14).
// Without -replica-of it serves as the leader: commits are acked only
// after a quorum of replicas (-quorum; 0 = majority) holds them durable.
// With -replica-of it serves as a follower: it registers with the leader,
// receives the shipped log (snapshot first if it is behind the leader's
// truncation point), and campaigns for the leadership if the leader goes
// silent. -listen doubles as the node's advertised address, so it must be
// a host:port the other nodes can dial.
//
// info prints the volume geometry and the log summary; verify walks every
// header-bearing page checking slotted-page invariants and, for QuickStore
// data pages, the meta-object and its mapping/bitmap references; stats
// opens the store and prints the page server's statistics snapshot
// (OpStats), including the prefetch service, group-commit, and — when the
// server is a replication leader — quorum-commit and election counters.
// With -addr it queries a running server over TCP instead of opening a
// local volume, which is how cluster replication lag is observed live.
//
// crashdrill runs the deterministic fault-injection drill (DESIGN.md §9)
// on scratch volumes: seeded update workloads killed at named crash
// points, restarted, and checked against the recovery invariants. With no
// -point it sweeps every named point; with -point it runs one drill and
// prints its report. The exit status is non-zero if any invariant broke.
// With -repl the drill runs against a 3-node replication cluster instead
// (DESIGN.md §14): the leader is killed at the armed point, a follower is
// elected, and every quorum-acked commit must survive the failover.
// With -shards it runs the sharded 2PC drill (DESIGN.md §16): a two-shard
// cluster whose coordinator or participant (-victim) is killed at a 2PC
// crash point (-point; default: the full victim x point matrix), both
// shards restarted and swept, and every cross-shard transaction checked
// for atomicity — committed on both shards or neither, never mixed.
//
// replbench measures quorum-commit throughput against a single-node
// baseline at 1, 2, and 4 sessions and writes the sweep to
// BENCH_repl.json; it exits non-zero if replication costs more than half
// the baseline throughput at any point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/harness"
	"quickstore/internal/page"
	"quickstore/internal/repl"
	"quickstore/internal/shard"
	"quickstore/internal/wal"
	"quickstore/quickstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	db := fs.String("db", "", "database volume path")
	point := fs.String("point", "", "crashdrill: crash point to arm (default: sweep all)")
	seed := fs.Int64("seed", 1, "crashdrill: base workload/fault seed")
	seeds := fs.Int("seeds", 4, "crashdrill: seeds per configuration in sweep mode")
	hitN := fs.Int("hit", 1, "crashdrill: fire the crash on the n-th hit of the point")
	short := fs.Bool("short", false, "crashdrill: crashing log flush keeps only a prefix")
	torn := fs.Bool("torn", false, "crashdrill: sub-page torn page writes (detection mode)")
	dir := fs.String("dir", "", "crashdrill: scratch directory (default: temp)")
	replDrillFlag := fs.Bool("repl", false, "crashdrill: drill a 3-node replication cluster (leader kill + failover)")
	listen := fs.String("listen", "127.0.0.1:7707", "serve: TCP address to listen on (and advertise to cluster peers)")
	nodeID := fs.String("node-id", "", "serve: join a replication cluster under this node name")
	replicaOf := fs.String("replica-of", "", "serve: follow the leader at this address (requires -node-id)")
	quorum := fs.Int("quorum", 0, "serve: replicas that must hold a commit durable before ack (0 = majority)")
	addr := fs.String("addr", "", "stats: query a running server at host:port instead of opening -db")
	out := fs.String("out", "BENCH_repl.json", "replbench: output path for the sweep")
	shardID := fs.Int("shard-id", -1, "serve: serve this shard of the -shard-map cluster")
	shardMap := fs.String("shard-map", "", "serve/stats: comma-separated shard endpoint list (entries may be addr|addr|addr replica groups)")
	resolveEvery := fs.Duration("resolve-every", 15*time.Second, "serve: period of the in-doubt resolution sweep in sharded mode")
	victim := fs.String("victim", "", "crashdrill -shards: which shard dies, coord or participant (default: both in a matrix)")
	shardDrillFlag := fs.Bool("shards", false, "crashdrill: drill a 2-shard 2PC cluster (coordinator/participant kill + resolution sweep)")
	fs.Parse(os.Args[2:])
	if *db == "" && *addr == "" && *shardMap == "" && cmd != "crashdrill" && cmd != "replbench" {
		fmt.Fprintln(os.Stderr, "qsstore: -db is required")
		os.Exit(2)
	}
	var err error
	switch cmd {
	case "create":
		err = createStore(*db)
	case "info":
		err = info(*db)
	case "verify":
		err = verify(*db)
	case "stats":
		err = stats(*db, *addr, *shardMap)
	case "serve":
		err = serve(*db, *listen, *nodeID, *replicaOf, *quorum, *shardMap, *shardID, *resolveEvery)
	case "crashdrill":
		if *shardDrillFlag {
			err = shardDrill(*point, *victim, *seed, *hitN, *dir)
		} else if *replDrillFlag {
			err = replDrill(*point, *seed, *seeds, *hitN)
		} else {
			err = crashdrill(*point, *seed, *seeds, *hitN, *short, *torn, *dir)
		}
	case "replbench":
		err = replBench(*out)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qsstore create|info|verify|stats -db <path>")
	fmt.Fprintln(os.Stderr, "       qsstore stats -addr host:port | -shard-map spec")
	fmt.Fprintln(os.Stderr, "       qsstore serve -db <path> [-listen host:port] [-node-id name [-replica-of host:port] [-quorum n]]")
	fmt.Fprintln(os.Stderr, "                     [-shard-id n -shard-map spec [-resolve-every d]]")
	fmt.Fprintln(os.Stderr, "       qsstore crashdrill [-repl|-shards] [-point name] [-victim coord|participant] [-seeds n] [-seed n] [-hit n] [-short] [-torn] [-dir path]")
	fmt.Fprintln(os.Stderr, "       qsstore replbench [-out path]")
	os.Exit(2)
}

// serve exposes a file-backed page server over TCP. Recovery runs at open
// (esm.OpenServer replays the log), then every accepted connection is
// multiplexed: requests from any number of pipelined sessions are dispatched
// to bounded per-connection workers and responses stream back coalesced.
//
// With a node ID the listener fronts a replication node instead of the bare
// server: a leader acks commits only after quorum, a follower consumes the
// shipped log and stands for election if the leader goes silent. The same
// listener keeps serving across a promotion — repl.Node swaps the inner
// server underneath it.
func serve(path, listen, nodeID, replicaOf string, quorum int, shardSpec string, shardID int, resolveEvery time.Duration) error {
	if replicaOf != "" && nodeID == "" {
		return fmt.Errorf("-replica-of requires -node-id")
	}
	if shardSpec != "" {
		m, err := shard.ParseMap(shardSpec)
		if err != nil {
			return err
		}
		if shardID < 0 || shardID >= m.NumShards() {
			return fmt.Errorf("-shard-id %d outside the %d-shard map (required with -shard-map)", shardID, m.NumShards())
		}
		fmt.Printf("serving shard %d of %d (presumed-abort resolver sweeps every %v)\n", shardID, m.NumShards(), resolveEvery)
		go shardResolver(m, resolveEvery)
	} else if shardID >= 0 {
		return fmt.Errorf("-shard-id requires -shard-map")
	}
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	logf, err := wal.OpenFileLog(path + ".log")
	if err != nil {
		return err
	}
	defer logf.Close()
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}

	if nodeID == "" {
		srv, err := esm.OpenServer(vol, logf, esm.ServerConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("serving %s on %s\n", path, ln.Addr())
		esm.Serve(ln, srv)
		return nil
	}

	cfg := repl.Config{
		ID:              nodeID,
		Addr:            listen,
		Quorum:          quorum,
		ElectionTimeout: 2 * time.Second,
		Dial: func(addr string) (esm.Transport, error) {
			return esm.DialTCPTimeout(addr, 5*time.Second)
		},
	}
	var node *repl.Node
	if replicaOf == "" {
		srv, err := esm.OpenServer(vol, logf, esm.ServerConfig{})
		if err != nil {
			return err
		}
		node = repl.NewLeader(srv, cfg)
		fmt.Printf("serving %s on %s as replication leader %q (quorum %d; 0 = majority)\n",
			path, ln.Addr(), nodeID, quorum)
	} else {
		// The follower's volume and log start from whatever state they
		// hold; the leader ships the delta, or a full snapshot if the
		// follower is behind the leader's log truncation point.
		node = repl.NewFollower(vol, logf, cfg)
		fmt.Printf("serving %s on %s as follower %q of %s\n", path, ln.Addr(), nodeID, replicaOf)
		go registerWithLeader(node, replicaOf, cfg.Dial)
	}
	defer node.Close()
	esm.Serve(ln, node)
	return nil
}

// shardResolver periodically sweeps the whole sharded cluster for
// transactions left in doubt by a coordinator or client crash, resolving
// each against its coordinator's log under presumed abort. Every shard
// server runs the sweep — it is idempotent, and a round is skipped
// whenever some shard is unreachable (resolution needs the coordinator's
// answer, so a partial cluster cannot settle anything anyway).
func shardResolver(m shard.Map, every time.Duration) {
	dial := func(addr string) (esm.Transport, error) {
		return esm.DialTCPTimeout(addr, 5*time.Second)
	}
	for {
		time.Sleep(every)
		trs, err := m.DialTransports(dial)
		if err != nil {
			continue
		}
		out, err := shard.ResolveAll(trs)
		for _, tr := range trs {
			_ = tr.Close()
		}
		if err != nil {
			continue
		}
		if out.Committed+out.Aborted+out.Forgotten > 0 {
			fmt.Printf("resolver: %d in doubt -> %d committed, %d aborted, %d decisions forgotten, %d pending\n",
				out.InDoubt, out.Committed, out.Aborted, out.Forgotten, out.Pending)
		}
	}
}

// statsShards prints each shard's statistics snapshot plus the
// cluster-wide aggregate, all through the Router — per the no-plain-access
// rule, CallShard is the sanctioned per-shard observability path.
func statsShards(spec string) error {
	m, err := shard.ParseMap(spec)
	if err != nil {
		return err
	}
	r, err := shard.Dial(m, func(addr string) (esm.Transport, error) {
		return esm.DialTCPTimeout(addr, 5*time.Second)
	}, shard.Config{})
	if err != nil {
		return err
	}
	defer r.Close()
	for i := 0; i < r.NumShards(); i++ {
		resp, err := r.CallShard(i, &esm.Request{Op: esm.OpStats})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if resp.Err != "" {
			return fmt.Errorf("shard %d: %s", i, resp.Err)
		}
		var ss esm.ServerStats
		if err := json.Unmarshal(resp.Data, &ss); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		fmt.Printf("=== shard %d/%d ===\n", i, r.NumShards())
		printServerStats(&ss)
	}
	resp, err := r.Call(&esm.Request{Op: esm.OpStats})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("%s", resp.Err)
	}
	var agg esm.ServerStats
	if err := json.Unmarshal(resp.Data, &agg); err != nil {
		return err
	}
	fmt.Printf("=== cluster (%d shards, summed) ===\n", r.NumShards())
	printServerStats(&agg)
	return nil
}

// shardDrill runs the sharded 2PC crash drill: one cell with -point or
// -victim, the full victim x point kill matrix otherwise.
func shardDrill(point, victim string, seed int64, hitN int, dir string) error {
	scratch, err := os.MkdirTemp(dir, "qssharddrill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	printReport := func(rep *harness.ShardDrillReport) {
		pt := rep.Point
		if pt == "" {
			pt = "(quiescent kill)"
		}
		fmt.Printf("victim:     %s at %s (seed %d)\n", rep.Victim, pt, seed)
		fmt.Printf("crashed:    %v\n", rep.Crashed)
		fmt.Printf("committed:  %d cross-shard transactions, in-doubt=%v\n", rep.Committed, rep.InDoubt)
		fmt.Printf("resolved:   %d in doubt -> %d committed, %d aborted, %d pending\n",
			rep.Resolved.InDoubt, rep.Resolved.Committed, rep.Resolved.Aborted, rep.Resolved.Pending)
		if len(rep.Trace) > 0 {
			fmt.Printf("trace:      %v\n", rep.Trace)
		}
		for _, v := range rep.Violations {
			fmt.Printf("VIOLATION:  %s\n", v)
		}
	}

	if point != "" || victim != "" {
		if victim == "" {
			victim = "coord"
		}
		rep, err := harness.RunShardDrill(harness.ShardDrillOpts{
			Seed: seed, Victim: victim, Point: point, HitN: hitN, Dir: scratch,
		})
		if err != nil {
			return err
		}
		printReport(rep)
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d cross-shard invariants violated", len(rep.Violations))
		}
		fmt.Println("all cross-shard invariants held")
		return nil
	}

	reps, err := harness.RunShardDrillMatrix(seed, scratch)
	if err != nil {
		return err
	}
	crashes, violations := 0, 0
	for _, rep := range reps {
		if rep.Crashed {
			crashes++
		}
		for _, v := range rep.Violations {
			violations++
			fmt.Printf("VIOLATION [victim=%s point=%s]: %s\n", rep.Victim, rep.Point, v)
		}
	}
	fmt.Printf("sharded crash drill: %d cells, %d crashed at armed points, %d violations\n",
		len(reps), crashes, violations)
	if violations > 0 {
		return fmt.Errorf("%d cross-shard invariants violated", violations)
	}
	return nil
}

// registerWithLeader announces a follower to the leader, retrying until it
// answers: cluster nodes are typically started in arbitrary order, so the
// leader may not be up yet. The leader dials back the follower's advertised
// address and starts shipping.
func registerWithLeader(node *repl.Node, leaderAddr string, dial func(string) (esm.Transport, error)) {
	for attempt := 1; ; attempt++ {
		tr, err := dial(leaderAddr)
		if err == nil {
			err = node.RegisterWith(tr)
			_ = tr.Close()
			if err == nil {
				fmt.Printf("registered with leader at %s\n", leaderAddr)
				return
			}
		}
		if attempt == 1 || attempt%15 == 0 {
			fmt.Printf("leader at %s not answering (%v); retrying\n", leaderAddr, err)
		}
		time.Sleep(2 * time.Second)
	}
}

// crashdrill runs one drill (with -point) or sweeps the full crash-point
// catalogue, reporting every recovery-invariant violation.
func crashdrill(point string, seed int64, seeds, hitN int, short, torn bool, dir string) error {
	run := func(opts harness.DrillOpts) (*harness.DrillReport, error) {
		scratch, err := os.MkdirTemp(dir, "qsdrill-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(scratch)
		opts.Dir = scratch
		return harness.RunCrashDrill(opts)
	}

	if point != "" {
		rep, err := run(harness.DrillOpts{
			Seed: seed, Point: point, HitN: hitN,
			ShortFlush: short, TornWrite: torn, AbortEvery: 3,
		})
		if err != nil {
			return err
		}
		fmt.Printf("point:      %s (hit %d, seed %d)\n", point, hitN, seed)
		fmt.Printf("crashed:    %v\n", rep.Crashed)
		fmt.Printf("committed:  %d transactions, %d aborted, in-doubt=%v\n",
			rep.Committed, rep.Aborted, rep.InDoubt)
		if len(rep.Trace) > 0 {
			fmt.Printf("trace:      %v\n", rep.Trace)
		}
		for _, v := range rep.Violations {
			fmt.Printf("VIOLATION:  %s\n", v)
		}
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d recovery invariants violated", len(rep.Violations))
		}
		fmt.Println("all recovery invariants held")
		return nil
	}

	points := append([]string{""}, faultinject.AllPoints()...)
	runs, crashes, violations := 0, 0, 0
	for _, pt := range points {
		for _, hit := range []int{1, 3} {
			for s := int64(0); s < int64(seeds); s++ {
				rep, err := run(harness.DrillOpts{
					Seed: seed + s*997 + int64(hit), Point: pt, HitN: hit,
					ShortFlush: short, TornWrite: torn, AbortEvery: 3,
					Transient: int(s%2) * 2,
				})
				if err != nil {
					return err
				}
				runs++
				if rep.Crashed {
					crashes++
				}
				for _, v := range rep.Violations {
					violations++
					name := pt
					if name == "" {
						name = "(no crash)"
					}
					fmt.Printf("VIOLATION [%s hit=%d seed=%d]: %s\n", name, hit, seed+s*997+int64(hit), v)
				}
			}
		}
	}
	fmt.Printf("crash drill: %d runs, %d crashed, %d violations\n", runs, crashes, violations)
	if violations > 0 {
		return fmt.Errorf("%d recovery invariants violated", violations)
	}
	return nil
}

// replDrill runs the replicated leader-kill drill (DESIGN.md §14): a
// 3-node in-memory cluster whose leader is killed at the armed crash point,
// after which a follower must win the election holding every quorum-acked
// commit. With no -point it sweeps the full crash-point catalogue.
func replDrill(point string, seed int64, seeds, hitN int) error {
	if point != "" {
		rep, err := harness.RunReplDrill(harness.ReplDrillOpts{Seed: seed, Point: point, HitN: hitN})
		if err != nil {
			return err
		}
		fmt.Printf("point:      %s (hit %d, seed %d)\n", point, hitN, seed)
		fmt.Printf("crashed:    %v (forced kill: %v)\n", rep.Crashed, rep.ForcedKill)
		fmt.Printf("committed:  %d quorum-acked transactions, in-doubt=%v\n", rep.Committed, rep.InDoubt)
		fmt.Printf("failover:   elected=%v leader=%q term=%d\n", rep.FailedOver, rep.NewLeader, rep.Term)
		if len(rep.Trace) > 0 {
			fmt.Printf("trace:      %v\n", rep.Trace)
		}
		for _, v := range rep.Violations {
			fmt.Printf("VIOLATION:  %s\n", v)
		}
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d replication invariants violated", len(rep.Violations))
		}
		fmt.Println("all replication invariants held")
		return nil
	}

	points := append([]string{""}, faultinject.AllPoints()...)
	runs, crashes, failovers, violations := 0, 0, 0, 0
	for _, pt := range points {
		for _, hit := range []int{1, 2} {
			if pt == "" && hit > 1 {
				continue // the quiescent kill has no point to re-hit
			}
			for s := int64(0); s < int64(seeds); s++ {
				rep, err := harness.RunReplDrill(harness.ReplDrillOpts{
					Seed: seed + s*997 + int64(hit), Point: pt, HitN: hit,
				})
				if err != nil {
					return err
				}
				runs++
				if rep.Crashed {
					crashes++
				}
				if rep.FailedOver {
					failovers++
				}
				for _, v := range rep.Violations {
					violations++
					name := pt
					if name == "" {
						name = "(quiescent kill)"
					}
					fmt.Printf("VIOLATION [%s hit=%d seed=%d]: %s\n", name, hit, seed+s*997+int64(hit), v)
				}
			}
		}
	}
	fmt.Printf("replicated crash drill: %d runs, %d crashed at armed points, %d failovers, %d violations\n",
		runs, crashes, failovers, violations)
	if violations > 0 {
		return fmt.Errorf("%d replication invariants violated", violations)
	}
	return nil
}

// replBench sweeps quorum-commit throughput against the single-node
// baseline and writes the result where CI archives it. The 2x acceptance
// floor is the replication design's budget: batched shipping and the
// piggybacked quorum wait must keep the protocol overhead within one
// doubling of the commit path.
func replBench(out string) error {
	rep, err := harness.RunReplBench(harness.ReplBenchOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %8s %12s %14s\n",
		"sessions", "single ops/s", "quorum ops/s", "ratio", "ship rounds", "quorum wait")
	bad := 0
	for _, p := range rep.Points {
		fmt.Printf("%-10d %14.0f %14.0f %8.2f %12d %12.1fms\n",
			p.Sessions, p.SingleOpsPerSec, p.QuorumOpsPerSec, p.Ratio, p.ShipRounds, p.QuorumWaitMs)
		if p.Ratio < 0.5 {
			bad++
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if bad > 0 {
		return fmt.Errorf("%d session counts fell below half the single-node throughput", bad)
	}
	return nil
}

func createStore(path string) error {
	st, err := quickstore.Create(path, quickstore.Options{})
	if err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("created empty store at %s (log at %s.log)\n", path, path)
	return nil
}

func info(path string) error {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	fmt.Printf("volume:      %s\n", path)
	fmt.Printf("pages:       %d (%.1f MB)\n", vol.NumPages(),
		float64(vol.NumPages())*disk.PageSize/(1<<20))
	fmt.Printf("allocated:   %d data pages\n", vol.AllocatedPages())
	logf, err := wal.OpenFileLog(path + ".log")
	if err != nil {
		return err
	}
	defer logf.Close()
	var byType [8]int64
	_ = logf.Iterate(func(r wal.Record) bool {
		if int(r.Type) < len(byType) {
			byType[r.Type]++
		}
		return true
	})
	fmt.Printf("log:         %d records, %d bytes\n", logf.Records(), logf.Bytes())
	fmt.Printf("  begins=%d updates=%d commits=%d aborts=%d clrs=%d\n",
		byType[wal.RecBegin], byType[wal.RecUpdate], byType[wal.RecCommit],
		byType[wal.RecAbort], byType[wal.RecCLR])
	return nil
}

// stats opens the store (running restart recovery if the log demands it)
// and prints the server's OpStats snapshot, with the prefetch hit/wasted
// ratio an operator tuning the prefetcher needs. With addr it queries a
// running server over TCP instead — the only way to see live replication
// state, since a local open never has a cluster attached.
func stats(path, addr, shardSpec string) error {
	if shardSpec != "" {
		return statsShards(shardSpec)
	}
	if addr != "" {
		return statsRemote(addr)
	}
	st, err := quickstore.Open(path, quickstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	ss, err := st.ServerStats()
	if err != nil {
		return err
	}
	printServerStats(ss)

	cs := st.Stats()
	fmt.Printf("session:        %d prefetches issued, %d hits, %d wasted", cs.PrefetchIssued, cs.PrefetchHits, cs.PrefetchWasted)
	if cs.PrefetchIssued > 0 {
		fmt.Printf(" (%.1f%% hit, %.1f%% wasted)",
			100*float64(cs.PrefetchHits)/float64(cs.PrefetchIssued),
			100*float64(cs.PrefetchWasted)/float64(cs.PrefetchIssued))
	}
	fmt.Println()
	return nil
}

// statsRemote fetches the OpStats snapshot from a running server. Pointing
// it at a replication follower reports the leader's address instead (the
// follower redirects client ops).
func statsRemote(addr string) error {
	tr, err := esm.DialTCPTimeout(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer tr.Close()
	resp, err := tr.Call(&esm.Request{Op: esm.OpStats})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("%s", resp.Err)
	}
	var ss esm.ServerStats
	if err := json.Unmarshal(resp.Data, &ss); err != nil {
		return err
	}
	printServerStats(&ss)
	return nil
}

func printServerStats(ss *esm.ServerStats) {
	fmt.Printf("server buffer:  %d/%d pages resident\n", ss.Resident, ss.BufferPages)
	fmt.Printf("pool:           %d hits, %d misses, %d evicted", ss.PoolHits, ss.PoolMisses, ss.PoolEvicted)
	if total := ss.PoolHits + ss.PoolMisses; total > 0 {
		fmt.Printf(" (%.1f%% hit rate)", 100*float64(ss.PoolHits)/float64(total))
	}
	fmt.Println()
	fmt.Printf("volume:         %d allocated data pages\n", ss.AllocatedPages)
	fmt.Printf("log:            %d records, %d bytes\n", ss.LogRecords, ss.LogBytes)
	fmt.Printf("disk:           %d reads, %d writes\n", ss.DiskReads, ss.DiskWrites)
	fmt.Printf("prefetch:       %d pages served in batches, %d background disk reads\n",
		ss.PrefetchPages, ss.PrefetchReads)
	fmt.Printf("commit:         %d commits, %d log forces, %d piggybacked", ss.Commits, ss.LogForces, ss.LogPiggybacks)
	if ss.Commits > 0 {
		fmt.Printf(" (%.2f forces/commit)", float64(ss.LogForces)/float64(ss.Commits))
	}
	fmt.Println()
	if r := ss.Repl; r != nil {
		fmt.Printf("replication:    %s, term %d, leader %q, %d followers, quorum %d\n",
			r.Role, r.Term, r.Leader, r.Followers, r.Quorum)
		fmt.Printf("  quorum:       %d commits gated, %.1fms total wait", r.QuorumCommits, float64(r.QuorumWaitNs)/1e6)
		if r.QuorumCommits > 0 {
			fmt.Printf(" (%.2fms/commit)", float64(r.QuorumWaitNs)/1e6/float64(r.QuorumCommits))
		}
		fmt.Println()
		fmt.Printf("  shipping:     %d rounds, %d bytes, %d snapshots\n", r.ShipRounds, r.ShipBytes, r.SnapshotsSent)
		fmt.Printf("  lag:          durable lsn %d, quorum lsn %d, laggiest follower %d bytes behind\n",
			r.DurableLSN, r.QuorumLSN, r.MaxFollowerGap)
		fmt.Printf("  elections:    %d\n", r.Elections)
	}
}

func verify(path string) error {
	vol, err := disk.OpenFileVolume(path)
	if err != nil {
		return err
	}
	defer vol.Close()
	buf := make([]byte, disk.PageSize)
	var slotted, btree, other, objects, badPages int
	for pid := disk.PageID(2); uint32(pid) < vol.NumPages(); pid++ {
		if err := vol.ReadPage(pid, buf); err != nil {
			return err
		}
		p := page.MustWrap(buf)
		switch p.Type() {
		case page.TypeSlotted:
			slotted++
			ok := true
			p.LiveObjects(func(slot, off int, data []byte) bool {
				if off < page.HeaderSize || off+len(data) > disk.PageSize {
					ok = false
					return false
				}
				objects++
				return true
			})
			if !ok {
				badPages++
				fmt.Printf("page %d: object out of bounds\n", pid)
			}
		case page.TypeBTree:
			btree++
		default:
			other++ // raw large-object data, free, or catalog pages
		}
	}
	fmt.Printf("verified %d pages: %d slotted (%d live objects), %d btree, %d other, %d bad\n",
		slotted+btree+other, slotted, objects, btree, other, badPages)
	if badPages > 0 {
		return fmt.Errorf("%d corrupt pages", badPages)
	}
	return nil
}
