// Command oo7bench regenerates every table and figure of the QuickStore
// paper's evaluation (SIGMOD 1994): it builds the OO7 databases for
// QuickStore, E, and QS-B, runs the traversal and query workloads cold and
// hot, and prints the paper-style tables.
//
// Usage:
//
//	oo7bench [-exp all|table2|fig8|fig9|table5|table6|fig10|fig11|fig12|
//	          fig13|table7|fig14|fig15|fig16|fig17|ablations|extras|verify]
//	          [-medium] [-list]
//
// "-exp verify" asserts the paper's headline shape claims programmatically
// (one PASS/FAIL line each) and exits nonzero if any fails; it requires the
// full small-database scale and is not part of "all".
//
// Times are deterministic simulated milliseconds from the calibrated 1994
// cost model (see internal/sim); I/O counts, fault counts, and log volumes
// are measured for real. Absolute values are not expected to match the
// paper; shapes (who wins, by what factor, where the crossovers fall) are.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quickstore/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
	medium := flag.Bool("medium", false, "also build and measure the medium OO7 database (slower)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range harness.ExperimentNames {
			fmt.Println(n)
		}
		return
	}
	suite := harness.NewSuite(os.Stdout, *medium)
	names := strings.Split(*exp, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if err := suite.Run(names); err != nil {
		fmt.Fprintln(os.Stderr, "oo7bench:", err)
		os.Exit(1)
	}
}
