// Command oo7bench regenerates every table and figure of the QuickStore
// paper's evaluation (SIGMOD 1994): it builds the OO7 databases for
// QuickStore, E, and QS-B, runs the traversal and query workloads cold and
// hot, and prints the paper-style tables.
//
// Usage:
//
//	oo7bench [-exp all|table2|fig8|fig9|table5|table6|fig10|fig11|fig12|
//	          fig13|table7|fig14|fig15|fig16|fig17|ablations|extras|verify|
//	          prefetch|concurrency]
//	          [-medium] [-list] [-json] [-clients N] [-net] [-addr host:port]
//	          [-snapshot N] [-shards N]
//
// "-exp verify" asserts the paper's headline shape claims programmatically
// (one PASS/FAIL line each) and exits nonzero if any fails; it requires the
// full small-database scale and is not part of "all". "-exp prefetch"
// measures the mapping-object prefetch extension (off in every paper table)
// and is likewise not part of "all".
//
// "-clients N" runs only the multi-client concurrency bench: a wall-clock
// sweep of 1..N concurrent sessions against one page server, against a
// big-lock baseline, with group-commit force counts. Its table is always
// written to BENCH_concurrency.json. ("-exp concurrency" runs the same
// bench at the default 8 clients, and is not part of "all" because its
// wall-clock numbers are nondeterministic.)
//
// "-net" runs the concurrency bench over TCP instead of in-process
// transports: all sessions of each point share ONE multiplexed pipelined
// connection, A/B'd against ONE serial lock-step connection. The table goes
// to BENCH_net.json. With "-addr host:port" the bench targets an external
// page server ("qsstore serve") instead of an in-process loopback one.
//
// "-snapshot" runs only the read-mostly MVCC sweep: reader sessions using
// lock-free snapshot reads A/B'd against the 2PL Shared-lock baseline,
// both racing concurrent writers. The table goes to BENCH_snapshot.json;
// the snapshot runs must show zero reader lock-manager grants.
//
// "-shards N" runs only the horizontal scale-out sweep (DESIGN.md §16): a
// fixed session count over 1, 2, ..., N page servers behind client-side
// shard routers, each point measured partitioned (one-phase commits only)
// and mixed (a fraction of cross-shard presumed-abort 2PC commits). The
// table goes to BENCH_shards.json; the run fails if a 4-shard point falls
// below 3x the single-shard throughput or any transaction is left
// unresolved.
//
// "-warm" runs only the warm-cache coherence bench (DESIGN.md §18): a
// reader session that keeps its buffer warm across transactions, with a
// concurrent writer mutating the shared database, A/B'd against the
// drop-and-refetch baseline. The table goes to BENCH_warmcache.json; the
// run fails if the coherent mode ships less than 5x fewer bytes on the
// wire, or if either mode ever observes a stale read.
//
// With -json, each experiment's tables are additionally written to
// BENCH_<exp>.json in the current directory, for tracking results across
// revisions.
//
// Times are deterministic simulated milliseconds from the calibrated 1994
// cost model (see internal/sim); I/O counts, fault counts, and log volumes
// are measured for real. Absolute values are not expected to match the
// paper; shapes (who wins, by what factor, where the crossovers fall) are.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"quickstore/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
	medium := flag.Bool("medium", false, "also build and measure the medium OO7 database (slower)")
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonOut := flag.Bool("json", false, "also write each experiment's tables to BENCH_<exp>.json")
	clients := flag.Int("clients", 0, "run only the concurrency bench, sweeping 1..N clients (writes BENCH_concurrency.json)")
	netMode := flag.Bool("net", false, "run the concurrency bench over TCP: shared mux connection vs lock-step baseline (writes BENCH_net.json)")
	addr := flag.String("addr", "", "with -net: benchmark an external page server at host:port instead of an in-process one")
	snapshot := flag.Int("snapshot", 0, "run only the snapshot-read sweep, 1..N reader sessions vs the locked baseline (writes BENCH_snapshot.json); N<0 uses the default 8")
	shards := flag.Int("shards", 0, "run only the horizontal scale-out sweep over 1..N shards (writes BENCH_shards.json); N<0 uses the default 4")
	warm := flag.Bool("warm", false, "run only the warm-cache coherence bench: LSN-validated reuse vs drop-and-refetch (writes BENCH_warmcache.json)")
	flag.Parse()

	if *list {
		for _, n := range harness.ExperimentNames {
			fmt.Println(n)
		}
		return
	}
	suite := harness.NewSuite(os.Stdout, *medium)
	if *warm {
		res, err := suite.WarmExp(harness.WarmCacheOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := writeJSON("warmcache", suite.TakeTables()); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := checkWarmGate(res); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards != 0 {
		opts := harness.ShardBenchOpts{}
		if *shards > 0 {
			opts.MaxShards = *shards
		}
		pts, err := suite.ShardExp(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := writeJSON("shards", suite.TakeTables()); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := checkShardGate(pts); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		return
	}
	if *snapshot != 0 {
		opts := harness.SnapshotBenchOpts{}
		if *snapshot > 0 {
			opts.MaxSessions = *snapshot
		}
		if err := suite.SnapshotExp(opts); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := writeJSON("snapshot", suite.TakeTables()); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		return
	}
	if *clients > 0 || *netMode || *addr != "" {
		opts := harness.ConcurrencyOpts{MaxClients: *clients, Net: *netMode, Addr: *addr}
		name := "concurrency"
		if opts.Net || opts.Addr != "" {
			name = "net"
		}
		if err := suite.ConcurrencyExp(opts); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := writeJSON(name, suite.TakeTables()); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		return
	}
	names := strings.Split(*exp, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if !*jsonOut {
		if err := suite.Run(names); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		return
	}
	// JSON mode runs experiments one at a time so each one's tables can be
	// attributed to its own BENCH_<exp>.json file.
	if len(names) == 1 && names[0] == "all" {
		names = harness.ExperimentNames
	}
	for _, name := range names {
		if err := suite.Run([]string{name}); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
		if err := writeJSON(name, suite.TakeTables()); err != nil {
			fmt.Fprintln(os.Stderr, "oo7bench:", err)
			os.Exit(1)
		}
	}
}

// checkShardGate enforces the scale-out acceptance floor: every point
// must drain its 2PC state completely, and a 4-shard point must deliver
// at least 3x the single-shard throughput.
func checkShardGate(pts []harness.ShardPoint) error {
	for _, p := range pts {
		if p.UnresolvedOrInDoubt != 0 {
			return fmt.Errorf("shards=%d left %d transactions unresolved or in doubt", p.Shards, p.UnresolvedOrInDoubt)
		}
		if p.Shards == 4 && p.Speedup < 3 {
			return fmt.Errorf("4-shard speedup %.2fx is below the 3x acceptance floor", p.Speedup)
		}
	}
	return nil
}

// checkWarmGate enforces the warm-cache acceptance floor: the coherent
// run must ship at least 5x fewer bytes than drop-and-refetch, and
// neither run may ever return a value older than the oracle's.
func checkWarmGate(res harness.WarmCacheResult) error {
	if res.Coherent.StaleReads != 0 || res.Baseline.StaleReads != 0 {
		return fmt.Errorf("warm-cache bench observed stale reads (coherent=%d refetch=%d)",
			res.Coherent.StaleReads, res.Baseline.StaleReads)
	}
	if res.Reduction < 5 {
		return fmt.Errorf("warm-cache byte reduction %.2fx is below the 5x acceptance floor", res.Reduction)
	}
	return nil
}

// benchFile is the on-disk schema of one BENCH_<exp>.json result.
type benchFile struct {
	Experiment string          `json:"experiment"`
	Tables     []harness.Table `json:"tables"`
}

func writeJSON(exp string, tables []harness.Table) error {
	if len(tables) == 0 {
		return nil // skipped (e.g. a medium experiment without -medium)
	}
	blob, err := json.MarshalIndent(benchFile{Experiment: exp, Tables: tables}, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", exp)
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
