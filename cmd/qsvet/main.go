// Command qsvet runs the project's static-analysis suite (internal/lint):
// the analyzers mechanically enforce the storage manager's concurrency
// and durability invariants — the documented lock order (path-sensitive,
// including divergent held-sets at merge points), the no-I/O-under-latches
// rule, release-on-every-path discipline, inferred per-field lock guards,
// atomic-access discipline, unchecked durability-critical errors, the
// crash-point registry, quorum-before-ack, and the 2PC force/decision
// ordering rules.
//
// Usage:
//
//	qsvet [-checks name,name] [-path prefix] [-json] [-list] [./... | module-dir]
//
// qsvet loads every non-test package of the module from source (pure
// go/ast + go/types; no compiled export data, no external tools), runs
// the analyzers, and prints one `file:line: [check] message` diagnostic
// per finding (-json emits the findings as a JSON array instead). -path
// keeps only findings under the given module-relative prefix — the CI
// self-lint step runs `qsvet -path internal/lint ./...`. Exit status: 0
// clean, 1 findings, 2 driver failure. A finding is suppressed by a
// `//qsvet:ignore check reason` directive on the flagged line or the line
// above it; a directive that suppresses nothing is itself reported (check
// `staleignore`) whenever the run included every check it names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"quickstore/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	pathPrefix := flag.String("path", "", "report only findings under this module-relative path prefix")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qsvet [-checks name,name] [-path prefix] [-json] [-list] [./... | module-dir]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if args := flag.Args(); len(args) > 0 {
		// `qsvet ./...` means "the whole module": everything else is a
		// module root directory. Multiple patterns collapse to the module.
		if args[0] != "./..." && args[0] != "..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	}

	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsvet:", err)
		os.Exit(2)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsvet:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(prog, selected)
	cwd, _ := os.Getwd()
	lint.RelativeTo(diags, cwd)
	if *pathPrefix != "" {
		kept := diags[:0]
		for _, d := range diags {
			if strings.HasPrefix(d.Pos.Filename, *pathPrefix) {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "qsvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the -json output shape: one object per diagnostic,
// stable field names for CI tooling.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if checks == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
