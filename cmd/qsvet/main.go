// Command qsvet runs the project's static-analysis suite (internal/lint):
// five analyzers that mechanically enforce the storage manager's
// concurrency and durability invariants — the documented lock order,
// the no-I/O-under-latches rule, atomic-access discipline, unchecked
// durability-critical errors, and the crash-point registry.
//
// Usage:
//
//	qsvet [-checks name,name] [-list] [./... | module-dir]
//
// qsvet loads every non-test package of the module from source (pure
// go/ast + go/types; no compiled export data, no external tools), runs
// the analyzers, and prints one `file:line: [check] message` diagnostic
// per finding. Exit status: 0 clean, 1 findings, 2 driver failure.
// A finding is suppressed by a `//qsvet:ignore check reason` directive on
// the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quickstore/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qsvet [-checks name,name] [-list] [./... | module-dir]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if args := flag.Args(); len(args) > 0 {
		// `qsvet ./...` means "the whole module": everything else is a
		// module root directory. Multiple patterns collapse to the module.
		if args[0] != "./..." && args[0] != "..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	}

	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsvet:", err)
		os.Exit(2)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsvet:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(prog, selected)
	cwd, _ := os.Getwd()
	lint.RelativeTo(diags, cwd)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if checks == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
