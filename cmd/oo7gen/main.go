// Command oo7gen generates an OO7 benchmark database into a file-backed
// volume, for one of the three systems under test.
//
// Usage:
//
//	oo7gen -out db.vol [-system QS|E|QS-B] [-size tiny|small|medium]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/epvm"
	"quickstore/internal/esm"
	"quickstore/internal/oo7"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

func main() {
	out := flag.String("out", "", "output volume path (log goes to <out>.log)")
	system := flag.String("system", "QS", "system: QS, E, or QS-B")
	size := flag.String("size", "small", "database size: tiny, small, or medium")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "oo7gen: -out is required")
		os.Exit(2)
	}
	var params oo7.Params
	switch *size {
	case "tiny":
		params = oo7.Tiny()
	case "small":
		params = oo7.Small()
	case "medium":
		params = oo7.Medium()
	default:
		fmt.Fprintf(os.Stderr, "oo7gen: unknown size %q\n", *size)
		os.Exit(2)
	}
	if err := generate(*out, *system, params); err != nil {
		fmt.Fprintln(os.Stderr, "oo7gen:", err)
		os.Exit(1)
	}
}

func generate(out, system string, params oo7.Params) error {
	vol, err := disk.CreateFileVolume(out)
	if err != nil {
		return err
	}
	logf, err := wal.CreateFileLog(out + ".log")
	if err != nil {
		return err
	}
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(vol, logf, esm.ServerConfig{Clock: clock})
	if err != nil {
		return err
	}
	client := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{Clock: clock})
	var db oo7.DB
	switch system {
	case "QS", "QS-B":
		s, err := core.New(client, core.Config{BulkLoad: true})
		if err != nil {
			return err
		}
		db = oo7.NewQS(s, system == "QS-B")
	case "E":
		s, err := epvm.New(client, epvm.Config{BulkLoad: true})
		if err != nil {
			return err
		}
		db = oo7.NewE(s)
	default:
		return fmt.Errorf("unknown system %q (QS, E, QS-B)", system)
	}
	start := time.Now()
	if err := oo7.Generate(db, params); err != nil {
		return err
	}
	if err := srv.Checkpoint(); err != nil {
		return err
	}
	mb := float64(vol.AllocatedPages()) * disk.PageSize / (1 << 20)
	fmt.Printf("generated %s %s OO7 database: %.1f MB (%d pages, %d atomic parts) in %v\n",
		system, flagSizeName(params), mb, vol.AllocatedPages(), params.NumAtomicParts(),
		time.Since(start).Round(time.Millisecond))
	if err := logf.Close(); err != nil {
		return err
	}
	return vol.Close()
}

func flagSizeName(p oo7.Params) string {
	switch p.NumAtomicPerComp {
	case oo7.Small().NumAtomicPerComp:
		if p.NumCompPerModule == oo7.Small().NumCompPerModule {
			return "small"
		}
	case oo7.Medium().NumAtomicPerComp:
		return "medium"
	}
	return "custom"
}
