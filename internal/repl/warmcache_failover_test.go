package repl

import (
	"bytes"
	"testing"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/pagedelta"
)

// cachedFrame is one clean tokened page a warm client cache held before
// the old leader died.
type cachedFrame struct {
	pid   disk.PageID
	token uint64
	img   []byte
}

// TestWarmCacheTokensAcrossFailover: coherence tokens minted by the old
// leader are commit LSNs; the promoted follower rebuilds its version
// table from page-header LSNs, which never coincide with commit-record
// positions. A warm client reconnecting after failover must therefore
// never get a "not modified" answer for its pre-failover tokens — every
// page revalidates by repair, and the repaired bytes must be the
// committed post-update image, not anything older.
func TestWarmCacheTokensAcrossFailover(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node

	// Session 1 (coherent, warm cache): create the object.
	c1 := esm.NewClient(leader.Transport(), esm.ClientConfig{BufferPages: 64})
	s1, err := core.New(c1, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	write := func(s *core.Store, value string) {
		t.Helper()
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		ref, err := s.Root("wc")
		if err != nil {
			cl := s.NewCluster()
			if ref, err = s.Alloc(cl, 72, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.SetRoot("wc", ref); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, 72)
		buf[0] = byte(len(value))
		copy(buf[1:], value)
		if err := s.Space().WriteBytes(ref, buf); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	write(s1, "v1")

	// Snapshot session 1's warm cache: clean frames with coherence tokens.
	var frames []cachedFrame
	pool := c1.Pool()
	for i := 0; i < pool.Len(); i++ {
		f := pool.Frame(i)
		if f.Page == disk.InvalidPage || f.Dirty || f.LSN == 0 {
			continue
		}
		frames = append(frames, cachedFrame{
			pid:   f.Page,
			token: f.LSN,
			img:   append([]byte(nil), f.Data...),
		})
	}
	if len(frames) == 0 {
		t.Fatal("warm cache captured no tokened frames; test is vacuous")
	}

	// Session 2 updates the object behind session 1's back. At least one
	// cached page must actually change, or the sweep below proves nothing.
	s2, err := core.Open(esm.NewClient(leader.Transport(), esm.ClientConfig{BufferPages: 64}), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	write(s2, "v2")
	changed := 0
	for _, f := range frames {
		resp, err := leader.Transport().Call(&esm.Request{Op: esm.OpReadPage, Page: uint32(f.pid)})
		if err != nil {
			t.Fatalf("page %d reread: %v", f.pid, err)
		}
		if !bytes.Equal(f.img[8:], resp.Data[8:]) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("update dirtied no cached page; test is vacuous")
	}
	waitConverged(t, nodes)
	kill(nodes[0])

	best, other := nodes[1], nodes[2]
	if other.log.FlushedLSN() > best.log.FlushedLSN() {
		best, other = other, best
	}
	if err := best.node.Campaign(); err != nil {
		best = other
		if err := best.node.Campaign(); err != nil {
			t.Fatalf("campaign: %v", err)
		}
	}

	// Present every pre-failover token to the promoted leader. No token
	// may validate as current, and every repair must reconstruct exactly
	// the image the new leader itself serves as committed. (The old
	// leader's bytes are not the reference: the catalog ships out of
	// band, so a few directory bytes may legitimately differ across the
	// promotion — what matters is that the warm cache converges on the
	// new leader's committed state, never on anything older.)
	for _, f := range frames {
		full, err := best.node.Transport().Call(&esm.Request{Op: esm.OpReadPage, Page: uint32(f.pid)})
		if err != nil {
			t.Fatalf("page %d full read: %v", f.pid, err)
		}
		resp, err := best.node.Transport().Call(&esm.Request{
			Op: esm.OpReadPage, Page: uint32(f.pid), N: f.token, Mode: esm.ReadVersioned,
		})
		if err != nil {
			t.Fatalf("page %d versioned read: %v", f.pid, err)
		}
		if resp.Mode == esm.PageCurrent {
			t.Fatalf("page %d: promoted leader validated a pre-failover token as current", f.pid)
		}
		img := resp.Data
		if resp.Mode == esm.PageDelta {
			img = append([]byte(nil), f.img...)
			if err := pagedelta.Apply(img, resp.Data); err != nil {
				t.Fatalf("page %d: bad delta: %v", f.pid, err)
			}
		}
		if len(img) != disk.PageSize {
			t.Fatalf("page %d: repair produced %d bytes", f.pid, len(img))
		}
		if !bytes.Equal(img[8:], full.Data[8:]) {
			t.Fatalf("page %d: repair after failover does not match the committed image", f.pid)
		}
	}

	// The object itself reads back at its committed value through a fresh
	// coherent session against the new leader.
	d := NewDirector([]Endpoint{
		{ID: "n1", Tr: nodes[0].node.Transport()},
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
	}, DirectorConfig{})
	if v, err := getValue(t, d, "wc"); err != nil || v != "v2" {
		t.Fatalf("wc after failover = %q, %v; want v2", v, err)
	}
}
