package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/wal"
)

// Role is a node's place in the cluster.
type Role int32

// Node roles.
const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return fmt.Sprintf("Role(%d)", int32(r))
}

// Errors surfaced by the quorum gate and cluster plumbing.
var (
	ErrFenced        = errors.New("repl: term fenced during quorum wait")
	ErrClosed        = errors.New("repl: node closed")
	ErrQuorumTimeout = errors.New("repl: quorum wait timed out (replication stalled)")
)

// Config tunes a replication node.
type Config struct {
	ID   string // unique node name
	Addr string // advertised dialable address; "" for in-process clusters

	// Quorum is how many replicas (counting this node) must hold a commit
	// record durable before the commit is acked. 0 means a majority of the
	// known membership.
	Quorum int

	// HeartbeatInterval paces the leader's empty ship rounds (which double
	// as heartbeats) and the election monitor's clock. Default 250ms.
	HeartbeatInterval time.Duration

	// ElectionTimeout is how long a follower tolerates leader silence
	// before campaigning. <= 0 disables automatic elections — the crash
	// drill triggers Campaign explicitly for determinism.
	ElectionTimeout time.Duration

	// QuorumTimeout bounds WaitQuorum: a partitioned leader fails commits
	// instead of blocking them forever (the client sees the transaction as
	// in doubt). Default 10s.
	QuorumTimeout time.Duration

	// Server configures the esm.Server a promoted follower opens over its
	// local volume and log.
	Server esm.ServerConfig

	// Fault instruments the replication path (PtReplShip) and, like the
	// esm server's plane, latches the whole node dead after a crash fires.
	Fault *faultinject.Plane

	// Dial opens a transport to a peer address; nil for in-process
	// clusters wired with AddPeer.
	Dial func(addr string) (esm.Transport, error)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 250 * time.Millisecond
	}
	if out.QuorumTimeout <= 0 {
		out.QuorumTimeout = 10 * time.Second
	}
	return out
}

// peer is the leader's view of one other node. All fields are guarded by
// Node.mu; transports are called with the lock released.
type peer struct {
	id    string
	addr  string
	tr    esm.Transport
	match wal.LSN // highest durable LSN the peer has acked
	catV  uint64  // catalog version last acked
}

// Node is one member of a replication cluster. It satisfies esm.Handler:
// replication ops are handled on every role; client ops are forwarded to
// the local esm.Server only while leader, and redirected otherwise. It
// also satisfies esm.QuorumWaiter, gating the leader's commit acks.
//
// Lock order: Node.mu → (wal.Log.mu | volume lock). No esm server lock is
// ever taken under mu (server calls happen with mu released), and peer
// transports are only called with mu released.
type Node struct {
	cfg Config
	vol disk.Volume
	log *wal.Log

	mu        sync.Mutex
	role      Role
	term      uint64
	votedTerm uint64
	votedFor  string
	leaderID  string
	// catV is the newest catalog version this node holds locally: what the
	// leader last shipped us (follower), or what our own server last
	// reported (leader). The catalog is not WAL-logged, so elections must
	// compare it alongside the durable LSN — a follower whose log covers an
	// acked commit may still miss the catalog write that commit acked with.
	catV      uint64
	srv       *esm.Server // non-nil while (or after) leading
	peers     map[string]*peer
	members   map[string]string // id → addr, including self
	lastShip  time.Time         // last accepted ship/vote; the election clock
	closed    bool
	quorumGen chan struct{} // closed and replaced on every quorum/role change

	shipReq chan struct{}
	stopc   chan struct{}
	wg      sync.WaitGroup

	stats struct {
		elections     atomic.Int64
		quorumCommits atomic.Int64
		quorumWaitNs  atomic.Int64
		shipRounds    atomic.Int64
		shipBytes     atomic.Int64
		snapshots     atomic.Int64
	}
}

func newNode(vol disk.Volume, log *wal.Log, cfg Config) *Node {
	n := &Node{
		cfg:       cfg.withDefaults(),
		vol:       vol,
		log:       log,
		peers:     map[string]*peer{},
		members:   map[string]string{cfg.ID: cfg.Addr},
		lastShip:  time.Now(),
		quorumGen: make(chan struct{}),
		shipReq:   make(chan struct{}, 1),
		stopc:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.shipper()
	if n.cfg.ElectionTimeout > 0 {
		n.wg.Add(1)
		go n.electionLoop()
	}
	return n
}

// NewLeader starts a node leading an existing server (term 1). The server's
// commit path is wired to this node's quorum gate.
func NewLeader(srv *esm.Server, cfg Config) *Node {
	n := newNode(srv.Volume(), srv.Log(), cfg)
	n.mu.Lock()
	n.role = RoleLeader
	n.term = 1
	n.leaderID = cfg.ID
	n.srv = srv
	n.mu.Unlock()
	srv.SetRepl(n)
	return n
}

// NewFollower starts a node as a follower over its own (possibly empty)
// volume and log. It serves no client ops until promoted; state arrives
// from the leader via ship and snapshot frames.
func NewFollower(vol disk.Volume, log *wal.Log, cfg Config) *Node {
	return newNode(vol, log, cfg)
}

// ID returns the node's configured name.
func (n *Node) ID() string { return n.cfg.ID }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// DurableLSN returns the node's local durable log position.
func (n *Node) DurableLSN() wal.LSN { return n.log.FlushedLSN() }

// CurrentServer returns the esm.Server this node fronts — non-nil only
// once the node has led. esm.Serve uses it to attribute transport counters.
func (n *Node) CurrentServer() *esm.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// AddPeer registers another cluster node by explicit transport (in-process
// clusters and tests; TCP clusters use RegisterWith + the leader's Dial).
func (n *Node) AddPeer(id, addr string, tr esm.Transport) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.peers[id]; !ok {
		n.peers[id] = &peer{id: id, addr: addr, tr: tr}
	}
	n.members[id] = addr
	select {
	case n.shipReq <- struct{}{}:
	default:
	}
}

// RegisterWith announces this follower to the leader reachable through tr;
// the leader dials back Config.Addr and starts shipping (snapshot first).
func (n *Node) RegisterWith(tr esm.Transport) error {
	resp, err := tr.Call(&esm.Request{
		Op:   esm.OpReplAck,
		Mode: ModeRegister,
		Name: n.cfg.ID + "\x00" + n.cfg.Addr,
	})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Transport returns an in-process transport into this node's Handle.
func (n *Node) Transport() esm.Transport { return nodeTransport{n} }

type nodeTransport struct{ n *Node }

// Call implements esm.Transport.
func (t nodeTransport) Call(req *esm.Request) (*esm.Response, error) { return t.n.Handle(req), nil }

// Close implements esm.Transport.
func (t nodeTransport) Close() error { return nil }

// Close stops the node's goroutines and closes peer transports it owns.
// The volume, log, and server are left open (they outlive the node in
// drills and restarts).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stopc)
	n.signalQuorumLocked()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	n.wg.Wait()
	for _, p := range peers {
		_ = p.tr.Close()
	}
	return nil
}

// Handle implements esm.Handler. Replication ops are answered on every
// role; client ops run on the local server only while leader and are
// redirected (notLeaderError) otherwise, which is what fences a deposed
// leader's clients over to the new one.
func (n *Node) Handle(req *esm.Request) *esm.Response {
	if n.cfg.Fault.Crashed() {
		// The drill killed this node: every op fails, exactly like the
		// esm server's own crashed latch.
		return &esm.Response{Err: faultinject.ErrCrash.Error()}
	}
	switch req.Op {
	case esm.OpReplAppend:
		return n.handleAppend(req)
	case esm.OpReplSnapshot:
		return n.handleSnapshot(req)
	case esm.OpReplAck:
		switch req.Mode {
		case ModeStatus:
			return n.handleStatus()
		case ModeVote:
			return n.handleVote(req)
		case ModeRegister:
			return n.handleRegister(req)
		}
		return &esm.Response{Err: fmt.Sprintf("repl: unknown ack mode %d", req.Mode)}
	case esm.OpBeginSnapshot, esm.OpSnapRead, esm.OpEndSnapshot:
		// Snapshot reads are served on every role: the leader answers from
		// its version store, a follower by per-page point-in-time recovery
		// over its installed volume plus shipped WAL (snapread.go). This is
		// what keeps read-only sessions available across a failover.
		n.mu.Lock()
		role, srv := n.role, n.srv
		n.mu.Unlock()
		if role == RoleLeader && srv != nil {
			return srv.Handle(req)
		}
		switch req.Op {
		case esm.OpBeginSnapshot:
			return n.handleSnapBegin(req)
		case esm.OpSnapRead:
			return n.handleSnapRead(req)
		default:
			return &esm.Response{} // follower snapshots pin nothing
		}
	}
	n.mu.Lock()
	role, srv := n.role, n.srv
	leaderID, leaderAddr := n.leaderID, n.members[n.leaderID]
	n.mu.Unlock()
	if role != RoleLeader || srv == nil {
		if leaderID == n.cfg.ID {
			leaderID = "" // deposed mid-flight; don't redirect to ourselves
		}
		return &esm.Response{Err: notLeaderError(leaderID, leaderAddr)}
	}
	return srv.Handle(req)
}

// adoptTermLocked moves the node to a newer term, stepping down from any
// leadership or candidacy. The quorum generation is signaled so in-flight
// WaitQuorum calls observe the fence.
func (n *Node) adoptTermLocked(term uint64) {
	n.term = term
	if n.role != RoleFollower {
		n.role = RoleFollower
	}
	n.leaderID = ""
	n.signalQuorumLocked()
}

func (n *Node) signalQuorumLocked() {
	close(n.quorumGen)
	n.quorumGen = make(chan struct{})
}

func (n *Node) kickShipper() {
	select {
	case n.shipReq <- struct{}{}:
	default:
	}
}

// handleAppend applies one shipped WAL chunk (follower side). The response
// always reports the follower's durable LSN in N; Page is 1 when only a
// snapshot can resynchronize this follower (compacted cursor or divergent
// bytes). A stale term is fenced with an error.
func (n *Node) handleAppend(req *esm.Request) *esm.Response {
	p, err := parseShip(req.Data)
	if err != nil {
		return &esm.Response{Err: err.Error()}
	}
	term := req.Tx
	n.mu.Lock()
	if term < n.term {
		e := staleTermError(term, n.term)
		n.mu.Unlock()
		return &esm.Response{Err: e}
	}
	if term > n.term {
		n.adoptTermLocked(term)
	}
	if n.role != RoleFollower {
		n.role = RoleFollower
		n.signalQuorumLocked()
	}
	n.leaderID = req.Name
	n.lastShip = time.Now()
	for _, m := range p.Members {
		n.members[m.ID] = m.Addr
	}
	n.mu.Unlock()

	needSnap := false
	if len(p.Log) > 0 {
		switch err := n.log.AppendRaw(wal.LSN(req.N), p.Log); {
		case err == nil:
			if ferr := n.log.Flush(); ferr != nil {
				return &esm.Response{Err: ferr.Error()}
			}
		case errors.Is(err, wal.ErrCompacted), errors.Is(err, wal.ErrDiverged):
			needSnap = true
		default:
			// Gap (or unparsable chunk): leave durable as-is; the leader
			// backs its cursor up to the LSN we report and reships.
		}
	}
	if !needSnap && len(p.Catalog) > 0 {
		if err := n.installCatalog(p.Catalog); err != nil {
			return &esm.Response{Err: err.Error()}
		}
		// Overwrite, not max: the installed content IS this version, and a
		// deposed leader rejoining must shed the inflated count of catalog
		// writes it never got acked.
		n.mu.Lock()
		n.catV = p.CatVersion
		n.mu.Unlock()
	}
	resp := &esm.Response{N: uint64(n.log.FlushedLSN())}
	if needSnap {
		resp.Page = 1
	}
	return resp
}

// handleSnapshot installs a full state transfer: the log is replaced
// wholesale and every shipped page image overwrites the local volume
// (pages beyond the leader's geometry are zeroed — a rejoining deposed
// leader must not keep divergent-future pages whose LSNs would confuse
// redo).
func (n *Node) handleSnapshot(req *esm.Request) *esm.Response {
	p, err := parseSnap(req.Data, disk.PageSize)
	if err != nil {
		return &esm.Response{Err: err.Error()}
	}
	term := req.Tx
	n.mu.Lock()
	if term < n.term {
		e := staleTermError(term, n.term)
		n.mu.Unlock()
		return &esm.Response{Err: e}
	}
	if term > n.term {
		n.adoptTermLocked(term)
	}
	n.role = RoleFollower
	n.leaderID = req.Name
	n.lastShip = time.Now()
	for _, m := range p.Members {
		n.members[m.ID] = m.Addr
	}
	n.mu.Unlock()

	if err := n.log.LoadSnapshot(p.LogStart, p.Log); err != nil {
		return &esm.Response{Err: err.Error()}
	}
	if n.vol.NumPages() < p.NumPages {
		if err := n.vol.Grow(p.NumPages); err != nil {
			return &esm.Response{Err: err.Error()}
		}
	}
	for _, pg := range p.Pages {
		if err := n.vol.WritePage(disk.PageID(pg.ID), pg.Data); err != nil {
			return &esm.Response{Err: err.Error()}
		}
	}
	if myNum := n.vol.NumPages(); myNum > p.NumPages {
		zero := make([]byte, disk.PageSize)
		for pid := p.NumPages; pid < myNum; pid++ {
			if err := n.vol.WritePage(disk.PageID(pid), zero); err != nil {
				return &esm.Response{Err: err.Error()}
			}
		}
	}
	if err := n.vol.Sync(); err != nil {
		return &esm.Response{Err: err.Error()}
	}
	n.mu.Lock()
	n.catV = p.CatVersion
	n.mu.Unlock()
	return &esm.Response{N: uint64(n.log.FlushedLSN())}
}

// installCatalog writes the leader's serialized catalog to the catalog
// page, growing the volume when the follower is brand new.
func (n *Node) installCatalog(blob []byte) error {
	if len(blob)+4 > disk.PageSize {
		return fmt.Errorf("repl: catalog blob too large (%d bytes)", len(blob))
	}
	buf := make([]byte, disk.PageSize)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(blob)))
	copy(buf[4:], blob)
	err := n.vol.WritePage(esm.CatalogPage, buf)
	if errors.Is(err, disk.ErrPageOutOfRange) {
		if gerr := n.vol.Grow(uint32(esm.CatalogPage) + 1); gerr != nil {
			return gerr
		}
		err = n.vol.WritePage(esm.CatalogPage, buf)
	}
	return err
}

func (n *Node) handleStatus() *esm.Response {
	n.mu.Lock()
	st := &Status{
		ID:      n.cfg.ID,
		Role:    n.role.String(),
		Term:    n.term,
		Durable: uint64(n.log.FlushedLSN()),
		Leader:  n.leaderID,
	}
	n.mu.Unlock()
	return &esm.Response{N: st.Durable, Data: statusJSON(st)}
}

// handleVote answers a vote request: grant iff the candidate's term is
// current-or-newer, its durable LSN AND catalog version are at least ours
// (no acked commit — log bytes or the catalog write it acked with — can be
// lost by electing it), and we have not voted for someone else this term.
// Granting resets the election clock.
func (n *Node) handleVote(req *esm.Request) *esm.Response {
	term, cand, candDurable := req.Tx, req.Name, wal.LSN(req.N)
	var candCatV uint64
	if len(req.Data) >= 8 {
		candCatV = binary.LittleEndian.Uint64(req.Data)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if term > n.term {
		n.adoptTermLocked(term)
	}
	granted := uint64(0)
	if term >= n.term && candDurable >= n.log.FlushedLSN() && candCatV >= n.catV &&
		(n.votedTerm != term || n.votedFor == cand) {
		n.votedTerm, n.votedFor = term, cand
		n.lastShip = time.Now()
		granted = 1
	}
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, n.term)
	return &esm.Response{N: granted, Data: data}
}

// handleRegister (leader side) admits a follower announced over the wire.
func (n *Node) handleRegister(req *esm.Request) *esm.Response {
	i := -1
	for j := 0; j < len(req.Name); j++ {
		if req.Name[j] == 0 {
			i = j
			break
		}
	}
	if i < 0 {
		return &esm.Response{Err: "repl: malformed register payload"}
	}
	id, addr := req.Name[:i], req.Name[i+1:]
	n.mu.Lock()
	role := n.role
	leaderID, leaderAddr := n.leaderID, n.members[n.leaderID]
	_, known := n.peers[id]
	n.mu.Unlock()
	if role != RoleLeader {
		return &esm.Response{Err: notLeaderError(leaderID, leaderAddr)}
	}
	if known {
		return &esm.Response{}
	}
	if n.cfg.Dial == nil {
		return &esm.Response{Err: "repl: leader cannot dial followers (no Dial configured)"}
	}
	tr, err := n.cfg.Dial(addr)
	if err != nil {
		return &esm.Response{Err: fmt.Sprintf("repl: dialing follower %s at %s: %v", id, addr, err)}
	}
	n.AddPeer(id, addr, tr)
	return &esm.Response{}
}

// WaitQuorum implements esm.QuorumWaiter: it returns once the log is
// durable through lsn and the catalog installed at catV or newer on the
// configured quorum of replicas, and errs if the node loses leadership
// (fenced), closes, or times out first — in all of which cases the commit
// must not be acked.
func (n *Node) WaitQuorum(lsn wal.LSN, catV uint64) error {
	start := time.Now()
	deadline := start.Add(n.cfg.QuorumTimeout)
	n.mu.Lock()
	term := n.term
	if catV > n.catV {
		n.catV = catV // the commit being gated wrote this version locally
	}
	for {
		if n.closed {
			n.mu.Unlock()
			return ErrClosed
		}
		if n.role != RoleLeader || n.term != term {
			n.mu.Unlock()
			return ErrFenced
		}
		if n.quorumReachedLocked(lsn, catV) {
			break
		}
		gen := n.quorumGen
		n.mu.Unlock()
		n.kickShipper()
		wait := time.Until(deadline)
		if wait <= 0 {
			return ErrQuorumTimeout
		}
		t := time.NewTimer(wait)
		select {
		case <-gen:
		case <-t.C:
			t.Stop()
			return ErrQuorumTimeout
		case <-n.stopc:
			t.Stop()
			return ErrClosed
		}
		t.Stop()
		n.mu.Lock()
	}
	n.mu.Unlock()
	n.stats.quorumCommits.Add(1)
	n.stats.quorumWaitNs.Add(time.Since(start).Nanoseconds())
	return nil
}

// quorumSizeLocked is the replica count (including this node) that must
// hold a commit durable before it acks.
func (n *Node) quorumSizeLocked() int {
	if n.cfg.Quorum > 0 {
		return n.cfg.Quorum
	}
	return len(n.members)/2 + 1
}

func (n *Node) quorumReachedLocked(lsn wal.LSN, catV uint64) bool {
	count := 0
	if n.log.FlushedLSN() > lsn {
		count++ // the leader wrote its own catalog before the gate
	}
	for _, p := range n.peers {
		if p.match > lsn && p.catV >= catV {
			count++
		}
	}
	return count >= n.quorumSizeLocked()
}

// quorumLSNLocked is the highest LSN durable on a full quorum: sort the
// replicas' durable positions descending and take the quorum-th.
func (n *Node) quorumLSNLocked() wal.LSN {
	lsns := make([]wal.LSN, 0, 1+len(n.peers))
	lsns = append(lsns, n.log.FlushedLSN())
	for _, p := range n.peers {
		lsns = append(lsns, p.match)
	}
	k := n.quorumSizeLocked()
	if k > len(lsns) {
		return wal.NilLSN
	}
	// Selection by repeated max is fine at cluster sizes.
	for i := 0; i < k; i++ {
		maxAt := i
		for j := i + 1; j < len(lsns); j++ {
			if lsns[j] > lsns[maxAt] {
				maxAt = j
			}
		}
		lsns[i], lsns[maxAt] = lsns[maxAt], lsns[i]
	}
	return lsns[k-1]
}

// shipper is the single goroutine that runs replication rounds: it wakes
// on new durable bytes (log notify), on explicit kicks from WaitQuorum,
// and on the heartbeat tick (an empty round keeps follower election
// clocks at bay). One round serves every commit that joined the batch —
// the replication mirror of group commit.
func (n *Node) shipper() {
	defer n.wg.Done()
	notify := make(chan struct{}, 1)
	n.log.NotifyDurable(notify)
	defer n.log.StopNotify(notify)
	hb := time.NewTicker(n.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-n.stopc:
			return
		case <-notify:
		case <-n.shipReq:
		case <-hb.C:
		}
		n.shipRound()
	}
}

func (n *Node) shipRound() {
	n.mu.Lock()
	if n.closed || n.role != RoleLeader || n.srv == nil {
		n.mu.Unlock()
		return
	}
	term, srv := n.term, n.srv
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	members := n.membersSnapshotLocked()
	n.mu.Unlock()

	durable := n.log.FlushedLSN()
	if len(peers) > 0 {
		// Catalog read AFTER the durable cut: its version is at least that
		// of any commit the shipped log covers.
		catV, catBlob, err := srv.CatalogBlob()
		if err != nil {
			catBlob = nil
		}
		n.mu.Lock()
		if catV > n.catV {
			n.catV = catV
		}
		n.mu.Unlock()
		var wg sync.WaitGroup
		for _, p := range peers {
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				n.shipPeer(p, term, durable, catV, catBlob, members)
			}(p)
		}
		wg.Wait()
		n.stats.shipRounds.Add(1)
	}
	n.mu.Lock()
	n.signalQuorumLocked()
	n.mu.Unlock()
}

// shipPeer brings one follower up to this round's durable target,
// chunk-by-chunk, falling back to a snapshot when the follower's cursor is
// compacted or its bytes diverge.
func (n *Node) shipPeer(p *peer, term uint64, durable wal.LSN, catV uint64, catBlob []byte, members []Member) {
	if err := n.cfg.Fault.Hit(faultinject.PtReplShip); err != nil {
		// Crash latches the node dead (Handle refuses everything);
		// transient models follower lag / a partition: skip the round.
		return
	}
	const maxChunk = 1 << 20
	lastAck := wal.NilLSN
	for iter := 0; iter < 64; iter++ {
		n.mu.Lock()
		from := p.match
		sentCat := p.catV
		n.mu.Unlock()
		if from < 1 {
			from = 1
		}
		// Never ship log beyond this round's durable cut: a follower must
		// not ack an LSN whose commit may have written a catalog version
		// newer than the one riding in this payload, or elections could
		// prefer a long-log follower holding a stale catalog.
		var chunk []byte
		var err error
		if from < durable {
			budget := int(durable - from)
			if budget > maxChunk {
				budget = maxChunk
			}
			chunk, err = n.log.DurableFrom(from, budget)
			if errors.Is(err, wal.ErrCompacted) {
				n.sendSnapshot(p, term, members)
				return
			}
		}
		payload := shipPayload{LeaderDurable: durable, CatVersion: catV, Log: chunk, Members: members}
		if len(catBlob) > 0 && sentCat < catV {
			payload.Catalog = catBlob
		}
		resp, cerr := p.tr.Call(&esm.Request{
			Op:   esm.OpReplAppend,
			Tx:   term,
			N:    uint64(from),
			Name: n.cfg.ID,
			Data: payload.marshal(),
		})
		if cerr != nil || resp.Err != "" {
			if cerr == nil && IsStaleTerm(resp.Err) {
				n.observeFence(term)
			}
			return // unreachable or fenced: retry next round
		}
		ack := wal.LSN(resp.N)
		n.mu.Lock()
		if ack > p.match {
			p.match = ack
		}
		if payload.Catalog != nil {
			p.catV = catV
		}
		n.mu.Unlock()
		n.stats.shipBytes.Add(int64(len(chunk)))
		if resp.Page == 1 {
			n.sendSnapshot(p, term, members)
			return
		}
		if ack >= durable {
			return // caught up to this round's target
		}
		if ack == lastAck {
			return // no progress; avoid spinning (next round retries)
		}
		lastAck = ack
	}
}

// sendSnapshot performs a full state transfer to one follower.
func (n *Node) sendSnapshot(p *peer, term uint64, members []Member) {
	n.mu.Lock()
	srv := n.srv
	n.mu.Unlock()
	if srv == nil {
		return
	}
	snap, err := n.buildSnapshot(srv, members)
	if err != nil {
		return
	}
	resp, err := p.tr.Call(&esm.Request{
		Op:   esm.OpReplSnapshot,
		Tx:   term,
		N:    uint64(snap.LogStart),
		Name: n.cfg.ID,
		Data: snap.marshal(disk.PageSize),
	})
	if err != nil || resp.Err != "" {
		if err == nil && IsStaleTerm(resp.Err) {
			n.observeFence(term)
		}
		return
	}
	n.mu.Lock()
	if ack := wal.LSN(resp.N); ack > p.match {
		p.match = ack
	}
	p.catV = snap.CatVersion
	n.mu.Unlock()
	n.stats.snapshots.Add(1)
}

// buildSnapshot captures a fuzzy but consistent cut of the leader: pool
// flushed first (raw large-object pages have no log records to reship),
// then every volume page, then the log — cut last, so it covers the
// pageLSN of anything flushed while pages were being read. Page images the
// log postdates are simply re-redone on the follower at promotion.
func (n *Node) buildSnapshot(srv *esm.Server, members []Member) (*snapPayload, error) {
	if err := srv.FlushPool(); err != nil {
		return nil, err
	}
	num := n.vol.NumPages()
	snap := &snapPayload{NumPages: num, Members: members}
	for pid := uint32(1); pid < num; pid++ {
		buf := make([]byte, disk.PageSize)
		if err := n.vol.ReadPage(disk.PageID(pid), buf); err != nil {
			return nil, err
		}
		snap.Pages = append(snap.Pages, pageImage{ID: pid, Data: buf})
	}
	start := n.log.StartLSN()
	logBytes, err := n.log.DurableFrom(start, 0)
	if err != nil {
		return nil, err
	}
	snap.LogStart = start
	snap.Log = logBytes
	snap.CatVersion, _, _ = srv.CatalogBlob()
	return snap, nil
}

// observeFence is the shipper noticing a follower on a newer term: step
// down immediately (the new term itself arrives with the next ship or
// vote from the new leader).
func (n *Node) observeFence(sawTerm uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader && n.term == sawTerm {
		n.role = RoleFollower
		n.leaderID = ""
		n.signalQuorumLocked()
	}
}

func (n *Node) membersSnapshotLocked() []Member {
	ms := make([]Member, 0, len(n.members))
	for id, addr := range n.members {
		ms = append(ms, Member{ID: id, Addr: addr})
	}
	return ms
}

// Campaign runs one election round: bump the term, vote for ourselves,
// solicit the cluster, and promote on a majority. The vote rule (term +
// highest durable LSN) guarantees the winner's log contains every
// quorum-acked commit, so replaying its local WAL (restart recovery in
// OpenServer) reconstructs all acked state.
func (n *Node) Campaign() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.role == RoleLeader {
		n.mu.Unlock()
		return nil
	}
	n.term++
	term := n.term
	n.role = RoleCandidate
	n.votedTerm, n.votedFor = term, n.cfg.ID
	members := n.membersSnapshotLocked()
	catV := n.catV
	n.mu.Unlock()

	durable := n.log.FlushedLSN()
	catData := make([]byte, 8)
	binary.LittleEndian.PutUint64(catData, catV)
	votes := 1 // our own
	for _, m := range members {
		if m.ID == n.cfg.ID {
			continue
		}
		tr := n.peerTransport(m)
		if tr == nil {
			continue
		}
		resp, err := tr.Call(&esm.Request{
			Op:   esm.OpReplAck,
			Mode: ModeVote,
			Tx:   term,
			N:    uint64(durable),
			Name: n.cfg.ID,
			Data: catData,
		})
		if err != nil || resp.Err != "" {
			continue // dead or unreachable voter
		}
		if len(resp.Data) >= 8 {
			if voterTerm := binary.LittleEndian.Uint64(resp.Data); voterTerm > term {
				n.mu.Lock()
				if voterTerm > n.term {
					n.adoptTermLocked(voterTerm)
				}
				n.mu.Unlock()
				return fmt.Errorf("repl: campaign for term %d lost to term %d", term, voterTerm)
			}
		}
		if resp.N == 1 {
			votes++
		}
	}
	need := len(members)/2 + 1
	if votes < need {
		n.mu.Lock()
		if n.role == RoleCandidate && n.term == term {
			n.role = RoleFollower
		}
		n.mu.Unlock()
		return fmt.Errorf("repl: campaign for term %d got %d/%d votes", term, votes, need)
	}
	return n.promote(term)
}

// promote opens an esm.Server over the local volume and log — full restart
// recovery replays the WAL (redo winners, undo losers with CLRs) — and
// starts leading. The election guarantee makes this safe: our durable log
// contains every quorum-acked commit; the tail beyond the last quorum LSN
// replays transaction-atomically (commits whose record made it here land
// in full; the rest roll back), which is exactly the single-node crash
// contract.
func (n *Node) promote(term uint64) error {
	srv, err := esm.OpenServer(n.vol, n.log, n.cfg.Server)
	if err != nil {
		n.mu.Lock()
		if n.role == RoleCandidate && n.term == term {
			n.role = RoleFollower
		}
		n.mu.Unlock()
		return fmt.Errorf("repl: promoting %s: %w", n.cfg.ID, err)
	}
	n.mu.Lock()
	if n.term != term || n.role != RoleCandidate {
		n.mu.Unlock()
		return ErrFenced
	}
	n.role = RoleLeader
	n.leaderID = n.cfg.ID
	n.srv = srv
	// Force a full reship (with overlap verification) to every peer: a
	// follower that did not vote for us may hold a divergent tail from the
	// old term, and only shipping from zero lets AppendRaw catch it.
	for _, p := range n.peers {
		p.match = 0
		p.catV = 0
	}
	catV := n.catV
	n.signalQuorumLocked()
	n.mu.Unlock()
	// Carry the catalog version lineage across the term boundary: the new
	// server counts from what this follower last installed, so version
	// comparisons (quorum gate, votes) stay monotone across leaders.
	srv.SetCatalogVersionFloor(catV)
	srv.SetRepl(n)
	n.stats.elections.Add(1)
	n.kickShipper()
	return nil
}

// peerTransport finds (or dials) a transport to a member.
func (n *Node) peerTransport(m Member) esm.Transport {
	n.mu.Lock()
	p := n.peers[m.ID]
	n.mu.Unlock()
	if p != nil {
		return p.tr
	}
	if n.cfg.Dial == nil || m.Addr == "" {
		return nil
	}
	tr, err := n.cfg.Dial(m.Addr)
	if err != nil {
		return nil
	}
	n.AddPeer(m.ID, m.Addr, tr)
	return tr
}

// electionLoop watches for leader silence and campaigns. Jitter is
// deterministic per node id so colliding candidacies settle without a
// random source.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	h := fnv.New32a()
	h.Write([]byte(n.cfg.ID))
	jitter := time.Duration(h.Sum32()%1000) * n.cfg.ElectionTimeout / 2000
	timeout := n.cfg.ElectionTimeout + jitter
	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.stopc:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		idle := time.Since(n.lastShip)
		role := n.role
		clusterKnown := len(n.members) > 1
		n.mu.Unlock()
		if role == RoleFollower && clusterKnown && idle > timeout {
			_ = n.Campaign()
		}
	}
}

// ReplStats implements esm.QuorumWaiter's telemetry half.
func (n *Node) ReplStats() *esm.ReplStats {
	n.mu.Lock()
	durable := n.log.FlushedLSN()
	st := &esm.ReplStats{
		Role:       n.role.String(),
		Term:       n.term,
		Leader:     n.leaderID,
		Quorum:     n.quorumSizeLocked(),
		Followers:  len(n.peers),
		DurableLSN: uint64(durable),
		QuorumLSN:  uint64(n.quorumLSNLocked()),
	}
	for _, p := range n.peers {
		if gap := uint64(durable) - uint64(p.match); p.match <= durable && gap > st.MaxFollowerGap {
			st.MaxFollowerGap = gap
		}
	}
	n.mu.Unlock()
	st.Elections = n.stats.elections.Load()
	st.QuorumCommits = n.stats.quorumCommits.Load()
	st.QuorumWaitNs = n.stats.quorumWaitNs.Load()
	st.ShipRounds = n.stats.shipRounds.Load()
	st.ShipBytes = n.stats.shipBytes.Load()
	st.SnapshotsSent = n.stats.snapshots.Load()
	return st
}
