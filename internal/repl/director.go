package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
)

// Endpoint is one cluster node a Director can route to. Tr may be pre-wired
// (in-process clusters) or nil, in which case the Director dials Addr on
// first use via its Dial config.
type Endpoint struct {
	ID   string
	Addr string
	Tr   esm.Transport
}

// DirectorConfig tunes leader discovery.
type DirectorConfig struct {
	// Retries bounds attempts across redirects and failovers; default 32.
	Retries int
	// Backoff is the sleep before each retry, doubled up to a 500ms cap;
	// default 10ms. It is what rides out an election in progress.
	Backoff time.Duration
	// Dial opens a transport to an address (TCP clusters); nil restricts
	// the Director to the pre-wired endpoints.
	Dial func(addr string) (esm.Transport, error)
}

// Director is a cluster-aware esm.Transport: it routes every request to the
// current leader, follows not-leader redirects, and fails over to the next
// endpoint when a node stops answering. Redirects are always retried (the
// request was refused before executing); transport failures are retried
// only for requests with no server-side effects — the same whitelist as the
// client's transient-retry policy — so an in-doubt commit surfaces to the
// caller instead of being silently replayed.
type Director struct {
	cfg DirectorConfig

	mu  sync.Mutex
	eps []*Endpoint
	cur int
}

// NewDirector builds a Director over the given endpoints.
func NewDirector(eps []Endpoint, cfg DirectorConfig) *Director {
	if cfg.Retries <= 0 {
		cfg.Retries = 32
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	d := &Director{cfg: cfg}
	for i := range eps {
		ep := eps[i]
		d.eps = append(d.eps, &ep)
	}
	return d
}

// current returns the transport for the preferred endpoint, dialing lazily.
func (d *Director) current() (esm.Transport, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.eps) == 0 {
		return nil, 0, errors.New("repl: director has no endpoints")
	}
	ep := d.eps[d.cur]
	if ep.Tr == nil {
		if d.cfg.Dial == nil {
			return nil, d.cur, fmt.Errorf("repl: endpoint %s has no transport and no Dial configured", ep.ID)
		}
		tr, err := d.cfg.Dial(ep.Addr)
		if err != nil {
			return nil, d.cur, err
		}
		ep.Tr = tr
	}
	return ep.Tr, d.cur, nil
}

// advance rotates to the next endpoint if idx is still current (a
// concurrent caller may have already moved on).
func (d *Director) advance(idx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.eps) > 0 && d.cur == idx {
		d.cur = (d.cur + 1) % len(d.eps)
	}
}

// point re-targets the Director at the endpoint advertising addr, adding it
// (to be dialed lazily) when unknown and dialing is configured.
func (d *Director) point(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, ep := range d.eps {
		if ep.Addr == addr {
			d.cur = i
			return
		}
	}
	if d.cfg.Dial != nil && addr != "" {
		d.eps = append(d.eps, &Endpoint{ID: addr, Addr: addr})
		d.cur = len(d.eps) - 1
	}
}

// Call implements esm.Transport.
func (d *Director) Call(req *esm.Request) (*esm.Response, error) {
	backoff := d.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < d.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		tr, idx, err := d.current()
		if err != nil {
			lastErr = err
			d.advance(idx)
			continue
		}
		resp, err := tr.Call(req)
		if err != nil {
			if !esm.RetryableOp(req.Op) {
				// The request may have executed before the transport died;
				// replaying it could double-apply. Surface as in doubt.
				return nil, err
			}
			lastErr = err
			d.advance(idx)
			continue
		}
		if IsNotLeader(resp.Err) || IsStaleTerm(resp.Err) {
			lastErr = errors.New(resp.Err)
			if addr := leaderAddrFrom(resp.Err); addr != "" {
				d.point(addr)
			} else {
				d.advance(idx)
			}
			continue // refused before executing: always safe to retry
		}
		if resp.Err != "" && esm.IsSnapshotBehind(errors.New(resp.Err)) {
			// This replica hasn't received a commit (or snapshot LSN) the
			// client already saw; another replica may have it. Refused
			// before executing, so always safe to retry.
			lastErr = errors.New(resp.Err)
			d.advance(idx)
			continue
		}
		if resp.Err != "" && faultinject.IsCrash(errors.New(resp.Err)) {
			// A crashed node's latch refuses requests before executing
			// them, so failing over a session-opening Begin is safe; any
			// other non-idempotent op may have been the one the crash
			// interrupted mid-flight — surface it as in doubt.
			if req.Op == esm.OpBegin || esm.RetryableOp(req.Op) {
				lastErr = errors.New(resp.Err)
				d.advance(idx)
				continue
			}
		}
		return resp, nil
	}
	return nil, fmt.Errorf("repl: no leader reachable after %d attempts: %w", d.cfg.Retries, lastErr)
}

// Close implements esm.Transport, closing every endpoint transport the
// Director holds (the Director owns what it dialed; pre-wired in-process
// transports treat Close as a no-op).
func (d *Director) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, ep := range d.eps {
		if ep.Tr != nil {
			if err := ep.Tr.Close(); err != nil && first == nil {
				first = err
			}
			ep.Tr = nil
		}
	}
	return first
}

// Leader probes the cluster for its current leader's status.
func (d *Director) Leader() (*Status, error) {
	resp, err := d.Call(&esm.Request{Op: esm.OpReplAck, Mode: ModeStatus})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return ParseStatus(resp.Data)
}
