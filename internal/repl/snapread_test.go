package repl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/wal"
)

// commitPages writes value into two freshly allocated pages at off through
// the leader, commits, and returns the two page ids plus the committing
// client's last-seen LSN (the commit's LSN — what read-your-writes threads).
func commitPages(t *testing.T, tr esm.Transport, off int, value []byte) (disk.PageID, disk.PageID, uint64) {
	t.Helper()
	c := esm.NewClient(tr, esm.ClientConfig{BufferPages: 8})
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	pid1, err := c.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	pid2 := pid1 + 1
	for _, pid := range []disk.PageID{pid1, pid2} {
		i, err := c.FetchPage(pid)
		if err != nil {
			t.Fatal(err)
		}
		data := c.PageData(i)
		old := append([]byte(nil), data[off:off+len(value)]...)
		copy(data[off:], value)
		c.LogUpdate(pid, off, old, value)
		if err := c.MarkDirty(pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return pid1, pid2, c.LastSeenLSN()
}

// A snapshot session begun on the leader keeps reading after the leader
// dies, with no election: the Director fails the retryable snapshot ops
// over to a follower, which reconstructs pages at the session's LSN from
// its installed volume plus the shipped WAL.
func TestSnapshotReadsSurviveLeaderDeath(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node
	const off = 100
	want := []byte("snapshot-bytes")
	pid1, pid2, _ := commitPages(t, leader.Transport(), off, want)
	waitConverged(t, nodes)

	d := NewDirector([]Endpoint{
		{ID: "n1", Tr: nodes[0].node.Transport()},
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
	}, DirectorConfig{})
	sc := esm.NewClient(d, esm.ClientConfig{BufferPages: 8})
	if err := sc.BeginSnapshot(); err != nil {
		t.Fatalf("begin snapshot: %v", err)
	}
	i, err := sc.FetchPage(pid1) // leader alive: served from its version store
	if err != nil {
		t.Fatalf("snap fetch on leader: %v", err)
	}
	if got := sc.PageData(i)[off : off+len(want)]; string(got) != string(want) {
		t.Fatalf("leader snap read = %q, want %q", got, want)
	}

	kill(nodes[0])

	// Same session, next page: the dead leader's crash latch makes the
	// Director advance, and a follower answers by point-in-time recovery.
	i, err = sc.FetchPage(pid2)
	if err != nil {
		t.Fatalf("snap fetch after leader death: %v", err)
	}
	if got := sc.PageData(i)[off : off+len(want)]; string(got) != string(want) {
		t.Fatalf("follower snap read = %q, want %q", got, want)
	}
	if err := sc.EndSnapshot(); err != nil {
		t.Fatalf("end snapshot: %v", err)
	}
}

// A follower's point-in-time page reconstruction must honor the snapshot
// LSN exactly: a transaction whose effects reached the follower's volume
// via a snapshot install, but which was unresolved at the snapshot point,
// is rolled back in the served image — and stays rolled back at that
// snapshot even after it commits.
func TestFollowerSnapReadUndoesUnresolvedTx(t *testing.T) {
	nodes := newCluster(t, 1, 1)
	leader := nodes[0].node
	const off = 200
	base := []byte("base")
	pid, _, _ := commitPages(t, leader.Transport(), off, base)

	// Truncate the log so the follower attaching later must be fed by
	// snapshot install, whose page images include stolen uncommitted data.
	if err := leader.CurrentServer().Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Open a transaction that overwrites the page and force a mid-tx steal
	// (tiny client pool): the server's frame now holds uncommitted bytes
	// and the update record is durable, but no commit record exists.
	wc := esm.NewClient(leader.Transport(), esm.ClientConfig{BufferPages: 2})
	defer wc.Close()
	if err := wc.Begin(); err != nil {
		t.Fatal(err)
	}
	i, err := wc.FetchPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	dirty := []byte("DIRT")
	copy(wc.PageData(i)[off:], dirty)
	wc.LogUpdate(pid, off, base, dirty)
	if err := wc.MarkDirty(pid); err != nil {
		t.Fatal(err)
	}
	spare, err := wc.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ { // evicts pid from the 2-frame pool -> steal
		if _, err := wc.FetchPage(spare + disk.PageID(k)); err != nil {
			t.Fatal(err)
		}
	}

	fVol, fLog := disk.NewMemVolume(), wal.NewMemLog()
	f := NewFollower(fVol, fLog, testCfg("n2", 1, nil))
	defer f.Close()
	f.AddPeer("n1", "", leader.Transport())
	leader.AddPeer("n2", "", f.Transport())
	deadline := time.Now().Add(5 * time.Second)
	for fLog.FlushedLSN() != leader.DurableLSN() {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(time.Millisecond)
	}

	// The installed image carries the stolen uncommitted bytes; a snapshot
	// read must not.
	resp := f.Handle(&esm.Request{Op: esm.OpBeginSnapshot})
	if resp.Err != "" {
		t.Fatalf("follower snap begin: %s", resp.Err)
	}
	snapOld := resp.N
	read := func(at uint64) []byte {
		t.Helper()
		r := f.Handle(&esm.Request{Op: esm.OpSnapRead, Page: uint32(pid), N: at})
		if r.Err != "" {
			t.Fatalf("follower snap read at %d: %s", at, r.Err)
		}
		return r.Data[off : off+len(base)]
	}
	if got := read(snapOld); string(got) != string(base) {
		t.Fatalf("unresolved tx leaked into snapshot: %q, want %q", got, base)
	}

	// Commit the writer; the old snapshot must still see the old bytes
	// (the commit LSN is beyond it), while a fresh snapshot sees the new.
	if err := wc.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for fLog.FlushedLSN() != leader.DurableLSN() {
		if time.Now().After(deadline) {
			t.Fatal("follower never received the commit")
		}
		time.Sleep(time.Millisecond)
	}
	if got := read(snapOld); string(got) != string(base) {
		t.Fatalf("snapshot at %d drifted after later commit: %q, want %q", snapOld, got, base)
	}
	resp = f.Handle(&esm.Request{Op: esm.OpBeginSnapshot})
	if resp.Err != "" {
		t.Fatalf("fresh snap begin: %s", resp.Err)
	}
	if got := read(resp.N); string(got) != string(dirty) {
		t.Fatalf("fresh snapshot missed the commit: %q, want %q", got, dirty)
	}
}

// Read-your-writes across failover: a replica that has not received a
// commit the client already saw refuses the snapshot begin, and the
// Director advances to one that has it.
func TestSnapshotBeginBehindAdvances(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node
	_, _, lastSeen := commitPages(t, leader.Transport(), 64, []byte("rw"))
	waitConverged(t, nodes)

	// A stale replica that never received a single ship frame.
	stale := NewFollower(disk.NewMemVolume(), wal.NewMemLog(), testCfg("nx", 2, nil))
	defer stale.Close()

	resp := stale.Handle(&esm.Request{Op: esm.OpBeginSnapshot, N: lastSeen})
	if !esm.IsSnapshotBehind(errors.New(resp.Err)) {
		t.Fatalf("stale follower accepted a snapshot it cannot serve: %+v", resp)
	}

	// Director pointed at the stale replica first: the behind error is a
	// refusal, so it must advance and land the begin on a caught-up node.
	d := NewDirector([]Endpoint{
		{ID: "nx", Tr: stale.Transport()},
		{ID: "n1", Tr: leader.Transport()},
	}, DirectorConfig{})
	resp, err := d.Call(&esm.Request{Op: esm.OpBeginSnapshot, N: lastSeen})
	if err != nil {
		t.Fatalf("director begin: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("director begin: %s", resp.Err)
	}
	if resp.N < lastSeen {
		t.Fatalf("snapshot %d older than client's last-seen %d", resp.N, lastSeen)
	}
}

// The full failover drill at the store level: a snapshot session begun
// under the old leader is killed mid-read, a follower is promoted, and the
// session (a) never sees the promoted leader serve its stale snapshot from
// an empty version store, and (b) re-begins at an LSN covering every
// commit it saw (read-your-writes), recovering all data.
func TestSnapshotSessionAcrossFailover(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node
	putValue(t, leader.Transport(), "k1", "v1")
	putValue(t, leader.Transport(), "k2", "v2")
	waitConverged(t, nodes)

	d := NewDirector([]Endpoint{
		{ID: "n1", Tr: nodes[0].node.Transport()},
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
	}, DirectorConfig{})
	s := openStore(t, d)
	if err := s.BeginSnapshot(); err != nil {
		t.Fatalf("begin snapshot: %v", err)
	}
	readRoot := func(name string) (string, error) {
		ref, err := s.Root(name)
		if err != nil {
			return "", err
		}
		buf := make([]byte, 72)
		if err := s.Space().ReadInto(ref, buf); err != nil {
			return "", err
		}
		return string(buf[1 : 1+int(buf[0])]), nil
	}
	if v, err := readRoot("k1"); err != nil || v != "v1" {
		t.Fatalf("pre-failover snap read k1 = %q, %v", v, err)
	}

	kill(nodes[0])
	best, other := nodes[1], nodes[2]
	if other.log.FlushedLSN() > best.log.FlushedLSN() {
		best, other = other, best
	}
	if err := best.node.Campaign(); err != nil {
		t.Logf("campaign on %s denied (%v); trying %s", best.node.ID(), err, other.node.ID())
		best = other
		if err := best.node.Campaign(); err != nil {
			t.Fatalf("campaign: %v", err)
		}
	}

	// The promoted leader's version store is empty: it must refuse the old
	// snapshot rather than serve it too-new data. The session then restarts
	// its snapshot and reads everything it has seen.
	_, err := readRoot("k2")
	if err == nil {
		t.Fatal("promoted leader served a snapshot older than its version store")
	}
	if !strings.Contains(err.Error(), "snapshot too old") {
		t.Fatalf("stale snapshot error = %v, want snapshot-too-old", err)
	}
	if err := s.EndSnapshot(); err != nil {
		t.Fatalf("end stale snapshot: %v", err)
	}
	if err := s.BeginSnapshot(); err != nil {
		t.Fatalf("re-begin snapshot after failover: %v", err)
	}
	for name, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		if v, err := readRoot(name); err != nil || v != want {
			t.Fatalf("post-failover snap read %s = %q, %v (want %q)", name, v, err, want)
		}
	}
	if err := s.EndSnapshot(); err != nil {
		t.Fatalf("end snapshot: %v", err)
	}
}
