// Package repl replicates the page server: the leader ships its WAL byte
// stream to follower nodes over the esm protocol, gates every commit ack on
// a configurable quorum of durable replicas, and promotes a follower via a
// raft-lite election (term + highest-durable-LSN wins) when the leader
// dies. See DESIGN.md §14 for the model.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"quickstore/internal/esm"
	"quickstore/internal/wal"
)

// OpReplAck modes (Request.Mode).
const (
	// ModeStatus probes a node: the response Data is a JSON Status.
	ModeStatus = iota
	// ModeVote requests a vote: Tx = candidate term, N = candidate durable
	// LSN, Name = candidate id. Response N is 1 when granted; Data carries
	// the voter's term as a little-endian u64 either way.
	ModeVote
	// ModeRegister announces a follower to the leader: Name = "id\x00addr".
	// The leader dials addr back and starts shipping (snapshot first).
	ModeRegister
)

// Status is the JSON payload answering an OpReplAck status probe.
type Status struct {
	ID      string `json:"id"`
	Role    string `json:"role"`
	Term    uint64 `json:"term"`
	Durable uint64 `json:"durable_lsn"`
	Leader  string `json:"leader"`
}

// Member is one cluster node as carried in ship and snapshot frames, so
// followers learn the full membership (and can campaign against it) without
// a separate configuration channel.
type Member struct {
	ID   string
	Addr string // dialable address; "" for in-process members
}

// shipPayload is the body of an OpReplAppend request. The log chunk starts
// at the LSN in the request's N field; Catalog, when non-nil, is the
// leader's serialized catalog (the catalog is a direct volume-page write on
// the leader, never WAL-logged, so it must ride out of band).
type shipPayload struct {
	LeaderDurable wal.LSN
	CatVersion    uint64
	Log           []byte
	Catalog       []byte
	Members       []Member
}

// snapPayload is the body of an OpReplSnapshot request: the leader's full
// durable log from LogStart plus every volume page image, replacing the
// follower's state wholesale.
type snapPayload struct {
	LogStart   wal.LSN
	CatVersion uint64
	Log        []byte
	NumPages   uint32 // leader volume geometry; follower pages beyond this are zeroed
	Pages      []pageImage
	Members    []Member
}

type pageImage struct {
	ID   uint32
	Data []byte // exactly pageSize bytes
}

var errShortPayload = errors.New("repl: truncated payload")

func appendU32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendMembers(dst []byte, ms []Member) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(ms)))
	dst = append(dst, tmp[:]...)
	for _, m := range ms {
		binary.LittleEndian.PutUint16(tmp[:], uint16(len(m.ID)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, m.ID...)
		binary.LittleEndian.PutUint16(tmp[:], uint16(len(m.Addr)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, m.Addr...)
	}
	return dst
}

// cursor is a bounds-checked reader over a payload; every take fails
// cleanly on truncation instead of slicing past the end (the fuzzers feed
// arbitrary prefixes of valid frames).
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.buf)-c.off < n {
		c.err = errShortPayload
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) bytes() []byte {
	n := c.u32()
	return c.take(int(n))
}

func (c *cursor) members() []Member {
	n := int(c.u16())
	var ms []Member
	for i := 0; i < n; i++ {
		id := string(c.take(int(c.u16())))
		addr := string(c.take(int(c.u16())))
		if c.err != nil {
			return nil
		}
		ms = append(ms, Member{ID: id, Addr: addr})
	}
	return ms
}

func (p *shipPayload) marshal() []byte {
	dst := make([]byte, 0, 32+len(p.Log)+len(p.Catalog))
	dst = appendU64(dst, uint64(p.LeaderDurable))
	dst = appendU64(dst, p.CatVersion)
	dst = appendBytes(dst, p.Log)
	dst = appendBytes(dst, p.Catalog)
	return appendMembers(dst, p.Members)
}

func parseShip(buf []byte) (*shipPayload, error) {
	c := cursor{buf: buf}
	p := &shipPayload{
		LeaderDurable: wal.LSN(c.u64()),
		CatVersion:    c.u64(),
		Log:           c.bytes(),
		Catalog:       c.bytes(),
	}
	p.Members = c.members()
	if c.err != nil {
		return nil, c.err
	}
	return p, nil
}

func (p *snapPayload) marshal(pageSize int) []byte {
	dst := make([]byte, 0, 32+len(p.Log)+len(p.Pages)*(4+pageSize))
	dst = appendU64(dst, uint64(p.LogStart))
	dst = appendU64(dst, p.CatVersion)
	dst = appendBytes(dst, p.Log)
	dst = appendU32(dst, p.NumPages)
	dst = appendU32(dst, uint32(len(p.Pages)))
	for _, pg := range p.Pages {
		dst = appendU32(dst, pg.ID)
		dst = append(dst, pg.Data...)
	}
	return appendMembers(dst, p.Members)
}

func parseSnap(buf []byte, pageSize int) (*snapPayload, error) {
	c := cursor{buf: buf}
	p := &snapPayload{
		LogStart:   wal.LSN(c.u64()),
		CatVersion: c.u64(),
		Log:        c.bytes(),
	}
	p.NumPages = c.u32()
	n := int(c.u32())
	for i := 0; i < n; i++ {
		id := c.u32()
		data := c.take(pageSize)
		if c.err != nil {
			return nil, c.err
		}
		p.Pages = append(p.Pages, pageImage{ID: id, Data: data})
	}
	p.Members = c.members()
	if c.err != nil {
		return nil, c.err
	}
	return p, nil
}

// Fencing and redirect errors travel the protocol as strings; the prefixes
// below are the contract the Director and the shipper parse.
const (
	staleTermPrefix = "repl: stale term"
	notLeaderPrefix = "repl: not leader"
)

func staleTermError(got, current uint64) string {
	return fmt.Sprintf("%s %d (current term %d)", staleTermPrefix, got, current)
}

func notLeaderError(leaderID, leaderAddr string) string {
	if leaderID == "" {
		return notLeaderPrefix + "; no leader known (election pending)"
	}
	return fmt.Sprintf("%s; leader=%s addr=%s", notLeaderPrefix, leaderID, leaderAddr)
}

// IsNotLeader reports whether a Response.Err is a leader redirect.
func IsNotLeader(errStr string) bool { return strings.HasPrefix(errStr, notLeaderPrefix) }

// IsStaleTerm reports whether a Response.Err is a term fence.
func IsStaleTerm(errStr string) bool { return strings.HasPrefix(errStr, staleTermPrefix) }

// leaderAddrFrom extracts the redirect target from a not-leader error;
// empty when the rejecting node knew no leader.
func leaderAddrFrom(errStr string) string {
	i := strings.Index(errStr, "addr=")
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(errStr[i+len("addr="):])
}

// statusJSON marshals a Status; the inverse of ParseStatus.
func statusJSON(st *Status) []byte {
	b, _ := json.Marshal(st)
	return b
}

// ParseStatus decodes an OpReplAck status response payload.
func ParseStatus(data []byte) (*Status, error) {
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("repl: bad status payload: %w", err)
	}
	return &st, nil
}

// StatusOf probes a node through tr.
func StatusOf(tr esm.Transport) (*Status, error) {
	resp, err := tr.Call(&esm.Request{Op: esm.OpReplAck, Mode: ModeStatus})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return ParseStatus(resp.Data)
}
