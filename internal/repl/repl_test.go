package repl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"quickstore/internal/core"
	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/faultinject"
	"quickstore/internal/wal"
)

// testNode bundles one cluster member's storage with its repl node.
type testNode struct {
	vol   *disk.MemVolume
	log   *wal.Log
	plane *faultinject.Plane
	node  *Node
}

func testCfg(id string, quorum int, plane *faultinject.Plane) Config {
	return Config{
		ID:                id,
		Quorum:            quorum,
		HeartbeatInterval: 10 * time.Millisecond,
		QuorumTimeout:     5 * time.Second,
		Server:            esm.ServerConfig{BufferPages: 64, MVCC: true},
		Fault:             plane,
	}
}

// newCluster builds a leader plus followers-1 follower nodes, fully wired
// with in-process transports.
func newCluster(t *testing.T, n, quorum int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		tn := &testNode{
			vol:   disk.NewMemVolume(),
			log:   wal.NewMemLog(),
			plane: faultinject.New(int64(i + 1)),
		}
		id := fmt.Sprintf("n%d", i+1)
		cfg := testCfg(id, quorum, tn.plane)
		if i == 0 {
			scfg := cfg.Server
			scfg.Fault = tn.plane
			srv, err := esm.NewServer(tn.vol, tn.log, scfg)
			if err != nil {
				t.Fatal(err)
			}
			tn.node = NewLeader(srv, cfg)
		} else {
			tn.node = NewFollower(tn.vol, tn.log, cfg)
		}
		nodes[i] = tn
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.node.AddPeer(b.node.ID(), "", b.node.Transport())
			}
		}
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Close()
		}
	})
	return nodes
}

// waitConverged blocks until every node's durable LSN matches the
// leader's (nodes[0]).
func waitConverged(t *testing.T, nodes []*testNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		target := nodes[0].node.DurableLSN()
		ok := true
		for _, tn := range nodes[1:] {
			if tn.log.FlushedLSN() != target {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never converged")
		}
		time.Sleep(time.Millisecond)
	}
}

func kill(tn *testNode) {
	tn.plane.ArmCrash("test.kill", 1)
	tn.plane.Hit("test.kill")
}

// openStore attaches a full QuickStore session through tr; the core layer's
// diff-based commit logs every changed page byte, which is exactly what log
// shipping needs for followers to reconstruct pages at promotion.
func openStore(t *testing.T, tr esm.Transport) *core.Store {
	t.Helper()
	c := esm.NewClient(tr, esm.ClientConfig{BufferPages: 64})
	s, err := core.Open(c, core.Config{})
	if err != nil {
		s, err = core.New(c, core.Config{})
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// putValue commits one named object through tr.
func putValue(t *testing.T, tr esm.Transport, name, value string) {
	t.Helper()
	s := openStore(t, tr)
	if err := s.Begin(); err != nil {
		t.Fatalf("put %s: begin: %v", name, err)
	}
	cl := s.NewCluster()
	ref, err := s.Alloc(cl, 72, nil)
	if err != nil {
		t.Fatalf("put %s: alloc: %v", name, err)
	}
	buf := make([]byte, 72)
	buf[0] = byte(len(value))
	copy(buf[1:], value)
	if err := s.Space().WriteBytes(ref, buf); err != nil {
		t.Fatalf("put %s: write: %v", name, err)
	}
	if err := s.SetRoot(name, ref); err != nil {
		t.Fatalf("put %s: set root: %v", name, err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("put %s: commit: %v", name, err)
	}
}

// getValue reads a named object back through tr.
func getValue(t *testing.T, tr esm.Transport, name string) (string, error) {
	t.Helper()
	s := openStore(t, tr)
	if err := s.Begin(); err != nil {
		return "", err
	}
	defer s.Abort()
	ref, err := s.Root(name)
	if err != nil {
		return "", err
	}
	buf := make([]byte, 72)
	if err := s.Space().ReadInto(ref, buf); err != nil {
		return "", err
	}
	n := int(buf[0])
	if n > 71 {
		return "", fmt.Errorf("corrupt payload length %d", n)
	}
	return string(buf[1 : 1+n]), nil
}

func TestQuorumCommitReplicates(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node
	putValue(t, leader.Transport(), "a", "alpha")
	putValue(t, leader.Transport(), "b", "beta")

	st := leader.ReplStats()
	if st.QuorumCommits < 2 {
		t.Fatalf("quorum commits = %d, want >= 2", st.QuorumCommits)
	}
	// With quorum 2 of 3, at least one follower is durable through the
	// last commit at ack time; the heartbeat catches the other up. Wait
	// for full convergence, then check byte-for-byte log equality.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if nodes[1].log.FlushedLSN() == leader.DurableLSN() &&
			nodes[2].log.FlushedLSN() == leader.DurableLSN() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never converged: leader=%d f1=%d f2=%d",
				leader.DurableLSN(), nodes[1].log.FlushedLSN(), nodes[2].log.FlushedLSN())
		}
		time.Sleep(time.Millisecond)
	}
	if v, err := getValue(t, leader.Transport(), "a"); err != nil || v != "alpha" {
		t.Fatalf("read a = %q, %v", v, err)
	}
}

func TestFollowerRedirectsClients(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	follower := nodes[1].node
	resp := follower.Handle(&esm.Request{Op: esm.OpBegin})
	if !IsNotLeader(resp.Err) {
		t.Fatalf("follower answered a client op: %+v", resp)
	}
	// A Director pointed at the follower first still lands on the leader.
	d := NewDirector([]Endpoint{
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
		{ID: "n1", Tr: nodes[0].node.Transport()},
	}, DirectorConfig{})
	putValue(t, d, "r", "routed")
	if v, err := getValue(t, d, "r"); err != nil || v != "routed" {
		t.Fatalf("read via director = %q, %v", v, err)
	}
}

func TestFailoverPreservesAckedCommits(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	leader := nodes[0].node
	for i := 0; i < 8; i++ {
		putValue(t, leader.Transport(), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	kill(nodes[0])

	// Elect the follower with the longest durable log; with quorum 2 it is
	// guaranteed to hold every acked commit. It may still be denied when
	// the OTHER follower holds a newer catalog (the catalog ships out of
	// band) — then that one must win instead.
	best, other := nodes[1], nodes[2]
	if other.log.FlushedLSN() > best.log.FlushedLSN() {
		best, other = other, best
	}
	if err := best.node.Campaign(); err != nil {
		t.Logf("campaign on %s denied (%v); trying %s", best.node.ID(), err, other.node.ID())
		best = other
		if err := best.node.Campaign(); err != nil {
			t.Fatalf("campaign: %v", err)
		}
	}
	if best.node.Role() != RoleLeader {
		t.Fatalf("campaign won but role = %v", best.node.Role())
	}
	if best.node.Term() < 2 {
		t.Fatalf("term after failover = %d, want >= 2", best.node.Term())
	}

	// Clients re-dial through the Director and find the new leader.
	d := NewDirector([]Endpoint{
		{ID: "n1", Tr: nodes[0].node.Transport()},
		{ID: "n2", Tr: nodes[1].node.Transport()},
		{ID: "n3", Tr: nodes[2].node.Transport()},
	}, DirectorConfig{})
	for i := 0; i < 8; i++ {
		v, err := getValue(t, d, fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("k%d lost after failover: %v", i, err)
		}
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q after failover", i, v)
		}
	}
	// And the new leader still reaches quorum (itself + the other
	// follower) for fresh commits.
	putValue(t, d, "post", "failover")
	if v, err := getValue(t, d, "post"); err != nil || v != "failover" {
		t.Fatalf("post-failover write = %q, %v", v, err)
	}
	if st := best.node.ReplStats(); st.Elections != 1 {
		t.Fatalf("elections = %d, want 1", st.Elections)
	}
}

func TestStaleLeaderIsFenced(t *testing.T) {
	nodes := newCluster(t, 3, 2)
	oldLeader := nodes[0].node
	putValue(t, oldLeader.Transport(), "pre", "one")
	waitConverged(t, nodes)

	// Promote n2 while n1 is still alive: n1 must step down on the vote
	// (term 2 > term 1) and refuse client work afterwards.
	if err := nodes[1].node.Campaign(); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for oldLeader.Role() == RoleLeader {
		if time.Now().After(deadline) {
			t.Fatal("old leader never stepped down")
		}
		time.Sleep(time.Millisecond)
	}
	resp := oldLeader.Handle(&esm.Request{Op: esm.OpBegin})
	if !IsNotLeader(resp.Err) {
		t.Fatalf("deposed leader still serving: %+v", resp)
	}
	// A ship frame stamped with the dead term is fenced.
	resp = nodes[2].node.Handle(&esm.Request{Op: esm.OpReplAppend, Tx: 1, N: 1, Name: "n1", Data: (&shipPayload{}).marshal()})
	if !IsStaleTerm(resp.Err) {
		t.Fatalf("stale-term append accepted: %+v", resp)
	}
	// Data written under term 1 survives under term 2.
	if v, err := getValue(t, nodes[1].node.Transport(), "pre"); err != nil || v != "one" {
		t.Fatalf("pre-failover data = %q, %v", v, err)
	}
}

func TestQuorumTimeoutWhenFollowersUnreachable(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := esm.NewServer(vol, logf, esm.ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg("n1", 2, nil)
	cfg.QuorumTimeout = 200 * time.Millisecond
	leader := NewLeader(srv, cfg)
	defer leader.Close()
	// The only follower is dead from the start: quorum 2 is unreachable.
	dead := &testNode{plane: faultinject.New(1)}
	deadVol, deadLog := disk.NewMemVolume(), wal.NewMemLog()
	dead.node = NewFollower(deadVol, deadLog, testCfg("n2", 2, dead.plane))
	defer dead.node.Close()
	kill(dead)
	leader.AddPeer("n2", "", dead.node.Transport())

	c := esm.NewClient(leader.Transport(), esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("f"); err != nil {
		t.Fatal(err)
	}
	err = c.Commit()
	if err == nil {
		t.Fatal("commit acked without quorum")
	}
	if !strings.Contains(err.Error(), ErrQuorumTimeout.Error()) {
		t.Fatalf("commit error = %v, want quorum timeout", err)
	}
}

func TestLateFollowerCatchesUpBySnapshot(t *testing.T) {
	nodes := newCluster(t, 1, 1)
	leader := nodes[0].node
	putValue(t, leader.Transport(), "old", "data")
	// Checkpoint truncates the log: a follower attaching now cannot be
	// served by log shipping alone.
	if err := leader.CurrentServer().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if leader.log.StartLSN() == 1 {
		t.Fatal("setup: checkpoint did not truncate the log")
	}

	fVol, fLog := disk.NewMemVolume(), wal.NewMemLog()
	f := NewFollower(fVol, fLog, testCfg("n2", 1, nil))
	defer f.Close()
	f.AddPeer("n1", "", leader.Transport())
	leader.AddPeer("n2", "", f.Transport())

	deadline := time.Now().Add(5 * time.Second)
	for fLog.FlushedLSN() != leader.DurableLSN() || f.Role() != RoleFollower {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: leader=%d follower=%d",
				leader.DurableLSN(), fLog.FlushedLSN())
		}
		time.Sleep(time.Millisecond)
	}
	if st := leader.ReplStats(); st.SnapshotsSent < 1 {
		t.Fatalf("snapshots sent = %d, want >= 1", st.SnapshotsSent)
	}
	// Promote the snapshot-fed follower and read the data back from it.
	if err := f.Campaign(); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if v, err := getValue(t, f.Transport(), "old"); err != nil || v != "data" {
		t.Fatalf("snapshot data on promoted follower = %q, %v", v, err)
	}
}

func TestWaitQuorumFencedOnStepDown(t *testing.T) {
	nodes := newCluster(t, 3, 3) // quorum 3: unreachable once a follower dies
	leader := nodes[0].node
	kill(nodes[2])
	done := make(chan error, 1)
	go func() {
		done <- leader.WaitQuorum(leader.DurableLSN(), 0)
	}()
	// A campaign from n2 deposes the leader; the in-flight wait must
	// resolve to a fence, not hang until timeout.
	time.Sleep(20 * time.Millisecond)
	_ = nodes[1].node.Campaign() // may fail for lack of majority; the vote alone deposes n1
	select {
	case err := <-done:
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("WaitQuorum = %v, want ErrFenced", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("WaitQuorum hung after step-down")
	}
}
