package repl

import (
	"bytes"
	"reflect"
	"testing"

	"quickstore/internal/wal"
)

func sampleShip() *shipPayload {
	return &shipPayload{
		LeaderDurable: 4242,
		CatVersion:    7,
		Log:           []byte("fifty-byte-header records would live here"),
		Catalog:       []byte(`{"roots":{}}`),
		Members: []Member{
			{ID: "n1", Addr: "127.0.0.1:7070"},
			{ID: "n2", Addr: "127.0.0.1:7071"},
			{ID: "n3", Addr: ""},
		},
	}
}

func sampleSnap(pageSize int) *snapPayload {
	mk := func(fill byte) []byte {
		b := make([]byte, pageSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	return &snapPayload{
		LogStart:   1001,
		CatVersion: 3,
		Log:        []byte("log tail"),
		NumPages:   5,
		Pages: []pageImage{
			{ID: 1, Data: mk(0xAA)},
			{ID: 3, Data: mk(0x55)},
		},
		Members: []Member{{ID: "n1", Addr: "a"}, {ID: "n2", Addr: "b"}},
	}
}

func TestShipPayloadRoundTrip(t *testing.T) {
	p := sampleShip()
	got, err := parseShip(p.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", p, got)
	}
	// Empty payload fields survive too (heartbeat frames).
	hb := &shipPayload{LeaderDurable: 9}
	got, err = parseShip(hb.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaderDurable != 9 || len(got.Log) != 0 || len(got.Catalog) != 0 || got.Members != nil {
		t.Fatalf("heartbeat round trip: %+v", got)
	}
}

func TestSnapPayloadRoundTrip(t *testing.T) {
	const pageSize = 64
	p := sampleSnap(pageSize)
	got, err := parseSnap(p.marshal(pageSize), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, got)
	}
}

// TestTruncatedFramesRejected feeds every proper prefix of valid frames to
// the parsers: all must fail cleanly (no panic, no partial success), the
// snapshot frame in particular — its page images are the largest field and
// a truncated transfer must never install half a page set.
func TestTruncatedFramesRejected(t *testing.T) {
	const pageSize = 64
	ship := sampleShip().marshal()
	for n := 0; n < len(ship); n++ {
		if _, err := parseShip(ship[:n]); err == nil {
			t.Fatalf("parseShip accepted a %d/%d-byte prefix", n, len(ship))
		}
	}
	snap := sampleSnap(pageSize).marshal(pageSize)
	for n := 0; n < len(snap); n++ {
		if _, err := parseSnap(snap[:n], pageSize); err == nil {
			t.Fatalf("parseSnap accepted a %d/%d-byte prefix", n, len(snap))
		}
	}
}

func TestStatusRoundTripAndErrors(t *testing.T) {
	st := &Status{ID: "n2", Role: "follower", Term: 4, Durable: 999, Leader: "n1"}
	got, err := ParseStatus(statusJSON(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("status round trip: %+v vs %+v", st, got)
	}
	e := notLeaderError("n1", "10.0.0.1:7070")
	if !IsNotLeader(e) {
		t.Fatalf("IsNotLeader(%q) = false", e)
	}
	if addr := leaderAddrFrom(e); addr != "10.0.0.1:7070" {
		t.Fatalf("leaderAddrFrom(%q) = %q", e, addr)
	}
	if leaderAddrFrom(notLeaderError("", "")) != "" {
		t.Fatal("election-pending redirect carried an address")
	}
	if !IsStaleTerm(staleTermError(1, 2)) {
		t.Fatal("IsStaleTerm missed its own error")
	}
}

func FuzzParseShip(f *testing.F) {
	f.Add(sampleShip().marshal())
	f.Add((&shipPayload{}).marshal())
	f.Add([]byte{})
	f.Add(sampleShip().marshal()[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseShip(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-marshal to an equivalent payload.
		q, err := parseShip(p.marshal())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if p.LeaderDurable != q.LeaderDurable || !bytes.Equal(p.Log, q.Log) {
			t.Fatalf("marshal/parse not stable: %+v vs %+v", p, q)
		}
	})
}

func FuzzParseSnap(f *testing.F) {
	const pageSize = 64
	f.Add(sampleSnap(pageSize).marshal(pageSize))
	f.Add([]byte{})
	full := sampleSnap(pageSize).marshal(pageSize)
	f.Add(full[:len(full)/2]) // truncated mid page image
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseSnap(data, pageSize)
		if err != nil {
			return
		}
		for _, pg := range p.Pages {
			if len(pg.Data) != pageSize {
				t.Fatalf("page %d parsed with %d bytes", pg.ID, len(pg.Data))
			}
		}
		if _, err := parseSnap(p.marshal(pageSize), pageSize); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}

// FuzzAppendRawShipped drives the follower-side splice with arbitrary
// chunks: AppendRaw must reject garbage without mutating the log.
func FuzzAppendRawShipped(f *testing.F) {
	f.Add(uint64(1), []byte{})
	f.Add(uint64(1), bytes.Repeat([]byte{0x01}, 64))
	f.Fuzz(func(t *testing.T, start uint64, chunk []byte) {
		l := wal.NewMemLog()
		before := l.FlushedLSN()
		if err := l.AppendRaw(wal.LSN(start), chunk); err != nil {
			if l.FlushedLSN() != before {
				t.Fatal("failed AppendRaw mutated durable state")
			}
		}
	})
}
