package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/wal"
)

// Follower-side snapshot reads.
//
// A follower has no esm.Server (and so no version store), but it holds two
// things that together determine every committed state up to its durable
// LSN: the volume image from its last snapshot install, and the shipped WAL
// suffix. A snapshot read at S is answered by per-page point-in-time
// recovery: start from the installed page image, redo committed-at-S
// updates the image predates, and undo updates of transactions unresolved
// at S. This is O(log length) per page — the follower path trades
// throughput for availability (it only carries reads while the leader is
// unreachable), so correctness-first is the right cost model.
//
// Two invariants make the reconstruction sound:
//
//   - buildSnapshot ships the leader's log from the leader's own StartLSN,
//     and checkpoints never truncate past the first record of an active
//     transaction. So for any S >= StartLSN, the log holds the before-image
//     of every update that could be unresolved at S.
//   - The installed page images obey the WAL rule on the leader (pages are
//     written back only after their records are durable), and DurableFrom
//     ships everything durable. So pageLSN <= FlushedLSN at install, and
//     the follower's volume never changes afterwards except by a newer
//     install.

// handleSnapBegin answers OpBeginSnapshot on a non-leader. The snapshot
// point is the follower's durable LSN; everything at or below it is
// reconstructible. Read-your-writes: if the client has seen a commit this
// replica hasn't received yet, refuse with a behind error so the Director
// tries the next replica.
func (n *Node) handleSnapBegin(req *esm.Request) *esm.Response {
	// Snapshot visibility is inclusive (a commit with LSN <= S is seen),
	// and FlushedLSN is an exclusive end — the NEXT record may be assigned
	// exactly that value. Serve one below it: every durable record is
	// visible, nothing appended later ever is.
	s := n.log.FlushedLSN() - 1
	if s == 0 {
		s = 1 // snapshot 0 is the client's no-session sentinel
	}
	if req.N > uint64(s) {
		return &esm.Response{Err: esm.SnapshotBehindError(uint64(s), req.N)}
	}
	// No pin: the follower's log only grows (a snapshot install can cut
	// it, which snapReadPage detects via StartLSN and reports as too old).
	return &esm.Response{N: uint64(s)}
}

// handleSnapRead answers OpSnapRead on a non-leader.
func (n *Node) handleSnapRead(req *esm.Request) *esm.Response {
	out, err := n.snapReadPage(disk.PageID(req.Page), wal.LSN(req.N))
	if err != nil {
		return &esm.Response{Err: err.Error()}
	}
	return &esm.Response{Page: req.Page, Data: out}
}

// snapReadPage reconstructs page pid as of snapshot LSN snap.
func (n *Node) snapReadPage(pid disk.PageID, snap wal.LSN) ([]byte, error) {
	if start := n.log.StartLSN(); snap < start {
		// A snapshot install replaced our log since this snapshot began.
		return nil, fmt.Errorf("repl: SnapRead(%d) at %d: snapshot too old (log starts at %d)", pid, snap, start)
	}
	if s := n.log.FlushedLSN(); snap >= s {
		// The session began elsewhere at an LSN we haven't received (a
		// record at exactly snap would be visible but isn't durable here).
		// Another replica may have it: same advance semantics as begin.
		return nil, errors.New(esm.SnapshotBehindError(uint64(s-1), uint64(snap)))
	}
	buf := make([]byte, disk.PageSize)
	if err := n.vol.ReadPage(pid, buf); err != nil {
		if !errors.Is(err, disk.ErrPageOutOfRange) {
			return nil, err
		}
		// Allocated on the leader after our install: the page started as
		// zeroes there too, and the redo pass below replays its history.
	}

	// One scan: transaction outcomes as of snap, plus this page's records.
	committed := make(map[uint64]bool)
	aborted := make(map[uint64]bool)
	var recs []wal.Record
	err := n.log.Iterate(func(r wal.Record) bool {
		if r.LSN > snap {
			return false // records beyond the snapshot don't exist for it
		}
		switch r.Type {
		case wal.RecCommit:
			committed[r.Tx] = true
		case wal.RecAbort:
			aborted[r.Tx] = true
		case wal.RecUpdate, wal.RecCLR:
			if r.Page == uint32(pid) {
				recs = append(recs, r)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		// Raw pages (bulk object payloads) carry no page header; only
		// touch bytes when log records prove the first 8 bytes are an LSN.
		return buf, nil
	}
	pageLSN := wal.LSN(pageLSNOf(buf))

	// Redo forward: committed-at-snap updates the installed image predates,
	// and every CLR (a CLR re-applies a before-image, so replaying one for
	// a transaction we also undo below is idempotent: CLR.New == Old).
	for _, r := range recs {
		if r.LSN <= pageLSN {
			continue // already reflected in the installed image
		}
		if r.Type == wal.RecCLR || committed[r.Tx] {
			copy(buf[int(r.Off):int(r.Off)+len(r.New)], r.New)
		}
	}
	// Undo backward: updates that reached the installed image but whose
	// transaction is unresolved at snap (no commit or abort record yet —
	// including transactions that commit after snap).
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type != wal.RecUpdate || committed[r.Tx] || aborted[r.Tx] {
			continue
		}
		if r.LSN > pageLSN || len(r.Old) == 0 {
			continue // never reached the image, or redo-only
		}
		copy(buf[int(r.Off):int(r.Off)+len(r.Old)], r.Old)
	}
	return buf, nil
}

// pageLSNOf reads the page-header LSN (first 8 bytes, little-endian) —
// the same layout internal/esm stamps on every logged page.
func pageLSNOf(buf []byte) uint64 {
	return binary.LittleEndian.Uint64(buf[:8])
}
