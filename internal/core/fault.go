package core

import (
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/page"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
)

// handleFault is the QuickStore fault-handling routine (Sections 3.1 and
// 3.4): it resolves the faulting address to a page descriptor, reads the
// page through the storage manager if necessary, processes the page's
// mapping object (assigning virtual frames to every page its pointers
// reference, swizzling only on collision), and enables the requested access.
func (s *Store) handleFault(a vmem.Addr, acc vmem.Access) error {
	if !s.inTx && !s.snapTx {
		return fmt.Errorf("core: persistent access at %#x outside a transaction", a)
	}
	if acc == vmem.AccessWrite && s.snapTx {
		return ErrSnapshotReadOnly
	}
	d := s.tree.Find(a)
	if d == nil {
		return fmt.Errorf("core: wild pointer %#x (no page descriptor)", a)
	}
	s.clock.Charge(sim.CtrMiscFaultCPU, 1)

	if d.IsLarge && d.Pages() > 1 {
		var err error
		d, err = s.splitLarge(d, a)
		if err != nil {
			return err
		}
	}

	// Resolve the disk page behind this frame.
	if d.Pid == disk.InvalidPage || d.FrameIdx < 0 {
		pid, err := s.pidFor(d)
		if err != nil {
			return err
		}
		d.Pid = pid
	}

	pool := s.c.Pool()
	idx, resident := pool.Lookup(d.Pid)
	if !resident {
		var err error
		idx, err = s.c.FetchPage(d.Pid)
		if err != nil {
			return err
		}
	} else if s.c.ConsumePrefetch(idx) {
		// First real use of a speculatively pre-read page: the fault is a
		// buffer hit instead of a synchronous server round trip. The page
		// was never seen this transaction, so swizzle checking below treats
		// it like a fresh read.
		resident = false
	}
	pool.Pin(idx)
	defer pool.Unpin(idx)
	d.FrameIdx = idx
	s.byPid[d.Pid] = d
	data := s.c.PageData(idx)

	// Swizzling work is skipped for pages reread during the same
	// transaction ("the pointers on such pages are guaranteed to be
	// valid") unless relocations have occurred this session, in which case
	// a reread page's disk image may hold stale pointers.
	if !d.IsLarge && (d.SeenTx != s.txSeq || (s.relocations > 0 && !resident)) {
		if err := s.processMapping(d, data); err != nil {
			return err
		}
	}
	d.SeenTx = s.txSeq
	d.Accessed = true

	if err := s.space.Map(d.Lo, data, vmem.ProtRead); err != nil {
		return err
	}
	s.clock.Charge(sim.CtrMmapCall, 1)
	s.clock.Charge(sim.CtrMinFault, 1)

	if acc == vmem.AccessWrite {
		return s.enableWrite(d, data)
	}
	return nil
}

// pidFor computes the disk page backing d's (single-frame) range.
func (s *Store) pidFor(d *PageDesc) (disk.PageID, error) {
	if !d.IsLarge {
		return d.Phys.Page, nil
	}
	info, err := s.largeInfo(d)
	if err != nil {
		return disk.InvalidPage, err
	}
	pageNo := uint32((d.Lo - d.ObjLo) >> vmem.FrameShift)
	if pageNo >= info.Pages {
		return disk.InvalidPage, fmt.Errorf("core: %v beyond large object (%d pages)", d, info.Pages)
	}
	return info.First + disk.PageID(pageNo), nil
}

// splitLarge implements the descriptor splitting of Section 3.3 (Figure 3):
// the unaccessed run containing a is divided into the single page being
// accessed and up to two descriptors for the remaining sub-sequences.
func (s *Store) splitLarge(d *PageDesc, a vmem.Addr) (*PageDesc, error) {
	frame := a.FrameBase()
	s.tree.Remove(d)
	mk := func(lo, hi vmem.Addr) *PageDesc {
		return &PageDesc{
			Lo: lo, Hi: hi,
			ObjLo: d.ObjLo, ObjPages: d.ObjPages,
			Phys:    d.Phys,
			IsLarge: true,
			Pid:     disk.InvalidPage, FrameIdx: -1, RecIdx: -1,
			SeenTx: d.SeenTx,
		}
	}
	mid := mk(frame, frame+vmem.FrameSize)
	if err := s.tree.Insert(mid); err != nil {
		return nil, err
	}
	if frame > d.Lo {
		if err := s.tree.Insert(mk(d.Lo, frame)); err != nil {
			return nil, err
		}
	}
	if frame+vmem.FrameSize < d.Hi {
		if err := s.tree.Insert(mk(frame+vmem.FrameSize, d.Hi)); err != nil {
			return nil, err
		}
	}
	// Only one hash entry per object (the paper keeps the entry for the
	// first page); repoint it at a surviving descriptor.
	s.byOID[d.Phys] = mid
	return mid, nil
}

// processMapping reads the page's mapping object and makes sure every page
// referenced by pointers on this page has a virtual frame assigned
// (Figure 5). When an assignment differs from the one recorded in the
// mapping object — a collision, or injected relocation — the page's
// pointers are swizzled.
func (s *Store) processMapping(d *PageDesc, data []byte) error {
	s.swizzleChecks++
	p := page.MustWrap(data)
	meta, err := readMeta(p)
	if err != nil {
		return err
	}
	if meta.MapOID.IsNil() {
		return nil // never committed with pointers; nothing to process
	}
	s.countMetaRead(meta.MapOID.Page, sim.CtrMapObjectRead)
	mapBytes, _, err := s.c.ReadObject(meta.MapOID)
	if err != nil {
		return fmt.Errorf("core: mapping object of %v: %w", d, err)
	}
	entries, err := unmarshalMapping(mapBytes)
	if err != nil {
		return err
	}
	s.clock.Charge(sim.CtrMapEntry, int64(len(entries)))

	// reloc maps a recorded range base to its current (different) base.
	var reloc map[vmem.Addr]relocTarget
	for _, e := range entries {
		tgt, ok := s.byOID[e.OID]
		if ok {
			if tgt.ObjLo != e.ObjLo {
				if reloc == nil {
					reloc = map[vmem.Addr]relocTarget{}
				}
				reloc[e.ObjLo] = relocTarget{newLo: tgt.ObjLo, pages: e.ObjPages}
			}
			continue
		}
		lo := e.ObjLo
		forced := s.cfg.RelocateFraction > 0 && s.rng.Float64() < s.cfg.RelocateFraction
		if forced || !s.rangeFree(lo, e.ObjPages) {
			lo, err = s.allocFrames(e.ObjPages)
			if err != nil {
				return err
			}
			if reloc == nil {
				reloc = map[vmem.Addr]relocTarget{}
			}
			reloc[e.ObjLo] = relocTarget{newLo: lo, pages: e.ObjPages}
			s.relocations++
		}
		nd := &PageDesc{
			Lo: lo, Hi: lo + vmem.Addr(uint64(e.ObjPages)<<vmem.FrameShift),
			ObjLo: lo, ObjPages: e.ObjPages,
			Phys:    e.OID,
			IsLarge: e.IsLarge,
			Pid:     disk.InvalidPage, FrameIdx: -1, RecIdx: -1,
		}
		if err := s.tree.Insert(nd); err != nil {
			return err
		}
		s.byOID[e.OID] = nd
	}
	if len(reloc) != 0 {
		if err := s.swizzlePage(d, data, meta, reloc); err != nil {
			return err
		}
	}
	return s.prefetchReferenced(d, entries)
}

// prefetchReferenced turns the mapping object just processed into read-ahead:
// every referenced disk page that is neither resident nor already requested
// is enqueued, then the queue is pumped — batches are fetched concurrently
// (OpReadPages) while this thread waits, and the images land in the client
// pool as speculative frames. The mapping object is the paper's own data
// structure; using it as the prefetch oracle adds no I/O of its own.
func (s *Store) prefetchReferenced(d *PageDesc, entries []mapEntry) error {
	if !s.pf.Enabled() {
		return nil
	}
	for _, e := range entries {
		// For large objects e.OID.Page is the descriptor's (small-object)
		// page — still a page a traversal is about to touch.
		s.pf.Enqueue(e.OID.Page)
	}
	return s.pf.Pump()
}

type relocTarget struct {
	newLo vmem.Addr
	pages uint32
}

// swizzlePage rewrites the pointers on a page whose referenced ranges have
// moved. The bitmap object locates the pointers; every pointer must be
// examined because it is not known in advance which ones need updating
// (Section 3.4).
func (s *Store) swizzlePage(d *PageDesc, data []byte, meta metaObject, reloc map[vmem.Addr]relocTarget) error {
	s.countMetaRead(meta.BmOID.Page, sim.CtrBitmapRead)
	bm, _, err := s.c.ReadObject(meta.BmOID)
	if err != nil {
		return fmt.Errorf("core: bitmap object of %v: %w", d, err)
	}

	// One-time relocation (QS-OR) commits the swizzled page, so the
	// original must be preserved for diffing before we touch it. Not in a
	// snapshot session: its frames are private copies at the snapshot LSN,
	// discarded at EndSnapshot, so the swizzle is transient (as in QS) and
	// must neither take the page lock nor mark anything dirty.
	if s.cfg.Relocation == RelocOR && !s.cfg.BulkLoad && !s.snapTx {
		if err := s.ensureRecoveryCopy(d, data); err != nil {
			return err
		}
		if err := s.lockPageX(d); err != nil {
			return err
		}
	}

	swizzled := int64(0)
	forEachPointer(bm, func(off int) bool {
		ptr := vmem.Addr(leU64(data[off:]))
		if ptr == 0 {
			return true
		}
		for oldLo, t := range reloc {
			span := vmem.Addr(uint64(t.pages) << vmem.FrameShift)
			if ptr >= oldLo && ptr < oldLo+span {
				putU64(data[off:], uint64(t.newLo+(ptr-oldLo)))
				swizzled++
				break
			}
		}
		return true
	})
	s.clock.Charge(sim.CtrSwizzledPtr, swizzled)

	if s.cfg.Relocation == RelocOR && !s.snapTx {
		// Commit the new assignment: the page ships at commit and its
		// mapping object is rewritten with the new addresses.
		if idx, ok := s.c.Pool().Lookup(d.Pid); ok {
			s.c.Pool().MarkDirty(idx)
		}
		if !d.Dirtied {
			d.Dirtied = true
			s.dirtied = append(s.dirtied, d)
		}
	}
	return nil
}

// countMetaRead counts a metadata page fetch (mapping or bitmap object)
// when it will actually miss the client pool, so the harness can attribute
// the I/O time split of Table 6.
func (s *Store) countMetaRead(pid disk.PageID, ctr sim.Counter) {
	if _, ok := s.c.Pool().Lookup(pid); !ok {
		s.clock.Charge(ctr, 1)
	}
}

// enableWrite services a write-protection fault on a resident page
// (Section 3.6): copy the page's objects into the recovery buffer, obtain
// the exclusive page lock, and enable write access. Raw large-object pages
// skip the recovery copy: they carry no header for LSN-based recovery, so
// their durability is the whole-page ship at commit (see internal/esm),
// and diffing them would emit unusable log records.
func (s *Store) enableWrite(d *PageDesc, data []byte) error {
	if !s.cfg.BulkLoad {
		if !d.IsLarge && s.freshPages[d.Pid] == nil {
			if err := s.ensureRecoveryCopy(d, data); err != nil {
				return err
			}
		}
		if err := s.lockPageX(d); err != nil {
			return err
		}
	}
	if idx, ok := s.c.Pool().Lookup(d.Pid); ok {
		s.c.Pool().MarkDirty(idx)
	}
	if !d.Dirtied {
		d.Dirtied = true
		s.dirtied = append(s.dirtied, d)
	}
	if err := s.space.Protect(d.Lo, vmem.ProtWrite); err != nil {
		return err
	}
	s.clock.Charge(sim.CtrMmapCall, 1)
	return nil
}

// enableWriteDirect prepares a page for in-place modification by the
// QuickStore runtime itself (object allocation, mapping maintenance), which
// bypasses virtual-memory protection but must follow the same recovery
// protocol.
func (s *Store) enableWriteDirect(d *PageDesc) error {
	data, idx, err := s.residentData(d)
	if err != nil {
		return err
	}
	if !s.cfg.BulkLoad && s.freshPages[d.Pid] == nil {
		if err := s.ensureRecoveryCopy(d, data); err != nil {
			return err
		}
		if err := s.lockPageX(d); err != nil {
			return err
		}
	}
	s.c.Pool().MarkDirty(idx)
	if !d.Dirtied {
		d.Dirtied = true
		s.dirtied = append(s.dirtied, d)
	}
	return nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
