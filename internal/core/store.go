package core

import (
	"errors"
	"fmt"
	"math/rand"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/lock"
	"quickstore/internal/page"
	"quickstore/internal/prefetch"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
)

// Ref is a QuickStore persistent reference: a raw virtual-memory address
// (Figure 4 of the paper). The high bits name a virtual frame; the low 13
// bits are the object's offset within its page. NilRef (0) is the null
// pointer.
type Ref = vmem.Addr

// NilRef is the null persistent pointer.
const NilRef Ref = 0

// ErrSnapshotReadOnly rejects write access inside a snapshot session
// (BeginSnapshot): snapshot reads run without page locks, so letting a
// write through would mutate state no lock protects.
var ErrSnapshotReadOnly = errors.New("core: store is in a read-only snapshot session")

// RelocationMode selects how QuickStore handles pages whose referenced
// objects could not keep their previous virtual addresses (Section 5.5).
type RelocationMode int

// Relocation modes.
const (
	// RelocNormal swizzles on collision and keeps the new mapping in
	// memory only (the default; identical to QS-CR when collisions are
	// natural rather than injected).
	RelocNormal RelocationMode = iota
	// RelocCR (continual relocation) never writes changed mappings back:
	// relocated pages are re-swizzled every time they are faulted in.
	RelocCR
	// RelocOR (one-time relocation) commits changed mappings to the
	// database, turning read-only transactions into update transactions.
	RelocOR
)

// DefaultRecoveryBufferBytes matches the paper's 4MB recovery area.
const DefaultRecoveryBufferBytes = 4 << 20

// DefaultBase is the bottom of the persistent virtual address region.
const DefaultBase vmem.Addr = 0x0000_0800_0000_0000

// DefaultMaxFrames covers 8GB of persistent address space.
const DefaultMaxFrames = 1 << 20

// frameBatch is how many virtual frames the store reserves from the
// persistent global counter per server round trip.
const frameBatch = 256

// Config tunes a Store.
type Config struct {
	// BulkLoad disables recovery copying, diffing, and logging: dirty
	// pages ship whole at commit. Used by the database generator.
	BulkLoad bool
	// RecoveryBufferBytes bounds the recovery area (default 4MB).
	RecoveryBufferBytes int
	// Relocation selects the Section 5.5 policy.
	Relocation RelocationMode
	// RelocateFraction forces this fraction of page-range claims to be
	// relocated even when their previous address is free (the Figure 17
	// experiment). 0 disables injection.
	RelocateFraction float64
	// RelocSeed seeds the relocation-injection RNG.
	RelocSeed int64
	// Base and MaxFrames shape the persistent address region.
	Base      vmem.Addr
	MaxFrames int

	// TraditionalClock replaces the simplified clock of Section 3.5 with
	// the classic reference-bit clock (ablation; reference bits cannot
	// observe raw pointer dereferences, so recently mapped pages get no
	// protection from replacement).
	TraditionalClock bool
	// WholeObjectLogging disables the diffing log generator and logs each
	// modified page in full instead (ablation for the Hoski93b
	// comparison: how much log volume diffing saves).
	WholeObjectLogging bool

	// Prefetch enables the asynchronous mapping-object-driven prefetcher
	// (internal/prefetch): pages named by a faulted page's mapping object
	// are read ahead in batches and landed in the client pool as
	// speculative frames. Off by default; the paper's configuration.
	Prefetch bool
	// PrefetchDepth bounds the hint queue between pumps (0 = default).
	PrefetchDepth int
	// PrefetchBatch is the number of pages per OpReadPages frame (0 = default).
	PrefetchBatch int
	// PrefetchWorkers is the fixed fan-out of concurrent batch fetches
	// per pump (0 = default).
	PrefetchWorkers int
}

func (c *Config) fill() {
	if c.RecoveryBufferBytes == 0 {
		c.RecoveryBufferBytes = DefaultRecoveryBufferBytes
	}
	if c.Base == 0 {
		c.Base = DefaultBase
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = DefaultMaxFrames
	}
}

// Store is one application session's view of a QuickStore database, layered
// on an ESM client session. It is single-threaded, like the paper's client
// process.
type Store struct {
	c     *esm.Client
	clock *sim.Clock
	space *vmem.Space
	cfg   Config

	tree  descTree
	byOID map[esm.OID]*PageDesc
	byPid map[disk.PageID]*PageDesc

	largeGeom map[esm.OID]esm.LargeInfo

	dataFile, mapFile, bmFile uint32
	mapCluster, bmCluster     *esm.Cluster

	frameNext, frameEnd uint64 // frame-number batch from the server counter

	txSeq       uint64
	inTx        bool
	snapTx      bool // read-only snapshot session (BeginSnapshot)
	rec         recoveryBuffer
	dirtied     []*PageDesc
	freshPages  map[disk.PageID]*PageDesc
	relocations int64

	rng    *rand.Rand
	policy *SimplifiedClock // nil under the traditional-clock ablation
	pf     *prefetch.Prefetcher

	// Diagnostics.
	swizzleChecks int64
}

// storeFiles are the ESM files a QuickStore database occupies.
var storeFiles = [3]string{"qs.data", "qs.map", "qs.bitmap"}

// frameCounterName is the persistent global frame counter of Section 3.3.
const frameCounterName = "qs.frames"

// New creates a fresh QuickStore database through client c.
func New(c *esm.Client, cfg Config) (*Store, error) {
	s, err := newStore(c, cfg)
	if err != nil {
		return nil, err
	}
	ids := [3]uint32{}
	for i, name := range storeFiles {
		id, err := c.CreateFile(name)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	s.dataFile, s.mapFile, s.bmFile = ids[0], ids[1], ids[2]
	s.initClusters()
	return s, nil
}

// Open attaches to an existing QuickStore database.
func Open(c *esm.Client, cfg Config) (*Store, error) {
	s, err := newStore(c, cfg)
	if err != nil {
		return nil, err
	}
	ids := [3]uint32{}
	for i, name := range storeFiles {
		id, err := c.OpenFile(name)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	s.dataFile, s.mapFile, s.bmFile = ids[0], ids[1], ids[2]
	s.initClusters()
	return s, nil
}

func newStore(c *esm.Client, cfg Config) (*Store, error) {
	cfg.fill()
	s := &Store{
		c:          c,
		clock:      c.Clock(),
		cfg:        cfg,
		byOID:      map[esm.OID]*PageDesc{},
		byPid:      map[disk.PageID]*PageDesc{},
		largeGeom:  map[esm.OID]esm.LargeInfo{},
		freshPages: map[disk.PageID]*PageDesc{},
		rng:        rand.New(rand.NewSource(cfg.RelocSeed)),
	}
	s.rec.cap = cfg.RecoveryBufferBytes
	s.space = vmem.NewSpace(cfg.Base, cfg.MaxFrames, s.clock)
	s.space.SetHandler(s.handleFault)
	pool := c.Pool()
	pool.OnEvict = s.onEvict
	c.OnRefresh = s.onRefresh
	if !cfg.TraditionalClock {
		s.policy = NewSimplifiedClock(s)
		pool.SetPolicy(s.policy)
	}
	c.BeforeSteal = s.beforeSteal
	// QuickStore's diff logging covers mapped data pages only; the client
	// must log the metadata-file structure it writes itself (bitmap and
	// mapping object slots), or a redo-only restart — and every replication
	// follower at promotion — recovers slotless metadata pages.
	c.LogStructure = true
	s.pf = prefetch.New(prefetch.Config{
		Enabled:   cfg.Prefetch,
		Depth:     cfg.PrefetchDepth,
		BatchSize: cfg.PrefetchBatch,
		Workers:   cfg.PrefetchWorkers,
	}, s.clock, prefetch.Funcs{
		Resident: func(pid disk.PageID) bool { _, ok := pool.Lookup(pid); return ok },
		Fetch:    c.ReadPagesBatch,
		Install:  c.InstallPrefetched,
	})
	return s, nil
}

// Prefetcher exposes the store's prefetcher (introspection/tests).
func (s *Store) Prefetcher() *prefetch.Prefetcher { return s.pf }

func (s *Store) initClusters() {
	s.mapCluster = s.c.NewCluster(s.mapFile)
	s.bmCluster = s.c.NewCluster(s.bmFile)
}

// policyOf returns the installed simplified clock (nil if replaced).
func (s *Store) policyOf() *SimplifiedClock { return s.policy }

// Space returns the simulated virtual-memory space through which all
// persistent object accesses flow.
func (s *Store) Space() *vmem.Space { return s.space }

// Client returns the underlying ESM session.
func (s *Store) Client() *esm.Client { return s.c }

// Clock returns the session cost-model clock.
func (s *Store) Clock() *sim.Clock { return s.clock }

// metaOIDFor is the canonical OID of a small page's meta-object. All
// mapping entries and hash-table keys use this form, so it must be
// deterministic across sessions.
func (s *Store) metaOIDFor(pid disk.PageID) esm.OID {
	return esm.OID{Page: pid, Slot: metaSlot, Unique: 0, File: s.dataFile}
}

// --- Transactions ----------------------------------------------------------

// Begin starts a transaction.
func (s *Store) Begin() error {
	if s.inTx {
		return fmt.Errorf("core: transaction already active")
	}
	if err := s.c.Begin(); err != nil {
		return err
	}
	s.txSeq++
	s.inTx = true
	return nil
}

// BeginSnapshot opens a read-only snapshot session: until EndSnapshot,
// every persistent read observes one consistent commit LSN, served without
// any page locks — concurrent writers on other sessions proceed untouched.
// Write faults and allocating entry points fail with ErrSnapshotReadOnly.
func (s *Store) BeginSnapshot() error {
	if s.inTx || s.snapTx {
		return fmt.Errorf("core: transaction already active")
	}
	if err := s.c.BeginSnapshot(); err != nil {
		return err
	}
	s.txSeq++
	s.snapTx = true
	return nil
}

// EndSnapshot closes the snapshot session. Pages faulted during it are
// evicted from the client pool (the eviction hook revokes their mappings),
// so the next transaction refetches current images.
func (s *Store) EndSnapshot() error {
	if !s.snapTx {
		return esm.ErrNoTx
	}
	err := s.c.EndSnapshot()
	s.snapTx = false
	s.endTx()
	return err
}

// Commit runs the three commit phases of Section 5.2 — diff modified pages
// and generate log records, update the mapping objects of modified pages,
// and ship log plus dirty pages to the server — then releases transaction
// state.
func (s *Store) Commit() error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	// Phase 1: diffing and log generation.
	if err := s.flushRecovery(); err != nil {
		return err
	}
	if err := s.logFreshPages(); err != nil {
		return err
	}
	// Phase 2: mapping-object maintenance for every modified page.
	if err := s.updateMappings(); err != nil {
		return err
	}
	// Phase 3: ESM commit (log force + dirty-page shipping).
	if err := s.c.Commit(); err != nil {
		return err
	}
	s.endTx()
	return nil
}

// Abort discards the transaction. Dirty pages are dropped from the client
// pool (their mappings are revoked via the eviction hook), the server rolls
// back anything that was stolen mid-transaction, and descriptors of pages
// created by the transaction are removed — their virtual frames and disk
// pages are dead, and a cluster cursor still pointing at one must not be
// reused (see Cluster handling in Alloc).
func (s *Store) Abort() error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	s.rec.reset()
	for pid, d := range s.freshPages {
		d.RecIdx = -1
		if d.FrameIdx >= 0 {
			_ = s.space.Unmap(d.Lo)
			d.FrameIdx = -1
		}
		s.tree.Remove(d)
		delete(s.byOID, d.Phys)
		delete(s.byPid, pid)
	}
	if err := s.c.Abort(); err != nil {
		return err
	}
	// The metadata cluster cursors may point at pages the abort just
	// discarded; start fresh ones.
	s.initClusters()
	s.endTx()
	return nil
}

func (s *Store) endTx() {
	for _, d := range s.dirtied {
		if d.FrameIdx >= 0 {
			// Downgrade so the next transaction's first update faults
			// again (new lock, new recovery copy).
			_ = s.space.Protect(d.Lo, vmem.ProtRead)
		}
		d.Dirtied = false
		d.XLocked = false
		d.RecIdx = -1
	}
	s.dirtied = s.dirtied[:0]
	s.freshPages = map[disk.PageID]*PageDesc{}
	s.rec.reset()
	s.inTx = false
}

// --- Virtual frame allocation (Section 3.3) --------------------------------

// allocFrames reserves n contiguous virtual frames. Frame numbers come from
// a persistent global counter so successive program runs never reuse
// addresses unnecessarily; when the counter wraps past the end of the
// space, the in-memory tree is scanned for a free gap.
func (s *Store) allocFrames(n uint32) (vmem.Addr, error) {
	need := uint64(n)
	if s.frameNext+need > s.frameEnd {
		batch := uint64(frameBatch)
		if need > batch {
			batch = need
		}
		start, err := s.c.Counter(frameCounterName, batch)
		if err != nil {
			return 0, err
		}
		s.frameNext, s.frameEnd = start, start+batch
	}
	if s.frameNext+need <= uint64(s.cfg.MaxFrames) {
		lo := s.cfg.Base + vmem.Addr(s.frameNext<<vmem.FrameShift)
		s.frameNext += need
		return lo, nil
	}
	// Wraparound: scan the tree for a gap of n frames (rare; the paper
	// notes it only matters when the database outgrows virtual memory).
	return s.scanForGap(n)
}

func (s *Store) scanForGap(n uint32) (vmem.Addr, error) {
	need := vmem.Addr(uint64(n) << vmem.FrameShift)
	prevEnd := s.cfg.Base
	var found vmem.Addr
	s.tree.Walk(func(d *PageDesc) bool {
		if d.Lo >= prevEnd+need {
			found = prevEnd
			return false
		}
		if d.Hi > prevEnd {
			prevEnd = d.Hi
		}
		return true
	})
	if found == 0 {
		limit := s.cfg.Base + vmem.Addr(uint64(s.cfg.MaxFrames)<<vmem.FrameShift)
		if prevEnd+need <= limit {
			found = prevEnd
		}
	}
	if found == 0 {
		return 0, fmt.Errorf("core: virtual address space exhausted (%d frames wanted)", n)
	}
	return found, nil
}

// rangeFree reports whether [lo, lo+n frames) is inside the space and
// unclaimed.
func (s *Store) rangeFree(lo vmem.Addr, n uint32) bool {
	hi := lo + vmem.Addr(uint64(n)<<vmem.FrameShift)
	limit := s.cfg.Base + vmem.Addr(uint64(s.cfg.MaxFrames)<<vmem.FrameShift)
	if lo < s.cfg.Base || hi > limit || lo&(vmem.FrameSize-1) != 0 {
		return false
	}
	return s.tree.FindOverlap(lo, hi) == nil
}

// --- Page residency helpers ------------------------------------------------

// residentData returns the in-pool bytes of the page behind d, refetching
// and remapping it (read access) if it was evicted. The page is NOT pinned.
func (s *Store) residentData(d *PageDesc) ([]byte, int, error) {
	if d.FrameIdx >= 0 {
		if idx, ok := s.c.Pool().Lookup(d.Pid); ok && idx == d.FrameIdx {
			return s.c.PageData(idx), idx, nil
		}
		d.FrameIdx = -1
	}
	if !d.Accessed || d.Pid == disk.InvalidPage {
		return nil, 0, fmt.Errorf("core: %v has no disk page yet", d)
	}
	idx, err := s.c.FetchPage(d.Pid)
	if err != nil {
		return nil, 0, err
	}
	d.FrameIdx = idx
	s.byPid[d.Pid] = d
	data := s.c.PageData(idx)
	if err := s.space.Map(d.Lo, data, vmem.ProtRead); err != nil {
		return nil, 0, err
	}
	s.clock.Charge(sim.CtrMmapCall, 1)
	return data, idx, nil
}

// onEvict revokes the virtual-memory mapping of an evicted data page
// (Figure 1b: access to frame A is disabled when page a leaves the pool).
func (s *Store) onEvict(pid disk.PageID, frame int) {
	// An evicted page may be referenced again later; let it be re-prefetched.
	s.pf.Forget(pid)
	d, ok := s.byPid[pid]
	if !ok {
		return
	}
	_ = s.space.Unmap(d.Lo)
	s.clock.Charge(sim.CtrMmapCall, 1)
	d.FrameIdx = -1
	delete(s.byPid, pid)
}

// onRefresh handles a coherence repair rewriting a resident frame in
// place: the frame now holds another session's committed image — pointers
// swizzled to THAT session's address assignments, not this one's — so the
// mapping is revoked and the swizzle state discarded exactly as if the
// page had been evicted and refetched. The next access faults, finds the
// page still resident, and re-processes its mapping object (SeenTx zero
// forces this even within the same transaction).
func (s *Store) onRefresh(pid disk.PageID, frame int) {
	d, ok := s.byPid[pid]
	if !ok {
		return
	}
	_ = s.space.Unmap(d.Lo)
	s.clock.Charge(sim.CtrMmapCall, 1)
	d.FrameIdx = -1
	d.SeenTx = 0
	delete(s.byPid, pid)
}

// beforeSteal preserves write-ahead logging when the pool ships a dirty page
// mid-transaction: the page is diffed against its recovery copy and the log
// records are emitted before the page image leaves the client.
func (s *Store) beforeSteal(pid disk.PageID, data []byte) error {
	if s.cfg.BulkLoad {
		delete(s.freshPages, pid)
		if d, ok := s.byPid[pid]; ok {
			d.RecIdx = -1
		}
		return nil
	}
	if d, ok := s.freshPages[pid]; ok {
		s.logWholePage(pid, data)
		delete(s.freshPages, pid)
		d.RecIdx = -1
		return nil
	}
	d, ok := s.byPid[pid]
	if !ok || d.RecIdx < 0 {
		return nil
	}
	s.diffAndLog(d, data)
	return nil
}

// --- Roots ------------------------------------------------------------------

// SetRoot registers ref under a persistent name. The referenced object must
// live on a small-object page. Setting NilRef clears the root.
func (s *Store) SetRoot(name string, ref Ref) error {
	if ref == NilRef {
		return s.c.SetRoot(name, esm.NilOID, 0)
	}
	d := s.tree.Find(ref)
	if d == nil {
		return fmt.Errorf("core: SetRoot(%q): %#x is not a persistent address", name, ref)
	}
	if d.IsLarge {
		return fmt.Errorf("core: SetRoot(%q): roots must reference small objects", name)
	}
	return s.c.SetRoot(name, d.Phys, uint64(ref))
}

// Root resolves a persistent name to its reference, entering the root's
// page into the current mapping if it is not there yet.
func (s *Store) Root(name string) (Ref, error) {
	oid, aux, err := s.c.GetRoot(name)
	if err != nil {
		return NilRef, err
	}
	if oid.IsNil() {
		return NilRef, nil
	}
	ref := Ref(aux)
	if d, ok := s.byOID[oid]; ok {
		// Honor a relocation of the root page within this session.
		return d.Lo + Ref(ref.Offset()), nil
	}
	lo := ref.FrameBase()
	if !s.rangeFree(lo, 1) {
		newLo, err := s.allocFrames(1)
		if err != nil {
			return NilRef, err
		}
		s.relocations++
		lo = newLo
	}
	d := &PageDesc{
		Lo: lo, Hi: lo + vmem.FrameSize,
		ObjLo: lo, ObjPages: 1,
		Phys:     oid,
		FrameIdx: -1, RecIdx: -1,
	}
	if err := s.tree.Insert(d); err != nil {
		return NilRef, err
	}
	s.byOID[oid] = d
	return lo + Ref(ref.Offset()), nil
}

// --- Object allocation ------------------------------------------------------

// Cluster places consecutive allocations on the same page, like the paper's
// composite-part clusters.
type Cluster struct {
	s    *Store
	desc *PageDesc
}

// NewCluster starts a fresh placement cursor in the data file.
func (s *Store) NewCluster() *Cluster { return &Cluster{s: s} }

// Break forces the next allocation onto a fresh page.
func (cl *Cluster) Break() { cl.desc = nil }

// Alloc creates a size-byte object (rounded up to 8 bytes so embedded
// pointers stay word-aligned for the page bitmap) with pointers at the
// given byte offsets. It returns the object's persistent reference.
func (s *Store) Alloc(cl *Cluster, size int, refOffsets []int) (Ref, error) {
	if !s.inTx {
		return NilRef, esm.ErrNoTx
	}
	size = (size + 7) &^ 7
	for attempt := 0; attempt < 2; attempt++ {
		// A cluster cursor can outlive its page: an abort removes the
		// descriptors of pages created by the rolled-back transaction.
		if cl.desc != nil && s.tree.Find(cl.desc.Lo) != cl.desc {
			cl.desc = nil
		}
		if cl.desc == nil {
			if err := s.newDataPage(cl); err != nil {
				return NilRef, err
			}
		}
		d := cl.desc
		data, idx, err := s.residentData(d)
		if err != nil {
			return NilRef, err
		}
		p := page.MustWrap(data)
		if p.FreeSpace() < size {
			cl.desc = nil
			continue
		}
		if err := s.enableWriteDirect(d); err != nil {
			return NilRef, err
		}
		// enableWriteDirect may flush the recovery buffer, which cannot
		// evict d (no fetches happen), so data stays valid.
		_, off, err := p.Insert(size)
		if err != nil {
			return NilRef, err
		}
		s.c.Pool().MarkDirty(idx)
		if len(refOffsets) > 0 {
			if err := s.setBitmapBits(d, off, refOffsets); err != nil {
				return NilRef, err
			}
		}
		return d.Lo + Ref(off), nil
	}
	return NilRef, fmt.Errorf("core: object of %d bytes does not fit on an empty page", size)
}

// newDataPage allocates and formats a fresh QuickStore small-object page:
// slotted layout, meta-object in slot 0, a zeroed bitmap object in the
// bitmap file, a virtual frame from the global counter, and a writable
// mapping.
func (s *Store) newDataPage(cl *Cluster) error {
	pid, err := s.c.AllocPages(1)
	if err != nil {
		return err
	}
	idx, err := s.c.Pool().Put(pid, func([]byte) error { return nil })
	if err != nil {
		return err
	}
	data := s.c.PageData(idx)
	p := page.Init(data, page.TypeSlotted)
	p.SetFileID(s.dataFile)
	if _, _, err := p.Insert(metaObjSize); err != nil {
		return err
	}
	s.c.Pool().Pin(idx)
	bmOID, _, err := s.c.CreateObject(s.bmCluster, bitmapBytes)
	s.c.Pool().Unpin(idx)
	if err != nil {
		return err
	}
	lo, err := s.allocFrames(1)
	if err != nil {
		return err
	}
	// Re-resolve the frame: creating the bitmap object may have moved
	// things around (it cannot evict pid while pinned, but be safe).
	idx, ok := s.c.Pool().Lookup(pid)
	if !ok {
		return fmt.Errorf("core: fresh page %d evicted during setup", pid)
	}
	data = s.c.PageData(idx)
	p = page.MustWrap(data)
	if err := writeMeta(p, metaObject{VFrame: lo, MapOID: esm.NilOID, BmOID: bmOID}); err != nil {
		return err
	}
	s.c.Pool().MarkDirty(idx)

	d := &PageDesc{
		Lo: lo, Hi: lo + vmem.FrameSize,
		ObjLo: lo, ObjPages: 1,
		Phys:     s.metaOIDFor(pid),
		Accessed: true,
		SeenTx:   s.txSeq,
		Pid:      pid,
		FrameIdx: idx,
		RecIdx:   -1,
	}
	if err := s.tree.Insert(d); err != nil {
		return err
	}
	s.byOID[d.Phys] = d
	s.byPid[pid] = d
	if err := s.space.Map(lo, data, vmem.ProtWrite); err != nil {
		return err
	}
	s.clock.Charge(sim.CtrMmapCall, 1)
	d.Dirtied = true
	s.dirtied = append(s.dirtied, d)
	s.freshPages[pid] = d
	cl.desc = d
	return nil
}

// setBitmapBits records pointer locations for a new object in the page's
// bitmap object.
func (s *Store) setBitmapBits(d *PageDesc, objOff int, refOffsets []int) error {
	data, _, err := s.residentData(d)
	if err != nil {
		return err
	}
	meta, err := readMeta(page.MustWrap(data))
	if err != nil {
		return err
	}
	bm, bmPageOff, bmFrame, err := s.c.ReadObjectAt(meta.BmOID)
	if err != nil {
		return err
	}
	var old []byte
	if !s.cfg.BulkLoad {
		old = append([]byte(nil), bm...)
	}
	for _, r := range refOffsets {
		off := objOff + r
		if off&7 != 0 {
			return fmt.Errorf("core: pointer offset %d is not 8-aligned", off)
		}
		bitmapSet(bm, off)
	}
	s.c.Pool().MarkDirty(bmFrame)
	if !s.cfg.BulkLoad {
		s.c.LogUpdate(meta.BmOID.Page, bmPageOff, old, append([]byte(nil), bm...))
	}
	return nil
}

// --- Large objects ----------------------------------------------------------

// AllocLarge creates a multi-page object of size bytes (no embedded
// pointers; large objects hold bulk data like the OO7 Manual) and returns
// the persistent reference of its first byte. The descriptor object is
// placed via cl.
func (s *Store) AllocLarge(cl *Cluster, size uint64) (Ref, error) {
	if !s.inTx {
		return NilRef, esm.ErrNoTx
	}
	// The ESM descriptor object (a few words) lives on a QuickStore page;
	// make sure the cluster page can host it so the low-level cluster API
	// never silently starts an unformatted page.
	const descRoom = 64
	if cl.desc != nil {
		if data, _, err := s.residentData(cl.desc); err != nil {
			return NilRef, err
		} else if page.MustWrap(data).FreeSpace() < descRoom {
			cl.desc = nil
		}
	}
	if cl.desc == nil {
		if err := s.newDataPage(cl); err != nil {
			return NilRef, err
		}
	}
	esmCl := esm.ResumeCluster(s.dataFile, cl.desc.Pid)
	if err := s.enableWriteDirect(cl.desc); err != nil {
		return NilRef, err
	}
	oid, info, err := s.c.CreateLarge(esmCl, size, 0)
	if err != nil {
		return NilRef, err
	}
	if oid.Page != cl.desc.Pid {
		return NilRef, fmt.Errorf("core: large descriptor escaped its cluster page")
	}
	s.largeGeom[oid] = info
	lo, err := s.allocFrames(info.Pages)
	if err != nil {
		return NilRef, err
	}
	d := &PageDesc{
		Lo: lo, Hi: lo + vmem.Addr(uint64(info.Pages)<<vmem.FrameShift),
		ObjLo: lo, ObjPages: info.Pages,
		Phys:    oid,
		IsLarge: true,
		Pid:     disk.InvalidPage, FrameIdx: -1, RecIdx: -1,
	}
	if err := s.tree.Insert(d); err != nil {
		return NilRef, err
	}
	s.byOID[oid] = d
	return lo, nil
}

// Delete removes the small object at ref: its slot is marked dead, its
// pointer bits are cleared from the page bitmap, and the page follows the
// usual update protocol (lock, recovery copy, diff at commit). The space is
// not reused and outstanding references dangle, exactly as the paper
// describes (Section 4.5.2).
func (s *Store) Delete(ref Ref) error {
	if !s.inTx {
		return esm.ErrNoTx
	}
	d := s.tree.Find(ref)
	if d == nil {
		return fmt.Errorf("core: Delete(%#x): not a persistent address", ref)
	}
	if d.IsLarge {
		return fmt.Errorf("core: Delete(%#x): large objects are deleted via their owner", ref)
	}
	data, _, err := s.residentData(d)
	if err != nil {
		return err
	}
	if err := s.enableWriteDirect(d); err != nil {
		return err
	}
	p := page.MustWrap(data)
	slot, obj, err := p.ObjectAt(ref.Offset())
	if err != nil {
		return err
	}
	// Clear the dead object's pointer bits so mapping maintenance and
	// swizzling never interpret its stale bytes as pointers.
	meta, err := readMeta(p)
	if err != nil {
		return err
	}
	bm, bmOff, bmFrame, err := s.c.ReadObjectAt(meta.BmOID)
	if err != nil {
		return err
	}
	var oldBm []byte
	if !s.cfg.BulkLoad {
		oldBm = append([]byte(nil), bm...)
	}
	start := ref.Offset()
	for off := start &^ 7; off < start+len(obj); off += 8 {
		bitmapClear(bm, off)
	}
	s.c.Pool().MarkDirty(bmFrame)
	if !s.cfg.BulkLoad {
		s.c.LogUpdate(meta.BmOID.Page, bmOff, oldBm, append([]byte(nil), bm...))
	}
	// Re-resolve: the bitmap read may have shuffled frames.
	data, idx, err := s.residentData(d)
	if err != nil {
		return err
	}
	p = page.MustWrap(data)
	if err := p.Delete(slot); err != nil {
		return err
	}
	s.c.Pool().MarkDirty(idx)
	return nil
}

// LargeSize returns the byte size of the large object at ref.
func (s *Store) LargeSize(ref Ref) (uint64, error) {
	d := s.tree.Find(ref)
	if d == nil || !d.IsLarge {
		return 0, fmt.Errorf("core: %#x is not a large object", ref)
	}
	info, err := s.largeInfo(d)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// LargeWrite bulk-writes data into the large object at ref+off through the
// storage manager (the loader's path; reads go through virtual memory).
func (s *Store) LargeWrite(ref Ref, data []byte, off uint64) error {
	d := s.tree.Find(ref)
	if d == nil || !d.IsLarge {
		return fmt.Errorf("core: %#x is not a large object", ref)
	}
	return s.c.LargeWriteAt(d.Phys, data, off)
}

func (s *Store) largeInfo(d *PageDesc) (esm.LargeInfo, error) {
	if info, ok := s.largeGeom[d.Phys]; ok {
		return info, nil
	}
	info, err := s.c.LargeInfoOf(d.Phys)
	if err != nil {
		return esm.LargeInfo{}, err
	}
	s.largeGeom[d.Phys] = info
	return info, nil
}

// RefForPage resolves a (disk page, byte offset) pair — the form QuickStore
// keeps in B-tree index entries — to a virtual-memory reference, entering
// the page into the current mapping if needed. The page's recorded virtual
// frame lives in its on-page meta-object, so an unmapped page costs one
// page read here; the subsequent application dereference then faults
// without further I/O, matching the paper's one-fault-per-object cost for
// index-driven access (Q1, Q2, T7).
func (s *Store) RefForPage(pid disk.PageID, off int) (Ref, error) {
	oid := s.metaOIDFor(pid)
	if d, ok := s.byOID[oid]; ok {
		return d.Lo + Ref(off), nil
	}
	idx, err := s.c.FetchPage(pid)
	if err != nil {
		return NilRef, err
	}
	meta, err := readMeta(page.MustWrap(s.c.PageData(idx)))
	if err != nil {
		return NilRef, err
	}
	lo := meta.VFrame.FrameBase()
	if !s.rangeFree(lo, 1) {
		lo, err = s.allocFrames(1)
		if err != nil {
			return NilRef, err
		}
		s.relocations++
	}
	d := &PageDesc{
		Lo: lo, Hi: lo + vmem.FrameSize,
		ObjLo: lo, ObjPages: 1,
		Phys:     oid,
		FrameIdx: -1, RecIdx: -1,
	}
	if err := s.tree.Insert(d); err != nil {
		return NilRef, err
	}
	s.byOID[oid] = d
	return lo + Ref(off), nil
}

// PageOf returns the disk page and page offset behind a small-object
// reference (the inverse of RefForPage, used to build index entries).
func (s *Store) PageOf(ref Ref) (disk.PageID, int, error) {
	d := s.tree.Find(ref)
	if d == nil {
		return disk.InvalidPage, 0, fmt.Errorf("core: %#x is not a persistent address", ref)
	}
	if d.IsLarge {
		return disk.InvalidPage, 0, fmt.Errorf("core: %#x is inside a large object", ref)
	}
	return d.Phys.Page, ref.Offset(), nil
}

// --- Introspection ----------------------------------------------------------

// DescCount returns the number of page descriptors in the current mapping.
func (s *Store) DescCount() int { return s.tree.Len() }

// Relocations returns how many page ranges have been relocated this session.
func (s *Store) Relocations() int64 { return s.relocations }

// FindDesc returns the descriptor covering ref (nil if none). Test hook.
func (s *Store) FindDesc(ref Ref) *PageDesc { return s.tree.Find(ref) }

// CheckTree validates the descriptor tree's invariants. Test hook.
func (s *Store) CheckTree() error { return s.tree.check() }

// lockPageX obtains the exclusive page lock for d once per transaction.
func (s *Store) lockPageX(d *PageDesc) error {
	if d.XLocked {
		return nil
	}
	if err := s.c.Lock(lock.KindPage, uint32(d.Pid), lock.Exclusive); err != nil {
		return err
	}
	s.clock.Charge(sim.CtrLockUpgrade, 1)
	d.XLocked = true
	return nil
}
