// Package core implements QuickStore itself: the memory-mapped object store
// of Section 3 of the paper. Persistent pointers are raw virtual addresses
// (Figure 4); non-resident pages live behind access-protected virtual
// frames; the page-fault handler reads pages from the EXODUS-like server,
// processes their mapping objects, swizzles pointers only on frame
// collisions, and manages the client buffer pool with the simplified clock
// algorithm of Section 3.5. Updates are caught by write-protection faults
// and logged by page diffing against a recovery buffer (Section 3.6).
package core

import (
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/vmem"
)

// PageDesc is the in-memory page descriptor of Section 3.3 (Figure 2): it
// records the virtual address range assigned to a disk page (or to a run of
// unaccessed pages of a multi-page object), the physical disk address, the
// access flags, and — when resident — the buffer frame and recovery-heap
// pointer. Descriptors are organized two ways: a height-balanced (AVL)
// binary tree keyed on the virtual address range, and a hash table keyed on
// the physical address.
type PageDesc struct {
	Lo, Hi vmem.Addr // [Lo, Hi): assigned virtual address range
	Phys   esm.OID   // small page: OID of its meta-object; large object: the object's OID

	// For large objects, the whole object's range, shared across split
	// descriptors; for small pages ObjLo == Lo and ObjPages == 1.
	ObjLo    vmem.Addr
	ObjPages uint32
	PageOff  uint32 // object-relative page number of Lo (large objects)

	IsLarge  bool
	Accessed bool   // the range has been faulted in (mapped) at least once
	SeenTx   uint64 // transaction sequence that last processed this page's mapping
	XLocked  bool   // exclusive page lock held this transaction
	Dirtied  bool   // write access granted this transaction

	Pid      disk.PageID // resident disk page (valid when FrameIdx >= 0)
	FrameIdx int         // client buffer frame, -1 when not resident
	RecIdx   int         // recovery-buffer slot, -1 when none

	// Large-object geometry, cached from the ESM descriptor on first touch.
	largeFirst disk.PageID
	largeKnown bool

	left, right *PageDesc
	height      int
}

// Pages returns the number of virtual frames the descriptor covers.
func (d *PageDesc) Pages() int { return int((d.Hi - d.Lo) >> vmem.FrameShift) }

// Contains reports whether a falls in the descriptor's range.
func (d *PageDesc) Contains(a vmem.Addr) bool { return a >= d.Lo && a < d.Hi }

// String formats the descriptor for diagnostics.
func (d *PageDesc) String() string {
	return fmt.Sprintf("desc[%#x,%#x) %v large=%v acc=%v", d.Lo, d.Hi, d.Phys, d.IsLarge, d.Accessed)
}

// descTree is the height-balanced binary tree over virtual address ranges
// ("The table organizes page descriptors according to the range of virtual
// memory addresses that they contain using a height balanced binary tree",
// Section 3.3). Ranges never overlap.
type descTree struct {
	root *PageDesc
	size int
}

func height(d *PageDesc) int {
	if d == nil {
		return 0
	}
	return d.height
}

func fix(d *PageDesc) *PageDesc {
	hl, hr := height(d.left), height(d.right)
	if hl > hr {
		d.height = hl + 1
	} else {
		d.height = hr + 1
	}
	switch bf := hl - hr; {
	case bf > 1:
		if height(d.left.left) < height(d.left.right) {
			d.left = rotateLeft(d.left)
		}
		return rotateRight(d)
	case bf < -1:
		if height(d.right.right) < height(d.right.left) {
			d.right = rotateRight(d.right)
		}
		return rotateLeft(d)
	}
	return d
}

func rotateRight(d *PageDesc) *PageDesc {
	l := d.left
	d.left = l.right
	l.right = d
	d.height = max(height(d.left), height(d.right)) + 1
	l.height = max(height(l.left), height(l.right)) + 1
	return l
}

func rotateLeft(d *PageDesc) *PageDesc {
	r := d.right
	d.right = r.left
	r.left = d
	d.height = max(height(d.left), height(d.right)) + 1
	r.height = max(height(r.left), height(r.right)) + 1
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Insert adds d to the tree. It returns an error if d overlaps an existing
// range (a bookkeeping bug if it ever happens).
func (t *descTree) Insert(d *PageDesc) error {
	if d.Lo >= d.Hi {
		return fmt.Errorf("core: empty descriptor range [%#x,%#x)", d.Lo, d.Hi)
	}
	if hit := t.FindOverlap(d.Lo, d.Hi); hit != nil {
		return fmt.Errorf("core: range [%#x,%#x) overlaps %v", d.Lo, d.Hi, hit)
	}
	d.left, d.right, d.height = nil, nil, 1
	t.root = insertNode(t.root, d)
	t.size++
	return nil
}

func insertNode(n, d *PageDesc) *PageDesc {
	if n == nil {
		return d
	}
	if d.Lo < n.Lo {
		n.left = insertNode(n.left, d)
	} else {
		n.right = insertNode(n.right, d)
	}
	return fix(n)
}

// Remove deletes d (matched by Lo) from the tree.
func (t *descTree) Remove(d *PageDesc) {
	var removed bool
	t.root, removed = removeNode(t.root, d.Lo)
	if removed {
		t.size--
	}
}

func removeNode(n *PageDesc, lo vmem.Addr) (*PageDesc, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case lo < n.Lo:
		n.left, removed = removeNode(n.left, lo)
	case lo > n.Lo:
		n.right, removed = removeNode(n.right, lo)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with the successor's contents by re-linking nodes.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.right, _ = removeNode(n.right, succ.Lo)
		succ.left, succ.right = n.left, n.right
		n = succ
	}
	return fix(n), removed
}

// Find returns the descriptor whose range contains a, or nil.
func (t *descTree) Find(a vmem.Addr) *PageDesc {
	n := t.root
	for n != nil {
		switch {
		case a < n.Lo:
			n = n.left
		case a >= n.Hi:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// FindOverlap returns any descriptor overlapping [lo, hi), or nil.
func (t *descTree) FindOverlap(lo, hi vmem.Addr) *PageDesc {
	n := t.root
	for n != nil {
		switch {
		case hi <= n.Lo:
			n = n.left
		case lo >= n.Hi:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Len returns the number of descriptors in the tree.
func (t *descTree) Len() int { return t.size }

// Walk visits descriptors in ascending address order; fn returning false
// stops the walk.
func (t *descTree) Walk(fn func(*PageDesc) bool) {
	walk(t.root, fn)
}

func walk(n *PageDesc, fn func(*PageDesc) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.left, fn) && fn(n) && walk(n.right, fn)
}

// check verifies AVL balance and range ordering (test helper).
func (t *descTree) check() error {
	var prev *PageDesc
	ok := true
	t.Walk(func(d *PageDesc) bool {
		if prev != nil && d.Lo < prev.Hi {
			ok = false
			return false
		}
		prev = d
		return true
	})
	if !ok {
		return fmt.Errorf("core: descTree ranges overlap or are unordered")
	}
	return checkBalance(t.root)
}

func checkBalance(n *PageDesc) error {
	if n == nil {
		return nil
	}
	bf := height(n.left) - height(n.right)
	if bf < -1 || bf > 1 {
		return fmt.Errorf("core: descTree unbalanced at %v (bf=%d)", n, bf)
	}
	if err := checkBalance(n.left); err != nil {
		return err
	}
	return checkBalance(n.right)
}
