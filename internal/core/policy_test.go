package core

import (
	"testing"

	"quickstore/internal/btree"
	"quickstore/internal/sim"
)

// TestHotIndexPagesSurviveDataFlood is the regression test for the T3
// pathology: a stream of mapped data pages flooding a small pool must not
// evict the constantly referenced B-tree pages. Before the stale-data
// preference in SimplifiedClock.Victim, every eviction landed on an index
// leaf and each index operation became a page read.
func TestHotIndexPagesSurviveDataFlood(t *testing.T) {
	e := newEnv(t)
	s := e.session(512, Config{BulkLoad: true}, true)

	// A database of 120 single-object pages plus an index over them.
	s.Begin()
	cl := s.NewCluster()
	tr, err := btree.Create(s.Client())
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]Ref, 120)
	for i := range refs {
		cl.Break()
		refs[i], err = s.Alloc(cl, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		pid, off, err := s.PageOf(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(btree.IntKey(int64(i)), s.metaOIDFor(pid)); err != nil {
			t.Fatal(err)
		}
		_ = off
	}
	if err := s.SetRoot("first", refs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e.cold()

	// A 48-frame session: the 120 data pages cannot all stay resident, but
	// the handful of index pages are touched on every iteration and must.
	s2 := e.session(48, Config{}, false)
	s2.Begin()
	tr2 := btree.Open(s2.Client(), tr.RootPage())
	// Warm the index.
	if _, err := tr2.Lookup(btree.IntKey(0)); err != nil {
		t.Fatal(err)
	}
	// Interleave data-page faults (via RefForPage + dereference) with
	// index lookups.
	base := e.clock.Snapshot()
	for round := 0; round < 3; round++ {
		for i := range refs {
			oids, err := tr2.Lookup(btree.IntKey(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if len(oids) != 1 {
				t.Fatalf("key %d: %d hits", i, len(oids))
			}
			ref, err := s2.RefForPage(oids[0].Page, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Space().ReadU32(ref + 24); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	reads := d.Count(sim.CtrClientRead)
	// 3 rounds over 120 uncacheable data pages cost ~360 reads; the index
	// pages (a handful) must not add hundreds of re-reads on top.
	if reads > 500 {
		t.Fatalf("client reads = %d; hot index pages are being evicted", reads)
	}
}

// TestMetadataDominatedPoolUsesClassicClock is the regression test for the
// generation pathology: when the pool is dominated by storage-manager pages
// (here, large-object data) and only a handful of mapped pages exist, the
// policy must evict cold metadata instead of reprotecting the space and
// sacrificing the hot mapped page on every miss.
func TestMetadataDominatedPoolUsesClassicClock(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()

	// One hot mapped data page...
	hot, err := s.Alloc(cl, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ...and a stream of large objects whose pages flood the pool through
	// the storage-manager path.
	buf := make([]byte, 8192)
	for i := 0; i < 40; i++ {
		ref, err := s.AllocLarge(cl, 4*8192)
		if err != nil {
			t.Fatal(err)
		}
		for pg := 0; pg < 4; pg++ {
			if err := s.LargeWrite(ref, buf, uint64(pg*8192)); err != nil {
				t.Fatal(err)
			}
		}
		// Touch the hot page between batches (the generator's pattern).
		if err := s.Space().WriteU32(hot+8, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	sc := s.policyOf()
	if sc == nil {
		t.Fatal("simplified clock not installed")
	}
	calls, protAlls, metaVictims, dataVictims := sc.DebugStats()
	if calls == 0 {
		t.Fatal("no evictions happened; shrink the pool")
	}
	if protAlls > calls/4 {
		t.Fatalf("reprotect storm: %d ProtectAlls in %d victim calls", protAlls, calls)
	}
	if metaVictims == 0 {
		t.Fatalf("no metadata victims (calls=%d data=%d)", calls, dataVictims)
	}
}
