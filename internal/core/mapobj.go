package core

import (
	"encoding/binary"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/page"
	"quickstore/internal/vmem"
)

// Every QuickStore small-object page carries a meta-object in slot 0
// (Section 3.4: "each page contains a direct pointer (OID) to a mapping
// object ... Actually, the pointer is contained in the meta-object located
// on the page"). The meta-object records the page's assigned virtual frame
// and the OIDs of its mapping object and bitmap object.
//
// Layout (metaObjSize bytes):
//
//	[0:8)   assigned virtual frame base address
//	[8:24)  mapping object OID (nil until the page first commits)
//	[24:40) bitmap object OID
const metaObjSize = 40

// metaSlot is the slot every meta-object occupies.
const metaSlot = 0

type metaObject struct {
	VFrame vmem.Addr
	MapOID esm.OID
	BmOID  esm.OID
}

func readMeta(p page.Slotted) (metaObject, error) {
	data, err := p.Object(metaSlot)
	if err != nil {
		return metaObject{}, fmt.Errorf("core: page has no meta-object: %w", err)
	}
	if len(data) != metaObjSize {
		return metaObject{}, fmt.Errorf("core: meta-object is %d bytes", len(data))
	}
	return metaObject{
		VFrame: vmem.Addr(binary.LittleEndian.Uint64(data[0:])),
		MapOID: esm.UnmarshalOID(data[8:]),
		BmOID:  esm.UnmarshalOID(data[24:]),
	}, nil
}

func writeMeta(p page.Slotted, m metaObject) error {
	data, err := p.Object(metaSlot)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(data[0:], uint64(m.VFrame))
	m.MapOID.Marshal(data[8:])
	m.BmOID.Marshal(data[24:])
	return nil
}

// mapEntry is one element of a mapping object: the virtual address range a
// referenced object occupied when this page was last memory resident, and
// that object's physical address ("Mapping objects are essentially just
// arrays of <virtual address range, disk address> pairs").
type mapEntry struct {
	ObjLo    vmem.Addr // base virtual address of the referenced page/object
	ObjPages uint32    // frames covered (1 for a small page)
	IsLarge  bool
	OID      esm.OID // meta-object OID (small page) or large-object OID
}

const mapEntrySize = 8 + 4 + 16 // 28 bytes

func marshalMapping(entries []mapEntry) []byte {
	buf := make([]byte, 4+len(entries)*mapEntrySize)
	binary.LittleEndian.PutUint32(buf, uint32(len(entries)))
	p := 4
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[p:], uint64(e.ObjLo))
		np := e.ObjPages &^ (1 << 31)
		if e.IsLarge {
			np |= 1 << 31
		}
		binary.LittleEndian.PutUint32(buf[p+8:], np)
		e.OID.Marshal(buf[p+12:])
		p += mapEntrySize
	}
	return buf
}

func unmarshalMapping(buf []byte) ([]mapEntry, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: short mapping object (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n*mapEntrySize {
		return nil, fmt.Errorf("core: mapping object truncated (%d entries, %d bytes)", n, len(buf))
	}
	entries := make([]mapEntry, n)
	p := 4
	for i := range entries {
		np := binary.LittleEndian.Uint32(buf[p+8:])
		entries[i] = mapEntry{
			ObjLo:    vmem.Addr(binary.LittleEndian.Uint64(buf[p:])),
			ObjPages: np &^ (1 << 31),
			IsLarge:  np&(1<<31) != 0,
			OID:      esm.UnmarshalOID(buf[p+12:]),
		}
		p += mapEntrySize
	}
	return entries, nil
}

// bitmapBytes is the size of a bitmap object: one bit per 8-byte-aligned
// word of an 8K page ("Each meta-object also contains a pointer (OID) to a
// bitmap object that records the locations of pointers on the page").
const bitmapBytes = disk.PageSize / 8 / 8 // 128

func bitmapSet(bm []byte, byteOff int) {
	w := byteOff >> 3
	bm[w>>3] |= 1 << (w & 7)
}

func bitmapClear(bm []byte, byteOff int) {
	w := byteOff >> 3
	bm[w>>3] &^= 1 << (w & 7)
}

func bitmapHas(bm []byte, byteOff int) bool {
	w := byteOff >> 3
	return bm[w>>3]&(1<<(w&7)) != 0
}

// forEachPointer calls fn with the page byte offset of every pointer
// recorded in the bitmap.
func forEachPointer(bm []byte, fn func(byteOff int) bool) {
	for i, b := range bm {
		if b == 0 {
			continue
		}
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				if !fn(((i << 3) + bit) << 3) {
					return
				}
			}
		}
	}
}
