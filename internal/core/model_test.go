package core

import (
	"math/rand"
	"testing"

	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/wal"

	"quickstore/internal/disk"
)

// TestModelRandomWorkload drives a QuickStore session through a long random
// sequence of operations — allocation, field writes, commits, aborts, cache
// drops, and session restarts — and validates every committed value against
// a shadow model. This exercises diffing, the recovery buffer, eviction,
// remapping, and cross-session mapping reconstruction together.
func TestModelRandomWorkload(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run("", func(t *testing.T) { runModel(t, seed) })
	}
}

type mObj struct {
	ref  Ref
	pid  disk.PageID // disk page and offset, as an index would store them
	off  int
	vals [4]uint32 // committed field values at offsets 8..24 (ref slot at 0)
	next int       // committed index of the linked object (-1 nil)
}

func runModel(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 128, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	newSession := func(create bool) *Store {
		c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 24, Clock: clock})
		var s *Store
		var err error
		cfg := Config{RecoveryBufferBytes: 6 * disk.PageSize}
		if create {
			s, err = New(c, cfg)
		} else {
			s, err = Open(c, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Object layout: [0:8) next Ref, [8:40) eight u32 slots (we use 4).
	const objSize = 48
	var objs []mObj

	s := newSession(true)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	cl := s.NewCluster()

	// Uncommitted state of the current transaction.
	type pend struct {
		idx, field int
		val        uint32
	}
	var pendVals []pend
	var pendLinks [][2]int // [objIdx, targetIdx]
	var pendNew []int      // indices created this tx
	inTx := true

	commit := func() {
		if err := s.Commit(); err != nil {
			t.Fatalf("seed %d: commit: %v", seed, err)
		}
		for _, p := range pendVals {
			objs[p.idx].vals[p.field] = p.val
		}
		for _, l := range pendLinks {
			objs[l[0]].next = l[1]
		}
		pendVals, pendLinks, pendNew = nil, nil, nil
		inTx = false
	}
	abort := func() {
		if err := s.Abort(); err != nil {
			t.Fatalf("seed %d: abort: %v", seed, err)
		}
		// Created objects vanish; model removes them (they are only ever
		// appended, so truncate).
		if len(pendNew) > 0 {
			objs = objs[:pendNew[0]]
		}
		pendVals, pendLinks, pendNew = nil, nil, nil
		inTx = false
	}
	ensureTx := func() {
		if !inTx {
			if err := s.Begin(); err != nil {
				t.Fatal(err)
			}
			inTx = true
		}
	}
	verifyAll := func(where string) {
		ensureTx()
		for i := range objs {
			for f := 0; f < 4; f++ {
				got, err := s.Space().ReadU32(objs[i].ref + Ref(8+4*f))
				if err != nil {
					t.Fatalf("seed %d: %s: obj %d field %d: %v", seed, where, i, f, err)
				}
				if got != objs[i].vals[f] {
					t.Fatalf("seed %d: %s: obj %d field %d = %d, want %d",
						seed, where, i, f, got, objs[i].vals[f])
				}
			}
			nxt, err := s.Space().ReadU64(objs[i].ref)
			if err != nil {
				t.Fatal(err)
			}
			want := NilRef
			if objs[i].next >= 0 {
				want = objs[objs[i].next].ref
			}
			if Ref(nxt) != want {
				t.Fatalf("seed %d: %s: obj %d link = %#x, want %#x", seed, where, i, nxt, want)
			}
		}
	}

	for step := 0; step < 300; step++ {
		switch op := rng.Intn(100); {
		case op < 30: // create an object
			ensureTx()
			if rng.Intn(4) == 0 {
				cl.Break()
			}
			ref, err := s.Alloc(cl, objSize, []int{0})
			if err != nil {
				t.Fatalf("seed %d step %d: alloc: %v", seed, step, err)
			}
			pid, off, err := s.PageOf(ref)
			if err != nil {
				t.Fatal(err)
			}
			pendNew = append(pendNew, len(objs))
			objs = append(objs, mObj{ref: ref, pid: pid, off: off, next: -1})
			if len(objs) == 1 {
				if err := s.SetRoot("model", ref); err != nil {
					t.Fatal(err)
				}
			}
		case op < 65: // write a field of a random object
			if len(objs) == 0 {
				continue
			}
			ensureTx()
			i := rng.Intn(len(objs))
			f := rng.Intn(4)
			v := rng.Uint32()
			if err := s.Space().WriteU32(objs[i].ref+Ref(8+4*f), v); err != nil {
				t.Fatalf("seed %d step %d: write: %v", seed, step, err)
			}
			pendVals = append(pendVals, pend{i, f, v})
		case op < 75: // relink a random object
			if len(objs) < 2 {
				continue
			}
			ensureTx()
			i := rng.Intn(len(objs))
			j := rng.Intn(len(objs))
			if err := s.Space().WriteU64(objs[i].ref, uint64(objs[j].ref)); err != nil {
				t.Fatal(err)
			}
			pendLinks = append(pendLinks, [2]int{i, j})
		case op < 88: // commit
			if inTx {
				commit()
			}
		case op < 93: // abort
			if inTx {
				abort()
			}
		case op < 97: // cold caches (between transactions)
			if inTx {
				commit()
			}
			if err := srv.DropCaches(); err != nil {
				t.Fatal(err)
			}
			verifyAll("after cold")
		default: // session restart: fresh client + store over the same server
			if inTx {
				commit()
			}
			if err := srv.DropCaches(); err != nil {
				t.Fatal(err)
			}
			s = newSession(false)
			cl = s.NewCluster()
			// A fresh session's mapping is empty. A real application gets
			// references back from roots, indexes, or pointer navigation;
			// the model replays the index path: RefForPage resolves each
			// object's recorded <page, offset> to its (stable) address.
			if len(objs) > 0 {
				if err := s.Begin(); err != nil {
					t.Fatal(err)
				}
				inTx = true
				root, err := s.Root("model")
				if err != nil {
					t.Fatal(err)
				}
				if root != objs[0].ref {
					t.Fatalf("seed %d: root moved: %#x vs %#x", seed, root, objs[0].ref)
				}
				for i := range objs {
					ref, err := s.RefForPage(objs[i].pid, objs[i].off)
					if err != nil {
						t.Fatal(err)
					}
					if ref != objs[i].ref {
						t.Fatalf("seed %d: obj %d moved: %#x vs %#x", seed, i, ref, objs[i].ref)
					}
				}
			}
			verifyAll("after restart")
		}
	}
	if inTx {
		commit()
	}
	verifyAll("final")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckTree(); err != nil {
		t.Fatal(err)
	}
}
