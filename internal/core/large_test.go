package core

import (
	"testing"

	"quickstore/internal/sim"
	"quickstore/internal/vmem"
)

// TestLargeObjectWriteThroughVmem updates a multi-page object through
// protected memory (write faults) and checks commit durability, plus the
// raw-page policy: no recovery copies, no byte-range log records, but the
// exclusive lock and the dirty-page ship still happen.
func TestLargeObjectWriteThroughVmem(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()
	const size = 2*vmem.FrameSize + 64
	ref, err := s.AllocLarge(cl, size)
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := s.Alloc(cl, 8, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s.Space().WriteU64(anchor, uint64(ref))
	if err := s.SetRoot("a", anchor); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	a2, err := s2.Root("a")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s2.Space().ReadU64(a2)
	if err != nil {
		t.Fatal(err)
	}
	base := e.clock.Snapshot()
	// Write bytes on both data pages through virtual memory.
	if err := s2.Space().WriteU8(Ref(m)+10, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := s2.Space().WriteU8(Ref(m)+vmem.FrameSize+10, 0xBB); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrRecoveryCopy); n != 0 {
		t.Errorf("raw pages took %d recovery copies", n)
	}
	if n := d.Count(sim.CtrLockUpgrade); n != 2 {
		t.Errorf("lock upgrades = %d, want 2 (one per touched page)", n)
	}
	if n := d.Count(sim.CtrCommitFlushPage); n < 2 {
		t.Errorf("shipped %d pages, want >= 2", n)
	}

	// Durability via whole-page shipping.
	e.cold()
	s3 := e.session(64, Config{}, false)
	s3.Begin()
	a3, _ := s3.Root("a")
	m3, _ := s3.Space().ReadU64(a3)
	if b, _ := s3.Space().ReadU8(Ref(m3) + 10); b != 0xAA {
		t.Errorf("page 0 byte = %#x", b)
	}
	if b, _ := s3.Space().ReadU8(Ref(m3) + vmem.FrameSize + 10); b != 0xBB {
		t.Errorf("page 1 byte = %#x", b)
	}
	s3.Commit()
}

// TestFrameAllocatorWraparound forces the persistent frame counter past the
// end of a tiny address space; allocation must fall back to scanning the
// descriptor tree for free gaps (Section 3.3's wraparound case).
func TestFrameAllocatorWraparound(t *testing.T) {
	e := newEnv(t)
	// 64-frame space. Pre-consume most of the counter by allocating and
	// discarding a large batch through a throwaway session.
	throwaway := e.session(32, Config{BulkLoad: true, MaxFrames: 64}, true)
	throwaway.Begin()
	// Burn frame numbers without claiming ranges: allocate pages so the
	// persistent counter climbs near the limit.
	cl := throwaway.NewCluster()
	for i := 0; i < 30; i++ {
		cl.Break()
		if _, err := throwaway.Alloc(cl, 16, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := throwaway.SetRoot("first", mustAlloc(t, throwaway, cl)); err != nil {
		t.Fatal(err)
	}
	if err := throwaway.Commit(); err != nil {
		t.Fatal(err)
	}

	// Burn the counter directly to exceed MaxFrames.
	if _, err := throwaway.Client().Counter("qs.frames", 1000); err != nil {
		t.Fatal(err)
	}

	// A new session must still allocate pages: the bump allocator is
	// exhausted, so allocFrames scans for gaps above the used ranges.
	s := e.session(32, Config{BulkLoad: true, MaxFrames: 64}, false)
	s.Begin()
	if _, err := s.Root("first"); err != nil {
		t.Fatal(err)
	}
	cl2 := s.NewCluster()
	for i := 0; i < 5; i++ {
		cl2.Break()
		ref, err := s.Alloc(cl2, 16, nil)
		if err != nil {
			t.Fatalf("post-wraparound alloc %d: %v", i, err)
		}
		if err := s.Space().WriteU32(ref, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckTree(); err != nil {
		t.Fatal(err)
	}
}

func mustAlloc(t *testing.T, s *Store, cl *Cluster) Ref {
	t.Helper()
	ref, err := s.Alloc(cl, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestAddressSpaceExhaustion verifies the graceful error when no gap fits.
func TestAddressSpaceExhaustion(t *testing.T) {
	e := newEnv(t)
	s := e.session(32, Config{BulkLoad: true, MaxFrames: 4}, true)
	s.Begin()
	cl := s.NewCluster()
	var err error
	for i := 0; i < 16; i++ {
		cl.Break()
		if _, err = s.Alloc(cl, 16, nil); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("allocating 16 pages in a 4-frame space succeeded")
	}
}

// TestDeleteAndDanglingReferences pins the paper's Section 4.5.2 semantics:
// deleting an object leaves its space dead (never reused), and a dangling
// reference reads stale bytes without any flagged error — QuickStore trades
// checked references for pointer-speed dereferences.
func TestDeleteAndDanglingReferences(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()
	victim, err := s.Alloc(cl, 32, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := s.Alloc(cl, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Space().WriteU32(victim+8, 777); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoot("neighbor", neighbor); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	s.Begin()
	if err := s.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// New allocations on the same page do not reuse the dead space.
	after, err := s.Alloc(cl, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.FrameBase() == victim.FrameBase() && after.Offset() <= victim.Offset() {
		t.Fatalf("dead space reused: new object at %#x, victim at %#x", after, victim)
	}
	// The dangling reference still reads — no error is flagged; the bytes
	// are whatever the dead slot holds.
	if _, err := s.Space().ReadU32(victim + 8); err != nil {
		t.Fatalf("dangling read flagged an error: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Cold reread: the deletion is durable; the neighbor is intact.
	e.cold()
	s2 := e.session(64, Config{}, false)
	s2.Begin()
	n2, err := s2.Root("neighbor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Space().ReadU32(n2); err != nil {
		t.Fatal(err)
	}
	s2.Commit()
}

// TestDeleteWithLoggingDurable checks deletion through the full recovery
// protocol (non-bulk): the slot-directory change is diffed and logged.
func TestDeleteWithLoggingDurable(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 6, false)
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	// Unlink and delete the second node.
	second, _ := s2.Space().ReadU64(head)
	third, _ := s2.Space().ReadU64(Ref(second))
	if err := s2.Space().WriteU64(head, third); err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete(Ref(second)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}

	e.cold()
	s3 := e.session(64, Config{}, false)
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	if len(vals) != 5 {
		t.Fatalf("list has %d nodes after delete, want 5", len(vals))
	}
	if vals[0] != 0 || vals[1] != 2 {
		t.Fatalf("wrong nodes survived: %v", vals)
	}
}
