package core

import (
	"math/rand"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/wal"
)

// diffRegionsRef is the original byte-at-a-time scanner, kept as the oracle
// for the word-at-a-time fast path in diffRegions.
func diffRegionsRef(old, cur []byte, hdr int) []region {
	n := len(cur)
	if len(old) < n {
		n = len(old)
	}
	var regs []region
	i := 0
	for i < n {
		if old[i] == cur[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && old[j] != cur[j] {
			j++
		}
		if len(regs) > 0 {
			last := &regs[len(regs)-1]
			gap := i - (last.off + last.n)
			if 2*gap <= hdr {
				last.n = j - last.off
				i = j
				continue
			}
		}
		regs = append(regs, region{off: i, n: j - i})
		i = j
	}
	if len(cur) > len(old) {
		regs = append(regs, region{off: len(old), n: len(cur) - len(old)})
	}
	return regs
}

func bytesEqualRef(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func regionsMatch(a, b []region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mutatePage flips count bytes of cur at random offsets, in clusters whose
// size is also random, so runs of difference cross word boundaries in every
// alignment.
func mutatePage(rng *rand.Rand, cur []byte, count int) {
	for f := 0; f < count; f++ {
		off := rng.Intn(len(cur))
		run := 1 + rng.Intn(17)
		for k := 0; k < run && off+k < len(cur); k++ {
			cur[off+k] ^= byte(1 + rng.Intn(255))
		}
	}
}

// TestDiffRegionsMatchesReference drives the SWAR scanner against the
// byte-at-a-time oracle across page sizes, alignments, and mutation
// densities, including the unequal-length (page growth) case.
func TestDiffRegionsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 4096, disk.PageSize}
	for _, size := range sizes {
		for trial := 0; trial < 50; trial++ {
			old := make([]byte, size)
			rng.Read(old)
			cur := append([]byte(nil), old...)
			if size > 0 {
				mutatePage(rng, cur, 1+rng.Intn(8))
			}
			// Occasionally grow or shrink cur to cover the tail region.
			switch trial % 5 {
			case 3:
				cur = append(cur, make([]byte, 1+rng.Intn(32))...)
				rng.Read(cur[size:])
			case 4:
				cur = cur[:size-size/4]
			}
			got := diffRegions(old, cur, wal.HeaderBytes)
			want := diffRegionsRef(old, cur, wal.HeaderBytes)
			if !regionsMatch(got, want) {
				t.Fatalf("size %d trial %d: diffRegions=%v want %v", size, trial, got, want)
			}
			if e, w := bytesEqual(old, cur), bytesEqualRef(old, cur); e != w {
				t.Fatalf("size %d trial %d: bytesEqual=%v want %v", size, trial, e, w)
			}
		}
	}
}

// TestDiffRegionsAllAlignments pins down the word-boundary edge cases: a
// single changed byte at every offset of a small buffer, and difference
// runs starting and ending at every alignment.
func TestDiffRegionsAllAlignments(t *testing.T) {
	const size = 40
	old := make([]byte, size)
	for off := 0; off < size; off++ {
		for runLen := 1; runLen <= 3; runLen++ {
			cur := append([]byte(nil), old...)
			for k := 0; k < runLen && off+k < size; k++ {
				cur[off+k] = 0xFF
			}
			got := diffRegions(old, cur, wal.HeaderBytes)
			want := diffRegionsRef(old, cur, wal.HeaderBytes)
			if !regionsMatch(got, want) {
				t.Fatalf("off %d run %d: got %v want %v", off, runLen, got, want)
			}
			if bytesEqual(old, cur) {
				t.Fatalf("off %d run %d: bytesEqual claimed equality", off, runLen)
			}
		}
	}
}

func TestBytesEqualWordTail(t *testing.T) {
	for size := 0; size <= 24; size++ {
		a := make([]byte, size)
		for i := range a {
			a[i] = byte(i)
		}
		b := append([]byte(nil), a...)
		if !bytesEqual(a, b) {
			t.Fatalf("size %d: equal slices reported unequal", size)
		}
		for i := 0; i < size; i++ {
			b[i] ^= 0x80
			if bytesEqual(a, b) {
				t.Fatalf("size %d: mismatch at %d missed", size, i)
			}
			b[i] ^= 0x80
		}
	}
}

func benchPages(mutations int) (old, cur []byte) {
	rng := rand.New(rand.NewSource(7))
	old = make([]byte, disk.PageSize)
	rng.Read(old)
	cur = append([]byte(nil), old...)
	if mutations > 0 {
		mutatePage(rng, cur, mutations)
	}
	return old, cur
}

// BenchmarkDiffIdentical is the common commit-path case: the page was
// dirtied but ends the transaction byte-identical (e.g. write then revert);
// the whole scan is the equal fast path.
func BenchmarkDiffIdentical(b *testing.B) {
	old, cur := benchPages(0)
	b.SetBytes(disk.PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if regs := diffRegions(old, cur, wal.HeaderBytes); len(regs) != 0 {
			b.Fatal("identical pages produced regions")
		}
	}
}

// BenchmarkDiffSparse models a typical OO7 update: a handful of small
// scattered field writes on an 8K page.
func BenchmarkDiffSparse(b *testing.B) {
	old, cur := benchPages(6)
	b.SetBytes(disk.PageSize)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(diffRegions(old, cur, wal.HeaderBytes))
	}
	_ = sink
}

// BenchmarkDiffDense rewrites most of the page, exercising the
// skip-different SWAR path.
func BenchmarkDiffDense(b *testing.B) {
	old, cur := benchPages(600)
	b.SetBytes(disk.PageSize)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(diffRegions(old, cur, wal.HeaderBytes))
	}
	_ = sink
}

func BenchmarkDiffReferenceSparse(b *testing.B) {
	old, cur := benchPages(6)
	b.SetBytes(disk.PageSize)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(diffRegionsRef(old, cur, wal.HeaderBytes))
	}
	_ = sink
}

func BenchmarkBytesEqual(b *testing.B) {
	old, cur := benchPages(0)
	b.SetBytes(disk.PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !bytesEqual(old, cur) {
			b.Fatal("equal pages reported unequal")
		}
	}
}
