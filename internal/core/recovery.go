package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"quickstore/internal/disk"
	"quickstore/internal/page"
	"quickstore/internal/pagedelta"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
	"quickstore/internal/wal"
)

// recoveryBuffer is the in-memory area holding the original values of
// updated pages (Section 3.6). When it fills mid-transaction, its contents
// are diffed and logged early — the behaviour that sinks QS-B in the
// paper's update experiments when 4MB is not enough.
type recoveryBuffer struct {
	entries []recEntry
	bytes   int
	cap     int
}

type recEntry struct {
	pid  disk.PageID
	d    *PageDesc
	orig []byte
}

func (r *recoveryBuffer) full() bool { return r.bytes+disk.PageSize > r.cap }

func (r *recoveryBuffer) add(d *PageDesc, data []byte) int {
	e := recEntry{pid: d.Pid, d: d, orig: append([]byte(nil), data...)}
	r.entries = append(r.entries, e)
	r.bytes += disk.PageSize
	return len(r.entries) - 1
}

func (r *recoveryBuffer) reset() {
	r.entries = r.entries[:0]
	r.bytes = 0
}

// ensureRecoveryCopy snapshots the page's current contents before its first
// modification of the transaction. If the buffer is full, earlier entries
// are diffed and logged to make room.
func (s *Store) ensureRecoveryCopy(d *PageDesc, data []byte) error {
	if d.RecIdx >= 0 {
		return nil
	}
	if s.rec.full() {
		if err := s.flushRecovery(); err != nil {
			return err
		}
	}
	d.RecIdx = s.rec.add(d, data)
	s.clock.Charge(sim.CtrRecoveryCopy, 1)
	return nil
}

// flushRecovery diffs every buffered page against its current contents,
// emits the resulting log records, and empties the buffer. Pages flushed
// mid-transaction are downgraded to read access so a later update takes a
// fresh copy (keeping the log complete).
func (s *Store) flushRecovery() error {
	for i := range s.rec.entries {
		e := &s.rec.entries[i]
		if e.d.RecIdx < 0 {
			continue // already handled (stolen)
		}
		idx, ok := s.c.Pool().Lookup(e.pid)
		if !ok {
			// The page was evicted: beforeSteal diffed it then.
			e.d.RecIdx = -1
			continue
		}
		s.diffAndLog(e.d, s.c.PageData(idx))
		if s.inTx && e.d.FrameIdx >= 0 {
			_ = s.space.Protect(e.d.Lo, vmem.ProtRead)
		}
	}
	s.rec.reset()
	return nil
}

// diffAndLog compares the page's recovery copy with cur and emits minimal
// log records (Section 3.6's interleaved diff/logging). The entry is
// consumed: d must take a new recovery copy before further logging. Under
// the whole-object-logging ablation the page is logged in full instead.
func (s *Store) diffAndLog(d *PageDesc, cur []byte) {
	if d.RecIdx < 0 || d.RecIdx >= len(s.rec.entries) {
		return
	}
	orig := s.rec.entries[d.RecIdx].orig
	if s.cfg.WholeObjectLogging {
		half := len(cur) / 2
		s.c.LogUpdate(d.Pid, 0, orig[:half], cur[:half])
		s.c.LogUpdate(d.Pid, half, orig[half:], cur[half:])
		d.RecIdx = -1
		return
	}
	s.clock.Charge(sim.CtrPageDiff, 1)
	s.clock.Charge(sim.CtrDiffByte, int64(len(cur)))
	for _, r := range diffRegions(orig, cur, wal.HeaderBytes) {
		s.c.LogUpdate(d.Pid, r.off, orig[r.off:r.off+r.n], cur[r.off:r.off+r.n])
	}
	d.RecIdx = -1
}

// region is one modified byte range.
type region struct{ off, n int }

// diffRegions finds the modified regions of a page and merges neighbouring
// regions when logging them separately would cost more than logging the
// clean gap between them: a separate record pays hdr header bytes, a merged
// record pays 2*gap payload bytes (old and new images of the gap). This is
// the paper's example: bytes 1 and 1024 of an object become two records,
// bytes 1, 3 and 5 become one. The SWAR scan itself lives in
// internal/pagedelta, shared with the page server's warm-cache delta
// shipping (DESIGN.md §18).
func diffRegions(old, cur []byte, hdr int) []region {
	pd := pagedelta.Regions(old, cur, hdr)
	regs := make([]region, len(pd))
	for i, r := range pd {
		regs[i] = region{off: r.Off, n: r.N}
	}
	return regs
}

// logWholePage emits a redo-only record carrying a fresh page's entire
// image (there is no before-image to diff against).
func (s *Store) logWholePage(pid disk.PageID, data []byte) {
	// Split in two records because a record length field is 16 bits and a
	// page is exactly 8K.
	half := len(data) / 2
	s.c.LogUpdate(pid, 0, nil, data[:half])
	s.c.LogUpdate(pid, half, nil, data[half:])
}

// logFreshPages logs the full images of pages created this transaction.
func (s *Store) logFreshPages() error {
	if s.cfg.BulkLoad {
		return nil
	}
	pids := make([]disk.PageID, 0, len(s.freshPages))
	for pid := range s.freshPages {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		idx, ok := s.c.Pool().Lookup(pid)
		if !ok {
			continue // stolen earlier; logged by beforeSteal
		}
		s.logWholePage(pid, s.c.PageData(idx))
	}
	return nil
}

// updateMappings recomputes the mapping object of every page modified this
// transaction (Section 3.6: updates can change the set of pages referenced
// by pointers on a page). Fresh pages get their first mapping object here.
func (s *Store) updateMappings() error {
	seen := map[disk.PageID]bool{}
	// Iterate over a snapshot: creating mapping objects can dirty more
	// (metadata) pages, but those are not QuickStore data pages.
	work := make([]*PageDesc, 0, len(s.dirtied))
	for _, d := range s.dirtied {
		if d.IsLarge || seen[d.Pid] {
			continue
		}
		seen[d.Pid] = true
		work = append(work, d)
	}
	for _, d := range work {
		if err := s.updateMapping(d); err != nil {
			return err
		}
	}
	return nil
}

// updateMapping rebuilds one page's referenced-page set from its pointers
// (located by the bitmap object), compares it with the stored mapping
// object, and rewrites the mapping object if the set changed.
func (s *Store) updateMapping(d *PageDesc) error {
	data, idx, err := s.residentData(d)
	if err != nil {
		return err
	}
	s.clock.Charge(sim.CtrMapUpdate, 1)
	p := page.MustWrap(data)
	meta, err := readMeta(p)
	if err != nil {
		return err
	}
	bm, _, err := s.c.ReadObject(meta.BmOID)
	if err != nil {
		return err
	}
	// residentData/ReadObject may have shuffled frames; re-resolve.
	data, idx, err = s.residentData(d)
	if err != nil {
		return err
	}
	p = page.MustWrap(data)

	entries, err := s.referencedSet(data, bm)
	if err != nil {
		return err
	}
	blob := marshalMapping(entries)

	if !meta.MapOID.IsNil() {
		oldBlob, _, err := s.c.ReadObject(meta.MapOID)
		if err != nil {
			return err
		}
		if bytesEqual(oldBlob, blob) {
			return nil
		}
		if len(oldBlob) == len(blob) {
			// Overwrite in place.
			cur, pageOff, frame, err := s.c.ReadObjectAt(meta.MapOID)
			if err != nil {
				return err
			}
			var old []byte
			if !s.cfg.BulkLoad {
				old = append([]byte(nil), cur...)
			}
			copy(cur, blob)
			s.c.Pool().MarkDirty(frame)
			if !s.cfg.BulkLoad {
				s.c.LogUpdate(meta.MapOID.Page, pageOff, old, blob)
			}
			return nil
		}
		// Size changed: replace the object (the reason mapping objects
		// are stored separately from their pages, Section 3.4).
		if err := s.c.DeleteObject(meta.MapOID); err != nil {
			return err
		}
	}
	mapOID, obj, err := s.c.CreateObject(s.mapCluster, len(blob))
	if err != nil {
		return err
	}
	copy(obj, blob)
	if !s.cfg.BulkLoad {
		_, pageOff, _, err := s.c.ReadObjectAt(mapOID)
		if err != nil {
			return err
		}
		s.c.LogUpdate(mapOID.Page, pageOff, nil, blob)
	}
	// Point the page's meta-object at its new mapping object. The data
	// page is already dirty (it was modified this transaction) and its
	// recovery diff covers this change when logging is on.
	data, idx, err = s.residentData(d)
	if err != nil {
		return err
	}
	p = page.MustWrap(data)
	meta.MapOID = mapOID
	if err := writeMeta(p, meta); err != nil {
		return err
	}
	s.c.Pool().MarkDirty(idx)
	if !s.cfg.BulkLoad && d.RecIdx < 0 && s.freshPages[d.Pid] == nil {
		// The page's diff already ran (flushRecovery happens first), so
		// log the meta change explicitly.
		mdata, merr := p.Object(metaSlot)
		if merr == nil {
			off, _, oerr := p.SlotBounds(metaSlot)
			if oerr == nil {
				s.c.LogUpdate(d.Pid, off, nil, append([]byte(nil), mdata...))
			}
		}
	}
	return nil
}

// referencedSet builds the mapping entries for a page from its live
// pointers, deduplicated by target object.
func (s *Store) referencedSet(data, bm []byte) ([]mapEntry, error) {
	byLo := map[vmem.Addr]mapEntry{}
	var scanErr error
	forEachPointer(bm, func(off int) bool {
		ptr := vmem.Addr(leU64(data[off:]))
		if ptr == 0 {
			return true
		}
		td := s.tree.Find(ptr)
		if td == nil {
			scanErr = fmt.Errorf("core: page pointer %#x at offset %d targets no descriptor", ptr, off)
			return false
		}
		if _, ok := byLo[td.ObjLo]; !ok {
			byLo[td.ObjLo] = mapEntry{
				ObjLo:    td.ObjLo,
				ObjPages: td.ObjPages,
				IsLarge:  td.IsLarge,
				OID:      td.Phys,
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	entries := make([]mapEntry, 0, len(byLo))
	for _, e := range byLo {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ObjLo < entries[j].ObjLo })
	return entries, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	i := 0
	for ; i+8 <= len(a); i += 8 {
		if binary.LittleEndian.Uint64(a[i:]) != binary.LittleEndian.Uint64(b[i:]) {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffRegionsForTest exposes the diffing algorithm for benchmarks and
// external tests; it returns the (offset, length) pairs of the regions that
// would be logged.
func DiffRegionsForTest(old, cur []byte, hdr int) [][2]int {
	regs := diffRegions(old, cur, hdr)
	out := make([][2]int, len(regs))
	for i, r := range regs {
		out[i] = [2]int{r.off, r.n}
	}
	return out
}
