package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
	"quickstore/internal/wal"
)

// env bundles one server and a way to open client sessions against it.
type env struct {
	t     *testing.T
	srv   *esm.Server
	clock *sim.Clock
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 512, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return &env{t: t, srv: srv, clock: clock}
}

func (e *env) session(bufPages int, cfg Config, create bool) *Store {
	e.t.Helper()
	c := esm.NewClient(esm.NewInProcTransport(e.srv), esm.ClientConfig{BufferPages: bufPages, Clock: e.clock})
	var s *Store
	var err error
	if create {
		s, err = New(c, cfg)
	} else {
		s, err = Open(c, cfg)
	}
	if err != nil {
		e.t.Fatal(err)
	}
	return s
}

func (e *env) cold() {
	if err := e.srv.DropCaches(); err != nil {
		e.t.Fatal(err)
	}
}

// buildList creates a linked list of n nodes {next Ref; val int32} in one
// bulk-load transaction and registers the head as root "list". Each node
// goes on its own page when spread is true.
func buildList(t *testing.T, s *Store, n int, spread bool) {
	t.Helper()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	cl := s.NewCluster()
	refs := make([]Ref, n)
	for i := 0; i < n; i++ {
		if spread {
			cl.Break()
		}
		ref, err := s.Alloc(cl, 16, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	for i := 0; i < n; i++ {
		next := NilRef
		if i+1 < n {
			next = refs[i+1]
		}
		if err := s.Space().WriteU64(refs[i], uint64(next)); err != nil {
			t.Fatal(err)
		}
		if err := s.Space().WriteU32(refs[i]+8, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetRoot("list", refs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// walkList traverses the list from root and returns the vals seen.
func walkList(t *testing.T, s *Store) []uint32 {
	t.Helper()
	head, err := s.Root("list")
	if err != nil {
		t.Fatal(err)
	}
	var vals []uint32
	for ref := head; ref != NilRef; {
		v, err := s.Space().ReadU32(ref + 8)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
		nxt, err := s.Space().ReadU64(ref)
		if err != nil {
			t.Fatal(err)
		}
		ref = Ref(nxt)
	}
	return vals
}

func TestCreateAndTraverseSameSession(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 50, false)
	s.Begin()
	vals := walkList(t, s)
	if len(vals) != 50 {
		t.Fatalf("walked %d nodes", len(vals))
	}
	for i, v := range vals {
		if v != uint32(i) {
			t.Fatalf("node %d has val %d", i, v)
		}
	}
	s.Commit()
	if err := s.CheckTree(); err != nil {
		t.Fatal(err)
	}
}

func TestColdTraversalFaultsAndPreviousAddresses(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 40, true) // 40 pages
	e.cold()

	// A brand-new session: the current mapping is empty; faulting in the
	// list should reuse every page's previous virtual address, so no
	// pointer is ever swizzled (Figure 5, "no collisions").
	s2 := e.session(64, Config{}, false)
	base := e.clock.Snapshot()
	s2.Begin()
	vals := walkList(t, s2)
	s2.Commit()
	if len(vals) != 40 {
		t.Fatalf("walked %d nodes", len(vals))
	}
	d := e.clock.Snapshot().Sub(base)
	if got := s2.Space().Faults(); got != 40 {
		t.Errorf("faults = %d, want 40 (one per page)", got)
	}
	if n := d.Count(sim.CtrSwizzledPtr); n != 0 {
		t.Errorf("swizzled %d pointers; want 0 without collisions", n)
	}
	if n := d.Count(sim.CtrServerDiskRead); n == 0 {
		t.Error("cold run hit no disk")
	}
	if s2.Relocations() != 0 {
		t.Errorf("relocations = %d", s2.Relocations())
	}
	// Hot rerun: no faults, no I/O.
	base = e.clock.Snapshot()
	s2.Begin()
	walkList(t, s2)
	s2.Commit()
	d = e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrClientRead); n != 0 {
		t.Errorf("hot run issued %d client reads", n)
	}
	if n := d.Count(sim.CtrPageFaultTrap); n != 0 {
		t.Errorf("hot run trapped %d times", n)
	}
}

func TestUpdateDiffingProducesMinimalLog(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 10, false) // one page
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	// Update one int32 on the page.
	if err := s2.Space().WriteU32(head+8, 999); err != nil {
		t.Fatal(err)
	}
	base := e.clock.Snapshot()
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrPageDiff); n != 1 {
		t.Errorf("diffed %d pages, want 1", n)
	}
	// One small log record for the 4 changed bytes (plus possibly a
	// mapping/meta record, but no whole-page logging).
	if n := d.Count(sim.CtrLogByte); n > 200 {
		t.Errorf("logged %d bytes for a 4-byte update", n)
	}
	// Verify durability: reread cold.
	e.cold()
	s3 := e.session(64, Config{}, false)
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	if vals[0] != 999 {
		t.Fatalf("update lost: %v", vals[0])
	}
}

func TestWriteFaultTakesLockAndCopy(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 10, false)
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	base := e.clock.Snapshot()
	s2.Space().WriteU32(head+8, 1)
	s2.Space().WriteU32(head+8, 2) // second write: no new fault
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrRecoveryCopy); n != 1 {
		t.Errorf("recovery copies = %d, want 1", n)
	}
	if n := d.Count(sim.CtrLockUpgrade); n != 1 {
		t.Errorf("lock upgrades = %d, want 1", n)
	}
	s2.Commit()

	// Next transaction: the first update faults (and copies) again.
	base = e.clock.Snapshot()
	s2.Begin()
	s2.Space().WriteU32(head+8, 3)
	d = e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrRecoveryCopy); n != 1 {
		t.Errorf("second tx recovery copies = %d, want 1", n)
	}
	s2.Commit()
}

func TestAbortRollsBack(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 5, false)
	e.cold()

	s2 := e.session(64, Config{}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	s2.Space().WriteU32(head+8, 12345)
	if err := s2.Abort(); err != nil {
		t.Fatal(err)
	}
	s2.Begin()
	v, err := s2.Space().ReadU32(head + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("aborted write visible: %d", v)
	}
	s2.Commit()
}

func TestPoolPagingRemapsFrames(t *testing.T) {
	// A tiny client pool forces replacement; pointers must stay valid
	// because rereferenced pages fault back in (Figure 1d).
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 60, true)
	e.cold()

	s2 := e.session(8, Config{}, false) // 8 frames for 60 pages
	s2.Begin()
	vals := walkList(t, s2)
	if len(vals) != 60 {
		t.Fatalf("walked %d", len(vals))
	}
	// Walk again within the same transaction: pages were evicted, so this
	// refaults and rereads, exercising the dynamic remapping.
	vals = walkList(t, s2)
	for i, v := range vals {
		if v != uint32(i) {
			t.Fatalf("second walk: node %d = %d", i, v)
		}
	}
	s2.Commit()
	if s2.Space().Faults() <= 60 {
		t.Errorf("faults = %d; paging should force refaults", s2.Space().Faults())
	}
}

func TestForcedRelocationSwizzles(t *testing.T) {
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 30, true)
	e.cold()

	s2 := e.session(128, Config{RelocateFraction: 1.0, RelocSeed: 7}, false)
	base := e.clock.Snapshot()
	s2.Begin()
	vals := walkList(t, s2)
	s2.Commit()
	if len(vals) != 30 {
		t.Fatalf("walked %d", len(vals))
	}
	for i, v := range vals {
		if v != uint32(i) {
			t.Fatalf("node %d = %d after relocation", i, v)
		}
	}
	d := e.clock.Snapshot().Sub(base)
	if s2.Relocations() == 0 {
		t.Fatal("no relocations with fraction 1.0")
	}
	if n := d.Count(sim.CtrSwizzledPtr); n == 0 {
		t.Fatal("relocation swizzled no pointers")
	}
	if n := d.Count(sim.CtrBitmapRead); n == 0 {
		t.Error("swizzling read no bitmap objects")
	}
	if err := s2.CheckTree(); err != nil {
		t.Fatal(err)
	}
}

func TestRelocationORCommitsNewMapping(t *testing.T) {
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 20, true)
	e.cold()

	// One-time relocation: the read-only traversal becomes an update
	// transaction that rewrites mapping objects.
	s2 := e.session(128, Config{Relocation: RelocOR, RelocateFraction: 1.0, RelocSeed: 3}, false)
	base := e.clock.Snapshot()
	s2.Begin()
	walkList(t, s2)
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrCommitFlushPage); n == 0 {
		t.Fatal("QS-OR committed no pages")
	}
	relocated := s2.Relocations()
	if relocated == 0 {
		t.Fatal("no relocations")
	}

	// A third session without injection must follow the *committed*
	// mapping without any swizzling.
	e.cold()
	s3 := e.session(128, Config{}, false)
	base = e.clock.Snapshot()
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	if len(vals) != 20 {
		t.Fatalf("walked %d after OR", len(vals))
	}
	d = e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrSwizzledPtr); n != 0 {
		t.Errorf("post-OR session swizzled %d pointers; mapping should be consistent", n)
	}
}

func TestRelocationCRDoesNotCommit(t *testing.T) {
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	buildList(t, s, 20, true)
	e.cold()

	s2 := e.session(128, Config{Relocation: RelocCR, RelocateFraction: 1.0, RelocSeed: 3}, false)
	base := e.clock.Snapshot()
	s2.Begin()
	walkList(t, s2)
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.clock.Snapshot().Sub(base)
	if n := d.Count(sim.CtrCommitFlushPage); n != 0 {
		t.Fatalf("QS-CR shipped %d pages on a read-only transaction", n)
	}
}

func TestLargeObjectScanAndSplit(t *testing.T) {
	e := newEnv(t)
	s := e.session(128, Config{BulkLoad: true}, true)
	s.Begin()
	cl := s.NewCluster()
	const size = 5*vmem.FrameSize + 123
	ref, err := s.AllocLarge(cl, size)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := s.LargeWrite(ref, payload, 0); err != nil {
		t.Fatal(err)
	}
	// An anchor object pointing at the manual.
	anchor, err := s.Alloc(cl, 16, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s.Space().WriteU64(anchor, uint64(ref))
	if err := s.SetRoot("anchor", anchor); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e.cold()

	s2 := e.session(128, Config{}, false)
	s2.Begin()
	a2, err := s2.Root("anchor")
	if err != nil {
		t.Fatal(err)
	}
	mref, err := s2.Space().ReadU64(a2)
	if err != nil {
		t.Fatal(err)
	}
	// Before first touch: one descriptor covers the whole object.
	d := s2.FindDesc(Ref(mref))
	if d == nil || !d.IsLarge || d.Pages() != 6 {
		t.Fatalf("pre-split desc: %v", d)
	}
	// Touch a middle page: Figure 3's split.
	if _, err := s2.Space().ReadU8(Ref(mref) + 3*vmem.FrameSize); err != nil {
		t.Fatal(err)
	}
	mid := s2.FindDesc(Ref(mref) + 3*vmem.FrameSize)
	if mid == nil || mid.Pages() != 1 || !mid.Accessed {
		t.Fatalf("mid desc after split: %v", mid)
	}
	left := s2.FindDesc(Ref(mref))
	if left == nil || left.Pages() != 3 || left.Accessed {
		t.Fatalf("left desc after split: %v", left)
	}
	right := s2.FindDesc(Ref(mref) + 4*vmem.FrameSize)
	if right == nil || right.Pages() != 2 {
		t.Fatalf("right desc after split: %v", right)
	}
	if err := s2.CheckTree(); err != nil {
		t.Fatal(err)
	}
	// Scan every byte (the T8 pattern) and verify content.
	for i := 0; i < size; i += 997 {
		b, err := s2.Space().ReadU8(Ref(mref) + Ref(i))
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if b != byte(i%251) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	s2.Commit()
}

func TestRecoveryBufferOverflowFlushesEarly(t *testing.T) {
	e := newEnv(t)
	s := e.session(256, Config{BulkLoad: true}, true)
	buildList(t, s, 30, true)
	e.cold()

	// Recovery buffer of 4 pages, updating 30 pages: must flush early,
	// and all updates must still commit correctly.
	s2 := e.session(256, Config{RecoveryBufferBytes: 4 * disk.PageSize}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	ref := head
	for ref != NilRef {
		v, _ := s2.Space().ReadU32(ref + 8)
		if err := s2.Space().WriteU32(ref+8, v+1000); err != nil {
			t.Fatal(err)
		}
		nxt, _ := s2.Space().ReadU64(ref)
		ref = Ref(nxt)
	}
	base := e.clock.Snapshot()
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = base
	e.cold()
	s3 := e.session(256, Config{}, false)
	s3.Begin()
	vals := walkList(t, s3)
	s3.Commit()
	for i, v := range vals {
		if v != uint32(i+1000) {
			t.Fatalf("node %d = %d", i, v)
		}
	}
}

func TestWildPointerRejected(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{}, true)
	s.Begin()
	_, err := s.Space().ReadU8(DefaultBase + 0x9999*vmem.FrameSize)
	if err == nil || !strings.Contains(err.Error(), "wild pointer") {
		t.Fatalf("wild pointer error: %v", err)
	}
	s.Commit()
}

func TestAccessOutsideTransactionRejected(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 3, true)
	e.cold()
	s2 := e.session(64, Config{}, false)
	s2.Begin()
	head, _ := s2.Root("list")
	s2.Commit()
	// The frame is still mapped read-only after commit, so hot reads
	// outside a transaction succeed only for still-mapped pages; evict
	// everything to force a fault.
	s2.Client().DropCaches()
	if _, err := s2.Space().ReadU32(head + 8); err == nil {
		t.Fatal("fault outside a transaction succeeded")
	}
}

func TestDiffRegionsMergeRule(t *testing.T) {
	old := make([]byte, 2048)
	cur := append([]byte(nil), old...)
	// Paper's case 1: first and last byte of a 1K object -> two records.
	cur[0] ^= 1
	cur[1023] ^= 1
	regs := diffRegions(old, cur, wal.HeaderBytes)
	if len(regs) != 2 {
		t.Fatalf("far-apart bytes: %d regions", len(regs))
	}
	// Paper's case 2: bytes 0, 2, 4 -> one merged record.
	cur = append([]byte(nil), old...)
	cur[0] ^= 1
	cur[2] ^= 1
	cur[4] ^= 1
	regs = diffRegions(old, cur, wal.HeaderBytes)
	if len(regs) != 1 || regs[0].off != 0 || regs[0].n != 5 {
		t.Fatalf("nearby bytes: %+v", regs)
	}
	// Boundary: gap exactly hdr/2 merges, gap just over does not.
	cur = append([]byte(nil), old...)
	cur[0] ^= 1
	cur[1+wal.HeaderBytes/2] ^= 1
	regs = diffRegions(old, cur, wal.HeaderBytes)
	if len(regs) != 1 {
		t.Fatalf("gap=hdr/2: %d regions", len(regs))
	}
	cur = append([]byte(nil), old...)
	cur[0] ^= 1
	cur[2+wal.HeaderBytes/2] ^= 1
	regs = diffRegions(old, cur, wal.HeaderBytes)
	if len(regs) != 2 {
		t.Fatalf("gap>hdr/2: %d regions", len(regs))
	}
	// No changes -> no regions.
	if regs := diffRegions(old, old, wal.HeaderBytes); len(regs) != 0 {
		t.Fatalf("identical pages: %+v", regs)
	}
}

// Property: applying diffRegions' records to the old page reproduces the
// new page exactly, for random sparse edits.
func TestDiffRegionsReconstructionProperty(t *testing.T) {
	f := func(seed int64, edits []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, disk.PageSize)
		rng.Read(old)
		cur := append([]byte(nil), old...)
		for _, e := range edits {
			cur[int(e)%disk.PageSize] ^= byte(1 + rng.Intn(255))
		}
		regs := diffRegions(old, cur, wal.HeaderBytes)
		rebuilt := append([]byte(nil), old...)
		for _, r := range regs {
			copy(rebuilt[r.off:r.off+r.n], cur[r.off:r.off+r.n])
		}
		if !bytesEqual(rebuilt, cur) {
			return false
		}
		// Regions must be disjoint, ordered, and genuinely needed.
		prevEnd := -1
		for _, r := range regs {
			if r.off <= prevEnd || r.n <= 0 {
				return false
			}
			prevEnd = r.off + r.n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the descriptor tree stays balanced and ordered under random
// insert/remove/find workloads.
func TestDescTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr descTree
		live := map[vmem.Addr]*PageDesc{}
		base := vmem.Addr(1 << 30)
		for op := 0; op < 400; op++ {
			switch rng.Intn(3) {
			case 0, 1: // insert a random non-overlapping range
				lo := base + vmem.Addr(rng.Intn(4000))*vmem.FrameSize
				n := vmem.Addr(1 + rng.Intn(4))
				d := &PageDesc{Lo: lo, Hi: lo + n*vmem.FrameSize}
				if tr.FindOverlap(d.Lo, d.Hi) != nil {
					if err := tr.Insert(d); err == nil {
						return false // must reject overlap
					}
					continue
				}
				if err := tr.Insert(d); err != nil {
					return false
				}
				live[lo] = d
			case 2: // remove a random live descriptor
				for lo, d := range live {
					tr.Remove(d)
					delete(live, lo)
					break
				}
			}
			if tr.check() != nil {
				return false
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		for lo, d := range live {
			if got := tr.Find(lo + 1); got != d {
				return false
			}
			if got := tr.Find(d.Hi - 1); got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAllocatorPersistsAcrossSessions(t *testing.T) {
	e := newEnv(t)
	s := e.session(64, Config{BulkLoad: true}, true)
	buildList(t, s, 3, true)
	var firstLo Ref
	s.Begin()
	head, _ := s.Root("list")
	firstLo = head.FrameBase()
	s.Commit()

	// A second session allocating new pages must not reuse addresses the
	// first session consumed (the persistent counter).
	s2 := e.session(64, Config{BulkLoad: true}, false)
	s2.Begin()
	cl := s2.NewCluster()
	ref, err := s2.Alloc(cl, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.Commit()
	if ref.FrameBase() <= firstLo {
		t.Fatalf("frame counter reused addresses: %#x <= %#x", ref.FrameBase(), firstLo)
	}
}

func TestBitmapHelpers(t *testing.T) {
	bm := make([]byte, bitmapBytes)
	offs := []int{0, 8, 24, 8184}
	for _, o := range offs {
		bitmapSet(bm, o)
	}
	var got []int
	forEachPointer(bm, func(off int) bool { got = append(got, off); return true })
	if fmt.Sprint(got) != fmt.Sprint(offs) {
		t.Fatalf("forEachPointer = %v", got)
	}
	for _, o := range offs {
		if !bitmapHas(bm, o) {
			t.Fatalf("bit %d missing", o)
		}
	}
	bitmapClear(bm, 8)
	if bitmapHas(bm, 8) {
		t.Fatal("clear failed")
	}
	// Early stop.
	n := 0
	forEachPointer(bm, func(int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMappingRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		entries := make([]mapEntry, n)
		for i := range entries {
			entries[i] = mapEntry{
				ObjLo:    vmem.Addr(rng.Uint64() &^ (vmem.FrameSize - 1)),
				ObjPages: uint32(1 + rng.Intn(1000)),
				IsLarge:  rng.Intn(2) == 0,
				OID:      esm.OID{Page: disk.PageID(rng.Uint32()), Slot: uint16(rng.Intn(100)), File: 3},
			}
		}
		got, err := unmarshalMapping(marshalMapping(entries))
		if err != nil || len(got) != n {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryOfCommittedUpdate(t *testing.T) {
	// End-to-end WAL drill: commit an update (logged via diffing), wipe
	// the volume page, restart the server, and check that redo restores it.
	clock := sim.NewClock(sim.DefaultCostModel())
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := esm.NewServer(vol, logf, esm.ServerConfig{BufferPages: 256, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 64, Clock: clock})
	s, err := New(c, Config{BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	buildList(t, s, 5, false)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	c2 := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 64, Clock: clock})
	s2, err := Open(c2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Begin()
	head, _ := s2.Root("list")
	pid := s2.FindDesc(head).Pid
	if err := s2.Space().WriteU32(head+8, 4242); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash: the server's dirty copy never reaches the volume. Read the
	// volume's stale page directly, then recover.
	buf := make([]byte, disk.PageSize)
	vol.ReadPage(pid, buf)
	srv2, err := esm.OpenServer(vol, logf, esm.ServerConfig{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	c3 := esm.NewClient(esm.NewInProcTransport(srv2), esm.ClientConfig{BufferPages: 64})
	s3, err := Open(c3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s3.Begin()
	head3, err := s3.Root("list")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s3.Space().ReadU32(head3 + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4242 {
		t.Fatalf("recovered value = %d, want 4242", v)
	}
	s3.Commit()
}
