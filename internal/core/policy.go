package core

import (
	"quickstore/internal/buffer"
	"quickstore/internal/sim"
	"quickstore/internal/vmem"
)

// SimplifiedClock is QuickStore's buffer replacement policy (Section 3.5).
// A traditional clock cannot see accesses made through raw pointer
// dereferences, so for memory-mapped data pages the sweep inspects virtual
// frame protections: the first page whose access is not enabled is the
// victim. If a full sweep finds no candidate, the entire persistent address
// space is reprotected with a single mmap call and the sweep restarts.
//
// Pages that are not mapped data pages — B-tree nodes, mapping objects,
// bitmaps, and large-object data accessed through the storage manager — are
// touched via ordinary buffer-pool calls that do maintain reference bits,
// so they follow classic clock semantics (clear a set bit and move on, take
// the page when the bit is already clear).
//
// Balancing the two classes matters (both imbalances showed up as measured
// pathologies during reproduction; see DESIGN.md §7):
//   - if enabled data pages are immune until reprotection while metadata is
//     always fair game, update workloads evict hot B-tree leaves on every
//     miss (T3 became 3x slower than it should be);
//   - if data pages are always preferred as victims, workloads whose pool
//     is dominated by storage-manager pages (bulk loads writing large
//     objects) hunt down the few hot mapped pages and reprotect the whole
//     space on every miss.
//
// The rule used here: take a disabled data page if the sweep finds one;
// otherwise reprotect-and-retry only when mapped data pages make up a
// substantial share of the pool, else fall back to the classic-clock
// metadata victim.
type SimplifiedClock struct {
	s *Store
	// Diagnostics (read by tests).
	calls, protAlls, metaVictims, dataVictims int64
}

// NewSimplifiedClock builds the policy for a store; the store installs it
// into the client pool at session start.
func NewSimplifiedClock(s *Store) *SimplifiedClock { return &SimplifiedClock{s: s} }

// Victim implements buffer.Policy.
func (p *SimplifiedClock) Victim(pool *buffer.Pool) (int, error) {
	p.calls++
	n := pool.Len()
	for pass := 0; pass < 3; pass++ {
		metaFallback := -1
		dataSeen := 0
		for scanned := 0; scanned < n; scanned++ {
			i := pool.Hand
			pool.Hand = (pool.Hand + 1) % n
			f := pool.Frame(i)
			if f.Pin != 0 {
				continue
			}
			d, ok := p.s.byPid[f.Page]
			if !ok {
				// Metadata page: ordinary reference-bit clock.
				if f.Ref {
					f.Ref = false
					continue
				}
				if metaFallback < 0 {
					metaFallback = i
				}
				continue
			}
			dataSeen++
			prot, err := p.s.space.ProtOf(d.Lo)
			if err != nil || prot == vmem.ProtNone {
				p.dataVictims++
				return i, nil
			}
		}
		// No access-disabled data page. Reprotect the space and retry when
		// mapped pages dominate the pool (stale ones then become victims);
		// otherwise take the classic-clock metadata victim.
		if dataSeen >= n/4 || metaFallback < 0 {
			if dataSeen == 0 && metaFallback < 0 {
				continue // only referenced metadata; its bits are now clear
			}
			p.protAlls++
			p.s.space.ProtectAll(vmem.ProtNone)
			p.s.clock.Charge(sim.CtrMmapCall, 1)
			continue
		}
		p.metaVictims++
		return metaFallback, nil
	}
	return 0, buffer.ErrNoVictim
}

// DebugStats reports the policy's internal counters (tests only).
func (p *SimplifiedClock) DebugStats() (calls, protAlls, metaVictims, dataVictims int64) {
	return p.calls, p.protAlls, p.metaVictims, p.dataVictims
}
