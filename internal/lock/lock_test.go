package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSharedCompatibility(t *testing.T) {
	m := New(time.Second)
	if err := m.Acquire(1, PageRes(10), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, PageRes(10), Shared); err != nil {
		t.Fatalf("second shared lock blocked: %v", err)
	}
	if m.Holds(1, PageRes(10)) != Shared || m.Holds(2, PageRes(10)) != Shared {
		t.Fatal("holders not recorded")
	}
}

func TestExclusiveConflict(t *testing.T) {
	m := New(50 * time.Millisecond)
	if err := m.Acquire(1, PageRes(5), Exclusive); err != nil {
		t.Fatal(err)
	}
	err := m.Acquire(2, PageRes(5), Shared)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("conflicting acquire: %v, want timeout", err)
	}
	if m.TryAcquire(2, PageRes(5), Exclusive) {
		t.Fatal("TryAcquire succeeded against X lock")
	}
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := New(time.Second)
	if err := m.Acquire(1, PageRes(7), Shared); err != nil {
		t.Fatal(err)
	}
	// Re-acquire same mode is a no-op.
	if err := m.Acquire(1, PageRes(7), Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade S -> X with no other holders.
	if err := m.Acquire(1, PageRes(7), Exclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if m.Holds(1, PageRes(7)) != Exclusive {
		t.Fatal("upgrade not recorded")
	}
	// X implies S.
	if err := m.Acquire(1, PageRes(7), Shared); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New(2 * time.Second)
	if err := m.Acquire(1, FileRes(1), Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- m.Acquire(2, FileRes(1), Exclusive)
	}()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("waiter not granted after release: %v", err)
	}
}

func TestReleaseAllDropsEverything(t *testing.T) {
	m := New(time.Second)
	m.Acquire(1, PageRes(1), Shared)
	m.Acquire(1, PageRes(2), Exclusive)
	m.Acquire(1, FileRes(3), Shared)
	m.ReleaseAll(1)
	for _, res := range []Resource{PageRes(1), PageRes(2), FileRes(3)} {
		if m.Holds(1, res) != 0 {
			t.Fatalf("still holds %v", res)
		}
	}
	// Another tx can now take everything exclusively.
	for _, res := range []Resource{PageRes(1), PageRes(2), FileRes(3)} {
		if !m.TryAcquire(2, res, Exclusive) {
			t.Fatalf("resource %v not free", res)
		}
	}
}

func TestPageAndFileGranularitiesIndependent(t *testing.T) {
	m := New(time.Second)
	// The same numeric id at different granularities must not conflict.
	if err := m.Acquire(1, PageRes(9), Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.TryAcquire(2, FileRes(9), Exclusive) {
		t.Fatal("page and file locks share a namespace")
	}
}

func TestConcurrentSharedStress(t *testing.T) {
	m := New(5 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := m.Acquire(tx, PageRes(uint32(j%5)), Shared); err != nil {
					errs <- err
					return
				}
			}
			m.ReleaseAll(tx)
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	grants, _ := m.Stats()
	if grants == 0 {
		t.Fatal("no grants recorded")
	}
}
