package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitForQueued polls until n Acquire calls have entered a wait (the waits
// stat is bumped under the manager lock just before queueing).
func waitForQueued(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waits := m.Stats(); waits >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestContentionFIFOOrder is the satellite contention test: N goroutines
// contend for one page's exclusive lock, queued in a known order, and must
// be granted in exactly that order — no waiter starves, none barges.
func TestContentionFIFOOrder(t *testing.T) {
	const waiters = 8
	m := New(30 * time.Second)
	res := PageRes(77)
	if err := m.Acquire(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for k := 0; k < waiters; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			tx := uint64(100 + k)
			if err := m.Acquire(tx, res, Exclusive); err != nil {
				t.Errorf("waiter %d: %v", k, err)
				return
			}
			mu.Lock()
			order = append(order, k)
			mu.Unlock()
			m.ReleaseAll(tx)
		}(k)
		// Confirm waiter k is queued before launching k+1, pinning the
		// arrival order the FIFO contract is judged against.
		waitForQueued(t, m, int64(k+1))
	}
	m.ReleaseAll(1)
	wg.Wait()
	for k := 0; k < waiters; k++ {
		if order[k] != k {
			t.Fatalf("grant order %v violates FIFO arrival order", order)
		}
	}
}

// TestNoBargingPastQueuedWriter proves the starvation fix: with a reader
// holding S and a writer queued for X, a newly arriving reader must not be
// granted ahead of the writer even though S is compatible with the holder.
// Under the pre-FIFO broadcast design, a stream of such readers starved
// the writer indefinitely.
func TestNoBargingPastQueuedWriter(t *testing.T) {
	m := New(10 * time.Second)
	res := PageRes(5)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	writerGranted := make(chan struct{})
	go func() {
		if err := m.Acquire(2, res, Exclusive); err != nil {
			t.Errorf("writer: %v", err)
		}
		close(writerGranted)
	}()
	waitForQueued(t, m, 1)

	// A late reader may not barge: the queue is non-empty.
	if m.TryAcquire(3, res, Shared) {
		t.Fatal("reader barged past a queued writer")
	}
	readerGranted := make(chan struct{})
	go func() {
		if err := m.Acquire(3, res, Shared); err != nil {
			t.Errorf("reader: %v", err)
		}
		close(readerGranted)
	}()
	waitForQueued(t, m, 2)
	select {
	case <-readerGranted:
		t.Fatal("queued reader granted while writer still waits")
	case <-time.After(20 * time.Millisecond):
	}

	m.ReleaseAll(1) // writer (queue head) gets the lock; reader keeps waiting
	<-writerGranted
	select {
	case <-readerGranted:
		t.Fatal("reader granted while writer holds X")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	<-readerGranted
	m.ReleaseAll(3)
}

// TestTimeoutDeadlineRespected bounds the deadlock escape: a blocked
// Acquire returns ErrDeadlock close to the configured timeout — neither
// early nor hanging far past it.
func TestTimeoutDeadlineRespected(t *testing.T) {
	const timeout = 100 * time.Millisecond
	m := New(timeout)
	res := PageRes(9)
	if err := m.Acquire(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire(2, res, Exclusive)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if elapsed < timeout-10*time.Millisecond {
		t.Fatalf("timed out after %v, before the %v deadline", elapsed, timeout)
	}
	if elapsed > timeout*5 {
		t.Fatalf("timed out after %v, far past the %v deadline", elapsed, timeout)
	}
}

// TestTimeoutUnblocksQueueBehind checks that a timed-out waiter is removed
// from the queue and the waiters behind it are re-examined: an X waiter
// times out and the S waiter queued behind it must then be granted
// alongside the S holder.
func TestTimeoutUnblocksQueueBehind(t *testing.T) {
	m := New(150 * time.Millisecond)
	res := PageRes(3)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(2, res, Exclusive) }()
	waitForQueued(t, m, 1)
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(3, res, Shared) }()
	waitForQueued(t, m, 2)

	if err := <-writerDone; !errors.Is(err, ErrDeadlock) {
		t.Fatalf("writer err = %v, want ErrDeadlock", err)
	}
	select {
	case err := <-readerDone:
		if err != nil {
			t.Fatalf("reader behind timed-out writer: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not promoted after the writer ahead of it timed out")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(3)
}

// TestUpgradeDoesNotQueueBehindWriter pins the one sanctioned barge: a
// Shared holder upgrading to Exclusive goes to the queue front, because
// waiting behind another X request would deadlock against its own S hold.
func TestUpgradeDoesNotQueueBehindWriter(t *testing.T) {
	m := New(5 * time.Second)
	res := PageRes(11)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, Shared); err != nil {
		t.Fatal(err)
	}
	// tx3 queues for X behind the two S holders.
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(3, res, Exclusive) }()
	waitForQueued(t, m, 1)
	// tx1 upgrades: must not deadlock behind tx3.
	upgradeDone := make(chan error, 1)
	go func() { upgradeDone <- m.Acquire(1, res, Exclusive) }()
	waitForQueued(t, m, 2)
	m.ReleaseAll(2)
	if err := <-upgradeDone; err != nil {
		t.Fatalf("upgrade behind queued writer: %v", err)
	}
	m.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer after upgrade released: %v", err)
	}
	m.ReleaseAll(3)
}
