// Package lock implements the storage manager's lock manager: shared and
// exclusive locks at page and file granularity, lock upgrade, blocking with
// a timeout-based deadlock escape, and release-all at transaction end —
// the services ESM provides in the paper ("locking is provided at the page
// and file levels").
//
// Waiters are granted in strict FIFO order: a new request never overtakes
// the wait queue, so a stream of compatible readers cannot starve a queued
// writer (and vice versa). The only requests allowed to barge are upgrades
// (Shared holder wanting Exclusive), which already hold the resource —
// queueing an upgrade behind an Exclusive waiter would deadlock it against
// its own Shared hold.
//
// Index pages use short latches outside this manager (the paper's "special
// non-2PL protocol for index pages"); see internal/btree.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String names the lock mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Kind is the granularity of a lockable resource.
type Kind uint8

// Resource kinds.
const (
	KindPage Kind = iota + 1
	KindFile
)

// Resource names a lockable object.
type Resource struct {
	Kind Kind
	ID   uint64
}

// PageRes builds a page resource.
func PageRes(pid uint32) Resource { return Resource{Kind: KindPage, ID: uint64(pid)} }

// FileRes builds a file resource.
func FileRes(fid uint32) Resource { return Resource{Kind: KindFile, ID: uint64(fid)} }

// ErrDeadlock is returned when a lock wait exceeds the manager's timeout;
// the caller should abort the transaction.
var ErrDeadlock = errors.New("lock: wait timeout (presumed deadlock)")

// waiter is one queued Acquire. ready is closed (under Manager.mu) when
// the lock has been granted to the waiter.
type waiter struct {
	tx    uint64
	mode  Mode
	ready chan struct{}
}

type entry struct {
	holders map[uint64]Mode // tx -> strongest held mode
	queue   []*waiter       // FIFO wait queue
}

// Manager grants and releases locks. The zero value is not usable; call New.
type Manager struct {
	mu      sync.Mutex
	table   map[Resource]*entry
	held    map[uint64]map[Resource]Mode // tx -> resources
	timeout time.Duration
	grants  int64
	waits   int64
}

// New creates a Manager with the given wait timeout (0 means a sensible
// default of one second).
func New(timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = time.Second
	}
	return &Manager{
		table:   map[Resource]*entry{},
		held:    map[uint64]map[Resource]Mode{},
		timeout: timeout,
	}
}

func compatible(e *entry, tx uint64, mode Mode) bool {
	for holder, m := range e.holders {
		if holder == tx {
			continue
		}
		if mode == Exclusive || m == Exclusive {
			return false
		}
	}
	return true
}

// grantLocked records the grant; caller holds m.mu.
func (m *Manager) grantLocked(e *entry, tx uint64, res Resource, mode Mode) {
	if e.holders[tx] < mode {
		e.holders[tx] = mode
	}
	if m.held[tx] == nil {
		m.held[tx] = map[Resource]Mode{}
	}
	m.held[tx][res] = e.holders[tx]
	m.grants++
}

// promoteLocked grants queued waiters strictly in FIFO order, stopping at
// the first waiter that cannot be granted — later compatible waiters do
// not barge past it. Caller holds m.mu.
func (m *Manager) promoteLocked(res Resource, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !compatible(e, w.tx, w.mode) {
			break
		}
		e.queue = e.queue[1:]
		m.grantLocked(e, w.tx, res, w.mode)
		close(w.ready)
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.table, res)
	}
}

// Acquire obtains res in the given mode for tx, blocking until it is granted
// or the timeout elapses. Re-acquiring a held lock is a no-op; acquiring
// Exclusive over a held Shared lock upgrades it.
func (m *Manager) Acquire(tx uint64, res Resource, mode Mode) error {
	m.mu.Lock()
	e := m.table[res]
	if e == nil {
		e = &entry{holders: map[uint64]Mode{}}
		m.table[res] = e
	}
	held, holds := e.holders[tx]
	if holds && (held == Exclusive || held == mode) {
		m.mu.Unlock()
		return nil // already strong enough
	}
	// Immediate grant: compatible, and either nothing is queued ahead of
	// us (FIFO) or we are an upgrade (which may barge; see package doc).
	if compatible(e, tx, mode) && (holds || len(e.queue) == 0) {
		m.grantLocked(e, tx, res, mode)
		m.mu.Unlock()
		return nil
	}
	m.waits++
	w := &waiter{tx: tx, mode: mode, ready: make(chan struct{})}
	if holds {
		// Upgrades queue at the front: they hold Shared, so anything
		// queued ahead that needs Exclusive can never run first anyway.
		e.queue = append([]*waiter{w}, e.queue...)
	} else {
		e.queue = append(e.queue, w)
	}
	m.mu.Unlock()

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case <-w.ready:
		return nil // granted in the race with the timeout
	default:
	}
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	// Our departure may unblock waiters that were queued behind us.
	m.promoteLocked(res, e)
	return fmt.Errorf("%w: tx %d wants %v on %v", ErrDeadlock, tx, mode, res)
}

// TryAcquire is Acquire without blocking; it reports whether the lock was
// granted. Like Acquire, it respects the FIFO queue: it fails when waiters
// are queued, even if the requested mode is compatible with the holders.
func (m *Manager) TryAcquire(tx uint64, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[res]
	if e == nil {
		e = &entry{holders: map[uint64]Mode{}}
		m.table[res] = e
	}
	held, holds := e.holders[tx]
	if holds && (held == Exclusive || held == mode) {
		return true
	}
	if !compatible(e, tx, mode) || (!holds && len(e.queue) > 0) {
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.table, res)
		}
		return false
	}
	m.grantLocked(e, tx, res, mode)
	return true
}

// Holds reports the mode tx holds on res (0 if none).
func (m *Manager) Holds(tx uint64, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.table[res]; e != nil {
		return e.holders[tx]
	}
	return 0
}

// ReleaseAll drops every lock held by tx (transaction end) and hands each
// freed resource to its queued waiters in FIFO order.
func (m *Manager) ReleaseAll(tx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[tx] {
		if e := m.table[res]; e != nil {
			delete(e.holders, tx)
			m.promoteLocked(res, e)
		}
	}
	delete(m.held, tx)
}

// Stats reports lifetime grant and wait counts.
func (m *Manager) Stats() (grants, waits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants, m.waits
}
