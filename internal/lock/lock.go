// Package lock implements the storage manager's lock manager: shared and
// exclusive locks at page and file granularity, lock upgrade, blocking with
// a timeout-based deadlock escape, and release-all at transaction end —
// the services ESM provides in the paper ("locking is provided at the page
// and file levels").
//
// Index pages use short latches outside this manager (the paper's "special
// non-2PL protocol for index pages"); see internal/btree.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String names the lock mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Kind is the granularity of a lockable resource.
type Kind uint8

// Resource kinds.
const (
	KindPage Kind = iota + 1
	KindFile
)

// Resource names a lockable object.
type Resource struct {
	Kind Kind
	ID   uint64
}

// PageRes builds a page resource.
func PageRes(pid uint32) Resource { return Resource{Kind: KindPage, ID: uint64(pid)} }

// FileRes builds a file resource.
func FileRes(fid uint32) Resource { return Resource{Kind: KindFile, ID: uint64(fid)} }

// ErrDeadlock is returned when a lock wait exceeds the manager's timeout;
// the caller should abort the transaction.
var ErrDeadlock = errors.New("lock: wait timeout (presumed deadlock)")

type entry struct {
	holders map[uint64]Mode // tx -> strongest held mode
	waiting int
}

// Manager grants and releases locks. The zero value is not usable; call New.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	table   map[Resource]*entry
	held    map[uint64]map[Resource]Mode // tx -> resources
	timeout time.Duration
	grants  int64
	waits   int64
}

// New creates a Manager with the given wait timeout (0 means a sensible
// default of one second).
func New(timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = time.Second
	}
	m := &Manager{
		table:   map[Resource]*entry{},
		held:    map[uint64]map[Resource]Mode{},
		timeout: timeout,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func compatible(e *entry, tx uint64, mode Mode) bool {
	for holder, m := range e.holders {
		if holder == tx {
			continue
		}
		if mode == Exclusive || m == Exclusive {
			return false
		}
	}
	return true
}

// Acquire obtains res in the given mode for tx, blocking until it is granted
// or the timeout elapses. Re-acquiring a held lock is a no-op; acquiring
// Exclusive over a held Shared lock upgrades it.
func (m *Manager) Acquire(tx uint64, res Resource, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[res]
	if e == nil {
		e = &entry{holders: map[uint64]Mode{}}
		m.table[res] = e
	}
	if held, ok := e.holders[tx]; ok && (held == Exclusive || held == mode) {
		return nil // already strong enough
	}
	deadline := time.Now().Add(m.timeout)
	for !compatible(e, tx, mode) {
		m.waits++
		e.waiting++
		woke := make(chan struct{})
		timer := time.AfterFunc(time.Until(deadline), func() {
			m.mu.Lock()
			close(woke)
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		m.cond.Wait()
		timer.Stop()
		e.waiting--
		select {
		case <-woke:
			if !compatible(e, tx, mode) {
				return fmt.Errorf("%w: tx %d wants %v on %v", ErrDeadlock, tx, mode, res)
			}
		default:
		}
	}
	e.holders[tx] = mode
	if m.held[tx] == nil {
		m.held[tx] = map[Resource]Mode{}
	}
	m.held[tx][res] = mode
	m.grants++
	return nil
}

// TryAcquire is Acquire without blocking; it reports whether the lock was
// granted.
func (m *Manager) TryAcquire(tx uint64, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[res]
	if e == nil {
		e = &entry{holders: map[uint64]Mode{}}
		m.table[res] = e
	}
	if held, ok := e.holders[tx]; ok && (held == Exclusive || held == mode) {
		return true
	}
	if !compatible(e, tx, mode) {
		return false
	}
	e.holders[tx] = mode
	if m.held[tx] == nil {
		m.held[tx] = map[Resource]Mode{}
	}
	m.held[tx][res] = mode
	m.grants++
	return true
}

// Holds reports the mode tx holds on res (0 if none).
func (m *Manager) Holds(tx uint64, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.table[res]; e != nil {
		return e.holders[tx]
	}
	return 0
}

// ReleaseAll drops every lock held by tx (transaction end).
func (m *Manager) ReleaseAll(tx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[tx] {
		if e := m.table[res]; e != nil {
			delete(e.holders, tx)
			if len(e.holders) == 0 && e.waiting == 0 {
				delete(m.table, res)
			}
		}
	}
	delete(m.held, tx)
	m.cond.Broadcast()
}

// Stats reports lifetime grant and wait counts.
func (m *Manager) Stats() (grants, waits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants, m.waits
}
