// Package shard partitions the page space across N esm page servers
// (DESIGN.md §16). A deterministic shard map routes every page, file, and
// name to exactly one shard; the client-side Router fans a session's
// requests out over per-shard transports and runs presumed-abort
// two-phase commit for transactions that touch more than one shard.
//
// Identifiers are partitioned by prefix: the top ShardBits of a 32-bit
// page or file id name the owning shard, the remaining bits are the
// shard-local id. The Router rewrites ids at the boundary in both
// directions, so each server works entirely in its own dense local id
// space and a single-shard deployment is bit-for-bit identical to an
// unsharded one (shard 0's prefix is zero).
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"quickstore/internal/esm"
	"quickstore/internal/repl"
)

const (
	// ShardBits is the width of the shard prefix in page and file ids.
	ShardBits = 6
	// MaxShards is the largest cluster the id encoding can address.
	MaxShards = 1 << ShardBits

	localBits = 32 - ShardBits
	localMask = 1<<localBits - 1
)

// Map is the deterministic shard map: the single source of routing truth
// for a sharded cluster. Every lookup — which shard owns a page, a file,
// a name — is a pure function of the map, so any two clients with the
// same map agree on placement with no coordination.
type Map struct {
	// Addrs is the endpoint table, one entry per shard; an entry may be a
	// single address or a "|"-separated replica group (the Router then
	// follows that shard's leader through a repl.Director). Per the
	// no-plain-access rule (qsvet's shardmap check), only package shard
	// reads this field: every consumer goes through the Router or the
	// Dial helpers, so no call path can address a shard endpoint without
	// consulting the map.
	Addrs []string
}

// ParseMap parses a comma-separated shard map spec, e.g.
// "host1:7070,host2:7070" or "a:1|a:2|a:3,b:1|b:2|b:3" with replica
// groups.
func ParseMap(spec string) (Map, error) {
	var m Map
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Map{}, fmt.Errorf("shard: empty endpoint in map spec %q", spec)
		}
		m.Addrs = append(m.Addrs, part)
	}
	if len(m.Addrs) > MaxShards {
		return Map{}, fmt.Errorf("shard: %d shards exceeds the %d-shard id space", len(m.Addrs), MaxShards)
	}
	return m, nil
}

// NumShards returns the cluster width.
func (m Map) NumShards() int { return len(m.Addrs) }

// ShardOfPage returns the shard owning global page id pid.
func ShardOfPage(pid uint32) int { return int(pid >> localBits) }

// LocalPage strips the shard prefix from a global page id.
func LocalPage(pid uint32) uint32 { return pid & localMask }

// GlobalPage builds a global page id from a shard and its local id.
func GlobalPage(shard int, local uint32) uint32 {
	return uint32(shard)<<localBits | (local & localMask)
}

// ShardOfFile returns the shard owning global file id fid. File ids use
// the same prefix encoding as pages so file-granularity locks route the
// same way.
func ShardOfFile(fid uint32) int { return int(fid >> localBits) }

// LocalFile strips the shard prefix from a global file id.
func LocalFile(fid uint32) uint32 { return fid & localMask }

// GlobalFile builds a global file id from a shard and its local id.
func GlobalFile(shard int, local uint32) uint32 {
	return uint32(shard)<<localBits | (local & localMask)
}

// ShardOfName routes a catalog name (file, root, or counter) to a shard
// by FNV-1a hash. Names are the only identifiers with no embedded shard
// prefix, so their placement is the hash — deterministic across clients.
func ShardOfName(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// NameOnShard derives a name with the given prefix that ShardOfName
// places on the target shard, by suffix search. Partitionable workloads
// (the shard bench, the README quickstart) use it to co-locate a
// session's file with its page-allocation affinity shard.
func NameOnShard(prefix string, target, n int) string {
	if ShardOfName(prefix, n) == target {
		return prefix
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.%d", prefix, i)
		if ShardOfName(name, n) == target {
			return name
		}
	}
}

// Dialer opens a transport to one endpoint address.
type Dialer func(addr string) (esm.Transport, error)

// DialTransports opens one transport per shard from the map: a plain
// transport for single-address entries, a repl.Director following the
// group's leader for replica groups. This is the only sanctioned path
// from the address table to connections — dialing a shard any other way
// bypasses the map and is flagged by qsvet's shardmap check.
func (m Map) DialTransports(dial Dialer) ([]esm.Transport, error) {
	trs := make([]esm.Transport, 0, len(m.Addrs))
	fail := func(err error) ([]esm.Transport, error) {
		for _, tr := range trs {
			_ = tr.Close()
		}
		return nil, err
	}
	for i, spec := range m.Addrs {
		group := strings.Split(spec, "|")
		if len(group) == 1 {
			tr, err := dial(group[0])
			if err != nil {
				return fail(fmt.Errorf("shard %d: dialing %s: %w", i, group[0], err))
			}
			trs = append(trs, tr)
			continue
		}
		eps := make([]repl.Endpoint, 0, len(group))
		for _, addr := range group {
			eps = append(eps, repl.Endpoint{ID: addr, Addr: addr})
		}
		trs = append(trs, repl.NewDirector(eps, repl.DirectorConfig{Dial: dial}))
	}
	return trs, nil
}
