package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/lock"
	"quickstore/internal/wal"
)

func TestIDTranslation(t *testing.T) {
	cases := []struct {
		shard int
		local uint32
	}{
		{0, 0}, {0, 1}, {0, localMask}, {1, 0}, {1, 42}, {3, localMask}, {MaxShards - 1, 7},
	}
	for _, c := range cases {
		g := GlobalPage(c.shard, c.local)
		if ShardOfPage(g) != c.shard || LocalPage(g) != c.local {
			t.Fatalf("page round trip (%d,%d) -> %d -> (%d,%d)", c.shard, c.local, g, ShardOfPage(g), LocalPage(g))
		}
		gf := GlobalFile(c.shard, c.local)
		if ShardOfFile(gf) != c.shard || LocalFile(gf) != c.local {
			t.Fatalf("file round trip (%d,%d) -> %d", c.shard, c.local, gf)
		}
	}
	// Shard 0 ids are the identity: a one-shard cluster is bit-for-bit an
	// unsharded deployment.
	if GlobalPage(0, 12345) != 12345 || LocalPage(12345) != 12345 {
		t.Fatal("shard 0 encoding is not the identity")
	}
}

func TestParseMap(t *testing.T) {
	m, err := ParseMap("a:1,b:1|b:2|b:3, c:1")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 3 {
		t.Fatalf("NumShards = %d", m.NumShards())
	}
	if _, err := ParseMap("a,,b"); err == nil {
		t.Fatal("empty endpoint accepted")
	}
}

func TestNameRouting(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		for _, name := range []string{"oo7", "bench.0", "bench.1", "x"} {
			s := ShardOfName(name, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOfName(%q,%d) = %d", name, n, s)
			}
			if s != ShardOfName(name, n) {
				t.Fatal("non-deterministic name hash")
			}
		}
		for target := 0; target < n; target++ {
			name := NameOnShard("home", target, n)
			if got := ShardOfName(name, n); got != target {
				t.Fatalf("NameOnShard(home,%d,%d) = %q lands on %d", target, n, name, got)
			}
		}
	}
}

// newCluster builds n in-proc shard servers and a Router over them.
func newCluster(t *testing.T, n int, cfg Config) ([]*esm.Server, *Router) {
	t.Helper()
	srvs := make([]*esm.Server, n)
	trs := make([]esm.Transport, n)
	for i := range srvs {
		srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		trs[i] = esm.NewInProcTransport(srv)
	}
	r, err := NewRouter(trs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srvs, r
}

// makeObject creates one committed object holding val, in a file whose
// name (and, via affinity, whose pages) live on the given shard.
func makeObject(t *testing.T, trs []esm.Transport, shard, nShards int, val byte) (esm.OID, string) {
	t.Helper()
	r, err := NewRouter(trs, Config{Affinity: shard})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	name := NameOnShard(fmt.Sprintf("obj.%d", shard), shard, nShards)
	fid, err := c.CreateFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if ShardOfFile(fid) != shard {
		t.Fatalf("file %q got id %d on shard %d, want %d", name, fid, ShardOfFile(fid), shard)
	}
	oid, data, err := c.CreateObject(c.NewCluster(fid), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = val
	}
	if ShardOfPage(uint32(oid.Page)) != shard {
		t.Fatalf("object page %d allocated on shard %d, want %d", oid.Page, ShardOfPage(uint32(oid.Page)), shard)
	}
	if err := c.SetRoot(name, oid, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return oid, name
}

// update rewrites the first 8 bytes of the object through an open session.
func update(t *testing.T, c *esm.Client, oid esm.OID, val byte) {
	t.Helper()
	data, off, frame, err := c.ReadObjectAt(oid)
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), data[:8]...)
	nw := bytes.Repeat([]byte{val}, 8)
	copy(data, nw)
	c.Pool().MarkDirty(frame)
	c.LogUpdate(oid.Page, off, old, nw)
}

func readVal(t *testing.T, trs []esm.Transport, oid esm.OID) byte {
	t.Helper()
	r, err := NewRouter(trs, Config{Affinity: -1})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	v := data[0]
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return v
}

func transports(srvs []*esm.Server) []esm.Transport {
	trs := make([]esm.Transport, len(srvs))
	for i, s := range srvs {
		trs[i] = esm.NewInProcTransport(s)
	}
	return trs
}

func TestSingleShardFastPath(t *testing.T) {
	srvs, r := newCluster(t, 2, Config{Affinity: 0})
	trs := transports(srvs)
	oid, _ := makeObject(t, trs, 0, 2, 0xAA)

	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	update(t, c, oid, 0xBB)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.SingleCommits != 1 || st.CrossCommits != 0 || st.Prepares != 0 {
		t.Fatalf("stats = %+v, want one single-shard fast-path commit", st)
	}
	if got := readVal(t, trs, oid); got != 0xBB {
		t.Fatalf("value = %#x", got)
	}
	for i, s := range srvs {
		if s.InDoubtCount() != 0 || s.DecisionCount() != 0 {
			t.Fatalf("shard %d left 2PC state: indoubt=%d decisions=%d", i, s.InDoubtCount(), s.DecisionCount())
		}
	}
}

func TestCrossShardCommit(t *testing.T) {
	srvs, r := newCluster(t, 2, Config{Affinity: -1})
	trs := transports(srvs)
	oid0, _ := makeObject(t, trs, 0, 2, 0x11)
	oid1, _ := makeObject(t, trs, 1, 2, 0x22)

	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	update(t, c, oid0, 0x33)
	update(t, c, oid1, 0x44)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.CrossCommits != 1 || st.Prepares != 2 || st.SingleCommits != 0 {
		t.Fatalf("stats = %+v, want one two-participant cross commit", st)
	}
	if st.Forgets != 1 || st.Unresolved != 0 {
		t.Fatalf("stats = %+v, want the decision forgotten in-line", st)
	}
	if got := readVal(t, trs, oid0); got != 0x33 {
		t.Fatalf("shard 0 value = %#x", got)
	}
	if got := readVal(t, trs, oid1); got != 0x44 {
		t.Fatalf("shard 1 value = %#x", got)
	}
	for i, s := range srvs {
		if s.InDoubtCount() != 0 || s.DecisionCount() != 0 {
			t.Fatalf("shard %d left 2PC state: indoubt=%d decisions=%d", i, s.InDoubtCount(), s.DecisionCount())
		}
	}
}

func TestCrossShardAbort(t *testing.T) {
	srvs, r := newCluster(t, 2, Config{Affinity: -1})
	trs := transports(srvs)
	oid0, _ := makeObject(t, trs, 0, 2, 0x11)
	oid1, _ := makeObject(t, trs, 1, 2, 0x22)

	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	update(t, c, oid0, 0x99)
	update(t, c, oid1, 0x99)
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := readVal(t, trs, oid0); got != 0x11 {
		t.Fatalf("shard 0 value after abort = %#x", got)
	}
	if got := readVal(t, trs, oid1); got != 0x22 {
		t.Fatalf("shard 1 value after abort = %#x", got)
	}
	for i, s := range srvs {
		if s.InDoubtCount() != 0 {
			t.Fatalf("shard %d holds prepared state after abort", i)
		}
	}
}

func TestRootsAndCountersRouteByName(t *testing.T) {
	srvs, r := newCluster(t, 4, Config{Affinity: -1})
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("ctr.%d", i)
		if _, err := c.Counter(name, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Each counter lives on exactly its hash shard; a second pass reads
	// every one back through the router.
	c2 := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("ctr.%d", i)
		got, err := c2.Counter(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i)+1 {
			t.Fatalf("counter %s = %d", name, got)
		}
	}
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = srvs
}

func TestStatsAggregate(t *testing.T) {
	srvs, r := newCluster(t, 2, Config{Affinity: -1})
	trs := transports(srvs)
	makeObject(t, trs, 0, 2, 1)
	makeObject(t, trs, 1, 2, 2)
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	// One baseline commit per shard: the aggregate is their sum.
	if st.Commits != 2 {
		t.Fatalf("aggregate commits = %d, want 2", st.Commits)
	}
	_ = srvs
}

// prepareInDoubt hand-runs phase 1 of a cross-shard commit so the
// participant is left prepared: coordinator tx on shard 0, participant tx
// on shard 1 updating the given page, both prepared. Returns the two
// local tx ids.
func prepareInDoubt(t *testing.T, trs []esm.Transport, pid uint32, off uint16, old, nw []byte, decide bool) (coordTx, partTx uint64) {
	t.Helper()
	call := func(shard int, req *esm.Request) *esm.Response {
		t.Helper()
		resp, err := trs[shard].Call(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("shard %d %v: %s", shard, req.Op, resp.Err)
		}
		return resp
	}
	coordTx = call(0, &esm.Request{Op: esm.OpBegin}).N
	partTx = call(1, &esm.Request{Op: esm.OpBegin}).N

	// One logged update on the participant.
	batch := make([]byte, 4)
	binary.LittleEndian.PutUint32(batch, 1)
	rec := make([]byte, 11)
	rec[0] = byte(wal.RecUpdate)
	binary.LittleEndian.PutUint32(rec[1:], pid)
	binary.LittleEndian.PutUint16(rec[5:], off)
	binary.LittleEndian.PutUint16(rec[7:], uint16(len(old)))
	binary.LittleEndian.PutUint16(rec[9:], uint16(len(nw)))
	batch = append(batch, rec...)
	batch = append(batch, old...)
	batch = append(batch, nw...)
	call(1, &esm.Request{Op: esm.OpLog, Tx: partTx, Data: batch})

	call(1, &esm.Request{Op: esm.OpPrepare, Tx: partTx, Page: 0, N: coordTx, Data: nil})
	call(0, &esm.Request{Op: esm.OpPrepare, Tx: coordTx, Page: 0, N: coordTx, Mode: esm.PrepareModeCoord})
	if decide {
		call(0, &esm.Request{Op: esm.OpCommitDecision, Tx: coordTx, Mode: esm.DecisionCommit | esm.DecisionCoord})
	}
	return coordTx, partTx
}

// reopen drops a server and recovers a fresh one from the same volume and
// log, the way restart would.
func reopen(t *testing.T, vol disk.Volume, log *wal.Log, cfg esm.ServerConfig) *esm.Server {
	t.Helper()
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 64
	}
	srv, err := esm.OpenServer(vol, log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// localOID rewrites a global OID into the owning shard's local id space.
func localOID(oid esm.OID) esm.OID {
	return esm.OID{
		Page:   disk.PageID(LocalPage(uint32(oid.Page))),
		Slot:   oid.Slot,
		Unique: oid.Unique,
		File:   LocalFile(oid.File),
	}
}

func TestResolveSweepDeliversCommit(t *testing.T) {
	vols := []disk.Volume{disk.NewMemVolume(), disk.NewMemVolume()}
	logs := []*wal.Log{wal.NewMemLog(), wal.NewMemLog()}
	srvs := make([]*esm.Server, 2)
	for i := range srvs {
		srv, err := esm.NewServer(vols[i], logs[i], esm.ServerConfig{BufferPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	trs := transports(srvs)
	oid, _ := makeObject(t, trs, 1, 2, 0x55)
	for _, s := range srvs {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	local := LocalPage(uint32(oid.Page))

	// Read the object's current on-page bytes so the hand-logged update has
	// a correct old image.
	rc := esm.NewClient(esm.NewInProcTransport(srvs[1]), esm.ClientConfig{BufferPages: 8})
	if err := rc.Begin(); err != nil {
		t.Fatal(err)
	}
	data, off, _, err := rc.ReadObjectAt(localOID(oid))
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), data[:8]...)
	if err := rc.Abort(); err != nil {
		t.Fatal(err)
	}

	nw := bytes.Repeat([]byte{0x66}, 8)
	_, _ = prepareInDoubt(t, trs, local, uint16(off), old, nw, true)

	// Participant crashes and restarts: the transaction is in doubt.
	srvs[1] = reopen(t, vols[1], logs[1], esm.ServerConfig{})
	trs = transports(srvs)
	if srvs[1].InDoubtCount() != 1 {
		t.Fatalf("in-doubt after restart = %d, want 1", srvs[1].InDoubtCount())
	}

	out, err := ResolveAll(trs)
	if err != nil {
		t.Fatal(err)
	}
	if out.InDoubt != 1 || out.Committed != 1 || out.Aborted != 0 {
		t.Fatalf("resolve outcome = %+v", out)
	}
	if srvs[1].InDoubtCount() != 0 {
		t.Fatal("participant still in doubt after resolution")
	}
	if srvs[0].DecisionCount() != 0 {
		t.Fatal("coordinator decision not forgotten after clean sweep")
	}
	if got := readVal(t, trs, oid); got != 0x66 {
		t.Fatalf("resolved value = %#x, want the committed update", got)
	}
}

func TestResolveSweepPresumesAbort(t *testing.T) {
	vols := []disk.Volume{disk.NewMemVolume(), disk.NewMemVolume()}
	logs := []*wal.Log{wal.NewMemLog(), wal.NewMemLog()}
	srvs := make([]*esm.Server, 2)
	for i := range srvs {
		srv, err := esm.NewServer(vols[i], logs[i], esm.ServerConfig{BufferPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	trs := transports(srvs)
	oid, _ := makeObject(t, trs, 1, 2, 0x55)
	for _, s := range srvs {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	local := LocalPage(uint32(oid.Page))

	rc := esm.NewClient(esm.NewInProcTransport(srvs[1]), esm.ClientConfig{BufferPages: 8})
	if err := rc.Begin(); err != nil {
		t.Fatal(err)
	}
	data, off, _, err := rc.ReadObjectAt(localOID(oid))
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), data[:8]...)
	if err := rc.Abort(); err != nil {
		t.Fatal(err)
	}

	nw := bytes.Repeat([]byte{0x77}, 8)
	prepareInDoubt(t, trs, local, uint16(off), old, nw, false)

	// Both sides crash before any decision: the coordinator's prepared
	// transaction dies (presumed abort), the participant restarts in doubt.
	srvs[0] = reopen(t, vols[0], logs[0], esm.ServerConfig{})
	srvs[1] = reopen(t, vols[1], logs[1], esm.ServerConfig{})
	trs = transports(srvs)
	if srvs[0].InDoubtCount() != 0 {
		t.Fatal("coordinator held its own prepare in doubt; it must presume abort")
	}
	if srvs[1].InDoubtCount() != 1 {
		t.Fatalf("participant in-doubt = %d, want 1", srvs[1].InDoubtCount())
	}

	out, err := ResolveAll(trs)
	if err != nil {
		t.Fatal(err)
	}
	if out.InDoubt != 1 || out.Aborted != 1 || out.Committed != 0 {
		t.Fatalf("resolve outcome = %+v", out)
	}
	if srvs[1].InDoubtCount() != 0 {
		t.Fatal("participant still in doubt after presumed abort")
	}
	if got := readVal(t, trs, oid); got != 0x55 {
		t.Fatalf("value after presumed abort = %#x, want the original", got)
	}
}

// In-doubt pages stay exclusively locked until resolution: a new
// transaction must not read through uncommitted prepared data.
func TestInDoubtPagesStayLocked(t *testing.T) {
	vols := []disk.Volume{disk.NewMemVolume(), disk.NewMemVolume()}
	logs := []*wal.Log{wal.NewMemLog(), wal.NewMemLog()}
	srvs := make([]*esm.Server, 2)
	for i := range srvs {
		srv, err := esm.NewServer(vols[i], logs[i], esm.ServerConfig{BufferPages: 64, LockTimeout: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	trs := transports(srvs)
	oid, _ := makeObject(t, trs, 1, 2, 0x55)
	for _, s := range srvs {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	local := LocalPage(uint32(oid.Page))

	rc := esm.NewClient(esm.NewInProcTransport(srvs[1]), esm.ClientConfig{BufferPages: 8})
	if err := rc.Begin(); err != nil {
		t.Fatal(err)
	}
	data, off, _, err := rc.ReadObjectAt(localOID(oid))
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), data[:8]...)
	if err := rc.Abort(); err != nil {
		t.Fatal(err)
	}
	prepareInDoubt(t, trs, local, uint16(off), old, bytes.Repeat([]byte{0x88}, 8), true)

	srvs[1] = reopen(t, vols[1], logs[1], esm.ServerConfig{LockTimeout: 50 * time.Millisecond})
	trs = transports(srvs)

	// A locking reader (the core layer's 2PL path) must block — and with
	// the short timeout, fail — on the in-doubt page until resolution.
	c := esm.NewClient(esm.NewInProcTransport(srvs[1]), esm.ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(lock.KindPage, local, lock.Shared); err == nil {
		t.Fatal("shared lock on an in-doubt page granted before resolution")
	}
	_ = c.Abort()

	if _, err := ResolveAll(trs); err != nil {
		t.Fatal(err)
	}
	if got := readVal(t, trs, oid); got != 0x88 {
		t.Fatalf("value after resolution = %#x", got)
	}
}

func TestSnapshotOpsSingleShardOnly(t *testing.T) {
	_, r := newCluster(t, 2, Config{Affinity: -1})
	c := esm.NewClient(r, esm.ClientConfig{BufferPages: 8})
	if err := c.BeginSnapshot(); err == nil {
		t.Fatal("cross-shard snapshot begin succeeded")
	}
}
