package shard

import (
	"fmt"

	"quickstore/internal/esm"
)

// ResolveOutcome summarizes one resolution sweep.
type ResolveOutcome struct {
	InDoubt   int // recovered in-doubt participants found this sweep
	Committed int // resolved to commit (decision found at the coordinator)
	Aborted   int // resolved to abort (presumed: no decision, no live tx)
	Pending   int // left alone (coordinator still mid-protocol)
	Forgotten int // coordinator decisions retired after a clean sweep
}

// ResolveAll runs one presumed-abort resolution sweep over a cluster:
// list every shard's recovered in-doubt transactions, inquire each one's
// outcome at its coordinator, and deliver the verdict. When the sweep
// ends with no in-doubt transaction anywhere, lingering coordinator
// decisions have no one left to ask for them and are forgotten, unpinning
// the coordinators' checkpoint cuts.
//
// The sweep is idempotent and crash-safe at every step: verdict delivery
// is retried by the next sweep if it fails, duplicate deliveries are
// absorbed by the participant, and a decision is only forgotten after a
// second listing confirms the cluster is clean.
func ResolveAll(trs []esm.Transport) (ResolveOutcome, error) {
	var out ResolveOutcome
	list := func() (holders []int, coordShards []uint32, coordTxs, localTxs []uint64, decisions map[int][]uint64, err error) {
		decisions = map[int][]uint64{}
		for shard, tr := range trs {
			resp, err := tr.Call(&esm.Request{Op: esm.OpResolveTx, Mode: esm.ResolveModeList})
			if err != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("shard %d: list in-doubt: %w", shard, err)
			}
			if resp.Err != "" {
				return nil, nil, nil, nil, nil, fmt.Errorf("shard %d: list in-doubt: %s", shard, resp.Err)
			}
			cs, ct, lt, err := esm.ParseResolveEntries(resp.Data)
			if err != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("shard %d: %w", shard, err)
			}
			for i := range lt {
				if lt[i] == 0 {
					// A remembered decision, not an in-doubt transaction.
					decisions[shard] = append(decisions[shard], ct[i])
					continue
				}
				holders = append(holders, shard)
				coordShards = append(coordShards, cs[i])
				coordTxs = append(coordTxs, ct[i])
				localTxs = append(localTxs, lt[i])
			}
		}
		return holders, coordShards, coordTxs, localTxs, decisions, nil
	}

	holders, coordShards, coordTxs, localTxs, _, err := list()
	if err != nil {
		return out, err
	}
	out.InDoubt = len(holders)
	for i, holder := range holders {
		coord := int(coordShards[i])
		if coord < 0 || coord >= len(trs) {
			return out, fmt.Errorf("shard %d: in-doubt tx %d names coordinator shard %d of %d", holder, localTxs[i], coord, len(trs))
		}
		resp, err := trs[coord].Call(&esm.Request{Op: esm.OpResolveTx, Tx: coordTxs[i], Mode: esm.ResolveModeInquire})
		if err != nil {
			return out, fmt.Errorf("shard %d: inquiring tx %d: %w", coord, coordTxs[i], err)
		}
		if resp.Err != "" {
			return out, fmt.Errorf("shard %d: inquiring tx %d: %s", coord, coordTxs[i], resp.Err)
		}
		switch resp.N {
		case esm.ResolveCommitted:
			r2, err := trs[holder].Call(&esm.Request{Op: esm.OpCommitDecision, Tx: localTxs[i], Mode: esm.DecisionCommit})
			if err != nil {
				return out, fmt.Errorf("shard %d: delivering commit to tx %d: %w", holder, localTxs[i], err)
			}
			if r2.Err != "" {
				// Already resolved by a racing sweep or router: absorbed.
				continue
			}
			out.Committed++
		case esm.ResolveAborted:
			r2, err := trs[holder].Call(&esm.Request{Op: esm.OpAbort, Tx: localTxs[i]})
			if err != nil {
				return out, fmt.Errorf("shard %d: delivering abort to tx %d: %w", holder, localTxs[i], err)
			}
			if r2.Err != "" {
				continue
			}
			out.Aborted++
		case esm.ResolvePending:
			// The coordinator is still forming the verdict; never presume.
			out.Pending++
		default:
			return out, fmt.Errorf("shard %d: unknown resolve outcome %d for tx %d", coord, resp.N, coordTxs[i])
		}
	}

	// Retire decisions only once a fresh listing shows no in-doubt
	// transaction anywhere — before that, some participant may still need
	// to ask for the verdict.
	holders, _, _, _, decisions, err := list()
	if err != nil {
		return out, err
	}
	if len(holders) > 0 {
		return out, nil
	}
	for shard, txs := range decisions {
		for _, tx := range txs {
			//qsvet:ignore ackorder verdict delivery happens in the sweep loop above (and by the router); forget is gated on a second listing finding no in-doubt participant anywhere
			resp, err := trs[shard].Call(&esm.Request{Op: esm.OpResolveTx, Tx: tx, Mode: esm.ResolveModeForget})
			if err != nil {
				return out, fmt.Errorf("shard %d: forgetting decision %d: %w", shard, tx, err)
			}
			if resp.Err != "" {
				return out, fmt.Errorf("shard %d: forgetting decision %d: %s", shard, tx, resp.Err)
			}
			out.Forgotten++
		}
	}
	return out, nil
}

// ResolveInDoubt runs one resolution sweep over the Router's shards.
// Serving processes run it periodically after restarts; the crash drill
// runs it after recovery.
func (r *Router) ResolveInDoubt() (ResolveOutcome, error) {
	return ResolveAll(r.trs)
}
