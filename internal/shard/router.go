package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/lock"
)

// Config tunes a Router.
type Config struct {
	// Affinity, when >= 0, is the shard that receives this session's page
	// allocations. Partitionable workloads pin each session to its home
	// shard so single-shard commits stay on the one-phase fast path.
	// -1 (and the zero value via NewRouter's normalization) rotates
	// allocations round-robin.
	Affinity int
}

// Router is a client-side sharding transport: it implements esm.Transport
// over N per-shard transports, routing every request by the shard map's
// deterministic rules and rewriting page/file ids between the global
// (client) and local (server) id spaces. Transactions are begun lazily on
// each shard at first touch; a commit that touched one shard forwards the
// ordinary one-phase OpCommit, while a cross-shard commit runs the
// presumed-abort two-phase protocol with the first-touched shard as
// coordinator.
//
// A Router carries one session's transaction state but is safe for the
// session's internal concurrency (prefetch workers issue reads in
// parallel with the mainline).
type Router struct {
	trs      []esm.Transport
	affinity int
	rr       atomic.Uint32
	nextTx   atomic.Uint64

	mu  sync.Mutex
	txs map[uint64]*routedTx

	stats struct {
		singleCommits atomic.Int64
		crossCommits  atomic.Int64
		prepares      atomic.Int64
		aborts        atomic.Int64
		prepareFails  atomic.Int64
		unresolved    atomic.Int64
		forgets       atomic.Int64
	}
}

// routedTx tracks one global transaction's footprint: the lazily-begun
// local transaction per touched shard (order preserves first touch — the
// first shard is the commit coordinator) and the last log LSN each shard
// assigned the transaction (the per-shard page stamp).
type routedTx struct {
	mu      sync.Mutex
	local   map[int]uint64
	order   []int
	lastLSN map[int]uint64
}

// RouterStats is a snapshot of the Router's protocol counters.
type RouterStats struct {
	SingleCommits int64 // one-phase fast-path commits
	CrossCommits  int64 // two-phase cross-shard commits
	Prepares      int64 // participant prepares sent (phase 1)
	Aborts        int64 // transaction aborts fanned out
	PrepareFails  int64 // phase-1 failures (aborted everywhere)
	Unresolved    int64 // committed, but a participant missed its verdict
	Forgets       int64 // decisions forgotten after full acknowledgement
}

// NewRouter builds a Router over one transport per shard (index = shard
// id). The Router owns the transports: Close closes them.
func NewRouter(trs []esm.Transport, cfg Config) (*Router, error) {
	if len(trs) == 0 || len(trs) > MaxShards {
		return nil, fmt.Errorf("shard: router needs 1..%d transports, got %d", MaxShards, len(trs))
	}
	if cfg.Affinity >= len(trs) {
		return nil, fmt.Errorf("shard: affinity %d out of range for %d shards", cfg.Affinity, len(trs))
	}
	return &Router{
		trs:      trs,
		affinity: cfg.Affinity,
		txs:      map[uint64]*routedTx{},
	}, nil
}

// Dial builds a Router straight from a shard map (CLI path): transports
// are opened with m.DialTransports, replica groups behind Directors.
func Dial(m Map, dial Dialer, cfg Config) (*Router, error) {
	trs, err := m.DialTransports(dial)
	if err != nil {
		return nil, err
	}
	return NewRouter(trs, cfg)
}

// NumShards returns the cluster width.
func (r *Router) NumShards() int { return len(r.trs) }

// Stats returns a snapshot of the Router's protocol counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		SingleCommits: r.stats.singleCommits.Load(),
		CrossCommits:  r.stats.crossCommits.Load(),
		Prepares:      r.stats.prepares.Load(),
		Aborts:        r.stats.aborts.Load(),
		PrepareFails:  r.stats.prepareFails.Load(),
		Unresolved:    r.stats.unresolved.Load(),
		Forgets:       r.stats.forgets.Load(),
	}
}

// Close implements esm.Transport.
func (r *Router) Close() error {
	var first error
	for _, tr := range r.trs {
		if err := tr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// call forwards one request to a shard and surfaces remote errors.
func (r *Router) call(shard int, req *esm.Request) (*esm.Response, error) {
	if shard < 0 || shard >= len(r.trs) {
		return nil, fmt.Errorf("shard: id routes to shard %d of %d (foreign-map identifier?)", shard, len(r.trs))
	}
	return r.trs[shard].Call(req)
}

// CallShard sends a raw request to one shard — the sanctioned per-shard
// access path for observability (the qsstore stats per-shard view).
func (r *Router) CallShard(shard int, req *esm.Request) (*esm.Response, error) {
	return r.call(shard, req)
}

func (r *Router) tx(gid uint64) (*routedTx, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.txs[gid]
	if t == nil {
		return nil, fmt.Errorf("shard: unknown transaction %d", gid)
	}
	return t, nil
}

// localFor returns the shard-local transaction id for gid on shard,
// beginning one lazily at first touch. The first shard touched becomes
// the transaction's commit coordinator.
func (r *Router) localFor(t *routedTx, shard int) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.local[shard]; ok {
		return id, nil
	}
	resp, err := r.call(shard, &esm.Request{Op: esm.OpBegin})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("shard %d: begin: %s", shard, resp.Err)
	}
	t.local[shard] = resp.N
	t.order = append(t.order, shard)
	return resp.N, nil
}

// Call implements esm.Transport: the full per-op routing table.
func (r *Router) Call(req *esm.Request) (*esm.Response, error) {
	switch req.Op {
	case esm.OpBegin:
		gid := r.nextTx.Add(1)
		r.mu.Lock()
		r.txs[gid] = &routedTx{local: map[int]uint64{}, lastLSN: map[int]uint64{}}
		r.mu.Unlock()
		return &esm.Response{N: gid}, nil

	case esm.OpCommit:
		return r.commit(req)

	case esm.OpAbort:
		return r.abort(req.Tx)

	case esm.OpReadPage, esm.OpWritePage, esm.OpFreePages:
		return r.pageOp(req, ShardOfPage(req.Page), LocalPage(req.Page))

	case esm.OpLock:
		kind := lock.Kind(req.Mode >> 4)
		switch kind {
		case lock.KindPage:
			return r.pageOp(req, ShardOfPage(req.Page), LocalPage(req.Page))
		case lock.KindFile:
			return r.pageOp(req, ShardOfFile(req.Page), LocalFile(req.Page))
		}
		return nil, fmt.Errorf("shard: lock on unroutable resource kind %d", kind)

	case esm.OpAllocPages:
		return r.alloc(req)

	case esm.OpLog:
		return r.logBatch(req)

	case esm.OpReadPages:
		return r.readPages(req)

	case esm.OpValidatePages:
		return r.validatePages(req)

	case esm.OpCreateFile, esm.OpOpenFile:
		shard := ShardOfName(req.Name, len(r.trs))
		resp, err := r.call(shard, req)
		if err != nil || resp.Err != "" {
			return resp, err
		}
		if resp.N > localMask {
			return nil, fmt.Errorf("shard %d: local file id %d overflows the %d-bit local space", shard, resp.N, localBits)
		}
		out := *resp
		out.N = uint64(GlobalFile(shard, uint32(resp.N)))
		return &out, nil

	case esm.OpGetRoot, esm.OpSetRoot, esm.OpCounter:
		return r.call(ShardOfName(req.Name, len(r.trs)), req)

	case esm.OpCheckpoint:
		for shard := range r.trs {
			resp, err := r.call(shard, req)
			if err != nil {
				return nil, err
			}
			if resp.Err != "" {
				return resp, nil
			}
		}
		return &esm.Response{}, nil

	case esm.OpStats:
		return r.aggregateStats(req)

	case esm.OpBeginSnapshot, esm.OpSnapRead, esm.OpEndSnapshot:
		// Shard 0's prefix is zero, so on a one-shard cluster global and
		// local ids coincide and snapshots pass straight through. A
		// cross-shard consistent snapshot needs a coordinated LSN vector;
		// until then sharded deployments read through transactions.
		if len(r.trs) == 1 {
			return r.call(0, req)
		}
		return nil, fmt.Errorf("shard: %v not supported on a %d-shard cluster (snapshots are per-shard)", req.Op, len(r.trs))
	}
	return nil, fmt.Errorf("shard: unroutable op %v", req.Op)
}

// pageOp forwards a page-addressed request to its shard with the id
// localized, re-globalizing the response's page id.
func (r *Router) pageOp(req *esm.Request, shard int, local uint32) (*esm.Response, error) {
	fwd := *req
	fwd.Page = local
	if req.Tx != 0 {
		t, err := r.tx(req.Tx)
		if err != nil {
			return nil, err
		}
		fwd.Tx, err = r.localFor(t, shard)
		if err != nil {
			return nil, err
		}
	}
	resp, err := r.call(shard, &fwd)
	if err != nil || resp.Err != "" {
		return resp, err
	}
	if req.Op == esm.OpReadPage {
		out := *resp
		out.Page = GlobalPage(shard, resp.Page)
		return &out, nil
	}
	return resp, nil
}

// alloc routes a page allocation: to the session's affinity shard when
// configured, round-robin otherwise. The returned run is re-globalized;
// a shard whose local space cannot hold the run fails loudly rather than
// handing out ids that alias another shard's pages.
func (r *Router) alloc(req *esm.Request) (*esm.Response, error) {
	shard := r.affinity
	if shard < 0 {
		shard = int(r.rr.Add(1)-1) % len(r.trs)
	}
	fwd := *req
	if req.Tx != 0 {
		t, err := r.tx(req.Tx)
		if err != nil {
			return nil, err
		}
		fwd.Tx, err = r.localFor(t, shard)
		if err != nil {
			return nil, err
		}
	}
	resp, err := r.call(shard, &fwd)
	if err != nil || resp.Err != "" {
		return resp, err
	}
	if uint64(resp.Page)+req.N-1 > localMask {
		return nil, fmt.Errorf("shard %d: allocated run [%d,+%d) overflows the %d-bit local page space", shard, resp.Page, req.N, localBits)
	}
	out := *resp
	out.Page = GlobalPage(shard, resp.Page)
	return &out, nil
}

// logBatch splits an OpLog batch by each record's page shard, rewrites
// page ids local, and fans the per-shard batches out concurrently. Each
// shard's returned LSN is recorded as the transaction's page stamp for
// that shard (see StampLSN); the response carries the maximum.
func (r *Router) logBatch(req *esm.Request) (*esm.Response, error) {
	if len(req.Data) < 4 {
		return nil, fmt.Errorf("shard: short log batch (%d bytes)", len(req.Data))
	}
	count := int(binary.LittleEndian.Uint32(req.Data))
	parts := map[int][]byte{}
	counts := map[int]uint32{}
	p := 4
	for i := 0; i < count; i++ {
		if len(req.Data) < p+11 {
			return nil, fmt.Errorf("shard: truncated log batch record %d", i)
		}
		pid := binary.LittleEndian.Uint32(req.Data[p+1:])
		oldLen := int(binary.LittleEndian.Uint16(req.Data[p+7:]))
		newLen := int(binary.LittleEndian.Uint16(req.Data[p+9:]))
		if len(req.Data) < p+11+oldLen+newLen {
			return nil, fmt.Errorf("shard: truncated log batch record %d payload", i)
		}
		shard := ShardOfPage(pid)
		if parts[shard] == nil {
			parts[shard] = make([]byte, 4)
		}
		rec := append([]byte(nil), req.Data[p:p+11+oldLen+newLen]...)
		binary.LittleEndian.PutUint32(rec[1:], LocalPage(pid))
		parts[shard] = append(parts[shard], rec...)
		counts[shard]++
		p += 11 + oldLen + newLen
	}
	t, err := r.tx(req.Tx)
	if err != nil {
		return nil, err
	}
	type result struct {
		shard int
		lsn   uint64
		err   error
	}
	results := make(chan result, len(parts))
	for shard, data := range parts {
		binary.LittleEndian.PutUint32(data[:4], counts[shard])
		local, err := r.localFor(t, shard)
		if err != nil {
			return nil, err
		}
		go func(shard int, local uint64, data []byte) {
			resp, err := r.call(shard, &esm.Request{Op: esm.OpLog, Tx: local, Data: data})
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard %d: %s", shard, resp.Err)
			}
			if err != nil {
				results <- result{shard: shard, err: err}
				return
			}
			results <- result{shard: shard, lsn: resp.N}
		}(shard, local, data)
	}
	var max uint64
	for range parts {
		res := <-results
		if res.err != nil {
			return nil, res.err
		}
		t.mu.Lock()
		t.lastLSN[res.shard] = res.lsn
		t.mu.Unlock()
		if res.lsn > max {
			max = res.lsn
		}
	}
	return &esm.Response{N: max}, nil
}

// validatePages splits a warm-cache validation batch by each entry's page
// shard, rewrites page ids local, fans out concurrently, and reassembles
// one stale bitmap in request order with repair page ids re-globalized.
// The per-shard requests carry no transaction id: validation is read-only
// and hint sessions do not exist under sharding, so enlisting untouched
// shards into the 2PC cohort for it would only widen commits.
func (r *Router) validatePages(req *esm.Request) (*esm.Response, error) {
	pids, tokens, err := esm.ParseValidateEntries(req.Data, req.N)
	if err != nil {
		return nil, err
	}
	byShard := map[int][]int{} // shard -> indexes into the request order
	for i, pid := range pids {
		byShard[ShardOfPage(pid)] = append(byShard[ShardOfPage(pid)], i)
	}
	type result struct {
		shard   int
		idx     []int
		stale   []bool
		repairs []esm.ValidateRepair
		err     error
	}
	results := make(chan result, len(byShard))
	for shard, idx := range byShard {
		entries := make([]byte, 0, len(idx)*esm.ValidateReqEntryBytes)
		for _, i := range idx {
			entries = esm.AppendValidateEntry(entries, LocalPage(pids[i]), tokens[i])
		}
		go func(shard int, idx []int, entries []byte) {
			resp, err := r.call(shard, &esm.Request{Op: esm.OpValidatePages, N: uint64(len(idx)), Data: entries})
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard %d: %s", shard, resp.Err)
			}
			if err != nil {
				results <- result{shard: shard, err: err}
				return
			}
			stale, repairs, err := esm.ParseValidateResponse(resp.Data, len(idx))
			results <- result{shard: shard, idx: idx, stale: stale, repairs: repairs, err: err}
		}(shard, idx, entries)
	}
	stale := make([]bool, len(pids))
	repairAt := make(map[int]*esm.ValidateRepair, len(pids)) // request index -> repair
	for range byShard {
		res := <-results
		if res.err != nil {
			return nil, res.err
		}
		localIdx := map[uint32]int{} // local pid -> request index, this shard
		for k, i := range res.idx {
			stale[i] = res.stale[k]
			localIdx[LocalPage(pids[i])] = i
		}
		for k := range res.repairs {
			rep := res.repairs[k]
			i, ok := localIdx[rep.Page]
			if !ok {
				return nil, fmt.Errorf("shard %d: validate repair for unrequested page %d", res.shard, rep.Page)
			}
			rep.Page = pids[i]
			repairAt[i] = &rep
		}
	}
	var repairs []esm.ValidateRepair
	for i := range pids {
		if rep := repairAt[i]; rep != nil {
			repairs = append(repairs, *rep)
		}
	}
	return &esm.Response{N: req.N, Data: esm.AppendValidateResponse(nil, stale, repairs)}, nil
}

// readPages splits a batch read by shard, fans out, and reassembles the
// page images in request order with global ids.
func (r *Router) readPages(req *esm.Request) (*esm.Response, error) {
	if len(req.Data)%4 != 0 || uint64(len(req.Data)/4) != req.N {
		return nil, fmt.Errorf("shard: malformed ReadPages payload (%d bytes for %d pages)", len(req.Data), req.N)
	}
	n := int(req.N)
	byShard := map[int][]int{} // shard -> indexes into the request order
	pids := make([]uint32, n)
	for i := 0; i < n; i++ {
		pids[i] = binary.LittleEndian.Uint32(req.Data[i*4:])
		shard := ShardOfPage(pids[i])
		byShard[shard] = append(byShard[shard], i)
	}
	// Versioned batch records carry an extra 8-byte coherence token
	// between the id and the image (see esm.Server.readPagesBatch).
	rec := 4 + disk.PageSize
	if req.Mode&esm.ReadVersioned != 0 {
		rec += 8
	}
	out := make([]byte, n*rec)
	type result struct {
		shard int
		idx   []int
		resp  *esm.Response
		err   error
	}
	results := make(chan result, len(byShard))
	for shard, idx := range byShard {
		payload := make([]byte, 0, len(idx)*4)
		for _, i := range idx {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], LocalPage(pids[i]))
			payload = append(payload, b[:]...)
		}
		go func(shard int, idx []int, payload []byte) {
			resp, err := r.call(shard, &esm.Request{Op: esm.OpReadPages, N: uint64(len(idx)), Mode: req.Mode, Data: payload})
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard %d: %s", shard, resp.Err)
			}
			results <- result{shard: shard, idx: idx, resp: resp, err: err}
		}(shard, idx, payload)
	}
	for range byShard {
		res := <-results
		if res.err != nil {
			return nil, res.err
		}
		if len(res.resp.Data) != len(res.idx)*rec {
			return nil, fmt.Errorf("shard %d: ReadPages returned %d bytes for %d pages", res.shard, len(res.resp.Data), len(res.idx))
		}
		for j, i := range res.idx {
			src := res.resp.Data[j*rec : (j+1)*rec]
			dst := out[i*rec : (i+1)*rec]
			copy(dst, src)
			binary.LittleEndian.PutUint32(dst[:4], GlobalPage(res.shard, binary.LittleEndian.Uint32(src[:4])))
		}
	}
	return &esm.Response{N: req.N, Data: out}, nil
}

// StampLSN implements esm.ShardStamper: the page stamp for pid is the
// last log LSN the transaction was assigned on pid's owning shard, not
// the session-wide scalar — LSN spaces are per shard.
func (r *Router) StampLSN(gid uint64, pid disk.PageID) uint64 {
	r.mu.Lock()
	t := r.txs[gid]
	r.mu.Unlock()
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN[ShardOfPage(uint32(pid))]
}

// splitCommitPayload partitions a commit's page payload (repeated u32
// global pid + page image) into per-shard payloads with local ids.
func splitCommitPayload(data []byte) (map[int][]byte, error) {
	const rec = 4 + disk.PageSize
	if len(data)%rec != 0 {
		return nil, fmt.Errorf("shard: malformed commit payload (%d bytes)", len(data))
	}
	parts := map[int][]byte{}
	for p := 0; p < len(data); p += rec {
		pid := binary.LittleEndian.Uint32(data[p:])
		shard := ShardOfPage(pid)
		entry := append([]byte(nil), data[p:p+rec]...)
		binary.LittleEndian.PutUint32(entry[:4], LocalPage(pid))
		parts[shard] = append(parts[shard], entry...)
	}
	return parts, nil
}

// commit resolves a transaction: one-phase when a single shard was
// touched, presumed-abort two-phase otherwise. The first-touched shard
// coordinates: every participant prepares (votes durably), then the
// coordinator's single decision record commits the transaction and the
// verdict fans out. A participant that misses its verdict is left
// prepared — in doubt — for the resolver (ResolveAll / OpResolveTx).
func (r *Router) commit(req *esm.Request) (*esm.Response, error) {
	t, err := r.tx(req.Tx)
	if err != nil {
		return nil, err
	}
	defer func() {
		r.mu.Lock()
		delete(r.txs, req.Tx)
		r.mu.Unlock()
	}()
	parts, err := splitCommitPayload(req.Data)
	if err != nil {
		return nil, err
	}
	// Ensure every shard with shipped pages is a participant (it will be
	// already — pages are only dirtied under that shard's locks — but a
	// commit must never silently drop a payload).
	for shard := range parts {
		if _, err := r.localFor(t, shard); err != nil {
			return nil, err
		}
	}
	t.mu.Lock()
	participants := append([]int(nil), t.order...)
	locals := make(map[int]uint64, len(t.local))
	for s, id := range t.local {
		locals[s] = id
	}
	t.mu.Unlock()

	if len(participants) == 0 {
		//qsvet:ignore quorumack read-only transaction: no shard was ever touched, there is nothing to make durable
		return &esm.Response{}, nil // touched nothing; nothing to resolve
	}
	if len(participants) == 1 {
		// One-phase fast path, untouched semantics: the ordinary commit.
		shard := participants[0]
		resp, err := r.call(shard, &esm.Request{Op: esm.OpCommit, Tx: locals[shard], Data: parts[shard]})
		if err == nil && resp.Err == "" {
			r.stats.singleCommits.Add(1)
		}
		return resp, err
	}

	coord := participants[0]
	coordLocal := locals[coord]

	// Phase 1: prepare every participant concurrently. Any failure aborts
	// the transaction everywhere — no decision record is ever written, so
	// abort is the presumed outcome at every participant.
	type vote struct {
		shard int
		err   error
	}
	votes := make(chan vote, len(participants))
	for _, shard := range participants {
		mode := uint8(0)
		if shard == coord {
			mode = esm.PrepareModeCoord
		}
		go func(shard int, mode uint8) {
			resp, err := r.call(shard, &esm.Request{
				Op:   esm.OpPrepare,
				Tx:   locals[shard],
				Page: uint32(coord),
				N:    coordLocal,
				Mode: mode,
				Data: parts[shard],
			})
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard %d: %s", shard, resp.Err)
			}
			votes <- vote{shard: shard, err: err}
		}(shard, mode)
	}
	r.stats.prepares.Add(int64(len(participants)))
	var prepareErr error
	for range participants {
		if v := <-votes; v.err != nil && prepareErr == nil {
			prepareErr = v.err
		}
	}
	if prepareErr != nil {
		r.stats.prepareFails.Add(1)
		for _, shard := range participants {
			_, _ = r.call(shard, &esm.Request{Op: esm.OpAbort, Tx: locals[shard]})
		}
		return nil, fmt.Errorf("shard: prepare failed, transaction aborted: %w", prepareErr)
	}

	// Phase 2, decision point: the coordinator's RecDecision is the
	// transaction's one durable commit record. Until it is forced the
	// whole transaction can still abort; after it, the outcome is commit
	// no matter who crashes.
	resp, err := r.call(coord, &esm.Request{
		Op:   esm.OpCommitDecision,
		Tx:   coordLocal,
		Mode: esm.DecisionCommit | esm.DecisionCoord,
	})
	if err == nil && resp.Err != "" {
		err = fmt.Errorf("shard %d: %s", coord, resp.Err)
	}
	if err != nil {
		// The decision may or may not have been logged: the transaction is
		// in doubt from this session's point of view. Participants stay
		// prepared; the resolver settles them against the coordinator's
		// log once it is back.
		return nil, fmt.Errorf("shard: commit outcome in doubt (coordinator decision failed): %w", err)
	}
	decisionLSN := resp.N

	// Phase 2, fan-out: deliver the verdict to the other participants.
	acks := make(chan vote, len(participants)-1)
	for _, shard := range participants {
		if shard == coord {
			continue
		}
		go func(shard int) {
			resp, err := r.call(shard, &esm.Request{Op: esm.OpCommitDecision, Tx: locals[shard], Mode: esm.DecisionCommit})
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard %d: %s", shard, resp.Err)
			}
			acks <- vote{shard: shard, err: err}
		}(shard)
	}
	missed := 0
	for i := 0; i < len(participants)-1; i++ {
		if a := <-acks; a.err != nil {
			missed++
		}
	}
	r.stats.crossCommits.Add(1)
	if missed > 0 {
		// Still a successful commit — the decision is durable. The missed
		// participants are in doubt until resolved, and the coordinator
		// keeps the decision remembered for their inquiry.
		r.stats.unresolved.Add(int64(missed))
		//qsvet:ignore quorumack client-side fan-out: durability is the acked coordinator decision; each shard server runs its own quorum gate before acking
		return &esm.Response{N: decisionLSN}, nil
	}
	// Phase 2.5: every participant holds the outcome; the coordinator may
	// forget the decision (and unpin its checkpoint cut). Best-effort — a
	// lost forget only delays truncation until the sweep resolver's next
	// round.
	if _, ferr := r.call(coord, &esm.Request{Op: esm.OpResolveTx, Tx: coordLocal, Mode: esm.ResolveModeForget}); ferr == nil {
		r.stats.forgets.Add(1)
	}
	//qsvet:ignore quorumack client-side fan-out: durability is the acked coordinator decision; each shard server runs its own quorum gate before acking
	return &esm.Response{N: decisionLSN}, nil
}

// abort rolls the transaction back on every touched shard.
func (r *Router) abort(gid uint64) (*esm.Response, error) {
	t, err := r.tx(gid)
	if err != nil {
		return nil, err
	}
	defer func() {
		r.mu.Lock()
		delete(r.txs, gid)
		r.mu.Unlock()
	}()
	t.mu.Lock()
	participants := append([]int(nil), t.order...)
	locals := make(map[int]uint64, len(t.local))
	for s, id := range t.local {
		locals[s] = id
	}
	t.mu.Unlock()
	r.stats.aborts.Add(1)
	var firstErr error
	for _, shard := range participants {
		resp, err := r.call(shard, &esm.Request{Op: esm.OpAbort, Tx: locals[shard]})
		if err == nil && resp.Err != "" {
			err = fmt.Errorf("shard %d: %s", shard, resp.Err)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &esm.Response{}, nil
}

// aggregateStats sums the per-shard ServerStats into one cluster view.
// Per-shard detail stays available through CallShard.
func (r *Router) aggregateStats(req *esm.Request) (*esm.Response, error) {
	var agg esm.ServerStats
	shards := make([]int, 0, len(r.trs))
	for shard := range r.trs {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	for _, shard := range shards {
		resp, err := r.call(shard, req)
		if err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return resp, nil
		}
		var st esm.ServerStats
		if err := json.Unmarshal(resp.Data, &st); err != nil {
			return nil, fmt.Errorf("shard %d: stats: %w", shard, err)
		}
		agg.BufferPages += st.BufferPages
		agg.Resident += st.Resident
		agg.PoolHits += st.PoolHits
		agg.PoolMisses += st.PoolMisses
		agg.PoolEvicted += st.PoolEvicted
		agg.AllocatedPages += st.AllocatedPages
		agg.LogRecords += st.LogRecords
		agg.LogBytes += st.LogBytes
		agg.DiskReads += st.DiskReads
		agg.DiskWrites += st.DiskWrites
		agg.PrefetchPages += st.PrefetchPages
		agg.PrefetchReads += st.PrefetchReads
		agg.Commits += st.Commits
		agg.LogForces += st.LogForces
		agg.LogPiggybacks += st.LogPiggybacks
		agg.LockGrants += st.LockGrants
		agg.LockWaits += st.LockWaits
		agg.SnapBegins += st.SnapBegins
		agg.SnapReads += st.SnapReads
		agg.NetInFlightHW += st.NetInFlightHW
		agg.NetFlushes += st.NetFlushes
		agg.NetFrames += st.NetFrames
		agg.NetBytesOut += st.NetBytesOut
	}
	blob, err := json.Marshal(&agg)
	if err != nil {
		return nil, err
	}
	return &esm.Response{N: uint64(agg.Resident), Data: blob}, nil
}
