package prefetch

import (
	"errors"
	"sync"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/sim"
)

// harness binds a Prefetcher to in-memory fakes and records every Fetch and
// Install in order.
type harness struct {
	mu        sync.Mutex
	resident  map[disk.PageID]bool
	batches   [][]disk.PageID
	installed []disk.PageID
	fetchErr  error
}

func (h *harness) funcs() Funcs {
	return Funcs{
		Resident: func(pid disk.PageID) bool { return h.resident[pid] },
		Fetch: func(pids []disk.PageID) ([][]byte, []uint64, error) {
			h.mu.Lock()
			h.batches = append(h.batches, append([]disk.PageID(nil), pids...))
			h.mu.Unlock()
			if h.fetchErr != nil {
				return nil, nil, h.fetchErr
			}
			out := make([][]byte, len(pids))
			tokens := make([]uint64, len(pids))
			for i, pid := range pids {
				out[i] = []byte{byte(pid)}
				tokens[i] = uint64(pid) * 100
			}
			return out, tokens, nil
		},
		Install: func(pid disk.PageID, data []byte, token uint64) bool {
			if len(data) != 1 || data[0] != byte(pid) {
				panic("image/page mismatch")
			}
			if token != uint64(pid)*100 {
				panic("token/page mismatch")
			}
			h.installed = append(h.installed, pid)
			return true
		},
	}
}

func newTest(cfg Config, h *harness) (*Prefetcher, *sim.Clock) {
	cfg.Enabled = true
	clock := sim.NewClock(sim.CostModel{})
	if h.resident == nil {
		h.resident = map[disk.PageID]bool{}
	}
	return New(cfg, clock, h.funcs()), clock
}

func TestDisabledIsInert(t *testing.T) {
	h := &harness{}
	clock := sim.NewClock(sim.CostModel{})
	p := New(Config{Enabled: false}, clock, h.funcs())
	p.Enqueue(7)
	if err := p.Pump(); err != nil {
		t.Fatal(err)
	}
	if len(h.batches) != 0 || p.Pending() != 0 {
		t.Errorf("disabled prefetcher did work: batches=%v pending=%d", h.batches, p.Pending())
	}
	if n := clock.Count(sim.CtrPrefetchIssued); n != 0 {
		t.Errorf("issued = %d, want 0", n)
	}
	var nilP *Prefetcher
	if nilP.Enabled() {
		t.Error("nil prefetcher reports enabled")
	}
	nilP.Forget(1) // must not panic
}

func TestEnqueueDedupAndDepth(t *testing.T) {
	h := &harness{resident: map[disk.PageID]bool{5: true}}
	p, clock := newTest(Config{Depth: 3}, h)

	p.Enqueue(disk.InvalidPage) // ignored
	p.Enqueue(5)                // resident: ignored
	p.Enqueue(1)
	p.Enqueue(1) // duplicate: ignored
	p.Enqueue(2)
	p.Enqueue(3)
	p.Enqueue(4) // over depth: dropped, stays eligible
	if got := p.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	if n := clock.Count(sim.CtrPrefetchIssued); n != 3 {
		t.Errorf("issued = %d, want 3", n)
	}
	if err := p.Pump(); err != nil {
		t.Fatal(err)
	}
	p.Enqueue(4) // room again after the pump
	if got := p.Pending(); got != 1 {
		t.Errorf("pending after pump = %d, want 1", got)
	}
	p.Enqueue(1) // already requested this session: still deduped
	if got := p.Pending(); got != 1 {
		t.Errorf("requested-set dedup failed, pending = %d", got)
	}
	p.Forget(1)
	p.Enqueue(1) // eligible again after Forget (e.g. eviction)
	if got := p.Pending(); got != 2 {
		t.Errorf("pending after Forget+Enqueue = %d, want 2", got)
	}
}

func TestPumpBatchingAndOrderedDrain(t *testing.T) {
	h := &harness{}
	p, clock := newTest(Config{Depth: 100, BatchSize: 4, Workers: 3}, h)
	var want []disk.PageID
	for pid := disk.PageID(1); pid <= 10; pid++ {
		p.Enqueue(pid)
		want = append(want, pid)
	}
	if err := p.Pump(); err != nil {
		t.Fatal(err)
	}
	// 10 pages at batch size 4 -> batches of 4, 4, 2.
	if n := clock.Count(sim.CtrPrefetchBatch); n != 3 {
		t.Errorf("batches charged = %d, want 3", n)
	}
	// Fetches may complete in any order (that's the point of the fan-out);
	// only the multiset of batch shapes is fixed.
	sizes := map[int]int{}
	for _, b := range h.batches {
		sizes[len(b)]++
	}
	if len(h.batches) != 3 || sizes[4] != 2 || sizes[2] != 1 {
		t.Errorf("batch shapes = %v, want two of 4 and one of 2", h.batches)
	}
	// Installs must follow issue order no matter which worker fetched what.
	if len(h.installed) != len(want) {
		t.Fatalf("installed %d pages, want %d", len(h.installed), len(want))
	}
	for i, pid := range want {
		if h.installed[i] != pid {
			t.Fatalf("install order %v, want %v", h.installed, want)
		}
	}
	if p.Pending() != 0 {
		t.Errorf("queue not drained: %d", p.Pending())
	}
}

func TestPumpOrderedDrainManyRounds(t *testing.T) {
	// Determinism under real goroutine scheduling: repeat a wide pump many
	// times and require the identical install sequence every round.
	for round := 0; round < 50; round++ {
		h := &harness{}
		p, _ := newTest(Config{Depth: 1000, BatchSize: 3, Workers: 8}, h)
		for pid := disk.PageID(1); pid <= 100; pid++ {
			p.Enqueue(pid)
		}
		if err := p.Pump(); err != nil {
			t.Fatal(err)
		}
		for i := range h.installed {
			if h.installed[i] != disk.PageID(i+1) {
				t.Fatalf("round %d: install %d is page %d", round, i, h.installed[i])
			}
		}
	}
}

func TestPumpFetchError(t *testing.T) {
	h := &harness{fetchErr: errors.New("boom")}
	p, _ := newTest(Config{Depth: 10, BatchSize: 2, Workers: 2}, h)
	p.Enqueue(1)
	p.Enqueue(2)
	p.Enqueue(3)
	if err := p.Pump(); err == nil {
		t.Fatal("fetch error not surfaced")
	}
	if len(h.installed) != 0 {
		t.Errorf("installed pages despite fetch error: %v", h.installed)
	}
	// The failed pump must not leave the queue stuck.
	if p.Pending() != 0 {
		t.Errorf("pending = %d after failed pump", p.Pending())
	}
}

func TestEmptyPumpIsFree(t *testing.T) {
	h := &harness{}
	p, clock := newTest(Config{}, h)
	if err := p.Pump(); err != nil {
		t.Fatal(err)
	}
	if len(h.batches) != 0 || clock.Count(sim.CtrPrefetchBatch) != 0 {
		t.Error("empty pump issued batches")
	}
}
