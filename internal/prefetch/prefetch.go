// Package prefetch implements QuickStore's asynchronous, mapping-object-
// driven page prefetcher.
//
// The oracle is free: every QuickStore page carries a mapping object — an
// array of <virtual range, disk OID> entries naming exactly the disk pages
// the page's pointers refer to — and the fault handler already walks it on
// every fault (Section 3.3 of the paper). The prefetcher turns that walk
// into a read-ahead hint: referenced pages that are neither resident nor
// previously requested are enqueued, then fetched in the background with
// the batched OpReadPages protocol op (one request/response frame for N
// pages) and landed in the client pool as speculative, not-yet-used frames.
// The next fault on such a page is a buffer hit instead of a synchronous
// server round trip.
//
// Determinism rules (the experiment harness depends on byte-identical
// output across runs):
//
//   - Enqueue order is the mapping-object entry order, which is itself
//     deterministic; the queue dedups against residency and a
//     previously-requested set.
//   - Pump is a synchronous scatter-gather: the session's main thread
//     blocks while a fixed fan-out of worker goroutines fetch the batches
//     concurrently, then installs the results in issue order (ordered
//     drain). Goroutine scheduling can change wall-clock overlap but never
//     the observable pool state or counter totals. The concurrent fetches
//     ride whatever Transport the session uses: in-process they call the
//     server directly; over TCP they pipeline through the session's shared
//     multiplexed connection (DESIGN.md §13), so a pump's batches coalesce
//     into shared frames-in-flight rather than serializing on the socket.
//   - The server side of OpReadPages never mutates the server buffer pool
//     (resident pages are copied out via LatchPool.Snapshot, absent ones
//     read straight from the volume), so concurrent batch fetches — from
//     this pump's workers or from other client sessions on the concurrent
//     server — cannot perturb server pool state either.
//
// Cost accounting models overlapped I/O: enqueue/batch/background-disk
// events are counted at zero foreground cost, and a consumed prefetched
// page is charged only the network + server CPU leg of its transfer
// (CtrServerBufferHit) at consumption time — the disk wait happened off
// the critical path.
package prefetch

import (
	"quickstore/internal/disk"
	"quickstore/internal/sim"
)

// Defaults used when Config fields are zero.
const (
	DefaultDepth     = 64
	DefaultBatchSize = 8
	DefaultWorkers   = 4
)

// Config tunes a Prefetcher.
type Config struct {
	Enabled   bool
	Depth     int // max pages queued between pumps; excess hints are dropped
	BatchSize int // pages per OpReadPages frame
	Workers   int // concurrent batch fetches per pump (fixed fan-out)
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	return c
}

// Funcs are the prefetcher's bindings to the owning session. All four are
// required when the prefetcher is enabled. Fetch may be called from worker
// goroutines; the other three run only on the session's main thread.
type Funcs struct {
	// Resident reports whether pid is already in the client pool.
	Resident func(pid disk.PageID) bool
	// Fetch performs one batched read (esm.Client.ReadPagesBatch). The
	// returned tokens are the pages' coherence versions (nil or zeros
	// when the session runs uncoherent).
	Fetch func(pids []disk.PageID) ([][]byte, []uint64, error)
	// Install lands one pre-read image (esm.Client.InstallPrefetched),
	// reporting false when the pool had no room for speculation.
	Install func(pid disk.PageID, data []byte, token uint64) bool
}

// Prefetcher accumulates page hints between faults and fetches them in
// batches at pump points. It is not internally synchronized: Enqueue and
// Pump run on the session's single application thread, and Pump blocks
// that thread until its workers finish.
type Prefetcher struct {
	cfg   Config
	clock *sim.Clock
	fn    Funcs

	queue     []disk.PageID
	requested map[disk.PageID]bool
}

// New builds a prefetcher. A nil clock means events are not counted.
func New(cfg Config, clock *sim.Clock, fn Funcs) *Prefetcher {
	if clock == nil {
		clock = sim.NewClock(sim.CostModel{})
	}
	return &Prefetcher{
		cfg:       cfg.withDefaults(),
		clock:     clock,
		fn:        fn,
		requested: map[disk.PageID]bool{},
	}
}

// Enabled reports whether the prefetcher is active.
func (p *Prefetcher) Enabled() bool { return p != nil && p.cfg.Enabled }

// Enqueue records a read-ahead hint for pid. Hints for resident or
// already-requested pages are ignored; hints past the depth cap are
// dropped (the queue bounds speculative memory, not correctness).
func (p *Prefetcher) Enqueue(pid disk.PageID) {
	if !p.Enabled() || pid == disk.InvalidPage {
		return
	}
	if p.requested[pid] || (p.fn.Resident != nil && p.fn.Resident(pid)) {
		return
	}
	if len(p.queue) >= p.cfg.Depth {
		return
	}
	p.requested[pid] = true
	p.queue = append(p.queue, pid)
	p.clock.Charge(sim.CtrPrefetchIssued, 1)
}

// Forget drops pid from the previously-requested set, making it eligible
// for prefetch again. The owning session calls it when a page leaves the
// client pool, so a page evicted and later referenced again can be
// re-prefetched.
func (p *Prefetcher) Forget(pid disk.PageID) {
	if p == nil {
		return
	}
	delete(p.requested, pid)
}

// Pending reports the number of queued, not-yet-fetched hints.
func (p *Prefetcher) Pending() int { return len(p.queue) }

// Pump drains the queue: the hints are cut into BatchSize batches, at most
// Workers batches are fetched concurrently (each one OpReadPages round
// trip), and once every fetch has returned the images are installed in
// issue order on the calling thread. The scatter-gather is synchronous, so
// by the time Pump returns the speculative frames are in the pool and no
// prefetch work remains in flight.
func (p *Prefetcher) Pump() error {
	if !p.Enabled() || len(p.queue) == 0 {
		return nil
	}
	pending := p.queue
	p.queue = nil

	var batches [][]disk.PageID
	for len(pending) > 0 {
		n := p.cfg.BatchSize
		if n > len(pending) {
			n = len(pending)
		}
		batches = append(batches, pending[:n])
		pending = pending[n:]
	}
	p.clock.Charge(sim.CtrPrefetchBatch, int64(len(batches)))

	type result struct {
		images [][]byte
		tokens []uint64
		err    error
	}
	results := make([]result, len(batches))
	// Fixed fan-out: worker w owns batches w, w+Workers, w+2*Workers, ...
	// The assignment depends only on the issue order, never on scheduling.
	workers := p.cfg.Workers
	if workers > len(batches) {
		workers = len(batches)
	}
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for b := w; b < len(batches); b += workers {
				images, tokens, err := p.fn.Fetch(batches[b])
				results[b] = result{images, tokens, err}
			}
			done <- w
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	// Ordered drain: install strictly in issue order regardless of which
	// worker finished first.
	for b, batch := range batches {
		if results[b].err != nil {
			return results[b].err
		}
		for i, pid := range batch {
			var token uint64
			if results[b].tokens != nil {
				token = results[b].tokens[i]
			}
			p.fn.Install(pid, results[b].images[i], token)
		}
	}
	return nil
}
