package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerShardMap enforces the shard map's no-plain-access rule
// (DESIGN.md §16): the endpoint table — shard.Map's Addrs field — is the
// single source of routing truth, and only package shard may read it.
// Every consumer reaches a shard through the Router or the Dial helpers,
// so no call path can dial or address a shard endpoint without consulting
// the map; a stray `m.Addrs[i]` is a client that will keep talking to a
// shard the map has reassigned.
//
// The check flags, outside the declaring package: any selection of the
// Addrs field on shard.Map, and any non-empty shard.Map composite literal
// (hand-rolling the table sidesteps ParseMap's validation the same way
// reading it sidesteps the routing functions).
func AnalyzerShardMap() *Analyzer {
	return &Analyzer{
		Name: "shardmap",
		Doc:  "shard.Map's endpoint table may only be read inside package shard: all addressing goes through the map",
		Run:  runShardMap,
	}
}

func runShardMap(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					sel := pkg.Info.Selections[n]
					if sel == nil || sel.Kind() != types.FieldVal {
						return true
					}
					fld, ok := sel.Obj().(*types.Var)
					if !ok || fld.Name() != "Addrs" || !isShardMapType(sel.Recv()) {
						return true
					}
					if fld.Pkg() != pkg.Types {
						report(n.Sel.Pos(), "shard endpoint table read outside package shard: go through the Router or the Dial helpers so every address lookup consults the map")
					}
				case *ast.CompositeLit:
					tv, ok := pkg.Info.Types[n]
					if !ok || !isShardMapType(tv.Type) || len(n.Elts) == 0 {
						return true
					}
					if named := namedType(tv.Type); named != nil && named.Obj().Pkg() != pkg.Types {
						report(n.Pos(), "shard.Map constructed by hand: build the map with ParseMap so the endpoint table is validated against the id space")
					}
				}
				return true
			})
		}
	}
}

// namedType unwraps pointers and aliases down to the named type, if any.
func namedType(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isShardMapType reports whether t (possibly behind a pointer) is a named
// type Map declared in a package named shard.
func isShardMapType(t types.Type) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Map" && obj.Pkg() != nil && obj.Pkg().Name() == "shard"
}
