package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ackOps are the dispatch operations whose success acknowledgements
// promise durability: a vote (OpPrepare), a commit ack (OpCommit), a
// decision-record ack (OpCommitDecision), and an abort ack (OpAbort —
// presumed abort still forces the record that lets recovery answer
// inquiries). Clauses matching these constants, and the WAL-appending
// implementations they delegate to, carry the force-before-ack
// obligation.
var ackOps = map[string]bool{
	"OpPrepare":        true,
	"OpCommit":         true,
	"OpCommitDecision": true,
	"OpAbort":          true,
}

// walForceNames are the internal/wal methods that make appended records
// durable.
var walForceNames = map[string]bool{
	"Flush":       true,
	"FlushTo":     true,
	"FlushCommit": true,
}

// AnalyzerAckOrder generalizes quorumack's discipline to the full 2PC
// surface (DESIGN.md §16): a participant's prepare vote, a commit or
// abort ack, and a coordinator's decision ack must all be dominated by
// the WAL force that makes the promised state durable — an ack the force
// does not dominate is a promise a crash can revoke. The check runs a
// must-analysis over the CFG: the "forced" fact is true at a point only
// if every path reaching it passed a wal force (Flush/FlushTo/
// FlushCommit), a force-gate function wrapping one, or — in dispatch
// clauses — a call to an obligated implementation; literal nil-error
// returns where the fact is false are flagged. Only functions that
// actually append to the WAL (transitively) carry the obligation: a
// client-side router acks whatever its participants decided and forces
// nothing of its own.
//
// The coordinator rule rides along: a call delivering ResolveModeForget
// (retiring a decision record) must be dominated in its function by a
// call delivering the coordinator's decision (a Request naming
// DecisionCoord) — forgetting a verdict nobody was told loses the
// outcome of the transaction.
func AnalyzerAckOrder() *Analyzer {
	return &Analyzer{
		Name: "ackorder",
		Doc:  "2PC vote/ack paths must be dominated by the corresponding WAL force, and coordinator decision records must dominate participant forget",
		Run:  runAckOrder,
	}
}

func runAckOrder(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	appends := walAppenders(prog, s)
	for _, pkg := range prog.Packages {
		decls := packageFuncDecls(pkg)
		obligated := obligatedFuncs(prog, pkg, decls, appends)
		gates := forceGates(prog, pkg, decls, obligated)
		checked := map[*ast.FuncDecl]bool{}
		for fn, fd := range decls {
			// Obligated implementations: every nil-error return must be
			// force-dominated.
			if obligated[fn] && !checked[fd] {
				checked[fd] = true
				flagUnforcedReturns(prog, pkg, fd, gates, nil, func(pos token.Pos) {
					report(pos, "%s success path is not dominated by a WAL force: the ack can outrun durability and a crash revokes the promise", fn.Name())
				})
			}
		}
		// Dispatch functions: nil-error returns inside obligated clauses
		// must be force-dominated, where a call to an obligated
		// implementation counts as the force (it carries the obligation).
		for fn, fd := range decls {
			clauses := ackClauses(pkg, fd)
			if len(clauses) == 0 || !funcLastResultIsError(pkg, fd) {
				continue
			}
			flagUnforcedReturns(prog, pkg, fd, gates, obligated, func(pos token.Pos) {
				for _, cc := range clauses {
					if cc.Pos() <= pos && pos <= cc.End() {
						report(pos, "%s ack in an %s clause is not dominated by a WAL force or an obligated implementation call", fn.Name(), clauseOpName(pkg, cc))
						return
					}
				}
			})
		}
		// Coordinator rule: forget must follow a delivered decision.
		for _, fd := range decls {
			checkDecisionBeforeForget(pkg, fd, report)
		}
	}
}

// walAppenders computes the function ids that (transitively) append WAL
// records — the functions whose acks can have something to force.
func walAppenders(prog *Program, s *summaries) map[string]bool {
	walPath := prog.ModulePath + "/internal/wal"
	appends := map[string]bool{}
	for _, fn := range s.funcs {
		if fn.id == "" {
			continue
		}
		for _, cs := range fn.calls {
			if p := cs.callee.Pkg(); p != nil && p.Path() == walPath {
				if n := cs.callee.Name(); n == "Append" || n == "AppendRaw" {
					appends[fn.id] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" || appends[fn.id] {
				continue
			}
			for _, cs := range fn.calls {
				if appends[cs.id] {
					appends[fn.id] = true
					changed = true
					break
				}
			}
		}
	}
	return appends
}

// obligatedFuncs collects the same-package implementations the ack
// clauses delegate to — error-last callees of obligated dispatch clauses,
// closed over tail calls — restricted to functions that append WAL
// records.
func obligatedFuncs(prog *Program, pkg *Package, decls map[*types.Func]*ast.FuncDecl, appends map[string]bool) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	var work []*ast.FuncDecl
	for _, fd := range decls {
		for _, cc := range ackClauses(pkg, fd) {
			for _, st := range cc.Body {
				ast.Inspect(st, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := staticCallee(pkg, call)
					if fn == nil || fn.Pkg() != pkg.Types || !appends[fn.FullName()] {
						return true
					}
					if impl := decls[fn]; impl != nil && !out[fn] && funcLastResultIsError(pkg, impl) {
						out[fn] = true
						work = append(work, impl)
					}
					return true
				})
			}
		}
	}
	// Tail-callee closure: an obligated implementation that forwards its
	// error from another same-package function passes the obligation on.
	for len(work) > 0 {
		impl := work[0]
		work = work[1:]
		for _, tail := range tailCallees(pkg, decls, impl.Body.List) {
			fn, ok := pkg.Info.Defs[tail.Name].(*types.Func)
			if !ok || out[fn] || !appends[fn.FullName()] || !funcLastResultIsError(pkg, tail) {
				continue
			}
			out[fn] = true
			work = append(work, tail)
		}
	}
	return out
}

// ackClauses returns fd's case clauses that match one of the ack ops.
func ackClauses(pkg *Package, fd *ast.FuncDecl) []*ast.CaseClause {
	var out []*ast.CaseClause
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if ok && clauseOpName(pkg, cc) != "" {
			out = append(out, cc)
		}
		return true
	})
	return out
}

// clauseOpName returns the ack-op constant a case clause matches, or "".
func clauseOpName(pkg *Package, cc *ast.CaseClause) string {
	for _, e := range cc.List {
		var obj types.Object
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[e.Sel]
		}
		if c, ok := obj.(*types.Const); ok && ackOps[c.Name()] {
			return c.Name()
		}
	}
	return ""
}

// forceGates computes same-package functions whose every literal
// nil-error return is dominated by a wal force: calling one IS forcing.
// Iterated to a fixed point so gates compose.
func forceGates(prog *Program, pkg *Package, decls map[*types.Func]*ast.FuncDecl, obligated map[*types.Func]bool) map[*types.Func]bool {
	gates := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if gates[fn] || !funcLastResultIsError(pkg, fd) {
				continue
			}
			if !containsForce(prog, pkg, fd.Body, gates, nil) {
				continue
			}
			clean := true
			flagUnforcedReturns(prog, pkg, fd, gates, nil, func(token.Pos) { clean = false })
			if clean {
				gates[fn] = true
				changed = true
			}
		}
	}
	return gates
}

// forceFact is the must-analysis fact: true iff every path to this point
// passed a WAL force (or equivalent gate/obligated call).
type forceFact bool

type forceLattice struct {
	prog      *Program
	pkg       *Package
	gates     map[*types.Func]bool
	obligated map[*types.Func]bool // nil outside dispatch checking
}

func (lt *forceLattice) entry() fact { return forceFact(false) }

func (lt *forceLattice) transfer(f fact, n ast.Node) fact {
	if bool(f.(forceFact)) {
		return f
	}
	if containsForce(lt.prog, lt.pkg, n, lt.gates, lt.obligated) {
		return forceFact(true)
	}
	return f
}

func (lt *forceLattice) join(a, b fact) fact {
	return forceFact(bool(a.(forceFact)) && bool(b.(forceFact)))
}

func (lt *forceLattice) equal(a, b fact) bool { return a == b }

// flagUnforcedReturns runs the force must-analysis over fd's body and
// calls flag for every literal nil-error return the force does not
// dominate.
func flagUnforcedReturns(prog *Program, pkg *Package, fd *ast.FuncDecl, gates, obligated map[*types.Func]bool, flag func(pos token.Pos)) {
	if !funcLastResultIsError(pkg, fd) {
		return
	}
	c := buildCFG(fd.Body)
	lt := &forceLattice{prog: prog, pkg: pkg, gates: gates, obligated: obligated}
	in, _ := fixpoint(c, lt)
	replayCFG(c, in, func(f fact, n ast.Node) fact {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if !bool(f.(forceFact)) && returnsNilError(pkg, ret) {
				flag(ret.Pos())
			}
		}
		return lt.transfer(f, n)
	})
}

// containsForce reports whether n's subtree calls a wal force method, a
// force-gate function, or (when checking dispatch clauses) an obligated
// implementation. Function literals are skipped: a force inside a closure
// does not dominate the enclosing path.
func containsForce(prog *Program, pkg *Package, n ast.Node, gates, obligated map[*types.Func]bool) bool {
	walPath := prog.ModulePath + "/internal/wal"
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg, call)
		if fn == nil {
			return true
		}
		if p := fn.Pkg(); p != nil && p.Path() == walPath && walForceNames[fn.Name()] {
			found = true
		} else if gates[fn] || (obligated != nil && obligated[fn]) {
			found = true
		}
		return !found
	})
	return found
}

// checkDecisionBeforeForget enforces the coordinator rule inside one
// function: a Request literal delivering ResolveModeForget must be
// dominated by one delivering the coordinator's decision (DecisionCoord).
func checkDecisionBeforeForget(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) {
	hasForget := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok && requestDelivers(pkg, lit, "ResolveModeForget") {
			hasForget = true
			return false
		}
		return true
	})
	if !hasForget {
		return
	}
	c := buildCFG(fd.Body)
	lt := &decisionLattice{pkg: pkg}
	in, _ := fixpoint(c, lt)
	replayCFG(c, in, func(f fact, n ast.Node) fact {
		after := lt.transfer(f, n)
		if bool(f.(forceFact)) {
			return after
		}
		ast.Inspect(n, func(nn ast.Node) bool {
			if _, ok := nn.(*ast.FuncLit); ok {
				return false
			}
			if lit, ok := nn.(*ast.CompositeLit); ok && requestDelivers(pkg, lit, "ResolveModeForget") {
				report(lit.Pos(), "decision record forgotten before any path delivered the coordinator decision (DecisionCoord): a participant still in doubt loses the verdict")
				return false
			}
			return true
		})
		return after
	})
}

// decisionLattice: true iff every path passed a coordinator-decision
// delivery (a Request literal whose Mode names DecisionCoord).
type decisionLattice struct {
	pkg *Package
}

func (lt *decisionLattice) entry() fact { return forceFact(false) }

func (lt *decisionLattice) transfer(f fact, n ast.Node) fact {
	if bool(f.(forceFact)) {
		return f
	}
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		if lit, ok := nn.(*ast.CompositeLit); ok && requestDelivers(lt.pkg, lit, "DecisionCoord") {
			found = true
			return false
		}
		return true
	})
	if found {
		return forceFact(true)
	}
	return f
}

func (lt *decisionLattice) join(a, b fact) fact {
	return forceFact(bool(a.(forceFact)) && bool(b.(forceFact)))
}

func (lt *decisionLattice) equal(a, b fact) bool { return a == b }

// requestDelivers reports whether lit is a Request composite literal
// whose Mode field expression names the given constant/value identifier.
func requestDelivers(pkg *Package, lit *ast.CompositeLit, name string) bool {
	named := namedCompositeType(pkg, lit)
	if named == nil || named.Obj().Name() != "Request" {
		return false
	}
	if p := named.Obj().Pkg(); p == nil || !strings.HasSuffix(p.Path(), "/esm") && p.Path() != "esm" {
		return false
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Mode" {
			continue
		}
		found := false
		ast.Inspect(kv.Value, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}
