// Package buffer is a latchio-fixture mirror of the real buffer pool.
package buffer

import (
	"sync"

	"quickstore/internal/disk"
)

type latchFrame struct {
	content sync.RWMutex
}

// Pool holds one frame and the backing volume.
type Pool struct {
	frame latchFrame
	vol   *disk.Volume
}

// badDirect writes a page with the frame content latch held.
func (p *Pool) badDirect() error {
	p.frame.content.Lock()
	defer p.frame.content.Unlock()
	return p.vol.WritePage(0, nil)
}

// writeOut is the I/O tail; harmless on its own.
func (p *Pool) writeOut() error {
	return p.vol.Sync()
}

// badTransitive reaches Sync through writeOut with the latch held.
func (p *Pool) badTransitive() error {
	p.frame.content.RLock()
	defer p.frame.content.RUnlock()
	return p.writeOut()
}

// good copies under the latch and does I/O only after releasing it.
func (p *Pool) good(buf []byte) error {
	p.frame.content.RLock()
	copy(buf, buf)
	p.frame.content.RUnlock()
	return p.vol.WritePage(0, buf)
}

// suppressed acknowledges a deliberate write under the latch.
func (p *Pool) suppressed() error {
	p.frame.content.Lock()
	defer p.frame.content.Unlock()
	//qsvet:ignore latchio fixture: demonstrating the suppression directive
	return p.vol.WritePage(1, nil)
}
