// Package disk is a latchio-fixture mirror of the real volume: the
// analyzer's I/O table keys on this package path and these method names.
package disk

// Volume is the I/O surface.
type Volume struct{}

// WritePage is a page write (I/O).
func (v *Volume) WritePage(id int, b []byte) error { return nil }

// Sync is a durability barrier (I/O).
func (v *Volume) Sync() error { return nil }
