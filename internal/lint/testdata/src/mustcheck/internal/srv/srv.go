// Package srv exercises the mustcheck analyzer against the fixture log.
package srv

import "quickstore/internal/wal"

// badBare drops the flush error on the floor.
func badBare(l *wal.Log) {
	l.Flush()
}

// badBlank discards it explicitly.
func badBlank(l *wal.Log) {
	_ = l.Flush()
}

// badDefer defers the flush, losing the error.
func badDefer(l *wal.Log) {
	defer l.Flush()
}

// good checks every error: no finding.
func good(l *wal.Log) error {
	if err := l.Flush(); err != nil {
		return err
	}
	return l.Truncate(0)
}

// suppressed documents a best-effort flush on an already-failing path.
func suppressed(l *wal.Log) {
	//qsvet:ignore mustcheck fixture: demonstrating the suppression directive
	_ = l.Flush()
}
