// Package wal is a mustcheck-fixture mirror of the real log: the
// analyzer's must-check table keys on this package path, the Log receiver,
// and these method names.
package wal

// Log is the write-ahead log.
type Log struct{}

// Flush forces the log to stable storage.
func (l *Log) Flush() error { return nil }

// Truncate discards the log prefix up to n.
func (l *Log) Truncate(n int) error { return nil }
