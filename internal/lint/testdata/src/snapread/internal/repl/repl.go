// Package repl is a snapread-fixture mirror of the follower's
// point-in-time read path.
package repl

import "quickstore/internal/lock"

// Node is the replication peer.
type Node struct {
	locks *lock.Manager
}

// handleSnapBegin stays off the lock manager: the clean negative.
func (n *Node) handleSnapBegin(lastSeen uint64) uint64 {
	return lastSeen + 1
}

// snapReadPage demonstrates the suppression directive on a deliberate,
// documented grant inside a snapshot root.
func (n *Node) snapReadPage(pid uint32, snap uint64) error {
	//qsvet:ignore snapread fixture: demonstrating the suppression directive
	return n.locks.Acquire(0, uint64(pid), 1)
}
