// Package lock is a snapread-fixture mirror of the real lock manager: the
// analyzer keys on this package path and these method names.
package lock

// Manager is the lock-grant surface.
type Manager struct{}

// Acquire grants a lock, blocking.
func (m *Manager) Acquire(tx uint64, res uint64, mode int) error { return nil }

// TryAcquire grants a lock without blocking.
func (m *Manager) TryAcquire(tx uint64, res uint64, mode int) bool { return true }

// Release is not a grant; calling it from a read path is legal.
func (m *Manager) Release(tx uint64) {}
