// Package esm is a snapread-fixture mirror of the page server's snapshot
// session handlers.
package esm

import "quickstore/internal/lock"

// Server holds the lock manager the snapshot paths must never touch.
type Server struct {
	locks *lock.Manager
}

// snapRead calls Acquire directly: the flagrant violation.
func (s *Server) snapRead(pid uint32, snap uint64) ([]byte, error) {
	if err := s.locks.Acquire(0, uint64(pid), 1); err != nil {
		return nil, err
	}
	return nil, nil
}

// pinPage is the lock tail; harmless until a snapshot root reaches it.
func (s *Server) pinPage(pid uint32) bool {
	return s.locks.TryAcquire(0, uint64(pid), 1)
}

// endSnapshot reaches TryAcquire through pinPage: the transitive violation.
func (s *Server) endSnapshot(snap uint64) error {
	s.pinPage(uint32(snap))
	return nil
}

// beginSnapshot stays off the lock manager entirely: the clean negative.
// (Release is not a grant, so touching it is legal.)
func (s *Server) beginSnapshot(lastSeen uint64) (uint64, error) {
	s.locks.Release(0)
	return lastSeen + 1, nil
}

// lockedRead is a non-snapshot path: acquiring here is fine.
func (s *Server) lockedRead(pid uint32) error {
	return s.locks.Acquire(0, uint64(pid), 1)
}
