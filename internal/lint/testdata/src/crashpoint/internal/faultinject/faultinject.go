// Package faultinject is a crashpoint-fixture mirror of the real fault
// plane: a Pt* registry plus the Plane methods the analyzer watches.
package faultinject

// The fixture registry: one live point, one dead one.
const (
	PtDiskWrite = "disk.write"
	PtDead      = "drill.dead"
)

// Plane is the fault-injection plane.
type Plane struct{}

// Hit reports a crash point being reached.
func (p *Plane) Hit(point string) error { return nil }

// ArmCrash schedules a crash at a point.
func (p *Plane) ArmCrash(point string, after int) {}
