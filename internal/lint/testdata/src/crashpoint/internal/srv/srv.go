// Package srv exercises the crashpoint analyzer against the fixture plane.
package srv

import "quickstore/internal/faultinject"

func drive(p *faultinject.Plane) error {
	// Registry constant: fine, and makes PtDiskWrite live.
	p.ArmCrash(faultinject.PtDiskWrite, 1)
	if err := p.Hit(faultinject.PtDiskWrite); err != nil {
		return err
	}
	// Typo'd name: not in the registry, would silently never fire.
	if err := p.Hit("disk.wrote"); err != nil {
		return err
	}
	// Registered name spelled as a raw string.
	return p.Hit("disk.write")
}

// defaultPoint spells a registered name as a raw string outside any call.
var defaultPoint = "disk.write"

// docExample acknowledges a deliberate literal via the directive.
//
//qsvet:ignore crashpoint fixture: demonstrating the suppression directive
var docExample = "disk.write"

var _, _ = defaultPoint, docExample
