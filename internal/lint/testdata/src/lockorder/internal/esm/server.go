// Package esm is a lockorder-fixture mirror of the real page server.
package esm

import (
	"sync"

	"quickstore/internal/buffer"
)

// Server carries the two server locks of the documented hierarchy:
// catMu orders before mu.
type Server struct {
	mu    sync.Mutex
	catMu sync.Mutex
	pool  *buffer.LatchPool
}

// badOrder acquires catMu under mu: the documented order is catMu first.
func (s *Server) badOrder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catMu.Lock()
	defer s.catMu.Unlock()
}

// goodOrder follows the documented order: no finding.
func (s *Server) goodOrder() {
	s.catMu.Lock()
	defer s.catMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

// lockedHelper re-locks mu; calling it with mu held deadlocks.
func (s *Server) lockedHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// reentrant calls a mu-taking helper with mu already held: the analyzer
// sees it through the static call graph.
func (s *Server) reentrant() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockedHelper()
}

// badLatch takes a pool stripe latch while holding the server lock, which
// the hierarchy forbids in either order.
func (s *Server) badLatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Acquire(0)
	s.pool.Release(0)
}

// branches takes mu independently in each switch case: the per-branch
// held-set must not leak one case's lock into the next, so no finding.
func (s *Server) branches(op int) {
	switch op {
	case 0:
		s.mu.Lock()
		defer s.mu.Unlock()
	case 1:
		s.mu.Lock()
		defer s.mu.Unlock()
	}
}

// suppressed shows the escape hatch: the violation is acknowledged.
func (s *Server) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//qsvet:ignore lockorder fixture: demonstrating the suppression directive
	s.catMu.Lock()
	s.catMu.Unlock()
}
