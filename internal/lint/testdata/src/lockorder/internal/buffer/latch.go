// Package buffer is a lockorder-fixture mirror of the real buffer pool:
// just enough structure for the analyzer's lock-class table to resolve.
package buffer

import "sync"

type latchStripe struct {
	mu sync.Mutex
}

// LatchPool mimics the real pool's striped latches.
type LatchPool struct {
	stripes [4]latchStripe
}

// Acquire takes a stripe latch; per the hierarchy, callers must hold no
// server locks.
func (p *LatchPool) Acquire(i int) {
	p.stripes[i].mu.Lock()
}

// Release drops a stripe latch.
func (p *LatchPool) Release(i int) {
	p.stripes[i].mu.Unlock()
}
