package esm

// forgetEarly retires a decision record no path has delivered: a
// participant still in doubt loses the verdict — violation.
func forgetEarly(tr Transport, tx uint64) error {
	_, err := tr.Call(&Request{Op: OpResolveTx, Tx: tx, Mode: ResolveModeForget})
	return err
}

// forgetAfterDecision delivers the coordinator decision first: clean.
func forgetAfterDecision(tr Transport, tx uint64) error {
	if _, err := tr.Call(&Request{Op: OpCommitDecision, Tx: tx, Mode: DecisionCommit | DecisionCoord}); err != nil {
		return err
	}
	_, err := tr.Call(&Request{Op: OpResolveTx, Tx: tx, Mode: ResolveModeForget})
	return err
}

// forgetMaint sweeps a cluster known to be empty; suppressed.
func forgetMaint(tr Transport, tx uint64) error {
	//qsvet:ignore ackorder test-only sweep of a cluster verified empty of in-doubt participants
	_, err := tr.Call(&Request{Op: OpResolveTx, Tx: tx, Mode: ResolveModeForget})
	return err
}
