// Package esm is the ackorder fixture: a 2PC dispatch with a vote acked
// before its force (the seeded bug), an inline ack with no force at all,
// clean force-dominated paths, and the coordinator decision-before-forget
// rule exercised both ways.
package esm

import "quickstore/internal/wal"

type Op int

const (
	OpBegin Op = iota
	OpPrepare
	OpCommit
	OpCommitDecision
	OpResolveTx
)

const (
	DecisionCommit uint8 = 1 << iota
	DecisionCoord
)

const ResolveModeForget uint8 = 7

type Request struct {
	Op   Op
	Tx   uint64
	Mode uint8
}

type Response struct {
	N   uint64
	Err string
}

type Transport interface {
	Call(req *Request) (*Response, error)
}

type Server struct {
	log *wal.Log
}

func (s *Server) handle(req *Request) (*Response, error) {
	switch req.Op {
	case OpBegin:
		return &Response{N: req.Tx}, nil // not an ack path: clean
	case OpPrepare:
		lsn, err := s.prepare(req)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(lsn)}, nil // dominated by s.prepare: clean
	case OpCommit:
		if req.Tx == 0 {
			return &Response{}, nil // acked with no force anywhere: violation
		}
		lsn, err := s.commit(req)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(lsn)}, nil
	}
	return nil, nil
}

// prepare logs the vote but acks one path before forcing it: a crash
// after that ack revokes a vote the coordinator already counted.
func (s *Server) prepare(req *Request) (wal.LSN, error) {
	lsn, err := s.log.Append(nil)
	if err != nil {
		return 0, err
	}
	if req.Mode == 9 {
		return lsn, nil // vote acked before the force below: violation
	}
	if err := s.log.FlushCommit(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// commit forces before every ack: clean.
func (s *Server) commit(req *Request) (wal.LSN, error) {
	lsn, err := s.log.Append(nil)
	if err != nil {
		return 0, err
	}
	if err := s.log.FlushCommit(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}
