// Package wal is the ackorder fixture's miniature log: append assigns
// LSNs, the force methods make them durable.
package wal

type LSN uint64

type Log struct {
	lsn LSN
}

func (l *Log) Append(rec []byte) (LSN, error) {
	l.lsn++
	return l.lsn, nil
}

func (l *Log) Flush() error {
	return nil
}

func (l *Log) FlushCommit(lsn LSN) error {
	return nil
}
