// Package shard is the fixture's miniature shard map: the endpoint table
// plus the sanctioned paths to it. Only this package may read Addrs.
package shard

import "strings"

// Map is the deterministic shard map. Per the no-plain-access rule, the
// Addrs table is read only inside this package.
type Map struct {
	Addrs []string
}

// ParseMap parses a comma-separated endpoint spec.
func ParseMap(spec string) Map {
	return Map{Addrs: strings.Split(spec, ",")}
}

// NumShards returns the cluster width.
func (m Map) NumShards() int { return len(m.Addrs) }

// Dial connects every shard in the map — the sanctioned path from the
// address table to connections. Reading Addrs here is legal: this is the
// declaring package.
func Dial(m Map, dial func(addr string) error) error {
	for _, a := range m.Addrs {
		if err := dial(a); err != nil {
			return err
		}
	}
	return nil
}
