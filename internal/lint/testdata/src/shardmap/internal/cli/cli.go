// Package cli is the fixture's shard-map consumer: it demonstrates the
// violations (plain reads of the endpoint table, hand-rolled maps), the
// clean sanctioned paths, and one suppressed finding.
package cli

import "quickstore/internal/shard"

// dialFirst reads the endpoint table directly: a client that caches or
// indexes Addrs itself will keep talking to a shard the map reassigned.
func dialFirst(m shard.Map) string {
	return m.Addrs[0] // want: plain read outside package shard
}

// rangeAddrs is the same violation through a pointer receiver and a range.
func rangeAddrs(m *shard.Map) int {
	total := 0
	for _, a := range m.Addrs { // want: plain read outside package shard
		total += len(a)
	}
	return total
}

// handRolled builds the table by hand, sidestepping ParseMap validation.
func handRolled() shard.Map {
	return shard.Map{Addrs: []string{"a:1", "b:1"}} // want: hand-rolled map
}

// clean goes through the sanctioned paths only: ParseMap to build,
// NumShards to size, Dial to connect. No finding.
func clean(spec string) (int, error) {
	m := shard.ParseMap(spec)
	err := shard.Dial(m, func(addr string) error { return nil })
	return m.NumShards(), err
}

// zeroValue returns an empty map; the zero literal carries no endpoint
// table and is not a finding.
func zeroValue() shard.Map {
	return shard.Map{}
}

// suppressed is a deliberate, documented exception: a diagnostic dump of
// the raw table, allowed through by the directive.
func suppressed(m shard.Map) []string {
	//qsvet:ignore shardmap diagnostics dump needs the raw endpoint table
	return m.Addrs
}
