module quickstore

go 1.21
