// Package esm is the staleignore fixture: a module clean under every
// analyzer, carrying one directive that suppresses nothing.
package esm

type Server struct {
	count int
}

func (s *Server) Inc() {
	//qsvet:ignore mustcheck left over from a deleted discard; nothing here to suppress
	s.count++
}
