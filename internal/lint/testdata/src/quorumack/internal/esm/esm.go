// Package esm is the quorumack fixture: a commit dispatch with gated,
// ungated, early-ack, and deliberately suppressed ack paths.
package esm

type Op int

const (
	OpBegin Op = iota
	OpCommit
)

type Request struct {
	Op Op
	Tx uint64
}

type Response struct{ N uint64 }

// QuorumWaiter mirrors the real gate interface: WaitQuorum blocks until a
// quorum of replicas holds the commit durable.
type QuorumWaiter interface {
	WaitQuorum(lsn, catVersion uint64) error
}

type Server struct {
	repl QuorumWaiter
	lsn  uint64
}

func (s *Server) handle(req *Request) (*Response, error) {
	switch req.Op {
	case OpBegin:
		return &Response{N: req.Tx}, nil // not a commit ack: clean
	case OpCommit:
		if req.Tx == 0 {
			return &Response{}, nil // inline ack, no gate: violation
		}
		if req.Tx == 1 {
			return nil, s.commitUngated(req)
		}
		if req.Tx == 2 {
			return nil, s.commitEarly(req)
		}
		if req.Tx == 3 {
			return nil, s.commitMaint(req)
		}
		return nil, s.commitGated(req)
	}
	return nil, nil
}

// commitGated acks only behind the quorum gate (which legitimately hides
// behind the nil-waiter guard — single-node mode): clean.
func (s *Server) commitGated(req *Request) error {
	s.lsn++
	if q := s.repl; q != nil {
		if err := q.WaitQuorum(s.lsn, 1); err != nil {
			return err
		}
	}
	return nil
}

// commitUngated acks with no gate anywhere: violation.
func (s *Server) commitUngated(req *Request) error {
	s.lsn++
	return nil
}

// commitEarly has the gate but leaks a success return before it.
func (s *Server) commitEarly(req *Request) error {
	s.lsn++
	if req.Tx%2 == 0 {
		return nil // acked before the gate below: violation
	}
	if err := s.repl.WaitQuorum(s.lsn, 1); err != nil {
		return err
	}
	return nil
}

// commitMaint is a deliberate pre-replication maintenance path; the
// directive keeps it out of the findings.
func (s *Server) commitMaint(req *Request) error {
	s.lsn++
	//qsvet:ignore quorumack maintenance path runs before replication attaches
	return nil
}
