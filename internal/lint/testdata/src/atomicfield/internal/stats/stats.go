// Package stats is an atomicfield fixture: counters accessed both through
// sync/atomic and with plain loads/stores.
package stats

import "sync/atomic"

// Counters mixes an atomically-maintained field with a plain one.
type Counters struct {
	hits   int64
	misses int64
}

// RecordHit makes hits an atomic word.
func (c *Counters) RecordHit() {
	atomic.AddInt64(&c.hits, 1)
}

// BadRead reads hits without atomic: a data race with RecordHit.
func (c *Counters) BadRead() int64 {
	return c.hits
}

// GoodRead reads hits atomically: no finding.
func (c *Counters) GoodRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// AddMiss touches misses, which is only ever accessed plainly: no finding.
func (c *Counters) AddMiss() {
	c.misses++
}

// bump counts through a pointer: callers passing &x make x an atomic word.
func bump(p *int64) {
	atomic.AddInt64(p, 1)
}

var total int64

// BadMixed propagates atomic use through bump, then reads total plainly.
func BadMixed() int64 {
	bump(&total)
	return total
}

// Snapshot documents a deliberate plain read via the directive.
func Snapshot() int64 {
	//qsvet:ignore atomicfield fixture: demonstrating the suppression directive
	return total
}
