// Package esm is the guardedfield fixture: a counter consistently
// guarded by mu at most sites, one bare write (the seeded race), a
// helper guarded through its callers, constructor writes, an escaped
// field, and a suppressed maintenance write.
package esm

import "sync"

type Server struct {
	mu    sync.Mutex
	count int
	tag   string
	note  string
}

// New's bare writes are pre-publication: constructor-exempt.
func New() *Server {
	s := &Server{}
	s.count = 1
	s.note = "fresh"
	return s
}

func (s *Server) Inc() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *Server) Dec() {
	s.mu.Lock()
	s.count--
	s.mu.Unlock()
}

func (s *Server) Add(n int) {
	s.mu.Lock()
	s.count += n
	s.mu.Unlock()
}

func (s *Server) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *Server) IsZero() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count == 0
}

func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetLocked()
}

// resetLocked's bare write is guarded through every caller: clean.
func (s *Server) resetLocked() {
	s.count = 0
}

// Racy writes the guarded counter with no lock: the seeded data race.
func (s *Server) Racy() {
	s.count = 42
}

// Maint is a documented single-threaded entry point; suppressed.
func (s *Server) Maint() {
	//qsvet:ignore guardedfield maintenance entry point, documented single-threaded
	s.count = -1
}

// Escape hands out the address of tag: the field aliases beyond its
// selector sites and is out of the inference's scope.
func (s *Server) Escape() *string {
	return &s.tag
}

func (s *Server) WriteTag(v string) {
	s.tag = v
}
