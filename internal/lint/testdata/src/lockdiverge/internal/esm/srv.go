// Package esm is the lock-divergence fixture: control-flow paths merging
// with different held sets (one arm locked, the other did not), next to
// a clean both-arms shape and a suppressed deliberate case.
package esm

import "sync"

type Server struct {
	mu    sync.Mutex
	count int
}

// condLock locks on one arm only: at the merge the fast path holds mu
// and the slow path does not — violation.
func (s *Server) condLock(fast bool) {
	if fast {
		s.mu.Lock()
	}
	s.count++
	s.mu.Unlock()
}

// bothArms acquires on every path into the merge: clean.
func (s *Server) bothArms(fast bool) {
	if fast {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	s.count++
	s.mu.Unlock()
}

// optimistic is the deliberate variant of condLock; suppressed.
func (s *Server) optimistic(fast bool) {
	if fast {
		s.mu.Lock()
	}
	//qsvet:ignore lockorder deliberate: the slow path reads a racy snapshot and Unlock of an unheld fixture mutex never runs
	s.count++
	s.mu.Unlock()
}
