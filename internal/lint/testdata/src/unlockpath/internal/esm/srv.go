// Package esm is the unlockpath fixture: acquisitions that leak on an
// error return or panic path, next to clean deferred, branching, and
// deliberately suppressed shapes.
package esm

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type Server struct {
	mu    sync.Mutex
	count int
}

// leakOnError releases mu on the success path only: the early error
// return leaves it held — violation.
func (s *Server) leakOnError(fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail
	}
	s.count++
	s.mu.Unlock()
	return nil
}

// leakOnPanic leaves mu held when the guard trips — violation.
func (s *Server) leakOnPanic(n int) {
	s.mu.Lock()
	if n < 0 {
		panic("negative count")
	}
	s.count = n
	s.mu.Unlock()
}

// deferred registers the release up front: clean on every path.
func (s *Server) deferred(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errFail
	}
	s.count++
	return nil
}

// branches releases explicitly on each path: clean.
func (s *Server) branches(fast bool) {
	s.mu.Lock()
	if fast {
		s.count++
		s.mu.Unlock()
		return
	}
	s.count--
	s.mu.Unlock()
}

// handoff deliberately leaves mu held for its caller (the fixture's
// stand-in for a documented lock-handoff protocol); the directive keeps
// it out of the findings.
func (s *Server) handoff() {
	//qsvet:ignore unlockpath deliberate handoff: the caller releases via release()
	s.mu.Lock()
	s.count++
}

func (s *Server) release() {
	s.mu.Unlock()
}
