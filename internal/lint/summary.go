package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockClass is one named lock in the documented hierarchy (DESIGN.md §10).
// Rank encodes the acquisition order: a lock may only be acquired while
// every held classified lock has a strictly lower rank. Latches (pool
// stripe latches and frame content latches) additionally may never be
// combined with the server's catalog/transaction locks in either order.
type lockClass struct {
	name   string
	rank   int
	latch  bool // buffer pool stripe or frame content latch
	server bool // esm.Server.mu / esm.Server.catMu
}

// lockSpec locates one classified lock field in the module source.
type lockSpec struct {
	pkg   string // module-relative package path
	typ   string // struct type name
	field string // mutex field name
	class lockClass
}

// lockSpecs is the documented lock hierarchy of the storage manager.
// The ranks encode: catMu → mu → (wal.Log.mu | volume) with the lock
// manager, cost clock, and fault plane as leaves; pool latches sit apart
// from the server locks (PR 3: latches are taken with neither mu nor
// catMu held, and FlushFn under a content latch takes wal/volume, never
// mu). The replication, MVCC, and shard-router locks are leaves of their
// own components: repl releases Node.mu before re-entering the server,
// the version store is called under Server.mu (20 < 26), and the router's
// locks only ever wrap interface calls the static graph cannot follow.
// The coherence version table (esm.cohState.mu) is taken under Server.mu
// and under a frame content latch (the abort undo bumps versions while
// holding the exclusive latch), so it ranks above both and acquires
// nothing itself.
var lockSpecs = []lockSpec{
	{"internal/esm", "Server", "catMu", lockClass{name: "esm.Server.catMu", rank: 10, server: true}},
	{"internal/repl", "Node", "mu", lockClass{name: "repl.Node.mu", rank: 15}},
	{"internal/repl", "Director", "mu", lockClass{name: "repl.Director.mu", rank: 16}},
	{"internal/esm", "Server", "mu", lockClass{name: "esm.Server.mu", rank: 20, server: true}},
	{"internal/buffer", "latchStripe", "mu", lockClass{name: "buffer stripe latch", rank: 22, latch: true}},
	{"internal/buffer", "latchFrame", "content", lockClass{name: "buffer frame content latch", rank: 24, latch: true}},
	{"internal/mvcc", "Store", "mu", lockClass{name: "mvcc.Store.mu", rank: 26}},
	{"internal/esm", "cohState", "mu", lockClass{name: "esm.cohState.mu", rank: 27}},
	{"internal/wal", "Log", "mu", lockClass{name: "wal.Log.mu", rank: 30}},
	{"internal/disk", "volumeCore", "mu", lockClass{name: "disk volume lock", rank: 32}},
	{"internal/lock", "Manager", "mu", lockClass{name: "lock.Manager.mu", rank: 40}},
	{"internal/sim", "Clock", "mu", lockClass{name: "sim.Clock.mu", rank: 50}},
	{"internal/faultinject", "Plane", "mu", lockClass{name: "faultinject.Plane.mu", rank: 52}},
	{"internal/shard", "Router", "mu", lockClass{name: "shard.Router.mu", rank: 60}},
	{"internal/shard", "routedTx", "mu", lockClass{name: "shard routedTx.mu", rank: 62}},
}

// heldLock is one classified lock held at a program point. deferred marks
// an acquisition whose unlock has been registered with `defer`: the lock
// is still held (it participates in ordering checks) but is guaranteed
// released on every exit from here on.
type heldLock struct {
	obj      types.Object
	class    *lockClass
	pos      token.Pos // acquisition site
	deferred bool
}

// acqSite is one direct lock acquisition inside a function.
type acqSite struct {
	obj   types.Object
	class *lockClass
	pos   token.Pos
	held  []heldLock // classified locks held at the acquisition
}

// callSite is one statically resolved call inside a function.
type callSite struct {
	callee *types.Func
	id     string
	pos    token.Pos
	held   []heldLock
}

// Exit kinds for exitSite.
const (
	exitReturn = iota
	exitPanic
	exitEnd // fell off the closing brace
)

// exitSite is one way control leaves a function, with the converged lock
// state reaching it.
type exitSite struct {
	pos  token.Pos
	kind int
	held []heldLock
}

// divergeSite is one CFG merge point whose incoming paths carry different
// effective held-lock sets (held minus pending deferred unlocks).
type divergeSite struct {
	pos  token.Pos
	a, b string // rendered effective sets of two disagreeing paths
}

// Field access kinds for fieldUse.
const (
	fieldRead = iota
	fieldWrite
	fieldEscape // address taken: the field aliases beyond this site
)

// fieldUse is one struct-field access with the lock state over it.
type fieldUse struct {
	obj  types.Object // the field
	pos  token.Pos
	kind int
	held []heldLock
}

// funcNode is the per-function summary the interprocedural checks consume.
type funcNode struct {
	id       string // types.Func.FullName(); "" for function literals
	name     string // display name
	pkg      *Package
	pos      token.Pos
	acquires []acqSite
	calls    []callSite
	exits    []exitSite
	diverges []divergeSite
	fields   []fieldUse
	makes    map[*types.TypeName]bool // struct types this func constructs or returns
}

// summaries is the shared interprocedural state, built once per Program.
type summaries struct {
	locks map[types.Object]*lockClass
	owner map[types.Object]*types.TypeName // field -> declaring struct type
	funcs []*funcNode
	byID  map[string]*funcNode
}

var summaryCache = map[*Program]*summaries{}

// summarize builds (or returns the cached) function summaries for prog.
func summarize(prog *Program) *summaries {
	if s, ok := summaryCache[prog]; ok {
		return s
	}
	s := &summaries{
		locks: map[types.Object]*lockClass{},
		owner: map[types.Object]*types.TypeName{},
		byID:  map[string]*funcNode{},
	}
	s.resolveLocks(prog)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			s.collectFile(pkg, f)
		}
	}
	summaryCache[prog] = s
	return s
}

// resolveLocks maps the lockSpecs onto the loaded module's type objects.
// Specs whose package or type is absent (partial fixtures) are skipped.
func (s *summaries) resolveLocks(prog *Program) {
	for i := range lockSpecs {
		spec := &lockSpecs[i]
		pkg := prog.ByPath[prog.ModulePath+"/"+spec.pkg]
		if pkg == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup(spec.typ)
		if obj == nil {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			if f := st.Field(j); f.Name() == spec.field {
				s.locks[f] = &spec.class
			}
		}
	}
}

// collectFile summarizes every function declaration and function literal
// of one file on the CFG dataflow engine. Literals get their own node
// (empty id: they are not reachable through the static call graph) so
// their bodies are still checked for direct violations.
func (s *summaries) collectFile(pkg *Package, f *ast.File) {
	var lits []*ast.FuncLit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var id, name string
		node := &funcNode{pkg: pkg, pos: fd.Pos(), makes: map[*types.TypeName]bool{}}
		if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			id = obj.FullName()
			name = obj.Name()
			if recv := fd.Recv; recv != nil && len(recv.List) > 0 {
				name = recvString(recv.List[0].Type) + "." + name
			}
			addResultTypes(node, obj)
		}
		node.id, node.name = id, name
		lits = append(lits, s.analyzeBody(pkg, node, fd.Body)...)
		s.funcs = append(s.funcs, node)
		if id != "" {
			s.byID[id] = node
		}
	}
	// Literals may nest; process the work list to a fixed point.
	for len(lits) > 0 {
		lit := lits[0]
		lits = lits[1:]
		node := &funcNode{name: "func literal", pkg: pkg, pos: lit.Pos(), makes: map[*types.TypeName]bool{}}
		lits = append(lits, s.analyzeBody(pkg, node, lit.Body)...)
		s.funcs = append(s.funcs, node)
	}
}

// addResultTypes marks the named struct types a function returns, feeding
// guardedfield's constructor exemption.
func addResultTypes(node *funcNode, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named := namedType(res.At(i).Type()); named != nil {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				node.makes[named.Obj()] = true
			}
		}
	}
}

func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvString(t.X)
	}
	return "?"
}

// analyzeBody runs the held-set dataflow over one function body: build the
// CFG, iterate the lock lattice to a fixed point, then replay the reached
// blocks once to record acquisition sites, call sites, field accesses, and
// exits under the converged facts. Nested function literals are returned
// for separate summarization, not walked in place: their bodies run with
// their own (unknown) lock context.
func (s *summaries) analyzeBody(pkg *Package, node *funcNode, body *ast.BlockStmt) []*ast.FuncLit {
	c := buildCFG(body)
	lt := &lockLattice{s: s, pkg: pkg}
	in, out := fixpoint(c, lt)
	rec := &recorder{s: s, pkg: pkg, node: node}
	replayCFG(c, in, func(f fact, n ast.Node) fact {
		return lt.apply(f, n, rec)
	})
	for i, b := range c.blocks {
		if c.end[b] && in[i] != nil {
			node.exits = append(node.exits, exitSite{
				pos:  body.Rbrace,
				kind: exitEnd,
				held: out[i].(lockFact).held,
			})
		}
	}
	s.findDivergences(c, out, node)
	return rec.lits
}

// findDivergences flags CFG merge points whose reaching paths disagree on
// the effective held-lock set (held minus pending deferred unlocks): one
// path merged still holding a lock another path has already arranged to
// release — the shape of a branch that forgot its unlock.
func (s *summaries) findDivergences(c *cfg, out []fact, node *funcNode) {
	seen := map[token.Pos]bool{}
	for _, b := range c.blocks {
		if len(b.preds) < 2 {
			continue
		}
		var first map[types.Object]bool
		seenFirst := false
		var firstDesc string
		for _, p := range b.preds {
			f := out[p.idx]
			if f == nil {
				continue
			}
			eff := effectiveHeld(f.(lockFact).held)
			if !seenFirst {
				seenFirst = true
				first = eff
				firstDesc = describeEffective(f.(lockFact).held)
				continue
			}
			if !sameLockSet(first, eff) {
				pos := blockPos(b, node.pos)
				if !seen[pos] {
					seen[pos] = true
					node.diverges = append(node.diverges, divergeSite{
						pos: pos,
						a:   firstDesc,
						b:   describeEffective(f.(lockFact).held),
					})
				}
				break
			}
		}
	}
}

// effectiveHeld is the set of lock objects actually held past this point:
// those with an entry whose unlock is not already deferred. A set, not a
// multiset — union-merged alternatives carry one runtime lock under
// several acquisition sites, and genuine same-lock nesting is already a
// re-entrancy finding of its own.
func effectiveHeld(held []heldLock) map[types.Object]bool {
	m := map[types.Object]bool{}
	for _, h := range held {
		if !h.deferred {
			m[h.obj] = true
		}
	}
	return m
}

func sameLockSet(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// describeEffective names the effective held set for diagnostics.
func describeEffective(held []heldLock) string {
	seen := map[types.Object]bool{}
	var names []string
	for _, h := range held {
		if !h.deferred && !seen[h.obj] {
			seen[h.obj] = true
			names = append(names, h.class.name)
		}
	}
	if len(names) == 0 {
		return "no locks"
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// blockPos finds a stable source position for a block: its first node, or
// the first node of a unique successor chain (empty join blocks), falling
// back to the enclosing function's position.
func blockPos(b *block, fallback token.Pos) token.Pos {
	for i := 0; i < 10 && b != nil; i++ {
		if len(b.nodes) > 0 {
			return b.nodes[0].Pos()
		}
		if len(b.succs) != 1 {
			break
		}
		b = b.succs[0]
	}
	return fallback
}

// lockFact is the held-set dataflow fact: the classified locks held on
// every path reaching a point (a may-analysis: the union over merged
// paths), each tagged with whether its unlock is already deferred.
type lockFact struct {
	held []heldLock
}

// lockLattice runs the held-set analysis over one package's functions.
type lockLattice struct {
	s   *summaries
	pkg *Package
}

func (lt *lockLattice) entry() fact { return lockFact{} }

func (lt *lockLattice) transfer(f fact, n ast.Node) fact {
	return lt.apply(f, n, nil)
}

// join unions the held entries of two paths, keyed by (acquisition site,
// deferred flag). Alternatives that locked the same lock at different
// sites both survive; the consumers treat same-object entries as one
// runtime lock where that matters (direct unlock clears all of them).
func (lt *lockLattice) join(a, b fact) fact {
	ha, hb := a.(lockFact).held, b.(lockFact).held
	if len(hb) == 0 {
		return a
	}
	if len(ha) == 0 {
		return b
	}
	out := append([]heldLock(nil), ha...)
	for _, h := range hb {
		if !containsHeld(out, h) {
			out = append(out, h)
		}
	}
	return lockFact{held: out}
}

func (lt *lockLattice) equal(a, b fact) bool {
	ha, hb := a.(lockFact).held, b.(lockFact).held
	if len(ha) != len(hb) {
		return false
	}
	for _, h := range ha {
		if !containsHeld(hb, h) {
			return false
		}
	}
	return true
}

func containsHeld(held []heldLock, h heldLock) bool {
	for _, x := range held {
		if x.obj == h.obj && x.pos == h.pos && x.deferred == h.deferred {
			return true
		}
	}
	return false
}

// recorder collects the per-function summary during the replay pass.
type recorder struct {
	s    *summaries
	pkg  *Package
	node *funcNode
	lits []*ast.FuncLit
}

// apply advances the held set across one atomic CFG node. With rec nil it
// is the pure transfer function; with rec set it additionally records
// acquisitions, calls, field accesses, exits, and harvested literals.
func (lt *lockLattice) apply(f fact, n ast.Node, rec *recorder) fact {
	st := &lockState{lt: lt, rec: rec, held: f.(lockFact).held}
	switch s := n.(type) {
	case *ast.GoStmt:
		// The spawned call runs without the caller's locks; only its
		// argument expressions evaluate inline. Its function literal (if
		// any) is summarized separately with an empty entry context.
		if rec != nil {
			harvestLits(rec, s.Call.Fun)
		}
		for _, arg := range s.Call.Args {
			st.walk(arg, nil)
		}
	case *ast.DeferStmt:
		st.walk(s, s.Call)
	case *ast.ReturnStmt:
		// The lock state the function exits with: recorded before the
		// results evaluate (result expressions do not take locks in this
		// codebase, and an acquisition inside one would be a bug the
		// ordering checks catch on its own).
		if rec != nil {
			rec.node.exits = append(rec.node.exits, exitSite{pos: s.Pos(), kind: exitReturn, held: st.held})
		}
		st.walk(s, nil)
	case *ast.ExprStmt:
		st.walk(s, nil)
		if rec != nil && isPanicCall(s.X) {
			rec.node.exits = append(rec.node.exits, exitSite{pos: s.Pos(), kind: exitPanic, held: st.held})
		}
	default:
		st.walk(n, nil)
	}
	return lockFact{held: st.held}
}

// lockState carries the mutable held set while one node is applied. The
// incoming slice is shared with the block's fact: every mutation path
// copies first.
type lockState struct {
	lt   *lockLattice
	rec  *recorder
	held []heldLock
}

// walk visits one expression/statement subtree in evaluation order,
// classifying calls and (when recording) field accesses. deferredCall
// marks the outer call of a DeferStmt.
func (st *lockState) walk(n ast.Node, deferredCall *ast.CallExpr) {
	writes := writeTargets(n)
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit:
			if st.rec != nil {
				st.rec.lits = append(st.rec.lits, nn)
			}
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.AND && st.rec != nil {
				if sel := baseSelector(nn.X); sel != nil {
					st.field(sel, fieldEscape)
				}
			}
		case *ast.CallExpr:
			st.call(nn, nn == deferredCall)
			if st.rec != nil {
				if named := builtinMakeType(st.lt.pkg, nn); named != nil {
					st.rec.node.makes[named.Obj()] = true
				}
			}
		case *ast.SelectorExpr:
			if st.rec != nil {
				kind := fieldRead
				if writes[nn] {
					kind = fieldWrite
				}
				st.field(nn, kind)
			}
		case *ast.CompositeLit:
			if st.rec != nil {
				if named := namedCompositeType(st.lt.pkg, nn); named != nil {
					st.rec.node.makes[named.Obj()] = true
				}
			}
		}
		return true
	})
}

// call classifies one call: a lock acquisition, a lock release, or an
// ordinary call recorded with the current held set.
func (st *lockState) call(call *ast.CallExpr, isDefer bool) {
	lt := st.lt
	if obj, acquire, ok := lt.s.lockOp(lt.pkg, call); ok {
		if acquire {
			if isDefer {
				return // `defer mu.Lock()` — not a real idiom; ignore
			}
			class := lt.s.locks[obj]
			if class == nil {
				return // unclassified mutex: outside the hierarchy
			}
			if st.rec != nil {
				st.rec.node.acquires = append(st.rec.node.acquires, acqSite{
					obj:   obj,
					class: class,
					pos:   call.Pos(),
					held:  st.held,
				})
			}
			st.held = append(append([]heldLock(nil), st.held...),
				heldLock{obj: obj, class: class, pos: call.Pos()})
			return
		}
		if isDefer {
			// Deferred unlock: the lock stays held (for ordering checks)
			// but its newest live acquisition is marked released-at-exit.
			for i := len(st.held) - 1; i >= 0; i-- {
				if st.held[i].obj == obj && !st.held[i].deferred {
					out := append([]heldLock(nil), st.held...)
					out[i].deferred = true
					st.held = out
					return
				}
			}
			return
		}
		// Direct unlock: clear every live acquisition of this lock —
		// merged alternative paths may carry the same runtime lock under
		// several acquisition sites. If only deferred entries remain
		// (unlock-before-relock windows), clear those instead.
		st.held = removeLock(st.held, obj)
		return
	}
	callee := staticCallee(lt.pkg, call)
	if callee == nil {
		return
	}
	if st.rec != nil {
		st.rec.node.calls = append(st.rec.node.calls, callSite{
			callee: callee,
			id:     callee.FullName(),
			pos:    call.Pos(),
			held:   st.held,
		})
	}
}

// removeLock drops held entries for obj: all non-deferred entries, or —
// when none exist — all deferred ones (a direct unlock inside a
// defer-guarded relock window).
func removeLock(held []heldLock, obj types.Object) []heldLock {
	var out []heldLock
	removed := false
	for _, h := range held {
		if h.obj == obj && !h.deferred {
			removed = true
			continue
		}
		out = append(out, h)
	}
	if removed {
		return out
	}
	out = out[:0:0]
	for _, h := range held {
		if h.obj == obj {
			continue
		}
		out = append(out, h)
	}
	return out
}

// field records one struct-field access with the current held set.
func (st *lockState) field(sel *ast.SelectorExpr, kind int) {
	info := st.lt.pkg.Info
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	if named := namedType(selection.Recv()); named != nil {
		st.lt.s.owner[fld] = named.Obj()
	}
	st.rec.node.fields = append(st.rec.node.fields, fieldUse{
		obj:  fld,
		pos:  sel.Sel.Pos(),
		kind: kind,
		held: st.held,
	})
}

// harvestLits collects function literals from a subtree without applying
// any lock effects (used for `go` call functions).
func harvestLits(rec *recorder, n ast.Node) {
	ast.Inspect(n, func(nn ast.Node) bool {
		if lit, ok := nn.(*ast.FuncLit); ok {
			rec.lits = append(rec.lits, lit)
			return false
		}
		return true
	})
}

// writeTargets maps the selector expressions a node writes through: the
// base selectors of assignment LHSs (including map/slice element and
// compound assignments), IncDec operands, and delete() targets.
func writeTargets(n ast.Node) map[*ast.SelectorExpr]bool {
	var out map[*ast.SelectorExpr]bool
	mark := func(e ast.Expr) {
		if sel := baseSelector(e); sel != nil {
			if out == nil {
				out = map[*ast.SelectorExpr]bool{}
			}
			out[sel] = true
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			mark(lhs)
		}
	case *ast.IncDecStmt:
		mark(s.X)
	}
	// delete(s.m, k) writes through s.m wherever the call appears.
	ast.Inspect(n, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
			mark(call.Args[0])
		}
		return true
	})
	return out
}

// baseSelector unwraps an lvalue chain (parens, indexing, dereference) to
// the selector expression it stores through, if any. `s.m[k]` and
// `*s.p` both resolve to the field selector.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// builtinMakeType resolves a make/new builtin call to the named struct
// type it allocates (the element type of a made slice, the pointee of
// new): allocating structs is constructing them, which feeds the
// guardedfield constructor exemption just like a composite literal.
func builtinMakeType(pkg *Package, call *ast.CallExpr) *types.Named {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "make" && id.Name != "new") {
		return nil
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return nil
	}
	t := tv.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Pointer:
		t = u.Elem()
	default:
		return nil // made maps/chans don't construct their value type
	}
	named := namedType(t)
	if named == nil {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// namedCompositeType resolves a composite literal to its named struct
// type, if it has one.
func namedCompositeType(pkg *Package, lit *ast.CompositeLit) *types.Named {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return nil
	}
	named := namedType(tv.Type)
	if named == nil {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// lockOp recognizes sync.Mutex/RWMutex Lock/Unlock family calls and
// resolves the lock's identity (the field or variable object the mutex
// lives in). ok=false means the call is not a mutex operation.
func (s *summaries) lockOp(pkg *Package, call *ast.CallExpr) (obj types.Object, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return nil, false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	return lockIdentity(pkg, sel.X), acq, true
}

// lockIdentity resolves the expression a mutex method was invoked on to a
// stable object: a struct field var (`s.mu`) or a plain var (`mu`).
func lockIdentity(pkg *Package, expr ast.Expr) types.Object {
	switch expr := expr.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[expr]; ok {
			return selInfo.Obj()
		}
		return pkg.Info.Uses[expr.Sel]
	case *ast.Ident:
		return pkg.Info.Uses[expr]
	case *ast.ParenExpr:
		return lockIdentity(pkg, expr.X)
	}
	return nil
}

// staticCallee resolves a call expression to the *types.Func it invokes,
// or nil for dynamic calls (function values, parameters, field-held
// functions like the pool's FlushFn), conversions, and builtins.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// witness records how a transitive property (acquires lock X / reaches
// I/O) enters a function: through which callee, at which call site.
type witness struct {
	via    string // callee display id ("" = the property is direct)
	pos    token.Pos
	direct string // for direct sources: what exactly (lock name, callee)
}

// transitiveAcquires computes, for every function id, the set of lock
// classes the function may acquire directly or through the static calls it
// makes, with a witness chain for diagnostics.
func (s *summaries) transitiveAcquires() map[string]map[*lockClass]*witness {
	acq := map[string]map[*lockClass]*witness{}
	add := func(id string, c *lockClass, w *witness) bool {
		m := acq[id]
		if m == nil {
			m = map[*lockClass]*witness{}
			acq[id] = m
		}
		if _, ok := m[c]; ok {
			return false
		}
		m[c] = w
		return true
	}
	for _, fn := range s.funcs {
		if fn.id == "" {
			continue
		}
		for _, a := range fn.acquires {
			add(fn.id, a.class, &witness{pos: a.pos, direct: a.class.name})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" {
				continue
			}
			for _, cs := range fn.calls {
				for c := range acq[cs.id] {
					if add(fn.id, c, &witness{via: cs.id, pos: cs.pos}) {
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// chain renders the witness path for id's property as "f → g → h".
func chain(wit map[string]map[*lockClass]*witness, id string, c *lockClass, display func(string) string) string {
	path := display(id)
	for i := 0; i < 10; i++ { // bounded: recursion could loop
		w := wit[id][c]
		if w == nil || w.via == "" {
			break
		}
		id = w.via
		path += " → " + display(id)
	}
	return path
}

// displayName shortens a types.Func.FullName for diagnostics:
// "(*quickstore/internal/wal.Log).Flush" → "(*wal.Log).Flush".
func displayName(full string) string {
	out := strings.ReplaceAll(full, "quickstore/internal/", "")
	return strings.ReplaceAll(out, "quickstore/", "")
}

// describeHeld names a held-lock set for diagnostics.
func describeHeld(held []heldLock) string {
	var names []string
	for _, h := range held {
		names = append(names, h.class.name)
	}
	return strings.Join(names, ", ")
}

// exitDescription renders an exit site for unlockpath diagnostics.
func (p *Program) exitDescription(e exitSite) string {
	switch e.kind {
	case exitReturn:
		return fmt.Sprintf("the return at %s", p.PosString(e.pos))
	case exitPanic:
		return fmt.Sprintf("the panic at %s", p.PosString(e.pos))
	default:
		return fmt.Sprintf("the function end at %s", p.PosString(e.pos))
	}
}
