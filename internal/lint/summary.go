package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockClass is one named lock in the documented hierarchy (DESIGN.md §10).
// Rank encodes the acquisition order: a lock may only be acquired while
// every held classified lock has a strictly lower rank. Latches (pool
// stripe latches and frame content latches) additionally may never be
// combined with the server's catalog/transaction locks in either order.
type lockClass struct {
	name   string
	rank   int
	latch  bool // buffer pool stripe or frame content latch
	server bool // esm.Server.mu / esm.Server.catMu
}

// lockSpec locates one classified lock field in the module source.
type lockSpec struct {
	pkg   string // module-relative package path
	typ   string // struct type name
	field string // mutex field name
	class lockClass
}

// lockSpecs is the documented lock hierarchy of the storage manager.
// The ranks encode: catMu → mu → (wal.Log.mu | volume) with the lock
// manager, cost clock, and fault plane as leaves; pool latches sit apart
// from the server locks (PR 3: latches are taken with neither mu nor
// catMu held, and FlushFn under a content latch takes wal/volume, never mu).
var lockSpecs = []lockSpec{
	{"internal/esm", "Server", "catMu", lockClass{name: "esm.Server.catMu", rank: 10, server: true}},
	{"internal/esm", "Server", "mu", lockClass{name: "esm.Server.mu", rank: 20, server: true}},
	{"internal/buffer", "latchStripe", "mu", lockClass{name: "buffer stripe latch", rank: 22, latch: true}},
	{"internal/buffer", "latchFrame", "content", lockClass{name: "buffer frame content latch", rank: 24, latch: true}},
	{"internal/wal", "Log", "mu", lockClass{name: "wal.Log.mu", rank: 30}},
	{"internal/disk", "volumeCore", "mu", lockClass{name: "disk volume lock", rank: 32}},
	{"internal/lock", "Manager", "mu", lockClass{name: "lock.Manager.mu", rank: 40}},
	{"internal/sim", "Clock", "mu", lockClass{name: "sim.Clock.mu", rank: 50}},
	{"internal/faultinject", "Plane", "mu", lockClass{name: "faultinject.Plane.mu", rank: 52}},
}

// heldLock is one classified lock held at a program point.
type heldLock struct {
	obj   types.Object
	class *lockClass
	pos   token.Pos // acquisition site
}

// acqSite is one direct lock acquisition inside a function.
type acqSite struct {
	obj   types.Object
	class *lockClass
	pos   token.Pos
	held  []heldLock // classified locks held at the acquisition
}

// callSite is one statically resolved call inside a function.
type callSite struct {
	callee *types.Func
	id     string
	pos    token.Pos
	held   []heldLock
}

// funcNode is the per-function summary the interprocedural checks consume.
type funcNode struct {
	id       string // types.Func.FullName(); "" for function literals
	name     string // display name
	pkg      *Package
	pos      token.Pos
	acquires []acqSite
	calls    []callSite
}

// summaries is the shared interprocedural state, built once per Program.
type summaries struct {
	locks map[types.Object]*lockClass
	funcs []*funcNode
	byID  map[string]*funcNode
}

var summaryCache = map[*Program]*summaries{}

// summarize builds (or returns the cached) function summaries for prog.
func summarize(prog *Program) *summaries {
	if s, ok := summaryCache[prog]; ok {
		return s
	}
	s := &summaries{
		locks: map[types.Object]*lockClass{},
		byID:  map[string]*funcNode{},
	}
	s.resolveLocks(prog)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			s.collectFile(pkg, f)
		}
	}
	summaryCache[prog] = s
	return s
}

// resolveLocks maps the lockSpecs onto the loaded module's type objects.
// Specs whose package or type is absent (partial fixtures) are skipped.
func (s *summaries) resolveLocks(prog *Program) {
	for i := range lockSpecs {
		spec := &lockSpecs[i]
		pkg := prog.ByPath[prog.ModulePath+"/"+spec.pkg]
		if pkg == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup(spec.typ)
		if obj == nil {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			if f := st.Field(j); f.Name() == spec.field {
				s.locks[f] = &spec.class
			}
		}
	}
}

// collectFile walks one file, summarizing every function declaration and
// function literal. Literals get their own node (empty id: they are not
// reachable through the static call graph) so their bodies are still
// checked for direct violations.
func (s *summaries) collectFile(pkg *Package, f *ast.File) {
	var lits []*ast.FuncLit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var id, name string
		if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			id = obj.FullName()
			name = obj.Name()
			if recv := fd.Recv; recv != nil && len(recv.List) > 0 {
				name = recvString(recv.List[0].Type) + "." + name
			}
		}
		node := &funcNode{id: id, name: name, pkg: pkg, pos: fd.Pos()}
		lits = append(lits, s.walkBody(pkg, node, fd.Body)...)
		s.funcs = append(s.funcs, node)
		if id != "" {
			s.byID[id] = node
		}
	}
	// Literals may nest; process the work list to a fixed point.
	for len(lits) > 0 {
		lit := lits[0]
		lits = lits[1:]
		node := &funcNode{name: "func literal", pkg: pkg, pos: lit.Pos()}
		lits = append(lits, s.walkBody(pkg, node, lit.Body)...)
		s.funcs = append(s.funcs, node)
	}
}

func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvString(t.X)
	}
	return "?"
}

// walkBody performs the lock-state walk over one function body:
// statements are visited in source order, Lock/RLock on a classified lock
// adds it to the held set, Unlock/RUnlock removes it (a deferred Unlock is
// ignored, keeping the lock held to the end — the dominant idiom), and
// every other statically resolved call is recorded with a snapshot of the
// held set. Nested function literals are returned for separate
// summarization, not walked in place: their bodies run with their own
// (unknown) lock context.
func (s *summaries) walkBody(pkg *Package, node *funcNode, body *ast.BlockStmt) []*ast.FuncLit {
	w := &bodyWalker{s: s, pkg: pkg, node: node}
	var held []heldLock
	w.stmts(body.List, &held)
	return w.lits
}

// bodyWalker carries the per-body walk state.
type bodyWalker struct {
	s    *summaries
	pkg  *Package
	node *funcNode
	lits []*ast.FuncLit
}

func cloneHeld(held []heldLock) []heldLock { return append([]heldLock(nil), held...) }

func (w *bodyWalker) stmts(list []ast.Stmt, held *[]heldLock) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

// stmt updates held in place along straight-line flow. Branch bodies —
// if/else arms, switch cases, select comms, loop bodies — are walked with a
// copy of the held set and their effects discarded: each branch is checked
// under the locks held at entry, and code after the construct sees the
// entry set again. This matches the codebase's idiom (a case that locks
// also defer-unlocks or returns) and keeps a lock-per-case switch from
// leaking one case's locks into the next.
func (w *bodyWalker) stmt(st ast.Stmt, held *[]heldLock) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.ExprStmt:
		w.expr(st.X, held, nil)
	case *ast.DeferStmt:
		w.expr(st.Call, held, st.Call)
	case *ast.GoStmt:
		// The spawned call runs without the caller's locks; only its
		// argument expressions evaluate inline.
		for _, arg := range st.Call.Args {
			w.expr(arg, held, nil)
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, held, nil)
		}
		for _, e := range st.Lhs {
			w.expr(e, held, nil)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held, nil)
		}
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.expr(st.Cond, held, nil)
		bh := cloneHeld(*held)
		w.stmt(st.Body, &bh)
		if st.Else != nil {
			eh := cloneHeld(*held)
			w.stmt(st.Else, &eh)
		}
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		if st.Tag != nil {
			w.expr(st.Tag, held, nil)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			ch := cloneHeld(*held)
			for _, e := range cc.List {
				w.expr(e, &ch, nil)
			}
			w.stmts(cc.Body, &ch)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			ch := cloneHeld(*held)
			w.stmts(cc.Body, &ch)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			ch := cloneHeld(*held)
			w.stmt(cc.Comm, &ch)
			w.stmts(cc.Body, &ch)
		}
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		if st.Cond != nil {
			w.expr(st.Cond, held, nil)
		}
		bh := cloneHeld(*held)
		w.stmt(st.Body, &bh)
		w.stmt(st.Post, &bh)
	case *ast.RangeStmt:
		w.expr(st.X, held, nil)
		bh := cloneHeld(*held)
		w.stmt(st.Body, &bh)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held, nil)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(st.Chan, held, nil)
		w.expr(st.Value, held, nil)
	case *ast.IncDecStmt:
		w.expr(st.X, held, nil)
	}
	// BranchStmt, EmptyStmt: no lock effects.
}

// expr records calls (and harvests function literals) inside one
// expression. deferredCall marks the outer call of a DeferStmt.
func (w *bodyWalker) expr(e ast.Expr, held *[]heldLock, deferredCall *ast.CallExpr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.CallExpr:
			w.s.visitCall(w.pkg, w.node, n, held, n == deferredCall)
		}
		return true
	})
}

// visitCall classifies one call: a lock acquisition, a lock release, or an
// ordinary call recorded with the current held set.
func (s *summaries) visitCall(pkg *Package, node *funcNode, call *ast.CallExpr, held *[]heldLock, isDefer bool) {
	if obj, acquire, ok := s.lockOp(pkg, call); ok {
		if acquire {
			if isDefer {
				return // `defer mu.Lock()` — not a real idiom; ignore
			}
			class := s.locks[obj]
			if class == nil {
				return // unclassified mutex: outside the hierarchy
			}
			node.acquires = append(node.acquires, acqSite{
				obj:   obj,
				class: class,
				pos:   call.Pos(),
				held:  append([]heldLock(nil), *held...),
			})
			*held = append(*held, heldLock{obj: obj, class: class, pos: call.Pos()})
			return
		}
		if isDefer {
			return // deferred unlock: the lock stays held to function end
		}
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].obj == obj {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
		return
	}
	callee := staticCallee(pkg, call)
	if callee == nil {
		return
	}
	node.calls = append(node.calls, callSite{
		callee: callee,
		id:     callee.FullName(),
		pos:    call.Pos(),
		held:   append([]heldLock(nil), *held...),
	})
}

// lockOp recognizes sync.Mutex/RWMutex Lock/Unlock family calls and
// resolves the lock's identity (the field or variable object the mutex
// lives in). ok=false means the call is not a mutex operation.
func (s *summaries) lockOp(pkg *Package, call *ast.CallExpr) (obj types.Object, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return nil, false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	return lockIdentity(pkg, sel.X), acq, true
}

// lockIdentity resolves the expression a mutex method was invoked on to a
// stable object: a struct field var (`s.mu`) or a plain var (`mu`).
func lockIdentity(pkg *Package, expr ast.Expr) types.Object {
	switch expr := expr.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[expr]; ok {
			return selInfo.Obj()
		}
		return pkg.Info.Uses[expr.Sel]
	case *ast.Ident:
		return pkg.Info.Uses[expr]
	case *ast.ParenExpr:
		return lockIdentity(pkg, expr.X)
	}
	return nil
}

// staticCallee resolves a call expression to the *types.Func it invokes,
// or nil for dynamic calls (function values, parameters, field-held
// functions like the pool's FlushFn), conversions, and builtins.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// witness records how a transitive property (acquires lock X / reaches
// I/O) enters a function: through which callee, at which call site.
type witness struct {
	via    string // callee display id ("" = the property is direct)
	pos    token.Pos
	direct string // for direct sources: what exactly (lock name, callee)
}

// transitiveAcquires computes, for every function id, the set of lock
// classes the function may acquire directly or through the static calls it
// makes, with a witness chain for diagnostics.
func (s *summaries) transitiveAcquires() map[string]map[*lockClass]*witness {
	acq := map[string]map[*lockClass]*witness{}
	add := func(id string, c *lockClass, w *witness) bool {
		m := acq[id]
		if m == nil {
			m = map[*lockClass]*witness{}
			acq[id] = m
		}
		if _, ok := m[c]; ok {
			return false
		}
		m[c] = w
		return true
	}
	for _, fn := range s.funcs {
		if fn.id == "" {
			continue
		}
		for _, a := range fn.acquires {
			add(fn.id, a.class, &witness{pos: a.pos, direct: a.class.name})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" {
				continue
			}
			for _, cs := range fn.calls {
				for c := range acq[cs.id] {
					if add(fn.id, c, &witness{via: cs.id, pos: cs.pos}) {
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// chain renders the witness path for id's property as "f → g → h".
func chain(wit map[string]map[*lockClass]*witness, id string, c *lockClass, display func(string) string) string {
	path := display(id)
	for i := 0; i < 10; i++ { // bounded: recursion could loop
		w := wit[id][c]
		if w == nil || w.via == "" {
			break
		}
		id = w.via
		path += " → " + display(id)
	}
	return path
}

// displayName shortens a types.Func.FullName for diagnostics:
// "(*quickstore/internal/wal.Log).Flush" → "(*wal.Log).Flush".
func displayName(full string) string {
	out := strings.ReplaceAll(full, "quickstore/internal/", "")
	return strings.ReplaceAll(out, "quickstore/", "")
}

// describeHeld names a held-lock set for diagnostics.
func describeHeld(held []heldLock) string {
	var names []string
	for _, h := range held {
		names = append(names, h.class.name)
	}
	return strings.Join(names, ", ")
}
