package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// guardedPkgs are the module-relative packages whose struct fields the
// lockset inference covers: the concurrent core of the storage manager.
var guardedPkgs = map[string]bool{
	"internal/esm":    true,
	"internal/buffer": true,
	"internal/wal":    true,
	"internal/lock":   true,
	"internal/repl":   true,
	"internal/mvcc":   true,
	"internal/shard":  true,
}

// AnalyzerGuardedField infers, for each struct field in the concurrent
// core packages, the lock that guards it — the intersection of the
// classified locks held across its access sites — and flags writes that
// bypass a consistently established guard. This is static lockset
// inference in the RacerX/Eraser tradition: `-race` only sees the
// schedules the tests happen to execute; a field guarded at nine of ten
// sites with one bare write is a data race on the schedule nobody ran.
//
// A guard is inferred only on strong evidence: at least two guarded
// accesses, at least three quarters of all sites guarded, and a non-empty
// lock intersection. Constructor code is exempt — a function that builds
// the owning struct (or returns it), and helpers called only from such
// functions, access fields before the value is shared, so their bare
// accesses neither weaken nor violate the guard. Fields whose address
// escapes, channel-typed fields, and sync/atomic fields (their own
// synchronization) are out of scope.
func AnalyzerGuardedField() *Analyzer {
	return &Analyzer{
		Name: "guardedfield",
		Doc:  "infer per-field lock guards from held-sets at access sites; a consistently guarded field with an unguarded write is a static data race",
		Run:  runGuardedField,
	}
}

func runGuardedField(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	exempt := constructorExempt(s)
	callerHeld := callerHeldSets(s)
	type use struct {
		pos  token.Pos
		kind int
		objs map[types.Object]bool // locks held: at the site ∪ at every caller
	}
	type stats struct {
		uses    []use
		escaped bool
	}
	byField := map[types.Object]*stats{}
	var order []types.Object
	for _, fn := range s.funcs {
		ctx := callerHeld[fn.id]
		for _, u := range fn.fields {
			owner := s.owner[u.obj]
			if owner == nil || !coveredOwner(prog, owner) {
				continue
			}
			if excludedFieldType(u.obj.Type()) || s.locks[u.obj] != nil {
				continue
			}
			st := byField[u.obj]
			if st == nil {
				st = &stats{}
				byField[u.obj] = st
				order = append(order, u.obj)
			}
			if u.kind == fieldEscape {
				st.escaped = true
				continue
			}
			if exempt[fn][owner] {
				continue // pre-publication access in a constructor path
			}
			objs := heldObjects(u.held)
			for o := range ctx {
				objs[o] = true
			}
			st.uses = append(st.uses, use{pos: u.pos, kind: u.kind, objs: objs})
		}
	}
	for _, obj := range order {
		st := byField[obj]
		if st.escaped {
			continue // the field aliases beyond its selector sites
		}
		total := len(st.uses)
		var guardedUses []use
		for _, u := range st.uses {
			if len(u.objs) > 0 {
				guardedUses = append(guardedUses, u)
			}
		}
		if len(guardedUses) < 2 || len(guardedUses)*4 < total*3 {
			continue // no consistently established guard
		}
		guard := guardedUses[0].objs
		for _, u := range guardedUses[1:] {
			guard = intersectObjects(guard, u.objs)
			if len(guard) == 0 {
				break
			}
		}
		if len(guard) == 0 {
			continue // guarded sites disagree on which lock
		}
		guardName := describeGuard(s, guard)
		for _, u := range st.uses {
			if u.kind != fieldWrite || intersects(u.objs, guard) {
				continue
			}
			report(u.pos, "write to %s bypasses its inferred guard %s (held at %d of %d access sites): unguarded write is a data race",
				fieldDisplay(s, obj), guardName, len(guardedUses), total)
		}
	}
}

// callerHeldSets computes, per unexported declared function, the
// classified locks held at *every* static call site — the calling
// convention of `...Locked` helpers ("caller holds mu") made checkable.
// A greatest fixpoint seeded with the full lock set lets the context flow
// through helper chains (Release → promoteLocked → grantLocked); the
// contribution of each call site is the locks held at the site plus the
// caller's own inherited context. Exported functions get no context:
// they are reachable from other packages and through interfaces the
// static call graph cannot see.
func callerHeldSets(s *summaries) map[string]map[types.Object]bool {
	top := map[types.Object]bool{}
	for obj := range s.locks {
		top[obj] = true
	}
	type site struct {
		caller *funcNode
		objs   map[types.Object]bool
	}
	sites := map[string][]site{}
	for _, fn := range s.funcs {
		for _, cs := range fn.calls {
			sites[cs.id] = append(sites[cs.id], site{caller: fn, objs: heldObjects(cs.held)})
		}
	}
	sets := map[string]map[types.Object]bool{}
	for _, fn := range s.funcs {
		if fn.id != "" && !funcExported(fn) && len(sites[fn.id]) > 0 {
			sets[fn.id] = top
		}
	}
	for changed := true; changed; {
		changed = false
		for id, cur := range sets {
			var next map[types.Object]bool
			for _, cs := range sites[id] {
				contrib := map[types.Object]bool{}
				for o := range cs.objs {
					contrib[o] = true
				}
				for o := range sets[cs.caller.id] {
					contrib[o] = true
				}
				if next == nil {
					next = contrib
				} else {
					next = intersectObjects(next, contrib)
				}
			}
			if len(next) != len(cur) {
				sets[id] = next
				changed = true
			}
		}
	}
	for id, set := range sets {
		if len(set) == 0 {
			delete(sets, id)
		}
	}
	return sets
}

// funcExported reports whether a summarized function's own name is
// exported (the receiver does not matter: an exported method on an
// unexported type is still interface-dispatchable).
func funcExported(fn *funcNode) bool {
	name := fn.name
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if name == "" {
		return true
	}
	r := name[0]
	return r >= 'A' && r <= 'Z'
}

func intersects(a, b map[types.Object]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// constructorExempt computes, per function, the struct types whose fields
// it may access bare: types it constructs or returns, propagated to
// functions reachable only from already-exempt callers (an OpenServer
// helper initializing server state is still pre-publication).
func constructorExempt(s *summaries) map[*funcNode]map[*types.TypeName]bool {
	exempt := map[*funcNode]map[*types.TypeName]bool{}
	callers := map[string][]*funcNode{}
	for _, fn := range s.funcs {
		if len(fn.makes) > 0 {
			m := map[*types.TypeName]bool{}
			for t := range fn.makes {
				m[t] = true
			}
			exempt[fn] = m
		}
		for _, cs := range fn.calls {
			callers[cs.id] = append(callers[cs.id], fn)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" {
				continue
			}
			cs := callers[fn.id]
			if len(cs) == 0 {
				continue
			}
			// Types every static caller is exempt for.
			inter := map[*types.TypeName]bool{}
			for t := range exempt[cs[0]] {
				inter[t] = true
			}
			for _, c := range cs[1:] {
				for t := range inter {
					if !exempt[c][t] {
						delete(inter, t)
					}
				}
			}
			for t := range inter {
				if !exempt[fn][t] {
					if exempt[fn] == nil {
						exempt[fn] = map[*types.TypeName]bool{}
					}
					exempt[fn][t] = true
					changed = true
				}
			}
		}
	}
	return exempt
}

// coveredOwner reports whether a field's declaring struct lives in one of
// the covered core packages.
func coveredOwner(prog *Program, owner *types.TypeName) bool {
	pkg := owner.Pkg()
	if pkg == nil {
		return false
	}
	rel := strings.TrimPrefix(pkg.Path(), prog.ModulePath+"/")
	return guardedPkgs[rel]
}

// excludedFieldType reports field types with synchronization of their own:
// sync and sync/atomic types (also behind pointers) and channels.
func excludedFieldType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Chan:
			return true
		case *types.Named:
			if pkg := u.Obj().Pkg(); pkg != nil {
				if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
					return true
				}
			}
			t = u.Underlying()
			continue
		}
		return false
	}
}

func heldObjects(held []heldLock) map[types.Object]bool {
	m := map[types.Object]bool{}
	for _, h := range held {
		m[h.obj] = true
	}
	return m
}

func intersectObjects(a, b map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// describeGuard names an inferred guard set by its lock classes.
func describeGuard(s *summaries, guard map[types.Object]bool) string {
	var names []string
	for obj := range guard {
		if c := s.locks[obj]; c != nil {
			names = append(names, c.name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, " + ")
}

// fieldDisplay renders a field as Type.field for diagnostics.
func fieldDisplay(s *summaries, obj types.Object) string {
	if owner := s.owner[obj]; owner != nil {
		pkg := ""
		if p := owner.Pkg(); p != nil {
			parts := strings.Split(p.Path(), "/")
			pkg = parts[len(parts)-1] + "."
		}
		return fmt.Sprintf("%s%s.%s", pkg, owner.Name(), obj.Name())
	}
	return obj.Name()
}
