package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mustSpec names one error-returning call whose result must be consumed.
type mustSpec struct {
	pkg  string // module-relative package path
	recv string // receiver type name; "" = any (including interfaces)
	name string
}

// mustFuncs is the durability-critical call set: log forces, disk
// write/sync paths, and transaction commit/abort. Dropping one of these
// errors silently converts a durability failure into corruption the next
// crash exposes (PR 2 found exactly this class of bug twice).
var mustFuncs = []mustSpec{
	{"internal/wal", "Log", "Flush"},
	{"internal/wal", "Log", "FlushTo"},
	{"internal/wal", "Log", "FlushCommit"},
	{"internal/wal", "Log", "Truncate"},
	{"internal/disk", "", "WritePage"},
	{"internal/disk", "", "Sync"},
	{"internal/disk", "", "Grow"},
	{"internal/esm", "Client", "Commit"},
	{"internal/esm", "Client", "Abort"},
	{"internal/esm", "Server", "Checkpoint"},
	{"internal/core", "Store", "Commit"},
	{"internal/core", "Store", "Abort"},
}

// AnalyzerMustCheck flags discarded error returns from the durability-
// critical call set: a bare call statement, a deferred/spawned call, or an
// assignment that sends every error result to the blank identifier.
// Deliberate best-effort discards (rollback on an already-failing path)
// carry a `//qsvet:ignore mustcheck reason` directive instead.
func AnalyzerMustCheck() *Analyzer {
	return &Analyzer{
		Name: "mustcheck",
		Doc:  "flag unchecked errors from wal flush/force, disk write/sync, and tx commit/abort calls",
		Run:  runMustCheck,
	}
}

func runMustCheck(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if fn := mustCheckTarget(prog, pkg, n.X); fn != nil {
						report(n.Pos(), "error from %s is silently discarded: check it (or //qsvet:ignore mustcheck with a reason)",
							displayName(fn.FullName()))
					}
				case *ast.DeferStmt:
					if fn := mustCheckTarget(prog, pkg, n.Call); fn != nil {
						report(n.Pos(), "deferred %s discards its error: wrap it in a closure that handles the error",
							displayName(fn.FullName()))
					}
				case *ast.GoStmt:
					if fn := mustCheckTarget(prog, pkg, n.Call); fn != nil {
						report(n.Pos(), "go %s discards its error: collect it in the goroutine",
							displayName(fn.FullName()))
					}
				case *ast.AssignStmt:
					checkMustAssign(prog, pkg, n, report)
				}
				return true
			})
		}
	}
}

// mustCheckTarget reports whether expr is a call to a must-check function,
// returning the callee if so.
func mustCheckTarget(prog *Program, pkg *Package, expr ast.Expr) *types.Func {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := staticCallee(pkg, call)
	if fn == nil || !isMustCheck(prog, fn) {
		return nil
	}
	return fn
}

// checkMustAssign flags `_ = f()` (and multi-assigns whose every error
// result is blank) for must-check callees.
func checkMustAssign(prog *Program, pkg *Package, as *ast.AssignStmt, report func(pos token.Pos, format string, args ...interface{})) {
	// Only the single-call form can split results across LHS.
	if len(as.Rhs) == 1 {
		if fn := mustCheckTarget(prog, pkg, as.Rhs[0]); fn != nil {
			if allErrorsBlank(as.Lhs, fn) {
				report(as.Pos(), "error from %s is assigned to _: check it (or //qsvet:ignore mustcheck with a reason)",
					displayName(fn.FullName()))
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		fn := mustCheckTarget(prog, pkg, rhs)
		if fn == nil {
			continue
		}
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			report(as.Pos(), "error from %s is assigned to _: check it (or //qsvet:ignore mustcheck with a reason)",
				displayName(fn.FullName()))
		}
	}
}

// allErrorsBlank reports whether every error-typed result of fn lands in a
// blank identifier of lhs (single-result calls: lhs[0] blank).
func allErrorsBlank(lhs []ast.Expr, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 1 {
		return len(lhs) == 1 && isBlank(lhs[0])
	}
	any := false
	for i := 0; i < res.Len() && i < len(lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		any = true
		if !isBlank(lhs[i]) {
			return false
		}
	}
	return any
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isMustCheck matches fn against the must-check table.
func isMustCheck(prog *Program, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	recv := recvTypeName(fn)
	for _, spec := range mustFuncs {
		want := prog.ModulePath
		if spec.pkg != "" {
			want = prog.ModulePath + "/" + spec.pkg
		}
		if path != want || fn.Name() != spec.name {
			continue
		}
		if spec.recv == "" || spec.recv == recv {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions), following pointers.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return ""
	}
	return ""
}
