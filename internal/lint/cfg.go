package lint

import (
	"go/ast"
	"go/token"
)

// The control-flow graph underlying every path-sensitive analysis. A
// function body is decomposed into basic blocks of *atomic* nodes — simple
// statements (assignments, calls, defers, returns) and the controlling
// expressions of branches (an if condition, a switch tag, a range
// operand) — connected by the edges control can actually take:
// if/else arms, loop back-edges, switch/select dispatch, labeled break and
// continue, goto, and fallthrough. A `return` or an explicit `panic(...)`
// terminates its block with no successor (the exit); code after it lands
// in a fresh block with no predecessors, which the dataflow engine treats
// as unreachable.
//
// Composite statements are never added as nodes themselves: an *ast.IfStmt
// contributes its condition to one block and its arms to others, so a
// transfer function may inspect each node's full subtree without seeing a
// statement twice.

// block is one basic block.
type block struct {
	idx   int
	nodes []ast.Node
	succs []*block
	preds []*block
}

// cfg is the control-flow graph of one function body. blocks[0] is the
// entry. end holds the blocks whose fall-off edge is the function's
// implicit return (reaching the closing brace).
type cfg struct {
	blocks []*block
	end    map[*block]bool
}

// cfgTarget is one enclosing breakable/continuable construct.
type cfgTarget struct {
	label string // enclosing label, "" if none
	brk   *block // break lands here (loops, switch, select)
	cont  *block // continue lands here (loops only)
}

type cfgBuilder struct {
	c       *cfg
	cur     *block // nil after a terminating statement
	targets []cfgTarget
	label   string            // pending label for the next loop/switch/select
	labels  map[string]*block // goto targets
	gotos   []pendingGoto
	fall    *block // fallthrough target inside a switch case
}

type pendingGoto struct {
	from  *block
	label string
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		c:      &cfg{end: map[*block]bool{}},
		labels: map[string]*block{},
	}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	if b.cur != nil {
		b.c.end[b.cur] = true
	}
	for _, g := range b.gotos {
		if to := b.labels[g.label]; to != nil {
			link(g.from, to)
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{idx: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, bl)
	return bl
}

func link(from, to *block) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// linkCur links the current block to `to` (no-op after a terminator).
func (b *cfgBuilder) linkCur(to *block) {
	if b.cur != nil {
		link(b.cur, to)
	}
}

// add appends an atomic node to the current block, resurrecting an
// unreachable block for dead code so the AST is still covered by blocks
// (the engine skips blocks no fact reaches).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// takeLabel consumes the pending label (set by an enclosing LabeledStmt)
// for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is both a goto target and (for loops/switches) the name
		// break/continue statements refer to.
		lbl := b.newBlock()
		b.linkCur(lbl)
		b.cur = lbl
		b.labels[s.Label.Name] = lbl
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		label := b.takeLabel()
		_ = label // if statements are not break targets
		b.stmt(s.Init)
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		if cond != nil {
			link(cond, then)
		}
		if s.Else != nil {
			els := b.newBlock()
			if cond != nil {
				link(cond, els)
			}
			b.cur = then
			b.stmtList(s.Body.List)
			b.linkCur(join)
			b.cur = els
			b.stmt(s.Else)
			b.linkCur(join)
		} else {
			if cond != nil {
				link(cond, join)
			}
			b.cur = then
			b.stmtList(s.Body.List)
			b.linkCur(join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.linkCur(head)
		after := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			link(b.cur, after) // condition false
		}
		condEnd := b.cur
		body := b.newBlock()
		link(condEnd, body)
		// continue runs Post (when present) before re-testing the condition.
		contTo := head
		var post *block
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		b.targets = append(b.targets, cfgTarget{label: label, brk: after, cont: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		if post != nil {
			b.linkCur(post)
			b.cur = post
			b.stmt(s.Post)
			b.linkCur(head)
		} else {
			b.linkCur(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // the ranged operand is evaluated once, before the loop
		head := b.newBlock()
		b.linkCur(head)
		after := b.newBlock()
		link(head, after) // range exhausted
		body := b.newBlock()
		link(head, body)
		b.targets = append(b.targets, cfgTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.linkCur(head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildCases(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.buildCases(label, s.Body.List, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, cfgTarget{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			if dispatch != nil {
				link(dispatch, cb)
			}
			b.cur = cb
			b.stmt(cc.Comm)
			b.stmtList(cc.Body)
			b.linkCur(after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		// A select always executes one of its clauses (an empty `select{}`
		// blocks forever): no dispatch→after edge.
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s, false); t != nil {
				b.linkCur(t.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(s, true); t != nil {
				b.linkCur(t.cont)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.linkCur(b.fall)
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil
		}

	default:
		// Assign, Defer, Go, Send, IncDec, Decl: straight-line effects.
		b.add(s)
	}
}

// buildCases lays out the shared case structure of switch and type-switch
// statements: a dispatch point fanning out to each case body, fallthrough
// edges between adjacent cases, and an implicit no-match edge to the join
// when there is no default clause.
func (b *cfgBuilder) buildCases(label string, clauses []ast.Stmt, assign ast.Stmt) {
	b.add(assign)
	dispatch := b.cur
	after := b.newBlock()
	hasDefault := false
	caseBlocks := make([]*block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		caseBlocks[i] = b.newBlock()
		if dispatch != nil {
			link(dispatch, caseBlocks[i])
		}
	}
	if !hasDefault && dispatch != nil {
		link(dispatch, after)
	}
	b.targets = append(b.targets, cfgTarget{label: label, brk: after})
	savedFall := b.fall
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fall = nil
		if i+1 < len(caseBlocks) {
			b.fall = caseBlocks[i+1]
		}
		b.stmtList(cc.Body)
		b.linkCur(after)
	}
	b.fall = savedFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// findTarget resolves a break/continue to its enclosing construct,
// innermost first, honoring an optional label.
func (b *cfgBuilder) findTarget(s *ast.BranchStmt, needCont bool) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if s.Label != nil && t.label != s.Label.Name {
			continue
		}
		return t
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the panic builtin.
// Purely syntactic (the builder runs before type information is consulted);
// a shadowed `panic` would be misread, an idiom this codebase does not use.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
