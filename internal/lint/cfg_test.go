package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// The CFG tests parse a function body containing mark(k) calls and check
// which marks the dataflow engine can reach, and which marks lie on a
// path to which: reachability proves the builder's terminator handling
// (return, panic, labeled break, goto), path traces prove its edges
// (fallthrough, loop back-edges). Deferred-unlock semantics are dataflow
// facts, not CFG shape, and are covered by the unlockpath and lockorder
// fixtures.

// reachLattice: the fact carries no information; a block is interesting
// only for whether any fact reaches it at all.
type reachLattice struct{}

func (reachLattice) entry() fact                      { return struct{}{} }
func (reachLattice) transfer(f fact, n ast.Node) fact { return f }
func (reachLattice) join(a, b fact) fact              { return a }
func (reachLattice) equal(a, b fact) bool             { return true }

// traceLattice: the fact is the set of marks some path has passed.
type traceLattice struct{}

func (traceLattice) entry() fact { return map[int]bool{} }

func (traceLattice) transfer(f fact, n ast.Node) fact {
	marks := markIDs(n)
	if len(marks) == 0 {
		return f
	}
	out := map[int]bool{}
	for k := range f.(map[int]bool) {
		out[k] = true
	}
	for _, k := range marks {
		out[k] = true
	}
	return out
}

func (traceLattice) join(a, b fact) fact {
	am, bm := a.(map[int]bool), b.(map[int]bool)
	out := map[int]bool{}
	for k := range am {
		out[k] = true
	}
	for k := range bm {
		out[k] = true
	}
	return out
}

func (traceLattice) equal(a, b fact) bool {
	am, bm := a.(map[int]bool), b.(map[int]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func markIDs(n ast.Node) []int {
	if n == nil {
		return nil
	}
	var out []int
	ast.Inspect(n, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "mark" {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if v, err := strconv.Atoi(lit.Value); err == nil {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

func parseBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\n\nfunc mark(int) {}\n\nfunc f(a, b bool, n int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, file.Decls[1].(*ast.FuncDecl).Body
}

// reachable runs the reachability analysis and returns mark → reached.
func reachable(t *testing.T, body string) map[int]bool {
	t.Helper()
	_, b := parseBody(t, body)
	c := buildCFG(b)
	in, _ := fixpoint(c, reachLattice{})
	out := map[int]bool{}
	ast.Inspect(b, func(n ast.Node) bool {
		for _, k := range markIDs(n) {
			if _, ok := out[k]; !ok {
				out[k] = false
			}
		}
		return true
	})
	for i, bl := range c.blocks {
		if in[i] == nil {
			continue
		}
		for _, node := range bl.nodes {
			for _, k := range markIDs(node) {
				out[k] = true
			}
		}
	}
	return out
}

// marksBefore returns the marks some path passes before reaching target.
func marksBefore(t *testing.T, body string, target int) map[int]bool {
	t.Helper()
	_, b := parseBody(t, body)
	c := buildCFG(b)
	in, _ := fixpoint(c, traceLattice{})
	lat := traceLattice{}
	for i, bl := range c.blocks {
		if in[i] == nil {
			continue
		}
		f := in[i]
		for _, node := range bl.nodes {
			for _, k := range markIDs(node) {
				if k == target {
					return f.(map[int]bool)
				}
			}
			f = lat.transfer(f, node)
		}
	}
	t.Fatalf("mark(%d) not reached", target)
	return nil
}

func expectReach(t *testing.T, got map[int]bool, want map[int]bool) {
	t.Helper()
	for k, w := range want {
		if got[k] != w {
			t.Errorf("mark(%d): reachable=%v, want %v", k, got[k], w)
		}
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	expectReach(t, reachable(t, `
	mark(1)
	return
	mark(2)
`), map[int]bool{1: true, 2: false})
}

func TestCFGPanicTerminates(t *testing.T) {
	expectReach(t, reachable(t, `
	mark(1)
	if a {
		panic("boom")
		mark(2)
	}
	mark(3)
`), map[int]bool{1: true, 2: false, 3: true})
}

func TestCFGLabeledBreak(t *testing.T) {
	// The inner for{} never falls out on its own: mark(2) is reachable
	// only if `break outer` wrongly targets the inner loop, and mark(3)
	// only if it correctly exits the outer one.
	expectReach(t, reachable(t, `
outer:
	for {
		for {
			if a {
				break outer
			}
			mark(1)
		}
		mark(2)
	}
	mark(3)
`), map[int]bool{1: true, 2: false, 3: true})
}

func TestCFGGoto(t *testing.T) {
	expectReach(t, reachable(t, `
	mark(1)
	goto skip
	mark(2)
skip:
	mark(3)
`), map[int]bool{1: true, 2: false, 3: true})
}

func TestCFGDeadLoop(t *testing.T) {
	// A condition-less loop with no break never reaches the code after it.
	expectReach(t, reachable(t, `
	for {
		mark(1)
	}
	mark(2)
`), map[int]bool{1: true, 2: false})
}

func TestCFGFallthroughEdge(t *testing.T) {
	// mark(1) precedes mark(2) on some path only through the fallthrough
	// edge: the dispatch edge into case 1 does not pass case 0's body.
	before := marksBefore(t, `
	switch n {
	case 0:
		mark(1)
		fallthrough
	case 1:
		mark(2)
	default:
		mark(3)
	}
`, 2)
	if !before[1] {
		t.Errorf("no path carries mark(1) into case 1: fallthrough edge missing")
	}
	if before[3] {
		t.Errorf("default body precedes case 1 on some path: bogus edge")
	}
}

func TestCFGForContinueRunsPost(t *testing.T) {
	// continue re-enters through the post statement and the condition;
	// the loop still exits, so mark(2) is reachable and sees mark(1).
	before := marksBefore(t, `
	for i := 0; a; i++ {
		mark(1)
		continue
	}
	mark(2)
`, 2)
	if !before[1] {
		t.Errorf("loop body does not precede the loop exit: back edge missing")
	}
}

func TestCFGSelectExecutesExactlyOneClause(t *testing.T) {
	// No dispatch→after edge: every path past the select runs one clause.
	_, b := parseBody(t, `
	select {
	case <-ch:
		mark(1)
	case ch <- n:
		mark(2)
	}
	mark(3)
`)
	c := buildCFG(b)
	in, _ := fixpoint(c, traceLattice{})
	for i, bl := range c.blocks {
		if in[i] == nil {
			continue
		}
		for _, node := range bl.nodes {
			for _, k := range markIDs(node) {
				if k == 3 {
					f := in[i].(map[int]bool)
					if !f[1] && !f[2] {
						t.Errorf("a path reaches past the select through no clause")
					}
					if len(bl.preds) != 2 {
						t.Errorf("after-select block has %d preds, want 2 (one per clause)", len(bl.preds))
					}
				}
			}
		}
	}
}

// mustTraceLattice: the fact is the set of marks EVERY path has passed —
// the intersection join exercises the engine's optimistic nil handling,
// the same shape the ackorder must-analysis relies on.
type mustTraceLattice struct{ traceLattice }

func (mustTraceLattice) join(a, b fact) fact {
	am, bm := a.(map[int]bool), b.(map[int]bool)
	out := map[int]bool{}
	for k := range am {
		if bm[k] {
			out[k] = true
		}
	}
	return out
}

// mustMarksBefore returns the marks every path passes before target.
func mustMarksBefore(t *testing.T, body string, target int) map[int]bool {
	t.Helper()
	_, b := parseBody(t, body)
	c := buildCFG(b)
	var lat mustTraceLattice
	in, _ := fixpoint(c, lat)
	for i, bl := range c.blocks {
		if in[i] == nil {
			continue
		}
		f := in[i]
		for _, node := range bl.nodes {
			for _, k := range markIDs(node) {
				if k == target {
					return f.(map[int]bool)
				}
			}
			f = lat.transfer(f, node)
		}
	}
	t.Fatalf("mark(%d) not reached", target)
	return nil
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	// Without a default clause the dispatch can bypass every case: no
	// mark is on every path to mark(2).
	must := mustMarksBefore(t, `
	switch n {
	case 0:
		mark(1)
	}
	mark(2)
`, 2)
	if len(must) != 0 {
		t.Errorf("want a case-free path to mark(2), but every path passes %v", must)
	}
	// With a default clause the dispatch cannot: some mark dominates.
	must = mustMarksBefore(t, `
	switch n {
	case 0:
		mark(1)
	default:
		mark(1)
	}
	mark(2)
`, 2)
	if !must[1] {
		t.Errorf("defaulted switch reached mark(2) on a body-free path")
	}
}
