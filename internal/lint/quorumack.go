package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerQuorumAck enforces the replicated commit's quorum-before-ack
// discipline (DESIGN.md §14): with replication attached, local durability
// is not commit durability, so every path that acks OpCommit success must
// pass through the QuorumWaiter gate — a call to WaitQuorum — first. A
// success return the gate does not dominate acks a commit a leader crash
// can lose: the client believes it durable while no follower holds it.
//
// The check walks every `case OpCommit:` dispatch clause and the commit
// implementations it tail-returns (`return nil, s.commit(...)`, followed
// transitively through same-package tail calls), and flags any literal
// nil-error return not preceded — in an enclosing statement sequence — by
// a statement containing a WaitQuorum call — or a call to a same-package
// gate function that provably wraps one (see gateFuncs); the commit
// implementation may return the commit LSN, with the ack built around the
// call rather than tail-returned. The gate legitimately hides behind a
// `replWaiter() != nil` guard (single-node mode skips it by design), so
// the analyzer checks gate dominance in the statement structure, not path
// feasibility through the guard.
func AnalyzerQuorumAck() *Analyzer {
	return &Analyzer{
		Name: "quorumack",
		Doc:  "OpCommit success paths must be dominated by a WaitQuorum gate: acks before quorum are lost on failover",
		Run:  runQuorumAck,
	}
}

func runQuorumAck(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	for _, pkg := range prog.Packages {
		decls := packageFuncDecls(pkg)
		gates := gateFuncs(pkg, decls)
		checked := map[*ast.FuncDecl]bool{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok || !clauseNamesOpCommit(pkg, cc) {
						return true
					}
					// Inline acks in the dispatch clause itself.
					if funcLastResultIsError(pkg, fd) {
						quorumScan(pkg, cc.Body, false, gates, func(pos token.Pos) {
							report(pos, "OpCommit acked without a WaitQuorum gate: a commit acknowledged here can be lost on failover")
						})
					}
					// The implementations the clause delegates the ack
					// to: same-package functions whose error is returned
					// as the clause's (tail position), followed through
					// their own tail calls.
					work := tailCallees(pkg, decls, cc.Body)
					for len(work) > 0 {
						impl := work[0]
						work = work[1:]
						if checked[impl] {
							continue
						}
						checked[impl] = true
						if !funcLastResultIsError(pkg, impl) {
							continue
						}
						quorumScan(pkg, impl.Body.List, false, gates, func(pos token.Pos) {
							report(pos, "commit success path is not dominated by a WaitQuorum gate: the ack can outrun quorum durability and be lost on failover")
						})
						work = append(work, tailCallees(pkg, decls, impl.Body.List)...)
					}
					return true
				})
			}
		}
	}
}

// packageFuncDecls maps each function object declared in pkg to its decl,
// so dispatch targets can be resolved to bodies.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// clauseNamesOpCommit reports whether the case clause matches on a
// constant named OpCommit.
func clauseNamesOpCommit(pkg *Package, cc *ast.CaseClause) bool {
	for _, e := range cc.List {
		var obj types.Object
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[e.Sel]
		}
		if c, ok := obj.(*types.Const); ok && c.Name() == "OpCommit" {
			return true
		}
	}
	return false
}

// funcLastResultIsError reports whether fd's final result is error — the
// slot whose literal nil is a success ack.
func funcLastResultIsError(pkg *Package, fd *ast.FuncDecl) bool {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// tailCallees collects the same-package functions whose error a return in
// stmts forwards directly (`return ..., s.commit(...)`): the ack the
// client sees is whatever those functions return, so they inherit the
// gate obligation.
func tailCallees(pkg *Package, decls map[*types.Func]*ast.FuncDecl, stmts []ast.Stmt) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			call, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pkg, call)
			if fn == nil || fn.Pkg() != pkg.Types {
				return true
			}
			if fd := decls[fn]; fd != nil {
				out = append(out, fd)
			}
			return true
		})
	}
	return out
}

// gateFuncs computes the package's gate functions: functions (last result
// error) that contain a WaitQuorum call and whose every literal nil-error
// return is dominated by it. Calling such a function IS passing the gate —
// the commit implementation may wrap the WaitQuorum wait and hand its
// caller a commit LSN, with the ack built around the call rather than
// tail-returned. Iterated to a fixed point so gates compose.
func gateFuncs(pkg *Package, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	gates := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if gates[fn] || !funcLastResultIsError(pkg, fd) {
				continue
			}
			if !containsWaitQuorum(pkg, fd.Body, gates) {
				continue
			}
			clean := true
			quorumScan(pkg, fd.Body.List, false, gates, func(token.Pos) { clean = false })
			if clean {
				gates[fn] = true
				changed = true
			}
		}
	}
	return gates
}

// quorumScan walks a statement sequence in order, flagging every literal
// nil-error return (success ack) no earlier statement containing a
// WaitQuorum call (or a call to a gate function) dominates. seen carries
// gates established by enclosing sequences; the updated value is returned
// so siblings after a nested gate see it. Function literals are skipped:
// their returns are not the commit path's.
func quorumScan(pkg *Package, stmts []ast.Stmt, seen bool, gates map[*types.Func]bool, flag func(pos token.Pos)) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ReturnStmt:
			if !seen && returnsNilError(pkg, st) {
				flag(st.Pos())
			}
		case *ast.BlockStmt:
			quorumScan(pkg, st.List, seen, gates, flag)
		case *ast.IfStmt:
			// A gate in the init or condition (`if err :=
			// q.WaitQuorum(...); err == nil`) dominates both branches.
			inner := seen
			if (st.Init != nil && containsWaitQuorum(pkg, st.Init, gates)) || containsWaitQuorum(pkg, st.Cond, gates) {
				inner = true
			}
			quorumScan(pkg, st.Body.List, inner, gates, flag)
			if st.Else != nil {
				quorumScan(pkg, []ast.Stmt{st.Else}, inner, gates, flag)
			}
		case *ast.ForStmt:
			quorumScan(pkg, st.Body.List, seen, gates, flag)
		case *ast.RangeStmt:
			quorumScan(pkg, st.Body.List, seen, gates, flag)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					quorumScan(pkg, cc.Body, seen, gates, flag)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					quorumScan(pkg, cc.Body, seen, gates, flag)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					quorumScan(pkg, cc.Body, seen, gates, flag)
				}
			}
		case *ast.LabeledStmt:
			quorumScan(pkg, []ast.Stmt{st.Stmt}, seen, gates, flag)
		}
		if containsWaitQuorum(pkg, st, gates) {
			seen = true
		}
	}
	return seen
}

// returnsNilError reports whether ret's final result — assumed the error
// slot, per funcLastResultIsError on the enclosing function — is the
// predeclared nil.
func returnsNilError(pkg *Package, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	tv, ok := pkg.Info.Types[ret.Results[len(ret.Results)-1]]
	return ok && tv.IsNil()
}

// containsWaitQuorum reports whether n's subtree calls a method named
// WaitQuorum — the quorum gate, whether through the QuorumWaiter
// interface or a concrete node — or a same-package gate function that
// provably wraps one (see gateFuncs).
func containsWaitQuorum(pkg *Package, n ast.Node, gates map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pkg, call); fn != nil && (fn.Name() == "WaitQuorum" || gates[fn]) {
			found = true
			return false
		}
		return true
	})
	return found
}
