package lint

import (
	"go/token"
	"sort"
)

// AnalyzerUnlockPath verifies release discipline: every classified lock or
// latch acquisition must be released — by a direct unlock or a registered
// `defer` — on every path out of the function: ordinary returns, error
// returns, explicit panics, and falling off the end.
//
// The check reads the converged held-set facts at each exit site. A held
// entry whose unlock is neither performed nor deferred by the time control
// leaves is reported at its acquisition site, naming the escaping exit.
// Functions that intentionally hand a held lock to their caller are not a
// pattern this codebase uses (the pool hands out pins, not latches); a
// genuine handoff would carry a `//qsvet:ignore unlockpath` with its
// protocol documented.
func AnalyzerUnlockPath() *Analyzer {
	return &Analyzer{
		Name: "unlockpath",
		Doc:  "every classified lock/latch acquisition must be released on every exit path (returns, error paths, panics)",
		Run:  runUnlockPath,
	}
}

func runUnlockPath(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	for _, fn := range s.funcs {
		// One report per acquisition site, naming the first leaking exit.
		leaked := map[token.Pos]exitSite{}
		for _, e := range fn.exits {
			for _, h := range e.held {
				if h.deferred {
					continue
				}
				if _, ok := leaked[h.pos]; !ok {
					leaked[h.pos] = e
				}
			}
		}
		if len(leaked) == 0 {
			continue
		}
		positions := make([]token.Pos, 0, len(leaked))
		for pos := range leaked {
			positions = append(positions, pos)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		for _, pos := range positions {
			e := leaked[pos]
			class := "lock"
			for _, h := range e.held {
				if h.pos == pos {
					class = h.class.name
					break
				}
			}
			report(pos, "%s acquired here is still held at %s: release it on every exit path (unlock or defer)",
				class, prog.exitDescription(e))
		}
	}
}
