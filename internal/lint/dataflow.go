package lint

import "go/ast"

// The generic forward-dataflow engine. An analysis supplies a lattice —
// an entry fact, a pure transfer function over the CFG's atomic nodes, a
// join (least upper bound) for merge points, and fact equality — and the
// engine runs a worklist to a fixed point. Facts are treated as immutable
// values: transfer and join return fresh facts (or share unmodified ones),
// never mutate their arguments, so a fact may safely flow along multiple
// edges.
//
// Blocks no fact reaches (dead code after return/panic, the body of a
// `for {}` that never breaks as seen from after the loop) keep a nil fact
// and are skipped by replayCFG. Joining with an unreached predecessor is
// the identity, which makes the same engine serve both may-analyses
// (union join, e.g. held lock sets) and must-analyses (intersection join,
// e.g. "a WAL force dominates this point"): an unreached edge contributes
// nothing, exactly the optimistic initialization a must-analysis wants.

// fact is one dataflow fact. nil means "unreached".
type fact interface{}

// lattice is one forward dataflow analysis.
type lattice interface {
	// entry is the fact at function entry.
	entry() fact
	// transfer applies one atomic CFG node to f, returning the fact after
	// it. It must be pure: no recording, no mutation of f.
	transfer(f fact, n ast.Node) fact
	// join combines two reaching facts at a merge point.
	join(a, b fact) fact
	// equal reports whether two facts are the same lattice point.
	equal(a, b fact) bool
}

// fixpoint runs lat over c to convergence and returns each block's
// converged entry and exit facts (indexed by block idx; nil = unreached).
func fixpoint(c *cfg, lat lattice) (in, out []fact) {
	n := len(c.blocks)
	in = make([]fact, n)
	out = make([]fact, n)
	if n == 0 {
		return in, out
	}
	in[0] = lat.entry()
	queued := make([]bool, n)
	work := []int{0}
	queued[0] = true
	for len(work) > 0 {
		idx := work[0]
		work = work[1:]
		queued[idx] = false
		b := c.blocks[idx]
		f := in[idx]
		for _, node := range b.nodes {
			f = lat.transfer(f, node)
		}
		out[idx] = f
		for _, s := range b.succs {
			var nf fact
			if in[s.idx] == nil {
				nf = f
			} else {
				nf = lat.join(in[s.idx], f)
			}
			if in[s.idx] == nil || !lat.equal(in[s.idx], nf) {
				in[s.idx] = nf
				if !queued[s.idx] {
					queued[s.idx] = true
					work = append(work, s.idx)
				}
			}
		}
	}
	return in, out
}

// replayCFG walks every reached block in creation order, invoking visit on
// each node with the converged fact holding *before* the node; visit
// returns the fact after the node (normally the lattice's own transfer,
// now with recording side effects). Recording happens here, once per
// node, after the fixpoint has settled.
func replayCFG(c *cfg, in []fact, visit func(f fact, n ast.Node) fact) {
	for i, b := range c.blocks {
		if in[i] == nil {
			continue
		}
		f := in[i]
		for _, node := range b.nodes {
			f = visit(f, node)
		}
	}
}
