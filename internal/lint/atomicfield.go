package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicFuncs is the sync/atomic call family whose first argument
// addresses the word being accessed atomically.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// AnalyzerAtomicField enforces atomic-access discipline: a field or
// variable that is accessed through sync/atomic anywhere must never be
// read or written with a plain load/store elsewhere — the mix is a data
// race the race detector only catches when the schedule cooperates
// (the server's stats counters are read while ops run, by design;
// see internal/esm/server.go). One level of address-passing is followed:
// a *int64 parameter used atomically inside its function marks `&x`
// arguments at that parameter's call sites as atomic words too.
//
// Composite-literal keys (zero-value construction before the value is
// shared) are exempt; everything else needs an atomic access or a
// `//qsvet:ignore atomicfield` directive with a reason.
func AnalyzerAtomicField() *Analyzer {
	return &Analyzer{
		Name: "atomicfield",
		Doc:  "flag plain reads/writes of fields and variables that are accessed via sync/atomic elsewhere",
		Run:  runAtomicField,
	}
}

// atomicParam identifies a pointer parameter used atomically inside its
// function: call sites passing &x to it make x an atomic word.
type atomicParam struct {
	fnID  string
	index int
}

func runAtomicField(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	atomicAt := map[types.Object]token.Pos{} // object -> first atomic access
	sanctioned := map[*ast.Ident]bool{}      // idents that ARE the atomic access
	params := map[types.Object]atomicParam{} // pointer param -> owner/index
	paramAtomic := map[string]map[int]bool{} // fnID -> param index used atomically

	// Stage 1: map every function's parameters, then find direct atomic
	// accesses (&x.f or &v as the address argument) and atomic pointer
	// parameters.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Type.Params == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							if _, isPtr := obj.Type().(*types.Pointer); isPtr {
								params[obj] = atomicParam{fnID: fn.FullName(), index: idx}
							}
						}
						idx++
					}
					if len(field.Names) == 0 {
						idx++
					}
				}
			}
		}
	}
	markAddr := func(pkg *Package, arg ast.Expr) {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			// A bare pointer argument: if it is an atomic pointer
			// parameter's use the object is tracked at its call sites.
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if p, isParam := params[pkg.Info.Uses[id]]; isParam {
					if paramAtomic[p.fnID] == nil {
						paramAtomic[p.fnID] = map[int]bool{}
					}
					paramAtomic[p.fnID][p.index] = true
				}
			}
			return
		}
		obj, id := addrTarget(pkg, un.X)
		if obj == nil {
			return
		}
		if _, seen := atomicAt[obj]; !seen {
			atomicAt[obj] = un.Pos()
		}
		sanctioned[id] = true
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := staticCallee(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
					return true
				}
				markAddr(pkg, call.Args[0])
				return true
			})
		}
	}

	// Stage 2: propagate through one level of address passing — `&x`
	// handed to a parameter that is used atomically marks x.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg, call)
				if fn == nil {
					return true
				}
				idxs := paramAtomic[fn.FullName()]
				if len(idxs) == 0 {
					return true
				}
				for i, arg := range call.Args {
					if !idxs[i] || i >= len(call.Args) {
						continue
					}
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj, id := addrTarget(pkg, un.X); obj != nil {
						if _, seen := atomicAt[obj]; !seen {
							atomicAt[obj] = un.Pos()
						}
						sanctioned[id] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return
	}

	// Stage 3: any other use of an atomic object is a plain access.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			skipKeys := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if cl, ok := n.(*ast.CompositeLit); ok {
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								skipKeys[id] = true
							}
						}
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] || skipKeys[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if first, isAtomic := atomicAt[obj]; isAtomic {
					report(id.Pos(), "plain access of %s, which is accessed atomically (e.g. at %s): use sync/atomic consistently",
						obj.Name(), prog.PosString(first))
				}
				return true
			})
		}
	}
}

// addrTarget resolves the operand of a & expression to the object being
// addressed (a struct field or a variable) and the identifier naming it.
func addrTarget(pkg *Package, expr ast.Expr) (types.Object, *ast.Ident) {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[expr]; ok {
			return selInfo.Obj(), expr.Sel
		}
		return pkg.Info.Uses[expr.Sel], expr.Sel
	case *ast.Ident:
		return pkg.Info.Uses[expr], expr
	}
	return nil, nil
}
