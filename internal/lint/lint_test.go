package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden files")

// fixtureRun loads one testdata mini-module and runs a single analyzer.
func fixtureRun(t *testing.T, fixture string, analyzer *Analyzer) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	prog, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{analyzer})
	RelativeTo(diags, prog.Root)
	return diags
}

// checkGolden compares diagnostics against the fixture's golden.txt,
// rewriting it under -update.
func checkGolden(t *testing.T, fixture string, diags []Diagnostic) {
	t.Helper()
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "src", fixture, "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", fixture, got, want)
	}
}

// Each fixture demonstrates at least one caught violation, at least one
// clean (negative) function, and one finding suppressed by a
// //qsvet:ignore directive; the golden file is the caught set.
func TestGoldenFixtures(t *testing.T) {
	fixtures := map[string]*Analyzer{
		// The lockorder and latchio goldens predate the CFG dataflow
		// engine: passing unchanged, they are the regression proof that
		// the port reproduces the syntactic walker's findings.
		"lockorder":    AnalyzerLockOrder(),
		"latchio":      AnalyzerLatchIO(),
		"atomicfield":  AnalyzerAtomicField(),
		"mustcheck":    AnalyzerMustCheck(),
		"crashpoint":   AnalyzerCrashPoint(),
		"quorumack":    AnalyzerQuorumAck(),
		"snapread":     AnalyzerSnapRead(),
		"shardmap":     AnalyzerShardMap(),
		"unlockpath":   AnalyzerUnlockPath(),
		"guardedfield": AnalyzerGuardedField(),
		"ackorder":     AnalyzerAckOrder(),
		// Divergent held-sets at a merge are a lockorder finding of the
		// path-sensitive engine; this fixture exists only on it.
		"lockdiverge": AnalyzerLockOrder(),
	}
	for fixture, analyzer := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			diags := fixtureRun(t, fixture, analyzer)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings; each analyzer must demonstrate a caught violation", fixture)
			}
			for _, d := range diags {
				if d.Check != analyzer.Name {
					t.Errorf("diagnostic from wrong check %q: %s", d.Check, d)
				}
			}
			checkGolden(t, fixture, diags)
		})
	}
}

// The suppression directive itself must be doing the work: running the
// mustcheck fixture, the suppressed() function's discard never appears.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	diags := fixtureRun(t, "mustcheck", AnalyzerMustCheck())
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "srv.go") && d.Pos.Line >= 29 {
			t.Errorf("finding inside suppressed(): %s", d)
		}
	}
}

// A directive that suppresses nothing is itself a finding — when the run
// included every check it names.
func TestStaleIgnoreAudit(t *testing.T) {
	prog, err := LoadModule(filepath.Join("testdata", "src", "staleignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())
	RelativeTo(diags, prog.Root)
	if len(diags) != 1 {
		t.Fatalf("want exactly the stale directive finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "staleignore" || !strings.Contains(d.Pos.Filename, "srv.go") {
		t.Errorf("unexpected finding: %s", d)
	}
}

// The audit keeps quiet when the run could not judge the directive: a
// `-checks` subset that skips the named check must not call it stale.
func TestStaleIgnoreSkipsUnjudgedChecks(t *testing.T) {
	prog, err := LoadModule(filepath.Join("testdata", "src", "staleignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{AnalyzerLockOrder()})
	if len(diags) != 0 {
		t.Errorf("directive naming mustcheck judged by a lockorder-only run: %v", diags)
	}
}

// The real module must be qsvet-clean: every true positive is fixed and
// every deliberate discard carries a directive. This is the same gate CI
// runs via `go run ./cmd/qsvet ./...`.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	prog, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())
	RelativeTo(diags, prog.Root)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
