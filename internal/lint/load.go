package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string // import path (modulePath + "/" + dir)
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole module: every non-test package, type-checked in
// dependency order against real stdlib type information (imported from
// source, so no compiled export data is required).
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string // module root directory
	Packages   []*Package
	ByPath     map[string]*Package

	ignores map[string]map[int]*ignoreDirective // filename -> line -> directive
}

// IsModulePackage reports whether path names a package inside the loaded
// module.
func (p *Program) IsModulePackage(path string) bool {
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// PosString renders pos with the filename relative to the module root, so
// positions embedded in diagnostic messages are stable across machines.
func (p *Program) PosString(pos token.Pos) string {
	position := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.Root, position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		position.Filename = filepath.ToSlash(rel)
	}
	return position.String()
}

// LoadModule parses and type-checks every non-test package under root
// (which must contain go.mod). Test files, testdata, vendor, and hidden
// directories are skipped; nested modules (a go.mod below root) are
// skipped too, so analyzer fixtures never leak into a real run.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		Root:       root,
		ByPath:     map[string]*Package{},
		ignores:    map[string]map[int]*ignoreDirective{},
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	// Parse everything first so import edges are known before type-checking.
	parsed := map[string]*Package{} // import path -> package with Files
	for _, dir := range dirs {
		pkg, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable non-test Go files
		}
		parsed[pkg.Path] = pkg
	}
	order, err := topoSort(parsed, modPath)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(prog.Fset, "source", nil)
	imp := &progImporter{prog: prog, std: std}
	for _, path := range order {
		pkg := parsed[path]
		if err := prog.check(pkg, imp); err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkg.Path] = pkg
	}
	return prog, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks root collecting directories that may hold Go packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module (fixtures).
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory, returning nil if
// it holds none. Ignore directives are harvested here so the driver can
// filter findings without re-parsing.
func (p *Program) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(p.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		if dirs := parseIgnoreDirectives(p.Fset, f); dirs != nil {
			p.ignores[full] = dirs
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return nil, err
	}
	path := p.ModulePath
	if rel != "." {
		path = p.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Dir: dir, Files: files}, nil
}

// moduleImports lists pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders the parsed packages so every module-internal import is
// type-checked before its importer.
func topoSort(parsed map[string]*Package, modPath string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range moduleImports(parsed[path], modPath) {
			if _, ok := parsed[dep]; !ok {
				continue // missing dep surfaces as a type error later
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for path := range parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one parsed package, filling Types and Info.
func (p *Program) check(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, p.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %v", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// progImporter resolves module-internal imports from the loaded program
// and everything else (the standard library) from source via go/importer.
type progImporter struct {
	prog *Program
	std  types.Importer
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if i.prog.IsModulePackage(path) {
		pkg, ok := i.prog.ByPath[path]
		if !ok {
			return nil, fmt.Errorf("lint: module package %s not loaded (import order bug?)", path)
		}
		return pkg.Types, nil
	}
	return i.std.Import(path)
}
