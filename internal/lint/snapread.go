package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// snapRoots names the snapshot-read entry points: the esm server's
// snapshot-session handlers and the repl follower's point-in-time read
// path. Everything statically reachable from these functions must stay off
// the lock manager — lock-freedom for readers is the MVCC contract
// (DESIGN.md §15), and one stray Acquire reintroduces reader/writer
// convoys the whole subsystem exists to remove.
var snapRoots = map[string]map[string]bool{
	"internal/esm":  {"beginSnapshot": true, "snapRead": true, "endSnapshot": true},
	"internal/repl": {"handleSnapBegin": true, "handleSnapRead": true, "snapReadPage": true},
}

// lockAcquireFuncs are the lock.Manager methods that grant locks.
var lockAcquireFuncs = map[string]bool{
	"Acquire": true, "TryAcquire": true,
}

// AnalyzerSnapRead enforces the snapshot-read lock-freedom rule: no
// function on a snapshot-read server path may call, or statically reach,
// (*lock.Manager).Acquire or TryAcquire. Dynamic calls (function values,
// the pool's FlushFn field) are outside the static call graph and are not
// followed.
func AnalyzerSnapRead() *Analyzer {
	return &Analyzer{
		Name: "snapread",
		Doc:  "flag snapshot-read paths that can reach lock.Manager acquisition: MVCC readers must never touch the lock manager",
		Run:  runSnapRead,
	}
}

func runSnapRead(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	reach := s.transitiveLockAcquire(prog)
	for _, fn := range s.funcs {
		if fn.id == "" || fn.pkg == nil || !isSnapRoot(prog, fn) {
			continue
		}
		for _, cs := range fn.calls {
			if isLockAcquire(prog, cs.callee) {
				report(cs.pos, "snapshot-read path %s calls %s: MVCC readers must never touch the lock manager",
					fn.name, displayName(cs.id))
				continue
			}
			if reach[cs.id] != nil {
				report(cs.pos, "snapshot-read path %s can reach lock acquisition (%s): MVCC readers must never touch the lock manager",
					fn.name, lockChain(reach, cs.id))
			}
		}
	}
}

// isSnapRoot reports whether fn is one of the named snapshot-read entry
// points, matched by module-relative package path and bare function name.
func isSnapRoot(prog *Program, fn *funcNode) bool {
	path := fn.pkg.Types.Path()
	for suffix, names := range snapRoots {
		if path != prog.ModulePath+"/"+suffix {
			continue
		}
		name := fn.name
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		if names[name] {
			return true
		}
	}
	return false
}

// isLockAcquire reports whether fn is a lock.Manager grant method.
func isLockAcquire(prog *Program, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == prog.ModulePath+"/internal/lock" && lockAcquireFuncs[fn.Name()]
}

// transitiveLockAcquire computes which functions can reach a lock.Manager
// grant through the static call graph, with a witness for diagnostics.
func (s *summaries) transitiveLockAcquire(prog *Program) map[string]*witness {
	reach := map[string]*witness{}
	for _, fn := range s.funcs {
		if fn.id == "" {
			continue
		}
		for _, cs := range fn.calls {
			if isLockAcquire(prog, cs.callee) {
				reach[fn.id] = &witness{pos: cs.pos, direct: displayName(cs.id)}
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" || reach[fn.id] != nil {
				continue
			}
			for _, cs := range fn.calls {
				if reach[cs.id] != nil {
					reach[fn.id] = &witness{via: cs.id, pos: cs.pos}
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// lockChain renders the witness path from id down to the grant call.
func lockChain(reach map[string]*witness, id string) string {
	path := displayName(id)
	for i := 0; i < 10; i++ {
		w := reach[id]
		if w == nil {
			break
		}
		if w.via == "" {
			path += " → " + w.direct
			break
		}
		id = w.via
		path += " → " + displayName(id)
	}
	return path
}
