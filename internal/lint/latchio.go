package lint

import (
	"go/token"
	"go/types"
)

// ioFuncs lists the functions that perform (or force) disk and log I/O:
// page reads/writes and volume metadata operations in internal/disk, and
// the flush/force family in internal/wal. Interface methods count — a call
// through disk.Volume is I/O no matter the implementation behind it.
var ioFuncs = map[string]map[string]bool{
	"internal/disk": {
		"ReadPage": true, "WritePage": true, "Sync": true,
		"Grow": true, "Allocate": true, "Free": true,
	},
	"internal/wal": {
		"Flush": true, "FlushTo": true, "FlushCommit": true,
		"Truncate": true, "Recover": true,
	},
}

// AnalyzerLatchIO enforces PR 3's buffer-pool rule: all disk and log I/O
// happens with no pool latch held (internal/buffer/latch.go — demand loads
// and eviction write-backs run outside the stripe latch, with per-page
// in-flight dedup standing in for the latch). A call made while a stripe
// latch or frame content latch is held is flagged if it is, or can
// statically reach, a disk/wal I/O function. Dynamic calls (the pool's
// FlushFn field, closures passed as parameters) are outside the static
// call graph and are not followed.
func AnalyzerLatchIO() *Analyzer {
	return &Analyzer{
		Name: "latchio",
		Doc:  "flag calls that can reach internal/disk or internal/wal I/O while a buffer-pool latch is held",
		Run:  runLatchIO,
	}
}

func runLatchIO(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	reach := s.transitiveIO(prog)
	for _, fn := range s.funcs {
		for _, cs := range fn.calls {
			var latch *heldLock
			for i := range cs.held {
				if cs.held[i].class.latch {
					latch = &cs.held[i]
					break
				}
			}
			if latch == nil {
				continue
			}
			if isIOFunc(prog, cs.callee) {
				report(cs.pos, "call to %s performs disk/wal I/O while %s is held: all I/O must run outside pool latches",
					displayName(cs.id), latch.class.name)
				continue
			}
			if w := reach[cs.id]; w != nil {
				report(cs.pos, "call to %s can reach disk/wal I/O (%s) while %s is held: all I/O must run outside pool latches",
					displayName(cs.id), ioChain(reach, cs.id), latch.class.name)
			}
		}
	}
}

// isIOFunc reports whether fn is a direct disk/wal I/O function.
func isIOFunc(prog *Program, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for suffix, names := range ioFuncs {
		if path == prog.ModulePath+"/"+suffix && names[fn.Name()] {
			return true
		}
	}
	return false
}

// transitiveIO computes which functions can reach an I/O call through the
// static call graph, with a witness for diagnostics.
func (s *summaries) transitiveIO(prog *Program) map[string]*witness {
	reach := map[string]*witness{}
	for _, fn := range s.funcs {
		if fn.id == "" {
			continue
		}
		for _, cs := range fn.calls {
			if isIOFunc(prog, cs.callee) {
				reach[fn.id] = &witness{pos: cs.pos, direct: displayName(cs.id)}
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.funcs {
			if fn.id == "" || reach[fn.id] != nil {
				continue
			}
			for _, cs := range fn.calls {
				if reach[cs.id] != nil {
					reach[fn.id] = &witness{via: cs.id, pos: cs.pos}
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// ioChain renders the witness path from id down to the I/O call.
func ioChain(reach map[string]*witness, id string) string {
	path := displayName(id)
	for i := 0; i < 10; i++ {
		w := reach[id]
		if w == nil {
			break
		}
		if w.via == "" {
			path += " → " + w.direct
			break
		}
		id = w.via
		path += " → " + displayName(id)
	}
	return path
}
