// Package lint is qsvet's analysis engine: a pure-stdlib (go/ast,
// go/parser, go/types, go/importer) driver that loads every package in the
// module and runs project-specific analyzers over the type-checked source.
//
// The analyzers enforce the invariants the storage manager's correctness
// hangs on but no general-purpose tool checks — the documented lock order
// (DESIGN.md §10: catMu → mu → wal/volume, latches apart from both), the
// "all disk I/O outside latches" rule, atomic-access discipline on stats
// counters, unchecked errors on durability-critical calls, the crash
// point registry (internal/faultinject/points.go), and the replicated
// commit path's quorum-before-ack rule (DESIGN.md §14). Each finding is
// emitted
// as `file:line: [check] message`; a `//qsvet:ignore check reason`
// directive on (or immediately above) the flagged line suppresses it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the driver's one-line output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Analyzer is one qsvet check. Run inspects the whole program (analyses
// like lockorder and latchio follow calls across packages) and reports
// findings through report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report func(pos token.Pos, format string, args ...interface{}))
}

// Analyzers is the qsvet check suite in output order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerLockOrder(),
		AnalyzerLatchIO(),
		AnalyzerAtomicField(),
		AnalyzerMustCheck(),
		AnalyzerCrashPoint(),
		AnalyzerQuorumAck(),
		AnalyzerSnapRead(),
		AnalyzerShardMap(),
		AnalyzerUnlockPath(),
		AnalyzerGuardedField(),
		AnalyzerAckOrder(),
	}
}

// AnalyzerNames returns the names of every registered analyzer.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// RunAnalyzers executes the given analyzers over prog and returns the
// surviving diagnostics, sorted by position: findings on lines carrying a
// `//qsvet:ignore` directive naming the check (or `all`) are dropped, as
// are findings whose preceding line is such a directive comment.
//
// Suppression is audited: a directive that suppressed nothing — though
// every check it names was part of this run — is itself reported as a
// `staleignore` finding, so outdated exemptions rot out of the tree
// instead of silently disarming future findings. Directives naming checks
// outside the run (a `-checks` subset, a single-analyzer fixture run) are
// left alone: the run could not have told whether they still suppress.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		report := func(pos token.Pos, format string, args ...interface{}) {
			diags = append(diags, Diagnostic{
				Pos:     prog.Fset.Position(pos),
				Check:   name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		a.Run(prog, report)
	}
	for _, dirs := range prog.ignores {
		for _, dir := range dirs {
			dir.fired = false
		}
	}
	diags = prog.filterIgnored(diags)
	diags = append(diags, prog.staleIgnores(analyzers)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreDirective is one parsed `//qsvet:ignore check[,check...] reason`
// comment. Checks holds the named checks ("all" matches every check).
type ignoreDirective struct {
	checks []string
	line   int
	fired  bool // suppressed at least one finding in the current run
}

func (d *ignoreDirective) matches(check string) bool {
	for _, c := range d.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

const ignorePrefix = "//qsvet:ignore"

// parseIgnoreDirectives scans a file's comments for qsvet:ignore
// directives, keyed by the line they occupy.
func parseIgnoreDirectives(fset *token.FileSet, f *ast.File) map[int]*ignoreDirective {
	var out map[int]*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue // malformed: no check named; directive inert
			}
			d := &ignoreDirective{
				checks: strings.Split(fields[0], ","),
				line:   fset.Position(c.Pos()).Line,
			}
			if out == nil {
				out = map[int]*ignoreDirective{}
			}
			out[d.line] = d
		}
	}
	return out
}

// filterIgnored drops diagnostics suppressed by an ignore directive on the
// same line or on the line directly above.
func (p *Program) filterIgnored(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		dirs := p.ignores[d.Pos.Filename]
		if dir := dirs[d.Pos.Line]; dir != nil && dir.matches(d.Check) {
			dir.fired = true
			continue
		}
		if dir := dirs[d.Pos.Line-1]; dir != nil && dir.matches(d.Check) {
			dir.fired = true
			continue
		}
		out = append(out, d)
	}
	return out
}

// staleIgnores reports directives that suppressed nothing, restricted to
// those this run was competent to judge: every check the directive names
// must have run ("all" requires the full registered suite). staleignore
// findings are not themselves suppressible — a directive cannot vouch for
// its own continued relevance.
func (p *Program) staleIgnores(analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, name := range AnalyzerNames() {
		if !ran[name] {
			fullSuite = false
			break
		}
	}
	var out []Diagnostic
	for file, dirs := range p.ignores {
		for _, dir := range dirs {
			if dir.fired {
				continue
			}
			judged := true
			for _, c := range dir.checks {
				if c == "all" && !fullSuite || c != "all" && !ran[c] {
					judged = false
					break
				}
			}
			if !judged {
				continue
			}
			out = append(out, Diagnostic{
				Pos:     token.Position{Filename: file, Line: dir.line, Column: 1},
				Check:   "staleignore",
				Message: fmt.Sprintf("directive suppresses no finding of %s: delete it (stale exemptions disarm future findings)", strings.Join(dir.checks, ", ")),
			})
		}
	}
	return out
}

// RelativeTo rewrites diagnostic filenames relative to dir (best effort;
// unrelatable paths are left absolute).
func RelativeTo(diags []Diagnostic, dir string) {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}
