package lint

import "go/token"

// AnalyzerLockOrder enforces the documented lock hierarchy of the page
// server (internal/esm/server.go, DESIGN.md §10):
//
//	catMu → mu → (wal.Log.mu | volume lock) → lock manager → leaves
//
// with the buffer pool's latches (stripe latches, frame content latches)
// standing apart from the server locks: a latch may never be acquired
// while mu or catMu is held, and neither server lock may be acquired
// while a latch is held (the pool's FlushFn may take the WAL and volume
// locks under a content latch, which the ranks permit).
//
// The check builds a per-function lock-acquisition summary — a linear
// source-order walk that tracks the held set through Lock/Unlock pairs —
// and propagates acquisitions through the static call graph, so a
// function that calls a helper which takes catMu while the caller holds
// mu is flagged at the call site. Re-entrant acquisition of the same
// classified lock is flagged as a deadlock.
func AnalyzerLockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "enforce the documented lock order (catMu → mu → wal/volume; latches apart from server locks) and flag re-entrant acquisitions",
		Run:  runLockOrder,
	}
}

func runLockOrder(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	s := summarize(prog)
	trans := s.transitiveAcquires()
	for _, fn := range s.funcs {
		// Direct acquisitions inside this function.
		for _, a := range fn.acquires {
			for _, h := range a.held {
				if msg := lockPairViolation(h.class, a.class, h.obj == a.obj); msg != "" {
					report(a.pos, "acquires %s while holding %s: %s", a.class.name, h.class.name, msg)
				}
			}
		}
		// Merge points where the branches disagree on what is held: one
		// path arrives still holding a lock another path has already
		// released (or arranged to release) — the signature of a branch
		// that leaked its unlock.
		for _, d := range fn.diverges {
			report(d.pos, "control-flow paths merge here with divergent held locks (%s vs %s): every path into a join must agree on what is held", d.a, d.b)
		}
		// Acquisitions reached through calls made with locks held.
		for _, cs := range fn.calls {
			if len(cs.held) == 0 {
				continue
			}
			reported := map[*lockClass]bool{}
			for class := range trans[cs.id] {
				if reported[class] {
					continue
				}
				for _, h := range cs.held {
					// Re-entrancy across calls compares classes: distinct
					// instances of one class are indistinguishable statically.
					if msg := lockPairViolation(h.class, class, h.class == class); msg != "" {
						reported[class] = true
						report(cs.pos, "call to %s acquires %s (path %s) while holding %s: %s",
							displayName(cs.id), class.name,
							chain(trans, cs.id, class, displayName), h.class.name, msg)
						break
					}
				}
			}
		}
	}
}

// lockPairViolation evaluates acquiring `next` while `held` is held.
// It returns a non-empty explanation when the pair breaks the hierarchy.
func lockPairViolation(held, next *lockClass, sameLock bool) string {
	switch {
	case sameLock:
		return "re-entrant acquisition deadlocks (sync mutexes are not recursive)"
	case next.latch && held.server:
		return "pool latches must be taken with neither mu nor catMu held (DESIGN.md §10)"
	case next.server && held.latch:
		return "the server locks must never be taken under a pool latch (steal write-backs take wal/volume only)"
	case next.rank < held.rank:
		return "documented order is catMu → mu → wal/volume → lock manager → leaves"
	}
	return ""
}
