package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// planePointFuncs are the faultinject.Plane methods whose first argument
// names a crash point. Hit and hitLocked are the liveness sites: a
// registered point no Hit reaches is dead instrumentation.
var planePointFuncs = map[string]bool{
	"Hit": true, "hitLocked": true, "ArmCrash": true, "ArmTransient": true, "Hits": true,
}

var planeHitFuncs = map[string]bool{"Hit": true, "hitLocked": true}

// AnalyzerCrashPoint enforces the crash-point registry discipline
// (internal/faultinject/points.go, generated — see gen/main.go):
//
//   - a constant point name passed to Plane.Hit/ArmCrash/ArmTransient/Hits
//     must be one of the registry's Pt* constants; an unknown name is a
//     typo that silently never fires (the drill would "pass" by testing
//     nothing);
//   - raw string literals spelling a registered point name — at those
//     calls or anywhere else outside internal/faultinject — must use the
//     Pt* constant instead, so renames stay mechanical;
//   - every registered point must be Hit somewhere: a point that is armed
//     by drills but never hit is dead instrumentation and the drill matrix
//     silently skips the state it claims to cover.
//
// Dynamic point expressions (DrillOpts.Point, AllPoints() iteration) are
// not checkable and pass through.
func AnalyzerCrashPoint() *Analyzer {
	return &Analyzer{
		Name: "crashpoint",
		Doc:  "crash-point names must be registry constants: flag typos, raw literals, and dead points",
		Run:  runCrashPoint,
	}
}

func runCrashPoint(prog *Program, report func(pos token.Pos, format string, args ...interface{})) {
	registryPkg := prog.ModulePath + "/internal/faultinject"
	fi := prog.ByPath[registryPkg]
	if fi == nil {
		return // module has no fault plane (partial fixtures)
	}
	// The registry: package-level Pt* string constants.
	constName := map[string]string{}      // point value -> const name
	constPos := map[string]token.Pos{}    // point value -> declaration
	constObj := map[types.Object]string{} // const object -> point value
	scope := fi.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Pt") || c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		constName[v] = name
		constPos[v] = c.Pos()
		constObj[c] = v
	}
	if len(constName) == 0 {
		return
	}

	live := map[string]bool{}       // point value -> reached by a Hit
	handled := map[token.Pos]bool{} // literal positions already diagnosed
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := staticCallee(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != registryPkg ||
					!planePointFuncs[fn.Name()] || recvTypeName(fn) != "Plane" {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				tv, ok := pkg.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // dynamic point: not statically checkable
				}
				v := constant.StringVal(tv.Value)
				handled[arg.Pos()] = true
				name, registered := constName[v]
				if !registered {
					report(arg.Pos(), "unknown crash point %q: not a registered Pt* constant (internal/faultinject/points.go) — typos here silently never fire", v)
					return true
				}
				if planeHitFuncs[fn.Name()] {
					live[v] = true
				}
				if !usesRegistryConst(pkg, arg, constObj) {
					report(arg.Pos(), "crash point %q spelled as a raw string: use faultinject.%s so renames stay mechanical", v, name)
				}
				return true
			})
		}
	}

	// Raw registry names anywhere else outside the registry package.
	for _, pkg := range prog.Packages {
		if pkg.Path == registryPkg || strings.HasPrefix(pkg.Path, registryPkg+"/") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING || handled[lit.Pos()] {
					return true
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if name, registered := constName[v]; registered {
					report(lit.Pos(), "crash point %q spelled as a raw string: use faultinject.%s", v, name)
				}
				return true
			})
		}
	}

	for v, name := range constName {
		if !live[v] {
			report(constPos[v], "crash point %s (%q) is registered but never hit: dead instrumentation the drill matrix silently skips", name, v)
		}
	}
}

// usesRegistryConst reports whether arg is (a reference to) one of the
// registry constants, rather than an equal-valued literal or local const.
func usesRegistryConst(pkg *Package, arg ast.Expr, constObj map[types.Object]string) bool {
	switch arg := arg.(type) {
	case *ast.Ident:
		_, ok := constObj[pkg.Info.Uses[arg]]
		return ok
	case *ast.SelectorExpr:
		_, ok := constObj[pkg.Info.Uses[arg.Sel]]
		return ok
	}
	return false
}
