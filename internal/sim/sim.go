// Package sim provides the deterministic cost model and event counters that
// stand in for the 1994 hardware used in the QuickStore paper (Sun IPX
// server, Sparc ELC client, Ethernet, SunOS 4.1.3).
//
// Every component the paper times — disk reads at the server, page-shipping
// over the network, page-fault traps, mmap protection changes, pointer
// swizzling, page diffing, log forcing — is counted for real by the storage
// and object layers and charged a calibrated per-event cost in microseconds.
// The resulting simulated clock reproduces the *shape* of the paper's
// results (who wins, by what factor, where crossovers fall) deterministically
// on modern hardware, where real wall-clock times would be six orders of
// magnitude off and dominated by noise.
//
// Calibration targets are the paper's Table 5 (average cost per fault) and
// Table 6 (detailed QuickStore fault-cost breakdown).
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter identifies one class of costed (or merely counted) event.
type Counter int

// The counter space. Counters marked (costed) carry a nonzero default cost
// in DefaultCostModel; the rest are bookkeeping used by the experiment
// harness and tests.
const (
	// Client/server I/O path.
	CtrClientRead      Counter = iota // client page read requests sent to the server (the paper's "client I/O requests")
	CtrClientWrite                    // dirty pages shipped to the server at commit
	CtrServerDiskRead                 // server buffer misses that hit the disk (costed)
	CtrServerBufferHit                // server buffer hits: network + server CPU only (costed)
	CtrServerDiskWrite                // server page write-backs (costed)

	// Virtual-memory machinery (QuickStore side).
	CtrPageFaultTrap // protection violations delivered to the fault handler (costed)
	CtrMinFault      // faults that need no I/O; models the ELC's virtually-mapped cache flushes (costed)
	CtrMmapCall      // protection/mapping changes, the paper's mmap system calls (costed)
	CtrMapEntry      // mapping-object entries processed during swizzling (costed)
	CtrMapObjectRead // pages of mapping objects fetched (counted; I/O is charged via CtrClientRead path)
	CtrBitmapRead    // bitmap objects fetched when swizzling is required
	CtrSwizzledPtr   // pointers actually rewritten because of a frame collision (costed)
	CtrMiscFaultCPU  // per-fault residency checks / table lookups (costed)

	// Software (EPVM) machinery.
	CtrInterpCall     // EPVM interpreter entries: unswizzled dereference or update (costed)
	CtrResidencyCheck // inline residency checks on swizzled pointers (costed)
	CtrBigPtrDeref    // 16-byte OID dereferences, dearer than an 8-byte load (costed)

	// Recovery and commit path.
	CtrRecoveryCopy    // pages copied into the recovery buffer on first write fault (costed)
	CtrLockUpgrade     // exclusive page-lock acquisitions on first update (costed)
	CtrPageDiff        // pages diffed against their recovery-buffer copy (costed)
	CtrDiffByte        // bytes compared while diffing (costed)
	CtrLogRecord       // log records generated (costed: ESM call + ~50B header)
	CtrLogByte         // log payload bytes written
	CtrMapUpdate       // mapping objects recomputed for modified pages (costed)
	CtrCommitFlushPage // dirty pages forced to the server at commit (costed)
	CtrSideBufferCopy  // EPVM object copies into the side buffer (costed)

	// Asynchronous prefetch subsystem (internal/prefetch). The prefetcher's
	// work overlaps with client computation, so none of these carry a
	// foreground cost in the default model: a consumed prefetched page is
	// charged the network + server CPU leg of its transfer (via
	// CtrServerBufferHit) at consumption time, while the background disk
	// reads behind it are counted here without advancing the clock.
	CtrPrefetchIssued   // pages handed to the prefetcher (enqueued into a batch)
	CtrPrefetchBatch    // batched OpReadPages round trips issued
	CtrPrefetchHit      // faults satisfied by a pre-read frame (no server round trip)
	CtrPrefetchWasted   // pre-read frames evicted or dropped before any use
	CtrPrefetchDiskRead // background server disk reads on behalf of prefetch batches

	// Application-level work, used for the hot (in-memory) results and the
	// Table 7 CPU profile.
	CtrDeref      // pointer dereferences performed by the application
	CtrFieldRead  // scalar field reads
	CtrFieldWrite // scalar field writes
	CtrIterAlloc  // transient iterator objects allocated (the paper's malloc bucket)
	CtrPartSetOp  // visited-set operations (the paper's "part set" bucket)
	CtrIndexOp    // B-tree operations
	CtrByteScan   // single-character accesses to large objects (T8/T9)

	NumCounters // sentinel
)

var counterNames = [NumCounters]string{
	"client.read", "client.write", "server.disk.read", "server.buffer.hit", "server.disk.write",
	"vm.fault.trap", "vm.fault.min", "vm.mmap", "vm.map.entry", "vm.map.read", "vm.bitmap.read",
	"vm.swizzled.ptr", "vm.fault.misc",
	"sw.interp.call", "sw.residency.check", "sw.bigptr.deref",
	"rec.copy", "rec.lock.upgrade", "rec.page.diff", "rec.diff.byte", "rec.log.record",
	"rec.log.byte", "rec.map.update", "rec.commit.flush", "rec.side.copy",
	"pf.issued", "pf.batch", "pf.hit", "pf.wasted", "pf.disk.read",
	"app.deref", "app.field.read", "app.field.write", "app.iter.alloc", "app.part.set",
	"app.index.op", "app.byte.scan",
}

// String returns the stable dotted name of the counter.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// CostModel maps each counter to a cost in microseconds per event. A zero
// cost means the event is counted but free; the harness still reports it.
type CostModel [NumCounters]float64

// DefaultCostModel is calibrated against the paper's Tables 5 and 6:
// a cold QuickStore fault during T1 costs ~29-30ms, of which data I/O is
// ~82-85%, mapping I/O ~3.5%, the trap ~2-3%, mmap ~3%, min faults ~5-6%,
// and swizzling 1-2%; an E fault costs ~20% less (no map I/O, no trap, no
// mmap, no min fault). Update-path costs come from Section 5.2's detailed
// T2A measurements (7.3ms recovery copy, 2.8ms lock upgrade, 0.9ms mmap,
// 6.7-12.9ms page diff).
func DefaultCostModel() CostModel {
	var m CostModel
	m[CtrServerDiskRead] = 21500 // disk seek+read at the server
	m[CtrServerBufferHit] = 3300 // network round trip + server CPU, no disk
	m[CtrServerDiskWrite] = 9000 // asynchronous-ish write-back at the server
	m[CtrPageFaultTrap] = 500    // detect the illegal access, enter the handler
	m[CtrMinFault] = 800         // virtually-mapped CPU cache flush (Section 3.2)
	m[CtrMmapCall] = 800         // one mmap protection change
	m[CtrMapEntry] = 18          // process one mapping-object entry (lookup/create)
	m[CtrSwizzledPtr] = 25       // locate the moved range and rewrite one pointer
	m[CtrMiscFaultCPU] = 800     // table lookup, residency/status checks per fault
	m[CtrInterpCall] = 3         // one EPVM interpreter entry
	m[CtrResidencyCheck] = 0.25  // inline residency check on a swizzled pointer
	m[CtrBigPtrDeref] = 0.3      // extra cost of following a 16-byte OID
	m[CtrRecoveryCopy] = 7300    // copy one page's objects into the recovery buffer
	m[CtrLockUpgrade] = 2800     // obtain an exclusive page lock from ESM
	m[CtrPageDiff] = 4000        // fixed per-page diff overhead
	m[CtrDiffByte] = 0.33        // per-byte compare while diffing (8K page ≈ 2.7ms)
	m[CtrLogRecord] = 370        // ESM log-record call incl. ~50-byte header
	m[CtrLogByte] = 0.09         // per-byte log payload cost
	m[CtrMapUpdate] = 7200       // recompute + rewrite one page's mapping object
	m[CtrCommitFlushPage] = 7500 // force one dirty page (and its log) to the server
	m[CtrSideBufferCopy] = 450   // EPVM copies one object into its side buffer
	m[CtrDeref] = 0.08           // raw in-memory dereference (both systems, hot)
	m[CtrFieldRead] = 0.05
	m[CtrFieldWrite] = 0.06
	m[CtrIterAlloc] = 22  // heap-allocate one iterator (1994 malloc; Table 7's dominant bucket)
	m[CtrPartSetOp] = 9   // insert/lookup in the visited-part set
	m[CtrIndexOp] = 95    // one B-tree lookup/insert (in memory)
	m[CtrByteScan] = 0.09 // one character access through a plain pointer
	return m
}

// Clock is a deterministic simulated clock: events are counted and charged
// model costs; Elapsed is the sum. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	model  CostModel
	counts [NumCounters]int64
	micros [NumCounters]float64
	extra  float64 // uncategorised microseconds added via AddMicros
}

// NewClock returns a clock using the given cost model.
func NewClock(model CostModel) *Clock {
	return &Clock{model: model}
}

// Charge records n events of class c and advances the clock by n times the
// model cost of c.
func (k *Clock) Charge(c Counter, n int64) {
	if n == 0 {
		return
	}
	k.mu.Lock()
	k.counts[c] += n
	k.micros[c] += float64(n) * k.model[c]
	k.mu.Unlock()
}

// AddMicros advances the clock by us microseconds without counting an event.
func (k *Clock) AddMicros(us float64) {
	k.mu.Lock()
	k.extra += us
	k.mu.Unlock()
}

// Count returns the number of events recorded for c.
func (k *Clock) Count(c Counter) int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.counts[c]
}

// Micros returns the microseconds charged to counter c so far.
func (k *Clock) Micros(c Counter) float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.micros[c]
}

// ElapsedMicros returns the total simulated time in microseconds.
func (k *Clock) ElapsedMicros() float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.extra
	for _, us := range k.micros {
		t += us
	}
	return t
}

// Snapshot captures the clock's current counters and times.
func (k *Clock) Snapshot() Snapshot {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := Snapshot{extra: k.extra}
	s.counts = k.counts
	s.micros = k.micros
	return s
}

// Reset zeroes all counters and the clock.
func (k *Clock) Reset() {
	k.mu.Lock()
	k.counts = [NumCounters]int64{}
	k.micros = [NumCounters]float64{}
	k.extra = 0
	k.mu.Unlock()
}

// Model returns a copy of the clock's cost model.
func (k *Clock) Model() CostModel {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.model
}

// Snapshot is an immutable copy of a Clock's state, used to compute
// per-phase deltas (cold vs hot, per-traversal, per-commit).
type Snapshot struct {
	counts [NumCounters]int64
	micros [NumCounters]float64
	extra  float64
}

// Count returns the snapshot's event count for c.
func (s Snapshot) Count(c Counter) int64 { return s.counts[c] }

// Micros returns the snapshot's charged microseconds for c.
func (s Snapshot) Micros(c Counter) float64 { return s.micros[c] }

// ElapsedMicros returns the snapshot's total simulated microseconds.
func (s Snapshot) ElapsedMicros() float64 {
	t := s.extra
	for _, us := range s.micros {
		t += us
	}
	return t
}

// Sub returns the delta s minus earlier, counter by counter.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	d := Snapshot{extra: s.extra - earlier.extra}
	for i := range s.counts {
		d.counts[i] = s.counts[i] - earlier.counts[i]
		d.micros[i] = s.micros[i] - earlier.micros[i]
	}
	return d
}

// String renders the nonzero counters of the snapshot, sorted by charged
// time descending, for debugging and the faultviz example.
func (s Snapshot) String() string {
	type row struct {
		c  Counter
		n  int64
		us float64
	}
	var rows []row
	for c := Counter(0); c < NumCounters; c++ {
		if s.counts[c] != 0 {
			rows = append(rows, row{c, s.counts[c], s.micros[c]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].us > rows[j].us })
	var b strings.Builder
	fmt.Fprintf(&b, "total %.1fms\n", s.ElapsedMicros()/1000)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %10d  %10.1fms\n", r.c, r.n, r.us/1000)
	}
	return b.String()
}
