package sim

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestChargeAndElapsed(t *testing.T) {
	var m CostModel
	m[CtrServerDiskRead] = 1000
	m[CtrPageFaultTrap] = 10
	k := NewClock(m)
	k.Charge(CtrServerDiskRead, 3)
	k.Charge(CtrPageFaultTrap, 2)
	k.Charge(CtrDeref, 100) // zero-cost counter: counted, free
	if got := k.Count(CtrServerDiskRead); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := k.Count(CtrDeref); got != 100 {
		t.Fatalf("deref count = %d", got)
	}
	want := 3*1000.0 + 2*10.0
	if got := k.ElapsedMicros(); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	k.AddMicros(5)
	if got := k.ElapsedMicros(); got != want+5 {
		t.Fatalf("elapsed after AddMicros = %v", got)
	}
	k.Reset()
	if k.ElapsedMicros() != 0 || k.Count(CtrServerDiskRead) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestChargeZeroIsNoop(t *testing.T) {
	k := NewClock(DefaultCostModel())
	k.Charge(CtrServerDiskRead, 0)
	if k.Count(CtrServerDiskRead) != 0 {
		t.Fatal("zero charge counted")
	}
}

func TestSnapshotSub(t *testing.T) {
	k := NewClock(DefaultCostModel())
	k.Charge(CtrClientRead, 5)
	s1 := k.Snapshot()
	k.Charge(CtrClientRead, 7)
	k.Charge(CtrMmapCall, 2)
	d := k.Snapshot().Sub(s1)
	if d.Count(CtrClientRead) != 7 {
		t.Fatalf("delta reads = %d", d.Count(CtrClientRead))
	}
	if d.Count(CtrMmapCall) != 2 {
		t.Fatalf("delta mmap = %d", d.Count(CtrMmapCall))
	}
	if d.ElapsedMicros() != 2*DefaultCostModel()[CtrMmapCall] {
		t.Fatalf("delta micros = %v", d.ElapsedMicros())
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if !strings.HasPrefix(Counter(-1).String(), "counter(") {
		t.Fatal("out-of-range counter name")
	}
}

func TestSnapshotString(t *testing.T) {
	k := NewClock(DefaultCostModel())
	k.Charge(CtrServerDiskRead, 2)
	k.Charge(CtrMmapCall, 1)
	s := k.Snapshot().String()
	if !strings.Contains(s, "server.disk.read") || !strings.Contains(s, "vm.mmap") {
		t.Fatalf("snapshot string missing counters:\n%s", s)
	}
	// Sorted by charged time: disk read first.
	if strings.Index(s, "server.disk.read") > strings.Index(s, "vm.mmap") {
		t.Fatal("snapshot not sorted by time")
	}
}

func TestDefaultModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	// The paper's Table 6 anchors: data I/O dominates a cold fault.
	faultUs := m[CtrServerDiskRead] + m[CtrServerBufferHit] + m[CtrPageFaultTrap] +
		m[CtrMinFault] + m[CtrMmapCall] + m[CtrMiscFaultCPU]
	ioShare := (m[CtrServerDiskRead] + m[CtrServerBufferHit]) / faultUs
	if ioShare < 0.75 || ioShare > 0.92 {
		t.Errorf("data I/O share of a cold fault = %.2f, want ~0.82-0.85", ioShare)
	}
	// An E fault (just the I/O legs) must be ~20%% cheaper than a QS fault.
	r := faultUs / (m[CtrServerDiskRead] + m[CtrServerBufferHit])
	if r < 1.08 || r > 1.35 {
		t.Errorf("QS/E per-fault ratio = %.2f, want ~1.2", r)
	}
	// Update-path anchors from Section 5.2.
	if m[CtrRecoveryCopy] < 5000 || m[CtrRecoveryCopy] > 10000 {
		t.Errorf("recovery copy = %v, paper ~7.3ms", m[CtrRecoveryCopy])
	}
	if m[CtrLockUpgrade] < 2000 || m[CtrLockUpgrade] > 4000 {
		t.Errorf("lock upgrade = %v, paper ~2.8ms", m[CtrLockUpgrade])
	}
}

func TestClockConcurrency(t *testing.T) {
	k := NewClock(DefaultCostModel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				k.Charge(CtrClientRead, 1)
			}
		}()
	}
	wg.Wait()
	if got := k.Count(CtrClientRead); got != 8000 {
		t.Fatalf("concurrent count = %d", got)
	}
}

// Property: Snapshot.Sub is exact for any sequence of charges.
func TestSnapshotSubProperty(t *testing.T) {
	f := func(charges []uint8) bool {
		k := NewClock(DefaultCostModel())
		mid := len(charges) / 2
		for _, c := range charges[:mid] {
			k.Charge(Counter(int(c)%int(NumCounters)), 1)
		}
		s1 := k.Snapshot()
		for _, c := range charges[mid:] {
			k.Charge(Counter(int(c)%int(NumCounters)), 1)
		}
		d := k.Snapshot().Sub(s1)
		var total int64
		for c := Counter(0); c < NumCounters; c++ {
			if d.Count(c) < 0 {
				return false
			}
			total += d.Count(c)
		}
		return total == int64(len(charges)-mid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
