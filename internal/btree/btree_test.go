package btree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

func newClient(t *testing.T, frames int) *esm.Client {
	t.Helper()
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		esm.ServerConfig{BufferPages: 256, Clock: sim.NewClock(sim.DefaultCostModel())})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: frames})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	return c
}

func oidFor(i int) esm.OID {
	return esm.OID{Page: disk.PageID(i + 2), Slot: uint16(i % 100), File: 1}
}

func TestInsertLookupSmall(t *testing.T) {
	c := newClient(t, 64)
	tr, err := Create(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(IntKey(int64(i)), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		vals, err := tr.Lookup(IntKey(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != oidFor(i) {
			t.Fatalf("Lookup(%d) = %v", i, vals)
		}
	}
	if vals, _ := tr.Lookup(IntKey(1000)); len(vals) != 0 {
		t.Fatalf("missing key returned %v", vals)
	}
}

func TestSplitsAndOrder(t *testing.T) {
	c := newClient(t, 128)
	tr, _ := Create(c)
	const n = 5000 // forces multiple levels (maxLeaf ~204)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(IntKey(int64(i)), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	cnt, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("Count = %d, want %d", cnt, n)
	}
	// Spot-check lookups after heavy splitting.
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		vals, err := tr.Lookup(IntKey(int64(i)))
		if err != nil || len(vals) != 1 || vals[0] != oidFor(i) {
			t.Fatalf("Lookup(%d) = %v, %v", i, vals, err)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	c := newClient(t, 64)
	tr, _ := Create(c)
	// Many entries under few distinct keys, like the buildDate index.
	for i := 0; i < 600; i++ {
		if err := tr.Insert(IntKey(int64(i%3)), oidFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3; k++ {
		vals, err := tr.Lookup(IntKey(int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 200 {
			t.Fatalf("key %d has %d values, want 200", k, len(vals))
		}
	}
}

func TestScanRange(t *testing.T) {
	c := newClient(t, 64)
	tr, _ := Create(c)
	for i := 0; i < 1000; i += 2 { // even keys only
		tr.Insert(IntKey(int64(i)), oidFor(i))
	}
	var got []int64
	err := tr.ScanRange(IntKey(100), IntKey(200), func(k Key, v esm.OID) bool {
		var x int64
		for i := 0; i < 8; i++ {
			x = x<<8 | int64(k[i])
		}
		got = append(got, x^(-1<<63))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 51 {
		t.Fatalf("range [100,200] returned %d keys", len(got))
	}
	if got[0] != 100 || got[50] != 200 {
		t.Fatalf("range endpoints: %d..%d", got[0], got[50])
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+2 {
			t.Fatalf("scan out of order at %d: %v", i, got[i-3:i+1])
		}
	}
	// Early termination.
	n := 0
	tr.ScanRange(IntKey(0), IntKey(1000), func(Key, esm.OID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestDelete(t *testing.T) {
	c := newClient(t, 64)
	tr, _ := Create(c)
	for i := 0; i < 500; i++ {
		tr.Insert(IntKey(int64(i)), oidFor(i))
	}
	// Delete by (key, value): only the matching pair goes.
	ok, err := tr.Delete(IntKey(250), oidFor(250))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if vals, _ := tr.Lookup(IntKey(250)); len(vals) != 0 {
		t.Fatal("entry survived delete")
	}
	ok, err = tr.Delete(IntKey(250), oidFor(250))
	if err != nil || ok {
		t.Fatalf("double delete reported found: %v %v", ok, err)
	}
	// Wrong value under an existing key is not deleted.
	ok, _ = tr.Delete(IntKey(100), oidFor(999))
	if ok {
		t.Fatal("delete matched the wrong value")
	}
	// Reinsertion works (T3's delete + reinsert pattern).
	if err := tr.Insert(IntKey(250), oidFor(251)); err != nil {
		t.Fatal(err)
	}
	if vals, _ := tr.Lookup(IntKey(250)); len(vals) != 1 || vals[0] != oidFor(251) {
		t.Fatal("reinsert failed")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	c := newClient(t, 64)
	tr, _ := Create(c)
	titles := []string{"Composite Part 00042", "Composite Part 00001", "Composite Part 00499"}
	for i, s := range titles {
		tr.Insert(StringKey(s), oidFor(i))
	}
	vals, err := tr.Lookup(StringKey("Composite Part 00001"))
	if err != nil || len(vals) != 1 || vals[0] != oidFor(1) {
		t.Fatalf("string lookup: %v %v", vals, err)
	}
	// Lexicographic scan order.
	var order []int
	tr.ScanRange(StringKey(""), StringKey("zzzz"), func(k Key, v esm.OID) bool {
		order = append(order, int(v.Page-2))
		return true
	})
	want := []int{1, 0, 2}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("scan order %v, want %v", order, want)
	}
}

func TestPersistenceAcrossColdCaches(t *testing.T) {
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 32})
	c.Begin()
	tr, _ := Create(c)
	for i := 0; i < 2000; i++ {
		tr.Insert(IntKey(int64(i)), oidFor(i))
	}
	root := tr.RootPage()
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.DropCaches()
	srv.DropCaches()

	c.Begin()
	tr2 := Open(c, root)
	vals, err := tr2.Lookup(IntKey(1234))
	if err != nil || len(vals) != 1 || vals[0] != oidFor(1234) {
		t.Fatalf("cold lookup: %v %v", vals, err)
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	c.Commit()
}

func TestIndexIOCharged(t *testing.T) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 256, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 64, Clock: clock})
	c.Begin()
	tr, _ := Create(c)
	for i := 0; i < 3000; i++ {
		tr.Insert(IntKey(int64(i)), oidFor(i))
	}
	c.Commit()
	c.DropCaches()
	base := clock.Snapshot()
	c.Begin()
	tr.Lookup(IntKey(77))
	c.Commit()
	d := clock.Snapshot().Sub(base)
	if d.Count(sim.CtrClientRead) == 0 {
		t.Fatal("cold index lookup produced no client I/O")
	}
	if d.Count(sim.CtrIndexOp) != 1 {
		t.Fatalf("index ops = %d", d.Count(sim.CtrIndexOp))
	}
}

// Property: insert a random multiset of keys in random order, then the
// tree's scan yields exactly that multiset sorted; Check passes; every key
// can be looked up.
func TestTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srv, err := esm.NewServer(disk.NewMemVolume(), wal.NewMemLog(), esm.ServerConfig{BufferPages: 512})
		if err != nil {
			return false
		}
		c := esm.NewClient(esm.NewInProcTransport(srv), esm.ClientConfig{BufferPages: 128})
		c.Begin()
		tr, err := Create(c)
		if err != nil {
			return false
		}
		n := 200 + rng.Intn(1200)
		counts := map[int64]int{}
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(300)) // force duplicates
			counts[k]++
			if err := tr.Insert(IntKey(k), oidFor(i)); err != nil {
				return false
			}
		}
		if err := tr.Check(); err != nil {
			return false
		}
		got, err := tr.Count()
		if err != nil || got != n {
			return false
		}
		for k, want := range counts {
			vals, err := tr.Lookup(IntKey(k))
			if err != nil || len(vals) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
