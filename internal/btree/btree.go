// Package btree implements the B+tree indices the storage manager provides
// (the paper's ESM B-tree indices, used by OO7 for the atomic-part id index,
// the buildDate index, and the document-title index).
//
// The tree lives on TypeBTree pages fetched through an ESM client session,
// so index I/O shows up in the client I/O counts exactly as it does in the
// paper ("the T3 traversals performed a few additional I/Os to read index
// pages"). Keys are fixed-size 24-byte strings; integer keys are encoded
// order-preservingly. Duplicate keys are allowed (the buildDate index needs
// them); deletion is by (key, value) pair and leaves leaves unbalanced,
// which is harmless for the workloads and documented here.
//
// Concurrency: a client session is single-threaded (one application
// process, as in the paper), so index pages are accessed without latches;
// this stands in for ESM's special non-two-phase index protocol.
//
// Recovery: index page changes are not WAL-logged (ESM's index protocol
// used logical undo, out of scope here); index durability comes from dirty
// pages shipping whole at commit and reaching the volume at checkpoint.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/esm"
	"quickstore/internal/page"
	"quickstore/internal/sim"
)

// KeySize is the fixed encoded key length.
const KeySize = 24

// ValSize is the value payload length (one OID).
const ValSize = esm.OIDSize

// Node layout after the 24-byte page header:
//
//	[24:25) kind (0 = leaf, 1 = internal)
//	[25:27) number of entries
//	[27:31) leaf: right sibling page id; internal: leftmost child page id
//	[31:32) reserved
//	[32:)   entries
//
// Leaf entry: key[24] val[16] (40 bytes).
// Internal entry: key[24] child[4] (28 bytes); keys are separators, child
// holds entries >= key.
const (
	offKind    = 24
	offNKeys   = 25
	offSibling = 27
	nodeData   = 32

	leafEntry = KeySize + ValSize
	intEntry  = KeySize + 4

	maxLeaf = (disk.PageSize - nodeData) / leafEntry
	maxInt  = (disk.PageSize - nodeData) / intEntry
)

// Key is a fixed-size index key.
type Key [KeySize]byte

// IntKey encodes an int64 order-preservingly.
func IntKey(v int64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[:8], uint64(v)^(1<<63))
	return k
}

// StringKey encodes up to 24 bytes of s (longer strings are truncated, which
// preserves ordering of the prefix).
func StringKey(s string) Key {
	var k Key
	copy(k[:], s)
	return k
}

// Tree is a B+tree handle bound to a client session. The root page id is
// stable for the life of the tree (root splits convert the root in place).
type Tree struct {
	c    *esm.Client
	root disk.PageID
}

// Create allocates an empty tree and returns it; persist RootPage to reopen.
func Create(c *esm.Client) (*Tree, error) {
	pid, err := c.AllocPages(1)
	if err != nil {
		return nil, err
	}
	idx, err := c.Pool().Put(pid, func([]byte) error { return nil })
	if err != nil {
		return nil, err
	}
	// Initialize unconditionally: a recycled page id may still be resident,
	// in which case Put skips its loader.
	initNode(c.PageData(idx), true)
	c.Pool().MarkDirty(idx)
	return &Tree{c: c, root: pid}, nil
}

// Open attaches to an existing tree rooted at pid.
func Open(c *esm.Client, pid disk.PageID) *Tree { return &Tree{c: c, root: pid} }

// RootPage returns the tree's stable root page id.
func (t *Tree) RootPage() disk.PageID { return t.root }

func initNode(buf []byte, leaf bool) {
	p := page.Init(buf, page.TypeBTree)
	_ = p
	if leaf {
		buf[offKind] = 0
	} else {
		buf[offKind] = 1
	}
	binary.LittleEndian.PutUint16(buf[offNKeys:], 0)
	binary.LittleEndian.PutUint32(buf[offSibling:], 0)
}

type node struct {
	pid  disk.PageID
	buf  []byte
	idx  int // frame index
	tree *Tree
}

func (t *Tree) fetch(pid disk.PageID) (node, error) {
	idx, err := t.c.FetchPage(pid)
	if err != nil {
		return node{}, err
	}
	return node{pid: pid, buf: t.c.PageData(idx), idx: idx, tree: t}, nil
}

func (n node) leaf() bool  { return n.buf[offKind] == 0 }
func (n node) nkeys() int  { return int(binary.LittleEndian.Uint16(n.buf[offNKeys:])) }
func (n node) setN(k int)  { binary.LittleEndian.PutUint16(n.buf[offNKeys:], uint16(k)) }
func (n node) aux() uint32 { return binary.LittleEndian.Uint32(n.buf[offSibling:]) }
func (n node) setAux(v uint32) {
	binary.LittleEndian.PutUint32(n.buf[offSibling:], v)
}
func (n node) dirty() { n.tree.c.Pool().MarkDirty(n.idx) }

func (n node) leafKey(i int) []byte {
	return n.buf[nodeData+i*leafEntry : nodeData+i*leafEntry+KeySize]
}
func (n node) leafVal(i int) []byte {
	p := nodeData + i*leafEntry + KeySize
	return n.buf[p : p+ValSize]
}
func (n node) intKey(i int) []byte { return n.buf[nodeData+i*intEntry : nodeData+i*intEntry+KeySize] }
func (n node) intChild(i int) disk.PageID {
	p := nodeData + i*intEntry + KeySize
	return disk.PageID(binary.LittleEndian.Uint32(n.buf[p:]))
}
func (n node) setIntChild(i int, pid disk.PageID) {
	p := nodeData + i*intEntry + KeySize
	binary.LittleEndian.PutUint32(n.buf[p:], uint32(pid))
}

// lowerBound returns the first entry index whose key is >= k.
func (n node) lowerBound(k Key, keyAt func(int) []byte) int {
	lo, hi := 0, n.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keyAt(mid), k[:]) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first entry index whose key is > k.
func (n node) upperBound(k Key, keyAt func(int) []byte) int {
	lo, hi := 0, n.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keyAt(mid), k[:]) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor picks the internal-node child for inserting k: the rightmost
// separator <= k, or the leftmost child when k precedes all separators.
// Keys equal to a separator are routed right.
func (n node) childFor(k Key) (slot int, pid disk.PageID) {
	i := n.upperBound(k, n.intKey) - 1
	if i < 0 {
		return -1, disk.PageID(n.aux())
	}
	return i, n.intChild(i)
}

// childForScan picks the child for *finding* k: the rightmost separator
// strictly below k. With duplicate keys, entries equal to a separator can
// live in the child left of it (a split can leave equal keys on both
// sides), so scans must start there and rely on the leaf sibling chain.
func (n node) childForScan(k Key) disk.PageID {
	i := n.lowerBound(k, n.intKey) - 1
	if i < 0 {
		return disk.PageID(n.aux())
	}
	return n.intChild(i)
}

// Insert adds (key, val). Duplicate keys are permitted.
func (t *Tree) Insert(k Key, val esm.OID) error {
	t.c.Clock().Charge(sim.CtrIndexOp, 1)
	var vbuf [ValSize]byte
	val.Marshal(vbuf[:])
	promoted, newChild, err := t.insertAt(t.root, k, vbuf)
	if err != nil {
		return err
	}
	if newChild == disk.InvalidPage {
		return nil
	}
	return t.growRoot(promoted, newChild)
}

// insertAt descends from pid; on child split it returns the separator key
// and new right-sibling page to install in the parent.
func (t *Tree) insertAt(pid disk.PageID, k Key, val [ValSize]byte) (Key, disk.PageID, error) {
	n, err := t.fetch(pid)
	if err != nil {
		return Key{}, 0, err
	}
	if n.leaf() {
		return t.leafInsert(n, k, val)
	}
	t.c.Pin(n.idx)
	slot, child := n.childFor(k)
	t.c.Unpin(n.idx)
	promoted, newChild, err := t.insertAt(child, k, val)
	if err != nil || newChild == disk.InvalidPage {
		return Key{}, disk.InvalidPage, err
	}
	// Re-fetch: the recursion may have evicted our frame.
	n, err = t.fetch(pid)
	if err != nil {
		return Key{}, 0, err
	}
	return t.internalInsert(n, slot, promoted, newChild)
}

func (t *Tree) leafInsert(n node, k Key, val [ValSize]byte) (Key, disk.PageID, error) {
	pos := n.upperBound(k, n.leafKey)
	cnt := n.nkeys()
	if cnt < maxLeaf {
		start := nodeData + pos*leafEntry
		copy(n.buf[start+leafEntry:nodeData+(cnt+1)*leafEntry], n.buf[start:nodeData+cnt*leafEntry])
		copy(n.buf[start:], k[:])
		copy(n.buf[start+KeySize:], val[:])
		n.setN(cnt + 1)
		n.dirty()
		return Key{}, disk.InvalidPage, nil
	}
	// Split: left keeps the lower half, new right page takes the rest.
	t.c.Pin(n.idx)
	rightPid, err := t.c.AllocPages(1)
	if err != nil {
		t.c.Unpin(n.idx)
		return Key{}, 0, err
	}
	ridx, err := t.c.Pool().Put(rightPid, func([]byte) error { return nil })
	t.c.Unpin(n.idx)
	if err != nil {
		return Key{}, 0, err
	}
	initNode(t.c.PageData(ridx), true)
	r := node{pid: rightPid, buf: t.c.PageData(ridx), idx: ridx, tree: t}
	mid := cnt / 2
	moved := cnt - mid
	copy(r.buf[nodeData:], n.buf[nodeData+mid*leafEntry:nodeData+cnt*leafEntry])
	r.setN(moved)
	r.setAux(n.aux()) // right sibling chain
	n.setN(mid)
	n.setAux(uint32(rightPid))
	n.dirty()
	r.dirty()
	var sep Key
	copy(sep[:], r.leafKey(0))
	// Insert into the proper half.
	if bytes.Compare(k[:], sep[:]) >= 0 {
		_, _, err = t.leafInsert(r, k, val)
	} else {
		_, _, err = t.leafInsert(n, k, val)
	}
	if err != nil {
		return Key{}, 0, err
	}
	return sep, rightPid, nil
}

func (t *Tree) internalInsert(n node, afterSlot int, sep Key, child disk.PageID) (Key, disk.PageID, error) {
	pos := afterSlot + 1
	cnt := n.nkeys()
	if cnt < maxInt {
		start := nodeData + pos*intEntry
		copy(n.buf[start+intEntry:nodeData+(cnt+1)*intEntry], n.buf[start:nodeData+cnt*intEntry])
		copy(n.buf[start:], sep[:])
		binary.LittleEndian.PutUint32(n.buf[start+KeySize:], uint32(child))
		n.setN(cnt + 1)
		n.dirty()
		return Key{}, disk.InvalidPage, nil
	}
	// Split the internal node. The middle separator is promoted; its child
	// becomes the new node's leftmost child.
	t.c.Pin(n.idx)
	rightPid, err := t.c.AllocPages(1)
	if err != nil {
		t.c.Unpin(n.idx)
		return Key{}, 0, err
	}
	ridx, err := t.c.Pool().Put(rightPid, func([]byte) error { return nil })
	t.c.Unpin(n.idx)
	if err != nil {
		return Key{}, 0, err
	}
	initNode(t.c.PageData(ridx), false)
	r := node{pid: rightPid, buf: t.c.PageData(ridx), idx: ridx, tree: t}
	mid := cnt / 2
	var promoted Key
	copy(promoted[:], n.intKey(mid))
	r.setAux(uint32(n.intChild(mid)))
	moved := cnt - mid - 1
	copy(r.buf[nodeData:], n.buf[nodeData+(mid+1)*intEntry:nodeData+cnt*intEntry])
	r.setN(moved)
	n.setN(mid)
	n.dirty()
	r.dirty()
	if bytes.Compare(sep[:], promoted[:]) >= 0 {
		slot := r.upperBound(sep, r.intKey) - 1
		if _, _, err := t.internalInsert(r, slot, sep, child); err != nil {
			return Key{}, 0, err
		}
	} else {
		slot := n.upperBound(sep, n.intKey) - 1
		if _, _, err := t.internalInsert(n, slot, sep, child); err != nil {
			return Key{}, 0, err
		}
	}
	return promoted, rightPid, nil
}

// growRoot converts the root page into an internal node over its former
// contents (moved to a fresh left child) and the new right child.
func (t *Tree) growRoot(sep Key, right disk.PageID) error {
	leftPid, err := t.c.AllocPages(1)
	if err != nil {
		return err
	}
	rootN, err := t.fetch(t.root)
	if err != nil {
		return err
	}
	t.c.Pin(rootN.idx)
	lidx, err := t.c.Pool().Put(leftPid, func(buf []byte) error {
		return nil
	})
	if err != nil {
		t.c.Unpin(rootN.idx)
		return err
	}
	copy(t.c.PageData(lidx), rootN.buf)
	t.c.Pool().MarkDirty(lidx)
	initNode(rootN.buf, false)
	rootN.setAux(uint32(leftPid))
	rootN.setN(1)
	copy(rootN.buf[nodeData:], sep[:])
	binary.LittleEndian.PutUint32(rootN.buf[nodeData+KeySize:], uint32(right))
	rootN.dirty()
	t.c.Unpin(rootN.idx)
	return nil
}

// Lookup returns the values stored under exactly key k.
func (t *Tree) Lookup(k Key) ([]esm.OID, error) {
	t.c.Clock().Charge(sim.CtrIndexOp, 1)
	var out []esm.OID
	err := t.scanFrom(k, func(key Key, val esm.OID) bool {
		if key != k {
			return false
		}
		out = append(out, val)
		return true
	})
	return out, err
}

// ScanRange calls fn for every (key, value) with lo <= key <= hi, in key
// order. fn returning false stops the scan.
func (t *Tree) ScanRange(lo, hi Key, fn func(Key, esm.OID) bool) error {
	t.c.Clock().Charge(sim.CtrIndexOp, 1)
	return t.scanFrom(lo, func(k Key, v esm.OID) bool {
		if bytes.Compare(k[:], hi[:]) > 0 {
			return false
		}
		return fn(k, v)
	})
}

// scanFrom walks leaves starting at the first key >= k.
func (t *Tree) scanFrom(k Key, fn func(Key, esm.OID) bool) error {
	pid := t.root
	for {
		n, err := t.fetch(pid)
		if err != nil {
			return err
		}
		if n.leaf() {
			break
		}
		pid = n.childForScan(k)
	}
	// pid is the leftmost leaf that may contain k; walk the sibling chain.
	// The leaf is pinned while fn runs: callbacks routinely fetch other
	// pages (dereferencing the returned OIDs), which could otherwise evict
	// the leaf out from under the scan.
	first := true
	for pid != disk.InvalidPage {
		n, err := t.fetch(pid)
		if err != nil {
			return err
		}
		t.c.Pin(n.idx)
		start := 0
		if first {
			start = n.lowerBound(k, n.leafKey)
			first = false
		}
		for i := start; i < n.nkeys(); i++ {
			var key Key
			copy(key[:], n.leafKey(i))
			if !fn(key, esm.UnmarshalOID(n.leafVal(i))) {
				t.c.Unpin(n.idx)
				return nil
			}
		}
		t.c.Unpin(n.idx)
		pid = disk.PageID(n.aux())
	}
	return nil
}

// Delete removes one entry matching (k, val); it reports whether an entry
// was found. Leaves are left unbalanced (lazy deletion).
func (t *Tree) Delete(k Key, val esm.OID) (bool, error) {
	t.c.Clock().Charge(sim.CtrIndexOp, 1)
	var vbuf [ValSize]byte
	val.Marshal(vbuf[:])
	pid := t.root
	for {
		n, err := t.fetch(pid)
		if err != nil {
			return false, err
		}
		if n.leaf() {
			break
		}
		pid = n.childForScan(k)
	}
	for pid != disk.InvalidPage {
		n, err := t.fetch(pid)
		if err != nil {
			return false, err
		}
		for i := n.lowerBound(k, n.leafKey); i < n.nkeys(); i++ {
			if !bytes.Equal(n.leafKey(i), k[:]) {
				return false, nil
			}
			if bytes.Equal(n.leafVal(i), vbuf[:]) {
				cnt := n.nkeys()
				start := nodeData + i*leafEntry
				copy(n.buf[start:], n.buf[start+leafEntry:nodeData+cnt*leafEntry])
				n.setN(cnt - 1)
				n.dirty()
				return true, nil
			}
		}
		pid = disk.PageID(n.aux())
	}
	return false, nil
}

// Count returns the number of entries in the tree (full scan; test helper).
func (t *Tree) Count() (int, error) {
	total := 0
	// Descend to the leftmost leaf, then follow the chain.
	pid := t.root
	for {
		n, err := t.fetch(pid)
		if err != nil {
			return 0, err
		}
		if n.leaf() {
			break
		}
		pid = disk.PageID(n.aux())
	}
	for pid != disk.InvalidPage {
		n, err := t.fetch(pid)
		if err != nil {
			return 0, err
		}
		total += n.nkeys()
		pid = disk.PageID(n.aux())
	}
	return total, nil
}

// Check walks the tree verifying structural invariants: key order within
// nodes, separator bounds, and leaf-chain ordering. Test helper.
func (t *Tree) Check() error {
	var last []byte
	seen := 0
	err := t.scanFrom(Key{}, func(k Key, _ esm.OID) bool {
		if last != nil && bytes.Compare(last, k[:]) > 0 {
			seen = -1
			return false
		}
		last = append(last[:0], k[:]...)
		seen++
		return true
	})
	if err != nil {
		return err
	}
	if seen < 0 {
		return fmt.Errorf("btree: keys out of order")
	}
	n, err := t.Count()
	if err != nil {
		return err
	}
	if n != seen {
		return fmt.Errorf("btree: scan saw %d entries, count says %d", seen, n)
	}
	return nil
}
