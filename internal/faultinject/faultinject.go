// Package faultinject is the deterministic fault plane behind the crash
// drill (internal/harness, `qsstore crashdrill`). A Plane is threaded
// through the storage stack — internal/disk wraps volumes with it
// (disk.WithHook) and internal/wal consults it through Log.FlushHook — and
// the ESM server checks named crash points on its durability-critical
// paths (commit, abort, buffer-pool steal, checkpoint).
//
// Faults are seeded and replayable: the same seed, arming, and workload
// produce the same injection, so every drill failure is a deterministic
// regression test. Three fault families are supported:
//
//   - Crashes: a named point fires after its n-th hit; from then on the
//     plane is "crashed" and every instrumented operation fails with
//     ErrCrash, modeling a killed server process. A crash that fires
//     inside a page write may tear it (a prefix of the new image lands,
//     the rest keeps the old bytes); a crash inside a log flush may make
//     only a prefix of the pending bytes durable (torn log tail).
//   - Transient errors: a point fails with ErrTransient for a bounded
//     number of hits, then heals — the client retry wrapper's diet.
//   - Tears without crash are not modeled: page writes are atomic unless
//     the crash lands inside one (the ARIES-era atomic-page-write
//     assumption; see DESIGN.md §9).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Errors injected by a Plane. They cross the client-server protocol as
// strings, so classification (IsCrash, IsTransient) matches substrings as
// well as wrapped errors.
var (
	ErrCrash     = errors.New("faultinject: crash injected")
	ErrTransient = errors.New("faultinject: transient I/O error")
)

// IsCrash reports whether err is (or carries, possibly as a remote error
// string) an injected crash.
func IsCrash(err error) bool {
	return err != nil && (errors.Is(err, ErrCrash) || strings.Contains(err.Error(), ErrCrash.Error()))
}

// IsTransient reports whether err is (or carries) an injected transient
// fault, the class the ESM client's retry wrapper may safely retry.
func IsTransient(err error) bool {
	return err != nil && (errors.Is(err, ErrTransient) || strings.Contains(err.Error(), ErrTransient.Error()))
}

// The named fault points (Pt* constants and AllPoints) live in points.go,
// generated from the registry table in gen/main.go.
//go:generate go run ./gen

type crashArm struct {
	remaining int // hits left before the crash fires
}

type transientArm struct {
	remaining int // hits left that fail transiently
}

// Plane is one deterministic fault-injection plane. The zero value is not
// usable; construct with New. A nil *Plane is inert: every method is a
// no-op and Hit returns nil, so production paths pay one nil check.
type Plane struct {
	mu        sync.Mutex
	rng       *rand.Rand
	crashed   bool
	arms      map[string]*crashArm
	transient map[string]*transientArm
	tornMin   int // torn-write prefix bounds (bytes of the new image that land)
	tornMax   int
	shortTail bool // crash inside a log flush keeps only a prefix durable
	hits      map[string]int
	trace     []string
}

// New creates a plane whose randomized choices (which byte a write tears
// at, how much of a log flush survives) are driven by seed.
func New(seed int64) *Plane {
	return &Plane{
		rng:       rand.New(rand.NewSource(seed)),
		arms:      map[string]*crashArm{},
		transient: map[string]*transientArm{},
		hits:      map[string]int{},
	}
}

// ArmCrash schedules a crash at the n-th future hit of point (n >= 1).
func (p *Plane) ArmCrash(point string, n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.arms[point] = &crashArm{remaining: n}
}

// ArmTransient makes the next `times` hits of point fail with ErrTransient.
func (p *Plane) ArmTransient(point string, times int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transient[point] = &transientArm{remaining: times}
}

// SetTornWrite bounds the prefix of the new page image that reaches the
// volume when a crash fires inside a page write: a seeded length in
// [min, max] bytes lands, the rest of the page keeps its old contents.
// Without this call, page writes are atomic (all-or-nothing at a crash).
func (p *Plane) SetTornWrite(min, max int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tornMin, p.tornMax = min, max
}

// SetShortFlush makes a crash that fires inside a log flush keep only a
// seeded prefix of the pending bytes — a torn log tail for OpenFileLog's
// CRC scan to prune.
func (p *Plane) SetShortFlush(on bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shortTail = on
}

// Hit records one arrival at point and returns the injected fault, if any:
// nil, ErrTransient (heals after its budget), or ErrCrash (permanent until
// Reset — the process is dead).
func (p *Plane) Hit(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hitLocked(point)
}

func (p *Plane) hitLocked(point string) error {
	if p.crashed {
		return ErrCrash
	}
	p.hits[point]++
	if t := p.transient[point]; t != nil && t.remaining > 0 {
		t.remaining--
		p.trace = append(p.trace, fmt.Sprintf("transient@%s#%d", point, p.hits[point]))
		return fmt.Errorf("%w (point %s)", ErrTransient, point)
	}
	if a := p.arms[point]; a != nil {
		a.remaining--
		if a.remaining <= 0 {
			p.crashed = true
			p.trace = append(p.trace, fmt.Sprintf("crash@%s#%d", point, p.hits[point]))
			return fmt.Errorf("%w (point %s)", ErrCrash, point)
		}
	}
	return nil
}

// Crashed reports whether an armed crash has fired.
func (p *Plane) Crashed() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Reset disarms every fault and clears the crashed latch, modeling the
// restart of the killed process before the volume and log are reopened.
func (p *Plane) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed = false
	p.arms = map[string]*crashArm{}
	p.transient = map[string]*transientArm{}
	p.tornMin, p.tornMax = 0, 0
	p.shortTail = false
}

// Hits returns how many times point has been reached (crashed hits after
// the latch are not counted).
func (p *Plane) Hits(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[point]
}

// Trace returns the fired-fault trace for drill reports.
func (p *Plane) Trace() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.trace...)
}

// BeforeRead implements disk.IOHook.
func (p *Plane) BeforeRead(id uint32) error { return p.Hit(PtDiskRead) }

// BeforeWrite implements disk.IOHook: on a crash it also decides how much
// of the new image lands (0 = the write never happened, pageSize = it
// completed just before the process died, anything between = torn).
func (p *Plane) BeforeWrite(id uint32, pageSize int) (tearPrefix int, err error) {
	if p == nil {
		return pageSize, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	err = p.hitLocked(PtDiskWrite)
	if !IsCrash(err) {
		return pageSize, err
	}
	if p.tornMax > 0 {
		lo, hi := p.tornMin, p.tornMax
		if hi > pageSize {
			hi = pageSize
		}
		if lo > hi {
			lo = hi
		}
		return lo + p.rng.Intn(hi-lo+1), err
	}
	// Atomic page writes: the crashing write is dropped whole.
	return 0, err
}

// FlushHook returns the wal.Log hook enforcing this plane's log faults:
// transient flush failures persist nothing; a crash persists a seeded
// prefix of the pending bytes when short flushes are enabled, or nothing
// otherwise.
func (p *Plane) FlushHook() func(pending int) (int, error) {
	return func(pending int) (int, error) {
		if p == nil {
			return pending, nil
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		err := p.hitLocked(PtLogFlush)
		switch {
		case err == nil:
			return pending, nil
		case IsCrash(err) && p.shortTail && pending > 0:
			return p.rng.Intn(pending), err
		default:
			return 0, err
		}
	}
}
