package faultinject

import (
	"errors"
	"fmt"
	"testing"
)

func TestCrashFiresOnNthHitAndLatches(t *testing.T) {
	p := New(1)
	p.ArmCrash(PtCommitBeforeFlush, 3)
	for i := 1; i <= 2; i++ {
		if err := p.Hit(PtCommitBeforeFlush); err != nil {
			t.Fatalf("hit %d: unexpected fault %v", i, err)
		}
	}
	err := p.Hit(PtCommitBeforeFlush)
	if !IsCrash(err) {
		t.Fatalf("third hit: got %v, want crash", err)
	}
	if !p.Crashed() {
		t.Fatal("plane not latched crashed")
	}
	// Every later operation on any point fails: the process is dead.
	if err := p.Hit(PtDiskRead); !IsCrash(err) {
		t.Fatalf("post-crash hit: got %v, want crash", err)
	}
	p.Reset()
	if p.Crashed() || p.Hit(PtDiskRead) != nil {
		t.Fatal("Reset did not disarm the plane")
	}
}

func TestTransientHealsAfterBudget(t *testing.T) {
	p := New(2)
	p.ArmTransient(PtDiskRead, 2)
	for i := 0; i < 2; i++ {
		if err := p.Hit(PtDiskRead); !IsTransient(err) {
			t.Fatalf("hit %d: got %v, want transient", i, err)
		}
	}
	if err := p.Hit(PtDiskRead); err != nil {
		t.Fatalf("healed hit: %v", err)
	}
	if got := p.Hits(PtDiskRead); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestClassifiersMatchRemoteStrings(t *testing.T) {
	// Server errors cross the protocol as plain strings; classification
	// must survive the round trip.
	remote := errors.New("esm server: " + fmt.Errorf("%w (point %s)", ErrTransient, PtDiskWrite).Error())
	if !IsTransient(remote) {
		t.Fatal("transient not recognized through a string round trip")
	}
	remoteCrash := errors.New("esm server: " + ErrCrash.Error())
	if !IsCrash(remoteCrash) {
		t.Fatal("crash not recognized through a string round trip")
	}
	if IsTransient(nil) || IsCrash(nil) {
		t.Fatal("nil misclassified")
	}
	if IsTransient(errors.New("disk: page id out of range")) {
		t.Fatal("unrelated error misclassified as transient")
	}
}

func TestTornWriteBoundsAreSeeded(t *testing.T) {
	const page = 8192
	for seed := int64(0); seed < 20; seed++ {
		p := New(seed)
		p.SetTornWrite(8, 4096)
		p.ArmCrash(PtDiskWrite, 1)
		n, err := p.BeforeWrite(7, page)
		if !IsCrash(err) {
			t.Fatalf("seed %d: got %v, want crash", seed, err)
		}
		if n < 8 || n > 4096 {
			t.Fatalf("seed %d: torn prefix %d outside [8,4096]", seed, n)
		}
		// Same seed, same tear.
		q := New(seed)
		q.SetTornWrite(8, 4096)
		q.ArmCrash(PtDiskWrite, 1)
		m, _ := q.BeforeWrite(7, page)
		if m != n {
			t.Fatalf("seed %d: tear not deterministic (%d vs %d)", seed, n, m)
		}
	}
}

func TestAtomicWritesDropWholePageOnCrash(t *testing.T) {
	p := New(3)
	p.ArmCrash(PtDiskWrite, 1)
	n, err := p.BeforeWrite(9, 8192)
	if !IsCrash(err) || n != 0 {
		t.Fatalf("got (%d, %v), want (0, crash)", n, err)
	}
}

func TestFlushHookShortTail(t *testing.T) {
	p := New(4)
	p.SetShortFlush(true)
	p.ArmCrash(PtLogFlush, 1)
	hook := p.FlushHook()
	allow, err := hook(1000)
	if !IsCrash(err) {
		t.Fatalf("got %v, want crash", err)
	}
	if allow < 0 || allow >= 1000 {
		t.Fatalf("short flush kept %d of 1000 bytes", allow)
	}
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	if err := p.Hit(PtDiskRead); err != nil {
		t.Fatal(err)
	}
	if n, err := p.BeforeWrite(1, 8192); n != 8192 || err != nil {
		t.Fatalf("nil BeforeWrite = (%d, %v)", n, err)
	}
	p.ArmCrash(PtDiskRead, 1) // must not panic
	p.Reset()
	if p.Crashed() {
		t.Fatal("nil plane crashed")
	}
}
