// Package page implements the slotted-page layout used for small-object
// pages. A page holds a fixed header, object data growing upward from the
// header, and a slot directory growing downward from the end of the page.
//
// Two properties from the paper are preserved:
//   - objects never move within a page once allocated, so a page offset
//     permanently identifies an object (QuickStore's <frame, offset>
//     pointers depend on this);
//   - object data is accessed in place in the buffer-pool frame, not copied.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"

	"quickstore/internal/disk"
)

// Page header layout:
//
//	[0:8)   page LSN
//	[8:9)   page type
//	[9:10)  reserved
//	[10:12) number of slots
//	[12:14) free-space start offset
//	[14:16) reserved
//	[16:20) owning file id
//	[20:24) next page in the file chain
const (
	offLSN       = 0
	offType      = 8
	offNumSlots  = 10
	offFreeStart = 12
	offFileID    = 16
	offNextPage  = 20
	// HeaderSize is the number of bytes reserved at the start of each page.
	HeaderSize = 24
	slotSize   = 4
)

// Page types stored in the header.
const (
	TypeFree    byte = 0
	TypeSlotted byte = 1
	TypeLarge   byte = 2
	TypeBTree   byte = 3
	TypeCatalog byte = 4
)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: invalid slot")
	ErrDeadSlot    = errors.New("page: slot is deleted")
	ErrNotSlotted  = errors.New("page: not a slotted page")
	ErrObjTooLarge = errors.New("page: object larger than a page")
)

// MaxObjectSize is the largest object that fits on a single slotted page.
const MaxObjectSize = disk.PageSize - HeaderSize - slotSize

// Slotted wraps an 8K buffer with slotted-page operations. The buffer is
// aliased, not copied: mutations through Slotted are visible to the owner of
// the buffer (typically a buffer-pool frame).
type Slotted struct {
	buf []byte
}

// Init formats buf as an empty slotted page and returns it wrapped.
func Init(buf []byte, pageType byte) Slotted {
	for i := range buf {
		buf[i] = 0
	}
	buf[offType] = pageType
	binary.LittleEndian.PutUint16(buf[offFreeStart:], HeaderSize)
	return Slotted{buf: buf}
}

// Wrap interprets buf as an existing slotted page.
func Wrap(buf []byte) (Slotted, error) {
	if len(buf) != disk.PageSize {
		return Slotted{}, fmt.Errorf("page: buffer is %d bytes, want %d", len(buf), disk.PageSize)
	}
	return Slotted{buf: buf}, nil
}

// MustWrap is Wrap for buffers known to be page-sized.
func MustWrap(buf []byte) Slotted {
	p, err := Wrap(buf)
	if err != nil {
		panic(err)
	}
	return p
}

// Type returns the page type byte.
func (p Slotted) Type() byte { return p.buf[offType] }

// LSN returns the page LSN.
func (p Slotted) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }

// SetLSN stores the page LSN.
func (p Slotted) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn) }

// FileID returns the id of the file owning this page.
func (p Slotted) FileID() uint32 { return binary.LittleEndian.Uint32(p.buf[offFileID:]) }

// SetFileID records the owning file id.
func (p Slotted) SetFileID(id uint32) { binary.LittleEndian.PutUint32(p.buf[offFileID:], id) }

// NextPage returns the next page in the owning file's chain (0 terminates).
func (p Slotted) NextPage() uint32 { return binary.LittleEndian.Uint32(p.buf[offNextPage:]) }

// SetNextPage links the page into its file chain.
func (p Slotted) SetNextPage(id uint32) { binary.LittleEndian.PutUint32(p.buf[offNextPage:], id) }

// NumSlots returns the number of slots ever allocated on the page,
// including deleted ones.
func (p Slotted) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[offNumSlots:]))
}

func (p Slotted) freeStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[offFreeStart:]))
}

func (p Slotted) slotPos(i int) int { return disk.PageSize - slotSize*(i+1) }

func (p Slotted) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])),
		int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p Slotted) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// FreeSpace returns the bytes available for one more Insert (accounting for
// its slot directory entry). Space from deleted objects is not reclaimed,
// because objects are pinned to their offsets for the store's lifetime.
func (p Slotted) FreeSpace() int {
	free := disk.PageSize - slotSize*p.NumSlots() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert allocates a slot of the given size and returns the slot number and
// the page offset of the new object. The object bytes are zeroed.
func (p Slotted) Insert(size int) (slot, off int, err error) {
	if size <= 0 || size > MaxObjectSize {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrObjTooLarge, size)
	}
	if size > p.FreeSpace() {
		return 0, 0, ErrPageFull
	}
	slot = p.NumSlots()
	off = p.freeStart()
	for i := off; i < off+size; i++ {
		p.buf[i] = 0
	}
	p.setSlot(slot, off, size)
	binary.LittleEndian.PutUint16(p.buf[offNumSlots:], uint16(slot+1))
	binary.LittleEndian.PutUint16(p.buf[offFreeStart:], uint16(off+size))
	return slot, off, nil
}

// Object returns the in-place byte view of slot i.
func (p Slotted) Object(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, length := p.slot(i)
	if length == 0 {
		return nil, ErrDeadSlot
	}
	return p.buf[off : off+length : off+length], nil
}

// ObjectAt returns the slot number and byte view of the object covering page
// offset off, or an error if off does not fall inside a live object. This is
// how QuickStore resolves the low bits of a virtual-memory pointer.
func (p Slotted) ObjectAt(off int) (int, []byte, error) {
	for i := 0; i < p.NumSlots(); i++ {
		o, l := p.slot(i)
		if l != 0 && off >= o && off < o+l {
			return i, p.buf[o : o+l : o+l], nil
		}
	}
	return 0, nil, fmt.Errorf("%w: no object at offset %d", ErrBadSlot, off)
}

// SlotBounds returns the [start, end) page offsets of live slot i.
func (p Slotted) SlotBounds(i int) (int, int, error) {
	if i < 0 || i >= p.NumSlots() {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, length := p.slot(i)
	if length == 0 {
		return 0, 0, ErrDeadSlot
	}
	return off, off + length, nil
}

// Delete marks slot i dead. The space is not reused; dangling references to
// the offset behave exactly as the paper describes (Section 4.5.2).
func (p Slotted) Delete(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, length := p.slot(i)
	if length == 0 {
		return ErrDeadSlot
	}
	p.setSlot(i, off, 0)
	return nil
}

// LiveObjects calls fn for each live slot with its slot number, page offset,
// and in-place bytes. fn returning false stops the scan.
func (p Slotted) LiveObjects(fn func(slot, off int, data []byte) bool) {
	for i := 0; i < p.NumSlots(); i++ {
		off, l := p.slot(i)
		if l == 0 {
			continue
		}
		if !fn(i, off, p.buf[off:off+l:off+l]) {
			return
		}
	}
}

// UsedBytes reports the bytes consumed on the page (header, data including
// dead space, and slot directory).
func (p Slotted) UsedBytes() int {
	return p.freeStart() + slotSize*p.NumSlots()
}
