package page

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"quickstore/internal/disk"
)

func newPage(t *testing.T) Slotted {
	t.Helper()
	return Init(make([]byte, disk.PageSize), TypeSlotted)
}

func TestInitAndHeader(t *testing.T) {
	p := newPage(t)
	if p.Type() != TypeSlotted {
		t.Fatalf("Type = %d", p.Type())
	}
	if p.NumSlots() != 0 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	p.SetLSN(0xDEADBEEF)
	if p.LSN() != 0xDEADBEEF {
		t.Fatal("LSN round trip failed")
	}
	p.SetFileID(42)
	p.SetNextPage(99)
	if p.FileID() != 42 || p.NextPage() != 99 {
		t.Fatal("file/next round trip failed")
	}
}

func TestInsertAndRead(t *testing.T) {
	p := newPage(t)
	s1, off1, err := p.Insert(100)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != HeaderSize {
		t.Fatalf("first object at %d, want %d", off1, HeaderSize)
	}
	s2, off2, err := p.Insert(200)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != HeaderSize+100 {
		t.Fatalf("second object at %d", off2)
	}
	o1, err := p.Object(s1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := p.Object(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != 100 || len(o2) != 200 {
		t.Fatalf("object sizes %d, %d", len(o1), len(o2))
	}
	// Objects are zeroed and writable in place.
	for _, b := range o1 {
		if b != 0 {
			t.Fatal("object not zeroed")
		}
	}
	o1[0] = 0x55
	again, _ := p.Object(s1)
	if again[0] != 0x55 {
		t.Fatal("in-place write lost")
	}
	// Writes to one object never bleed into its neighbor.
	for i := range o1 {
		o1[i] = 0xFF
	}
	if o2[0] != 0 {
		t.Fatal("object overlap")
	}
}

func TestObjectAt(t *testing.T) {
	p := newPage(t)
	s1, off1, _ := p.Insert(64)
	_, off2, _ := p.Insert(64)
	slot, data, err := p.ObjectAt(off1 + 10)
	if err != nil || slot != s1 || len(data) != 64 {
		t.Fatalf("ObjectAt inside obj1: slot=%d err=%v", slot, err)
	}
	if _, _, err := p.ObjectAt(off2 + 64); err == nil {
		t.Fatal("ObjectAt past last object succeeded")
	}
	if _, _, err := p.ObjectAt(0); err == nil {
		t.Fatal("ObjectAt in header succeeded")
	}
}

func TestDelete(t *testing.T) {
	p := newPage(t)
	s, off, _ := p.Insert(32)
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Object(s); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("read of deleted slot: %v", err)
	}
	if err := p.Delete(s); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("double delete: %v", err)
	}
	// The space is not reused: the offset stays dead, as the paper's
	// dangling-pointer discussion requires.
	_, off2, _ := p.Insert(32)
	if off2 == off {
		t.Fatal("deleted space was reused")
	}
}

func TestPageFullAndBounds(t *testing.T) {
	p := newPage(t)
	if _, _, err := p.Insert(MaxObjectSize); err != nil {
		t.Fatalf("max object rejected: %v", err)
	}
	if _, _, err := p.Insert(1); !errors.Is(err, ErrPageFull) {
		t.Fatalf("insert into full page: %v", err)
	}
	p2 := newPage(t)
	if _, _, err := p2.Insert(MaxObjectSize + 1); err == nil {
		t.Fatal("oversized insert succeeded")
	}
	if _, _, err := p2.Insert(0); err == nil {
		t.Fatal("zero insert succeeded")
	}
	if _, err := p2.Object(0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot read: %v", err)
	}
}

func TestLiveObjects(t *testing.T) {
	p := newPage(t)
	s0, _, _ := p.Insert(10)
	p.Insert(20)
	s2, _, _ := p.Insert(30)
	p.Delete(s0)
	var sizes []int
	p.LiveObjects(func(slot, off int, data []byte) bool {
		sizes = append(sizes, len(data))
		return true
	})
	if len(sizes) != 2 || sizes[0] != 20 || sizes[1] != 30 {
		t.Fatalf("LiveObjects sizes = %v", sizes)
	}
	// Early stop.
	count := 0
	p.LiveObjects(func(int, int, []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	_ = s2
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(make([]byte, 100)); err == nil {
		t.Fatal("Wrap accepted a short buffer")
	}
}

// Property: a random sequence of inserts yields non-overlapping, in-bounds
// objects, each independently addressable and intact after writes.
func TestInsertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Init(make([]byte, disk.PageSize), TypeSlotted)
		type obj struct {
			slot, off, size int
			tag             byte
		}
		var objs []obj
		for {
			size := 1 + rng.Intn(500)
			slot, off, err := p.Insert(size)
			if errors.Is(err, ErrPageFull) {
				break
			}
			if err != nil {
				return false
			}
			data, err := p.Object(slot)
			if err != nil || len(data) != size {
				return false
			}
			tag := byte(rng.Intn(255) + 1)
			for i := range data {
				data[i] = tag
			}
			objs = append(objs, obj{slot, off, size, tag})
			if off < HeaderSize || off+size > disk.PageSize-4*p.NumSlots() {
				return false // overlaps header or slot directory
			}
		}
		// All objects retain their tags (no overlap).
		for _, o := range objs {
			data, err := p.Object(o.slot)
			if err != nil {
				return false
			}
			for _, b := range data {
				if b != o.tag {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotBounds(t *testing.T) {
	p := newPage(t)
	s1, off1, _ := p.Insert(40)
	start, end, err := p.SlotBounds(s1)
	if err != nil || start != off1 || end != off1+40 {
		t.Fatalf("SlotBounds = [%d,%d), %v", start, end, err)
	}
	if _, _, err := p.SlotBounds(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot: %v", err)
	}
	p.Delete(s1)
	if _, _, err := p.SlotBounds(s1); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("dead slot: %v", err)
	}
}

func TestUsedBytesGrows(t *testing.T) {
	p := newPage(t)
	before := p.UsedBytes()
	p.Insert(100)
	after := p.UsedBytes()
	if after != before+100+4 { // data + one slot entry
		t.Fatalf("UsedBytes %d -> %d", before, after)
	}
}
