// Package buffer implements the fixed-size page buffer pools used at both
// the client and the server. Replacement policy is pluggable: the server
// and the E system use the traditional clock algorithm (reference bit per
// frame), while QuickStore installs its simplified clock from Section 3.5,
// which consults virtual-memory protections instead of reference bits.
package buffer

import (
	"errors"
	"fmt"

	"quickstore/internal/disk"
)

// Errors returned by the pool.
var (
	ErrNoVictim  = errors.New("buffer: all frames pinned, no victim available")
	ErrNotCached = errors.New("buffer: page not resident")
)

// Frame is one buffer-pool slot. Data aliases the pool's backing storage
// and remains valid while the page stays resident.
type Frame struct {
	Page  disk.PageID // InvalidPage when the frame is empty
	Data  []byte
	Pin   int
	Dirty bool
	Ref   bool // reference bit for the traditional clock policy
	// Prefetched marks a speculative pre-read frame installed by the
	// prefetcher (internal/prefetch) that no caller has used yet. The flag
	// is cleared on first real use (ConsumePrefetched); a frame evicted or
	// dropped with the flag still set was a wasted prefetch.
	Prefetched bool
	// LSN is the coherence token the server vended with this page image
	// (the LSN of the commit that produced it). Zero means unversioned:
	// the frame always revalidates as a full read. Maintained by the ESM
	// client; the pool only clears it on install/evict.
	LSN uint64
	// Stale marks a frame the server has flagged out of date (piggybacked
	// invalidation hint or a stale lock grant). The next access must
	// revalidate against the server before trusting the bytes.
	Stale bool
}

// Policy selects a victim frame for replacement. It may assume the pool's
// lock is held by the caller.
type Policy interface {
	// Victim returns the index of a replaceable (unpinned) frame.
	Victim(p *Pool) (int, error)
}

// Pool is a page buffer pool. It is not internally synchronized: each pool
// belongs to exactly one client or server session, whose own lock (or the
// single-threaded transaction model) serializes access.
type Pool struct {
	frames  []Frame
	index   map[disk.PageID]int
	policy  Policy
	Hand    int // clock hand, exported for policies
	hits    int64
	misses  int64
	evicted int64

	// FlushFn, if set, is called to write back a dirty page before its
	// frame is reused.
	FlushFn func(pid disk.PageID, data []byte) error
	// OnEvict, if set, is called after a page leaves the pool (clean or
	// flushed). QuickStore uses it to revoke virtual-memory mappings.
	OnEvict func(pid disk.PageID, frame int)
	// OnPrefetchDrop, if set, is called when a frame leaves the pool with
	// its Prefetched flag still set — a speculative read that was never
	// used. The ESM client hooks it to count wasted prefetches.
	OnPrefetchDrop func(pid disk.PageID)
}

// New creates a pool of nframes 8K frames with the given policy
// (nil selects the traditional clock).
func New(nframes int, policy Policy) *Pool {
	if policy == nil {
		policy = Clock{}
	}
	p := &Pool{
		frames: make([]Frame, nframes),
		index:  make(map[disk.PageID]int, nframes),
		policy: policy,
	}
	backing := make([]byte, nframes*disk.PageSize)
	for i := range p.frames {
		p.frames[i].Data = backing[i*disk.PageSize : (i+1)*disk.PageSize : (i+1)*disk.PageSize]
	}
	return p
}

// Len returns the number of frames in the pool.
func (p *Pool) Len() int { return len(p.frames) }

// SetPolicy replaces the replacement policy (QuickStore installs its
// simplified clock after the session is built).
func (p *Pool) SetPolicy(policy Policy) { p.policy = policy }

// Frame returns the frame at index i.
func (p *Pool) Frame(i int) *Frame { return &p.frames[i] }

// Lookup returns the frame index of pid if resident. It does not touch the
// reference bit.
func (p *Pool) Lookup(pid disk.PageID) (int, bool) {
	i, ok := p.index[pid]
	return i, ok
}

// Get returns the frame index of pid if resident, setting the reference bit
// (a logical access for the clock policy).
func (p *Pool) Get(pid disk.PageID) (int, bool) {
	i, ok := p.index[pid]
	if ok {
		p.frames[i].Ref = true
		p.hits++
	}
	return i, ok
}

// Put installs page pid in the pool, evicting a victim if needed, and fills
// the frame via load. It returns the frame index. If the page is already
// resident, load is not called.
func (p *Pool) Put(pid disk.PageID, load func(buf []byte) error) (int, error) {
	if i, ok := p.Get(pid); ok {
		return i, nil
	}
	p.misses++
	i, err := p.freeFrame()
	if err != nil {
		return 0, err
	}
	f := &p.frames[i]
	if err := load(f.Data); err != nil {
		return 0, err
	}
	f.Page = pid
	f.Dirty = false
	f.Ref = true
	f.Pin = 0
	f.Prefetched = false
	f.LSN = 0
	f.Stale = false
	p.index[pid] = i
	return i, nil
}

// PutPrefetched installs a speculative pre-read page image. Unlike Put it
// never displaces demand-loaded pages: it uses an empty frame or evicts
// another not-yet-used prefetched frame, and reports ok=false (page
// dropped) when neither exists, so speculation can never push hot pages
// out of the pool. The frame is installed with the reference bit clear and
// Prefetched set; if the page is already resident the call is a no-op with
// ok=false.
func (p *Pool) PutPrefetched(pid disk.PageID, data []byte) (idx int, ok bool) {
	if _, resident := p.index[pid]; resident {
		return 0, false
	}
	i := -1
	for j := range p.frames {
		if p.frames[j].Page == disk.InvalidPage {
			i = j
			break
		}
	}
	if i < 0 {
		for j := range p.frames {
			f := &p.frames[j]
			if f.Prefetched && f.Pin == 0 {
				if err := p.Evict(j); err != nil {
					return 0, false
				}
				i = j
				break
			}
		}
	}
	if i < 0 {
		return 0, false
	}
	f := &p.frames[i]
	copy(f.Data, data)
	f.Page = pid
	f.Dirty = false
	f.Ref = false
	f.Pin = 0
	f.Prefetched = true
	f.LSN = 0
	f.Stale = false
	p.index[pid] = i
	return i, true
}

// ConsumePrefetched clears frame i's Prefetched flag, reporting whether it
// was set — i.e. whether this access is the first real use of a
// speculative pre-read frame (the caller owes the deferred transfer cost).
func (p *Pool) ConsumePrefetched(i int) bool {
	f := &p.frames[i]
	if !f.Prefetched {
		return false
	}
	f.Prefetched = false
	return true
}

// freeFrame returns an empty frame, evicting one if necessary. Speculative
// prefetched frames that were never used are preferred victims: they cost
// nothing to reread and should never outlive demand-loaded pages.
func (p *Pool) freeFrame() (int, error) {
	for i := range p.frames {
		if p.frames[i].Page == disk.InvalidPage {
			return i, nil
		}
	}
	for i := range p.frames {
		f := &p.frames[i]
		if f.Prefetched && f.Pin == 0 {
			if err := p.Evict(i); err != nil {
				return 0, err
			}
			return i, nil
		}
	}
	i, err := p.policy.Victim(p)
	if err != nil {
		return 0, err
	}
	if err := p.Evict(i); err != nil {
		return 0, err
	}
	return i, nil
}

// Evict removes the page in frame i from the pool, flushing it first if
// dirty. The frame must be unpinned.
func (p *Pool) Evict(i int) error {
	f := &p.frames[i]
	if f.Page == disk.InvalidPage {
		return nil
	}
	if f.Pin != 0 {
		return fmt.Errorf("buffer: evicting pinned page %d", f.Page)
	}
	if f.Dirty && p.FlushFn != nil {
		if err := p.FlushFn(f.Page, f.Data); err != nil {
			return err
		}
	}
	pid := f.Page
	wasted := f.Prefetched
	delete(p.index, pid)
	f.Page = disk.InvalidPage
	f.Dirty = false
	f.Ref = false
	f.Prefetched = false
	f.LSN = 0
	f.Stale = false
	p.evicted++
	if wasted && p.OnPrefetchDrop != nil {
		p.OnPrefetchDrop(pid)
	}
	if p.OnEvict != nil {
		p.OnEvict(pid, i)
	}
	return nil
}

// Pin increments the pin count of frame i.
func (p *Pool) Pin(i int) { p.frames[i].Pin++ }

// Unpin decrements the pin count of frame i.
func (p *Pool) Unpin(i int) {
	if p.frames[i].Pin <= 0 {
		panic("buffer: unpin of unpinned frame")
	}
	p.frames[i].Pin--
}

// MarkDirty flags frame i as modified.
func (p *Pool) MarkDirty(i int) { p.frames[i].Dirty = true }

// FlushAll writes back every dirty page (without evicting). Used at commit
// and checkpoint.
func (p *Pool) FlushAll() error {
	for i := range p.frames {
		f := &p.frames[i]
		if f.Page != disk.InvalidPage && f.Dirty {
			if p.FlushFn != nil {
				if err := p.FlushFn(f.Page, f.Data); err != nil {
					return err
				}
			}
			f.Dirty = false
		}
	}
	return nil
}

// DropAll empties the pool without flushing (used to make caches cold).
func (p *Pool) DropAll() {
	for i := range p.frames {
		f := &p.frames[i]
		if f.Page != disk.InvalidPage {
			pid := f.Page
			wasted := f.Prefetched
			delete(p.index, pid)
			f.Page = disk.InvalidPage
			f.Dirty = false
			f.Ref = false
			f.Pin = 0
			f.Prefetched = false
			f.LSN = 0
			f.Stale = false
			if wasted && p.OnPrefetchDrop != nil {
				p.OnPrefetchDrop(pid)
			}
			if p.OnEvict != nil {
				p.OnEvict(pid, i)
			}
		}
	}
}

// Resident returns the number of pages currently cached.
func (p *Pool) Resident() int { return len(p.index) }

// Stats reports hit/miss/eviction counts.
func (p *Pool) Stats() (hits, misses, evicted int64) { return p.hits, p.misses, p.evicted }

// Clock is the traditional clock replacement policy: sweep frames, skip
// pinned ones, clear set reference bits, and take the first frame whose
// reference bit is already clear.
type Clock struct{}

// Victim implements Policy.
func (Clock) Victim(p *Pool) (int, error) {
	n := p.Len()
	for scanned := 0; scanned < 2*n; scanned++ {
		i := p.Hand
		p.Hand = (p.Hand + 1) % n
		f := p.Frame(i)
		if f.Pin != 0 {
			continue
		}
		if f.Ref {
			f.Ref = false
			continue
		}
		return i, nil
	}
	return 0, ErrNoVictim
}
