package buffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"quickstore/internal/disk"
)

// TestLatchPoolBasics covers the single-threaded contract: load fills a
// frame once, hits pin without reloading, eviction writes dirty pages back
// through FlushFn, and Snapshot copies without perturbing anything.
func TestLatchPoolBasics(t *testing.T) {
	p := NewLatchPool(4)
	var flushed []disk.PageID
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		flushed = append(flushed, pid)
		return nil
	}
	load := func(pid disk.PageID) func([]byte) error {
		return func(buf []byte) error {
			binary.LittleEndian.PutUint32(buf, uint32(pid))
			return nil
		}
	}

	ref, loaded, err := p.Load(7, load(7))
	if err != nil || !loaded {
		t.Fatalf("Load(7) = loaded=%v err=%v, want fresh load", loaded, err)
	}
	ref.Read(func(data []byte) {
		if binary.LittleEndian.Uint32(data) != 7 {
			t.Fatalf("loaded frame holds %d, want 7", binary.LittleEndian.Uint32(data))
		}
	})
	ref.Release()

	ref2, loaded, err := p.Load(7, func([]byte) error {
		t.Fatal("loader ran on a resident page")
		return nil
	})
	if err != nil || loaded {
		t.Fatalf("Load(7) second time = loaded=%v err=%v, want hit", loaded, err)
	}
	ref2.Write(func(data []byte) { binary.LittleEndian.PutUint32(data, 77) })
	ref2.MarkDirty()
	ref2.Release()

	var snap [disk.PageSize]byte
	if !p.Snapshot(7, snap[:]) {
		t.Fatal("Snapshot(7) missed a resident page")
	}
	if binary.LittleEndian.Uint32(snap[:]) != 77 {
		t.Fatalf("snapshot holds %d, want 77", binary.LittleEndian.Uint32(snap[:]))
	}

	// Fill past capacity: page 7 must eventually be written back.
	for pid := disk.PageID(100); pid < 110; pid++ {
		r, _, err := p.Load(pid, load(pid))
		if err != nil {
			t.Fatalf("Load(%d): %v", pid, err)
		}
		r.Release()
	}
	found := false
	for _, pid := range flushed {
		if pid == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty page 7 evicted without write-back (flushed: %v)", flushed)
	}
	hits, misses, evicted := p.Stats()
	if hits == 0 || misses == 0 || evicted == 0 {
		t.Fatalf("stats hits=%d misses=%d evicted=%d, want all nonzero", hits, misses, evicted)
	}
}

// TestLatchPoolLoadDedup proves the in-flight dedup: many goroutines
// faulting the same page concurrently issue exactly one load.
func TestLatchPoolLoadDedup(t *testing.T) {
	p := NewLatchPool(8)
	var loads atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var loadedCount atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			ref, loaded, err := p.Load(42, func(buf []byte) error {
				loads.Add(1)
				binary.LittleEndian.PutUint32(buf, 42)
				return nil
			})
			if err != nil {
				t.Errorf("Load: %v", err)
				return
			}
			if loaded {
				loadedCount.Add(1)
			}
			ref.Read(func(data []byte) {
				if binary.LittleEndian.Uint32(data) != 42 {
					t.Errorf("read %d, want 42", binary.LittleEndian.Uint32(data))
				}
			})
			ref.Release()
		}()
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d loads issued for one page, want 1 (dedup)", n)
	}
	if n := loadedCount.Load(); n != 1 {
		t.Fatalf("%d callers report loaded=true, want 1", n)
	}
}

// TestLatchPoolLoadErrorPropagates checks that a failed load reaches both
// the loader and any rider deduped onto it, and leaves no residue.
func TestLatchPoolLoadErrorPropagates(t *testing.T) {
	p := NewLatchPool(4)
	boom := errors.New("bad sector")
	if _, _, err := p.Load(9, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Load error = %v, want %v", err, boom)
	}
	// The page must not be resident; a retry loads again.
	ref, loaded, err := p.Load(9, func(buf []byte) error { return nil })
	if err != nil || !loaded {
		t.Fatalf("retry Load = loaded=%v err=%v, want fresh load", loaded, err)
	}
	ref.Release()
}

// TestLatchPoolParallelStress is the satellite -race stress: goroutines
// hammer Load/Get/Snapshot/Write/MarkDirty/Release across stripes while
// capacity pressure forces constant eviction, and every read must observe
// a consistent page image (the content latch forbids torn reads).
func TestLatchPoolParallelStress(t *testing.T) {
	const (
		frames  = 32
		pages   = 256
		workers = 8
		iters   = 2000
	)
	p := NewLatchPool(frames)
	var store sync.Map // pid -> latest committed stamp
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		a := binary.LittleEndian.Uint64(data[8:])
		b := binary.LittleEndian.Uint64(data[16:])
		if a != b {
			return fmt.Errorf("torn write-back of page %d: %d != %d", pid, a, b)
		}
		store.Store(pid, a)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				pid := disk.PageID(1 + rng.Intn(pages)) // 0 is InvalidPage, never cached
				ref, _, err := p.Load(pid, func(buf []byte) error {
					var stamp uint64
					if v, ok := store.Load(pid); ok {
						stamp = v.(uint64)
					}
					binary.LittleEndian.PutUint64(buf[8:], stamp)
					binary.LittleEndian.PutUint64(buf[16:], stamp)
					return nil
				})
				if err != nil {
					t.Errorf("Load(%d): %v", pid, err)
					return
				}
				if rng.Intn(3) == 0 {
					ref.Write(func(data []byte) {
						stamp := binary.LittleEndian.Uint64(data[8:]) + 1
						binary.LittleEndian.PutUint64(data[8:], stamp)
						binary.LittleEndian.PutUint64(data[16:], stamp)
					})
					ref.MarkDirty()
				} else {
					ref.Read(func(data []byte) {
						a := binary.LittleEndian.Uint64(data[8:])
						b := binary.LittleEndian.Uint64(data[16:])
						if a != b {
							t.Errorf("torn read of page %d: %d != %d", pid, a, b)
						}
					})
				}
				if rng.Intn(4) == 0 {
					var snap [disk.PageSize]byte
					p.Snapshot(pid, snap[:])
				}
				ref.Release()
			}
		}(w)
	}
	wg.Wait()
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
}

// TestLatchPoolPrefetchConsumeVsEvict is the satellite race between
// consuming a prefetched frame and evicting it: installers plant
// speculative pages, readers consume them, and loaders churn the pool so
// prefetched frames are constantly chosen as victims.
func TestLatchPoolPrefetchConsumeVsEvict(t *testing.T) {
	const (
		frames  = 16
		pages   = 64
		workers = 6
		iters   = 1500
	)
	p := NewLatchPool(frames)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			img := make([]byte, disk.PageSize)
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				pid := disk.PageID(1 + rng.Intn(pages)) // 0 is InvalidPage, never cached
				switch rng.Intn(3) {
				case 0:
					binary.LittleEndian.PutUint32(img, uint32(pid))
					p.PutPrefetched(pid, img)
				case 1:
					if ref, ok := p.Get(pid); ok {
						ref.ConsumePrefetched()
						ref.Read(func([]byte) {})
						ref.Release()
					}
				default:
					ref, _, err := p.Load(pid, func(buf []byte) error {
						binary.LittleEndian.PutUint32(buf, uint32(pid))
						return nil
					})
					if err != nil {
						t.Errorf("Load(%d): %v", pid, err)
						return
					}
					ref.Read(func(data []byte) {
						if got := disk.PageID(binary.LittleEndian.Uint32(data)); got != pid {
							t.Errorf("frame for page %d holds image of page %d", pid, got)
						}
					})
					ref.Release()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLatchPoolStripes pins the stripe sizing: tiny pools collapse to one
// stripe (still correct, no parallelism) and big pools cap at 64.
func TestLatchPoolStripes(t *testing.T) {
	for _, tc := range []struct{ frames, want int }{
		{1, 1}, {2, 1}, {8, 1}, {16, 2}, {64, 8}, {512, 64}, {4608, 64},
	} {
		if got := NewLatchPool(tc.frames).Stripes(); got != tc.want {
			t.Errorf("NewLatchPool(%d).Stripes() = %d, want %d", tc.frames, got, tc.want)
		}
	}
}
