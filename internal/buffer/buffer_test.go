package buffer

import (
	"errors"
	"testing"

	"quickstore/internal/disk"
)

func loadTag(tag byte) func([]byte) error {
	return func(buf []byte) error {
		for i := range buf {
			buf[i] = tag
		}
		return nil
	}
}

func TestPutGetHit(t *testing.T) {
	p := New(4, nil)
	i, err := p.Put(10, loadTag(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Frame(i).Data[0] != 1 {
		t.Fatal("loader did not run")
	}
	j, ok := p.Get(10)
	if !ok || j != i {
		t.Fatal("Get missed a resident page")
	}
	// Second Put is a hit: loader must not run again.
	k, err := p.Put(10, func([]byte) error { t.Fatal("loader reran"); return nil })
	if err != nil || k != i {
		t.Fatal("Put on resident page misbehaved")
	}
	hits, misses, _ := p.Stats()
	if hits < 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestClockEviction(t *testing.T) {
	p := New(3, nil)
	for pid := disk.PageID(1); pid <= 3; pid++ {
		if _, err := p.Put(pid, loadTag(byte(pid))); err != nil {
			t.Fatal(err)
		}
	}
	// All ref bits set; inserting page 4 sweeps (clearing bits) and evicts
	// the first frame on the second pass.
	if _, err := p.Put(4, loadTag(4)); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 3 {
		t.Fatalf("resident = %d", p.Resident())
	}
	if _, ok := p.Lookup(4); !ok {
		t.Fatal("page 4 not resident")
	}
	_, _, evicted := p.Stats()
	if evicted != 1 {
		t.Fatalf("evicted = %d", evicted)
	}
}

func TestClockPrefersUnreferenced(t *testing.T) {
	p := New(3, nil)
	p.Put(1, loadTag(1))
	p.Put(2, loadTag(2))
	p.Put(3, loadTag(3))
	// Sweep once to clear all ref bits (simulate by filling and evicting).
	// Touch pages 1 and 3 so page 2 is the cold one after a sweep.
	for i := range [3]int{} {
		p.Frame(i).Ref = false
	}
	p.Get(1)
	p.Get(3)
	if _, err := p.Put(4, loadTag(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup(2); ok {
		t.Fatal("clock evicted a referenced page instead of page 2")
	}
	for _, pid := range []disk.PageID{1, 3, 4} {
		if _, ok := p.Lookup(pid); !ok {
			t.Fatalf("page %d missing", pid)
		}
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p := New(2, nil)
	i, _ := p.Put(1, loadTag(1))
	p.Pin(i)
	p.Put(2, loadTag(2))
	// Only page 2 is evictable.
	if _, err := p.Put(3, loadTag(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup(1); !ok {
		t.Fatal("pinned page evicted")
	}
	p.Unpin(i)
	// Everything pinned -> no victim.
	j, _ := p.Lookup(3)
	p.Pin(i)
	p.Pin(j)
	if _, err := p.Put(4, loadTag(4)); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("expected ErrNoVictim, got %v", err)
	}
}

func TestDirtyFlushOnEvict(t *testing.T) {
	flushed := map[disk.PageID][]byte{}
	p := New(1, nil)
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		flushed[pid] = append([]byte(nil), data...)
		return nil
	}
	var evicts []disk.PageID
	p.OnEvict = func(pid disk.PageID, frame int) { evicts = append(evicts, pid) }

	i, _ := p.Put(1, loadTag(1))
	p.Frame(i).Data[0] = 0xEE
	p.MarkDirty(i)
	p.Frame(i).Ref = false
	if _, err := p.Put(2, loadTag(2)); err != nil {
		t.Fatal(err)
	}
	if flushed[1] == nil || flushed[1][0] != 0xEE {
		t.Fatal("dirty page not flushed with its final contents")
	}
	if len(evicts) != 1 || evicts[0] != 1 {
		t.Fatalf("OnEvict calls: %v", evicts)
	}
	// Clean evictions skip the flush but still notify.
	p.Frame(0).Ref = false
	if _, err := p.Put(3, loadTag(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := flushed[2]; ok {
		t.Fatal("clean page was flushed")
	}
	if len(evicts) != 2 || evicts[1] != 2 {
		t.Fatalf("OnEvict calls: %v", evicts)
	}
}

func TestFlushAllAndDropAll(t *testing.T) {
	var flushed []disk.PageID
	p := New(4, nil)
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		flushed = append(flushed, pid)
		return nil
	}
	i1, _ := p.Put(1, loadTag(1))
	p.Put(2, loadTag(2))
	p.MarkDirty(i1)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 1 || flushed[0] != 1 {
		t.Fatalf("FlushAll flushed %v", flushed)
	}
	if p.Frame(i1).Dirty {
		t.Fatal("dirty bit survived FlushAll")
	}
	p.DropAll()
	if p.Resident() != 0 {
		t.Fatal("DropAll left pages resident")
	}
}

func TestUnpinPanicsWhenNotPinned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p := New(1, nil)
	i, _ := p.Put(1, loadTag(1))
	p.Unpin(i)
}

// countingPolicy wraps Clock and counts victim selections.
type countingPolicy struct {
	calls int
}

func (p *countingPolicy) Victim(pool *Pool) (int, error) {
	p.calls++
	return Clock{}.Victim(pool)
}

func TestSetPolicySwapsAtRuntime(t *testing.T) {
	p := New(1, nil)
	cp := &countingPolicy{}
	p.SetPolicy(cp)
	p.Put(1, loadTag(1))
	p.Frame(0).Ref = false
	p.Put(2, loadTag(2)) // needs a victim -> custom policy consulted
	if cp.calls != 1 {
		t.Fatalf("custom policy called %d times", cp.calls)
	}
}

func TestEvictEmptyFrameIsNoop(t *testing.T) {
	p := New(2, nil)
	if err := p.Evict(0); err != nil {
		t.Fatalf("evicting an empty frame: %v", err)
	}
}

func TestEvictPinnedFails(t *testing.T) {
	p := New(1, nil)
	i, _ := p.Put(1, loadTag(1))
	p.Pin(i)
	if err := p.Evict(i); err == nil {
		t.Fatal("evicted a pinned frame")
	}
}
