package buffer

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"quickstore/internal/disk"
)

func pageImage(tag byte) []byte {
	return bytes.Repeat([]byte{tag}, disk.PageSize)
}

func TestPutPrefetchedBasics(t *testing.T) {
	p := New(2, nil)
	i, ok := p.PutPrefetched(1, pageImage(0xA1))
	if !ok {
		t.Fatal("install into empty pool failed")
	}
	f := p.Frame(i)
	if !f.Prefetched || f.Ref || f.Pin != 0 || f.Data[0] != 0xA1 {
		t.Fatalf("bad speculative frame: %+v", f)
	}
	// Installing a resident page is a no-op.
	if _, ok := p.PutPrefetched(1, pageImage(0xB2)); ok {
		t.Fatal("reinstalled a resident page")
	}
	if f.Data[0] != 0xA1 {
		t.Fatal("no-op install overwrote the frame")
	}
	// First use clears the flag exactly once.
	if !p.ConsumePrefetched(i) {
		t.Fatal("first consume reported no prefetch")
	}
	if p.ConsumePrefetched(i) {
		t.Fatal("second consume reported a prefetch")
	}
}

func TestPutPrefetchedNeverEvictsDemandPages(t *testing.T) {
	p := New(2, nil)
	p.Put(1, loadTag(1))
	p.Put(2, loadTag(2))
	// Pool full of demand-loaded pages: speculation is refused.
	if _, ok := p.PutPrefetched(3, pageImage(3)); ok {
		t.Fatal("speculative install displaced a demand-loaded page")
	}
	if p.Resident() != 2 {
		t.Fatalf("resident = %d", p.Resident())
	}
	for _, pid := range []disk.PageID{1, 2} {
		if _, ok := p.Lookup(pid); !ok {
			t.Fatalf("page %d evicted by refused speculation", pid)
		}
	}
}

func TestPutPrefetchedEvictsOlderPrefetch(t *testing.T) {
	var dropped []disk.PageID
	p := New(2, nil)
	p.OnPrefetchDrop = func(pid disk.PageID) { dropped = append(dropped, pid) }
	p.Put(1, loadTag(1))
	if _, ok := p.PutPrefetched(2, pageImage(2)); !ok {
		t.Fatal("install failed")
	}
	// Pool full; the unused speculative frame for page 2 is the victim.
	if _, ok := p.PutPrefetched(3, pageImage(3)); !ok {
		t.Fatal("install over older prefetch failed")
	}
	if _, ok := p.Lookup(2); ok {
		t.Fatal("older prefetched page still resident")
	}
	if _, ok := p.Lookup(3); !ok {
		t.Fatal("newer prefetched page missing")
	}
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Fatalf("OnPrefetchDrop calls: %v (want [2])", dropped)
	}
	// A consumed (used) prefetched frame is no longer a speculation victim.
	i, _ := p.Lookup(3)
	p.ConsumePrefetched(i)
	if _, ok := p.PutPrefetched(4, pageImage(4)); ok {
		t.Fatal("speculation displaced a consumed page")
	}
}

func TestFreeFramePrefersPrefetchedVictims(t *testing.T) {
	var dropped []disk.PageID
	p := New(2, nil)
	p.OnPrefetchDrop = func(pid disk.PageID) { dropped = append(dropped, pid) }
	p.Put(1, loadTag(1))
	p.PutPrefetched(2, pageImage(2))
	// A demand load with the pool full must sacrifice the unused
	// speculative frame, not consult the clock.
	if _, err := p.Put(3, loadTag(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup(1); !ok {
		t.Fatal("demand-loaded page evicted while a speculative one remained")
	}
	if _, ok := p.Lookup(2); ok {
		t.Fatal("speculative page survived demand pressure")
	}
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Fatalf("wasted prefetches: %v (want [2])", dropped)
	}
}

func TestDropAllCountsWastedPrefetches(t *testing.T) {
	var dropped []disk.PageID
	p := New(4, nil)
	p.OnPrefetchDrop = func(pid disk.PageID) { dropped = append(dropped, pid) }
	p.Put(1, loadTag(1))
	p.PutPrefetched(2, pageImage(2))
	p.PutPrefetched(3, pageImage(3))
	i, _ := p.Lookup(3)
	p.ConsumePrefetched(i) // page 3 was used; only page 2 is waste
	p.DropAll()
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Fatalf("wasted prefetches: %v (want [2])", dropped)
	}
}

// TestConcurrentPinUnpinEvict hammers one pool from many goroutines under an
// external mutex — the synchronization model the Pool documents (one owner
// session serializes access) — and checks the invariants hold throughout.
// Run with -race: the point is that the lock discipline plus the pool's
// callback structure stays race-free even when callbacks re-enter pool state.
func TestConcurrentPinUnpinEvict(t *testing.T) {
	const (
		frames  = 16
		pages   = 64
		workers = 8
		iters   = 2000
	)
	var mu sync.Mutex
	p := New(frames, nil)
	p.FlushFn = func(pid disk.PageID, data []byte) error { return nil }
	p.OnEvict = func(pid disk.PageID, frame int) {
		// Re-enter the pool from the callback, as core.Store's hook does.
		_, _ = p.Lookup(pid)
	}
	p.OnPrefetchDrop = func(pid disk.PageID) { _, _ = p.Lookup(pid) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				pid := disk.PageID(1 + rng.Intn(pages))
				mu.Lock()
				switch rng.Intn(6) {
				case 0, 1: // demand load + touch
					if i, err := p.Put(pid, loadTag(byte(pid))); err == nil {
						if p.Frame(i).Data[0] != byte(pid) {
							t.Errorf("frame %d holds wrong image", i)
						}
					}
				case 2: // pin/unpin cycle
					if i, ok := p.Get(pid); ok {
						p.Pin(i)
						p.Frame(i).Data[1] = byte(w)
						p.Unpin(i)
					}
				case 3: // explicit evict
					if i, ok := p.Lookup(pid); ok && p.Frame(i).Pin == 0 {
						if err := p.Evict(i); err != nil {
							t.Errorf("evict: %v", err)
						}
					}
				case 4: // speculative install
					p.PutPrefetched(pid, pageImage(byte(pid)))
				case 5: // consume if prefetched
					if i, ok := p.Lookup(pid); ok {
						p.ConsumePrefetched(i)
					}
				}
				if p.Resident() > frames {
					t.Errorf("resident %d > frames %d", p.Resident(), frames)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Final integrity sweep: the index and frames must agree.
	seen := 0
	for i := 0; i < p.Len(); i++ {
		f := p.Frame(i)
		if f.Page == disk.InvalidPage {
			continue
		}
		seen++
		if j, ok := p.Lookup(f.Page); !ok || j != i {
			t.Errorf("index out of sync for page %d (frame %d)", f.Page, i)
		}
		if f.Pin != 0 {
			t.Errorf("frame %d left pinned", i)
		}
	}
	if seen != p.Resident() {
		t.Errorf("%d occupied frames vs %d indexed", seen, p.Resident())
	}
}
