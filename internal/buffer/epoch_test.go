package buffer

import (
	"errors"
	"sync"
	"testing"

	"quickstore/internal/disk"
)

// loadPage makes pid resident and returns a pinned ref.
func loadPage(t *testing.T, p *LatchPool, pid disk.PageID) *PageRef {
	t.Helper()
	ref, _, err := p.Load(pid, func(buf []byte) error { return nil })
	if err != nil {
		t.Fatalf("load %d: %v", pid, err)
	}
	return ref
}

// FlushBefore drains exactly the generation dirtied before the epoch cut,
// leaving post-cut dirt alone.
func TestFlushBeforeSplitsGenerations(t *testing.T) {
	var mu sync.Mutex
	flushed := map[disk.PageID]int{}
	p := NewLatchPool(8)
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		mu.Lock()
		flushed[pid]++
		mu.Unlock()
		return nil
	}

	a := loadPage(t, p, 11)
	a.MarkDirty()
	a.Release()

	e := p.AdvanceEpoch()

	b := loadPage(t, p, 12)
	b.MarkDirty()
	b.Release()

	if n := p.DirtyBefore(e); n != 1 {
		t.Fatalf("DirtyBefore(%d) = %d, want 1 (only the pre-cut page)", e, n)
	}
	if err := p.FlushBefore(e); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fa, fb := flushed[11], flushed[12]
	mu.Unlock()
	if fa != 1 || fb != 0 {
		t.Fatalf("flushed pre-cut %d times, post-cut %d times; want 1, 0", fa, fb)
	}
	if n := p.DirtyBefore(e); n != 0 {
		t.Fatalf("pre-cut generation not drained: %d frames", n)
	}
	// The post-cut page is still dirty and reachable by a full flush.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fb = flushed[12]
	mu.Unlock()
	if fb != 1 {
		t.Fatalf("post-cut page lost: flushed %d times", fb)
	}
}

// A frame already dirty keeps its older stamp across later MarkDirty
// calls: its bytes still include pre-cut changes.
func TestMarkDirtyKeepsOldestStamp(t *testing.T) {
	p := NewLatchPool(8)
	p.FlushFn = func(pid disk.PageID, data []byte) error { return nil }
	a := loadPage(t, p, 5)
	a.MarkDirty()
	e := p.AdvanceEpoch()
	a.MarkDirty() // re-dirty after the cut: must NOT move into the new generation
	a.Release()
	if n := p.DirtyBefore(e); n != 1 {
		t.Fatalf("re-marked frame left the pre-cut generation: DirtyBefore = %d", n)
	}
}

// A failed write-back restores the dirty flag with the pre-cut stamp, so a
// retrying checkpoint sees the frame again.
func TestFlushBeforeFailureRestoresStamp(t *testing.T) {
	fail := true
	p := NewLatchPool(8)
	p.FlushFn = func(pid disk.PageID, data []byte) error {
		if fail {
			return errors.New("transient device error")
		}
		return nil
	}
	a := loadPage(t, p, 7)
	a.MarkDirty()
	a.Release()
	e := p.AdvanceEpoch()
	if err := p.FlushBefore(e); err == nil {
		t.Fatal("expected injected flush error")
	}
	if n := p.DirtyBefore(e); n != 1 {
		t.Fatalf("failed flush lost the pre-cut stamp: DirtyBefore = %d", n)
	}
	fail = false
	if err := p.FlushBefore(e); err != nil {
		t.Fatal(err)
	}
	if n := p.DirtyBefore(e); n != 0 {
		t.Fatalf("retry did not drain: DirtyBefore = %d", n)
	}
}
