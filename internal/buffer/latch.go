package buffer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"quickstore/internal/disk"
)

// LatchPool is the internally synchronized buffer pool used by the page
// server. Where Pool belongs to one single-threaded session, a LatchPool is
// shared by every client connection the server handles concurrently:
//
//   - Frames are partitioned into stripes (page id modulo stripe count),
//     each guarded by its own latch, so lookups and hits on different
//     stripes never contend.
//   - Each frame carries a pin count (guarded by the stripe latch) and a
//     content latch (an RWMutex over the page bytes), so readers copying a
//     page out overlap each other and exclude only writers.
//   - All I/O — demand loads and eviction write-backs — happens with no
//     stripe latch held. A per-page in-flight table dedups concurrent
//     loads (two clients faulting the same page issue one disk read) and
//     makes loads of an evicting page wait for its write-back, so the
//     reload cannot read the stale disk image.
//
// Lock order within the pool: stripe latch → frame content latch. FlushFn
// runs with only a content read latch held, so it may take the WAL and
// volume locks (the server's steal path does) but must never re-enter the
// pool.
type LatchPool struct {
	stripes []latchStripe
	mask    uint32 // len(stripes) - 1; stripe count is a power of two
	nframes int

	// FlushFn, if set, writes back a dirty page before its frame is reused
	// (and during FlushAll). Set it before the pool is shared.
	FlushFn func(pid disk.PageID, data []byte) error

	// epoch is the fuzzy-checkpoint clock: every clean→dirty transition
	// stamps the frame with the current value, and AdvanceEpoch starts a
	// new generation so a checkpoint can flush exactly the pages dirtied
	// before its cut while writers keep dirtying pages behind it.
	epoch atomic.Uint64

	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
	resident atomic.Int64
}

type latchStripe struct {
	mu       sync.Mutex
	frames   []latchFrame
	index    map[disk.PageID]int
	hand     int
	inflight map[disk.PageID]*inflight
}

type latchFrame struct {
	page       disk.PageID
	data       []byte
	pin        int
	ref        bool
	dirty      bool
	dirtyEpoch uint64 // pool epoch at the clean→dirty transition
	prefetched bool
	content    sync.RWMutex
}

// inflight marks a page with I/O in progress: a demand load filling a
// frame, or an eviction writing one back. Waiters block on done, then
// re-examine the stripe. err is written before done closes.
type inflight struct {
	done chan struct{}
	err  error
	load bool // a demand load (waiters may adopt err); else an eviction
}

// maxReserveSpins bounds the retry loop when every frame in a stripe is
// transiently pinned. Pins in the server are held only across a page copy,
// so thousands of yields mean a real leak, not contention.
const maxReserveSpins = 100000

// NewLatchPool creates a pool of nframes 8K frames. The stripe count is
// derived from the frame count: one latch per ~8 frames, capped at 64.
func NewLatchPool(nframes int) *LatchPool {
	nstripes := 1
	for nstripes*2 <= nframes/8 && nstripes*2 <= 64 {
		nstripes *= 2
	}
	p := &LatchPool{
		stripes: make([]latchStripe, nstripes),
		mask:    uint32(nstripes - 1),
		nframes: nframes,
	}
	backing := make([]byte, nframes*disk.PageSize)
	next := 0
	for i := range p.stripes {
		n := nframes / nstripes
		if i < nframes%nstripes {
			n++
		}
		s := &p.stripes[i]
		s.frames = make([]latchFrame, n)
		s.index = make(map[disk.PageID]int, n)
		s.inflight = map[disk.PageID]*inflight{}
		for j := range s.frames {
			s.frames[j].data = backing[next*disk.PageSize : (next+1)*disk.PageSize : (next+1)*disk.PageSize]
			next++
		}
	}
	return p
}

func (p *LatchPool) stripe(pid disk.PageID) *latchStripe {
	return &p.stripes[uint32(pid)&p.mask]
}

// Len returns the number of frames in the pool.
func (p *LatchPool) Len() int { return p.nframes }

// Stripes returns the stripe count (tests and stats).
func (p *LatchPool) Stripes() int { return len(p.stripes) }

// Resident returns the number of pages currently cached.
func (p *LatchPool) Resident() int { return int(p.resident.Load()) }

// Stats reports hit/miss/eviction counts.
func (p *LatchPool) Stats() (hits, misses, evicted int64) {
	return p.hits.Load(), p.misses.Load(), p.evicted.Load()
}

// PageRef is a pinned reference to a resident page. The frame cannot be
// evicted or reused while the reference is held. Access the bytes through
// Read/Write (which take the frame's content latch) and call Release
// exactly once when done.
type PageRef struct {
	pool *LatchPool
	s    *latchStripe
	idx  int
	pid  disk.PageID
}

// Page returns the page id the reference pins.
func (r *PageRef) Page() disk.PageID { return r.pid }

// Read calls fn with the page bytes under the frame's shared content
// latch. fn must not retain the slice or re-enter the pool.
func (r *PageRef) Read(fn func(data []byte)) {
	f := &r.s.frames[r.idx]
	f.content.RLock()
	fn(f.data)
	f.content.RUnlock()
}

// Write calls fn with the page bytes under the frame's exclusive content
// latch. It does not mark the frame dirty; call MarkDirty if fn modified
// the page. fn must not retain the slice or re-enter the pool.
func (r *PageRef) Write(fn func(data []byte)) {
	f := &r.s.frames[r.idx]
	f.content.Lock()
	fn(f.data)
	f.content.Unlock()
}

// MarkDirty flags the pinned frame as modified. Only the clean→dirty
// transition stamps the epoch: a frame already dirty keeps its older stamp,
// because its bytes still include changes from that older generation.
func (r *PageRef) MarkDirty() {
	r.s.mu.Lock()
	f := &r.s.frames[r.idx]
	if !f.dirty {
		f.dirty = true
		f.dirtyEpoch = r.pool.epoch.Load()
	}
	r.s.mu.Unlock()
}

// ConsumePrefetched clears the frame's speculative flag, reporting whether
// this reference is the first real use of a prefetched page.
func (r *PageRef) ConsumePrefetched() bool {
	r.s.mu.Lock()
	f := &r.s.frames[r.idx]
	was := f.prefetched
	f.prefetched = false
	r.s.mu.Unlock()
	return was
}

// Release drops the pin. The reference must not be used afterwards.
func (r *PageRef) Release() {
	if r.pool == nil {
		panic("buffer: double release of page reference")
	}
	r.s.mu.Lock()
	f := &r.s.frames[r.idx]
	if f.pin <= 0 {
		r.s.mu.Unlock()
		panic("buffer: release of unpinned frame")
	}
	f.pin--
	r.s.mu.Unlock()
	r.pool = nil
}

// Get returns a pinned reference to pid if resident, setting the reference
// bit. It does not wait for in-flight loads; use Load for read-through.
func (p *LatchPool) Get(pid disk.PageID) (*PageRef, bool) {
	s := p.stripe(pid)
	s.mu.Lock()
	i, ok := s.index[pid]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	f := &s.frames[i]
	f.ref = true
	f.pin++
	s.mu.Unlock()
	p.hits.Add(1)
	return &PageRef{pool: p, s: s, idx: i, pid: pid}, true
}

// Load returns a pinned reference to pid, calling load to fill a frame on
// a miss. loaded reports whether this call performed the load: a caller
// that rode another client's in-flight load of the same page gets
// loaded=false (its I/O was deduplicated), exactly like a hit. The load
// callback and any eviction write-back run with no stripe latch held.
func (p *LatchPool) Load(pid disk.PageID, load func(buf []byte) error) (ref *PageRef, loaded bool, err error) {
	s := p.stripe(pid)
	for {
		s.mu.Lock()
		if i, ok := s.index[pid]; ok {
			f := &s.frames[i]
			f.ref = true
			f.pin++
			s.mu.Unlock()
			p.hits.Add(1)
			return &PageRef{pool: p, s: s, idx: i, pid: pid}, false, nil
		}
		if fl := s.inflight[pid]; fl != nil {
			isLoad := fl.load
			s.mu.Unlock()
			<-fl.done
			if isLoad && fl.err != nil {
				// The load we were riding failed; adopt its error, as if
				// our own read had failed.
				return nil, false, fl.err
			}
			continue
		}
		fl := &inflight{done: make(chan struct{}), load: true}
		s.inflight[pid] = fl
		s.mu.Unlock()

		idx, rerr := p.reserveFrame(s)
		if rerr == nil {
			f := &s.frames[idx]
			rerr = load(f.data) // frame is reserved: no latch needed for the fill
			if rerr != nil {
				s.mu.Lock()
				f.pin-- // release the reservation
				delete(s.inflight, pid)
				s.mu.Unlock()
			} else {
				s.mu.Lock()
				f.page = pid
				f.dirty = false
				f.ref = true
				f.prefetched = false
				s.index[pid] = idx
				delete(s.inflight, pid)
				s.mu.Unlock()
				p.misses.Add(1)
				p.resident.Add(1)
			}
		} else {
			s.mu.Lock()
			delete(s.inflight, pid)
			s.mu.Unlock()
		}
		fl.err = rerr
		close(fl.done)
		if rerr != nil {
			return nil, true, rerr
		}
		return &PageRef{pool: p, s: s, idx: idx, pid: pid}, true, nil
	}
}

// reserveFrame returns a free frame in s, pinned (pin=1) so no concurrent
// loader can claim it. Preference order matches Pool.freeFrame: empty
// frames, then never-used prefetched frames, then the stripe's clock
// victim. Dirty victims are written back with the stripe latch released;
// an in-flight entry makes concurrent loads of the victim page wait for
// the write-back before rereading it from the volume.
func (p *LatchPool) reserveFrame(s *latchStripe) (int, error) {
	for spin := 0; ; spin++ {
		s.mu.Lock()
		victim := -1
		for i := range s.frames {
			f := &s.frames[i]
			if f.page == disk.InvalidPage && f.pin == 0 {
				f.pin = 1
				s.mu.Unlock()
				return i, nil
			}
		}
		for i := range s.frames {
			f := &s.frames[i]
			if f.prefetched && f.pin == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			n := len(s.frames)
			for scanned := 0; scanned < 2*n; scanned++ {
				i := s.hand
				s.hand = (s.hand + 1) % n
				f := &s.frames[i]
				if f.pin != 0 {
					continue
				}
				if f.ref {
					f.ref = false
					continue
				}
				victim = i
				break
			}
		}
		if victim < 0 {
			s.mu.Unlock()
			if spin >= maxReserveSpins {
				return 0, ErrNoVictim
			}
			runtime.Gosched()
			continue
		}
		f := &s.frames[victim]
		vpid := f.page
		dirty := f.dirty
		f.pin = 1
		delete(s.index, vpid)
		fl := &inflight{done: make(chan struct{})}
		s.inflight[vpid] = fl
		s.mu.Unlock()

		var werr error
		if dirty && p.FlushFn != nil {
			f.content.RLock()
			werr = p.FlushFn(vpid, f.data)
			f.content.RUnlock()
		}
		s.mu.Lock()
		delete(s.inflight, vpid)
		if werr != nil {
			// The write-back failed: the page stays resident and dirty.
			s.index[vpid] = victim
			f.pin = 0
			s.mu.Unlock()
			close(fl.done)
			return 0, werr
		}
		f.page = disk.InvalidPage
		f.dirty = false
		f.ref = false
		f.prefetched = false
		s.mu.Unlock()
		p.evicted.Add(1)
		p.resident.Add(-1)
		close(fl.done)
		return victim, nil
	}
}

// Snapshot copies pid's current image into dst (PageSize bytes) without
// touching the reference bit or the hit counters, the access discipline of
// speculative batch reads (OpReadPages): served from the pool when
// resident, but never perturbing replacement state.
func (p *LatchPool) Snapshot(pid disk.PageID, dst []byte) bool {
	s := p.stripe(pid)
	s.mu.Lock()
	i, ok := s.index[pid]
	if !ok {
		s.mu.Unlock()
		return false
	}
	f := &s.frames[i]
	f.pin++
	s.mu.Unlock()
	f.content.RLock()
	copy(dst, f.data)
	f.content.RUnlock()
	s.mu.Lock()
	f.pin--
	s.mu.Unlock()
	return true
}

// PutPrefetched installs a speculative pre-read page image under the same
// non-displacement rules as Pool.PutPrefetched: only an empty frame or
// another never-used prefetched frame may hold it, and the install is
// dropped (ok=false) when the page is resident, has I/O in flight, or no
// such frame exists. Prefetched frames are always clean, so the install
// never does I/O and runs entirely under the stripe latch.
func (p *LatchPool) PutPrefetched(pid disk.PageID, data []byte) bool {
	s := p.stripe(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resident := s.index[pid]; resident {
		return false
	}
	if s.inflight[pid] != nil {
		return false
	}
	victim := -1
	for i := range s.frames {
		f := &s.frames[i]
		if f.page == disk.InvalidPage && f.pin == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range s.frames {
			f := &s.frames[i]
			if f.prefetched && f.pin == 0 {
				delete(s.index, f.page)
				p.evicted.Add(1)
				p.resident.Add(-1)
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return false
	}
	f := &s.frames[victim]
	copy(f.data, data)
	f.page = pid
	f.dirty = false
	f.ref = false
	f.prefetched = true
	s.index[pid] = victim
	p.resident.Add(1)
	return true
}

// Evict removes pid from the pool if resident and unpinned, writing it
// back first when dirty. It reports whether the page was evicted.
func (p *LatchPool) Evict(pid disk.PageID) (bool, error) {
	s := p.stripe(pid)
	s.mu.Lock()
	i, ok := s.index[pid]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	f := &s.frames[i]
	if f.pin != 0 {
		s.mu.Unlock()
		return false, fmt.Errorf("buffer: evicting pinned page %d", pid)
	}
	dirty := f.dirty
	f.pin = 1
	delete(s.index, pid)
	fl := &inflight{done: make(chan struct{})}
	s.inflight[pid] = fl
	s.mu.Unlock()

	var werr error
	if dirty && p.FlushFn != nil {
		f.content.RLock()
		werr = p.FlushFn(pid, f.data)
		f.content.RUnlock()
	}
	s.mu.Lock()
	delete(s.inflight, pid)
	if werr != nil {
		s.index[pid] = i
		f.pin = 0
		s.mu.Unlock()
		close(fl.done)
		return false, werr
	}
	f.page = disk.InvalidPage
	f.dirty = false
	f.ref = false
	f.prefetched = false
	f.pin = 0
	s.mu.Unlock()
	p.evicted.Add(1)
	p.resident.Add(-1)
	close(fl.done)
	return true, nil
}

// FlushAll writes back every dirty page without evicting. Dirty flags are
// cleared before each write-back, so a page re-dirtied concurrently stays
// dirty; the flushed image excludes writes that arrive after its content
// latch is taken (a checkpoint never promised to cover them).
func (p *LatchPool) FlushAll() error {
	return p.flushBounded(^uint64(0))
}

// AdvanceEpoch starts a new dirty generation and returns its number e:
// every frame dirtied before the call carries a stamp < e, every frame
// dirtied after it stamps e (or later). A MarkDirty racing the advance may
// land in the old generation — harmless, FlushBefore then covers it too.
func (p *LatchPool) AdvanceEpoch() uint64 {
	return p.epoch.Add(1)
}

// FlushBefore writes back exactly the dirty frames stamped below epoch e,
// leaving frames dirtied in generation e and later alone. This is the
// fuzzy checkpoint's page walk: it drains the pre-cut generation while
// writers keep dirtying pages — whose records lie beyond the checkpoint's
// log cut — behind it. Like FlushAll it never displaces a frame.
func (p *LatchPool) FlushBefore(e uint64) error {
	return p.flushBounded(e)
}

// DirtyBefore counts frames still dirty from a generation below e; zero
// means FlushBefore(e) has fully drained the pre-e generation.
func (p *LatchPool) DirtyBefore(e uint64) int {
	n := 0
	for si := range p.stripes {
		s := &p.stripes[si]
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if f.page != disk.InvalidPage && f.dirty && f.dirtyEpoch < e {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// flushBounded writes back dirty frames stamped below bound. A write-back
// failure restores the dirty flag with the OLDER stamp: if a writer
// re-dirtied the frame mid-flush its new stamp must not hide the fact that
// pre-bound bytes never reached the volume.
func (p *LatchPool) flushBounded(bound uint64) error {
	if p.FlushFn == nil {
		for si := range p.stripes {
			s := &p.stripes[si]
			s.mu.Lock()
			for i := range s.frames {
				if f := &s.frames[i]; f.dirty && f.dirtyEpoch < bound {
					f.dirty = false
				}
			}
			s.mu.Unlock()
		}
		return nil
	}
	for si := range p.stripes {
		s := &p.stripes[si]
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if f.page == disk.InvalidPage || !f.dirty || f.dirtyEpoch >= bound {
				continue
			}
			pid := f.page
			saved := f.dirtyEpoch
			f.dirty = false
			f.pin++
			s.mu.Unlock()
			f.content.RLock()
			err := p.FlushFn(pid, f.data)
			f.content.RUnlock()
			s.mu.Lock()
			f.pin--
			if err != nil {
				if !f.dirty || f.dirtyEpoch > saved {
					f.dirtyEpoch = saved
				}
				f.dirty = true
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// DropAll empties the pool without flushing (used to make caches cold).
// Pinned frames and pages with I/O in flight are skipped; callers drop
// caches only on quiesced servers, where neither exists.
func (p *LatchPool) DropAll() {
	for si := range p.stripes {
		s := &p.stripes[si]
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if f.page == disk.InvalidPage || f.pin != 0 {
				continue
			}
			delete(s.index, f.page)
			f.page = disk.InvalidPage
			f.dirty = false
			f.ref = false
			f.prefetched = false
			p.resident.Add(-1)
		}
		s.mu.Unlock()
	}
}
