package disk

// IOHook intercepts page I/O on a hooked volume. It is the seam the fault
// plane (internal/faultinject) plugs into: deterministic crash drills
// inject read/write faults and torn writes here without the volume
// implementations knowing about fault injection.
type IOHook interface {
	// BeforeRead runs before a page read; a non-nil error aborts the read.
	BeforeRead(id uint32) error
	// BeforeWrite runs before a page write. On a non-nil error the write
	// is torn: only tearPrefix bytes of the new image land (0 = the write
	// never happens, pageSize = it completes just before the fault
	// surfaces), the rest of the page keeps its previous contents.
	BeforeWrite(id uint32, pageSize int) (tearPrefix int, err error)
}

// hookedVolume routes ReadPage/WritePage through an IOHook; every other
// operation delegates to the wrapped volume.
type hookedVolume struct {
	inner Volume
	hook  IOHook
}

// WithHook wraps v so that page I/O consults hook first. A nil hook
// returns v unchanged.
func WithHook(v Volume, hook IOHook) Volume {
	if hook == nil {
		return v
	}
	return &hookedVolume{inner: v, hook: hook}
}

// ReadPage implements Volume.
func (v *hookedVolume) ReadPage(id PageID, buf []byte) error {
	if err := v.hook.BeforeRead(uint32(id)); err != nil {
		return err
	}
	return v.inner.ReadPage(id, buf)
}

// WritePage implements Volume. When the hook injects a fault mid-write,
// the page is left torn exactly as the hook dictates: the first
// tearPrefix bytes of the new image over the old tail.
func (v *hookedVolume) WritePage(id PageID, buf []byte) error {
	tear, err := v.hook.BeforeWrite(uint32(id), PageSize)
	if err == nil {
		return v.inner.WritePage(id, buf)
	}
	if tear >= PageSize {
		// The write completed; the process died on the way back.
		if werr := v.inner.WritePage(id, buf); werr != nil {
			return werr
		}
		return err
	}
	if tear > 0 {
		torn := make([]byte, PageSize)
		if rerr := v.inner.ReadPage(id, torn); rerr == nil {
			copy(torn[:tear], buf[:tear])
			//qsvet:ignore mustcheck deliberately simulating a torn write mid-crash; the crash error below is the outcome
			_ = v.inner.WritePage(id, torn)
		}
	}
	return err
}

// Allocate implements Volume.
func (v *hookedVolume) Allocate(n int) (PageID, error) { return v.inner.Allocate(n) }

// Free implements Volume.
func (v *hookedVolume) Free(id PageID, n int) error { return v.inner.Free(id, n) }

// NumPages implements Volume.
func (v *hookedVolume) NumPages() uint32 { return v.inner.NumPages() }

// AllocatedPages implements Volume.
func (v *hookedVolume) AllocatedPages() uint32 { return v.inner.AllocatedPages() }

// Grow implements Volume.
func (v *hookedVolume) Grow(n uint32) error { return v.inner.Grow(n) }

// Sync implements Volume.
func (v *hookedVolume) Sync() error { return v.inner.Sync() }

// Close implements Volume.
func (v *hookedVolume) Close() error { return v.inner.Close() }

// Unhook returns the volume beneath any hook wrapper, for restart paths
// that must bypass a crashed fault plane.
func Unhook(v Volume) Volume {
	if h, ok := v.(*hookedVolume); ok {
		return Unhook(h.inner)
	}
	return v
}
