package disk

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testVolume(t *testing.T, v Volume) {
	t.Helper()
	// Fresh volume: header page only.
	if got := v.NumPages(); got != 1 {
		t.Fatalf("NumPages = %d, want 1", got)
	}
	if got := v.AllocatedPages(); got != 0 {
		t.Fatalf("AllocatedPages = %d, want 0", got)
	}
	// Allocation hands out pages past the header.
	p1, err := v.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == InvalidPage {
		t.Fatal("allocated the header page")
	}
	run, err := v.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	if run == p1 {
		t.Fatal("run overlaps single page")
	}
	// Write/read round trip on every page of the run.
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		if err := v.WritePage(run+PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		if err := v.ReadPage(run+PageID(i), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) || got[PageSize-1] != byte(i+1) {
			t.Fatalf("page %d content mismatch: %d", i, got[0])
		}
	}
	// Contiguity is what multi-page objects rely on.
	if v.AllocatedPages() != 4 {
		t.Fatalf("AllocatedPages = %d, want 4", v.AllocatedPages())
	}
	// Free then reallocate a single page reuses the free list.
	if err := v.Free(p1, 1); err != nil {
		t.Fatal(err)
	}
	if v.AllocatedPages() != 3 {
		t.Fatalf("AllocatedPages after free = %d, want 3", v.AllocatedPages())
	}
	p2, err := v.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Errorf("free list not reused: got %d, want %d", p2, p1)
	}
	// Out-of-range and misuse errors.
	if err := v.ReadPage(PageID(v.NumPages()+10), got); err == nil {
		t.Error("ReadPage past end succeeded")
	}
	if err := v.WritePage(p2, make([]byte, 17)); err == nil {
		t.Error("WritePage with short buffer succeeded")
	}
	if _, err := v.Allocate(0); err == nil {
		t.Error("Allocate(0) succeeded")
	}
	if err := v.Free(InvalidPage, 1); err == nil {
		t.Error("Free(header) succeeded")
	}
}

func TestMemVolume(t *testing.T) {
	v := NewMemVolume()
	defer v.Close()
	testVolume(t, v)
}

func TestFileVolume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.db")
	v, err := CreateFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	testVolume(t, v)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileVolumePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.db")
	v, err := CreateFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := v.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := v.WritePage(pid+1, want); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := OpenFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.AllocatedPages() != 2 {
		t.Fatalf("AllocatedPages after reopen = %d, want 2", v2.AllocatedPages())
	}
	got := make([]byte, PageSize)
	if err := v2.ReadPage(pid+1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page content lost across reopen")
	}
	// Allocation continues past the persisted pages.
	p, err := v2.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if p <= pid+1 {
		t.Fatalf("reopened volume reallocated live page %d", p)
	}
}

func TestVolumeClosedOps(t *testing.T) {
	v := NewMemVolume()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := v.ReadPage(0, buf); err != ErrClosed {
		t.Errorf("ReadPage on closed volume: %v, want ErrClosed", err)
	}
	if _, err := v.Allocate(1); err != ErrClosed {
		t.Errorf("Allocate on closed volume: %v, want ErrClosed", err)
	}
}

// Property: any interleaving of single-page alloc/free never hands out the
// same live page twice and never loses data written to a live page.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		v := NewMemVolume()
		defer v.Close()
		live := map[PageID]byte{}
		var order []PageID
		seq := byte(1)
		for _, alloc := range ops {
			if alloc || len(order) == 0 {
				pid, err := v.Allocate(1)
				if err != nil {
					return false
				}
				if _, dup := live[pid]; dup {
					return false // double allocation
				}
				buf := bytes.Repeat([]byte{seq}, PageSize)
				if err := v.WritePage(pid, buf); err != nil {
					return false
				}
				live[pid] = seq
				order = append(order, pid)
				seq++
			} else {
				pid := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, pid)
				if err := v.Free(pid, 1); err != nil {
					return false
				}
			}
		}
		buf := make([]byte, PageSize)
		for pid, want := range live {
			if err := v.ReadPage(pid, buf); err != nil {
				return false
			}
			if buf[0] != want || buf[PageSize-1] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
