package disk

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// scriptHook is a programmable IOHook for wrapper tests.
type scriptHook struct {
	readErr  error
	writeErr error
	tear     int
	reads    int
	writes   int
}

func (h *scriptHook) BeforeRead(id uint32) error { h.reads++; return h.readErr }
func (h *scriptHook) BeforeWrite(id uint32, pageSize int) (int, error) {
	h.writes++
	return h.tear, h.writeErr
}

func TestWithHookNilPassthrough(t *testing.T) {
	v := NewMemVolume()
	if WithHook(v, nil) != Volume(v) {
		t.Fatal("nil hook should return the volume unchanged")
	}
}

func TestHookedReadWriteFaults(t *testing.T) {
	v := NewMemVolume()
	pid, err := v.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	h := &scriptHook{}
	hv := WithHook(v, h)
	buf := make([]byte, PageSize)
	if err := hv.WritePage(pid, buf); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	h.readErr = boom
	if err := hv.ReadPage(pid, buf); !errors.Is(err, boom) {
		t.Fatalf("read fault not surfaced: %v", err)
	}
	h.readErr = nil
	h.writeErr = boom
	h.tear = 0
	old := make([]byte, PageSize)
	copy(old, buf)
	newImg := make([]byte, PageSize)
	for i := range newImg {
		newImg[i] = 0xAB
	}
	if err := hv.WritePage(pid, newImg); !errors.Is(err, boom) {
		t.Fatalf("write fault not surfaced: %v", err)
	}
	got := make([]byte, PageSize)
	if err := v.ReadPage(pid, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != old[0] || got[PageSize-1] != old[PageSize-1] {
		t.Fatal("tear=0 write should not have landed")
	}
}

func TestHookedTornWrite(t *testing.T) {
	v := NewMemVolume()
	pid, err := v.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	old := make([]byte, PageSize)
	for i := range old {
		old[i] = 0x11
	}
	if err := v.WritePage(pid, old); err != nil {
		t.Fatal(err)
	}
	h := &scriptHook{writeErr: errors.New("crash"), tear: 100}
	hv := WithHook(v, h)
	newImg := make([]byte, PageSize)
	for i := range newImg {
		newImg[i] = 0x22
	}
	if err := hv.WritePage(pid, newImg); err == nil {
		t.Fatal("torn write did not surface the fault")
	}
	got := make([]byte, PageSize)
	if err := v.ReadPage(pid, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got[i] != 0x22 {
			t.Fatalf("byte %d: torn prefix missing (%#x)", i, got[i])
		}
	}
	for i := 100; i < PageSize; i++ {
		if got[i] != 0x11 {
			t.Fatalf("byte %d: old tail clobbered (%#x)", i, got[i])
		}
	}
}

func TestGrowReservesPages(t *testing.T) {
	for _, mk := range []func(t *testing.T) Volume{
		func(t *testing.T) Volume { return NewMemVolume() },
		func(t *testing.T) Volume {
			v, err := CreateFileVolume(filepath.Join(t.TempDir(), "v"))
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	} {
		v := mk(t)
		if err := v.Grow(50); err != nil {
			t.Fatal(err)
		}
		if v.NumPages() < 50 {
			t.Fatalf("NumPages = %d after Grow(50)", v.NumPages())
		}
		buf := make([]byte, PageSize)
		if err := v.WritePage(49, buf); err != nil {
			t.Fatalf("write to grown page: %v", err)
		}
		// Grown pages are reserved: fresh allocation must not reuse them.
		pid, err := v.Allocate(1)
		if err != nil {
			t.Fatal(err)
		}
		if uint32(pid) < 50 {
			t.Fatalf("Allocate handed out grown page %d", pid)
		}
		v.Close()
	}
}

// TestOpenFileVolumeRepairsStaleHeader models a crash after pages were
// written past the last header sync: reopening must recover the geometry
// from the file size so those pages stay readable and are never
// reallocated over.
func TestOpenFileVolumeRepairsStaleHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v")
	v, err := CreateFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(1); err != nil { // page 1
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil { // header now says 2 pages
		t.Fatal(err)
	}
	// Allocate and write more pages, then "crash" (no Sync, no Close).
	pid, err := v.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	marker := make([]byte, PageSize)
	marker[7] = 0x5A
	for i := 0; i < 3; i++ {
		if err := v.WritePage(pid+PageID(i), marker); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate process death: reopen the file without closing v.
	v2, err := OpenFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if got := v2.NumPages(); got < uint32(pid)+3 {
		t.Fatalf("NumPages = %d after repair, want >= %d", got, uint32(pid)+3)
	}
	buf := make([]byte, PageSize)
	if err := v2.ReadPage(pid+2, buf); err != nil {
		t.Fatalf("grown page unreadable after reopen: %v", err)
	}
	if buf[7] != 0x5A {
		t.Fatal("page written before the crash lost its contents")
	}
	np, err := v2.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if np >= pid && np < pid+3 {
		t.Fatalf("repair let Allocate reuse live page %d", np)
	}
	// The file advertises the repaired size to the next opener too.
	if err := v2.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
}
