// Package disk implements the volume abstraction under the storage manager:
// a flat array of fixed-size 8K-byte pages addressed by PageID, with a free
// list and allocation of contiguous page runs (needed for multi-page
// objects). Two implementations are provided: a file-backed volume and an
// in-memory volume for tests and benchmarks.
//
// The volume knows nothing about transactions, logging, or page contents;
// those belong to the layers above (internal/wal, internal/esm).
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the unit of disk allocation and of client-server transfer,
// matching the paper's ESM configuration.
const PageSize = 8192

// PageID identifies a page within a volume. Page 0 is the volume header and
// is never handed out by allocation.
type PageID uint32

// InvalidPage is the zero PageID; it never refers to user data.
const InvalidPage PageID = 0

// Errors returned by volumes.
var (
	ErrPageOutOfRange = errors.New("disk: page id out of range")
	ErrBadPageSize    = errors.New("disk: buffer is not exactly one page")
	ErrClosed         = errors.New("disk: volume is closed")
	ErrCorruptHeader  = errors.New("disk: corrupt volume header")
)

// Volume is a flat collection of 8K pages with allocation.
type Volume interface {
	// ReadPage fills buf (which must be PageSize bytes) with page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (PageSize bytes) as page id.
	WritePage(id PageID, buf []byte) error
	// Allocate reserves n contiguous pages and returns the first PageID.
	Allocate(n int) (PageID, error)
	// Free returns a previously allocated run to the volume.
	Free(id PageID, n int) error
	// NumPages reports the current size of the volume in pages,
	// including the header page.
	NumPages() uint32
	// AllocatedPages reports the number of currently allocated data pages.
	AllocatedPages() uint32
	// Grow extends the volume to at least n pages and reserves them from
	// future allocation. Restart recovery uses it when the log's redo
	// records reference pages a crash left beyond the volume header's
	// (possibly stale) page count.
	Grow(n uint32) error
	// Sync forces the volume to stable storage.
	Sync() error
	// Close releases resources. The volume must not be used afterwards.
	Close() error
}

// header page layout (page 0):
//
//	[0:8)   magic "QSVOLUME"
//	[8:12)  numPages
//	[12:16) allocated data pages
//	[16:20) next never-used page id (bump allocator)
//	[20:24) free-list head (0 = empty)
//
// Freed single pages are chained through the first 4 bytes of each free
// page. Freed runs longer than one page are chained page by page.
const (
	hdrMagic     = "QSVOLUME"
	hdrNumPages  = 8
	hdrAllocated = 12
	hdrNextFresh = 16
	hdrFreeHead  = 20
)

// volumeCore holds the allocation state shared by both implementations.
// The embedding implementation supplies raw page I/O.
type volumeCore struct {
	mu        sync.Mutex
	numPages  uint32
	allocated uint32
	nextFresh uint32
	freeHead  PageID
	closed    bool
}

func (c *volumeCore) loadHeader(buf []byte) error {
	if string(buf[:8]) != hdrMagic {
		return ErrCorruptHeader
	}
	c.numPages = binary.LittleEndian.Uint32(buf[hdrNumPages:])
	c.allocated = binary.LittleEndian.Uint32(buf[hdrAllocated:])
	c.nextFresh = binary.LittleEndian.Uint32(buf[hdrNextFresh:])
	c.freeHead = PageID(binary.LittleEndian.Uint32(buf[hdrFreeHead:]))
	return nil
}

func (c *volumeCore) storeHeader(buf []byte) {
	copy(buf[:8], hdrMagic)
	binary.LittleEndian.PutUint32(buf[hdrNumPages:], c.numPages)
	binary.LittleEndian.PutUint32(buf[hdrAllocated:], c.allocated)
	binary.LittleEndian.PutUint32(buf[hdrNextFresh:], c.nextFresh)
	binary.LittleEndian.PutUint32(buf[hdrFreeHead:], uint32(c.freeHead))
}

// MemVolume is an in-memory Volume used by tests and the benchmark harness;
// simulated I/O costs are charged by the server layer, not here.
type MemVolume struct {
	volumeCore
	pages [][]byte // index by PageID; pages[0] is the header
}

// NewMemVolume creates an empty in-memory volume.
func NewMemVolume() *MemVolume {
	v := &MemVolume{}
	v.numPages = 1
	v.nextFresh = 1
	v.pages = make([][]byte, 1, 64)
	v.pages[0] = make([]byte, PageSize)
	v.storeHeader(v.pages[0])
	return v
}

// ReadPage implements Volume.
func (v *MemVolume) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageSize
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if uint32(id) >= v.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, v.numPages)
	}
	if v.pages[id] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, v.pages[id])
	return nil
}

// WritePage implements Volume.
func (v *MemVolume) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageSize
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if uint32(id) >= v.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, v.numPages)
	}
	if v.pages[id] == nil {
		v.pages[id] = make([]byte, PageSize)
	}
	copy(v.pages[id], buf)
	return nil
}

// Allocate implements Volume.
func (v *MemVolume) Allocate(n int) (PageID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return InvalidPage, ErrClosed
	}
	return v.allocate(n, func(pid PageID) ([]byte, error) {
		if v.pages[pid] == nil {
			v.pages[pid] = make([]byte, PageSize)
		}
		return v.pages[pid], nil
	}, func(PageID, []byte) error { return nil }, func(newTotal uint32) error {
		for uint32(len(v.pages)) < newTotal {
			v.pages = append(v.pages, nil)
		}
		return nil
	})
}

// Free implements Volume.
func (v *MemVolume) Free(id PageID, n int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	return v.free(id, n, func(pid PageID) ([]byte, error) {
		if v.pages[pid] == nil {
			v.pages[pid] = make([]byte, PageSize)
		}
		return v.pages[pid], nil
	}, func(PageID, []byte) error { return nil })
}

// NumPages implements Volume.
func (v *MemVolume) NumPages() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.numPages
}

// AllocatedPages implements Volume.
func (v *MemVolume) AllocatedPages() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.allocated
}

// Grow implements Volume.
func (v *MemVolume) Grow(n uint32) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	v.growLocked(n)
	for uint32(len(v.pages)) < v.numPages {
		v.pages = append(v.pages, nil)
	}
	return nil
}

// Sync implements Volume (a no-op in memory).
func (v *MemVolume) Sync() error { return nil }

// Close implements Volume.
func (v *MemVolume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	v.pages = nil
	return nil
}

// allocate implements run allocation shared by both volumes. Runs of n > 1
// are always carved from fresh space (contiguity); single pages prefer the
// free list. fetch returns a writable view of a page, flush persists it,
// grow extends the underlying store to newTotal pages.
func (c *volumeCore) allocate(n int, fetch func(PageID) ([]byte, error), flush func(PageID, []byte) error, grow func(uint32) error) (PageID, error) {
	if n <= 0 {
		return InvalidPage, fmt.Errorf("disk: allocate %d pages", n)
	}
	if n == 1 && c.freeHead != InvalidPage {
		pid := c.freeHead
		buf, err := fetch(pid)
		if err != nil {
			return InvalidPage, err
		}
		c.freeHead = PageID(binary.LittleEndian.Uint32(buf[:4]))
		binary.LittleEndian.PutUint32(buf[:4], 0)
		if err := flush(pid, buf); err != nil {
			return InvalidPage, err
		}
		c.allocated++
		return pid, nil
	}
	first := PageID(c.nextFresh)
	newTotal := c.nextFresh + uint32(n)
	if err := grow(newTotal); err != nil {
		return InvalidPage, err
	}
	c.nextFresh = newTotal
	if newTotal > c.numPages {
		c.numPages = newTotal
	}
	c.allocated += uint32(n)
	return first, nil
}

// growLocked reserves every page id below n: the volume covers them and
// the bump allocator will never hand them out again. Pages brought into
// existence this way are counted allocated — recovery only grows over
// pages some crashed-but-logged transaction was using.
func (c *volumeCore) growLocked(n uint32) {
	if n > c.numPages {
		c.numPages = n
	}
	if n > c.nextFresh {
		c.allocated += n - c.nextFresh
		c.nextFresh = n
	}
}

func (c *volumeCore) free(id PageID, n int, fetch func(PageID) ([]byte, error), flush func(PageID, []byte) error) error {
	if n <= 0 || id == InvalidPage || uint32(id)+uint32(n) > c.numPages {
		return fmt.Errorf("%w: free [%d,%d)", ErrPageOutOfRange, id, uint32(id)+uint32(n))
	}
	for i := n - 1; i >= 0; i-- {
		pid := id + PageID(i)
		buf, err := fetch(pid)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(c.freeHead))
		if err := flush(pid, buf); err != nil {
			return err
		}
		c.freeHead = pid
	}
	c.allocated -= uint32(n)
	return nil
}

// FileVolume is an os.File-backed Volume. The header page is rewritten on
// Sync and Close.
type FileVolume struct {
	volumeCore
	f *os.File
}

// CreateFileVolume creates (truncating) a new volume at path.
func CreateFileVolume(path string) (*FileVolume, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	v := &FileVolume{f: f}
	v.numPages = 1
	v.nextFresh = 1
	hdr := make([]byte, PageSize)
	v.storeHeader(hdr)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	return v, nil
}

// OpenFileVolume opens an existing volume at path.
//
// The header page is only rewritten at Sync and Close, so a crash can
// leave it stale: pages written after the last sync lie beyond the
// header's page count. Reopening repairs the geometry from the file size
// — those pages exist and must never be handed out by the allocator again
// — and drops the free-list head, which may chain through pages that were
// reallocated after the header was last written (a leak, never a double
// allocation). Restart recovery then decides the pages' contents.
func OpenFileVolume(path string) (*FileVolume, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	v := &FileVolume{f: f}
	hdr := make([]byte, PageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := v.loadHeader(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if st, err := f.Stat(); err == nil {
		filePages := uint32((st.Size() + PageSize - 1) / PageSize)
		if filePages > v.numPages {
			v.growLocked(filePages)
			v.freeHead = InvalidPage
		}
	}
	return v, nil
}

// ReadPage implements Volume.
func (v *FileVolume) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageSize
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if uint32(id) >= v.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, v.numPages)
	}
	n, err := v.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && n != PageSize {
		// Pages past EOF but inside numPages read as zero: the file is
		// extended lazily.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WritePage implements Volume.
func (v *FileVolume) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageSize
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if uint32(id) >= v.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, v.numPages)
	}
	_, err := v.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// Allocate implements Volume.
func (v *FileVolume) Allocate(n int) (PageID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return InvalidPage, ErrClosed
	}
	scratch := make([]byte, PageSize)
	return v.allocate(n,
		func(pid PageID) ([]byte, error) {
			err := v.readLocked(pid, scratch)
			return scratch, err
		},
		func(pid PageID, buf []byte) error {
			_, err := v.f.WriteAt(buf, int64(pid)*PageSize)
			return err
		},
		func(uint32) error { return nil }, // file grows lazily on write
	)
}

func (v *FileVolume) readLocked(id PageID, buf []byte) error {
	n, err := v.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && n != PageSize {
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	return nil
}

// Free implements Volume.
func (v *FileVolume) Free(id PageID, n int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	scratch := make([]byte, PageSize)
	return v.free(id, n,
		func(pid PageID) ([]byte, error) {
			err := v.readLocked(pid, scratch)
			return scratch, err
		},
		func(pid PageID, buf []byte) error {
			_, err := v.f.WriteAt(buf, int64(pid)*PageSize)
			return err
		},
	)
}

// NumPages implements Volume.
func (v *FileVolume) NumPages() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.numPages
}

// AllocatedPages implements Volume.
func (v *FileVolume) AllocatedPages() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.allocated
}

// Grow implements Volume (the file itself grows lazily on write).
func (v *FileVolume) Grow(n uint32) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	v.growLocked(n)
	return nil
}

// Sync implements Volume, persisting the header and fsyncing the file.
func (v *FileVolume) Sync() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	hdr := make([]byte, PageSize)
	v.storeHeader(hdr)
	if _, err := v.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	return v.f.Sync()
}

// Abandon closes the backing file without rewriting the header, modeling
// a process that died: the header keeps whatever the last Sync wrote,
// stale geometry included. Crash drills use it to release the descriptor
// before reopening the volume the way restart would find it.
func (v *FileVolume) Abandon() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	return v.f.Close()
}

// Close implements Volume.
func (v *FileVolume) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	hdr := make([]byte, PageSize)
	v.storeHeader(hdr)
	_, werr := v.f.WriteAt(hdr, 0)
	v.closed = true
	v.mu.Unlock()
	cerr := v.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
