package esm

import (
	"fmt"
	"sync"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/lock"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// TestCrashUndoesStolenLoserPages drives the full steal-crash-undo path:
// a transaction's dirty page is stolen to the server mid-transaction, the
// client dies before committing, the server restarts, and recovery must
// roll the page back using the log's before-images.
func TestCrashUndoesStolenLoserPages(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := NewServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Committed baseline.
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, data, err := c.CreateObject(cl, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "original")
	c.SetRoot("obj", oid, 0)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Loser transaction: update the object, log the update, and force the
	// dirty page to the server mid-transaction (a steal), then "crash"
	// without commit or abort.
	c2 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 2})
	c2.Begin()
	obj, idx, err := c2.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), obj[:8]...)
	copy(obj, "clobber!")
	c2.Pool().MarkDirty(idx)
	c2.LogUpdate(oid.Page, pageOffOf(t, c2, oid), old, []byte("clobber!"))
	// Steal: force the eviction by filling the 2-frame pool.
	for i := 0; i < 4; i++ {
		if _, _, err := c2.CreateObject(cl, 7000); err != nil {
			t.Fatal(err)
		}
	}
	// The stolen page is on the server, dirty, with a loser's update.
	if err := srv.Checkpoint(); err != nil { // push it all the way to disk
		t.Fatal(err)
	}
	// Prove the dirty page truly reached the volume, so the undo below is
	// exercised for real rather than vacuously passing.
	raw := make([]byte, disk.PageSize)
	if err := vol.ReadPage(oid.Page, raw); err != nil {
		t.Fatal(err)
	}
	pageOff := pageOffOf(t, c2, oid)
	if string(raw[pageOff:pageOff+8]) != "clobber!" {
		t.Fatalf("setup failed: stolen page not on the volume (%q)", raw[pageOff:pageOff+8])
	}
	// Crash: no commit, no abort; restart from the volume and log.
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c3 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	c3.Begin()
	got, _, err := c3.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "original" {
		t.Fatalf("loser update survived the crash: %q", got[:8])
	}
	c3.Commit()
}

func pageOffOf(t *testing.T, c *Client, oid OID) int {
	t.Helper()
	_, off, _, err := c.ReadObjectAt(oid)
	if err != nil {
		t.Fatal(err)
	}
	return off
}

// TestCrashBeforeLogForceLosesNothingCommitted verifies the WAL contract
// from the other side: updates whose commit record was forced survive even
// when the volume never saw the dirty pages.
func TestCrashBeforeVolumeWrite(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := NewServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, data, _ := c.CreateObject(cl, 32)
	copy(data, "v1")
	// Log the whole page image so redo can rebuild it from nothing.
	idx, _ := c.Pool().Lookup(oid.Page)
	img := append([]byte(nil), c.PageData(idx)...)
	c.LogUpdate(oid.Page, 0, nil, img[:4096])
	c.LogUpdate(oid.Page, 4096, nil, img[4096:])
	c.SetRoot("obj", oid, 0)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// No checkpoint: the commit forced the log and made the catalog
	// durable, but the dirty page only lives in the server pool. Losing
	// the page simulates the crash before any write-back.
	zero := make([]byte, disk.PageSize)
	if err := vol.WritePage(oid.Page, zero); err != nil { // lose the page
		t.Fatal(err)
	}
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	c2.Begin()
	got, _, err := c2.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) != "v1" {
		t.Fatalf("committed data lost: %q", got[:2])
	}
	c2.Commit()
}

// TestConcurrentClientsDisjointCommits exercises the lock manager and
// commit path under real concurrency: several client sessions, each with
// its own file and pages, commit interleaved transactions.
func TestConcurrentClientsDisjointCommits(t *testing.T) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 512, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	const nClients = 6
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
			if err := c.Begin(); err != nil {
				errs <- err
				return
			}
			fid, err := c.CreateFile(fmt.Sprintf("file-%d", w))
			if err != nil {
				errs <- err
				return
			}
			cl := c.NewCluster(fid)
			var oids []OID
			for i := 0; i < 20; i++ {
				oid, data, err := c.CreateObject(cl, 100)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Lock(lock.KindPage, uint32(oid.Page), lock.Exclusive); err != nil {
					errs <- err
					return
				}
				data[0] = byte(w)
				oids = append(oids, oid)
			}
			if err := c.Commit(); err != nil {
				errs <- err
				return
			}
			// Verify in a second transaction.
			if err := c.Begin(); err != nil {
				errs <- err
				return
			}
			for _, oid := range oids {
				data, _, err := c.ReadObject(oid)
				if err != nil {
					errs <- err
					return
				}
				if data[0] != byte(w) {
					errs <- fmt.Errorf("client %d sees %d", w, data[0])
					return
				}
			}
			errs <- c.Commit()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
