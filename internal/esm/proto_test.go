package esm

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

// allOps enumerates every defined protocol operation.
var allOps = []Op{
	OpBegin, OpCommit, OpAbort, OpReadPage, OpWritePage, OpAllocPages,
	OpFreePages, OpLock, OpLog, OpCreateFile, OpOpenFile, OpGetRoot,
	OpSetRoot, OpCounter, OpCheckpoint, OpStats, OpReadPages,
	OpPrepare, OpCommitDecision, OpResolveTx, OpValidatePages,
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range allOps {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name (%q)", op, s)
		}
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
	if got := Op(200).String(); got != "Op(200)" {
		t.Errorf("out-of-range op name = %q", got)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{},
		{Op: OpBegin},
		{Op: OpReadPage, Tx: 42, Page: 7},
		{Op: OpWritePage, Tx: 1, Page: 9, Data: bytes.Repeat([]byte{0xAB}, 8192)},
		{Op: OpLock, Tx: 3, Page: 11, Mode: 0x21},
		{Op: OpGetRoot, Name: "root/name with spaces \x00 and NULs"},
		{Op: OpCounter, Name: "ctr", N: 1<<63 + 17},
		{Op: OpSetRoot, Name: strings.Repeat("n", 65535), N: 5, Data: []byte{1, 2, 3}},
		{Op: OpReadPages, Tx: 9, N: 3, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}},
	}
	for _, op := range allOps {
		cases = append(cases, Request{Op: op, Tx: uint64(op), Page: uint32(op), N: uint64(op) * 3, Mode: uint8(op), Name: op.String(), Data: []byte(op.String())})
	}
	for i, want := range cases {
		got, err := unmarshalRequest(want.marshal())
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		// marshal encodes nil and empty Data identically.
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{},
		{Err: "esm: something broke"},
		{Page: 1234, N: 99},
		{Err: "e", Page: 1, N: 2, Data: []byte{9, 8, 7}},
		{Data: bytes.Repeat([]byte{0x5A}, 3*8192)},
		{Page: 7, N: 0xDEAD, Mode: PageCurrent},
		{Page: 7, N: 0xBEEF, Mode: PageDelta, Data: []byte{0, 0, 2, 0, 9, 9}},
		{N: 3, Mode: RespHints | RespStale, Data: []byte{1, 0, 0, 0}},
	}
	for i, want := range cases {
		got, err := unmarshalResponse(want.marshal())
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

// TestUnmarshalTruncated feeds every proper prefix of valid messages to the
// decoders: all must fail cleanly, never panic, never succeed.
func TestUnmarshalTruncated(t *testing.T) {
	req := (&Request{Op: OpSetRoot, Tx: 1, Page: 2, N: 3, Mode: 4, Name: "abcdef", Data: []byte{1, 2, 3, 4, 5}}).marshal()
	for n := 0; n < len(req); n++ {
		if _, err := unmarshalRequest(req[:n]); err == nil {
			t.Errorf("request truncated to %d bytes decoded successfully", n)
		}
	}
	resp := (&Response{Err: "oops", Page: 1, N: 2, Data: []byte{1, 2, 3}}).marshal()
	for n := 0; n < len(resp); n++ {
		if _, err := unmarshalResponse(resp[:n]); err == nil {
			t.Errorf("response truncated to %d bytes decoded successfully", n)
		}
	}
}

// TestUnmarshalLyingLengths covers messages whose embedded lengths point past
// the end of the buffer.
func TestUnmarshalLyingLengths(t *testing.T) {
	req := (&Request{Op: OpGetRoot, Name: "abc"}).marshal()
	bad := append([]byte(nil), req...)
	bad[22] = 0xFF // nameLen low byte: name now claims to be longer than the buffer
	bad[23] = 0xFF
	if _, err := unmarshalRequest(bad); err == nil {
		t.Error("oversized nameLen accepted")
	}
	bad = append([]byte(nil), req...)
	bad[len(bad)-4] = 0xFF // dataLen: data claims bytes that are not there
	if _, err := unmarshalRequest(bad); err == nil {
		t.Error("oversized dataLen accepted")
	}
	resp := (&Response{Err: "x"}).marshal()
	bad = append([]byte(nil), resp...)
	bad[0] = 0xFF // errLen
	if _, err := unmarshalResponse(bad); err == nil {
		t.Error("oversized errLen accepted")
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpBegin},
		{Op: OpReadPage, Tx: 9, Page: 77},
		{Op: OpWritePage, Tx: 1, Page: 3, Data: bytes.Repeat([]byte{0x5C}, 8192)},
		{Op: OpSetRoot, Name: "root", N: 2, Data: []byte{1, 2, 3}},
	}
	var wire []byte
	for i, r := range reqs {
		wire = appendRequestFrame(wire, uint64(1000+i), &r)
	}
	rd := bytes.NewReader(wire)
	scratch := getBuf()
	defer putBuf(scratch)
	for i := range reqs {
		seq, body, err := readMuxFrame(rd, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint64(1000+i) {
			t.Fatalf("frame %d: seq = %d, want %d", i, seq, 1000+i)
		}
		got, err := unmarshalRequest(body)
		if err != nil {
			t.Fatalf("frame %d: unmarshal: %v", i, err)
		}
		want := reqs[i]
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("frame %d round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
	if _, _, err := readMuxFrame(rd, scratch); err != io.EOF {
		t.Errorf("stream end: err = %v, want io.EOF", err)
	}

	// Responses take the same framing.
	resp := Response{Err: "e", Page: 4, N: 5, Data: []byte{6, 7}}
	rd = bytes.NewReader(appendResponseFrame(nil, 42, &resp))
	seq, body, err := readMuxFrame(rd, scratch)
	if err != nil || seq != 42 {
		t.Fatalf("response frame: seq=%d err=%v", seq, err)
	}
	got, err := unmarshalResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, resp) {
		t.Errorf("response round trip mismatch:\n got %+v\nwant %+v", *got, resp)
	}
}

func TestMuxFrameTruncated(t *testing.T) {
	whole := appendRequestFrame(nil, 7, &Request{Op: OpGetRoot, Name: "abc"})
	scratch := getBuf()
	defer putBuf(scratch)
	for n := 0; n < len(whole); n++ {
		if _, _, err := readMuxFrame(bytes.NewReader(whole[:n]), scratch); err == nil {
			t.Errorf("frame truncated to %d bytes read successfully", n)
		}
	}
	if _, _, err := readMuxFrame(bytes.NewReader(nil), scratch); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestMuxFrameBadLengths(t *testing.T) {
	scratch := getBuf()
	defer putBuf(scratch)
	// Header declares 2 GiB; readMuxFrame must refuse before allocating.
	over := []byte{0, 0, 0, 0x80}
	if _, _, err := readMuxFrame(bytes.NewReader(over), scratch); err == nil {
		t.Error("oversized frame accepted")
	}
	// Runt frames: length too small to even hold the seq word.
	for n := uint32(0); n < frameSeqSize; n++ {
		var hdr [frameLenSize]byte
		binary.LittleEndian.PutUint32(hdr[:], n)
		runt := append(hdr[:], make([]byte, 16)...)
		if _, _, err := readMuxFrame(bytes.NewReader(runt), scratch); err == nil {
			t.Errorf("runt frame (len %d) accepted", n)
		}
	}
}

// FuzzMuxFrameStream throws arbitrary byte streams at the frame reader and
// body decoders: whatever happens, no panic, and every frame it accepts
// must survive an encode round trip at both the request and the response
// interpretation of its body.
func FuzzMuxFrameStream(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRequestFrame(nil, 1, &Request{Op: OpBegin}))
	f.Add(appendResponseFrame(nil, 99, &Response{Err: "x", Data: []byte{1}}))
	f.Add(appendRequestFrame(appendRequestFrame(nil, 1, &Request{Op: OpReadPage, Page: 5}), 2, &Request{Op: OpCommit}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}) // empty body, seq only
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		scratch := getBuf()
		defer putBuf(scratch)
		for i := 0; i < 64; i++ {
			seq, body, err := readMuxFrame(rd, scratch)
			if err != nil {
				return
			}
			if req, err := unmarshalRequest(body); err == nil {
				again, _, err2 := readMuxFrame(bytes.NewReader(appendRequestFrame(nil, seq, req)), new([]byte))
				if err2 != nil || again != seq {
					t.Fatalf("re-framed request lost seq: %v (seq %d vs %d)", err2, again, seq)
				}
			}
			if resp, err := unmarshalResponse(body); err == nil {
				reEnc := appendResponseFrame(nil, seq, resp)
				_, body2, err2 := readMuxFrame(bytes.NewReader(reEnc), new([]byte))
				if err2 != nil {
					t.Fatalf("re-framed response unreadable: %v", err2)
				}
				resp2, err2 := unmarshalResponse(body2)
				if err2 != nil || !reflect.DeepEqual(resp, resp2) {
					t.Fatalf("response round trip drifted: %v\n got %+v\nwant %+v", err2, resp2, resp)
				}
			}
		}
	})
}

// FuzzUnmarshalResponse mirrors FuzzUnmarshalRequest for the response
// decoder the client demux loop runs on every inbound frame.
func FuzzUnmarshalResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Response{}).marshal())
	f.Add((&Response{Err: "seed", Page: 1, N: 2, Data: []byte{3}}).marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := unmarshalResponse(data)
		if err != nil {
			return
		}
		again, err := unmarshalResponse(resp.marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", again, resp)
		}
	})
}

// FuzzUnmarshalRequest throws arbitrary bytes at the request decoder, and
// checks that everything it accepts survives a marshal/unmarshal round trip.
func FuzzUnmarshalRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Request{Op: OpBegin}).marshal())
	f.Add((&Request{Op: OpSetRoot, Name: "seed", Data: []byte{1, 2, 3}}).marshal())
	f.Add((&Request{Op: OpReadPages, N: 2, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0}}).marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := unmarshalRequest(data)
		if err != nil {
			return
		}
		again, err := unmarshalRequest(req.marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", again, req)
		}
	})
}
