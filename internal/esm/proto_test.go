package esm

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// allOps enumerates every defined protocol operation.
var allOps = []Op{
	OpBegin, OpCommit, OpAbort, OpReadPage, OpWritePage, OpAllocPages,
	OpFreePages, OpLock, OpLog, OpCreateFile, OpOpenFile, OpGetRoot,
	OpSetRoot, OpCounter, OpCheckpoint, OpStats, OpReadPages,
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range allOps {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name (%q)", op, s)
		}
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
	if got := Op(200).String(); got != "Op(200)" {
		t.Errorf("out-of-range op name = %q", got)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{},
		{Op: OpBegin},
		{Op: OpReadPage, Tx: 42, Page: 7},
		{Op: OpWritePage, Tx: 1, Page: 9, Data: bytes.Repeat([]byte{0xAB}, 8192)},
		{Op: OpLock, Tx: 3, Page: 11, Mode: 0x21},
		{Op: OpGetRoot, Name: "root/name with spaces \x00 and NULs"},
		{Op: OpCounter, Name: "ctr", N: 1<<63 + 17},
		{Op: OpSetRoot, Name: strings.Repeat("n", 65535), N: 5, Data: []byte{1, 2, 3}},
		{Op: OpReadPages, Tx: 9, N: 3, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}},
	}
	for _, op := range allOps {
		cases = append(cases, Request{Op: op, Tx: uint64(op), Page: uint32(op), N: uint64(op) * 3, Mode: uint8(op), Name: op.String(), Data: []byte(op.String())})
	}
	for i, want := range cases {
		got, err := unmarshalRequest(want.marshal())
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		// marshal encodes nil and empty Data identically.
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{},
		{Err: "esm: something broke"},
		{Page: 1234, N: 99},
		{Err: "e", Page: 1, N: 2, Data: []byte{9, 8, 7}},
		{Data: bytes.Repeat([]byte{0x5A}, 3*8192)},
	}
	for i, want := range cases {
		got, err := unmarshalResponse(want.marshal())
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

// TestUnmarshalTruncated feeds every proper prefix of valid messages to the
// decoders: all must fail cleanly, never panic, never succeed.
func TestUnmarshalTruncated(t *testing.T) {
	req := (&Request{Op: OpSetRoot, Tx: 1, Page: 2, N: 3, Mode: 4, Name: "abcdef", Data: []byte{1, 2, 3, 4, 5}}).marshal()
	for n := 0; n < len(req); n++ {
		if _, err := unmarshalRequest(req[:n]); err == nil {
			t.Errorf("request truncated to %d bytes decoded successfully", n)
		}
	}
	resp := (&Response{Err: "oops", Page: 1, N: 2, Data: []byte{1, 2, 3}}).marshal()
	for n := 0; n < len(resp); n++ {
		if _, err := unmarshalResponse(resp[:n]); err == nil {
			t.Errorf("response truncated to %d bytes decoded successfully", n)
		}
	}
}

// TestUnmarshalLyingLengths covers messages whose embedded lengths point past
// the end of the buffer.
func TestUnmarshalLyingLengths(t *testing.T) {
	req := (&Request{Op: OpGetRoot, Name: "abc"}).marshal()
	bad := append([]byte(nil), req...)
	bad[22] = 0xFF // nameLen low byte: name now claims to be longer than the buffer
	bad[23] = 0xFF
	if _, err := unmarshalRequest(bad); err == nil {
		t.Error("oversized nameLen accepted")
	}
	bad = append([]byte(nil), req...)
	bad[len(bad)-4] = 0xFF // dataLen: data claims bytes that are not there
	if _, err := unmarshalRequest(bad); err == nil {
		t.Error("oversized dataLen accepted")
	}
	resp := (&Response{Err: "x"}).marshal()
	bad = append([]byte(nil), resp...)
	bad[0] = 0xFF // errLen
	if _, err := unmarshalResponse(bad); err == nil {
		t.Error("oversized errLen accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{7}, 100000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello frame")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for n := 0; n < len(whole); n++ {
		if _, err := readFrame(bytes.NewReader(whole[:n])); err == nil {
			t.Errorf("frame truncated to %d bytes read successfully", n)
		}
	}
	if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadFrameOversizedHeader(t *testing.T) {
	// Header declares 2 GiB; readFrame must refuse before allocating.
	hdr := []byte{0, 0, 0, 0x80}
	if _, err := readFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized frame accepted")
	}
}

// FuzzUnmarshalRequest throws arbitrary bytes at the request decoder, and
// checks that everything it accepts survives a marshal/unmarshal round trip.
func FuzzUnmarshalRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Request{Op: OpBegin}).marshal())
	f.Add((&Request{Op: OpSetRoot, Name: "seed", Data: []byte{1, 2, 3}}).marshal())
	f.Add((&Request{Op: OpReadPages, N: 2, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0}}).marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := unmarshalRequest(data)
		if err != nil {
			return
		}
		again, err := unmarshalRequest(req.marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", again, req)
		}
	})
}
