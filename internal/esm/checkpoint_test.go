package esm

import (
	"encoding/binary"
	"errors"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/wal"
)

// commitDuringWrite is an IOHook that rides the checkpoint's dirty-page
// walk: the first time the trigger page is written back, it runs one
// complete transaction (begin, log, commit) against the server inline —
// deterministically placing a commit inside the window between the
// checkpoint's flush and its log truncation. The hook fires outside the
// volume's internal lock, so the re-entrant server calls are safe.
type commitDuringWrite struct {
	srv     *Server
	trigger disk.PageID
	target  disk.PageID
	off     int
	value   []byte
	fired   bool
	err     error
}

func (h *commitDuringWrite) BeforeRead(id uint32) error { return nil }

func (h *commitDuringWrite) BeforeWrite(id uint32, pageSize int) (int, error) {
	if h.fired || h.srv == nil || disk.PageID(id) != h.trigger {
		return 0, nil
	}
	h.fired = true
	h.err = h.run()
	return 0, nil
}

func (h *commitDuringWrite) run() error {
	resp := h.srv.Handle(&Request{Op: OpBegin})
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	tx := resp.N
	// One update record: value over zeroes at off on the target page, in
	// the OpLog batch format (count, then type/pid/off/lens + images).
	old := make([]byte, len(h.value))
	rec := make([]byte, 0, 4+11+2*len(h.value))
	rec = binary.LittleEndian.AppendUint32(rec, 1)
	rec = append(rec, byte(wal.RecUpdate))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(h.target))
	rec = binary.LittleEndian.AppendUint16(rec, uint16(h.off))
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(old)))
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(h.value)))
	rec = append(rec, old...)
	rec = append(rec, h.value...)
	resp = h.srv.Handle(&Request{Op: OpLog, Tx: tx, Data: rec})
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	img := make([]byte, disk.PageSize)
	binary.LittleEndian.PutUint64(img[:8], resp.N) // pageLSN = update LSN
	copy(img[h.off:], h.value)
	payload := make([]byte, 0, 4+disk.PageSize)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(h.target))
	payload = append(payload, img...)
	resp = h.srv.Handle(&Request{Op: OpCommit, Tx: tx, Data: payload})
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Regression for the quiescent-checkpoint truncation bug: a transaction
// that begins AND commits while the checkpoint runs used to slip past the
// quiescence check — its records were truncated while its pages sat dirty
// only in the pool, so a crash reverted a committed transaction. The fuzzy
// checkpoint chooses its log cut before flushing, so those records survive
// and restart recovery redoes them.
func TestCheckpointDoesNotRevertConcurrentCommit(t *testing.T) {
	base := disk.NewMemVolume()
	hook := &commitDuringWrite{off: 512, value: []byte("survive-the-cut")}
	vol := disk.WithHook(base, hook)
	log := wal.NewMemLog()
	srv, err := NewServer(vol, log, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	trigger, err := c.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	target := trigger + 1
	i, err := c.FetchPage(trigger)
	if err != nil {
		t.Fatal(err)
	}
	data := c.PageData(i)
	old := append([]byte(nil), data[64:68]...)
	copy(data[64:], "seed")
	c.LogUpdate(trigger, 64, old, []byte("seed"))
	if err := c.MarkDirty(trigger); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// The trigger page now sits dirty in the server pool; arm the hook and
	// run the checkpoint over the wire, mid-traffic.
	hook.srv, hook.trigger, hook.target = srv, trigger, target
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if !hook.fired {
		t.Fatal("setup: checkpoint never wrote the trigger page back")
	}
	if hook.err != nil {
		t.Fatalf("commit concurrent with checkpoint: %v", hook.err)
	}
	if log.StartLSN() == 1 {
		t.Fatal("setup: checkpoint did not truncate the log")
	}

	// Crash: the server (and its pool, holding the racing commit's page)
	// is discarded. Restart recovery must redo the commit from the records
	// the truncation kept.
	hook.srv = nil
	srv2, err := OpenServer(base, log, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	c2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 16})
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	defer c2.Abort()
	i, err = c2.FetchPage(target)
	if err != nil {
		t.Fatal(err)
	}
	got := c2.PageData(i)[hook.off : hook.off+len(hook.value)]
	if string(got) != string(hook.value) {
		t.Fatalf("checkpoint reverted a committed transaction: page %d = %q, want %q",
			target, got, hook.value)
	}
	// The seeded pre-checkpoint commit survives too (flushed by the walk).
	i, err = c2.FetchPage(trigger)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.PageData(i)[64:68]; string(got) != "seed" {
		t.Fatalf("pre-checkpoint commit lost: %q", got)
	}
}
