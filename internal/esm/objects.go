package esm

import (
	"encoding/binary"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/page"
)

// This file is the storage manager's object layer: untyped variable-size
// objects on slotted pages, clustering hints, and multi-page (large)
// objects. Both QuickStore and the E baseline create and read objects
// through these calls; how pointers inside the objects are represented and
// dereferenced is entirely up to them.

// Cluster is a placement cursor: consecutive CreateObject calls on the same
// cluster land on the same page until it fills, reproducing the paper's
// clustering of each composite part with its atomic parts and connections.
type Cluster struct {
	file uint32
	pid  disk.PageID // current placement page (0 = none yet)
	last disk.PageID // last page of the file chain segment built here
}

// NewCluster starts a placement cursor for file.
func (c *Client) NewCluster(file uint32) *Cluster {
	return &Cluster{file: file}
}

// ResumeCluster builds a cursor positioned on an existing page of file, so
// the next CreateObject lands there if it fits. QuickStore uses this to
// place large-object descriptors on its own formatted pages.
func ResumeCluster(file uint32, pid disk.PageID) *Cluster {
	return &Cluster{file: file, pid: pid, last: pid}
}

// BreakCluster forces the next CreateObject to start a fresh page
// (the generator calls this between composite parts).
func (cl *Cluster) BreakCluster() { cl.pid = 0 }

// CurrentPage returns the cluster's current placement page (0 if none).
func (cl *Cluster) CurrentPage() disk.PageID { return cl.pid }

// CreateObject allocates a size-byte object in the cluster's file, placing
// it on the cluster's current page when it fits. It returns the OID and the
// in-place bytes of the new object (zeroed). The page is marked dirty; the
// caller logs its own updates (QuickStore by diffing, E by object images).
func (c *Client) CreateObject(cl *Cluster, size int) (OID, []byte, error) {
	if c.tx == 0 {
		return NilOID, nil, ErrNoTx
	}
	if size <= 0 || size > page.MaxObjectSize {
		return NilOID, nil, fmt.Errorf("esm: object size %d out of range (max %d)", size, page.MaxObjectSize)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if cl.pid == disk.InvalidPage {
			if err := c.newClusterPage(cl); err != nil {
				return NilOID, nil, err
			}
		}
		idx, err := c.FetchPage(cl.pid)
		if err != nil {
			return NilOID, nil, err
		}
		p := page.MustWrap(c.PageData(idx))
		// A stale cursor can point at a page that no longer holds a
		// slotted image (its creating transaction aborted, so the server
		// returns a zero page). Never place objects there.
		if p.Type() != page.TypeSlotted || p.FreeSpace() < size {
			cl.pid = disk.InvalidPage // full or invalid; retry on a fresh page
			continue
		}
		before := c.structBefore(idx)
		slot, _, err := p.Insert(size)
		if err != nil {
			return NilOID, nil, err
		}
		c.pool.MarkDirty(idx)
		c.logStructDiff(cl.pid, before, idx)
		u, err := c.nextUnique()
		if err != nil {
			return NilOID, nil, err
		}
		oid := OID{Page: cl.pid, Slot: uint16(slot), Unique: u, File: cl.file}
		data, err := p.Object(slot)
		if err != nil {
			return NilOID, nil, err
		}
		return oid, data, nil
	}
	return NilOID, nil, fmt.Errorf("esm: object of %d bytes does not fit on an empty page", size)
}

// newClusterPage allocates and formats a fresh slotted page for the cluster
// and links it into the file chain.
func (c *Client) newClusterPage(cl *Cluster) error {
	pid, err := c.AllocPages(1)
	if err != nil {
		return err
	}
	idx, err := c.pool.Put(pid, func([]byte) error { return nil })
	if err != nil {
		return err
	}
	// Initialize unconditionally: a recycled page id may still be resident,
	// in which case Put skips its loader.
	p := page.Init(c.PageData(idx), page.TypeSlotted)
	p.SetFileID(cl.file)
	c.pool.MarkDirty(idx)
	if c.LogStructure {
		// Diff against an all-zero page, not the prior frame bytes: a
		// redo-only replica materializes this page from zeros, and Init
		// just zeroed everything the header doesn't cover.
		c.logStructDiff(pid, make([]byte, disk.PageSize), idx)
	}
	if cl.last != disk.InvalidPage {
		lidx, err := c.FetchPage(cl.last)
		if err != nil {
			return err
		}
		before := c.structBefore(lidx)
		lp := page.MustWrap(c.PageData(lidx))
		lp.SetNextPage(uint32(pid))
		c.pool.MarkDirty(lidx)
		c.logStructDiff(cl.last, before, lidx)
	}
	cl.pid = pid
	cl.last = pid
	return nil
}

// ReadObject fetches the page holding oid and returns the object's in-place
// bytes plus the frame index (so callers may Pin it across further fetches).
func (c *Client) ReadObject(oid OID) ([]byte, int, error) {
	if oid.IsNil() {
		return nil, 0, fmt.Errorf("esm: read of nil OID")
	}
	if oid.IsLarge() {
		return nil, 0, fmt.Errorf("esm: %v is a large object; use the Large API", oid)
	}
	idx, err := c.FetchPage(oid.Page)
	if err != nil {
		return nil, 0, err
	}
	p := page.MustWrap(c.PageData(idx))
	data, err := p.Object(int(oid.Slot))
	if err != nil {
		return nil, 0, fmt.Errorf("esm: %v: %w", oid, err)
	}
	return data, idx, nil
}

// ReadObjectAt is ReadObject plus the object's byte offset within its page,
// which callers need to emit physical log records for in-place updates.
func (c *Client) ReadObjectAt(oid OID) (data []byte, pageOff int, frame int, err error) {
	if oid.IsNil() || oid.IsLarge() {
		return nil, 0, 0, fmt.Errorf("esm: ReadObjectAt(%v)", oid)
	}
	idx, err := c.FetchPage(oid.Page)
	if err != nil {
		return nil, 0, 0, err
	}
	p := page.MustWrap(c.PageData(idx))
	data, err = p.Object(int(oid.Slot))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("esm: %v: %w", oid, err)
	}
	off, _, err := p.SlotBounds(int(oid.Slot))
	if err != nil {
		return nil, 0, 0, err
	}
	return data, off, idx, nil
}

// DeleteObject marks the object's slot dead. Space is not reclaimed, and
// outstanding references dangle, exactly as the paper discusses for
// QuickStore's unchecked pointers.
func (c *Client) DeleteObject(oid OID) error {
	if oid.IsLarge() {
		return c.deleteLarge(oid)
	}
	idx, err := c.FetchPage(oid.Page)
	if err != nil {
		return err
	}
	p := page.MustWrap(c.PageData(idx))
	before := c.structBefore(idx)
	if err := p.Delete(int(oid.Slot)); err != nil {
		return err
	}
	c.pool.MarkDirty(idx)
	c.logStructDiff(oid.Page, before, idx)
	return nil
}

// --- Large (multi-page) objects -------------------------------------------

// largeDescSize is the size of a large-object descriptor: first data page,
// number of data pages, byte size, and the first trailing meta page
// (QuickStore appends one meta region per large object; zero when unused).
const largeDescSize = 4 + 4 + 8 + 4 + 4

// LargeInfo describes a multi-page object.
type LargeInfo struct {
	First     disk.PageID // first data page of the contiguous run
	Pages     uint32      // number of data pages
	Size      uint64      // logical byte size
	MetaFirst disk.PageID // first trailing meta page (0 when none)
	MetaPages uint32
}

// CreateLarge allocates a multi-page object of size bytes as a contiguous
// run of raw data pages, plus metaPages extra trailing pages for the
// caller's per-page metadata (QuickStore's appended meta-objects). The
// descriptor is a small object placed via cl; the returned OID has
// Slot == SlotLarge and refers to the descriptor through Unique/Page of the
// descriptor's small OID encoded in the descriptor map.
func (c *Client) CreateLarge(cl *Cluster, size uint64, metaPages int) (OID, LargeInfo, error) {
	if size == 0 {
		return NilOID, LargeInfo{}, fmt.Errorf("esm: zero-size large object")
	}
	npages := uint32((size + disk.PageSize - 1) / disk.PageSize)
	run, err := c.AllocPages(int(npages) + metaPages)
	if err != nil {
		return NilOID, LargeInfo{}, err
	}
	// Format the data pages as raw TypeLarge pages (whole-page payload; the
	// type byte lives at offset 8 only on header-bearing pages, so raw
	// pages are tracked by the descriptor alone).
	info := LargeInfo{First: run, Pages: npages, Size: size}
	c.MarkRawPages(run, npages)
	if metaPages > 0 {
		info.MetaFirst = run + disk.PageID(npages)
		info.MetaPages = uint32(metaPages)
		for i := 0; i < metaPages; i++ {
			pid := info.MetaFirst + disk.PageID(i)
			idx, err := c.pool.Put(pid, func([]byte) error { return nil })
			if err != nil {
				return NilOID, LargeInfo{}, err
			}
			page.Init(c.PageData(idx), page.TypeLarge)
			c.pool.MarkDirty(idx)
		}
	}
	descOID, desc, err := c.CreateObject(cl, largeDescSize)
	if err != nil {
		return NilOID, LargeInfo{}, err
	}
	binary.LittleEndian.PutUint32(desc[0:], uint32(info.First))
	binary.LittleEndian.PutUint32(desc[4:], info.Pages)
	binary.LittleEndian.PutUint64(desc[8:], info.Size)
	binary.LittleEndian.PutUint32(desc[16:], uint32(info.MetaFirst))
	binary.LittleEndian.PutUint32(desc[20:], info.MetaPages)
	large := OID{Page: descOID.Page, Slot: SlotLarge, Unique: descOID.Slot, File: descOID.File}
	return large, info, nil
}

// descOID recovers the descriptor's small-object OID from a large OID:
// the descriptor's slot travels in the large OID's Unique field.
func descOID(large OID) OID {
	return OID{Page: large.Page, Slot: large.Unique, File: large.File}
}

// LargeInfoOf reads the descriptor of a large object and registers its data
// pages as raw (headerless) so they are never LSN-stamped.
func (c *Client) LargeInfoOf(large OID) (LargeInfo, error) {
	if !large.IsLarge() {
		return LargeInfo{}, fmt.Errorf("esm: %v is not a large object", large)
	}
	desc, _, err := c.ReadObject(descOID(large))
	if err != nil {
		return LargeInfo{}, err
	}
	info := LargeInfo{
		First:     disk.PageID(binary.LittleEndian.Uint32(desc[0:])),
		Pages:     binary.LittleEndian.Uint32(desc[4:]),
		Size:      binary.LittleEndian.Uint64(desc[8:]),
		MetaFirst: disk.PageID(binary.LittleEndian.Uint32(desc[16:])),
		MetaPages: binary.LittleEndian.Uint32(desc[20:]),
	}
	c.MarkRawPages(info.First, info.Pages)
	return info, nil
}

// LargeReadAt copies len(buf) bytes from offset off of the large object,
// faulting its data pages through the client pool.
func (c *Client) LargeReadAt(large OID, buf []byte, off uint64) error {
	info, err := c.LargeInfoOf(large)
	if err != nil {
		return err
	}
	if off+uint64(len(buf)) > info.Size {
		return fmt.Errorf("esm: large read [%d,%d) past size %d", off, off+uint64(len(buf)), info.Size)
	}
	for n := 0; n < len(buf); {
		pageNo := (off + uint64(n)) / disk.PageSize
		pageOff := int((off + uint64(n)) % disk.PageSize)
		idx, err := c.FetchPage(info.First + disk.PageID(pageNo))
		if err != nil {
			return err
		}
		n += copy(buf[n:], c.PageData(idx)[pageOff:])
	}
	return nil
}

// LargeWriteAt copies buf into the large object at offset off, marking the
// touched pages dirty and logging whole-range updates.
func (c *Client) LargeWriteAt(large OID, buf []byte, off uint64) error {
	info, err := c.LargeInfoOf(large)
	if err != nil {
		return err
	}
	if off+uint64(len(buf)) > info.Size {
		return fmt.Errorf("esm: large write [%d,%d) past size %d", off, off+uint64(len(buf)), info.Size)
	}
	for n := 0; n < len(buf); {
		pageNo := (off + uint64(n)) / disk.PageSize
		pageOff := int((off + uint64(n)) % disk.PageSize)
		pid := info.First + disk.PageID(pageNo)
		idx, err := c.FetchPage(pid)
		if err != nil {
			return err
		}
		dst := c.PageData(idx)[pageOff:]
		m := copy(dst, buf[n:])
		c.pool.MarkDirty(idx)
		n += m
	}
	return nil
}

// deleteLarge frees a large object's pages and its descriptor.
func (c *Client) deleteLarge(large OID) error {
	info, err := c.LargeInfoOf(large)
	if err != nil {
		return err
	}
	total := int(info.Pages + info.MetaPages)
	if err := c.FreePages(info.First, total); err != nil {
		return err
	}
	d := descOID(large)
	idx, err := c.FetchPage(d.Page)
	if err != nil {
		return err
	}
	p := page.MustWrap(c.PageData(idx))
	before := c.structBefore(idx)
	if err := p.Delete(int(d.Slot)); err != nil {
		return err
	}
	c.pool.MarkDirty(idx)
	c.logStructDiff(d.Page, before, idx)
	return nil
}
