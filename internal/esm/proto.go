package esm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Op enumerates protocol operations between the client and the page server.
type Op uint8

// Protocol operations.
const (
	OpBegin Op = iota + 1
	OpCommit
	OpAbort
	OpReadPage
	OpWritePage
	OpAllocPages
	OpFreePages
	OpLock
	OpLog
	OpCreateFile
	OpOpenFile
	OpGetRoot
	OpSetRoot
	OpCounter
	OpCheckpoint
	OpStats
	// OpReadPages is the batched page-read protocol: one request/response
	// frame for N pages. The request carries the page ids as little-endian
	// u32s in Data (count in N); the response carries N (u32 pid, 8K image)
	// records. It exists for the asynchronous prefetcher
	// (internal/prefetch): batch reads are served without disturbing the
	// server buffer pool, so a client speculating on future accesses never
	// changes what a non-speculating client would observe.
	OpReadPages
)

// String names the operation for diagnostics.
func (o Op) String() string {
	names := [...]string{"", "BEGIN", "COMMIT", "ABORT", "READ", "WRITE", "ALLOC",
		"FREE", "LOCK", "LOG", "CREATEFILE", "OPENFILE", "GETROOT", "SETROOT",
		"COUNTER", "CHECKPOINT", "STATS", "READPAGES"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is one client-to-server message.
type Request struct {
	Op   Op
	Tx   uint64
	Page uint32 // page id / file id, per op
	N    uint64 // count / counter delta, per op
	Mode uint8  // lock mode / resource kind / flags
	Name string // root, counter, or file name
	Data []byte // page image, log batch, or OID payload
}

// Response is one server-to-client message.
type Response struct {
	Err  string
	Page uint32
	N    uint64
	Data []byte
}

// Transport delivers requests to a server and returns responses. Both the
// in-process and TCP transports satisfy it.
type Transport interface {
	Call(req *Request) (*Response, error)
	Close() error
}

// writeFrame emits a length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	const maxFrame = 1 << 30
	if n > maxFrame {
		return nil, fmt.Errorf("esm: oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *Request) marshal() []byte {
	buf := make([]byte, 0, 32+len(r.Name)+len(r.Data))
	var tmp [8]byte
	buf = append(buf, byte(r.Op), r.Mode)
	binary.LittleEndian.PutUint64(tmp[:], r.Tx)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], r.Page)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], r.N)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Name)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, r.Name...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, r.Data...)
	return buf
}

var errShortMessage = errors.New("esm: short protocol message")

func unmarshalRequest(buf []byte) (*Request, error) {
	if len(buf) < 24 {
		return nil, errShortMessage
	}
	r := &Request{Op: Op(buf[0]), Mode: buf[1]}
	r.Tx = binary.LittleEndian.Uint64(buf[2:])
	r.Page = binary.LittleEndian.Uint32(buf[10:])
	r.N = binary.LittleEndian.Uint64(buf[14:])
	nameLen := int(binary.LittleEndian.Uint16(buf[22:]))
	p := 24
	if len(buf) < p+nameLen+4 {
		return nil, errShortMessage
	}
	r.Name = string(buf[p : p+nameLen])
	p += nameLen
	dataLen := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if len(buf) < p+dataLen {
		return nil, errShortMessage
	}
	if dataLen > 0 {
		r.Data = append([]byte(nil), buf[p:p+dataLen]...)
	}
	return r, nil
}

func (r *Response) marshal() []byte {
	buf := make([]byte, 0, 20+len(r.Err)+len(r.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Err)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, r.Err...)
	binary.LittleEndian.PutUint32(tmp[:4], r.Page)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], r.N)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, r.Data...)
	return buf
}

func unmarshalResponse(buf []byte) (*Response, error) {
	if len(buf) < 2 {
		return nil, errShortMessage
	}
	errLen := int(binary.LittleEndian.Uint16(buf[0:]))
	p := 2
	if len(buf) < p+errLen+16 {
		return nil, errShortMessage
	}
	r := &Response{Err: string(buf[p : p+errLen])}
	p += errLen
	r.Page = binary.LittleEndian.Uint32(buf[p:])
	r.N = binary.LittleEndian.Uint64(buf[p+4:])
	dataLen := int(binary.LittleEndian.Uint32(buf[p+12:]))
	p += 16
	if len(buf) < p+dataLen {
		return nil, errShortMessage
	}
	if dataLen > 0 {
		r.Data = append([]byte(nil), buf[p:p+dataLen]...)
	}
	return r, nil
}

// InProcTransport calls straight into a server living in the same process.
// This is the default for benchmarks: the network cost is charged by the
// cost model, so a real socket would only add nondeterminism.
type InProcTransport struct {
	srv *Server
}

// NewInProcTransport returns a transport bound to srv.
func NewInProcTransport(srv *Server) *InProcTransport { return &InProcTransport{srv: srv} }

// Call implements Transport.
func (t *InProcTransport) Call(req *Request) (*Response, error) {
	return t.srv.Handle(req), nil
}

// Close implements Transport.
func (t *InProcTransport) Close() error { return nil }

// TCPTransport speaks the framed binary protocol over a socket. One
// connection carries one client session's requests sequentially, mirroring
// the paper's one-client-process model.
type TCPTransport struct {
	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
	wr   *bufio.Writer
}

// DialTCP connects to a Listener-served ESM server.
func DialTCP(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn, rd: bufio.NewReaderSize(conn, 64<<10), wr: bufio.NewWriterSize(conn, 64<<10)}, nil
}

// Call implements Transport.
func (t *TCPTransport) Call(req *Request) (*Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := writeFrame(t.wr, req.marshal()); err != nil {
		return nil, err
	}
	if err := t.wr.Flush(); err != nil {
		return nil, err
	}
	frame, err := readFrame(t.rd)
	if err != nil {
		return nil, err
	}
	return unmarshalResponse(frame)
}

// Close implements Transport.
func (t *TCPTransport) Close() error { return t.conn.Close() }

// Serve accepts connections on l and dispatches their requests to srv until
// l is closed. It is intended to run in its own goroutine.
func Serve(l net.Listener, srv *Server) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			rd := bufio.NewReaderSize(conn, 64<<10)
			wr := bufio.NewWriterSize(conn, 64<<10)
			for {
				frame, err := readFrame(rd)
				if err != nil {
					return
				}
				req, err := unmarshalRequest(frame)
				var resp *Response
				if err != nil {
					resp = &Response{Err: err.Error()}
				} else {
					resp = srv.Handle(req)
				}
				if err := writeFrame(wr, resp.marshal()); err != nil {
					return
				}
				if err := wr.Flush(); err != nil {
					return
				}
			}
		}(conn)
	}
}
