package esm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Op enumerates protocol operations between the client and the page server.
type Op uint8

// Protocol operations.
const (
	OpBegin Op = iota + 1
	OpCommit
	OpAbort
	OpReadPage
	OpWritePage
	OpAllocPages
	OpFreePages
	OpLock
	OpLog
	OpCreateFile
	OpOpenFile
	OpGetRoot
	OpSetRoot
	OpCounter
	OpCheckpoint
	OpStats
	// OpReadPages is the batched page-read protocol: one request/response
	// frame for N pages. The request carries the page ids as little-endian
	// u32s in Data (count in N); the response carries N (u32 pid, 8K image)
	// records. It exists for the asynchronous prefetcher
	// (internal/prefetch): batch reads are served without disturbing the
	// server buffer pool, so a client speculating on future accesses never
	// changes what a non-speculating client would observe.
	OpReadPages
	// Replication ops (internal/repl). OpReplAppend ships a durable WAL
	// byte chunk (Tx = leader term, N = start LSN, Data = ship payload)
	// from the leader to a follower; the response's N is the follower's
	// durable LSN after splice+flush. OpReplAck is the control plane:
	// status probes, vote requests, and follower registration, selected by
	// Mode. OpReplSnapshot seeds a follower wholesale (log bytes plus
	// volume page images) when incremental shipping cannot reach it.
	OpReplAppend
	OpReplAck
	OpReplSnapshot
	// Snapshot-read ops (internal/mvcc). OpBeginSnapshot opens a read-only
	// snapshot session: the request's N carries the client's last-seen
	// commit LSN (read-your-writes floor; 0 for none), the response's N is
	// the snapshot LSN S the server pinned. OpSnapRead reads one page as of
	// S (Page = pid, N = S) without touching the lock manager. OpEndSnapshot
	// unpins S. Begin and read are idempotent and may be retried or
	// re-routed across replicas; End is not (a replay would double-unpin),
	// so a lost End ack is left to the version store's byte cap to absorb.
	OpBeginSnapshot
	OpSnapRead
	OpEndSnapshot
	// Two-phase commit ops (internal/shard). OpPrepare votes a participant
	// into the prepared state: Data carries the shard-local commit page
	// payload, Page the coordinator's shard id, N the coordinator-local
	// transaction id, and Mode the PrepareModeCoord flag on the
	// coordinator's own prepare. OpCommitDecision delivers the verdict
	// (Mode bits: commit, coordinator). OpResolveTx is the presumed-abort
	// inquiry: Mode selects inquire / forget / list (see ResolveMode*).
	// None are idempotent, so none are retryable across replicas.
	OpPrepare
	OpCommitDecision
	OpResolveTx
	// OpValidatePages is the warm-cache coherence batch (DESIGN.md §18):
	// at Begin the client revalidates its whole resident set in one round
	// trip. The request's Data carries repeated (u32 pid, u64 token)
	// entries (count in N, Tx set when a transaction is open); the
	// response's Data opens with a stale-bitmap — bit i set means entry
	// i's cached copy is no longer current — followed by repair entries
	// (delta patch or full image plus the new token) for the stale pages
	// the server could repair. A stale page without a repair entry must be
	// evicted. Validation is read-only and idempotent, so it is retryable.
	OpValidatePages
)

// String names the operation for diagnostics.
func (o Op) String() string {
	names := [...]string{"", "BEGIN", "COMMIT", "ABORT", "READ", "WRITE", "ALLOC",
		"FREE", "LOCK", "LOG", "CREATEFILE", "OPENFILE", "GETROOT", "SETROOT",
		"COUNTER", "CHECKPOINT", "STATS", "READPAGES",
		"REPLAPPEND", "REPLACK", "REPLSNAPSHOT",
		"BEGINSNAP", "SNAPREAD", "ENDSNAP",
		"PREPARE", "DECIDE", "RESOLVETX", "VALIDATEPAGES"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// OpPrepare request mode flags.
const (
	// PrepareModeCoord marks the coordinator's own prepare. A restarted
	// coordinator presumes abort for such a transaction when no decision
	// record follows; participants hold theirs in doubt instead.
	PrepareModeCoord uint8 = 1
)

// OpCommitDecision request mode flags.
const (
	// DecisionCommit carries the commit verdict; absent means abort.
	DecisionCommit uint8 = 1
	// DecisionCoord addresses the coordinator itself: it logs the single
	// RecDecision record (its own commit record) and remembers the verdict
	// for OpResolveTx inquiries until forgotten.
	DecisionCoord uint8 = 2
)

// OpResolveTx request modes.
const (
	// ResolveModeInquire asks the coordinator for the outcome of one of
	// its transactions (Request.Tx = coordinator-local id). The response's
	// N is a Resolve* outcome.
	ResolveModeInquire uint8 = 0
	// ResolveModeForget drops the coordinator's remembered decision once
	// every participant has acknowledged it (end of protocol).
	ResolveModeForget uint8 = 1
	// ResolveModeList returns the server's own in-doubt participant
	// transactions as repeated (coordShard u32, coordTx u64, localTx u64)
	// entries in Data.
	ResolveModeList uint8 = 2
)

// OpResolveTx inquiry outcomes (Response.N).
const (
	// ResolveAborted: no decision and no live transaction — presumed abort.
	ResolveAborted uint64 = 0
	// ResolveCommitted: a decision record exists; the transaction committed.
	ResolveCommitted uint64 = 1
	// ResolvePending: the transaction is still live at the coordinator;
	// the resolver must retry later.
	ResolvePending uint64 = 2
)

// ResolveEntryBytes is the wire size of one ResolveModeList entry.
const ResolveEntryBytes = 4 + 8 + 8

// AppendResolveEntry marshals one in-doubt entry onto dst in the
// ResolveModeList wire format.
func AppendResolveEntry(dst []byte, coordShard uint32, coordTx, localTx uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], coordShard)
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], coordTx)
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], localTx)
	return append(dst, tmp[:]...)
}

// ParseResolveEntries decodes a ResolveModeList payload.
func ParseResolveEntries(data []byte) (coordShards []uint32, coordTxs, localTxs []uint64, err error) {
	if len(data)%ResolveEntryBytes != 0 {
		return nil, nil, nil, fmt.Errorf("esm: resolve list payload %d bytes, not a multiple of %d", len(data), ResolveEntryBytes)
	}
	for off := 0; off < len(data); off += ResolveEntryBytes {
		coordShards = append(coordShards, binary.LittleEndian.Uint32(data[off:]))
		coordTxs = append(coordTxs, binary.LittleEndian.Uint64(data[off+4:]))
		localTxs = append(localTxs, binary.LittleEndian.Uint64(data[off+12:]))
	}
	return coordShards, coordTxs, localTxs, nil
}

// Warm-cache coherence wire pieces (DESIGN.md §18).
//
// A page *token* is the server's version stamp for a page image: the LSN
// of the commit (or CLR) that produced it. Tokens are opaque to the
// client and compared only for equality; token 0 means "unversioned" and
// never matches, so a page whose current image cannot safely be cached
// (e.g. it carries a not-yet-committed stolen install) is served with
// token 0 and refetched next time.

// OpReadPage request mode flags.
const (
	// ReadVersioned marks a versioned read: Request.N carries the token of
	// the client's cached copy (0 for none) and the response may be
	// PageCurrent or PageDelta instead of a full image.
	ReadVersioned uint8 = 1
)

// OpBegin request mode flags.
const (
	// BeginSession asks the server to track this client as a coherence
	// session: Request.N carries the session id from a previous Begin (0
	// to mint one) and the response's Page returns it. Sessions exist only
	// for invalidation hints; a server that dropped the session silently
	// mints a new one.
	BeginSession uint8 = 1
)

// Versioned-read response kinds (low nibble of Response.Mode on
// OpReadPage and inside OpValidatePages repair entries). Response.N
// carries the new token.
const (
	// PageFull: Data is the complete page image. Also the zero value, so
	// unversioned reads are wire-compatible with older clients.
	PageFull uint8 = 0
	// PageCurrent: the client's cached copy is current; Data is empty.
	PageCurrent uint8 = 1
	// PageDelta: Data is a pagedelta patch transforming the client's
	// cached image into the current one.
	PageDelta uint8 = 2
)

// Piggybacked-invalidation flags (high nibble of Response.Mode on
// OpLock and OpCommit responses).
const (
	// RespStale on a page-lock response: the token the lock request
	// carried in Request.N no longer matches the page's current version,
	// so the client must revalidate its cached copy before reading it.
	RespStale uint8 = 0x10
	// RespHints on a commit response: Data carries repeated u32 page ids
	// the session is known to cache whose versions have moved on.
	RespHints uint8 = 0x20
	// RespHintsAll on a commit response: the server lost track of the
	// session's cached set (bounded map overflowed); every resident frame
	// must be treated as possibly stale.
	RespHintsAll uint8 = 0x40
)

// ValidateReqEntryBytes is the wire size of one OpValidatePages request
// entry: u32 page id + u64 token.
const ValidateReqEntryBytes = 4 + 8

// AppendValidateEntry marshals one (pid, token) request entry onto dst.
func AppendValidateEntry(dst []byte, pid uint32, token uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], pid)
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], token)
	return append(dst, tmp[:]...)
}

// ParseValidateEntries decodes an OpValidatePages request payload,
// enforcing that the entry count matches the request's declared N.
func ParseValidateEntries(data []byte, want uint64) (pids []uint32, tokens []uint64, err error) {
	if len(data)%ValidateReqEntryBytes != 0 {
		return nil, nil, fmt.Errorf("esm: validate payload %d bytes, not a multiple of %d", len(data), ValidateReqEntryBytes)
	}
	n := len(data) / ValidateReqEntryBytes
	if uint64(n) != want {
		return nil, nil, fmt.Errorf("esm: validate payload has %d entries, request declares %d", n, want)
	}
	pids = make([]uint32, n)
	tokens = make([]uint64, n)
	for i := 0; i < n; i++ {
		off := i * ValidateReqEntryBytes
		pids[i] = binary.LittleEndian.Uint32(data[off:])
		tokens[i] = binary.LittleEndian.Uint64(data[off+4:])
	}
	return pids, tokens, nil
}

// ValidateRepair is one OpValidatePages response repair entry: how the
// client brings a stale cached page current without a separate read.
type ValidateRepair struct {
	Page  uint32
	Kind  uint8  // PageDelta or PageFull
	Token uint64 // the version the repair produces (0: uncacheable)
	Patch []byte // pagedelta patch (PageDelta) or full image (PageFull)
}

// AppendValidateResponse marshals an OpValidatePages response payload:
// u32 bit count, the stale bitmap, then each repair entry as
// u32 pid | u8 kind | u64 token | u32 len | payload.
func AppendValidateResponse(dst []byte, stale []bool, repairs []ValidateRepair) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(stale)))
	dst = append(dst, tmp[:4]...)
	bitmapAt := len(dst)
	dst = append(dst, make([]byte, (len(stale)+7)/8)...)
	for i, s := range stale {
		if s {
			dst[bitmapAt+i/8] |= 1 << (i % 8)
		}
	}
	for _, r := range repairs {
		binary.LittleEndian.PutUint32(tmp[:4], r.Page)
		dst = append(dst, tmp[:4]...)
		dst = append(dst, r.Kind)
		binary.LittleEndian.PutUint64(tmp[:], r.Token)
		dst = append(dst, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Patch)))
		dst = append(dst, tmp[:4]...)
		dst = append(dst, r.Patch...)
	}
	return dst
}

// ParseValidateResponse decodes an OpValidatePages response payload. The
// declared bit count must equal want — the number of entries the client
// sent — so a lying or truncated bitmap can never silently mark fewer
// pages stale than the client asked about.
func ParseValidateResponse(data []byte, want int) (stale []bool, repairs []ValidateRepair, err error) {
	if len(data) < 4 {
		return nil, nil, errShortMessage
	}
	nbits := int(binary.LittleEndian.Uint32(data[0:]))
	if nbits != want {
		return nil, nil, fmt.Errorf("esm: validate response declares %d bits, expected %d", nbits, want)
	}
	p := 4
	bmLen := (nbits + 7) / 8
	if len(data) < p+bmLen {
		return nil, nil, errShortMessage
	}
	stale = make([]bool, nbits)
	for i := range stale {
		stale[i] = data[p+i/8]&(1<<(i%8)) != 0
	}
	p += bmLen
	for p < len(data) {
		if len(data)-p < 17 {
			return nil, nil, fmt.Errorf("esm: truncated validate repair header at %d", p)
		}
		r := ValidateRepair{
			Page:  binary.LittleEndian.Uint32(data[p:]),
			Kind:  data[p+4],
			Token: binary.LittleEndian.Uint64(data[p+5:]),
		}
		plen := int(binary.LittleEndian.Uint32(data[p+13:]))
		p += 17
		if len(data)-p < plen {
			return nil, nil, fmt.Errorf("esm: truncated validate repair payload at %d (want %d, have %d)", p, plen, len(data)-p)
		}
		if plen > 0 {
			r.Patch = append([]byte(nil), data[p:p+plen]...)
		}
		p += plen
		repairs = append(repairs, r)
	}
	return stale, repairs, nil
}

// RequestWireSize is the framed size of a request on the wire, for byte
// accounting in benchmarks and transports that meter traffic.
func RequestWireSize(r *Request) int {
	return frameHdrSize + 28 + len(r.Name) + len(r.Data)
}

// ResponseWireSize is the framed size of a response on the wire.
func ResponseWireSize(r *Response) int {
	return frameHdrSize + 19 + len(r.Err) + len(r.Data)
}

// Request is one client-to-server message.
type Request struct {
	Op   Op
	Tx   uint64
	Page uint32 // page id / file id, per op
	N    uint64 // count / counter delta, per op
	Mode uint8  // lock mode / resource kind / flags
	Name string // root, counter, or file name
	Data []byte // page image, log batch, or OID payload
}

// Response is one server-to-client message.
type Response struct {
	Err  string
	Page uint32
	N    uint64
	Mode uint8 // versioned-read kind / invalidation flags (coherence)
	Data []byte
}

// Transport delivers requests to a server and returns responses. The
// in-process, multiplexed-TCP, and lock-step-TCP transports all satisfy it.
// A Transport is safe for concurrent use by multiple goroutines (sessions):
// one socket may carry a prefetch pump's batch reads interleaved with
// foreground faults, or several whole client sessions.
type Transport interface {
	Call(req *Request) (*Response, error)
	Close() error
}

// Wire format. Every message travels in one frame:
//
//	u32 n    — little-endian length of the rest of the frame (seq + body)
//	u64 seq  — multiplexing sequence number, chosen by the client
//	body     — one marshaled Request (client→server) or Response (reverse)
//
// The server echoes the request's seq on its response, and responses may
// arrive in any order: the client demultiplexes on seq. Sequence numbers
// are per-connection and never reused while a call is outstanding. A frame
// that cannot be parsed far enough to recover a seq (runt or oversized
// length) leaves the stream unsynchronizable, so both sides drop the
// connection rather than guess.
const (
	frameLenSize = 4
	frameSeqSize = 8
	frameHdrSize = frameLenSize + frameSeqSize
	maxFrame     = 1 << 30
)

var errShortMessage = errors.New("esm: short protocol message")

// bufPool recycles frame and marshal buffers across calls and connections
// (*[]byte, not []byte, so Put does not allocate a slice header). Buffers
// that grew past a page-batch-sized cap are dropped instead of pooled.
var bufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 16<<10)
	return &b
}}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) {
	if p == nil || cap(*p) > 4<<20 {
		return
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

// appendFrameHeader reserves the length word, appends seq, and returns the
// extended buffer plus the offset where the length must be patched once the
// body is in place.
func appendFrameHeader(dst []byte, seq uint64) ([]byte, int) {
	lenAt := len(dst)
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[frameLenSize:], seq)
	dst = append(dst, hdr[:]...)
	return dst, lenAt
}

func patchFrameLen(dst []byte, lenAt int) {
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-frameLenSize))
}

// appendRequestFrame appends one complete framed request to dst. It never
// allocates beyond growing dst, so a reused flush buffer makes the encode
// path allocation-free in steady state.
func appendRequestFrame(dst []byte, seq uint64, r *Request) []byte {
	dst, lenAt := appendFrameHeader(dst, seq)
	dst = r.appendTo(dst)
	patchFrameLen(dst, lenAt)
	return dst
}

// appendResponseFrame appends one complete framed response to dst.
func appendResponseFrame(dst []byte, seq uint64, r *Response) []byte {
	dst, lenAt := appendFrameHeader(dst, seq)
	dst = r.appendTo(dst)
	patchFrameLen(dst, lenAt)
	return dst
}

// readMuxFrame reads one frame from r. The returned body aliases *scratch
// and is valid only until the next call that reuses the same scratch
// buffer; callers that hand the body to another goroutine must pass a
// dedicated (pooled) scratch instead.
func readMuxFrame(r io.Reader, scratch *[]byte) (seq uint64, body []byte, err error) {
	// The frame header is staged in the scratch buffer, not a local array:
	// a local would escape through the io.Reader interface and cost an
	// allocation per frame.
	buf := *scratch
	if cap(buf) < frameHdrSize {
		buf = make([]byte, 0, 16<<10)
		*scratch = buf
	}
	hdr := buf[:frameHdrSize]
	if _, err := io.ReadFull(r, hdr[:frameLenSize]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:frameLenSize])
	if n < frameSeqSize {
		return 0, nil, fmt.Errorf("esm: runt frame (%d bytes, need at least the %d-byte seq)", n, frameSeqSize)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("esm: oversized frame (%d bytes)", n)
	}
	if _, err := io.ReadFull(r, hdr[frameLenSize:]); err != nil {
		return 0, nil, err
	}
	seq = binary.LittleEndian.Uint64(hdr[frameLenSize:])
	bodyLen := int(n) - frameSeqSize
	if cap(buf) >= bodyLen {
		buf = buf[:bodyLen]
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		return seq, buf, nil
	}
	// The buffer must grow. Grow it as bytes actually arrive, in bounded
	// steps, rather than trusting the length prefix up front: a 12-byte
	// header claiming a 1GB body must not commit a 1GB allocation before
	// the peer has sent anything (the stream usually ends long before).
	const growStep = 1 << 20
	buf = buf[:0]
	for len(buf) < bodyLen {
		chunk := bodyLen - len(buf)
		if chunk > growStep {
			chunk = growStep
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		*scratch = buf
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return 0, nil, err
		}
	}
	return seq, buf, nil
}

// appendTo marshals the request body (no frame header) onto dst.
func (r *Request) appendTo(dst []byte) []byte {
	var tmp [8]byte
	dst = append(dst, byte(r.Op), r.Mode)
	binary.LittleEndian.PutUint64(tmp[:], r.Tx)
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], r.Page)
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], r.N)
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Name)))
	dst = append(dst, tmp[:2]...)
	dst = append(dst, r.Name...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	dst = append(dst, tmp[:4]...)
	dst = append(dst, r.Data...)
	return dst
}

func (r *Request) marshal() []byte { return r.appendTo(make([]byte, 0, 32+len(r.Name)+len(r.Data))) }

// unmarshal decodes buf into r. With copyData false, r.Data aliases buf:
// the caller owns buf for the lifetime of r (the server's per-request
// frame buffers rely on this — handlers never retain request data past
// the call).
func (r *Request) unmarshal(buf []byte, copyData bool) error {
	if len(buf) < 24 {
		return errShortMessage
	}
	r.Op = Op(buf[0])
	r.Mode = buf[1]
	r.Tx = binary.LittleEndian.Uint64(buf[2:])
	r.Page = binary.LittleEndian.Uint32(buf[10:])
	r.N = binary.LittleEndian.Uint64(buf[14:])
	nameLen := int(binary.LittleEndian.Uint16(buf[22:]))
	p := 24
	if len(buf) < p+nameLen+4 {
		return errShortMessage
	}
	if nameLen > 0 {
		r.Name = string(buf[p : p+nameLen])
	} else {
		r.Name = ""
	}
	p += nameLen
	dataLen := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if len(buf) < p+dataLen {
		return errShortMessage
	}
	switch {
	case dataLen == 0:
		r.Data = nil
	case copyData:
		r.Data = append([]byte(nil), buf[p:p+dataLen]...)
	default:
		r.Data = buf[p : p+dataLen : p+dataLen]
	}
	return nil
}

func unmarshalRequest(buf []byte) (*Request, error) {
	r := new(Request)
	if err := r.unmarshal(buf, true); err != nil {
		return nil, err
	}
	return r, nil
}

// appendTo marshals the response body (no frame header) onto dst.
func (r *Response) appendTo(dst []byte) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Err)))
	dst = append(dst, tmp[:2]...)
	dst = append(dst, r.Err...)
	binary.LittleEndian.PutUint32(tmp[:4], r.Page)
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], r.N)
	dst = append(dst, tmp[:]...)
	dst = append(dst, r.Mode)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Data)))
	dst = append(dst, tmp[:4]...)
	dst = append(dst, r.Data...)
	return dst
}

func (r *Response) marshal() []byte { return r.appendTo(make([]byte, 0, 20+len(r.Err)+len(r.Data))) }

// unmarshal decodes buf into r. With copyData false, r.Data aliases buf.
func (r *Response) unmarshal(buf []byte, copyData bool) error {
	if len(buf) < 2 {
		return errShortMessage
	}
	errLen := int(binary.LittleEndian.Uint16(buf[0:]))
	p := 2
	if len(buf) < p+errLen+17 {
		return errShortMessage
	}
	if errLen > 0 {
		r.Err = string(buf[p : p+errLen])
	} else {
		r.Err = ""
	}
	p += errLen
	r.Page = binary.LittleEndian.Uint32(buf[p:])
	r.N = binary.LittleEndian.Uint64(buf[p+4:])
	r.Mode = buf[p+12]
	dataLen := int(binary.LittleEndian.Uint32(buf[p+13:]))
	p += 17
	if len(buf) < p+dataLen {
		return errShortMessage
	}
	switch {
	case dataLen == 0:
		r.Data = nil
	case copyData:
		r.Data = append([]byte(nil), buf[p:p+dataLen]...)
	default:
		r.Data = buf[p : p+dataLen : p+dataLen]
	}
	return nil
}

func unmarshalResponse(buf []byte) (*Response, error) {
	r := new(Response)
	if err := r.unmarshal(buf, true); err != nil {
		return nil, err
	}
	return r, nil
}

// InProcTransport calls straight into a server living in the same process.
// This is the default for benchmarks: the network cost is charged by the
// cost model, so a real socket would only add nondeterminism.
type InProcTransport struct {
	srv *Server
}

// NewInProcTransport returns a transport bound to srv.
func NewInProcTransport(srv *Server) *InProcTransport { return &InProcTransport{srv: srv} }

// Call implements Transport.
func (t *InProcTransport) Call(req *Request) (*Response, error) {
	return t.srv.Handle(req), nil
}

// Close implements Transport.
func (t *InProcTransport) Close() error { return nil }
