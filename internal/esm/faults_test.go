package esm

import (
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/faultinject"
	"quickstore/internal/wal"
)

// seedObject builds a committed, checkpointed baseline: one 64-byte object
// holding "original", reachable through the "obj" root.
func seedObject(t *testing.T, vol disk.Volume, logf *wal.Log, cfg ServerConfig) (*Server, OID) {
	t.Helper()
	srv, err := NewServer(vol, logf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := c.CreateFile("f")
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewCluster(fid)
	oid, data, err := c.CreateObject(cl, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "original")
	if err := c.SetRoot("obj", oid, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return srv, oid
}

// clobber starts a transaction on a steal-prone client (2-frame pool),
// overwrites the seeded object with "clobber!", logs the update, and fills
// the pool so the dirty page is stolen to the server mid-transaction.
// The transaction is left open; its id and the object's in-page offset
// are returned (the offset is computed here because any later session
// would append — and under the abort fix, flush — more log records).
func clobber(t *testing.T, srv *Server, oid OID) (c *Client, tx uint64, off int) {
	t.Helper()
	c = NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 2})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	obj, idx, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), obj[:8]...)
	copy(obj, "clobber!")
	c.Pool().MarkDirty(idx)
	off = pageOffOf(t, c, oid)
	c.LogUpdate(oid.Page, off, old, []byte("clobber!"))
	cl := c.NewCluster(1)
	for i := 0; i < 4; i++ {
		if _, _, err := c.CreateObject(cl, 7000); err != nil {
			t.Fatal(err)
		}
	}
	return c, c.Tx(), off
}

func readSeeded(t *testing.T, srv *Server, oid OID) string {
	t.Helper()
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data[:8])
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAbortRecordDurableBeforeAck is the regression test for the abort
// durability bug: the server acknowledged aborts without forcing the log,
// so a crash right after the ack could lose the rollback decision (the
// CLRs and the abort record) even though the client had already been told
// the transaction was gone. The fix forces the log before the ack, so the
// durable log must contain the abort record once Abort returns — no
// matter what crashes afterwards.
func TestAbortRecordDurableBeforeAck(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, oid := seedObject(t, vol, logf, ServerConfig{BufferPages: 64})

	c, tx, _ := clobber(t, srv, oid)
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after the ack: everything not forced is gone.
	logf.DiscardUnflushed()

	aborted := false
	if err := logf.Iterate(func(r wal.Record) bool {
		if r.Tx == tx && r.Type == wal.RecAbort {
			aborted = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !aborted {
		t.Fatalf("abort of tx %d was acknowledged but its record is not durable", tx)
	}

	// And the store still recovers to the pre-transaction state.
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := readSeeded(t, srv2, oid); got != "original" {
		t.Fatalf("after crash-post-abort recovery: %q, want %q", got, "original")
	}
}

// TestStealWritesForceWALFirst is the regression test for the steal-path
// WAL violation: the server buffer pool wrote stolen dirty pages to the
// volume without first forcing the log through the page's LSN. A crash
// after such a write leaves an uncommitted page on disk with its
// before-images lost — unrecoverable corruption. With the fix, the log
// records covering the page are durable before the page hits the volume,
// so restart recovery can undo the loser.
func TestStealWritesForceWALFirst(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, oid := seedObject(t, vol, logf, ServerConfig{BufferPages: 64})

	_, _, off := clobber(t, srv, oid) // open tx, dirty page stolen to the server

	// Push the stolen page all the way to the volume through the pool's
	// write-back path (FlushAll), without any commit/checkpoint log force.
	if err := srv.DropCaches(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, disk.PageSize)
	if err := vol.ReadPage(oid.Page, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[off:off+8]) != "clobber!" {
		t.Fatalf("setup failed: loser page not written back (%q)", raw[off:off+8])
	}

	// Crash with the transaction still open; reopen and recover.
	logf.DiscardUnflushed()
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := readSeeded(t, srv2, oid); got != "original" {
		t.Fatalf("loser update survived on the volume: %q, want %q", got, "original")
	}
}

// TestCommitCrashPoints drives the two commit-point outcomes end to end
// through an armed fault plane: a crash before the log force loses the
// transaction, a crash after it keeps the transaction, and in both cases
// the client saw an error — the classic "ack lost, outcome decided by the
// log" split.
func TestCommitCrashPoints(t *testing.T) {
	plane := faultinject.New(42)
	vol := disk.NewMemVolume()
	hv := disk.WithHook(vol, plane)
	logf := wal.NewMemLog()
	logf.FlushHook = plane.FlushHook()
	srv, oid := seedObject(t, hv, logf, ServerConfig{BufferPages: 64, Fault: plane})

	// Crash between the commit-record append and the log force: the
	// transaction must vanish at restart.
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c.Begin()
	obj, idx, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	copy(obj, "version2")
	c.Pool().MarkDirty(idx)
	c.LogUpdate(oid.Page, pageOffOf(t, c, oid), []byte("original"), []byte("version2"))
	plane.ArmCrash(faultinject.PtCommitBeforeFlush, 1)
	if err := c.Commit(); !faultinject.IsCrash(err) {
		t.Fatalf("commit through a crash point returned %v", err)
	}
	logf.DiscardUnflushed()
	plane.Reset()
	srv2, err := OpenServer(hv, logf, ServerConfig{BufferPages: 64, Fault: plane})
	if err != nil {
		t.Fatal(err)
	}
	if got := readSeeded(t, srv2, oid); got != "original" {
		t.Fatalf("unforced commit survived the crash: %q", got)
	}

	// Crash after the log force: the transaction must survive even though
	// the client never saw the ack.
	c2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	c2.Begin()
	obj2, idx2, err := c2.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	copy(obj2, "version3")
	c2.Pool().MarkDirty(idx2)
	c2.LogUpdate(oid.Page, pageOffOf(t, c2, oid), []byte("original"), []byte("version3"))
	plane.ArmCrash(faultinject.PtCommitAfterFlush, 1)
	if err := c2.Commit(); !faultinject.IsCrash(err) {
		t.Fatalf("commit through a crash point returned %v", err)
	}
	logf.DiscardUnflushed()
	plane.Reset()
	srv3, err := OpenServer(hv, logf, ServerConfig{BufferPages: 64, Fault: plane})
	if err != nil {
		t.Fatal(err)
	}
	if got := readSeeded(t, srv3, oid); got != "version3" {
		t.Fatalf("forced commit lost at the crash: %q, want %q", got, "version3")
	}
}

// TestClientRetriesTransientFaults: reads that hit an injected transient
// disk error are retried under the session RetryPolicy and succeed once
// the fault heals; a session without a retry policy sees the raw error.
func TestClientRetriesTransientFaults(t *testing.T) {
	plane := faultinject.New(7)
	vol := disk.NewMemVolume()
	hv := disk.WithHook(vol, plane)
	logf := wal.NewMemLog()
	srv, oid := seedObject(t, hv, logf, ServerConfig{BufferPages: 64, Fault: plane})
	if err := srv.DropCaches(); err != nil { // force reads to the faulty disk
		t.Fatal(err)
	}

	plane.ArmTransient(faultinject.PtDiskRead, 2)
	c := NewClient(NewInProcTransport(srv), ClientConfig{
		BufferPages: 8,
		Retry:       RetryPolicy{MaxAttempts: 4},
	})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.ReadObject(oid)
	if err != nil {
		t.Fatalf("read did not survive transient faults: %v", err)
	}
	if string(data[:8]) != "original" {
		t.Fatalf("retried read returned %q", data[:8])
	}
	if c.Retries() == 0 {
		t.Fatal("no retries recorded, fault never exercised")
	}
	c.Commit()

	// Without a policy the same fault surfaces to the caller.
	if err := srv.DropCaches(); err != nil {
		t.Fatal(err)
	}
	plane.ArmTransient(faultinject.PtDiskRead, 2)
	c2 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.ReadObject(oid); !faultinject.IsTransient(err) {
		t.Fatalf("unretried read returned %v, want transient", err)
	}
}
