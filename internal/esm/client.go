package esm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"quickstore/internal/buffer"
	"quickstore/internal/disk"
	"quickstore/internal/faultinject"
	"quickstore/internal/lock"
	"quickstore/internal/pagedelta"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// DefaultClientBufferPages matches the paper's 12MB client pool.
const DefaultClientBufferPages = 1536

// ErrNoTx is returned for page operations outside a transaction.
var ErrNoTx = errors.New("esm: no transaction in progress")

// remoteError wraps a server-reported error string.
type remoteError string

// Error implements the error interface.
func (e remoteError) Error() string { return "esm server: " + string(e) }

// RetryPolicy bounds the client's automatic retry of transient server
// faults (injected or real I/O hiccups that heal on their own).
type RetryPolicy struct {
	MaxAttempts int           // total tries per request; 0 or 1 disables retry
	Backoff     time.Duration // sleep before each retry, doubled every attempt
}

// ClientConfig tunes a client session.
type ClientConfig struct {
	BufferPages int           // client pool size; 0 = DefaultClientBufferPages
	Policy      buffer.Policy // replacement policy; nil = traditional clock
	Clock       *sim.Clock    // cost-model clock; nil = free clock
	Retry       RetryPolicy   // transient-fault retry; zero value disables

	// NoCoherence disables the warm-cache coherence protocol: no Begin
	// revalidation, no versioned reads, no invalidation hints. Resident
	// frames are then reused blindly across transactions — correct only
	// when this client is the sole writer (the protocol's off switch for
	// the full-refetch baseline in benchmarks).
	NoCoherence bool
}

// Client is one application session against the page server. It owns the
// client buffer pool; pages are accessed in place in pool frames, exactly
// as ESM clients do in the paper. A Client is not safe for concurrent use:
// it models one application process. The Transport underneath, however, is
// shared freely: the prefetch pump's worker goroutines call ReadPagesBatch
// while the session's main thread faults pages, and several sessions may
// ride one multiplexed TCP connection — transports pipeline concurrent
// calls instead of serializing them.
type Client struct {
	tr    Transport
	clock *sim.Clock
	pool  *buffer.Pool

	retry   RetryPolicy
	retries atomic.Int64 // requests re-sent after a transient fault (atomic: retryable calls run on prefetch workers too)

	tx      uint64
	pending []byte // serialized log batch (count in first 4 bytes)
	nrecs   uint32

	// snap, when nonzero, is the LSN of the open read-only snapshot
	// session (BeginSnapshot): page faults go through OpSnapRead and
	// bypass the lock manager entirely. Mutually exclusive with tx.
	// snapFetched tracks pages fetched as of snap, so residency from an
	// earlier transaction (possibly newer than the snapshot) is refetched
	// and snapshot-time images are dropped when the session ends.
	// lastSeen is the newest commit LSN this session has observed — its
	// read-your-writes floor for snapshot begins, which matters after a
	// replication failover lands it on a node with an older applied LSN.
	snap        wal.LSN
	snapFetched map[disk.PageID]bool
	lastSeen    uint64

	uniqueNext uint64
	uniqueEnd  uint64

	lastLSN  uint64
	stamper  ShardStamper         // per-shard LSN source when the transport shards (nil otherwise)
	rawPages map[disk.PageID]bool // large-object data pages: never LSN-stamped

	// Warm-cache coherence (DESIGN.md §18). coherent gates the whole
	// protocol; sid is the server-minted hint session (0 until the first
	// Begin, always 0 under sharding); pinLeaks counts frames Abort found
	// still pinned — an object-layer bug Abort used to paper over.
	coherent bool
	sid      uint64
	pinLeaks int64

	// BeforeSteal, if set, runs before a dirty page is shipped to the
	// server mid-transaction (buffer-pool steal). QuickStore hooks this to
	// diff the page and emit its log records first, preserving WAL order.
	BeforeSteal func(pid disk.PageID, data []byte) error

	// OnRefresh, if set, runs after the coherence protocol rewrites a
	// resident frame's bytes in place (a delta or full repair). QuickStore
	// hooks it to unmap the page and discard its swizzle state: the frame
	// now holds the committed disk image, not this session's swizzled
	// view, so the next access must re-fault and re-process the mapping.
	OnRefresh func(pid disk.PageID, frame int)

	// LogStructure makes the client WAL-log its own structural page edits —
	// the headers and slot directories it writes in CreateObject,
	// DeleteObject, and cluster-page formatting. Callers that log by
	// diffing mapped data pages (QuickStore) never see these bytes, and a
	// session that redoes the log onto a cold store — restart recovery, a
	// replication follower at promotion — finds slotless pages without
	// them. Sessions that checkpoint instead can leave this off.
	LogStructure bool
}

// NewClient opens a session over tr.
func NewClient(tr Transport, cfg ClientConfig) *Client {
	if cfg.BufferPages == 0 {
		cfg.BufferPages = DefaultClientBufferPages
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewClock(sim.CostModel{})
	}
	c := &Client{tr: tr, clock: cfg.Clock, retry: cfg.Retry, rawPages: map[disk.PageID]bool{}, coherent: !cfg.NoCoherence}
	if st, ok := tr.(ShardStamper); ok {
		c.stamper = st
	}
	c.pool = buffer.New(cfg.BufferPages, cfg.Policy)
	c.pool.FlushFn = c.stealPage
	c.pool.OnPrefetchDrop = func(disk.PageID) { c.clock.Charge(sim.CtrPrefetchWasted, 1) }
	c.pending = make([]byte, 4)
	return c
}

// Pool exposes the client buffer pool so QuickStore can install its
// simplified-clock policy hooks (OnEvict) and inspect residency.
func (c *Client) Pool() *buffer.Pool { return c.pool }

// Clock returns the session's cost-model clock.
func (c *Client) Clock() *sim.Clock { return c.clock }

// retryable reports whether req may be re-sent verbatim after a transient
// fault. Only requests with no server-side effects qualify: re-reading a
// page or re-acquiring an already-held lock is harmless, but replaying
// OpLog, OpCounter, or a page install would double-apply it (the first
// attempt may have taken effect before the fault surfaced).
func retryable(op Op) bool {
	switch op {
	case OpReadPage, OpReadPages, OpGetRoot, OpOpenFile, OpStats, OpLock,
		OpBeginSnapshot, OpSnapRead, OpValidatePages:
		// The snapshot ops are read-only; re-beginning pins the same (or a
		// newer) snapshot and re-reading a page at a pinned LSN is stable.
		// OpEndSnapshot is deliberately absent: replaying it would unpin a
		// snapshot someone else still holds.
		return true
	}
	return false
}

// RetryableOp reports whether op may be re-sent verbatim after a transport
// failure, per the same no-server-side-effects rule the client's own retry
// uses. The replication Director consults it when failing over between
// cluster nodes.
func RetryableOp(op Op) bool { return retryable(op) }

// call sends a request and surfaces server errors as Go errors. Idempotent
// requests that fail with a transient fault are retried under the
// session's RetryPolicy with doubling backoff; crashes and every other
// error surface immediately.
func (c *Client) call(req *Request) (*Response, error) {
	attempts := 1
	if c.retry.MaxAttempts > 1 && retryable(req.Op) {
		attempts = c.retry.MaxAttempts
	}
	backoff := c.retry.Backoff
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.retries.Add(1)
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		resp, err := c.tr.Call(req)
		if err != nil {
			return nil, err // transport failure: the session is gone
		}
		if resp.Err == "" {
			return resp, nil
		}
		lastErr = remoteError(resp.Err)
		if !faultinject.IsTransient(lastErr) {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// Retries reports how many requests were re-sent after transient faults.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Begin starts a transaction. With coherence on it also revalidates the
// whole resident set against the server's version table in one batched
// OpValidatePages round trip: current frames are kept as-is, stale ones
// are repaired in place (delta patch or full image) or evicted, so
// everything still resident afterwards is the last committed image.
func (c *Client) Begin() error {
	if c.tx != 0 {
		return fmt.Errorf("esm: transaction %d already active", c.tx)
	}
	if c.snap != 0 {
		return fmt.Errorf("esm: snapshot session at %d open; end it before writing", c.snap)
	}
	req := &Request{Op: OpBegin}
	if c.coherent && c.stamper == nil {
		// Hint sessions are single-server only: the shard Router begins
		// distributed transactions itself and never forwards session ids.
		req.Mode = BeginSession
		req.N = c.sid
	}
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	c.tx = resp.N
	if req.Mode&BeginSession != 0 {
		c.sid = uint64(resp.Page)
	}
	if c.coherent {
		if err := c.validateResident(); err != nil {
			return fmt.Errorf("esm: revalidating warm cache: %w", err)
		}
	}
	return nil
}

// validateChunk caps the entries in one OpValidatePages request so a huge
// resident set cannot produce an unbounded frame.
const validateChunk = 512

// validateResident revalidates every clean resident frame at Begin. No
// sim-clock time is charged anywhere on this path — warm hits were free
// in the uncoherent model too, and the protocol's cost is measured in
// wire bytes (the warm-cache bench), not simulated I/O.
func (c *Client) validateResident() error {
	idxs := make([]int, 0, validateChunk)
	entries := make([]byte, 0, validateChunk*ValidateReqEntryBytes)
	for i := 0; i < c.pool.Len(); i++ {
		f := c.pool.Frame(i)
		if f.Page == disk.InvalidPage || f.Dirty {
			continue
		}
		// Token 0 means unversioned (raw large-object pages discard their
		// tokens — see noteToken). The server can never prove such a frame
		// current, so shipping it would force a full repair every Begin.
		// These frames keep the legacy trust model; commit-piggybacked
		// invalidation hints still mark them Stale when a peer writes them.
		if f.LSN == 0 {
			continue
		}
		entries = AppendValidateEntry(entries, uint32(f.Page), f.LSN)
		idxs = append(idxs, i)
		if len(idxs) == validateChunk {
			if err := c.validateChunkCall(idxs, entries); err != nil {
				return err
			}
			idxs, entries = idxs[:0], entries[:0]
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	return c.validateChunkCall(idxs, entries)
}

// validateChunkCall ships one OpValidatePages batch and applies its
// verdicts: repairs land in the frames in place (a repaired prefetched
// frame keeps its Prefetched flag — the deferred-cost accounting is
// orthogonal to coherence), stale frames without a repair are evicted.
func (c *Client) validateChunkCall(idxs []int, entries []byte) error {
	resp, err := c.call(&Request{Op: OpValidatePages, Tx: c.tx, N: uint64(len(idxs)), Data: entries})
	if err != nil {
		return err
	}
	stale, repairs, err := ParseValidateResponse(resp.Data, len(idxs))
	if err != nil {
		return err
	}
	repairBy := make(map[uint32]*ValidateRepair, len(repairs))
	for i := range repairs {
		repairBy[repairs[i].Page] = &repairs[i]
	}
	for k, i := range idxs {
		f := c.pool.Frame(i)
		if !stale[k] {
			f.Stale = false
			continue
		}
		rep := repairBy[uint32(f.Page)]
		if rep != nil {
			repaired := false
			switch rep.Kind {
			case PageFull:
				if len(rep.Patch) == len(f.Data) {
					copy(f.Data, rep.Patch)
					repaired = true
				}
			case PageDelta:
				repaired = pagedelta.Apply(f.Data, rep.Patch) == nil
			}
			if repaired {
				f.LSN = c.noteToken(f.Page, rep.Token)
				f.Stale = false
				if c.OnRefresh != nil {
					c.OnRefresh(f.Page, i)
				}
				continue
			}
		}
		// No repair (or a malformed one): drop the frame; the next access
		// refetches the committed image.
		if f.Pin != 0 {
			f.Stale = true // pinned across Begin — revalidated on next fetch
			continue
		}
		if err := c.pool.Evict(i); err != nil {
			return err
		}
	}
	return nil
}

// BeginSnapshot opens a read-only snapshot session: every page fault until
// EndSnapshot is served as of one consistent commit LSN, and the server
// never consults the lock manager for them — writers proceed untouched.
// The session's last-seen commit LSN rides along so a node that has not
// caught up to this client's own writes refuses rather than time-travels.
func (c *Client) BeginSnapshot() error {
	if c.tx != 0 {
		return fmt.Errorf("esm: transaction %d active; snapshot sessions are read-only", c.tx)
	}
	if c.snap != 0 {
		return fmt.Errorf("esm: snapshot %d already open", c.snap)
	}
	resp, err := c.call(&Request{Op: OpBeginSnapshot, N: c.lastSeen})
	if err != nil {
		return err
	}
	c.snap = wal.LSN(resp.N)
	if resp.N > c.lastSeen {
		c.lastSeen = resp.N
	}
	c.snapFetched = map[disk.PageID]bool{}
	return nil
}

// Snapshot returns the open snapshot session's LSN (0 when none).
func (c *Client) Snapshot() wal.LSN { return c.snap }

// LastSeenLSN returns the newest commit LSN this session has observed.
func (c *Client) LastSeenLSN() uint64 { return c.lastSeen }

// EndSnapshot closes the snapshot session. Pages fetched as of the
// snapshot are evicted — they are stale for any later transaction — and
// the server's pin is released. The unpin is best-effort by design (see
// retryable): if the server became unreachable, the local session still
// closes and the error reports why reclamation may lag.
func (c *Client) EndSnapshot() error {
	if c.snap == 0 {
		return errors.New("esm: no snapshot in progress")
	}
	snap := c.snap
	c.snap = 0
	for pid := range c.snapFetched {
		if i, ok := c.pool.Lookup(pid); ok {
			if err := c.pool.Evict(i); err != nil {
				return err
			}
		}
	}
	c.snapFetched = nil
	_, err := c.call(&Request{Op: OpEndSnapshot, N: uint64(snap)})
	return err
}

// Tx returns the current transaction id (0 when none).
func (c *Client) Tx() uint64 { return c.tx }

// FetchPage brings pid into the client pool (a page-shipping request to the
// server on a miss) and returns its frame index. The frame data may be
// mutated in place; call MarkDirty afterwards.
func (c *Client) FetchPage(pid disk.PageID) (int, error) {
	if c.snap != 0 {
		return c.fetchSnapPage(pid)
	}
	if c.tx == 0 {
		return 0, ErrNoTx
	}
	if i, ok := c.pool.Get(pid); ok {
		c.ConsumePrefetch(i)
		if c.coherent && c.pool.Frame(i).Stale && !c.pool.Frame(i).Dirty {
			if err := c.revalidateFrame(i); err != nil {
				return 0, err
			}
		}
		return i, nil
	}
	var token uint64
	i, err := c.pool.Put(pid, func(buf []byte) error {
		c.clock.Charge(sim.CtrClientRead, 1)
		req := &Request{Op: OpReadPage, Tx: c.tx, Page: uint32(pid)}
		if c.coherent {
			req.Mode = ReadVersioned
		}
		resp, err := c.call(req)
		if err != nil {
			return err
		}
		copy(buf, resp.Data)
		token = resp.N
		return nil
	})
	if err != nil {
		return 0, err
	}
	if c.coherent {
		c.pool.Frame(i).LSN = c.noteToken(pid, token)
	}
	return i, nil
}

// revalidateFrame refreshes a resident frame the server flagged stale (a
// piggybacked invalidation hint or a stale lock grant): one versioned
// read that comes back as not-modified, a delta patch, or a full image.
// Only the full-image answer charges a client read — the other two are
// exactly the warm hit the uncoherent model never charged for.
func (c *Client) revalidateFrame(i int) error {
	f := c.pool.Frame(i)
	resp, err := c.call(&Request{Op: OpReadPage, Tx: c.tx, Page: uint32(f.Page), N: f.LSN, Mode: ReadVersioned})
	if err != nil {
		return err
	}
	refreshed := false
	switch resp.Mode {
	case PageCurrent:
	case PageDelta:
		if err := pagedelta.Apply(f.Data, resp.Data); err != nil {
			return fmt.Errorf("esm: delta repair of page %d: %w", f.Page, err)
		}
		refreshed = true
	default: // PageFull
		if len(resp.Data) != len(f.Data) {
			return fmt.Errorf("esm: versioned read of page %d returned %d bytes", f.Page, len(resp.Data))
		}
		c.clock.Charge(sim.CtrClientRead, 1)
		copy(f.Data, resp.Data)
		refreshed = true
	}
	f.LSN = c.noteToken(f.Page, resp.N)
	f.Stale = false
	if refreshed && c.OnRefresh != nil {
		c.OnRefresh(f.Page, i)
	}
	return nil
}

// noteToken filters a server-vended coherence token before the client
// retains it. Raw (headerless large-object) pages carry object data where
// header-bearing pages carry their LSN, so the server's header-fallback
// token for them is arbitrary bytes that a later commit LSN could collide
// with — a false "not modified". Only the client knows which pages are
// raw, so it drops their tokens: a raw page always revalidates as a full
// read.
func (c *Client) noteToken(pid disk.PageID, token uint64) uint64 {
	if c.rawPages[pid] {
		return 0
	}
	return token
}

// fetchSnapPage serves a page fault inside a snapshot session. A resident
// frame left over from an earlier transaction may be NEWER than the
// snapshot, so anything not fetched under this snapshot is dropped and
// refetched as of it.
func (c *Client) fetchSnapPage(pid disk.PageID) (int, error) {
	if i, ok := c.pool.Get(pid); ok {
		if c.snapFetched[pid] {
			return i, nil
		}
		if err := c.pool.Evict(i); err != nil {
			return 0, err
		}
	}
	i, err := c.pool.Put(pid, func(buf []byte) error {
		c.clock.Charge(sim.CtrClientRead, 1)
		resp, err := c.call(&Request{Op: OpSnapRead, Page: uint32(pid), N: uint64(c.snap)})
		if err != nil {
			return err
		}
		copy(buf, resp.Data)
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.snapFetched[pid] = true
	return i, nil
}

// ConsumePrefetch settles the deferred cost of frame i if it holds a
// speculative pre-read page that is now being used for real. The background
// batch already paid the disk wait off the critical path, so consumption
// charges only the network + server CPU leg of the transfer
// (CtrServerBufferHit) — the overlapped-I/O accounting described in the
// prefetch design notes. Reports whether this access was a prefetch hit.
func (c *Client) ConsumePrefetch(i int) bool {
	if !c.pool.ConsumePrefetched(i) {
		return false
	}
	c.clock.Charge(sim.CtrPrefetchHit, 1)
	c.clock.Charge(sim.CtrServerBufferHit, 1)
	return true
}

// ReadPagesBatch fetches a batch of page images with one OpReadPages round
// trip and returns them in request order, along with their coherence
// tokens (nil when the session runs uncoherent). It never touches the
// client pool, so the prefetcher may call it from worker goroutines while
// the session's main thread is blocked in the pump; installation
// (InstallPrefetched) stays on the main thread.
func (c *Client) ReadPagesBatch(pids []disk.PageID) ([][]byte, []uint64, error) {
	if len(pids) == 0 {
		return nil, nil, nil
	}
	payload := make([]byte, 4*len(pids))
	for i, pid := range pids {
		binary.LittleEndian.PutUint32(payload[i*4:], uint32(pid))
	}
	req := &Request{Op: OpReadPages, Tx: c.tx, N: uint64(len(pids)), Data: payload}
	rec := 4 + disk.PageSize
	if c.coherent {
		req.Mode = ReadVersioned
		rec += 8
	}
	resp, err := c.call(req)
	if err != nil {
		return nil, nil, err
	}
	if len(resp.Data) != rec*len(pids) {
		return nil, nil, fmt.Errorf("esm: ReadPages returned %d bytes for %d pages", len(resp.Data), len(pids))
	}
	images := make([][]byte, len(pids))
	var tokens []uint64
	if c.coherent {
		tokens = make([]uint64, len(pids))
	}
	for i := range pids {
		p := i * rec
		got := disk.PageID(binary.LittleEndian.Uint32(resp.Data[p:]))
		if got != pids[i] {
			return nil, nil, fmt.Errorf("esm: ReadPages record %d is page %d, want %d", i, got, pids[i])
		}
		p += 4
		if c.coherent {
			tokens[i] = c.noteToken(pids[i], binary.LittleEndian.Uint64(resp.Data[p:]))
			p += 8
		}
		images[i] = resp.Data[p : p+disk.PageSize : p+disk.PageSize]
	}
	return images, tokens, nil
}

// InstallPrefetched lands a pre-read page image in the client pool as a
// speculative frame (see buffer.PutPrefetched for the non-displacement
// rules), stamped with its coherence token so the next Begin's validation
// treats it like any other warm frame. No time is charged here: the cost
// of a useful prefetch is settled at consumption, and a dropped one counts
// only as waste.
func (c *Client) InstallPrefetched(pid disk.PageID, data []byte, token uint64) bool {
	i, ok := c.pool.PutPrefetched(pid, data)
	if ok && c.coherent {
		c.pool.Frame(i).LSN = c.noteToken(pid, token)
	}
	return ok
}

// ServerStats fetches the server's statistics snapshot (OpStats).
func (c *Client) ServerStats() (*ServerStats, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	var st ServerStats
	if err := json.Unmarshal(resp.Data, &st); err != nil {
		return nil, fmt.Errorf("esm: bad stats payload: %w", err)
	}
	return &st, nil
}

// PageData returns the in-place bytes of frame i.
func (c *Client) PageData(i int) []byte { return c.pool.Frame(i).Data }

// Pin guards frame i against replacement.
func (c *Client) Pin(i int) { c.pool.Pin(i) }

// Unpin releases a pin taken with Pin.
func (c *Client) Unpin(i int) { c.pool.Unpin(i) }

// MarkDirty flags the resident page pid as modified.
func (c *Client) MarkDirty(pid disk.PageID) error {
	i, ok := c.pool.Lookup(pid)
	if !ok {
		return fmt.Errorf("esm: MarkDirty(%d): %w", pid, buffer.ErrNotCached)
	}
	c.pool.MarkDirty(i)
	return nil
}

// stealPage ships a dirty page to the server mid-transaction, after letting
// the owner emit the log records that cover it (WAL). Header-bearing pages
// are stamped with the last log sequence number so restart recovery can
// decide redo/undo correctly; raw large-object data pages carry no header
// and are never stamped.
func (c *Client) stealPage(pid disk.PageID, data []byte) error {
	if c.BeforeSteal != nil {
		if err := c.BeforeSteal(pid, data); err != nil {
			return err
		}
	}
	if err := c.FlushLog(); err != nil {
		return err
	}
	c.stampLSN(pid, data)
	c.clock.Charge(sim.CtrClientWrite, 1)
	_, err := c.call(&Request{Op: OpWritePage, Tx: c.tx, Page: uint32(pid), Data: data})
	return err
}

// MarkRawPages records a run of raw (headerless, large-object) data pages
// so LSN stamping skips them.
func (c *Client) MarkRawPages(first disk.PageID, n uint32) {
	for i := uint32(0); i < n; i++ {
		c.rawPages[first+disk.PageID(i)] = true
	}
}

// ShardStamper is implemented by sharding transports (internal/shard's
// Router): the scalar lastLSN a single-server session stamps into its
// pages is wrong under sharding, where each shard assigns LSNs
// independently — a shard-A LSN stamped onto a shard-B page would make
// shard B's recovery skip redo of committed updates (stamp too high) or
// its runtime abort skip undo (stamp too low). StampLSN returns the last
// log LSN the transaction was assigned on the shard that owns pid, or 0
// when it logged nothing there.
type ShardStamper interface {
	StampLSN(tx uint64, pid disk.PageID) uint64
}

func (c *Client) stampLSN(pid disk.PageID, data []byte) {
	lsn := c.lastLSN
	if c.stamper != nil {
		lsn = c.stamper.StampLSN(c.tx, pid)
	}
	if lsn == 0 || c.rawPages[pid] {
		return
	}
	binary.LittleEndian.PutUint64(data[:8], lsn)
}

// LogUpdate buffers a physical update record (before/after images for the
// byte range at off on page pid) for the current transaction.
func (c *Client) LogUpdate(pid disk.PageID, off int, old, new []byte) {
	c.appendLogRec(wal.RecUpdate, pid, off, old, new)
}

func (c *Client) appendLogRec(typ wal.RecType, pid disk.PageID, off int, old, new []byte) {
	var tmp [11]byte
	tmp[0] = byte(typ)
	binary.LittleEndian.PutUint32(tmp[1:], uint32(pid))
	binary.LittleEndian.PutUint16(tmp[5:], uint16(off))
	binary.LittleEndian.PutUint16(tmp[7:], uint16(len(old)))
	binary.LittleEndian.PutUint16(tmp[9:], uint16(len(new)))
	c.pending = append(c.pending, tmp[:]...)
	c.pending = append(c.pending, old...)
	c.pending = append(c.pending, new...)
	c.nrecs++
	c.clock.Charge(sim.CtrLogRecord, 1)
	c.clock.Charge(sim.CtrLogByte, int64(len(old)+len(new)))
}

// PendingLogRecords reports the number of buffered, unshipped log records.
func (c *Client) PendingLogRecords() int { return int(c.nrecs) }

// structBefore copies the frame's current bytes when structural logging is
// on, so the mutation about to happen can be diffed against them.
func (c *Client) structBefore(idx int) []byte {
	if !c.LogStructure {
		return nil
	}
	return append([]byte(nil), c.PageData(idx)...)
}

// logStructDiff emits update records for every byte run where the frame now
// differs from before. Nearby runs are merged so one slot-directory edit
// (header counters at the front, a slot entry at the back) costs two small
// records, not a spray of one-byte ones.
func (c *Client) logStructDiff(pid disk.PageID, before []byte, idx int) {
	if !c.LogStructure || before == nil {
		return
	}
	cur := c.PageData(idx)
	const mergeGap = 16
	for i := 0; i < len(cur); {
		for i < len(cur) && cur[i] == before[i] {
			i++
		}
		if i == len(cur) {
			return
		}
		// Extend the run until mergeGap equal bytes in a row end it.
		end, equal := i+1, 0
		for j := i + 1; j < len(cur) && equal < mergeGap; j++ {
			if cur[j] != before[j] {
				end, equal = j+1, 0
			} else {
				equal++
			}
		}
		c.LogUpdate(pid, i, before[i:end], cur[i:end])
		i = end
	}
}

// FlushLog ships buffered log records to the server and records the last
// assigned log sequence number (used to stamp shipped pages).
func (c *Client) FlushLog() error {
	if c.nrecs == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(c.pending[:4], c.nrecs)
	resp, err := c.call(&Request{Op: OpLog, Tx: c.tx, Data: c.pending})
	c.pending = make([]byte, 4)
	c.nrecs = 0
	if err != nil {
		return err
	}
	c.lastLSN = resp.N
	return nil
}

// Commit ships the remaining log records and all dirty resident pages to
// the server, which forces the log; the client cache stays warm (pages
// remain resident and clean), matching the paper's hot re-runs.
func (c *Client) Commit() error {
	if c.tx == 0 {
		return ErrNoTx
	}
	if err := c.FlushLog(); err != nil {
		return err
	}
	var payload []byte
	var shipped []int
	for i := 0; i < c.pool.Len(); i++ {
		f := c.pool.Frame(i)
		if f.Page == disk.InvalidPage || !f.Dirty {
			continue
		}
		c.stampLSN(f.Page, f.Data)
		var pidb [4]byte
		binary.LittleEndian.PutUint32(pidb[:], uint32(f.Page))
		payload = append(payload, pidb[:]...)
		payload = append(payload, f.Data...)
		f.Dirty = false
		shipped = append(shipped, i)
		c.clock.Charge(sim.CtrClientWrite, 1)
		c.clock.Charge(sim.CtrCommitFlushPage, 1)
	}
	resp, err := c.call(&Request{Op: OpCommit, Tx: c.tx, Data: payload})
	c.tx = 0
	if err != nil {
		return err
	}
	if resp.N > c.lastSeen {
		c.lastSeen = resp.N // read-your-writes floor for snapshot begins
	}
	if c.coherent {
		// Invalidation hints piggybacked on the commit ack: pages this
		// session caches that other transactions committed over. Advisory
		// only — Begin validation is the correctness backstop — but acting
		// on them here turns the next Begin's repair into a cheap delta.
		if resp.Mode&RespHintsAll != 0 {
			for i := 0; i < c.pool.Len(); i++ {
				if f := c.pool.Frame(i); f.Page != disk.InvalidPage {
					f.Stale = true
				}
			}
		} else if resp.Mode&RespHints != 0 {
			for off := 0; off+4 <= len(resp.Data); off += 4 {
				pid := disk.PageID(binary.LittleEndian.Uint32(resp.Data[off:]))
				if i, ok := c.pool.Lookup(pid); ok {
					c.pool.Frame(i).Stale = true
				}
			}
		}
		// The shipped frames hold exactly the bytes the server just
		// committed: stamp them with the commit token so the next Begin
		// answers "not modified" for them. Under sharding the single
		// response LSN is not the per-shard commit LSN, so the frames stay
		// unversioned and revalidate as full reads.
		tok := resp.N
		if c.stamper != nil {
			tok = 0
		}
		for _, i := range shipped {
			f := c.pool.Frame(i)
			f.LSN = c.noteToken(f.Page, tok)
			f.Stale = false
		}
	}
	return nil
}

// AbortPinLeaks reports how many frames Abort found still pinned — each
// one an object-layer bug that would otherwise have been silently erased.
func (c *Client) AbortPinLeaks() int64 { return c.pinLeaks }

// Abort discards the transaction: buffered log records and dirty resident
// pages are dropped (their disk versions are intact), and the server undoes
// any pages that were stolen mid-transaction.
func (c *Client) Abort() error {
	if c.tx == 0 {
		return ErrNoTx
	}
	c.pending = make([]byte, 4)
	c.nrecs = 0
	for i := 0; i < c.pool.Len(); i++ {
		f := c.pool.Frame(i)
		if f.Page != disk.InvalidPage && f.Dirty {
			// Drop the stale image without shipping it; a reread fetches
			// the committed version from the server.
			if f.Pin != 0 {
				// A pin held across Abort is an object-layer leak. Count
				// it — silently zeroing the pin used to erase the evidence
				// — then clear it anyway so the frame can be reclaimed and
				// the session stays usable.
				c.pinLeaks++
				f.Pin = 0
			}
			f.Dirty = false
			if err := c.pool.Evict(i); err != nil {
				return err
			}
		}
	}
	_, err := c.call(&Request{Op: OpAbort, Tx: c.tx})
	c.tx = 0
	return err
}

// Lock acquires a lock from the server's lock manager. For page locks the
// cached frame's coherence token rides along, and the grant response says
// whether that cached copy is still current as of the moment the lock was
// granted — closing the window where a page validated at Begin goes stale
// while this transaction waits for its lock. A stale grant marks the
// frame for revalidation on its next fetch.
func (c *Client) Lock(kind lock.Kind, id uint32, mode lock.Mode) error {
	if c.tx == 0 {
		return ErrNoTx
	}
	req := &Request{Op: OpLock, Tx: c.tx, Page: id, Mode: uint8(kind)<<4 | uint8(mode)}
	if c.coherent && kind == lock.KindPage {
		if i, ok := c.pool.Lookup(disk.PageID(id)); ok {
			if f := c.pool.Frame(i); !f.Dirty && !f.Stale {
				req.N = f.LSN
			}
		}
	}
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	if resp.Mode&RespStale != 0 {
		if i, ok := c.pool.Lookup(disk.PageID(id)); ok {
			c.pool.Frame(i).Stale = true
		}
	}
	return nil
}

// AllocPages reserves n contiguous pages on the volume.
func (c *Client) AllocPages(n int) (disk.PageID, error) {
	resp, err := c.call(&Request{Op: OpAllocPages, Tx: c.tx, N: uint64(n)})
	if err != nil {
		return disk.InvalidPage, err
	}
	return disk.PageID(resp.Page), nil
}

// FreePages returns a page run to the volume.
func (c *Client) FreePages(pid disk.PageID, n int) error {
	_, err := c.call(&Request{Op: OpFreePages, Tx: c.tx, Page: uint32(pid), N: uint64(n)})
	return err
}

// CreateFile registers a new file and returns its id.
func (c *Client) CreateFile(name string) (uint32, error) {
	resp, err := c.call(&Request{Op: OpCreateFile, Name: name})
	if err != nil {
		return 0, err
	}
	return uint32(resp.N), nil
}

// OpenFile resolves a file name to its id.
func (c *Client) OpenFile(name string) (uint32, error) {
	resp, err := c.call(&Request{Op: OpOpenFile, Name: name})
	if err != nil {
		return 0, err
	}
	return uint32(resp.N), nil
}

// GetRoot fetches a persistent named root: an OID plus an auxiliary word.
func (c *Client) GetRoot(name string) (OID, uint64, error) {
	resp, err := c.call(&Request{Op: OpGetRoot, Name: name})
	if err != nil {
		return NilOID, 0, err
	}
	return UnmarshalOID(resp.Data), resp.N, nil
}

// SetRoot stores a persistent named root.
func (c *Client) SetRoot(name string, oid OID, aux uint64) error {
	var buf [OIDSize]byte
	oid.Marshal(buf[:])
	_, err := c.call(&Request{Op: OpSetRoot, Name: name, N: aux, Data: buf[:]})
	return err
}

// Counter atomically adds delta to the named persistent counter and returns
// its previous value (fetch-and-add).
func (c *Client) Counter(name string, delta uint64) (uint64, error) {
	resp, err := c.call(&Request{Op: OpCounter, Name: name, N: delta})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Checkpoint asks the server to flush everything to stable storage.
func (c *Client) Checkpoint() error {
	_, err := c.call(&Request{Op: OpCheckpoint})
	return err
}

// nextUnique returns an OID uniquifier, fetched from the server in batches.
func (c *Client) nextUnique() (uint16, error) {
	if c.uniqueNext == c.uniqueEnd {
		const batch = 1024
		start, err := c.Counter("esm.oid.unique", batch)
		if err != nil {
			return 0, err
		}
		c.uniqueNext, c.uniqueEnd = start, start+batch
	}
	u := uint16(c.uniqueNext)
	c.uniqueNext++
	return u, nil
}

// DropCaches empties the client pool (dirty pages must have been committed),
// making the next access cold at the client.
func (c *Client) DropCaches() {
	c.pool.DropAll()
}

// Close ends the session.
func (c *Client) Close() error { return c.tr.Close() }
