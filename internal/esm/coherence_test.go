package esm

import (
	"fmt"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/lock"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// seedCohObject commits one small object holding val and returns its OID.
func seedCohObject(t *testing.T, srv *Server, val string) OID {
	t.Helper()
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := c.CreateFile("coh")
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewCluster(fid)
	oid, data, err := c.CreateObject(cl, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, val)
	if err := c.SetRoot("coh", oid, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return oid
}

// updateCohObject overwrites the object's first bytes with val in one
// committed transaction. old and val must have equal length.
func updateCohObject(t *testing.T, c *Client, oid OID, old, val string) {
	t.Helper()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	obj, off, idx, err := c.ReadObjectAt(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(obj[:len(old)]); got != old {
		t.Fatalf("writer read %q, want %q", got, old)
	}
	copy(obj, val)
	c.Pool().MarkDirty(idx)
	c.LogUpdate(oid.Page, off, []byte(old), []byte(val))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// readCohObject reads the object's first n bytes in one committed
// transaction.
func readCohObject(t *testing.T, c *Client, oid OID, n int) string {
	t.Helper()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	obj, _, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	got := string(obj[:n])
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return got
}

func cohStats(t *testing.T, c *Client) *ServerStats {
	t.Helper()
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTwoClientStaleReadRegression is the warm-cache sharing regression
// test: client A keeps a page cached across transactions while client B
// commits over it. Without coherence, A's next transaction would reuse
// the cached frame and read B's overwritten value — the exact stale read
// the Begin-validation protocol exists to prevent.
func TestTwoClientStaleReadRegression(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "value-00")

	a := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	b := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})

	if got := readCohObject(t, a, oid, 8); got != "value-00" {
		t.Fatalf("A's first read: %q", got)
	}
	prev := "value-00"
	for round := 1; round <= 4; round++ {
		val := fmt.Sprintf("value-%02d", round)
		updateCohObject(t, b, oid, prev, val)
		// A's page is still resident from the previous transaction; Begin
		// validation must observe B's commit before A reads through it.
		if got := readCohObject(t, a, oid, 8); got != val {
			t.Fatalf("round %d: A read %q, want %q (stale cached page)", round, got, val)
		}
		prev = val
	}

	st := cohStats(t, a)
	if st.CohValidates == 0 {
		t.Error("no OpValidatePages reached the server")
	}
	if st.CohDeltas+st.CohFulls == 0 {
		t.Error("no validation ever repaired a stale frame")
	}
}

// TestBeginValidationNotModified: with no writer in between, Begin
// validation must keep the resident frames — same token, no repair bytes,
// and no simulated read charge (warm hits were free before coherence and
// must stay free).
func TestBeginValidationNotModified(t *testing.T) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "steady")

	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8, Clock: clock})
	if got := readCohObject(t, c, oid, 6); got != "steady" {
		t.Fatalf("first read: %q", got)
	}
	i, ok := c.Pool().Lookup(oid.Page)
	if !ok {
		t.Fatal("page not resident after commit")
	}
	token := c.Pool().Frame(i).LSN
	if token == 0 {
		t.Fatal("cached header page has no coherence token")
	}

	st0 := cohStats(t, c)
	reads0 := clock.Count(sim.CtrClientRead)
	for round := 0; round < 3; round++ {
		if got := readCohObject(t, c, oid, 6); got != "steady" {
			t.Fatalf("round %d: %q", round, got)
		}
	}
	st1 := cohStats(t, c)
	if st1.CohValidates <= st0.CohValidates {
		t.Error("Begin did not validate the resident set")
	}
	if st1.CohDeltas != st0.CohDeltas || st1.CohFulls != st0.CohFulls {
		t.Errorf("unmodified frames were repaired: deltas %d->%d fulls %d->%d",
			st0.CohDeltas, st1.CohDeltas, st0.CohFulls, st1.CohFulls)
	}
	if n := clock.Count(sim.CtrClientRead); n != reads0 {
		t.Errorf("warm revalidation charged %d client reads", n-reads0)
	}
	i2, ok := c.Pool().Lookup(oid.Page)
	if !ok {
		t.Fatal("frame evicted by clean validation")
	}
	if got := c.Pool().Frame(i2).LSN; got != token {
		t.Errorf("token moved %d -> %d without a write", token, got)
	}
}

// TestDeltaRepairShipsPatch: a small committed change to a cached page is
// repaired with a pagedelta patch, not a full page.
func TestDeltaRepairShipsPatch(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "delta-v1")

	a := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	b := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if got := readCohObject(t, a, oid, 8); got != "delta-v1" {
		t.Fatalf("A's first read: %q", got)
	}
	st0 := cohStats(t, a)
	updateCohObject(t, b, oid, "delta-v1", "delta-v2")
	if got := readCohObject(t, a, oid, 8); got != "delta-v2" {
		t.Fatalf("A after repair: %q", got)
	}
	st1 := cohStats(t, a)
	if st1.CohDeltas != st0.CohDeltas+1 {
		t.Fatalf("deltas %d -> %d, want exactly one patch repair", st0.CohDeltas, st1.CohDeltas)
	}
	if grew := st1.CohDeltaBytes - st0.CohDeltaBytes; grew <= 0 || grew >= disk.PageSize {
		t.Errorf("delta bytes grew by %d, want a small patch", grew)
	}
}

// TestLockResponseStaleFlag covers the mid-transaction hole Begin
// validation cannot see: A validates a page, B commits over it while A's
// transaction is open, then A locks the page. The grant must flag A's
// cached copy stale, and A's next fetch must revalidate to B's bytes.
func TestLockResponseStaleFlag(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "lock-v1")

	a := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	b := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})

	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadObject(oid); err != nil {
		t.Fatal(err)
	}
	// B slips a commit in while A's transaction is open (A holds no lock
	// on the page yet).
	updateCohObject(t, b, oid, "lock-v1", "lock-v2")

	if err := a.Lock(lock.KindPage, uint32(oid.Page), lock.Shared); err != nil {
		t.Fatal(err)
	}
	i, ok := a.Pool().Lookup(oid.Page)
	if !ok {
		t.Fatal("page not resident")
	}
	if !a.Pool().Frame(i).Stale {
		t.Fatal("stale grant did not flag the cached frame")
	}
	obj, _, err := a.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(obj[:7]); got != "lock-v2" {
		t.Fatalf("A read %q through a stale grant, want lock-v2", got)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitHintsMarkFramesStale: B's commit over a page A's session is
// known to cache queues an invalidation hint, and A's own commit response
// piggybacks it — the frame is marked stale without any extra round trip.
func TestCommitHintsMarkFramesStale(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "hint-v1")

	a := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	b := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})

	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadObject(oid); err != nil {
		t.Fatal(err)
	}
	updateCohObject(t, b, oid, "hint-v1", "hint-v2")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	i, ok := a.Pool().Lookup(oid.Page)
	if !ok {
		t.Fatal("page not resident after A's commit")
	}
	if !a.Pool().Frame(i).Stale {
		t.Error("commit response carried no invalidation hint for the page")
	}
	// The flagged frame revalidates on the next transaction.
	if got := readCohObject(t, a, oid, 7); got != "hint-v2" {
		t.Fatalf("A read %q after hint, want hint-v2", got)
	}
}

// TestAbortPinLeakCounter: a pin held across Abort used to be zeroed
// silently, erasing the evidence of an object-layer leak. It must now be
// counted — and the frame still reclaimed so the session stays usable.
func TestAbortPinLeakCounter(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "pinned-1")

	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	obj, idx, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	copy(obj, "pinned-2")
	c.Pool().MarkDirty(idx)
	c.Pin(idx) // leaked: never unpinned before Abort
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := c.AbortPinLeaks(); n != 1 {
		t.Fatalf("AbortPinLeaks = %d, want 1", n)
	}
	if _, ok := c.Pool().Lookup(oid.Page); ok {
		t.Error("dirty frame survived Abort despite the leaked pin")
	}
	// The session is still usable and sees the committed value.
	if got := readCohObject(t, c, oid, 8); got != "pinned-1" {
		t.Fatalf("post-abort read: %q", got)
	}
	if n := c.AbortPinLeaks(); n != 1 {
		t.Errorf("clean commit changed the leak count to %d", n)
	}
}

// TestRawPagesStayUnversioned: raw large-object data pages carry object
// bytes where header pages carry an LSN, so the client must never retain
// tokens for them — and Begin validation must skip them instead of
// full-repairing them every transaction.
func TestRawPagesStayUnversioned(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := c.CreateFile("raw")
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewCluster(fid)
	large, info, err := c.CreateLarge(cl, 3*disk.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3*disk.PageSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := c.LargeWriteAt(large, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRoot("raw", large, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	readBack := func() {
		t.Helper()
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if err := c.LargeReadAt(large, got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != payload[i] {
				t.Fatalf("large object byte %d: %d != %d", i, got[i], payload[i])
			}
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	readBack()
	for p := uint32(0); p < info.Pages; p++ {
		pid := info.First + disk.PageID(p)
		if i, ok := c.Pool().Lookup(pid); ok {
			if lsn := c.Pool().Frame(i).LSN; lsn != 0 {
				t.Errorf("raw page %d retained token %d", pid, lsn)
			}
		}
	}
	// Repeated transactions over the resident raw pages must not trigger
	// a repair storm: unversioned frames are skipped at Begin.
	st0 := cohStats(t, c)
	readBack()
	readBack()
	st1 := cohStats(t, c)
	if st1.CohFulls != st0.CohFulls || st1.CohDeltas != st0.CohDeltas {
		t.Errorf("raw pages were repaired every Begin: fulls %d->%d deltas %d->%d",
			st0.CohFulls, st1.CohFulls, st0.CohDeltas, st1.CohDeltas)
	}
}

// TestNoCoherenceOptOut: a session with NoCoherence set must behave like
// the legacy protocol — no tokens retained, no validation traffic.
func TestNoCoherenceOptOut(t *testing.T) {
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "legacy-1")
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8, NoCoherence: true})
	if got := readCohObject(t, c, oid, 8); got != "legacy-1" {
		t.Fatalf("read: %q", got)
	}
	if i, ok := c.Pool().Lookup(oid.Page); ok {
		if lsn := c.Pool().Frame(i).LSN; lsn != 0 {
			t.Errorf("uncoherent session retained token %d", lsn)
		}
	}
	st := cohStats(t, c)
	if st.CohValidates != 0 {
		t.Errorf("uncoherent session sent %d validations", st.CohValidates)
	}
}

// TestVersionTableSurvivesRestart: tokens handed out before a crash must
// never validate as current after restart if the page changed — and the
// restarted server must still serve correct bytes for tokens it cannot
// prove current.
func TestVersionTableSurvivesRestart(t *testing.T) {
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := NewServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	oid := seedCohObject(t, srv, "restart1")
	a := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if got := readCohObject(t, a, oid, 8); got != "restart1" {
		t.Fatalf("read: %q", got)
	}
	i, ok := a.Pool().Lookup(oid.Page)
	if !ok {
		t.Fatal("page not resident")
	}
	oldToken := a.Pool().Frame(i).LSN
	if oldToken == 0 {
		t.Fatal("no token before restart")
	}
	// Writer commits over the page; a checkpoint truncates the log so the
	// restart's version table cannot lean on the log tail; then the server
	// "restarts" (recovery rebuilds the table from the page headers).
	b := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	updateCohObject(t, b, oid, "restart1", "restart2")
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Present A's pre-restart token to the restarted server. The page
	// changed after the token was handed out, so "not modified" here would
	// be a silent stale read — the staleness invariant's worst violation.
	resp := srv2.Handle(&Request{Op: OpReadPage, Page: uint32(oid.Page), N: oldToken, Mode: ReadVersioned})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Mode == PageCurrent {
		t.Fatal("restarted server validated a pre-restart token for a changed page")
	}
	if resp.Mode == PageFull && len(resp.Data) != disk.PageSize {
		t.Fatalf("full versioned read returned %d bytes", len(resp.Data))
	}
	// A fresh session sees the committed value.
	a2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	if got := readCohObject(t, a2, oid, 8); got != "restart2" {
		t.Fatalf("restarted server served %q, want restart2", got)
	}
}
