package esm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTransportBroken marks a TCP transport whose connection is poisoned: a
// read or write failed (or timed out, or the peer spoke garbage) mid-call,
// so the byte stream can no longer be trusted to be aligned on frame
// boundaries. Every outstanding and future call on the transport fails with
// an error satisfying errors.Is(err, ErrTransportBroken). The condition is
// permanent for the connection — callers reconnect rather than retry: it is
// deliberately NOT a transient fault under the PR 2 retry policy
// (faultinject.IsTransient), which would re-send into a desynchronized
// stream.
var ErrTransportBroken = errors.New("esm: transport broken")

// DefaultCallTimeout bounds one call's network I/O on the TCP transports
// when the dialer does not choose its own limit.
const DefaultCallTimeout = 30 * time.Second

// maxCoalesce caps how many queued frames one writer flush gathers. It
// bounds flush latency under a firehose of small requests; 8K page frames
// hit the buffer-size flush condition long before the count.
const maxCoalesce = 64

// MuxStats is a point-in-time snapshot of one multiplexed connection's
// transport counters.
type MuxStats struct {
	Calls      int64 // completed calls
	InFlightHW int64 // high-water mark of concurrently outstanding calls
	Flushes    int64 // physical socket writes
	Frames     int64 // request frames written (Frames/Flushes = coalescing ratio)
	BytesOut   int64 // request bytes written, including frame headers
}

// muxResult is what a waiting call receives from the demux loop.
type muxResult struct {
	resp *Response
	err  error
}

// muxCall is one outstanding request. The channel has capacity 1 and
// receives exactly one result per registration, so completed calls can be
// pooled and reused.
type muxCall struct {
	done chan muxResult
}

var muxCallPool = sync.Pool{New: func() interface{} {
	return &muxCall{done: make(chan muxResult, 1)}
}}

// muxReq travels from Call to the writer goroutine.
type muxReq struct {
	seq uint64
	req *Request
}

// MuxTransport is a multiplexed, pipelined connection to a page server: any
// number of goroutines call concurrently, requests are coalesced into
// batched socket writes by a dedicated writer goroutine (group commit for
// the network), and a reader goroutine demultiplexes responses to the
// waiting calls by sequence number. One socket therefore keeps many
// requests in flight at once — a prefetch pump's batch reads overlap with
// foreground page faults, and whole sessions can share the connection —
// where the lock-step transport would serialize full round trips.
//
// Failure semantics: any socket error, malformed inbound frame, or response
// bearing an unknown/duplicate sequence number poisons the connection (see
// ErrTransportBroken). Outstanding calls fail immediately; the transport
// never tries to resynchronize a damaged stream.
type MuxTransport struct {
	conn    net.Conn
	timeout time.Duration

	reqCh chan muxReq
	quit  chan struct{} // closed exactly once, on poison/close

	mu     sync.Mutex // guards calls, err, quitClosed
	calls  map[uint64]*muxCall
	err    error // poison cause; non-nil => broken
	closed bool

	seq        atomic.Uint64
	callsDone  atomic.Int64
	inFlight   atomic.Int64
	inFlightHW atomic.Int64
	flushes    atomic.Int64
	frames     atomic.Int64
	bytesOut   atomic.Int64

	wg sync.WaitGroup // writer + reader goroutines
}

// DialTCP connects a multiplexed transport to a Serve-hosted ESM server,
// with the default call timeout.
func DialTCP(addr string) (*MuxTransport, error) {
	return DialTCPTimeout(addr, DefaultCallTimeout)
}

// DialTCPTimeout is DialTCP with an explicit per-call I/O deadline;
// timeout <= 0 disables deadlines entirely.
func DialTCPTimeout(addr string, timeout time.Duration) (*MuxTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewMuxTransport(conn, timeout), nil
}

// NewMuxTransport runs the multiplexed protocol over an existing
// connection (tests use net.Pipe). timeout <= 0 disables deadlines.
func NewMuxTransport(conn net.Conn, timeout time.Duration) *MuxTransport {
	t := &MuxTransport{
		conn:    conn,
		timeout: timeout,
		reqCh:   make(chan muxReq, maxCoalesce),
		quit:    make(chan struct{}),
		calls:   map[uint64]*muxCall{},
	}
	t.wg.Add(2)
	go t.writer()
	go t.reader()
	return t
}

// Stats snapshots the connection's transport counters.
func (t *MuxTransport) Stats() MuxStats {
	return MuxStats{
		Calls:      t.callsDone.Load(),
		InFlightHW: t.inFlightHW.Load(),
		Flushes:    t.flushes.Load(),
		Frames:     t.frames.Load(),
		BytesOut:   t.bytesOut.Load(),
	}
}

// brokenErr wraps the poison cause so errors.Is sees ErrTransportBroken.
func brokenErr(cause error) error {
	if cause == nil {
		return ErrTransportBroken
	}
	return fmt.Errorf("%w: %v", ErrTransportBroken, cause)
}

// poison marks the connection dead, fails every outstanding call, and wakes
// the writer and reader (closing the socket unblocks both). Safe to call
// from any goroutine; only the first cause sticks.
func (t *MuxTransport) poison(cause error) {
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = cause
	close(t.quit)
	pending := t.calls
	t.calls = map[uint64]*muxCall{}
	t.mu.Unlock()
	t.conn.Close()
	for _, c := range pending {
		c.done <- muxResult{err: brokenErr(cause)}
	}
}

// Call implements Transport. It is safe for concurrent use; each call
// blocks only its own goroutine while the connection pipelines others.
func (t *MuxTransport) Call(req *Request) (*Response, error) {
	seq := t.seq.Add(1)
	c := muxCallPool.Get().(*muxCall)

	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.mu.Unlock()
		muxCallPool.Put(c)
		return nil, brokenErr(err)
	}
	t.calls[seq] = c
	if t.timeout > 0 && len(t.calls) == 1 {
		// First outstanding call: arm the read deadline. The reader
		// re-arms it after every frame and disarms when the connection
		// goes idle, all under mu, so the deadline is live exactly while
		// a response is owed.
		t.conn.SetReadDeadline(time.Now().Add(t.timeout))
	}
	t.mu.Unlock()

	if n := t.inFlight.Add(1); n > t.inFlightHW.Load() {
		// Racy max is fine: the high-water mark is advisory telemetry.
		t.inFlightHW.Store(n)
	}
	defer t.inFlight.Add(-1)

	select {
	case t.reqCh <- muxReq{seq: seq, req: req}:
	case <-t.quit:
		// Lost the race with poison. The call was registered before the
		// quit channel closed, so poison's map snapshot holds it and a
		// broken-transport result is guaranteed to arrive on c.done;
		// fall through and wait for it like any other result.
	}

	res := <-c.done
	muxCallPool.Put(c)
	t.callsDone.Add(1)
	if res.err != nil {
		return nil, res.err
	}
	return res.resp, nil
}

// writer drains queued requests and coalesces them into single socket
// writes: one flush carries every request that queued while the previous
// flush was on the wire, mirroring the WAL's group-commit leader/follower
// batching. The flush buffer is reused across flushes, so the encode path
// does not allocate in steady state.
func (t *MuxTransport) writer() {
	defer t.wg.Done()
	buf := make([]byte, 0, 64<<10)
	for {
		var first muxReq
		select {
		case first = <-t.reqCh:
		case <-t.quit:
			return
		}
		buf = appendRequestFrame(buf[:0], first.seq, first.req)
		frames := int64(1)
	coalesce:
		for frames < maxCoalesce && len(buf) < 1<<20 {
			select {
			case m := <-t.reqCh:
				buf = appendRequestFrame(buf, m.seq, m.req)
				frames++
			default:
				break coalesce
			}
		}
		if t.timeout > 0 {
			t.conn.SetWriteDeadline(time.Now().Add(t.timeout))
		}
		if _, err := t.conn.Write(buf); err != nil {
			t.poison(fmt.Errorf("write: %v", err))
			return
		}
		t.flushes.Add(1)
		t.frames.Add(frames)
		t.bytesOut.Add(int64(len(buf)))
	}
}

// reader demultiplexes response frames to their waiting calls by sequence
// number. A frame for an unknown sequence number — never issued, already
// answered (duplicate), or from a peer that lost framing — poisons the
// connection: the demux table is the only protection against delivering
// bytes to the wrong call.
func (t *MuxTransport) reader() {
	defer t.wg.Done()
	rd := bufio.NewReaderSize(t.conn, 64<<10)
	scratch := getBuf()
	defer putBuf(scratch)
	for {
		seq, body, err := readMuxFrame(rd, scratch)
		if err != nil {
			t.poison(fmt.Errorf("read: %v", err))
			return
		}
		resp := new(Response)
		if err := resp.unmarshal(body, true); err != nil {
			t.poison(fmt.Errorf("response for seq %d: %v", seq, err))
			return
		}
		t.mu.Lock()
		c, ok := t.calls[seq]
		if ok {
			delete(t.calls, seq)
		}
		if t.timeout > 0 && t.err == nil {
			if len(t.calls) > 0 {
				t.conn.SetReadDeadline(time.Now().Add(t.timeout))
			} else {
				t.conn.SetReadDeadline(time.Time{})
			}
		}
		t.mu.Unlock()
		if !ok {
			t.poison(fmt.Errorf("response for unknown or duplicate seq %d", seq))
			return
		}
		c.done <- muxResult{resp: resp}
	}
}

// Close implements Transport. Outstanding calls fail with
// ErrTransportBroken.
func (t *MuxTransport) Close() error {
	t.mu.Lock()
	alreadyClosed := t.closed
	t.closed = true
	t.mu.Unlock()
	if !alreadyClosed {
		t.poison(errors.New("transport closed"))
	}
	t.wg.Wait()
	return nil
}

// TCPTransport is the serial lock-step transport: every call holds one
// mutex across a full write→flush→read round trip, so concurrent callers
// queue behind each other's network and server latency.
//
// It survives only as the A/B baseline for the transport benchmark
// (harness.RunConcurrencyBench's TCP mode, BENCH_net.json) — it speaks the
// same seq-framed wire protocol as MuxTransport, against the same server,
// isolating exactly what pipelining buys. New code should use DialTCP.
type TCPTransport struct {
	mu      sync.Mutex
	conn    net.Conn
	rd      *bufio.Reader
	buf     []byte // reused marshal+frame buffer
	scratch *[]byte
	seq     uint64
	err     error // poison cause; non-nil => broken
	timeout time.Duration
}

// DialTCPLockstep connects a lock-step transport (benchmark baseline, see
// TCPTransport) with the default call timeout.
func DialTCPLockstep(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewLockstepTransport(conn, DefaultCallTimeout), nil
}

// NewLockstepTransport runs the lock-step protocol over an existing
// connection. timeout <= 0 disables deadlines.
func NewLockstepTransport(conn net.Conn, timeout time.Duration) *TCPTransport {
	return &TCPTransport{
		conn:    conn,
		rd:      bufio.NewReaderSize(conn, 64<<10),
		scratch: getBuf(),
		timeout: timeout,
	}
}

// Call implements Transport. A mid-call I/O failure poisons the
// connection: the stream may hold half a frame, so resuming would hand the
// next call some earlier call's bytes. Poisoned transports fail every
// subsequent call with ErrTransportBroken.
func (t *TCPTransport) Call(req *Request) (*Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return nil, brokenErr(t.err)
	}
	t.seq++
	t.buf = appendRequestFrame(t.buf[:0], t.seq, req)
	if t.timeout > 0 {
		t.conn.SetDeadline(time.Now().Add(t.timeout))
	}
	if _, err := t.conn.Write(t.buf); err != nil {
		return nil, t.poisonLocked(fmt.Errorf("write: %v", err))
	}
	seq, body, err := readMuxFrame(t.rd, t.scratch)
	if err != nil {
		return nil, t.poisonLocked(fmt.Errorf("read: %v", err))
	}
	if seq != t.seq {
		return nil, t.poisonLocked(fmt.Errorf("response seq %d, want %d", seq, t.seq))
	}
	resp := new(Response)
	if err := resp.unmarshal(body, true); err != nil {
		return nil, t.poisonLocked(err)
	}
	return resp, nil
}

// poisonLocked records the cause, closes the socket, and returns the
// broken-transport error for the failing call itself. Callers hold t.mu.
func (t *TCPTransport) poisonLocked(cause error) error {
	t.err = cause
	t.conn.Close()
	return brokenErr(cause)
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = errors.New("transport closed")
	}
	if t.scratch != nil {
		putBuf(t.scratch)
		t.scratch = nil
	}
	return t.conn.Close()
}
