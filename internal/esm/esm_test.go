package esm

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/lock"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// newPair builds an in-process server + client over a fresh memory volume.
func newPair(t *testing.T) (*Server, *Client, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16, Clock: clock})
	return srv, c, clock
}

func TestTxLifecycle(t *testing.T) {
	_, c, _ := newPair(t)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if c.Tx() == 0 {
		t.Fatal("no tx id")
	}
	if err := c.Begin(); err == nil {
		t.Fatal("nested Begin succeeded")
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.Tx() != 0 {
		t.Fatal("tx id survived commit")
	}
	if err := c.Commit(); err != ErrNoTx {
		t.Fatalf("commit without tx: %v", err)
	}
	if _, err := c.FetchPage(1); err != ErrNoTx {
		t.Fatalf("fetch without tx: %v", err)
	}
}

func TestObjectCreateReadAcrossSessions(t *testing.T) {
	srv, c, _ := newPair(t)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := c.CreateFile("data")
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewCluster(fid)
	oid, data, err := c.CreateObject(cl, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "hello, exodus")
	if err := c.SetRoot("obj", oid, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second client session sees the committed object.
	c2 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	oid2, aux, err := c2.GetRoot("obj")
	if err != nil {
		t.Fatal(err)
	}
	if oid2 != oid || aux != 7 {
		t.Fatalf("root mismatch: %v aux=%d", oid2, aux)
	}
	got, _, err := c2.ReadObject(oid2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello, exodus")) {
		t.Fatalf("object content: %q", got[:16])
	}
}

func TestClusteringKeepsObjectsTogether(t *testing.T) {
	_, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	var pages []disk.PageID
	for i := 0; i < 10; i++ {
		oid, _, err := c.CreateObject(cl, 100)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, oid.Page)
	}
	for _, p := range pages[1:] {
		if p != pages[0] {
			t.Fatalf("small objects scattered: %v", pages)
		}
	}
	// Breaking the cluster forces a fresh page.
	cl.BreakCluster()
	oid, _, err := c.CreateObject(cl, 100)
	if err != nil {
		t.Fatal(err)
	}
	if oid.Page == pages[0] {
		t.Fatal("BreakCluster did not move to a new page")
	}
	c.Commit()
}

func TestClusterOverflowsToNewPage(t *testing.T) {
	_, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	first, _, err := c.CreateObject(cl, 5000)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := c.CreateObject(cl, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if first.Page == second.Page {
		t.Fatal("two 5000-byte objects on one 8K page")
	}
	c.Commit()
}

func TestAbortDiscardsChanges(t *testing.T) {
	srv, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, data, _ := c.CreateObject(cl, 16)
	copy(data, "committed")
	c.SetRoot("r", oid, 0)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	c.Begin()
	got, _, _ := c.ReadObject(oid)
	copy(got, "scribbled")
	c.MarkDirty(oid.Page)
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}

	c2 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
	c2.Begin()
	fresh, _, err := c2.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(fresh, []byte("committed")) {
		t.Fatalf("aborted write leaked: %q", fresh[:9])
	}
}

func TestLargeObjectRoundTrip(t *testing.T) {
	_, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	const size = 3*disk.PageSize + 777
	oid, info, err := c.CreateLarge(cl, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !oid.IsLarge() {
		t.Fatal("OID not marked large")
	}
	if info.Pages != 4 || info.MetaPages != 1 {
		t.Fatalf("info = %+v", info)
	}
	// Contiguity of the run.
	if info.MetaFirst != info.First+disk.PageID(info.Pages) {
		t.Fatalf("meta pages not contiguous: %+v", info)
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := c.LargeWriteAt(oid, payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := c.LargeReadAt(oid, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("large object round trip failed")
	}
	// Cross-page partial read.
	part := make([]byte, 100)
	if err := c.LargeReadAt(oid, part, disk.PageSize-50); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, payload[disk.PageSize-50:disk.PageSize+50]) {
		t.Fatal("partial read mismatch")
	}
	// Bounds.
	if err := c.LargeReadAt(oid, part, size-50); err == nil {
		t.Fatal("read past end succeeded")
	}
	c.Commit()
}

func TestLargeObjectSurvivesColdCaches(t *testing.T) {
	srv, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, _, err := c.CreateLarge(cl, 2*disk.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("manual page "), 1366)[:2*disk.PageSize]
	if err := c.LargeWriteAt(oid, payload, 0); err != nil {
		t.Fatal(err)
	}
	c.SetRoot("manual", oid, 0)
	c.Commit()
	c.DropCaches()
	if err := srv.DropCaches(); err != nil {
		t.Fatal(err)
	}

	c.Begin()
	got := make([]byte, 2*disk.PageSize)
	if err := c.LargeReadAt(oid, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("large object lost after cache drop")
	}
	c.Commit()
}

func TestCountersAndFiles(t *testing.T) {
	_, c, _ := newPair(t)
	v0, err := c.Counter("frames", 10)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := c.Counter("frames", 5)
	v2, _ := c.Counter("frames", 0)
	if v0 != 0 || v1 != 10 || v2 != 15 {
		t.Fatalf("counter sequence: %d %d %d", v0, v1, v2)
	}
	fid, err := c.CreateFile("parts")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("parts"); err == nil {
		t.Fatal("duplicate file created")
	}
	got, err := c.OpenFile("parts")
	if err != nil || got != fid {
		t.Fatalf("OpenFile: %d, %v", got, err)
	}
	if _, err := c.OpenFile("nope"); err == nil {
		t.Fatal("OpenFile of missing file succeeded")
	}
	if _, _, err := c.GetRoot("nope"); err == nil {
		t.Fatal("GetRoot of missing root succeeded")
	}
}

func TestStealShipsDirtyPageMidTx(t *testing.T) {
	// A 2-frame client pool forces dirty evictions mid-transaction.
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 2, Clock: clock})
	stole := 0
	c.BeforeSteal = func(pid disk.PageID, data []byte) error { stole++; return nil }
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	var oids []OID
	for i := 0; i < 6; i++ {
		oid, data, err := c.CreateObject(cl, 7000) // one page each
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i + 1)
		oids = append(oids, oid)
	}
	if stole == 0 {
		t.Fatal("no steals with a 2-frame pool")
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Everything is durable despite mid-tx shipping.
	c.Begin()
	for i, oid := range oids {
		data, _, err := c.ReadObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i+1) {
			t.Fatalf("object %d content %d", i, data[0])
		}
	}
	c.Commit()
	if n := clock.Count(sim.CtrClientWrite); n == 0 {
		t.Fatal("no client writes charged")
	}
}

func TestLockConflictAcrossClients(t *testing.T) {
	clock := sim.NewClock(sim.DefaultCostModel())
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 64, Clock: clock, LockTimeout: 30 * 1e6})
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c2 := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c1.Begin()
	c2.Begin()
	if err := c1.Lock(lock.KindPage, 42, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	err = c2.Lock(lock.KindPage, 42, lock.Exclusive)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("conflicting lock: %v", err)
	}
	// After c1 commits, c2 can lock.
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Lock(lock.KindPage, 42, lock.Exclusive); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	c2.Commit()
}

func TestIOAccounting(t *testing.T) {
	srv, c, clock := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, _, _ := c.CreateObject(cl, 100)
	c.Commit()
	c.DropCaches()
	if err := srv.DropCaches(); err != nil {
		t.Fatal(err)
	}
	base := clock.Snapshot()

	c.Begin()
	if _, _, err := c.ReadObject(oid); err != nil {
		t.Fatal(err)
	}
	c.Commit()
	d := clock.Snapshot().Sub(base)
	if d.Count(sim.CtrClientRead) != 1 {
		t.Fatalf("client reads = %d, want 1", d.Count(sim.CtrClientRead))
	}
	if d.Count(sim.CtrServerDiskRead) != 1 {
		t.Fatalf("server disk reads = %d, want 1", d.Count(sim.CtrServerDiskRead))
	}

	// Second cold client read: server cache is warm now.
	c.DropCaches()
	base = clock.Snapshot()
	c.Begin()
	c.ReadObject(oid)
	c.Commit()
	d = clock.Snapshot().Sub(base)
	if d.Count(sim.CtrServerDiskRead) != 0 || d.Count(sim.CtrServerBufferHit) != 1 {
		t.Fatalf("warm server: disk=%d hit=%d", d.Count(sim.CtrServerDiskRead), d.Count(sim.CtrServerBufferHit))
	}
	// Hot at the client: no requests at all.
	base = clock.Snapshot()
	c.Begin()
	c.ReadObject(oid)
	c.Commit()
	if n := clock.Snapshot().Sub(base).Count(sim.CtrClientRead); n != 0 {
		t.Fatalf("hot read issued %d requests", n)
	}
}

func TestTCPTransport(t *testing.T) {
	srv, _, _ := newPair(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, srv)

	tr, err := DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, ClientConfig{BufferPages: 8})
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := c.CreateFile("tcp-file")
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewCluster(fid)
	oid, data, err := c.CreateObject(cl, 1000)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0xCD}, 1000))
	if err := c.SetRoot("tcp-root", oid, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reread over the wire from a second connection.
	tr2, err := DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(tr2, ClientConfig{BufferPages: 8})
	defer c2.Close()
	c2.Begin()
	oid2, _, err := c2.GetRoot("tcp-root")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c2.ReadObject(oid2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 || got[500] != 0xCD {
		t.Fatal("content mismatch over TCP")
	}
	c2.Commit()
	// Server-side errors surface as client errors.
	if _, err := c2.OpenFile("missing"); err == nil {
		t.Fatal("missing file error lost over TCP")
	}
}

func TestServerRestartRecovery(t *testing.T) {
	// Committed updates survive a crash where dirty pages never reached
	// the volume: the log replays them at OpenServer.
	vol := disk.NewMemVolume()
	logf := wal.NewMemLog()
	srv, err := NewServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	oid, data, _ := c.CreateObject(cl, 32)
	copy(data, "scratch!")
	pidx, _ := c.Pool().Lookup(oid.Page)
	pdata := c.Pool().Frame(pidx).Data
	c.LogUpdate(oid.Page, 0, make([]byte, disk.PageSize), append([]byte(nil), pdata...))
	c.SetRoot("r", oid, 0)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil { // persist catalog; truncates the log
		t.Fatal(err)
	}

	// A post-checkpoint committed update: its log records are forced but
	// its dirty page stays in the server pool.
	c.Begin()
	obj, idx2, err := c.ReadObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	_, off, _, err := c.ReadObjectAt(oid)
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), obj[:8]...)
	copy(obj, "durable?")
	c.Pool().MarkDirty(idx2)
	c.LogUpdate(oid.Page, off, old, []byte("durable?"))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash: volume page content for oid.Page is reverted to its
	// checkpoint-time state minus the page (simulating that the dirty page
	// never hit disk again), then the server restarts.
	stale := make([]byte, disk.PageSize)
	if err := vol.ReadPage(oid.Page, stale); err != nil {
		t.Fatal(err)
	}
	copy(stale[off:off+8], "scratch!") // the pre-update bytes
	if err := vol.WritePage(oid.Page, stale); err != nil {
		t.Fatal(err)
	}
	srv2, err := OpenServer(vol, logf, ServerConfig{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	c2.Begin()
	oid2, _, err := c2.GetRoot("r")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c2.ReadObject(oid2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("durable?")) {
		t.Fatalf("redo failed: %q", got[:8])
	}
	c2.Commit()
}

func TestProtocolRoundTrip(t *testing.T) {
	req := &Request{Op: OpLock, Tx: 77, Page: 12, N: 3, Mode: 0x21, Name: "hello", Data: []byte{1, 2, 3}}
	got, err := unmarshalRequest(req.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Tx != 77 || got.Page != 12 || got.N != 3 ||
		got.Mode != 0x21 || got.Name != "hello" || !bytes.Equal(got.Data, req.Data) {
		t.Fatalf("request round trip: %+v", got)
	}
	resp := &Response{Err: "boom", Page: 9, N: 1 << 40, Data: []byte("xyz")}
	rgot, err := unmarshalResponse(resp.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rgot.Err != "boom" || rgot.Page != 9 || rgot.N != 1<<40 || string(rgot.Data) != "xyz" {
		t.Fatalf("response round trip: %+v", rgot)
	}
	// Truncated messages are rejected, not crashed on.
	if _, err := unmarshalRequest(req.marshal()[:10]); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := unmarshalResponse([]byte{5, 0}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestResumeCluster(t *testing.T) {
	_, c, _ := newPair(t)
	c.Begin()
	fid, _ := c.CreateFile("f")
	cl := c.NewCluster(fid)
	first, _, err := c.CreateObject(cl, 100)
	if err != nil {
		t.Fatal(err)
	}
	// A resumed cursor places the next object on the same page.
	rc := ResumeCluster(fid, first.Page)
	second, _, err := c.CreateObject(rc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if second.Page != first.Page {
		t.Fatalf("resumed cluster used page %d, want %d", second.Page, first.Page)
	}
	// Resuming on a never-initialized page must not corrupt it: the page
	// is detected as non-slotted and a fresh one is allocated.
	pid, err := c.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	rc2 := ResumeCluster(fid, pid)
	third, _, err := c.CreateObject(rc2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if third.Page == pid {
		t.Fatal("object placed on an uninitialized page")
	}
	c.Commit()
}

func TestMarkDirtyOfNonResident(t *testing.T) {
	_, c, _ := newPair(t)
	c.Begin()
	if err := c.MarkDirty(disk.PageID(999)); err == nil {
		t.Fatal("MarkDirty of non-resident page succeeded")
	}
	c.Commit()
}
