package esm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quickstore/internal/buffer"
	"quickstore/internal/disk"
	"quickstore/internal/faultinject"
	"quickstore/internal/lock"
	"quickstore/internal/mvcc"
	"quickstore/internal/pagedelta"
	"quickstore/internal/sim"
	"quickstore/internal/wal"
)

// ErrMVCCDisabled rejects snapshot ops on a server running without a
// version store (ServerConfig.MVCC off). It travels to clients as a
// non-retryable remote error: a deployment either supports snapshot reads
// everywhere or nowhere, so failing over to another replica cannot help.
var ErrMVCCDisabled = errors.New("esm: snapshot reads disabled (server runs without MVCC)")

// snapshotBehindPrefix marks the read-your-writes rejection: the serving
// node's snapshot LSN is below the client's last-seen commit LSN. The
// replication Director recognizes it (IsSnapshotBehind) and retries the
// begin elsewhere, exactly like a not-leader redirect.
const snapshotBehindPrefix = "esm: snapshot behind client"

// IsSnapshotBehind reports whether err is a read-your-writes rejection
// from OpBeginSnapshot — the contacted node has not yet applied a commit
// the client already saw acknowledged.
func IsSnapshotBehind(err error) bool {
	return err != nil && strings.Contains(err.Error(), snapshotBehindPrefix)
}

// SnapshotBehindError formats the wire error for a read-your-writes
// rejection. Exported for internal/repl, whose followers answer snapshot
// begins without an esm.Server.
func SnapshotBehindError(serving, saw uint64) string {
	return fmt.Sprintf("%s: serving at %d, client saw %d", snapshotBehindPrefix, serving, saw)
}

// DefaultServerBufferPages matches the paper's 36MB server pool.
const DefaultServerBufferPages = 4608

// CatalogPage is the fixed page holding the serialized catalog. Exported
// for internal/repl: the catalog is written straight to the volume rather
// than WAL-logged, so replication must ship its page image out of band
// (piggybacked on ship frames) and install it at the same place.
const CatalogPage disk.PageID = 1

// catalog is the server's persistent name service: named roots (OID plus an
// auxiliary word, which QuickStore uses for the root's virtual address),
// persistent counters (QuickStore's global frame counter lives here), and
// the file table.
type catalog struct {
	Roots    map[string]rootEntry `json:"roots"`
	Counters map[string]uint64    `json:"counters"`
	Files    map[string]uint32    `json:"files"`
	NextFile uint32               `json:"next_file"`
	NextTx   uint64               `json:"next_tx"`
}

type rootEntry struct {
	OID [OIDSize]byte `json:"oid"`
	Aux uint64        `json:"aux"`
}

// ServerConfig tunes a Server.
type ServerConfig struct {
	BufferPages int           // server pool size; 0 = DefaultServerBufferPages
	LockTimeout time.Duration // lock wait timeout; 0 = 1s
	Clock       *sim.Clock    // cost-model clock; nil = free clock

	// CommitWindow is the group-commit batching window (wal.SetCommitWindow):
	// a commit that becomes log-force leader waits this long for concurrent
	// committers to join its batch. 0 forces immediately (deterministic
	// single-session behavior; concurrent commits still piggyback on a
	// force in progress).
	CommitWindow time.Duration

	// Fault, when non-nil, arms the server's named crash points for the
	// crash drill. The volume and log should be wrapped with the same
	// plane (disk.WithHook, Log.FlushHook) so disk and log I/O share the
	// crashed latch. nil (production) costs one pointer check per point.
	Fault *faultinject.Plane

	// MVCC enables the version store (internal/mvcc): page installs retain
	// before-images so read-only sessions can run against a consistent
	// snapshot LSN without ever touching the lock manager. Off by default —
	// the paper's experiments predate snapshot reads and must not see a
	// byte of difference from them.
	MVCC bool

	// MVCCMaxBytes caps version-store memory (0 = mvcc.DefaultMaxBytes,
	// negative = unbounded). Readers whose snapshot falls behind an
	// eviction get ErrSnapshotTooOld and must begin a fresh snapshot.
	MVCCMaxBytes int
}

// Server is the page server: it owns the volume, the server buffer pool,
// the write-ahead log, and the lock manager, and answers the protocol ops.
//
// The server is concurrent: protocol dispatch takes no global lock, so
// page reads, batch fills, installs, and log appends from different client
// sessions overlap, including their disk I/O. Shared state is partitioned:
//
//   - pool (buffer.LatchPool) is internally synchronized with striped
//     latches; all page I/O runs outside any server lock, with per-page
//     in-flight dedup.
//   - log (wal.Log) and vol (disk.Volume) carry their own locks; commit
//     forces go through the log's group-commit path.
//   - locks (lock.Manager) is internally synchronized with FIFO waiters.
//   - mu — the one narrow server lock — guards only the catalog maps and
//     the transaction tables (active, lastTxLSN, catVersion).
//   - catMu serializes catalog page write-back (see writeCatalogIfDirty).
//
// Lock order: catMu → mu → (wal.Log.mu | volume lock). Pool stripe latches
// and frame content latches are taken with neither mu nor catMu held; the
// pool's FlushFn (steal write-back) runs under a frame content latch and
// takes the log and volume locks, never mu. sim.Clock, faultinject.Plane,
// and lock.Manager locks are leaves.
type Server struct {
	mu    sync.Mutex
	vol   disk.Volume
	pool  *buffer.LatchPool
	log   *wal.Log
	locks *lock.Manager
	clock *sim.Clock
	fault *faultinject.Plane
	cat   catalog

	lastTxLSN map[uint64]wal.LSN
	active    map[uint64]bool

	// prepared (under mu) holds 2PC participant transactions between
	// prepare and decision — locks held, outcome owned by the coordinator.
	// decisions (under mu) is the coordinator side: commit verdicts
	// remembered for OpResolveTx inquiries until every participant
	// acknowledged (ResolveModeForget); their RecDecision LSNs pin the
	// checkpoint cut so the verdict survives re-crashes.
	prepared  map[uint64]*preparedTx
	decisions map[uint64]wal.LSN

	// firstTxLSN (under mu) records each active transaction's begin-record
	// LSN. The fuzzy checkpoint's log cut is the minimum over these: every
	// record an in-flight transaction could still need for undo sits at or
	// beyond its begin record.
	firstTxLSN map[uint64]wal.LSN

	// lastCommitLSN (under mu) is the LSN of the newest commit record.
	// It is the snapshot point handed to OpBeginSnapshot: everything
	// committed at or below it is visible, everything after is not.
	lastCommitLSN wal.LSN

	// mv, when non-nil, is the version store backing snapshot reads.
	// Leaf lock: called under mu on the commit/begin-snapshot paths
	// (atomicity with lastCommitLSN), without mu on capture and lookup.
	mv *mvcc.Store

	// coh is the warm-cache coherence state (DESIGN.md §18): the per-page
	// version table, delta bases, and session hint maps. Its own lock is
	// taken under mu (commit/abort bookkeeping) and under frame content
	// latches (abort undo), never the other way around.
	coh *cohState

	// snapFloor is the oldest snapshot LSN this server can serve
	// faithfully: a reopened server's version store is empty, so a
	// snapshot pinned before the restart (a failover survivor) could be
	// shown commits it should not see. Reads below the floor are refused
	// with ErrSnapshotTooOld; the session re-begins a fresh snapshot.
	snapFloor wal.LSN

	// repl, when non-nil, gates every commit ack on a replication quorum
	// (set via SetRepl; read under mu).
	repl QuorumWaiter

	// catVersion (under mu) counts catalog mutations; catWritten (under
	// catMu) is the highest version written to the catalog page. Commits
	// skip the catalog write when nothing changed since the last one.
	catVersion uint64
	catMu      sync.Mutex
	catWritten uint64

	// Coherence counters: validation batches served, not-modified
	// answers, delta repairs (and their encoded bytes), and full-page
	// ships on versioned paths. Atomics: stats reads race ops by design.
	cohValidates   atomic.Int64
	cohNotModified atomic.Int64
	cohDeltas      atomic.Int64
	cohDeltaBytes  atomic.Int64
	cohFulls       atomic.Int64

	// prefetchPages counts pages served through OpReadPages batches;
	// commits counts committed transactions; snapBegins/snapReads count
	// snapshot sessions opened and pages served on the lock-free snapshot
	// path. Atomics: stats reads race concurrent ops by design.
	prefetchPages atomic.Int64
	commits       atomic.Int64
	snapBegins    atomic.Int64
	snapReads     atomic.Int64

	// Transport-layer counters, maintained by Serve across every TCP
	// connection (the in-proc transport never touches them). Atomics for
	// the same reason as above.
	netInFlight   atomic.Int64
	netInFlightHW atomic.Int64
	netFlushes    atomic.Int64
	netFrames     atomic.Int64
	netBytesOut   atomic.Int64
}

// noteNetRequest tracks a decoded request entering server-side dispatch.
// The high-water store is racy by design: the mark is advisory telemetry,
// and a lost update can only under-report by the width of the race. The
// nil-receiver guards let Serve run handlers that expose no stats server
// (a follower repl.Node before promotion).
func (s *Server) noteNetRequest() {
	if s == nil {
		return
	}
	if n := s.netInFlight.Add(1); n > s.netInFlightHW.Load() {
		s.netInFlightHW.Store(n)
	}
}

// doneNetRequest balances noteNetRequest when the worker finishes.
func (s *Server) doneNetRequest() {
	if s == nil {
		return
	}
	s.netInFlight.Add(-1)
}

// noteNetFlush records one coalesced response flush of `frames` frames and
// `bytes` total bytes.
func (s *Server) noteNetFlush(frames, bytes int64) {
	if s == nil {
		return
	}
	s.netFlushes.Add(1)
	s.netFrames.Add(frames)
	s.netBytesOut.Add(bytes)
}

// ReplStats is the replication slice of ServerStats, produced by the
// attached QuorumWaiter (internal/repl). Defined here so the stats payload
// marshals from one package without an esm→repl import cycle.
type ReplStats struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Leader         string `json:"leader"`
	Quorum         int    `json:"quorum"`
	Followers      int    `json:"followers"`
	Elections      int64  `json:"elections"`
	QuorumCommits  int64  `json:"quorum_commits"`
	QuorumWaitNs   int64  `json:"quorum_wait_ns"`
	ShipRounds     int64  `json:"ship_rounds"`
	ShipBytes      int64  `json:"ship_bytes"`
	SnapshotsSent  int64  `json:"snapshots_sent"`
	DurableLSN     uint64 `json:"durable_lsn"`
	QuorumLSN      uint64 `json:"quorum_lsn"`
	MaxFollowerGap uint64 `json:"max_follower_gap"` // LSN bytes the laggiest follower trails the leader's durable prefix
}

// QuorumWaiter gates commit acknowledgements on replication. WaitQuorum
// returns once the log is durable through lsn AND the catalog is installed
// at version catVersion or newer on the configured quorum of replicas
// (counting the local one) — the catalog is a direct volume-page write,
// never WAL-logged, so it is quorum-tracked by version rather than by LSN.
// A WaitQuorum error means the commit must NOT be acked — the caller's
// client sees the transaction as in doubt. Implemented by internal/repl's
// Node; wired with SetRepl.
type QuorumWaiter interface {
	WaitQuorum(lsn wal.LSN, catVersion uint64) error
	ReplStats() *ReplStats
}

// SetRepl attaches the replication quorum gate. Call before the server
// serves traffic (or from the repl node's own promotion path, which owns
// the server exclusively until it publishes it).
func (s *Server) SetRepl(q QuorumWaiter) {
	s.mu.Lock()
	s.repl = q
	s.mu.Unlock()
}

func (s *Server) replWaiter() QuorumWaiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl
}

// CatalogBlob returns the catalog's current version and serialization.
// The replication shipper piggybacks it on ship frames when the version
// moved: catalog durability is a direct volume-page write, not a WAL
// record, so followers cannot recover it from shipped log bytes alone.
func (s *Server) CatalogBlob() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := json.Marshal(&s.cat)
	return s.catVersion, blob, err
}

// SetCatalogVersionFloor raises the catalog version counter to at least v.
// The counter restarts at zero on every open; a promoted replication
// follower carries the cluster's version lineage forward through it so
// cross-term version comparisons stay monotone.
func (s *Server) SetCatalogVersionFloor(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.catVersion < v {
		s.catVersion = v
	}
}

// ServerStats is the JSON payload returned in OpStats responses; it backs
// the `qsstore stats` subcommand.
type ServerStats struct {
	BufferPages    int   `json:"buffer_pages"`
	Resident       int   `json:"resident_pages"`
	PoolHits       int64 `json:"pool_hits"`
	PoolMisses     int64 `json:"pool_misses"`
	PoolEvicted    int64 `json:"pool_evicted"`
	AllocatedPages int   `json:"allocated_pages"`
	LogRecords     int64 `json:"log_records"`
	LogBytes       int64 `json:"log_bytes"`
	DiskReads      int64 `json:"disk_reads"`
	DiskWrites     int64 `json:"disk_writes"`
	PrefetchPages  int64 `json:"prefetch_pages_served"`
	PrefetchReads  int64 `json:"prefetch_disk_reads"`
	Commits        int64 `json:"commits"`
	LogForces      int64 `json:"log_forces"`
	LogPiggybacks  int64 `json:"log_piggybacks"`

	// Lock-manager traffic. The snapshot-read acceptance check is a delta
	// of LockGrants across a read sweep: the MVCC path must leave it flat.
	LockGrants int64 `json:"lock_grants"`
	LockWaits  int64 `json:"lock_waits"`

	// Snapshot-read counters; MVCC carries the version-store internals
	// and is present only when ServerConfig.MVCC is on.
	SnapBegins int64       `json:"snap_begins,omitempty"`
	SnapReads  int64       `json:"snap_reads,omitempty"`
	MVCC       *mvcc.Stats `json:"mvcc,omitempty"`

	// Transport-layer counters, nonzero only when clients arrive over TCP
	// (Serve). NetFrames/NetFlushes is the response coalescing ratio;
	// NetBytesOut/NetFrames is the mean response frame size.
	NetInFlightHW int64 `json:"net_inflight_hw"`
	NetFlushes    int64 `json:"net_flushes"`
	NetFrames     int64 `json:"net_frames"`
	NetBytesOut   int64 `json:"net_bytes_out"`

	// Repl is present only when the server runs under internal/repl:
	// quorum-commit, shipping, and election telemetry.
	Repl *ReplStats `json:"repl,omitempty"`

	// Warm-cache coherence traffic. CohNotModified counts validation and
	// versioned-read answers that shipped no page bytes; CohDeltas pages
	// repaired by patch (CohDeltaBytes patch payload total); CohFulls
	// versioned answers that fell back to a whole-page image.
	CohValidates   int64 `json:"coh_validates,omitempty"`
	CohNotModified int64 `json:"coh_not_modified,omitempty"`
	CohDeltas      int64 `json:"coh_deltas,omitempty"`
	CohDeltaBytes  int64 `json:"coh_delta_bytes,omitempty"`
	CohFulls       int64 `json:"coh_fulls,omitempty"`
}

// NewServer creates a server over a fresh volume: the catalog page is
// allocated and initialized.
func NewServer(vol disk.Volume, log *wal.Log, cfg ServerConfig) (*Server, error) {
	s, err := newServerCommon(vol, log, cfg)
	if err != nil {
		return nil, err
	}
	pid, err := vol.Allocate(1)
	if err != nil {
		return nil, err
	}
	if pid != CatalogPage {
		return nil, fmt.Errorf("esm: catalog page allocated at %d, want %d", pid, CatalogPage)
	}
	s.cat = catalog{
		Roots:    map[string]rootEntry{},
		Counters: map[string]uint64{},
		Files:    map[string]uint32{},
		NextFile: 1,
		NextTx:   1,
	}
	return s, s.writeCatalogLocked()
}

// OpenServer attaches a server to an existing volume, loading the catalog
// and running restart recovery from the log. It runs before the server is
// shared, so no locking applies yet.
func OpenServer(vol disk.Volume, log *wal.Log, cfg ServerConfig) (*Server, error) {
	s, err := newServerCommon(vol, log, cfg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, disk.PageSize)
	if err := vol.ReadPage(CatalogPage, buf); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	if int(n) > disk.PageSize-4 {
		return nil, fmt.Errorf("esm: corrupt catalog (length %d)", n)
	}
	if err := json.Unmarshal(buf[4:4+n], &s.cat); err != nil {
		return nil, fmt.Errorf("esm: corrupt catalog: %w", err)
	}
	_, _, indoubt, err := wal.Recover(log, volStore{vol}, disk.PageSize, pageLSNOf, setPageLSN)
	if err != nil {
		return nil, fmt.Errorf("esm: restart recovery: %w", err)
	}
	// 2PC participant transactions whose verdict is unknown stay alive
	// across the restart: locks re-acquired, records pinned against
	// truncation, resolution deferred to an OpResolveTx inquiry. Remembered
	// coordinator decisions resurface from their RecDecision records — a
	// forget is memory-only, so a restart conservatively re-remembers.
	if err := s.registerInDoubt(indoubt); err != nil {
		return nil, err
	}
	_ = log.Iterate(func(r wal.Record) bool {
		if r.Type == wal.RecDecision {
			//qsvet:ignore guardedfield restart path: Iterate runs synchronously inside OpenServer, before the server is shared with any other goroutine
			s.decisions[r.Tx] = r.LSN
		}
		return true
	})
	// Never reuse transaction ids seen in the log.
	maxTx := s.cat.NextTx
	_ = log.Iterate(func(r wal.Record) bool {
		if r.Tx >= maxTx {
			maxTx = r.Tx + 1
		}
		return true
	})
	s.cat.NextTx = maxTx
	// Everything the recovered log resolved is reflected in live pages, so
	// the durable end of the log is a valid (and maximal) snapshot point.
	// Starting here keeps read-your-writes monotone across a restart or a
	// failover promotion: no previously acknowledged commit has a higher LSN.
	s.lastCommitLSN = log.FlushedLSN()
	s.snapFloor = s.lastCommitLSN
	// The warm-cache version table restarts from the recovered pages'
	// own header LSNs; every token handed out before the crash misses
	// against it, so no survivor can be told "not modified" about bytes
	// recovery changed. A promoted replication follower comes through
	// here too, carrying the table across failover.
	s.rebuildVersionTable()
	return s, nil
}

func newServerCommon(vol disk.Volume, log *wal.Log, cfg ServerConfig) (*Server, error) {
	if cfg.BufferPages == 0 {
		cfg.BufferPages = DefaultServerBufferPages
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewClock(sim.CostModel{})
	}
	s := &Server{
		vol:        vol,
		pool:       buffer.NewLatchPool(cfg.BufferPages),
		log:        log,
		locks:      lock.New(cfg.LockTimeout),
		clock:      cfg.Clock,
		fault:      cfg.Fault,
		lastTxLSN:  map[uint64]wal.LSN{},
		active:     map[uint64]bool{},
		firstTxLSN: map[uint64]wal.LSN{},
		prepared:   map[uint64]*preparedTx{},
		decisions:  map[uint64]wal.LSN{},
		coh:        newCohState(),
	}
	if cfg.MVCC {
		s.mv = mvcc.New(cfg.MVCCMaxBytes)
	}
	log.SetCommitWindow(cfg.CommitWindow)
	s.pool.FlushFn = func(pid disk.PageID, data []byte) error {
		if err := s.fault.Hit(faultinject.PtStealBeforeLogFlush); err != nil {
			return err
		}
		// WAL rule on the steal path: before a dirty page may overwrite
		// its volume copy, the log must be durable through that page's
		// pageLSN, or a crash after the write leaves an uncommitted page
		// on disk with no before-images to undo it.
		if err := s.log.FlushTo(wal.LSN(pageLSNOf(data))); err != nil {
			return err
		}
		if err := s.fault.Hit(faultinject.PtStealAfterLogFlush); err != nil {
			return err
		}
		s.clock.Charge(sim.CtrServerDiskWrite, 1)
		return s.vol.WritePage(pid, data)
	}
	return s, nil
}

// volStore adapts a Volume to wal.PageStore. Restart recovery can meet
// log records for pages a crash left beyond the volume's (possibly stale)
// geometry — allocated and logged, but never flushed before the process
// died — so out-of-range pages are grown into existence rather than
// failing recovery.
type volStore struct{ v disk.Volume }

// ReadPage implements wal.PageStore.
func (vs volStore) ReadPage(id uint32, buf []byte) error {
	err := vs.v.ReadPage(disk.PageID(id), buf)
	if errors.Is(err, disk.ErrPageOutOfRange) {
		if gerr := vs.v.Grow(id + 1); gerr != nil {
			return gerr
		}
		return vs.v.ReadPage(disk.PageID(id), buf)
	}
	return err
}

// WritePage implements wal.PageStore.
func (vs volStore) WritePage(id uint32, buf []byte) error {
	err := vs.v.WritePage(disk.PageID(id), buf)
	if errors.Is(err, disk.ErrPageOutOfRange) {
		if gerr := vs.v.Grow(id + 1); gerr != nil {
			return gerr
		}
		return vs.v.WritePage(disk.PageID(id), buf)
	}
	return err
}

// pageLSNOf reads the LSN of a header-bearing (slotted/btree/catalog) page.
// Raw large-object data pages never appear in byte-range log records: their
// durability comes from whole-page shipping at commit, so recovery only ever
// consults the LSN of slotted pages.
func pageLSNOf(buf []byte) uint64 {
	return binary.LittleEndian.Uint64(buf[:8])
}

func setPageLSN(buf []byte, lsn uint64) { binary.LittleEndian.PutUint64(buf[:8], lsn) }

// writeCatalogLocked serializes the catalog to its page. Callers either
// own the server exclusively (construction) or hold mu; the write itself
// goes to the internally synchronized volume.
func (s *Server) writeCatalogLocked() error {
	blob, err := json.Marshal(&s.cat)
	if err != nil {
		return err
	}
	buf := make([]byte, disk.PageSize)
	if len(blob)+4 > disk.PageSize {
		return fmt.Errorf("esm: catalog too large (%d bytes)", len(blob))
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(blob)))
	copy(buf[4:], blob)
	return s.vol.WritePage(CatalogPage, buf)
}

// writeCatalogIfDirty makes catalog changes durable if any happened since
// the last write. Snapshotting the blob under mu and writing under catMu
// keeps commits from serializing on the catalog page write unless they
// actually changed the catalog; the version check under catMu drops writes
// that a later snapshot already covered.
func (s *Server) writeCatalogIfDirty() error {
	s.mu.Lock()
	v := s.catVersion
	s.mu.Unlock()
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if s.catWritten >= v {
		return nil
	}
	s.mu.Lock()
	v = s.catVersion
	blob, err := json.Marshal(&s.cat)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	buf := make([]byte, disk.PageSize)
	if len(blob)+4 > disk.PageSize {
		return fmt.Errorf("esm: catalog too large (%d bytes)", len(blob))
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(blob)))
	copy(buf[4:], blob)
	if err := s.vol.WritePage(CatalogPage, buf); err != nil {
		return err
	}
	s.catWritten = v
	return nil
}

// Handle executes one protocol request. It never returns a nil response;
// errors travel in Response.Err. Handle is safe for concurrent use: the
// transport layer calls it from one goroutine per client connection.
func (s *Server) Handle(req *Request) *Response {
	resp, err := s.handle(req)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if resp == nil {
		resp = &Response{}
	}
	return resp
}

func (s *Server) handle(req *Request) (*Response, error) {
	if s.fault.Crashed() {
		// An armed crash fired: the process is dead until the drill
		// restarts it. Every request fails, including ones whose own
		// path carries no instrumented point.
		return nil, faultinject.ErrCrash
	}
	switch req.Op {
	case OpBegin:
		s.mu.Lock()
		tx := s.cat.NextTx
		s.cat.NextTx++
		s.active[tx] = true
		first := s.log.Append(wal.Record{Tx: tx, Type: wal.RecBegin})
		s.lastTxLSN[tx] = first
		s.firstTxLSN[tx] = first
		s.mu.Unlock()
		resp := &Response{N: tx}
		if req.Mode&BeginSession != 0 {
			resp.Page = uint32(s.coh.bindSession(req.N, tx))
		}
		return resp, nil

	case OpReadPage:
		if req.Mode&ReadVersioned != 0 {
			return s.readPageVersioned(req)
		}
		return s.readPage(disk.PageID(req.Page))

	case OpWritePage:
		if len(req.Data) != disk.PageSize {
			return nil, fmt.Errorf("esm: write of %d bytes", len(req.Data))
		}
		return nil, s.installPage(req.Tx, disk.PageID(req.Page), req.Data)

	case OpLog:
		lsn, err := s.appendLogBatch(req.Tx, req.Data)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(lsn)}, nil

	case OpCommit:
		lsn, err := s.commit(req.Tx, req.Data)
		if err != nil {
			return nil, err
		}
		// The commit LSN rides back so sessions can track their last-seen
		// commit for read-your-writes snapshot begins. Invalidation hints
		// piggyback alongside: pages this session is known to cache that
		// other transactions have committed over since.
		resp := &Response{N: uint64(lsn)}
		if pids, all := s.coh.takeHints(req.Tx); all {
			resp.Mode |= RespHintsAll
		} else if len(pids) > 0 {
			resp.Mode |= RespHints
			var tmp [4]byte
			for _, pid := range pids {
				binary.LittleEndian.PutUint32(tmp[:], uint32(pid))
				resp.Data = append(resp.Data, tmp[:]...)
			}
		}
		s.coh.dropTx(req.Tx)
		return resp, nil

	case OpAbort:
		return nil, s.abort(req.Tx)

	case OpAllocPages:
		pid, err := s.vol.Allocate(int(req.N))
		if err != nil {
			return nil, err
		}
		return &Response{Page: uint32(pid)}, nil

	case OpFreePages:
		return nil, s.vol.Free(disk.PageID(req.Page), int(req.N))

	case OpLock:
		kind := lock.Kind(req.Mode >> 4)
		mode := lock.Mode(req.Mode & 0xF)
		if err := s.locks.Acquire(req.Tx, lock.Resource{Kind: kind, ID: uint64(req.Page)}, mode); err != nil {
			return nil, err
		}
		// Piggybacked staleness check (DESIGN.md §18): a page-lock request
		// carries the token of the client's cached copy in N. Commits
		// clear their version-table and pending state before releasing
		// locks, so a version probe after the grant is authoritative: a
		// mismatch means a committed writer got in since the client cached
		// the page, and the client must revalidate before reading the
		// frame. This closes the mid-transaction hole Begin-validation
		// cannot see (cache page, then another client commits, then we
		// lock it).
		if kind == lock.KindPage && req.N != 0 && !s.coh.isCurrent(disk.PageID(req.Page), req.N) {
			return &Response{Mode: RespStale}, nil
		}
		return nil, nil

	case OpCreateFile:
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.cat.Files[req.Name]; ok {
			return nil, fmt.Errorf("esm: file %q exists", req.Name)
		}
		id := s.cat.NextFile
		s.cat.NextFile++
		s.cat.Files[req.Name] = id
		s.catVersion++
		return &Response{N: uint64(id)}, nil

	case OpOpenFile:
		s.mu.Lock()
		defer s.mu.Unlock()
		id, ok := s.cat.Files[req.Name]
		if !ok {
			return nil, fmt.Errorf("esm: no file %q", req.Name)
		}
		return &Response{N: uint64(id)}, nil

	case OpGetRoot:
		s.mu.Lock()
		defer s.mu.Unlock()
		e, ok := s.cat.Roots[req.Name]
		if !ok {
			return nil, fmt.Errorf("esm: no root %q", req.Name)
		}
		return &Response{N: e.Aux, Data: append([]byte(nil), e.OID[:]...)}, nil

	case OpSetRoot:
		var e rootEntry
		if len(req.Data) >= OIDSize {
			copy(e.OID[:], req.Data)
		}
		e.Aux = req.N
		s.mu.Lock()
		s.cat.Roots[req.Name] = e
		s.catVersion++
		s.mu.Unlock()
		return nil, nil

	case OpCounter:
		s.mu.Lock()
		old := s.cat.Counters[req.Name]
		s.cat.Counters[req.Name] = old + req.N
		s.catVersion++
		s.mu.Unlock()
		return &Response{N: old}, nil

	case OpCheckpoint:
		return nil, s.checkpoint()

	case OpStats:
		hits, misses, evicted := s.pool.Stats()
		grants, waits := s.locks.Stats()
		st := ServerStats{
			BufferPages:    s.pool.Len(),
			Resident:       s.pool.Resident(),
			PoolHits:       hits,
			PoolMisses:     misses,
			PoolEvicted:    evicted,
			AllocatedPages: int(s.vol.AllocatedPages()),
			LogRecords:     s.log.Records(),
			LogBytes:       s.log.Bytes(),
			DiskReads:      s.clock.Count(sim.CtrServerDiskRead),
			DiskWrites:     s.clock.Count(sim.CtrServerDiskWrite),
			PrefetchPages:  s.prefetchPages.Load(),
			PrefetchReads:  s.clock.Count(sim.CtrPrefetchDiskRead),
			Commits:        s.commits.Load(),
			LogForces:      s.log.Forces(),
			LogPiggybacks:  s.log.Piggybacks(),
			LockGrants:     grants,
			LockWaits:      waits,
			SnapBegins:     s.snapBegins.Load(),
			SnapReads:      s.snapReads.Load(),
			NetInFlightHW:  s.netInFlightHW.Load(),
			NetFlushes:     s.netFlushes.Load(),
			NetFrames:      s.netFrames.Load(),
			NetBytesOut:    s.netBytesOut.Load(),
			CohValidates:   s.cohValidates.Load(),
			CohNotModified: s.cohNotModified.Load(),
			CohDeltas:      s.cohDeltas.Load(),
			CohDeltaBytes:  s.cohDeltaBytes.Load(),
			CohFulls:       s.cohFulls.Load(),
		}
		if q := s.replWaiter(); q != nil {
			st.Repl = q.ReplStats()
		}
		if s.mv != nil {
			mst := s.mv.Stats()
			st.MVCC = &mst
		}
		blob, err := json.Marshal(&st)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(st.Resident), Data: blob}, nil

	case OpReadPages:
		return s.readPagesBatch(req)

	case OpBeginSnapshot:
		return s.beginSnapshot(wal.LSN(req.N))

	case OpSnapRead:
		return s.snapRead(disk.PageID(req.Page), wal.LSN(req.N))

	case OpEndSnapshot:
		return s.endSnapshot(wal.LSN(req.N))

	case OpPrepare:
		lsn, err := s.prepare(req.Tx, req.Page, req.N, req.Mode, req.Data)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(lsn)}, nil

	case OpCommitDecision:
		lsn, err := s.commitDecision(req.Tx, req.Mode)
		if err != nil {
			return nil, err
		}
		return &Response{N: uint64(lsn)}, nil

	case OpResolveTx:
		return s.resolveTx(req)

	case OpValidatePages:
		return s.validatePages(req)
	}
	return nil, fmt.Errorf("esm: unknown op %v", req.Op)
}

// readPageVersioned serves a ReadVersioned OpReadPage: the request's N is
// the token of the client's cached copy. A token match answers a few
// bytes of "current"; a known previous image answers a pagedelta patch;
// anything else ships the full page with its token. The fast not-modified
// path charges nothing to the cost model — coherence traffic must leave
// the paper experiments' deterministic counters untouched — while the
// byte-shipping paths charge exactly what a legacy read would.
func (s *Server) readPageVersioned(req *Request) (*Response, error) {
	pid := disk.PageID(req.Page)
	ver1, pending1 := s.coh.probe(pid)
	if pending1 == 0 && req.N != 0 && ver1 == req.N {
		s.cohNotModified.Add(1)
		if req.Tx != 0 {
			s.coh.noteServed(req.Tx, pid, ver1)
		}
		return &Response{Page: req.Page, N: ver1, Mode: PageCurrent}, nil
	}
	out := make([]byte, disk.PageSize)
	ref, loaded, err := s.pool.Load(pid, func(buf []byte) error {
		s.clock.Charge(sim.CtrServerDiskRead, 1)
		s.clock.Charge(sim.CtrServerBufferHit, 1) // network leg of the transfer
		return s.vol.ReadPage(pid, buf)
	})
	if err != nil {
		return nil, err
	}
	if !loaded {
		s.clock.Charge(sim.CtrServerBufferHit, 1)
	}
	ref.Read(func(data []byte) { copy(out, data) })
	ref.Release()
	token, current, base := s.coh.answer(pid, req.N, out, ver1, pending1)
	if req.Tx != 0 {
		s.coh.noteServed(req.Tx, pid, token)
	}
	if current {
		s.cohNotModified.Add(1)
		return &Response{Page: req.Page, N: token, Mode: PageCurrent}, nil
	}
	if base != nil {
		if patch := pagedelta.Encode(base, out); patch != nil {
			s.cohDeltas.Add(1)
			s.cohDeltaBytes.Add(int64(len(patch)))
			return &Response{Page: req.Page, N: token, Mode: PageDelta, Data: patch}, nil
		}
	}
	s.cohFulls.Add(1)
	return &Response{Page: req.Page, N: token, Mode: PageFull, Data: out}, nil
}

// validatePages serves one OpValidatePages batch: for every (pid, token)
// entry the client's resident set holds, decide current vs stale, and
// repair stale entries in place with a delta patch or a full image where
// a committed image is safely available. Stale entries without a repair
// (an uncommitted install pending on the page, an unstable interleaving,
// a page the volume lost) must be evicted by the client. The whole path
// reads through the non-perturbing pool snapshot and charges nothing to
// the cost model: validation is coherence traffic, not simulated I/O, and
// must not shift the deterministic experiment counters.
func (s *Server) validatePages(req *Request) (*Response, error) {
	pids, tokens, err := ParseValidateEntries(req.Data, req.N)
	if err != nil {
		return nil, err
	}
	s.cohValidates.Add(1)
	stale := make([]bool, len(pids))
	var repairs []ValidateRepair
	buf := make([]byte, disk.PageSize)
	for i, pid32 := range pids {
		pid := disk.PageID(pid32)
		token := tokens[i]
		if s.coh.isCurrent(pid, token) {
			s.cohNotModified.Add(1)
			if req.Tx != 0 {
				s.coh.noteServed(req.Tx, pid, token)
			}
			continue
		}
		stale[i] = true
		ver1, pending1 := s.coh.probe(pid)
		if pending1 > 0 {
			// The frame may hold another transaction's uncommitted bytes;
			// there is no committed image to repair from without a lock.
			continue
		}
		if !s.pool.Snapshot(pid, buf) {
			if err := s.vol.ReadPage(pid, buf); err != nil {
				continue
			}
		}
		newTok, current, base := s.coh.answer(pid, token, buf, ver1, pending1)
		if current {
			stale[i] = false
			s.cohNotModified.Add(1)
			continue
		}
		if newTok == 0 {
			continue
		}
		rep := ValidateRepair{Page: pid32, Token: newTok}
		if base != nil {
			if patch := pagedelta.Encode(base, buf); patch != nil {
				rep.Kind = PageDelta
				rep.Patch = patch
				s.cohDeltas.Add(1)
				s.cohDeltaBytes.Add(int64(len(patch)))
			}
		}
		if rep.Patch == nil {
			rep.Kind = PageFull
			rep.Patch = append([]byte(nil), buf...)
			s.cohFulls.Add(1)
		}
		if req.Tx != 0 {
			s.coh.noteServed(req.Tx, pid, newTok)
		}
		repairs = append(repairs, rep)
	}
	return &Response{N: req.N, Data: AppendValidateResponse(nil, stale, repairs)}, nil
}

// beginSnapshot opens a read-only snapshot session at the newest commit
// LSN. lastSeen is the client's read-your-writes floor: a node serving at
// an older LSN (a freshly promoted leader that lost the tail, a lagging
// follower) must refuse rather than silently show the client a past it
// has already read beyond. The pin is taken under mu, atomically with the
// snapshot choice: commits advance lastCommitLSN and retire versions
// under the same lock, so the chosen LSN cannot be reclaimed in between.
func (s *Server) beginSnapshot(lastSeen wal.LSN) (*Response, error) {
	if s.mv == nil {
		return nil, ErrMVCCDisabled
	}
	s.mu.Lock()
	snap := s.lastCommitLSN
	if snap == 0 {
		// Nothing committed yet. Snapshot 0 is the client's no-session
		// sentinel, and LSN 1 can only ever hold a begin record, so a
		// snapshot there is equivalently empty and always valid.
		snap = 1
	}
	if lastSeen > snap {
		s.mu.Unlock()
		return nil, errors.New(SnapshotBehindError(uint64(snap), uint64(lastSeen)))
	}
	s.mv.Pin(snap)
	s.mu.Unlock()
	s.snapBegins.Add(1)
	return &Response{N: uint64(snap)}, nil
}

// snapRead serves one page as of snapshot LSN snap, without consulting the
// lock manager. The live frame is read first (non-perturbing, like batch
// reads: Snapshot leaves reference bits alone and volume reads bypass the
// pool), the version store second. A concurrent writer captures its
// before-image under the store lock before overwriting the frame under the
// content latch, so in either interleaving the bytes for snap are found:
// if the live read saw the new bytes the capture already happened, and if
// it saw the old bytes the pending version holds those same old bytes.
func (s *Server) snapRead(pid disk.PageID, snap wal.LSN) (*Response, error) {
	if s.mv == nil {
		return nil, ErrMVCCDisabled
	}
	if snap < s.snapFloor {
		return nil, fmt.Errorf("esm: SnapRead(%d) at %d: %w (server reopened at %d)",
			pid, snap, mvcc.ErrSnapshotTooOld, s.snapFloor)
	}
	out := make([]byte, disk.PageSize)
	if s.pool.Snapshot(pid, out) {
		s.clock.Charge(sim.CtrServerBufferHit, 1)
	} else {
		if err := s.vol.ReadPage(pid, out); err != nil {
			return nil, fmt.Errorf("esm: SnapRead(%d): %w", pid, err)
		}
		s.clock.Charge(sim.CtrServerDiskRead, 1)
		s.clock.Charge(sim.CtrServerBufferHit, 1) // network leg of the transfer
	}
	img, err := s.mv.Lookup(uint32(pid), snap)
	if err != nil {
		return nil, err
	}
	if img != nil {
		copy(out, img)
	}
	s.snapReads.Add(1)
	return &Response{Page: uint32(pid), Data: out}, nil
}

// endSnapshot releases the pin taken by beginSnapshot. Not idempotent — a
// replayed end would double-unpin someone else's snapshot — so transports
// must not retry it; a lost ack merely delays reclamation until the byte
// cap evicts the orphaned versions.
func (s *Server) endSnapshot(snap wal.LSN) (*Response, error) {
	if s.mv == nil {
		return nil, ErrMVCCDisabled
	}
	s.mv.Unpin(snap)
	return nil, nil
}

// checkpoint writes a fuzzy checkpoint: commits, aborts, installs, and
// snapshot reads all keep flowing while it runs — nothing quiesces.
//
// The protocol:
//
//  1. Choose the log cut under mu: the durable prefix end, lowered to the
//     begin-record LSN of the oldest in-flight transaction. Every record
//     below the cut belongs to a transaction that already resolved.
//  2. Advance the pool's dirty-page epoch, AFTER choosing the cut. A
//     transaction that resolves between the two steps dirtied its frames
//     before the epoch moved, so the generation walk below still covers
//     it; a transaction that begins after the cut was chosen only writes
//     records at or beyond it. Either way no redo is lost.
//  3. Walk the pre-cut generation to the volume (FlushBefore). Frames
//     dirtied after the epoch advanced are skipped — their covering
//     records survive the cut — so hot pages cannot stall the walk by
//     being redirtied. Write-back failures restore the old stamp; retry
//     until the generation drains or give up without truncating.
//  4. Force the catalog and the log, sync the volume, and only then cut
//     the log prefix (TruncateBefore keeps LSNs intact) and append a
//     fresh checkpoint record to re-anchor the LSN base for reopen.
//
// The previous implementation truncated the whole log behind a
// quiescence check (len(active) == 0 under mu). The check did not cover
// the window between the pool flush and itself: a transaction that began
// AND committed inside that window was invisible to the check, its pages
// sat dirty only in the pool, and Truncate discarded the records that
// could redo them — a crash then reverted a committed transaction. The
// cut rule closes that window: such a transaction's records lie wholly at
// or beyond the cut and survive.
func (s *Server) checkpoint() error {
	s.mu.Lock()
	cut := s.log.FlushedLSN()
	for tx := range s.active {
		if first, ok := s.firstTxLSN[tx]; ok && first < cut {
			cut = first
		}
	}
	// Unforgotten commit decisions pin the cut too: a participant may
	// still come asking, and after a re-crash the answer must be found in
	// this log — truncating the RecDecision would turn a committed
	// transaction into a presumed abort.
	for _, lsn := range s.decisions {
		if lsn < cut {
			cut = lsn
		}
	}
	s.mu.Unlock()
	epoch := s.pool.AdvanceEpoch()
	for tries := 0; ; tries++ {
		err := s.pool.FlushBefore(epoch)
		if err == nil && s.pool.DirtyBefore(epoch) == 0 {
			break
		}
		if tries >= 16 {
			if err == nil {
				err = fmt.Errorf("esm: checkpoint could not drain %d dirty pages", s.pool.DirtyBefore(epoch))
			}
			return err
		}
	}
	s.mu.Lock()
	s.catVersion++ // force the write: a checkpoint always persists the catalog
	s.mu.Unlock()
	if err := s.writeCatalogIfDirty(); err != nil {
		return err
	}
	if err := s.log.Flush(); err != nil {
		return err
	}
	if err := s.fault.Hit(faultinject.PtCheckpointBeforeSync); err != nil {
		return err
	}
	if err := s.vol.Sync(); err != nil {
		return err
	}
	if err := s.fault.Hit(faultinject.PtCheckpointBeforeTruncate); err != nil {
		return err
	}
	if err := s.log.TruncateBefore(cut); err != nil {
		return err
	}
	if err := s.fault.Hit(faultinject.PtCheckpointAfterTruncate); err != nil {
		return err
	}
	// Re-anchor the LSN space. OpenFileLog recovers the base of a cut log
	// from the LSNs of surviving records; a log whose tail emptied would
	// reopen at base 0 and hand out LSNs that collide with pageLSNs
	// stamped before the cut. A durable checkpoint record carries the
	// base in its own LSN.
	s.log.Append(wal.Record{Type: wal.RecCheckpoint})
	return s.log.Flush()
}

// readPagesBatch serves one OpReadPages frame: every requested page is
// returned in request order, copied from the server pool when resident
// (Snapshot, so reference bits stay untouched) and read straight from the
// volume otherwise. The server pool is deliberately bypassed for the
// volume reads: prefetch traffic must not install or evict server frames,
// both because speculative reads should not pollute the server's working
// set and because it keeps concurrent batch fetches from perturbing the
// deterministic pool state the experiments depend on. Background disk
// reads are counted (CtrPrefetchDiskRead) but charge no foreground time —
// they overlap with client computation.
func (s *Server) readPagesBatch(req *Request) (*Response, error) {
	if len(req.Data)%4 != 0 || uint64(len(req.Data)/4) != req.N {
		return nil, fmt.Errorf("esm: malformed ReadPages payload (%d bytes for %d pages)", len(req.Data), req.N)
	}
	versioned := req.Mode&ReadVersioned != 0
	n := int(req.N)
	rec := 4 + disk.PageSize
	if versioned {
		// Versioned batch records carry the page's coherence token
		// between the id and the image, so speculative pre-reads enter
		// the client cache revalidatable like any demand-loaded page.
		rec += 8
	}
	out := make([]byte, 0, n*rec)
	for i := 0; i < n; i++ {
		pid := disk.PageID(binary.LittleEndian.Uint32(req.Data[i*4:]))
		var tmp [8]byte
		binary.LittleEndian.PutUint32(tmp[:4], uint32(pid))
		out = append(out, tmp[:4]...)
		tokenAt := -1
		if versioned {
			tokenAt = len(out)
			out = append(out, tmp[:]...) // placeholder, filled below
		}
		var ver1 uint64
		var pending1 int
		if versioned {
			ver1, pending1 = s.coh.probe(pid)
		}
		out = out[:len(out)+disk.PageSize]
		dst := out[len(out)-disk.PageSize:]
		if !s.pool.Snapshot(pid, dst) {
			if err := s.vol.ReadPage(pid, dst); err != nil {
				return nil, fmt.Errorf("esm: ReadPages(%d): %w", pid, err)
			}
			s.clock.Charge(sim.CtrPrefetchDiskRead, 1)
		}
		if versioned {
			token, _, _ := s.coh.answer(pid, 0, dst, ver1, pending1)
			binary.LittleEndian.PutUint64(out[tokenAt:], token)
			if req.Tx != 0 {
				s.coh.noteServed(req.Tx, pid, token)
			}
		}
		s.prefetchPages.Add(1)
	}
	return &Response{N: req.N, Data: out}, nil
}

func (s *Server) readPage(pid disk.PageID) (*Response, error) {
	out := make([]byte, disk.PageSize)
	ref, loaded, err := s.pool.Load(pid, func(buf []byte) error {
		s.clock.Charge(sim.CtrServerDiskRead, 1)
		s.clock.Charge(sim.CtrServerBufferHit, 1) // network leg of the transfer
		return s.vol.ReadPage(pid, buf)
	})
	if err != nil {
		return nil, err
	}
	if !loaded {
		// Buffer hit — or a ride on another session's in-flight read of
		// the same page (the dedup makes it cost the same as a hit).
		s.clock.Charge(sim.CtrServerBufferHit, 1)
	}
	ref.Read(func(data []byte) { copy(out, data) })
	ref.Release()
	return &Response{Page: uint32(pid), Data: out}, nil
}

// installPage places a shipped page image in the server pool, dirty.
// With the version store on, the page's current committed image is
// captured first — before the frame is overwritten — so snapshot readers
// keep seeing the old bytes. The capture reads through the same
// non-perturbing path as batch reads (pool snapshot, else the volume) and
// is deduplicated per (transaction, page) inside the store, so a page a
// transaction installs repeatedly (steal, then commit) is captured once.
func (s *Server) installPage(tx uint64, pid disk.PageID, data []byte) error {
	if tx != 0 {
		before := make([]byte, disk.PageSize)
		if !s.pool.Snapshot(pid, before) {
			if err := s.vol.ReadPage(pid, before); err != nil {
				// A page past the volume's geometry has no committed
				// image yet; its before-image is all zeroes.
				if !errors.Is(err, disk.ErrPageOutOfRange) {
					return err
				}
				for i := range before {
					before[i] = 0
				}
			}
		}
		if s.mv != nil {
			s.mv.CaptureBefore(uint32(pid), tx, before)
		}
		// Coherence capture, before the frame bytes change: raises the
		// page's pending count (versioned reads stop vending tokens for
		// it) and keeps the committed image as the delta base the commit
		// will publish.
		s.coh.captureInstall(tx, pid, before)
	}
	ref, _, err := s.pool.Load(pid, func(buf []byte) error {
		copy(buf, data)
		return nil
	})
	if err != nil {
		return err
	}
	ref.Write(func(dst []byte) { copy(dst, data) }) // Load skips the fill when already resident
	ref.MarkDirty()
	ref.Release()
	return nil
}

// log batch format: count u32, then per record:
// Type u8, Page u32, Off u16, oldLen u16, newLen u16, old..., new...
func (s *Server) appendLogBatch(tx uint64, data []byte) (wal.LSN, error) {
	if len(data) < 4 {
		return 0, errShortMessage
	}
	count := int(binary.LittleEndian.Uint32(data))
	p := 4
	s.mu.Lock()
	last := s.lastTxLSN[tx]
	s.mu.Unlock()
	for i := 0; i < count; i++ {
		if len(data) < p+11 {
			return 0, errShortMessage
		}
		typ := wal.RecType(data[p])
		pid := binary.LittleEndian.Uint32(data[p+1:])
		off := binary.LittleEndian.Uint16(data[p+5:])
		oldLen := int(binary.LittleEndian.Uint16(data[p+7:]))
		newLen := int(binary.LittleEndian.Uint16(data[p+9:]))
		p += 11
		if len(data) < p+oldLen+newLen {
			return 0, errShortMessage
		}
		rec := wal.Record{
			PrevLSN: last,
			Tx:      tx,
			Type:    typ,
			Page:    pid,
			Off:     off,
		}
		if oldLen > 0 {
			rec.Old = append([]byte(nil), data[p:p+oldLen]...)
		}
		p += oldLen
		if newLen > 0 {
			rec.New = append([]byte(nil), data[p:p+newLen]...)
		}
		p += newLen
		last = s.log.Append(rec)
	}
	s.mu.Lock()
	s.lastTxLSN[tx] = last
	s.mu.Unlock()
	return last, nil
}

// commit installs the shipped dirty pages (Data = repeated u32 pid + 8K
// image), appends the commit record, and forces the log through it via the
// group-commit path: concurrent committers share one physical force. The
// commit LSN is returned so the ack can carry it to the session
// (read-your-writes floor for later snapshot begins).
func (s *Server) commit(tx uint64, data []byte) (wal.LSN, error) {
	const rec = 4 + disk.PageSize
	if len(data)%rec != 0 {
		return 0, fmt.Errorf("esm: malformed commit payload (%d bytes)", len(data))
	}
	for p := 0; p < len(data); p += rec {
		pid := disk.PageID(binary.LittleEndian.Uint32(data[p:]))
		if err := s.installPage(tx, pid, data[p+4:p+rec]); err != nil {
			return 0, err
		}
	}
	if err := s.fault.Hit(faultinject.PtCommitAfterInstall); err != nil {
		return 0, err
	}
	s.mu.Lock()
	lsn := s.log.Append(wal.Record{PrevLSN: s.lastTxLSN[tx], Tx: tx, Type: wal.RecCommit})
	s.lastTxLSN[tx] = lsn
	if lsn > s.lastCommitLSN {
		s.lastCommitLSN = lsn
	}
	if s.mv != nil {
		// Under mu, atomically with lastCommitLSN: a snapshot beginning at
		// this LSN must find these versions already retired to committed.
		s.mv.Commit(tx, lsn)
	}
	// Same atomicity for the coherence table: the moment the commit LSN
	// is chosen, the installed pages' versions move to it and their
	// pending counts drop — a versioned read that sees the new bytes must
	// also see the new version.
	s.coh.commitTx(tx, uint64(lsn))
	s.mu.Unlock()
	if err := s.fault.Hit(faultinject.PtCohAfterBump); err != nil {
		return 0, err
	}
	if err := s.fault.Hit(faultinject.PtCommitBeforeFlush); err != nil {
		return 0, err
	}
	if err := s.log.FlushCommit(lsn); err != nil {
		return 0, err
	}
	if err := s.fault.Hit(faultinject.PtCommitAfterFlush); err != nil {
		return 0, err
	}
	// Catalog changes (files, roots, counters) become durable with the
	// transaction, not just at checkpoints — and before the quorum gate
	// below, so the replicated ack covers them too.
	if err := s.writeCatalogIfDirty(); err != nil {
		return 0, err
	}
	// Quorum-before-ack: with replication attached, local durability is not
	// commit durability — the ack waits until a quorum of replicas reports
	// the log durable through this commit's LSN and the catalog installed
	// at this commit's version (the catalog is a direct volume-page write,
	// never WAL-logged, so it ships out of band and is tracked by version).
	// The wait piggybacks on the shipper's batching the same way
	// FlushCommit piggybacks on group commit: a burst of commits costs one
	// replication round-trip.
	if q := s.replWaiter(); q != nil {
		s.mu.Lock()
		catV := s.catVersion
		s.mu.Unlock()
		if err := s.fault.Hit(faultinject.PtReplBeforeQuorum); err != nil {
			return 0, err
		}
		if err := q.WaitQuorum(lsn, catV); err != nil {
			return 0, err
		}
		if err := s.fault.Hit(faultinject.PtReplAfterQuorum); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	delete(s.active, tx)
	delete(s.lastTxLSN, tx)
	delete(s.firstTxLSN, tx)
	s.mu.Unlock()
	s.locks.ReleaseAll(tx)
	s.commits.Add(1)
	return lsn, nil
}

// abort undoes any of the transaction's updates that reached the server
// (pages shipped mid-transaction under the steal policy), then releases its
// locks. Updates that never left the client die with the client's cache.
func (s *Server) abort(tx uint64) error {
	var mine []wal.Record
	_ = s.log.Iterate(func(r wal.Record) bool {
		if r.Tx == tx && r.Type == wal.RecUpdate {
			mine = append(mine, r)
		}
		return true
	})
	for i := len(mine) - 1; i >= 0; i-- {
		r := mine[i]
		if len(r.Old) == 0 {
			continue
		}
		pid := disk.PageID(r.Page)
		ref, _, err := s.pool.Load(pid, func(buf []byte) error {
			s.clock.Charge(sim.CtrServerDiskRead, 1)
			return s.vol.ReadPage(pid, buf)
		})
		if err != nil {
			return err
		}
		// The undo reads the page LSN and applies the before-image under
		// one exclusive content latch; the aborting transaction still
		// holds its page locks, but batch reads may snapshot concurrently.
		applied := false
		ref.Write(func(data []byte) {
			if wal.LSN(pageLSNOf(data)) < r.LSN {
				return // never applied here
			}
			clr := s.log.Append(wal.Record{Tx: tx, Type: wal.RecCLR, Page: r.Page, Off: r.Off, New: append([]byte(nil), r.Old...)})
			copy(data[int(r.Off):int(r.Off)+len(r.Old)], r.Old)
			setPageLSN(data, uint64(clr))
			// Still under the content latch: any token vended for the page
			// before this undo must stop matching the moment the bytes move.
			s.coh.bump(pid, uint64(clr))
			applied = true
		})
		if applied {
			ref.MarkDirty()
		}
		ref.Release()
	}
	if err := s.fault.Hit(faultinject.PtAbortAfterCLR); err != nil {
		return err
	}
	s.mu.Lock()
	abortLSN := s.log.Append(wal.Record{PrevLSN: s.lastTxLSN[tx], Tx: tx, Type: wal.RecAbort})
	s.mu.Unlock()
	if err := s.fault.Hit(faultinject.PtAbortBeforeFlush); err != nil {
		return err
	}
	// The abort is acknowledged to the client, which forgets the
	// transaction; the rollback decision must be durable before that ack.
	// Without this force, a crash after the ack can leave the log ending
	// in the transaction's updates — restart recovery would count it a
	// loser and undo it a second time against pages the runtime abort
	// already rolled back (and whose CLRs were equally lost).
	if err := s.log.Flush(); err != nil {
		return err
	}
	if err := s.fault.Hit(faultinject.PtAbortAfterFlush); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.active, tx)
	delete(s.lastTxLSN, tx)
	delete(s.firstTxLSN, tx)
	delete(s.prepared, tx) // a prepared participant aborting on the coordinator's verdict
	if s.mv != nil {
		// Only now: until the undo above finished, the pending
		// before-images were still shielding snapshot readers from the
		// aborting transaction's half-rolled-back frames.
		s.mv.Abort(tx)
	}
	// Sweep pages the transaction installed but never logged updates for
	// (whole-page commit-time installs): their bytes never changed back
	// under a CLR, but their pending counts must drop and any page whose
	// frame got scribbled must stop matching old tokens. Undone pages were
	// already bumped to their CLR LSNs above; bumping again to the abort
	// LSN is equally correct (monotone, never equals a vended token).
	s.coh.abortTx(tx, uint64(abortLSN))
	s.mu.Unlock()
	s.locks.ReleaseAll(tx)
	return nil
}

// Checkpoint runs a fuzzy checkpoint (test/CLI convenience wrapper around
// OpCheckpoint). It is safe to call mid-traffic: the checkpoint never
// quiesces, and transactions that begin or commit while it runs keep their
// log records across the cut.
func (s *Server) Checkpoint() error {
	r := s.Handle(&Request{Op: OpCheckpoint})
	if r.Err != "" {
		return fmt.Errorf("%s", r.Err)
	}
	return nil
}

// DropCaches empties the server buffer pool after flushing, making the next
// reads hit the disk (the harness's "cold" switch). Callers quiesce the
// server first.
func (s *Server) DropCaches() error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	s.pool.DropAll()
	return nil
}

// FlushPool writes every dirty buffered page to the volume. Replication
// snapshots need it: raw large-object pages are written whole and never
// WAL-logged, so only the volume — not the log — carries their content.
func (s *Server) FlushPool() error { return s.pool.FlushAll() }

// Volume exposes the underlying volume (read-only use: sizing, verification).
func (s *Server) Volume() disk.Volume { return s.vol }

// Log exposes the write-ahead log for tests and crash-recovery drills.
func (s *Server) Log() *wal.Log { return s.log }
