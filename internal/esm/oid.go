// Package esm implements the EXODUS-like storage manager that both
// QuickStore and the E baseline are built on: a page-shipping client-server
// architecture with 8K-byte pages, client and server buffer pools, page- and
// file-level locking, write-ahead logging with restart recovery, files of
// untyped objects, multi-page (large) objects, persistent named roots and
// counters, and a binary protocol that runs either in-process or over TCP.
package esm

import (
	"encoding/binary"
	"fmt"

	"quickstore/internal/disk"
)

// OIDSize is the serialized size of an object identifier. The paper's E
// system stores pointers inside objects as full 16-byte OIDs; this constant
// is what makes the E database ~1.6x the size of the QuickStore database
// (Table 2).
const OIDSize = 16

// SlotLarge in OID.Slot marks a multi-page (large) object; OID.Page is then
// the page of the object's descriptor and the low bits of Unique index it.
const SlotLarge = 0xFFFF

// OID identifies an object: the page holding it, the slot within the page,
// a uniquifier, and the owning file.
type OID struct {
	Page   disk.PageID
	Slot   uint16
	Unique uint16
	File   uint32
}

// NilOID is the zero OID, meaning "no object".
var NilOID OID

// IsNil reports whether the OID is the nil object id.
func (o OID) IsNil() bool { return o == NilOID }

// IsLarge reports whether the OID names a multi-page object.
func (o OID) IsLarge() bool { return o.Slot == SlotLarge }

// String formats the OID for diagnostics.
func (o OID) String() string {
	if o.IsNil() {
		return "oid(nil)"
	}
	kind := ""
	if o.IsLarge() {
		kind = "L"
	}
	return fmt.Sprintf("oid(%sf%d:p%d.s%d.u%d)", kind, o.File, o.Page, o.Slot, o.Unique)
}

// Marshal serializes the OID into buf (at least OIDSize bytes).
func (o OID) Marshal(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(o.Page))
	binary.LittleEndian.PutUint16(buf[4:], o.Slot)
	binary.LittleEndian.PutUint16(buf[6:], o.Unique)
	binary.LittleEndian.PutUint32(buf[8:], o.File)
	binary.LittleEndian.PutUint32(buf[12:], 0)
}

// UnmarshalOID reads an OID from buf.
func UnmarshalOID(buf []byte) OID {
	return OID{
		Page:   disk.PageID(binary.LittleEndian.Uint32(buf[0:])),
		Slot:   binary.LittleEndian.Uint16(buf[4:]),
		Unique: binary.LittleEndian.Uint16(buf[6:]),
		File:   binary.LittleEndian.Uint32(buf[8:]),
	}
}
