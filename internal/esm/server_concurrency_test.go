package esm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/wal"
)

// countingHook counts page reads through the volume and optionally delays
// them, widening the window in which concurrent faults of the same page
// must be deduplicated.
type countingHook struct {
	reads atomic.Int64
	delay time.Duration
}

func (h *countingHook) BeforeRead(id uint32) error {
	h.reads.Add(1)
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	return nil
}

func (h *countingHook) BeforeWrite(id uint32, pageSize int) (int, error) { return pageSize, nil }

// TestServerConcurrentReadDedup: many sessions faulting the same cold page
// at once must trigger exactly one disk read — the per-page in-flight
// dedup — and all of them must receive the page image.
func TestServerConcurrentReadDedup(t *testing.T) {
	hook := &countingHook{delay: 5 * time.Millisecond}
	vol := disk.WithHook(disk.NewMemVolume(), hook)
	srv, err := NewServer(vol, wal.NewMemLog(), ServerConfig{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := vol.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, disk.PageSize)
	img[100] = 0xAB
	if err := vol.WritePage(pid, img); err != nil {
		t.Fatal(err)
	}
	hook.reads.Store(0)

	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := srv.Handle(&Request{Op: OpReadPage, Page: uint32(pid)})
			if resp.Err != "" {
				t.Errorf("ReadPage: %s", resp.Err)
				return
			}
			if len(resp.Data) != disk.PageSize || resp.Data[100] != 0xAB {
				t.Error("reader got a wrong page image")
			}
		}()
	}
	wg.Wait()
	if n := hook.reads.Load(); n != 1 {
		t.Fatalf("%d disk reads for %d concurrent faults of one page, want 1", n, readers)
	}
	hits, misses, _ := srv.pool.Stats()
	if misses != 1 {
		t.Fatalf("pool misses = %d, want 1", misses)
	}
	_ = hits
}

// TestServerConcurrentCommitsShareForces: concurrent committers inside a
// group-commit window share physical log forces, and the commit counters
// surfaced in ServerStats account for every transaction.
func TestServerConcurrentCommitsShareForces(t *testing.T) {
	vol := disk.NewMemVolume()
	srv, err := NewServer(vol, wal.NewMemLog(), ServerConfig{
		BufferPages:  16,
		CommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 8
		txns    = 10
	)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
			for i := 0; i < txns; i++ {
				if err := c.Begin(); err != nil {
					t.Errorf("client %d: begin: %v", cl, err)
					return
				}
				if _, err := c.Counter("conc.count", 1); err != nil {
					t.Errorf("client %d: counter: %v", cl, err)
					return
				}
				if err := c.Commit(); err != nil {
					t.Errorf("client %d: commit: %v", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()

	st, err := serverStats(t, srv)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(clients * txns)
	if st.Commits != total {
		t.Fatalf("Commits = %d, want %d", st.Commits, total)
	}
	if st.LogForces >= total {
		t.Fatalf("LogForces = %d for %d commits: group commit batched nothing", st.LogForces, total)
	}
	if st.LogPiggybacks == 0 {
		t.Fatal("no piggybacked commits recorded")
	}
	t.Logf("%d commits -> %d forces, %d piggybacks", total, st.LogForces, st.LogPiggybacks)

	// The counter must have absorbed every increment.
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 8})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Counter("conc.count", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != uint64(total) {
		t.Fatalf("counter = %d, want %d", v, total)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestServerStatsUnderConcurrency hammers OpStats while other sessions
// read pages and commit; the atomics satellite means the race detector
// must stay quiet and the snapshot must always unmarshal.
func TestServerStatsUnderConcurrency(t *testing.T) {
	vol := disk.NewMemVolume()
	srv, err := NewServer(vol, wal.NewMemLog(), ServerConfig{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, err := vol.Allocate(32)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pid := uint32(base) + uint32((g*7+i)%32)
				if resp := srv.Handle(&Request{Op: OpReadPage, Page: pid}); resp.Err != "" {
					t.Errorf("read: %s", resp.Err)
					return
				}
				// Batch reads exercise the prefetch counter too.
				var payload [4]byte
				payload[0] = byte(pid)
				payload[1] = byte(pid >> 8)
				payload[2] = byte(pid >> 16)
				payload[3] = byte(pid >> 24)
				if resp := srv.Handle(&Request{Op: OpReadPages, N: 1, Data: payload[:]}); resp.Err != "" {
					t.Errorf("batch read: %s", resp.Err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if _, err := serverStats(t, srv); err != nil {
			t.Fatalf("stats snapshot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// serverStats fetches and decodes an OpStats snapshot.
func serverStats(t *testing.T, srv *Server) (*ServerStats, error) {
	t.Helper()
	c := NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 4})
	return c.ServerStats()
}
