package esm

import (
	"strings"
	"testing"

	"quickstore/internal/disk"
	"quickstore/internal/wal"
)

// newSnapServer builds an MVCC-enabled server plus a client factory.
func newSnapServer(t *testing.T, maxBytes int) (*Server, func() *Client) {
	t.Helper()
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(),
		ServerConfig{BufferPages: 64, MVCC: true, MVCCMaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	return srv, func() *Client {
		return NewClient(NewInProcTransport(srv), ClientConfig{BufferPages: 16})
	}
}

// commitBytes commits value at off on pid in its own transaction.
func commitBytes(t *testing.T, c *Client, pid disk.PageID, off int, value string) {
	t.Helper()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	i, err := c.FetchPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	data := c.PageData(i)
	old := append([]byte(nil), data[off:off+len(value)]...)
	copy(data[off:], value)
	c.LogUpdate(pid, off, old, []byte(value))
	if err := c.MarkDirty(pid); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// A snapshot session sees the state as of its begin LSN no matter what
// commits after it, and acquires no locks doing so.
func TestSnapshotReadsAreStableAndLockFree(t *testing.T) {
	srv, mk := newSnapServer(t, -1)
	w, r := mk(), mk()
	const off = 256
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	pidA, err := w.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	pidB := pidA + 1
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	commitBytes(t, w, pidA, off, "A-v1")
	commitBytes(t, w, pidB, off, "B-v1")

	grants0, waits0 := srv.locks.Stats()
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	i, err := r.FetchPage(pidA)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PageData(i)[off : off+4]; string(got) != "A-v1" {
		t.Fatalf("snap read A = %q", got)
	}

	// Overwrite both pages after the snapshot began.
	commitBytes(t, w, pidA, off, "A-v2")
	commitBytes(t, w, pidB, off, "B-v2")

	// B was never fetched in this session: it must come from the version
	// store, not the (now newer) live page.
	i, err = r.FetchPage(pidB)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PageData(i)[off : off+4]; string(got) != "B-v1" {
		t.Fatalf("snapshot at %d saw a later commit: B = %q, want B-v1", snap, got)
	}
	grants1, waits1 := srv.locks.Stats()
	if grants1 != grants0 || waits1 != waits0 {
		t.Fatalf("snapshot path touched the lock manager: grants %d->%d, waits %d->%d",
			grants0, grants1, waits0, waits1)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot moves forward.
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() <= snap {
		t.Fatalf("fresh snapshot %d did not advance past %d", r.Snapshot(), snap)
	}
	i, err = r.FetchPage(pidB)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PageData(i)[off : off+4]; string(got) != "B-v2" {
		t.Fatalf("fresh snapshot missed commit: B = %q", got)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	st := srv.mv.Stats()
	if st.Pins != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
}

// Session-state guards: no writes inside a snapshot session, no nesting,
// and servers without MVCC refuse the ops outright.
func TestSnapshotSessionGuards(t *testing.T) {
	_, mk := newSnapServer(t, -1)
	c := mk()
	if err := c.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginSnapshot(); err == nil {
		t.Fatal("nested snapshot allowed")
	}
	if err := c.Begin(); err == nil {
		t.Fatal("write transaction allowed inside a snapshot session")
	}
	if err := c.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginSnapshot(); err == nil {
		t.Fatal("snapshot allowed inside a write transaction")
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), ServerConfig{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(NewInProcTransport(srv2), ClientConfig{BufferPages: 8})
	if err := c2.BeginSnapshot(); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("MVCC-less server accepted a snapshot begin: %v", err)
	}
}

// Under a byte cap, eviction poisons only snapshots that need the evicted
// version; the session recovers by beginning a fresh snapshot.
func TestSnapshotTooOldAfterEviction(t *testing.T) {
	_, mk := newSnapServer(t, disk.PageSize) // room for one retained version
	w, r := mk(), mk()
	const off = 128
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	pid, err := w.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	commitBytes(t, w, pid, off, "v1")

	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Two more versions of the same page: the cap holds one, so the older
	// boundary the reader depends on is evicted.
	commitBytes(t, w, pid, off, "v2")
	commitBytes(t, w, pid, off, "v3")

	_, err = r.FetchPage(pid)
	if err == nil || !strings.Contains(err.Error(), "snapshot too old") {
		t.Fatalf("read below evicted boundary: %v, want snapshot-too-old", err)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	i, err := r.FetchPage(pid)
	if err != nil {
		t.Fatalf("fresh snapshot after eviction: %v", err)
	}
	if got := r.PageData(i)[off : off+2]; string(got) != "v3" {
		t.Fatalf("fresh snapshot = %q, want v3", got)
	}
	if err := r.EndSnapshot(); err != nil {
		t.Fatal(err)
	}
}
