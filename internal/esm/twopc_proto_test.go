package esm

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"quickstore/internal/disk"
)

// TestTwoPCRequestRoundTrip exercises the wire shapes the shard Router
// actually sends: a participant prepare with a commit payload, the
// coordinator's flagged prepare, both decision variants, and every
// OpResolveTx mode.
func TestTwoPCRequestRoundTrip(t *testing.T) {
	payload := make([]byte, 4+disk.PageSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cases := []Request{
		{Op: OpPrepare, Tx: 12, Page: 3, N: 77, Data: payload},
		{Op: OpPrepare, Tx: 77, Page: 3, N: 77, Mode: PrepareModeCoord, Data: payload},
		{Op: OpCommitDecision, Tx: 77, Mode: DecisionCommit | DecisionCoord},
		{Op: OpCommitDecision, Tx: 12, Mode: DecisionCommit},
		{Op: OpCommitDecision, Tx: 12}, // abort verdict: commit bit off
		{Op: OpResolveTx, Tx: 77, Mode: ResolveModeInquire},
		{Op: OpResolveTx, Tx: 77, Mode: ResolveModeForget},
		{Op: OpResolveTx, Mode: ResolveModeList},
	}
	for i, want := range cases {
		got, err := unmarshalRequest(want.marshal())
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
	// Inquiry outcomes ride Response.N; a list rides Response.Data.
	resps := []Response{
		{N: ResolveAborted},
		{N: ResolveCommitted},
		{N: ResolvePending},
		{Data: AppendResolveEntry(nil, 2, 9, 4)},
	}
	for i, want := range resps {
		got, err := unmarshalResponse(want.marshal())
		if err != nil {
			t.Fatalf("response %d: unmarshal: %v", i, err)
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("response %d: round trip mismatch:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

func TestResolveEntriesRoundTrip(t *testing.T) {
	var wire []byte
	type entry struct {
		shard uint32
		coord uint64
		local uint64
	}
	entries := []entry{
		{0, 1, 2},
		{63, 1<<63 + 5, 0}, // localTx 0: a remembered decision, not a prepare
		{7, 42, 42},
	}
	for _, e := range entries {
		wire = AppendResolveEntry(wire, e.shard, e.coord, e.local)
	}
	if len(wire) != len(entries)*ResolveEntryBytes {
		t.Fatalf("wire size %d, want %d", len(wire), len(entries)*ResolveEntryBytes)
	}
	shards, coords, locals, err := ParseResolveEntries(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != len(entries) {
		t.Fatalf("parsed %d entries, want %d", len(shards), len(entries))
	}
	for i, e := range entries {
		if shards[i] != e.shard || coords[i] != e.coord || locals[i] != e.local {
			t.Errorf("entry %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, shards[i], coords[i], locals[i], e.shard, e.coord, e.local)
		}
	}
	// The empty list is a valid payload with zero entries.
	if s, c, l, err := ParseResolveEntries(nil); err != nil || len(s)+len(c)+len(l) != 0 {
		t.Errorf("empty payload: %v (%d/%d/%d entries)", err, len(s), len(c), len(l))
	}
}

// TestResolveEntriesTruncated: every length that is not a whole number of
// entries must be rejected — a truncated list silently dropping an
// in-doubt transaction would leave it unresolved forever.
func TestResolveEntriesTruncated(t *testing.T) {
	wire := AppendResolveEntry(AppendResolveEntry(nil, 1, 2, 3), 4, 5, 6)
	for n := 0; n < len(wire); n++ {
		_, _, _, err := ParseResolveEntries(wire[:n])
		if n%ResolveEntryBytes == 0 && err != nil {
			t.Errorf("whole prefix of %d bytes rejected: %v", n, err)
		}
		if n%ResolveEntryBytes != 0 && err == nil {
			t.Errorf("torn prefix of %d bytes accepted", n)
		}
	}
}

// FuzzParseResolveEntries: arbitrary bytes never panic the parser, and
// anything it accepts re-encodes to the identical wire image.
func FuzzParseResolveEntries(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendResolveEntry(nil, 3, 9, 12))
	f.Add(make([]byte, ResolveEntryBytes-1))
	f.Add(make([]byte, 3*ResolveEntryBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		shards, coords, locals, err := ParseResolveEntries(data)
		if err != nil {
			if len(data)%ResolveEntryBytes == 0 {
				t.Fatalf("whole payload rejected: %v", err)
			}
			return
		}
		if len(shards) != len(coords) || len(coords) != len(locals) {
			t.Fatalf("ragged decode: %d/%d/%d", len(shards), len(coords), len(locals))
		}
		var again []byte
		for i := range shards {
			again = AppendResolveEntry(again, shards[i], coords[i], locals[i])
		}
		if !bytes.Equal(again, data) && !(len(data) == 0 && len(again) == 0) {
			t.Fatalf("re-encode drifted:\n got %x\nwant %x", again, data)
		}
	})
}

// TestMuxPrepareDupSeqPoisons: the 2PC frames share the multiplexed socket
// with everything else, so a duplicated response to a prepare must poison
// the connection — not ack a second, different prepare. A router seeing
// the poison treats the prepare vote as failed and aborts, which is the
// safe outcome.
func TestMuxPrepareDupSeqPoisons(t *testing.T) {
	tr := fakeServer(t, time.Second, func(conn net.Conn) {
		seq, req, err := readOneFrame(conn)
		if err != nil || req.Op != OpPrepare {
			return
		}
		frame := appendResponseFrame(nil, seq, &Response{N: 5})
		conn.Write(append(frame, frame...)) // vote delivered twice
	})
	resp, err := tr.Call(&Request{Op: OpPrepare, Tx: 1, Page: 0, N: 1, Data: nil})
	if err != nil || resp.N != 5 {
		t.Fatalf("prepare: resp=%+v err=%v", resp, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tr.Call(&Request{Op: OpCommitDecision, Tx: 1, Mode: DecisionCommit}); err != nil {
			wantBroken(t, err)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate prepare ack never poisoned the transport")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxResolveGarbagePayload: a torn ResolveModeList payload arriving
// over an otherwise healthy mux connection is a decode error at the
// resolve layer, not a transport fault — the connection stays usable.
func TestMuxResolveGarbagePayload(t *testing.T) {
	torn := make([]byte, ResolveEntryBytes+7)
	tr := fakeServer(t, time.Second, func(conn net.Conn) {
		seq, _, err := readOneFrame(conn)
		if err != nil {
			return
		}
		conn.Write(appendResponseFrame(nil, seq, &Response{Data: torn}))
		// Second call gets a well-formed empty list.
		seq, _, err = readOneFrame(conn)
		if err != nil {
			return
		}
		conn.Write(appendResponseFrame(nil, seq, &Response{}))
	})
	resp, err := tr.Call(&Request{Op: OpResolveTx, Mode: ResolveModeList})
	if err != nil {
		t.Fatalf("transport rejected a well-framed response: %v", err)
	}
	if _, _, _, err := ParseResolveEntries(resp.Data); err == nil {
		t.Fatal("torn resolve list accepted")
	}
	if resp, err := tr.Call(&Request{Op: OpResolveTx, Mode: ResolveModeList}); err != nil || len(resp.Data) != 0 {
		t.Fatalf("connection unusable after payload-level garbage: resp=%+v err=%v", resp, err)
	}
}
