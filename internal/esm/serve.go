package esm

import (
	"bufio"
	"net"
	"sync"
)

// serveWorkers bounds how many requests one connection processes
// concurrently. Workers exist so a slow request (a cold page read waiting
// on the disk) never head-of-line-blocks the requests queued behind it on
// the same socket — a commit pipelined behind a page fetch completes the
// moment the log force does.
const serveWorkers = 32

// Handler answers one protocol request. *Server is the canonical
// implementation; repl.Node satisfies it too, interposing replication
// control (op dispatch, leader fencing) in front of a swappable inner
// server — which is how one listener keeps serving across a promotion.
type Handler interface {
	Handle(req *Request) *Response
}

// netStatsServer resolves the *Server whose transport counters a handler's
// traffic should feed: the handler itself, or — for wrappers like
// repl.Node — whatever current server it exposes. May be nil (counters are
// then skipped; the note methods are nil-receiver-safe).
func netStatsServer(h Handler) *Server {
	switch v := h.(type) {
	case *Server:
		return v
	case interface{ CurrentServer() *Server }:
		return v.CurrentServer()
	}
	return nil
}

// Serve accepts connections on l and dispatches their requests to h until
// l is closed. It is intended to run in its own goroutine.
//
// Each connection runs the multiplexed protocol: a reader goroutine decodes
// frames and hands each request to a worker goroutine (at most serveWorkers
// in flight per connection), and a writer goroutine coalesces completed
// responses into single writev-style socket flushes. Responses are sent as
// workers finish — out of request order when a fast request overtakes a
// slow one — and the client's demux matches them back up by seq.
func Serve(l net.Listener, h Handler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, h)
	}
}

func serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	srv := netStatsServer(h)

	// respCh carries framed, pooled response buffers from workers to the
	// writer. Buffered so a worker finishing mid-flush does not block.
	respCh := make(chan *[]byte, serveWorkers)
	writerDone := make(chan struct{})
	go serveWriter(conn, srv, respCh, writerDone)

	var workers sync.WaitGroup
	sem := make(chan struct{}, serveWorkers)
	rd := bufio.NewReaderSize(conn, 256<<10)
	for {
		// Each frame gets its own pooled buffer: the worker decodes the
		// request in place (no-copy unmarshal) and owns the buffer until
		// its response is framed.
		frame := getBuf()
		seq, body, err := readMuxFrame(rd, frame)
		if err != nil {
			putBuf(frame)
			break
		}
		srv.noteNetRequest()
		sem <- struct{}{}
		workers.Add(1)
		go func(seq uint64, frame *[]byte, body []byte) {
			defer workers.Done()
			defer func() { <-sem }()
			defer srv.doneNetRequest()
			var resp *Response
			var req Request
			if err := req.unmarshal(body, false); err != nil {
				resp = &Response{Err: err.Error()}
			} else {
				resp = h.Handle(&req)
			}
			out := getBuf()
			*out = appendResponseFrame((*out)[:0], seq, resp)
			putBuf(frame) // handlers never retain request data past Handle
			select {
			case respCh <- out:
			case <-writerDone:
				putBuf(out)
			}
		}(seq, frame, body)
	}
	workers.Wait()
	close(respCh)
	<-writerDone
}

// serveWriter drains framed responses and coalesces everything queued into
// one vectored socket write (net.Buffers uses writev on TCP). If a write
// fails, the connection is closed — which unblocks the reader — and the
// writer keeps draining so no worker is left stuck on respCh.
func serveWriter(conn net.Conn, srv *Server, respCh <-chan *[]byte, done chan<- struct{}) {
	defer close(done)
	vecs := make(net.Buffers, 0, serveWorkers)
	used := make([]*[]byte, 0, serveWorkers)
	broken := false
	for first := range respCh {
		vecs = vecs[:0]
		used = used[:0]
		vecs = append(vecs, *first)
		used = append(used, first)
	coalesce:
		for len(used) < serveWorkers {
			select {
			case b, ok := <-respCh:
				if !ok {
					break coalesce
				}
				vecs = append(vecs, *b)
				used = append(used, b)
			default:
				break coalesce
			}
		}
		if !broken {
			var bytes int64
			for _, v := range vecs {
				bytes += int64(len(v))
			}
			if _, err := vecs.WriteTo(conn); err != nil {
				broken = true
				conn.Close()
			} else {
				srv.noteNetFlush(int64(len(used)), bytes)
			}
		}
		for _, b := range used {
			putBuf(b)
		}
	}
}
