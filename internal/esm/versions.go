package esm

import (
	"sync"

	"quickstore/internal/disk"
)

// Warm-cache coherence state (DESIGN.md §18). cohState is the server-side
// half of the inter-transaction cache-coherence protocol: a per-page
// version table (the token of the last committed image), a bounded
// previous-image cache backing delta shipping, per-transaction install
// captures, and per-session cached-page maps backing piggybacked
// invalidation hints.
//
// Tokens are LSNs (commit, CLR, or — as a fallback for pages the table
// has never seen — the page header's own LSN), but clients treat them as
// opaque and compare only for equality. Token 0 is "unversioned": it
// never matches, so anything served under it must be refetched rather
// than reused.
//
// Staleness invariant: the server answers "not modified" for (pid, token)
// only when token equals the page's current committed version, i.e. only
// when the bytes the client holds are byte-identical to the last
// committed image (modulo the 8-byte header LSN a runtime abort rewrites
// while restoring the data bytes — clients never read the header). Every
// path that changes a page's committed bytes — commit install, 2PC
// decision, abort undo, restart recovery — moves the version first or
// atomically, never after the fact.
//
// Lock order: cohState.mu ranks BELOW sim.Clock and above the pool's
// frame content latches — it is taken under Server.mu (commit/abort
// bookkeeping, like mvcc.Store.mu) and under a frame content latch (the
// abort undo bumps versions while holding the exclusive latch so readers
// can never pair new bytes with an old version), and it never acquires
// anything itself.
type cohState struct {
	mu sync.Mutex

	// ver maps a page to the token of its last committed image. Entries
	// are never evicted: a missing entry is a promise that the page's
	// bytes have not changed since server start (or recovery rebuild),
	// which the header-LSN fallback token relies on.
	ver map[disk.PageID]uint64

	// pending counts uncommitted installs per page (the steal path ships
	// dirty pages mid-transaction). While pending, the frame's bytes are
	// not the committed image, so versioned reads serve token 0 and
	// validation refuses to repair from them.
	pending map[disk.PageID]int

	// captures holds, per open transaction, the committed image (and its
	// token) of every page the transaction installed over — the base the
	// commit turns into a prev entry for delta shipping. imgBytes tracks
	// the total; past capBytes new captures drop the image (the version
	// still bumps, only the delta is lost).
	captures map[uint64]map[disk.PageID]*cohCapture
	imgBytes int

	// prev caches one previous committed image per page, keyed by the
	// token a client would still hold, so a stale cached copy can be
	// repaired with a pagedelta patch instead of a full page. Bounded by
	// capBytes; eviction is arbitrary (a miss only costs a full ship).
	prev      map[disk.PageID]*cohPrev
	prevBytes int
	capBytes  int

	// sessions back piggybacked invalidation hints: what pages each
	// client session is known to cache and at which token. Bounded maps;
	// on overflow the session is marked lost and the next commit response
	// hints "all". Hints are advisory — correctness rests on Begin
	// validation and the lock-response staleness flag.
	nextSid  uint64
	sessions map[uint64]*cohSession
	txSid    map[uint64]uint64
}

type cohCapture struct {
	img   []byte // committed image before the first install (nil if over cap)
	token uint64 // the token that image was current at
}

type cohPrev struct {
	fromToken uint64 // the token of img
	img       []byte // a full committed page image
}

type cohSession struct {
	cached map[disk.PageID]uint64
	lost   bool
}

const (
	// cohCacheBytes bounds capture + prev image memory.
	cohCacheBytes = 4 << 20
	// cohMaxSessions bounds the session map; eviction is arbitrary (a
	// dropped session just stops receiving hints).
	cohMaxSessions = 1024
	// cohMaxSessionPages bounds one session's cached-page map.
	cohMaxSessionPages = 4096
	// cohMaxHints caps the page ids piggybacked on one commit response.
	cohMaxHints = 64
)

func newCohState() *cohState {
	return &cohState{
		ver:      map[disk.PageID]uint64{},
		pending:  map[disk.PageID]int{},
		captures: map[uint64]map[disk.PageID]*cohCapture{},
		prev:     map[disk.PageID]*cohPrev{},
		capBytes: cohCacheBytes,
		sessions: map[uint64]*cohSession{},
		txSid:    map[uint64]uint64{},
	}
}

// probe returns the page's (version, pending) pair. Used as a seqlock
// around lock-free frame byte reads: sample before and after copying the
// bytes, and trust the pairing only when both samples agree and nothing
// is pending. Versions are LSNs and never repeat, and every byte-changing
// path either bumps pending first (installs) or bumps the version under
// the same content latch as the write (abort undo), so an unchanged pair
// proves the bytes read belong to that version.
func (c *cohState) probe(pid disk.PageID) (ver uint64, pending int) {
	c.mu.Lock()
	ver = c.ver[pid]
	pending = c.pending[pid]
	c.mu.Unlock()
	return ver, pending
}

// bump moves a page's version to token. The abort undo calls it while
// holding the page's exclusive content latch, right after rewriting the
// bytes, so byte change and version change are atomic for readers probing
// around a latched copy.
func (c *cohState) bump(pid disk.PageID, token uint64) {
	c.mu.Lock()
	c.ver[pid] = token
	c.mu.Unlock()
}

// captureInstall records a transaction's first install over a page:
// before holds the committed image about to be overwritten. Must be
// called BEFORE the frame bytes change — it raises pending, which is what
// keeps concurrent versioned reads from caching the mid-transaction
// bytes. Duplicate installs by the same transaction (steal then commit)
// keep the first capture.
func (c *cohState) captureInstall(tx uint64, pid disk.PageID, before []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.captures[tx]
	if m == nil {
		m = map[disk.PageID]*cohCapture{}
		c.captures[tx] = m
	}
	if _, ok := m[pid]; ok {
		return
	}
	cpt := &cohCapture{token: c.ver[pid]}
	if cpt.token == 0 && len(before) >= 8 {
		// Fallback token: the committed image's own header LSN (see
		// answer). Raw pages put object data here, which is safe only
		// because clients never retain tokens for raw pages (see
		// Client.noteToken) — nobody can present the garbage token.
		cpt.token = pageLSNOf(before)
	}
	if c.pending[pid] > 0 {
		// Another transaction's install is still unresolved (only
		// possible outside two-phase locking, e.g. a drill driving the
		// server directly): the "committed base" is not trustworthy.
		cpt.token = 0
	}
	if c.imgBytes+c.prevBytes+len(before) <= c.capBytes {
		cpt.img = append([]byte(nil), before...)
		c.imgBytes += len(cpt.img)
	}
	m[pid] = cpt
	c.pending[pid]++
}

// commitTx retires a transaction's captures at commit: every installed
// page's version becomes the commit LSN, its pre-commit image becomes the
// page's prev entry (delta base for clients still holding the old
// version), and pending drops. Also refreshes the committing session's
// cached tokens for those pages — the client installs its own shipped
// bytes under the commit LSN, so hinting it about its own commit would
// only cause a spurious revalidation.
func (c *cohState) commitTx(tx, lsn uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.captures[tx]
	sess := c.sessions[c.txSid[tx]]
	for pid, cpt := range m {
		if cpt.img != nil {
			c.putPrevLocked(pid, &cohPrev{fromToken: cpt.token, img: cpt.img})
			c.imgBytes -= len(cpt.img)
		}
		c.ver[pid] = lsn
		c.decPendingLocked(pid)
		if sess != nil {
			if _, ok := sess.cached[pid]; ok {
				sess.cached[pid] = lsn
			}
		}
	}
	delete(c.captures, tx)
	// The tx→session binding survives: the OpCommit handler still needs it
	// to take this session's piggybacked hints, and drops it afterwards
	// (dropTx).
}

// abortTx retires a transaction's captures at abort: every installed
// page's version moves to abortLSN — a fresh token nobody holds — so
// cached copies of anything the transaction touched are invalidated
// outright. (The undo path already bumped undone pages to their CLR LSNs
// under the content latch; this sweep covers installs the log had no
// before-images for, e.g. stolen raw pages.)
func (c *cohState) abortTx(tx, abortLSN uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for pid, cpt := range c.captures[tx] {
		if cpt.img != nil {
			c.imgBytes -= len(cpt.img)
		}
		c.ver[pid] = abortLSN
		c.decPendingLocked(pid)
	}
	delete(c.captures, tx)
	delete(c.txSid, tx)
}

func (c *cohState) decPendingLocked(pid disk.PageID) {
	if n := c.pending[pid]; n > 1 {
		c.pending[pid] = n - 1
	} else {
		delete(c.pending, pid)
	}
}

func (c *cohState) putPrevLocked(pid disk.PageID, p *cohPrev) {
	if old := c.prev[pid]; old != nil {
		c.prevBytes -= len(old.img)
	}
	c.prev[pid] = p
	c.prevBytes += len(p.img)
	for pidE := range c.prev {
		if c.prevBytes+c.imgBytes <= c.capBytes {
			break
		}
		if pidE == pid {
			continue
		}
		c.prevBytes -= len(c.prev[pidE].img)
		delete(c.prev, pidE)
	}
}

// answer classifies a versioned read after the caller copied the page
// bytes: ver1/pending1 are the probe taken before the copy, cur the bytes
// read. It returns the token to serve (0: uncacheable), whether the
// client's copy is current, and — when a delta is possible — the prev
// image to diff against. Called with no latches held.
func (c *cohState) answer(pid disk.PageID, clientToken uint64, cur []byte, ver1 uint64, pending1 int) (token uint64, current bool, base []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ver2, pending2 := c.ver[pid], c.pending[pid]
	if ver1 != ver2 || pending1 != pending2 || pending2 > 0 {
		// The bytes were copied concurrently with an install or an undo:
		// they may not be any committed image. Serve them (the legacy
		// unversioned read would have too) but refuse to version them.
		return 0, false, nil
	}
	token = ver2
	if token == 0 && len(cur) >= 8 {
		// Never committed over since this table was (re)built: the bytes
		// are unchanged, so their header LSN is a stable token — a real
		// LSN for header-bearing pages, which no future commit LSN can
		// collide with. Raw pages put object data here; clients discard
		// tokens for raw pages (Client.noteToken), so the garbage is
		// never presented back.
		token = pageLSNOf(cur)
	}
	if token != 0 && token == clientToken {
		return token, true, nil
	}
	if p := c.prev[pid]; p != nil && clientToken != 0 && p.fromToken == clientToken {
		return token, false, p.img
	}
	return token, false, nil
}

// isCurrent reports whether a cached (pid, token) copy still matches the
// last committed image, without reading any bytes. A missing version
// entry means the page has not been committed over since the table was
// built, so whatever token the server handed out earlier still stands.
func (c *cohState) isCurrent(pid disk.PageID, token uint64) bool {
	if token == 0 {
		return false
	}
	c.mu.Lock()
	ver := c.ver[pid]
	c.mu.Unlock()
	return ver == 0 || ver == token
}

// bindSession resolves the session id carried on OpBegin: reuse sid when
// it names a live session, mint a fresh one otherwise, and bind tx to it
// for this transaction's hint bookkeeping.
func (c *cohState) bindSession(sid, tx uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sid == 0 || c.sessions[sid] == nil {
		c.nextSid++
		sid = c.nextSid
		for evict := range c.sessions {
			if len(c.sessions) < cohMaxSessions {
				break
			}
			delete(c.sessions, evict)
		}
		c.sessions[sid] = &cohSession{cached: map[disk.PageID]uint64{}}
	}
	c.txSid[tx] = sid
	return sid
}

// dropTx forgets a transaction's session binding and captures without
// bumping versions — for transactions that never installed anything.
func (c *cohState) dropTx(tx uint64) {
	c.mu.Lock()
	delete(c.txSid, tx)
	c.mu.Unlock()
}

// noteServed records that tx's session now caches pid at token.
func (c *cohState) noteServed(tx uint64, pid disk.PageID, token uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sess := c.sessions[c.txSid[tx]]
	if sess == nil {
		return
	}
	if token == 0 {
		delete(sess.cached, pid)
		return
	}
	if _, ok := sess.cached[pid]; !ok && len(sess.cached) >= cohMaxSessionPages {
		sess.lost = true
		return
	}
	sess.cached[pid] = token
}

// takeHints collects invalidation hints to piggyback on tx's commit
// response: pages the session is known to cache whose versions have
// moved on. Hinted pages are dropped from the session map (the client
// will revalidate and the next serve re-records them). A lost session
// yields hintAll, and its map restarts from empty.
func (c *cohState) takeHints(tx uint64) (pids []disk.PageID, all bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sess := c.sessions[c.txSid[tx]]
	if sess == nil {
		return nil, false
	}
	if sess.lost {
		sess.lost = false
		sess.cached = map[disk.PageID]uint64{}
		return nil, true
	}
	for pid, token := range sess.cached {
		if len(pids) >= cohMaxHints {
			break
		}
		if ver := c.ver[pid]; ver != 0 && ver != token {
			pids = append(pids, pid)
			delete(sess.cached, pid)
		}
	}
	return pids, false
}

// rebuildVersionTable reconstructs the version table after restart
// recovery from the page headers themselves: every allocated page with a
// nonzero header LSN gets that LSN as its version. The scan must cover
// the whole volume, not just the recovered log tail — a page committed
// over and then checkpoint-truncated out of the log would otherwise keep
// ver==0, which validates ANY pre-crash token as current. Header LSNs
// are update/CLR record LSNs; commit-record LSNs (the tokens clients
// hold) are distinct LSNs, and WAL LSNs are monotone byte positions that
// survive truncation and reopen, so no token handed out before the crash
// can collide with a rebuilt entry: a client whose cached page changed
// always refetches, never gets a too-old "not modified". (Pages whose
// header is not a real LSN — raw large-object data — are entered with
// whatever their first 8 bytes say; that is safe because clients never
// retain tokens for raw pages, see Client.noteToken.)
// Runs before the server is shared.
func (s *Server) rebuildVersionTable() {
	buf := make([]byte, disk.PageSize)
	n := s.vol.NumPages()
	for pid := disk.PageID(1); uint32(pid) < n; pid++ {
		if err := s.vol.ReadPage(pid, buf); err != nil {
			continue
		}
		if lsn := pageLSNOf(buf); lsn != 0 {
			s.coh.bump(pid, lsn)
		}
	}
}
