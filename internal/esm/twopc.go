package esm

import (
	"encoding/binary"
	"fmt"

	"quickstore/internal/disk"
	"quickstore/internal/faultinject"
	"quickstore/internal/lock"
	"quickstore/internal/wal"
)

// Two-phase commit participant state (internal/shard's presumed-abort
// protocol, DESIGN.md §16). A cross-shard transaction commits in two
// phases: every participant prepares (updates durable, locks held, outcome
// open), then the coordinator logs a single RecDecision — its own commit
// record — and the verdict fans out. Abort is the presumed outcome: no
// decision record anywhere means abort, so the abort path logs nothing
// beyond the usual RecAbort and a restarted coordinator answers inquiries
// for unknown transactions with "aborted".

// preparedTx is one participant-side prepared transaction (under
// Server.mu).
type preparedTx struct {
	coordShard uint32  // shard id of the transaction's coordinator
	coordTx    uint64  // coordinator-local transaction id
	prepareLSN wal.LSN // the RecPrepare's LSN
	coord      bool    // this server wrote the coordinator's prepare
	recovered  bool    // survived a restart; eligible for external resolution
}

// prepare votes transaction tx into the prepared state: the shipped dirty
// pages (Data, same layout as commit) are installed, a RecPrepare is
// appended and forced, and the transaction's locks stay held. coordShard
// and coordTx name the coordinator; mode carries PrepareModeCoord on the
// coordinator's own prepare. After a successful prepare the transaction
// can no longer be aborted unilaterally by a crash of this server alone —
// restart holds it in doubt until the coordinator's verdict arrives.
func (s *Server) prepare(tx uint64, coordShard uint32, coordTx uint64, mode uint8, data []byte) (wal.LSN, error) {
	const rec = 4 + disk.PageSize
	if len(data)%rec != 0 {
		return 0, fmt.Errorf("esm: malformed prepare payload (%d bytes)", len(data))
	}
	for p := 0; p < len(data); p += rec {
		pid := disk.PageID(binary.LittleEndian.Uint32(data[p:]))
		if err := s.installPage(tx, pid, data[p+4:p+rec]); err != nil {
			return 0, err
		}
	}
	if err := s.fault.Hit(faultinject.PtPrepareAfterInstall); err != nil {
		return 0, err
	}
	var flags uint16
	if mode&PrepareModeCoord != 0 {
		flags |= wal.PrepareCoord
	}
	coordTxB := make([]byte, 8)
	binary.LittleEndian.PutUint64(coordTxB, coordTx)
	s.mu.Lock()
	if !s.active[tx] {
		s.mu.Unlock()
		return 0, fmt.Errorf("esm: prepare of unknown tx %d", tx)
	}
	lsn := s.log.Append(wal.Record{
		PrevLSN: s.lastTxLSN[tx],
		Tx:      tx,
		Type:    wal.RecPrepare,
		Page:    coordShard,
		Off:     flags,
		New:     coordTxB,
	})
	s.lastTxLSN[tx] = lsn
	s.prepared[tx] = &preparedTx{
		coordShard: coordShard,
		coordTx:    coordTx,
		prepareLSN: lsn,
		coord:      mode&PrepareModeCoord != 0,
	}
	s.mu.Unlock()
	if err := s.fault.Hit(faultinject.PtPrepareBeforeFlush); err != nil {
		return 0, err
	}
	if err := s.log.FlushCommit(lsn); err != nil {
		return 0, err
	}
	if err := s.fault.Hit(faultinject.PtPrepareAfterFlush); err != nil {
		return 0, err
	}
	// The prepared state must be as durable as a commit: with replication
	// attached, the vote is not cast until a quorum holds the prepare
	// record — otherwise a leader failover could forget a vote the
	// coordinator already counted.
	if err := s.writeCatalogIfDirty(); err != nil {
		return 0, err
	}
	if q := s.replWaiter(); q != nil {
		s.mu.Lock()
		catV := s.catVersion
		s.mu.Unlock()
		if err := q.WaitQuorum(lsn, catV); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// commitDecision applies the coordinator's verdict to a prepared
// transaction. On the coordinator itself (DecisionCoord) a commit logs the
// single RecDecision record — the transaction's commit record AND the
// durable verdict participants will ask for; on a plain participant it
// logs an ordinary RecCommit. Abort (no DecisionCommit bit) takes the
// normal abort path: under presumed abort the verdict needs no record of
// its own. The commit tail mirrors commit(): force, catalog, quorum gate,
// then lock release.
func (s *Server) commitDecision(tx uint64, mode uint8) (wal.LSN, error) {
	if mode&DecisionCommit == 0 {
		return 0, s.abort(tx)
	}
	coord := mode&DecisionCoord != 0
	s.mu.Lock()
	p := s.prepared[tx]
	if p == nil {
		if coord {
			if lsn, ok := s.decisions[tx]; ok {
				// Duplicate decision delivery (a resolver raced the
				// router): the verdict is already durable.
				s.mu.Unlock()
				//qsvet:ignore ackorder the RecDecision this lsn names was already forced by the delivery that logged it; a duplicate ack re-promises durable state
				return lsn, nil
			}
		}
		s.mu.Unlock()
		return 0, fmt.Errorf("esm: commit decision for unprepared tx %d", tx)
	}
	rtype := wal.RecCommit
	if coord {
		rtype = wal.RecDecision
	}
	lsn := s.log.Append(wal.Record{PrevLSN: s.lastTxLSN[tx], Tx: tx, Type: rtype})
	s.lastTxLSN[tx] = lsn
	if lsn > s.lastCommitLSN {
		s.lastCommitLSN = lsn
	}
	if coord {
		// Remembered for OpResolveTx inquiries until every participant
		// acknowledged the outcome (ResolveModeForget). Also pins the
		// checkpoint cut: the record must survive truncation so a
		// re-crashed coordinator still finds the verdict in its log.
		s.decisions[tx] = lsn
	}
	if s.mv != nil {
		s.mv.Commit(tx, lsn)
	}
	// The version table moves with the decision LSN, same as commit().
	// Sharded clients never open coherence sessions, so the hint state
	// commitTx retains is dropped immediately.
	s.coh.commitTx(tx, uint64(lsn))
	s.coh.dropTx(tx)
	s.mu.Unlock()
	if err := s.fault.Hit(faultinject.PtDecisionBeforeFlush); err != nil {
		return 0, err
	}
	if err := s.log.FlushCommit(lsn); err != nil {
		return 0, err
	}
	if err := s.fault.Hit(faultinject.PtDecisionAfterFlush); err != nil {
		return 0, err
	}
	if err := s.writeCatalogIfDirty(); err != nil {
		return 0, err
	}
	if q := s.replWaiter(); q != nil {
		s.mu.Lock()
		catV := s.catVersion
		s.mu.Unlock()
		if err := q.WaitQuorum(lsn, catV); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	delete(s.active, tx)
	delete(s.lastTxLSN, tx)
	delete(s.firstTxLSN, tx)
	delete(s.prepared, tx)
	s.mu.Unlock()
	s.locks.ReleaseAll(tx)
	s.commits.Add(1)
	return lsn, nil
}

// resolveTx answers presumed-abort inquiries. Inquire: a participant (or a
// sweep resolver on its behalf) asks this server — as coordinator — for
// the outcome of coordinator-local transaction req.Tx. Forget: every
// participant has acknowledged the verdict; the remembered decision (and
// its checkpoint-cut pin) is dropped. List: report this server's own
// recovered in-doubt participant transactions, plus its remembered
// decisions (localTx 0), so a sweep resolver can drive resolution without
// prior knowledge.
func (s *Server) resolveTx(req *Request) (*Response, error) {
	switch req.Mode {
	case ResolveModeInquire:
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.decisions[req.Tx]; ok {
			return &Response{N: ResolveCommitted}, nil
		}
		if s.active[req.Tx] || s.prepared[req.Tx] != nil {
			// Still live here: the router is mid-protocol. The resolver
			// must not presume abort while the verdict is being formed.
			return &Response{N: ResolvePending}, nil
		}
		// No decision, no live transaction: presumed abort. This is the
		// case a restarted coordinator answers for every transaction it
		// crashed out of before logging a decision.
		return &Response{N: ResolveAborted}, nil

	case ResolveModeForget:
		s.mu.Lock()
		delete(s.decisions, req.Tx)
		s.mu.Unlock()
		return nil, nil

	case ResolveModeList:
		s.mu.Lock()
		defer s.mu.Unlock()
		var out []byte
		for tx, p := range s.prepared {
			if !p.recovered {
				// Live prepared transactions belong to their router;
				// externally resolving one would race the decision fan-out.
				continue
			}
			out = AppendResolveEntry(out, p.coordShard, p.coordTx, tx)
		}
		for tx := range s.decisions {
			out = AppendResolveEntry(out, 0, tx, 0)
		}
		return &Response{N: uint64(len(out) / ResolveEntryBytes), Data: out}, nil
	}
	return nil, fmt.Errorf("esm: unknown resolve mode %d", req.Mode)
}

// registerInDoubt installs restart recovery's in-doubt transactions into
// the server's live state: held active (their records pin the checkpoint
// cut through firstTxLSN), marked prepared-and-recovered (eligible for
// external resolution), and their updated pages re-locked exclusively so
// no new transaction reads or overwrites uncommitted data while the
// verdict is outstanding. Runs before the server is shared.
func (s *Server) registerInDoubt(indoubt map[uint64]*wal.InDoubt) error {
	for tx, d := range indoubt {
		s.active[tx] = true
		s.firstTxLSN[tx] = d.FirstLSN
		s.lastTxLSN[tx] = d.PrepareLSN
		s.prepared[tx] = &preparedTx{
			coordShard: d.CoordShard,
			coordTx:    d.CoordTx,
			prepareLSN: d.PrepareLSN,
			recovered:  true,
		}
		seen := map[uint32]bool{}
		for _, pid := range d.Pages {
			if seen[pid] {
				continue
			}
			seen[pid] = true
			if err := s.locks.Acquire(tx, lock.Resource{Kind: lock.KindPage, ID: uint64(pid)}, lock.Exclusive); err != nil {
				return fmt.Errorf("esm: re-locking in-doubt page %d: %w", pid, err)
			}
		}
	}
	return nil
}

// InDoubtCount reports the number of transactions currently held in doubt
// (live or recovered). Test and drill observability.
func (s *Server) InDoubtCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

// DecisionCount reports the number of remembered (unforgotten) commit
// decisions this server holds as a coordinator.
func (s *Server) DecisionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.decisions)
}
