package esm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"quickstore/internal/disk"
	"quickstore/internal/faultinject"
	"quickstore/internal/wal"
)

// startServer spins a real TCP server over a fresh in-memory store and
// returns its address. The listener and server die with the test.
func startServer(t testing.TB, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(disk.NewMemVolume(), wal.NewMemLog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, startListener(t, srv)
}

func startListener(t testing.TB, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, srv)
	return l.Addr().String()
}

// TestMuxSharedByConcurrentSessions runs eight whole client sessions over
// ONE multiplexed connection: begins, faulted page reads, updates, and
// commits all interleave on the socket. Under -race this is the
// demux/coalescing correctness test; the values check catches any
// response delivered to the wrong call.
func TestMuxSharedByConcurrentSessions(t *testing.T) {
	_, addr := startServer(t, ServerConfig{BufferPages: 128})
	tr, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Seed: one file with 64 objects, each holding its index.
	seed := NewClient(tr, ClientConfig{BufferPages: 32})
	if err := seed.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := seed.CreateFile("mux")
	if err != nil {
		t.Fatal(err)
	}
	cl := seed.NewCluster(fid)
	var oids []OID
	for i := 0; i < 64; i++ {
		oid, data, err := seed.CreateObject(cl, 64)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(data, uint64(i))
		oids = append(oids, oid)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := NewClient(tr, ClientConfig{BufferPages: 4})
			for txn := 0; txn < 6; txn++ {
				if err := c.Begin(); err != nil {
					errs[s] = err
					return
				}
				for i := 0; i < len(oids); i++ {
					idx := (i*7 + s*13) % len(oids)
					data, _, err := c.ReadObject(oids[idx])
					if err != nil {
						errs[s] = fmt.Errorf("read %d: %w", idx, err)
						return
					}
					if got := binary.LittleEndian.Uint64(data); got != uint64(idx) {
						errs[s] = fmt.Errorf("object %d holds %d: response delivered to wrong call?", idx, got)
						return
					}
				}
				if err := c.Commit(); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
	}
	st := tr.Stats()
	if st.Calls == 0 || st.Flushes == 0 || st.Frames < st.Flushes {
		t.Fatalf("implausible transport stats: %+v", st)
	}
	if st.InFlightHW < 2 {
		t.Errorf("in-flight high water = %d; concurrent sessions never overlapped on the socket", st.InFlightHW)
	}
}

// fakeServer pairs a MuxTransport with a scripted peer on net.Pipe.
func fakeServer(t *testing.T, timeout time.Duration, script func(conn net.Conn)) *MuxTransport {
	t.Helper()
	cli, srv := net.Pipe()
	go script(srv)
	tr := NewMuxTransport(cli, timeout)
	t.Cleanup(func() { tr.Close() })
	return tr
}

// readOneFrame pulls one framed request off the scripted server's end.
func readOneFrame(conn net.Conn) (seq uint64, req *Request, err error) {
	seq, body, err := readMuxFrame(conn, new([]byte))
	if err != nil {
		return 0, nil, err
	}
	req, err = unmarshalRequest(body)
	return seq, req, err
}

func wantBroken(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("call on poisoned transport succeeded")
	}
	if !errors.Is(err, ErrTransportBroken) {
		t.Fatalf("err = %v, want ErrTransportBroken", err)
	}
	if faultinject.IsTransient(err) {
		t.Fatalf("broken-transport error classified transient (would be retried into a desynced stream): %v", err)
	}
}

// TestMuxUnknownSeqPoisons: a response bearing a sequence number that was
// never issued must poison the connection, failing the outstanding call.
func TestMuxUnknownSeqPoisons(t *testing.T) {
	tr := fakeServer(t, time.Second, func(conn net.Conn) {
		if _, _, err := readOneFrame(conn); err != nil {
			return
		}
		conn.Write(appendResponseFrame(nil, 999, &Response{}))
	})
	_, err := tr.Call(&Request{Op: OpBegin})
	wantBroken(t, err)
	_, err = tr.Call(&Request{Op: OpBegin})
	wantBroken(t, err)
}

// TestMuxDuplicateSeqPoisons: answering one request twice is a framing
// violation — the second response must poison, not panic or mis-deliver.
func TestMuxDuplicateSeqPoisons(t *testing.T) {
	tr := fakeServer(t, time.Second, func(conn net.Conn) {
		seq, _, err := readOneFrame(conn)
		if err != nil {
			return
		}
		frame := appendResponseFrame(nil, seq, &Response{N: 7})
		conn.Write(append(frame, frame...)) // the same response, twice
	})
	resp, err := tr.Call(&Request{Op: OpBegin})
	if err != nil || resp.N != 7 {
		t.Fatalf("first call: resp=%+v err=%v", resp, err)
	}
	// The duplicate poisons the demux loop asynchronously; every call
	// observes it once it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tr.Call(&Request{Op: OpBegin}); err != nil {
			wantBroken(t, err)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate seq never poisoned the transport")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxGarbageFramesPoison: runt, oversized, and truncated frames make
// the stream unsynchronizable; the transport must fail cleanly.
func TestMuxGarbageFramesPoison(t *testing.T) {
	cases := map[string][]byte{
		"runt":      {3, 0, 0, 0, 1, 2, 3},
		"oversized": {0, 0, 0, 0x80, 1, 2, 3, 4, 5, 6, 7, 8},
		"truncated": appendResponseFrame(nil, 1, &Response{Data: []byte{1, 2, 3}})[:10],
		"shortbody": {10, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF}, // body fails response decode
	}
	for name, wire := range cases {
		t.Run(name, func(t *testing.T) {
			tr := fakeServer(t, time.Second, func(conn net.Conn) {
				if _, _, err := readOneFrame(conn); err != nil {
					return
				}
				conn.Write(wire)
				// Leave the conn open: the client must not need EOF to
				// notice the damage.
				time.Sleep(50 * time.Millisecond)
				conn.Close()
			})
			_, err := tr.Call(&Request{Op: OpBegin})
			wantBroken(t, err)
		})
	}
}

// TestMuxReadDeadline: a server that accepts the request and then stalls
// must not hang the call forever — the armed read deadline poisons the
// connection.
func TestMuxReadDeadline(t *testing.T) {
	tr := fakeServer(t, 100*time.Millisecond, func(conn net.Conn) {
		readOneFrame(conn)
		// never respond
		time.Sleep(5 * time.Second)
		conn.Close()
	})
	start := time.Now()
	_, err := tr.Call(&Request{Op: OpBegin})
	wantBroken(t, err)
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("deadline took %v to fire", took)
	}
}

// TestMuxIdleConnectionDoesNotTimeOut: the read deadline is armed only
// while calls are outstanding, so an idle connection stays usable past the
// timeout.
func TestMuxIdleConnectionDoesNotTimeOut(t *testing.T) {
	_, addr := startServer(t, ServerConfig{BufferPages: 32})
	tr, err := DialTCPTimeout(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Call(&Request{Op: OpBegin}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // several timeouts of idleness
	if _, err := tr.Call(&Request{Op: OpStats}); err != nil {
		t.Fatalf("idle connection went bad: %v", err)
	}
}

// TestLockstepSeqMismatchPoisons: the lock-step baseline verifies the
// response seq; a desynchronized stream poisons instead of silently
// feeding one call another call's bytes — the bug this PR's fix removes.
func TestLockstepSeqMismatchPoisons(t *testing.T) {
	cli, srvConn := net.Pipe()
	go func() {
		if _, _, err := readOneFrame(srvConn); err != nil {
			return
		}
		srvConn.Write(appendResponseFrame(nil, 42, &Response{})) // wrong seq
	}()
	tr := NewLockstepTransport(cli, time.Second)
	defer tr.Close()
	_, err := tr.Call(&Request{Op: OpBegin})
	wantBroken(t, err)
	_, err = tr.Call(&Request{Op: OpBegin})
	wantBroken(t, err)
}

// TestLockstepMidCallIOErrorPoisons is the regression test for the
// desynchronized-stream bug: a mid-call I/O failure must leave the
// transport refusing further calls, and — per the PR 2 retry policy — the
// client must NOT re-send even retryable requests over it (a transport
// error means the session is gone, not a transient server fault).
func TestLockstepMidCallIOErrorPoisons(t *testing.T) {
	for _, mode := range []string{"lockstep", "mux"} {
		t.Run(mode, func(t *testing.T) {
			cli, srvConn := net.Pipe()
			go func() {
				readOneFrame(srvConn)
				srvConn.Close() // die mid-call, after consuming the request
			}()
			var tr Transport
			if mode == "lockstep" {
				tr = NewLockstepTransport(cli, time.Second)
			} else {
				tr = NewMuxTransport(cli, time.Second)
			}
			defer tr.Close()
			c := NewClient(tr, ClientConfig{
				BufferPages: 4,
				Retry:       RetryPolicy{MaxAttempts: 5},
			})
			err := c.Begin()
			wantBroken(t, err)
			if got := c.Retries(); got != 0 {
				t.Fatalf("client retried %d times over a broken transport", got)
			}
		})
	}
}

// transientReadHook fails the first `fails` page reads of pid with the
// injected transient error, then heals.
type transientReadHook struct {
	mu    sync.Mutex
	pid   uint32
	fails int
}

func (h *transientReadHook) BeforeRead(id uint32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id == h.pid && h.fails > 0 {
		h.fails--
		return faultinject.ErrTransient
	}
	return nil
}

func (h *transientReadHook) BeforeWrite(id uint32, pageSize int) (int, error) {
	return pageSize, nil
}

// TestTransientRetryOverTCP: the PR 2 retry policy keeps working across the
// multiplexed transport — a transient server-side fault travels back in
// Response.Err, is classified transient, and the re-sent request succeeds.
func TestTransientRetryOverTCP(t *testing.T) {
	hook := &transientReadHook{fails: 2}
	vol := disk.WithHook(disk.NewMemVolume(), hook)
	srv, err := NewServer(vol, wal.NewMemLog(), ServerConfig{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	addr := startListener(t, srv)

	tr, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	seed := NewClient(tr, ClientConfig{BufferPages: 8})
	if err := seed.Begin(); err != nil {
		t.Fatal(err)
	}
	fid, err := seed.CreateFile("retry")
	if err != nil {
		t.Fatal(err)
	}
	oid, data, err := seed.CreateObject(seed.NewCluster(fid), 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "durable")
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := srv.DropCaches(); err != nil {
		t.Fatal(err)
	}
	hook.mu.Lock()
	hook.pid = uint32(oid.Page)
	hook.fails = 2
	hook.mu.Unlock()

	c := NewClient(tr, ClientConfig{BufferPages: 8, Retry: RetryPolicy{MaxAttempts: 4}})
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadObject(oid)
	if err != nil {
		t.Fatalf("read through transient faults: %v", err)
	}
	if !bytes.HasPrefix(got, []byte("durable")) {
		t.Fatalf("read %q", got[:7])
	}
	if c.Retries() == 0 {
		t.Fatal("transient fault healed without any retry — hook never fired?")
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFramingAllocs pins the zero-allocation guarantee of the pooled
// framing path: encoding a framed request, reading it back, decoding it
// in place, and doing the same for the response must not allocate in
// steady state.
func TestFramingAllocs(t *testing.T) {
	assertFramingAllocFree(t)
}

func assertFramingAllocFree(t testing.TB) {
	t.Helper()
	req := &Request{Op: OpWritePage, Tx: 3, Page: 9, Data: make([]byte, disk.PageSize)}
	resp := &Response{Page: 9, N: 1, Data: make([]byte, disk.PageSize)}
	buf := make([]byte, 0, 64<<10)
	scratch := new([]byte)
	*scratch = make([]byte, 0, 64<<10)
	rd := bytes.NewReader(nil)
	var reqOut Request
	var respOut Response
	allocs := testing.AllocsPerRun(200, func() {
		buf = appendRequestFrame(buf[:0], 7, req)
		rd.Reset(buf)
		seq, body, err := readMuxFrame(rd, scratch)
		if err != nil || seq != 7 {
			t.Fatalf("request frame: seq=%d err=%v", seq, err)
		}
		if err := reqOut.unmarshal(body, false); err != nil {
			t.Fatal(err)
		}
		buf = appendResponseFrame(buf[:0], 7, resp)
		rd.Reset(buf)
		if _, body, err = readMuxFrame(rd, scratch); err != nil {
			t.Fatal(err)
		}
		if err := respOut.unmarshal(body, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("framing path allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkTransportCall measures one OpReadPage round trip over a real
// loopback socket on the multiplexed transport, and (as a guard, not a
// measurement) asserts the pooled framing path stays allocation-free.
func BenchmarkTransportCall(b *testing.B) {
	assertFramingAllocFree(b)
	srv, addr := startServer(b, ServerConfig{BufferPages: 64})
	pid, err := srv.Volume().Allocate(1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := DialTCP(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	req := &Request{Op: OpReadPage, Page: uint32(pid)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := tr.Call(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Err != "" {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkTransportCallPipelined is the same round trip with 16 callers
// sharing the socket: the gap to BenchmarkTransportCall is what request
// coalescing and response pipelining buy.
func BenchmarkTransportCallPipelined(b *testing.B) {
	srv, addr := startServer(b, ServerConfig{BufferPages: 64})
	pid, err := srv.Volume().Allocate(1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := DialTCP(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := &Request{Op: OpReadPage, Page: uint32(pid)}
		for pb.Next() {
			if _, err := tr.Call(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
