package esm

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestValidateEntriesRoundTrip(t *testing.T) {
	var entries []byte
	wantPids := []uint32{1, 7, 0xFFFFFFFF}
	wantTokens := []uint64{0, 42, 1<<63 + 5}
	for i := range wantPids {
		entries = AppendValidateEntry(entries, wantPids[i], wantTokens[i])
	}
	pids, tokens, err := ParseValidateEntries(entries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pids, wantPids) || !reflect.DeepEqual(tokens, wantTokens) {
		t.Fatalf("round trip: pids=%v tokens=%v", pids, tokens)
	}

	// Count mismatch with the declared N must be rejected, both ways.
	if _, _, err := ParseValidateEntries(entries, 2); err == nil {
		t.Error("payload with more entries than declared accepted")
	}
	if _, _, err := ParseValidateEntries(entries, 4); err == nil {
		t.Error("payload with fewer entries than declared accepted")
	}
	// Ragged payloads (not a multiple of the entry size) must be rejected.
	for cut := 1; cut < ValidateReqEntryBytes; cut++ {
		if _, _, err := ParseValidateEntries(entries[:len(entries)-cut], 3); err == nil {
			t.Errorf("ragged payload (cut %d) accepted", cut)
		}
	}
}

func TestValidateResponseRoundTrip(t *testing.T) {
	stale := []bool{false, true, true, false, true, false, false, false, true, false}
	repairs := []ValidateRepair{
		{Page: 2, Kind: PageDelta, Token: 77, Patch: []byte{0, 0, 2, 0, 9, 9}},
		{Page: 4, Kind: PageFull, Token: 78, Patch: bytes.Repeat([]byte{0xAB}, 64)},
		{Page: 8, Kind: PageFull, Token: 79}, // empty payload is legal on the wire
	}
	data := AppendValidateResponse(nil, stale, repairs)
	gotStale, gotRepairs, err := ParseValidateResponse(data, len(stale))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotStale, stale) {
		t.Errorf("stale bitmap: got %v want %v", gotStale, stale)
	}
	if !reflect.DeepEqual(gotRepairs, repairs) {
		t.Errorf("repairs:\n got %+v\nwant %+v", gotRepairs, repairs)
	}

	// Zero entries round-trips too (a session with nothing resident).
	data = AppendValidateResponse(nil, nil, nil)
	gotStale, gotRepairs, err = ParseValidateResponse(data, 0)
	if err != nil || len(gotStale) != 0 || len(gotRepairs) != 0 {
		t.Fatalf("empty response: stale=%v repairs=%v err=%v", gotStale, gotRepairs, err)
	}
}

// TestValidateResponseLyingBitmap: a response whose declared bit count
// disagrees with the number of entries the client sent must be rejected —
// a short bitmap silently marking fewer pages stale than asked would turn
// a framing bug into a stale read.
func TestValidateResponseLyingBitmap(t *testing.T) {
	stale := []bool{true, false, true}
	data := AppendValidateResponse(nil, stale, nil)
	if _, _, err := ParseValidateResponse(data, 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{0, 1, 2, 4, 64} {
		if _, _, err := ParseValidateResponse(data, want); err == nil {
			t.Errorf("bit count 3 accepted against %d entries", want)
		}
	}
	// Declared count larger than the bitmap actually present.
	bad := append([]byte(nil), data...)
	bad[0] = 200 // claims 200 bits; only one bitmap byte follows
	if _, _, err := ParseValidateResponse(bad, 200); err == nil {
		t.Error("bitmap shorter than its declared bit count accepted")
	}
}

// TestValidateResponseTruncatedRepairs: every proper prefix that cuts into
// the repair stream must fail cleanly — truncated headers, truncated delta
// payloads, and payload lengths that lie past the end of the buffer.
func TestValidateResponseTruncatedRepairs(t *testing.T) {
	stale := []bool{true, true}
	repairs := []ValidateRepair{
		{Page: 1, Kind: PageDelta, Token: 5, Patch: []byte{0, 0, 4, 0, 1, 2, 3, 4}},
		{Page: 2, Kind: PageFull, Token: 6, Patch: bytes.Repeat([]byte{7}, 32)},
	}
	data := AppendValidateResponse(nil, stale, repairs)
	whole := 4 + 1 // count + bitmap for 2 bits
	// A prefix ending exactly between repairs is a legal (shorter) stream;
	// every other cut must be rejected.
	boundary := map[int]bool{whole + 17 + len(repairs[0].Patch): true}
	for n := whole + 1; n < len(data); n++ {
		if boundary[n] {
			continue
		}
		if _, _, err := ParseValidateResponse(data[:n], 2); err == nil {
			t.Errorf("repair stream truncated to %d bytes accepted", n)
		}
	}
	// A repair whose payload length points past the end of the buffer.
	bad := append([]byte(nil), data...)
	bad[whole+13] = 0xFF // first repair's plen low byte
	bad[whole+14] = 0xFF
	if _, _, err := ParseValidateResponse(bad, 2); err == nil {
		t.Error("repair with lying payload length accepted")
	}
}

func FuzzParseValidateResponse(f *testing.F) {
	f.Add(AppendValidateResponse(nil, []bool{true, false}, []ValidateRepair{
		{Page: 1, Kind: PageDelta, Token: 5, Patch: []byte{0, 0, 2, 0, 1, 2}},
	}), 2)
	f.Add(AppendValidateResponse(nil, nil, nil), 0)
	f.Add([]byte{200, 0, 0, 0}, 3)
	f.Fuzz(func(t *testing.T, data []byte, want int) {
		if want < 0 || want > 1<<16 {
			return
		}
		stale, repairs, err := ParseValidateResponse(data, want)
		if err != nil {
			return
		}
		if len(stale) != want {
			t.Fatalf("accepted response with %d bits against %d entries", len(stale), want)
		}
		// Whatever decoded must re-encode to a payload that decodes to the
		// same verdicts (the repair stream is self-delimiting).
		again, _, err := ParseValidateResponse(AppendValidateResponse(nil, stale, repairs), want)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(again, stale) {
			t.Fatal("re-encoded bitmap changed")
		}
	})
}

func FuzzParseValidateEntries(f *testing.F) {
	f.Add(AppendValidateEntry(nil, 7, 42), uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, want uint64) {
		pids, tokens, err := ParseValidateEntries(data, want)
		if err != nil {
			return
		}
		if uint64(len(pids)) != want || uint64(len(tokens)) != want {
			t.Fatalf("accepted %d/%d entries against declared %d", len(pids), len(tokens), want)
		}
	})
}

// TestMuxDuplicateSeqPoisonsValidate: a duplicated response to an
// OpValidatePages call is a framing violation like any other — the
// duplicate must poison the transport, and the retry layer must NOT
// replay the validate against a poisoned stream in a way that delivers
// another call's bytes as repair verdicts.
func TestMuxDuplicateSeqPoisonsValidate(t *testing.T) {
	entries := AppendValidateEntry(nil, 3, 99)
	reply := AppendValidateResponse(nil, []bool{false}, nil)
	tr := fakeServer(t, time.Second, func(conn net.Conn) {
		seq, _, err := readOneFrame(conn)
		if err != nil {
			return
		}
		frame := appendResponseFrame(nil, seq, &Response{N: 1, Data: reply})
		conn.Write(append(frame, frame...)) // the same response, twice
	})
	resp, err := tr.Call(&Request{Op: OpValidatePages, N: 1, Data: entries})
	if err != nil {
		t.Fatalf("first call: %v", err)
	}
	if _, _, err := ParseValidateResponse(resp.Data, 1); err != nil {
		t.Fatalf("first response: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tr.Call(&Request{Op: OpValidatePages, N: 1, Data: entries}); err != nil {
			wantBroken(t, err)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate seq never poisoned the transport")
		}
		time.Sleep(time.Millisecond)
	}
}
