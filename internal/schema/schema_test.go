package schema

import (
	"testing"
	"testing/quick"
)

var part = Type{Name: "Part", Fields: []Field{
	{Name: "id", Kind: I32},
	{Name: "tag", Kind: Bytes, Size: 10},
	{Name: "next", Kind: Ref},
	{Name: "count", Kind: I64},
	{Name: "other", Kind: Ref},
}}

func TestLayoutOffsets(t *testing.T) {
	l := part.LayoutFor(8)
	// id@0, tag@4..14, next aligned to 8 -> 16, count@24, other@32.
	want := []int{0, 4, 16, 24, 32}
	for i, w := range want {
		if l.Offsets[i] != w {
			t.Errorf("field %d offset = %d, want %d", i, l.Offsets[i], w)
		}
	}
	if l.Size != 40 {
		t.Errorf("size = %d, want 40", l.Size)
	}
	if len(l.RefOffsets) != 2 || l.RefOffsets[0] != 16 || l.RefOffsets[1] != 32 {
		t.Errorf("ref offsets = %v", l.RefOffsets)
	}
}

func TestLayoutWideRefs(t *testing.T) {
	l8 := part.LayoutFor(8)
	l16 := part.LayoutFor(16)
	if l16.Size <= l8.Size {
		t.Errorf("16-byte refs did not grow the object: %d vs %d", l16.Size, l8.Size)
	}
	// 2 refs x 8 extra bytes.
	if l16.Size != l8.Size+16 {
		t.Errorf("size growth = %d, want 16", l16.Size-l8.Size)
	}
}

func TestPaddedLayout(t *testing.T) {
	l8 := part.LayoutFor(8)
	l16 := part.LayoutFor(16)
	p := part.PaddedLayoutFor(8, l16.Size)
	if p.Size != l16.Size {
		t.Errorf("padded size = %d, want %d", p.Size, l16.Size)
	}
	// Field offsets stay at the 8-byte-ref positions.
	for i := range l8.Offsets {
		if p.Offsets[i] != l8.Offsets[i] {
			t.Errorf("padding moved field %d: %d vs %d", i, p.Offsets[i], l8.Offsets[i])
		}
	}
	// Padding smaller than natural size is a no-op.
	q := part.PaddedLayoutFor(8, 8)
	if q.Size != l8.Size {
		t.Errorf("under-padding changed size: %d", q.Size)
	}
}

func TestFieldIndex(t *testing.T) {
	if part.FieldIndex("count") != 3 {
		t.Fatal("FieldIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing field did not panic")
		}
	}()
	part.FieldIndex("nope")
}

// Property: for any field sequence, layouts keep fields non-overlapping and
// in order, refs 8-aligned, and total size 8-aligned and monotone in ref
// width.
func TestLayoutProperty(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) > 30 {
			kinds = kinds[:30]
		}
		ty := Type{Name: "T"}
		for i, k := range kinds {
			fld := Field{Name: string(rune('a' + i%26))}
			switch k % 4 {
			case 0:
				fld.Kind = I32
			case 1:
				fld.Kind = I64
			case 2:
				fld.Kind = Ref
			case 3:
				fld.Kind = Bytes
				fld.Size = 1 + int(k)%17
			}
			ty.Fields = append(ty.Fields, fld)
		}
		for _, rs := range []int{8, 16} {
			l := ty.LayoutFor(rs)
			if l.Size%8 != 0 {
				return false
			}
			prevEnd := 0
			for i, fld := range ty.Fields {
				off := l.Offsets[i]
				if off < prevEnd {
					return false // overlap
				}
				switch fld.Kind {
				case I32:
					if off%4 != 0 {
						return false
					}
					prevEnd = off + 4
				case I64:
					if off%8 != 0 {
						return false
					}
					prevEnd = off + 8
				case Ref:
					if off%8 != 0 {
						return false
					}
					prevEnd = off + rs
				case Bytes:
					prevEnd = off + fld.Size
				}
			}
			if prevEnd > l.Size {
				return false
			}
		}
		return ty.LayoutFor(16).Size >= ty.LayoutFor(8).Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
