// Package schema supplies the type-layout information that QuickStore's
// modified gdb provided in the paper: for every persistent type, the byte
// offsets of its fields and in particular of its embedded pointers, from
// which the per-page pointer bitmaps are maintained.
//
// The same declared type yields different physical layouts per system:
// QuickStore stores references as 8-byte virtual addresses, E stores them
// as 16-byte OIDs, and QS-B uses QuickStore references padded to E's object
// sizes. All three layouts come from one declaration, which is what makes
// the benchmark's object graphs structurally identical across systems.
package schema

import "fmt"

// Kind classifies a field.
type Kind uint8

// Field kinds.
const (
	I32   Kind = iota + 1 // 4-byte integer
	I64                   // 8-byte integer
	Ref                   // persistent reference (width depends on the system)
	Bytes                 // fixed-size byte array (Size bytes)
)

// String names the field kind.
func (k Kind) String() string {
	switch k {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case Ref:
		return "ref"
	case Bytes:
		return "bytes"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Field declares one member of a persistent type.
type Field struct {
	Name string
	Kind Kind
	Size int // for Bytes: the array length
}

// Type declares a persistent type.
type Type struct {
	Name   string
	Fields []Field
}

// Layout is a type's physical layout for a particular reference width.
type Layout struct {
	Offsets    []int // byte offset per declared field
	Size       int   // total object size (8-byte aligned)
	RefSize    int
	RefOffsets []int // byte offsets of reference fields (bitmap input)
}

func align(off, a int) int { return (off + a - 1) &^ (a - 1) }

// LayoutFor computes the physical layout of t with refSize-byte references.
// References are 8-byte aligned so they land on bitmap word boundaries;
// integers take natural alignment; byte arrays are unaligned. The total
// size is rounded to 8 bytes so consecutive objects on a page keep their
// pointers word-aligned.
func (t Type) LayoutFor(refSize int) Layout {
	l := Layout{Offsets: make([]int, len(t.Fields)), RefSize: refSize}
	off := 0
	for i, f := range t.Fields {
		switch f.Kind {
		case I32:
			off = align(off, 4)
			l.Offsets[i] = off
			off += 4
		case I64:
			off = align(off, 8)
			l.Offsets[i] = off
			off += 8
		case Ref:
			off = align(off, 8)
			l.Offsets[i] = off
			l.RefOffsets = append(l.RefOffsets, off)
			off += refSize
		case Bytes:
			l.Offsets[i] = off
			off += f.Size
		default:
			panic(fmt.Sprintf("schema: bad field kind in %s.%s", t.Name, f.Name))
		}
	}
	l.Size = align(off, 8)
	return l
}

// PaddedLayoutFor is LayoutFor with the object padded to at least
// targetSize bytes — the QS-B configuration, where every object matches the
// size of the corresponding E object.
func (t Type) PaddedLayoutFor(refSize, targetSize int) Layout {
	l := t.LayoutFor(refSize)
	if targetSize > l.Size {
		l.Size = align(targetSize, 8)
	}
	return l
}

// FieldIndex returns the declaration index of the named field.
func (t Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("schema: type %s has no field %s", t.Name, name))
}
