// Package wal implements the write-ahead log used by the storage manager,
// modeled on EXODUS recovery (Franklin et al., SIGMOD 1992): physical
// byte-range update records with before and after images, per-transaction
// record chains, commit/abort records, and restart recovery (redo winners,
// undo losers).
//
// Each record carries a fixed 50-byte header; the paper's page-diffing
// algorithm reasons explicitly about this header size when deciding whether
// to merge adjacent modified regions into one record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// NilLSN marks "no record".
const NilLSN LSN = 0

// RecType enumerates log record types.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort
	RecCLR // compensation record written during undo
	RecCheckpoint
	// RecPrepare marks a transaction prepared as a 2PC participant: its
	// updates are durable and its locks held, but the outcome belongs to
	// the coordinator. Page carries the coordinator's shard id, New the
	// coordinator-local transaction id, and Off the PrepareCoord flag.
	RecPrepare
	// RecDecision is the coordinator's commit verdict for a cross-shard
	// transaction. It doubles as the coordinator's own commit record —
	// under presumed abort no record at all means "abort", so aborts log
	// nothing beyond the usual RecAbort.
	RecDecision
)

// PrepareCoord, set in a RecPrepare's Off field, marks the prepare written
// by the coordinator itself. A restarted coordinator finding such a prepare
// without a matching RecDecision presumes abort immediately (it is the one
// shard that would know better); participants instead hold the transaction
// in doubt until an OpResolveTx inquiry settles it.
const PrepareCoord uint16 = 1

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecPrepare:
		return "PREPARE"
	case RecDecision:
		return "DECISION"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// HeaderBytes is the fixed per-record header size. The paper cites "~50
// bytes" as the header overhead that makes many tiny log records more
// expensive than one merged record; the diffing algorithm in internal/core
// uses this constant.
const HeaderBytes = 50

// Record is one log record. For RecUpdate and RecCLR, Page/Off/Old/New
// describe a physical byte-range update.
type Record struct {
	LSN     LSN     // assigned by Append
	PrevLSN LSN     // previous record of the same transaction
	Tx      uint64  // transaction id
	Type    RecType // record type
	Page    uint32  // page id for updates
	Off     uint16  // byte offset within the page
	Old     []byte  // before image (empty for redo-only records)
	New     []byte  // after image
}

// header layout within the fixed 50 bytes:
//
//	[0:8)   LSN
//	[8:16)  PrevLSN
//	[16:24) Tx
//	[24:25) Type
//	[25:29) Page
//	[29:31) Off
//	[31:33) len(Old)
//	[33:35) len(New)
//	[35:39) CRC32 of header[0:35] + payload
//	[39:50) reserved
func (r *Record) size() int { return HeaderBytes + len(r.Old) + len(r.New) }

func (r *Record) marshal(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(buf[16:], r.Tx)
	buf[24] = byte(r.Type)
	binary.LittleEndian.PutUint32(buf[25:], r.Page)
	binary.LittleEndian.PutUint16(buf[29:], r.Off)
	binary.LittleEndian.PutUint16(buf[31:], uint16(len(r.Old)))
	binary.LittleEndian.PutUint16(buf[33:], uint16(len(r.New)))
	copy(buf[HeaderBytes:], r.Old)
	copy(buf[HeaderBytes+len(r.Old):], r.New)
	crc := crc32.ChecksumIEEE(buf[:35])
	crc = crc32.Update(crc, crc32.IEEETable, buf[HeaderBytes:r.size()])
	binary.LittleEndian.PutUint32(buf[35:], crc)
	for i := 39; i < HeaderBytes; i++ {
		buf[i] = 0
	}
}

// ErrCorrupt reports a record whose checksum does not match.
var ErrCorrupt = errors.New("wal: corrupt log record")

func unmarshal(buf []byte) (Record, int, error) {
	if len(buf) < HeaderBytes {
		return Record{}, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	var r Record
	r.LSN = LSN(binary.LittleEndian.Uint64(buf[0:]))
	r.PrevLSN = LSN(binary.LittleEndian.Uint64(buf[8:]))
	r.Tx = binary.LittleEndian.Uint64(buf[16:])
	r.Type = RecType(buf[24])
	r.Page = binary.LittleEndian.Uint32(buf[25:])
	r.Off = binary.LittleEndian.Uint16(buf[29:])
	oldLen := int(binary.LittleEndian.Uint16(buf[31:]))
	newLen := int(binary.LittleEndian.Uint16(buf[33:]))
	total := HeaderBytes + oldLen + newLen
	if len(buf) < total {
		return Record{}, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	crc := crc32.ChecksumIEEE(buf[:35])
	crc = crc32.Update(crc, crc32.IEEETable, buf[HeaderBytes:total])
	if crc != binary.LittleEndian.Uint32(buf[35:]) {
		return Record{}, 0, ErrCorrupt
	}
	if oldLen > 0 {
		r.Old = append([]byte(nil), buf[HeaderBytes:HeaderBytes+oldLen]...)
	}
	if newLen > 0 {
		r.New = append([]byte(nil), buf[HeaderBytes+oldLen:total]...)
	}
	return r, total, nil
}

// Log is an append-only write-ahead log. Records live in memory until Flush
// forces them to the optional backing file (the "log disk" of the paper's
// server configuration).
type Log struct {
	// FlushHook, when non-nil, intercepts every flush: it receives the
	// number of pending (not yet durable) bytes and returns how many of
	// them may persist plus an injected error. It is the fault-injection
	// seam the crash drill uses for torn log tails and flush crashes; nil
	// in production. Set it before the log is shared across goroutines.
	FlushHook func(pending int) (allow int, err error)

	mu      sync.Mutex
	buf     []byte // serialized records; LSN = 1 + base + offset into buf
	base    int    // LSN space consumed by truncated log generations
	flushed int    // bytes already forced to backing storage
	file    *os.File
	path    string // backing file path; "" for memory logs
	records int64
	bytes   int64

	// Group commit (FlushCommit): committers arriving while a leader is
	// inside its batching window join gcActive instead of forcing the log
	// themselves; the leader's one force covers every record appended
	// before it runs. forces counts physical log forces (flushLocked
	// executions — each is an fsync on a real log device); piggybacks
	// counts FlushCommit calls satisfied without a force of their own.
	commitWindow time.Duration
	gcActive     *gcBatch
	forces       int64
	piggybacks   int64

	// Replication plumbing (replication.go): durable broadcasts to
	// subscription cursors and registered notify channels, plus a closed
	// flag so shippers blocked in Wait drain out at shutdown.
	durable *sync.Cond
	notify  map[chan struct{}]struct{}
	closed  bool
}

// gcBatch is one group-commit batch: the leader closes done after its
// force; err is written before the close.
type gcBatch struct {
	done chan struct{}
	err  error
}

// NewMemLog creates a log with no backing file.
func NewMemLog() *Log { return &Log{} }

// CreateFileLog creates a log backed by a file at path (truncated).
func CreateFileLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{file: f, path: path}, nil
}

// OpenFileLog opens an existing file log and loads its contents for
// recovery iteration.
func OpenFileLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	buf := make([]byte, st.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && st.Size() > 0 {
		f.Close()
		return nil, err
	}
	l := &Log{buf: buf, flushed: len(buf), file: f, path: path}
	// Count records for stats; stop at the first corrupt tail record
	// (torn write at crash). Records carry absolute LSNs from before any
	// truncation, so the base is recovered from the last record seen,
	// keeping new LSNs monotone. A file always holds one contiguous LSN
	// run (truncation rewrites it whole), so a record whose LSN breaks the
	// run is leftover garbage, not log — prune there too.
	valid := 0
	lastEnd := 0
	for off := 0; off < len(buf); {
		rec, n, err := unmarshal(buf[off:])
		if err != nil {
			break
		}
		if valid > 0 && int(rec.LSN) != lastEnd+1 {
			break
		}
		lastEnd = int(rec.LSN) - 1 + n
		off += n
		valid = off
		l.records++
	}
	l.buf = l.buf[:valid]
	l.flushed = valid
	l.bytes = int64(valid)
	if lastEnd > valid {
		l.base = lastEnd - valid
	}
	return l, nil
}

// Append adds a record and returns its LSN. The record is not durable until
// Flush. LSNs start at 1 so that NilLSN (0) is never a real record.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = LSN(1 + l.base + len(l.buf))
	start := len(l.buf)
	l.buf = append(l.buf, make([]byte, r.size())...)
	r.marshal(l.buf[start:])
	l.records++
	l.bytes += int64(r.size())
	return r.LSN
}

// Flush forces all appended records to the backing file, if any.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(len(l.buf))
}

// flushLocked makes buf[:upto] durable. When a FlushHook injects a fault
// it may shorten the durable range to a prefix of the pending bytes — a
// torn log tail, possibly ending mid-record, exactly what a crash during
// a physical log write leaves behind for OpenFileLog to prune.
func (l *Log) flushLocked(upto int) error {
	l.forces++
	if upto > len(l.buf) {
		upto = len(l.buf)
	}
	if upto < l.flushed {
		upto = l.flushed
	}
	var hookErr error
	if l.FlushHook != nil {
		allow, err := l.FlushHook(upto - l.flushed)
		if err != nil {
			hookErr = err
			if allow < 0 {
				allow = 0
			}
			if max := upto - l.flushed; allow > max {
				allow = max
			}
			upto = l.flushed + allow
		}
	}
	if l.file == nil {
		if upto > l.flushed {
			l.flushed = upto
			l.signalDurableLocked()
		}
		return hookErr
	}
	advanced := false
	if l.flushed < upto {
		if _, err := l.file.WriteAt(l.buf[l.flushed:upto], int64(l.flushed)); err != nil {
			return err
		}
		l.flushed = upto
		advanced = true
	}
	if err := l.file.Sync(); err != nil {
		return err
	}
	if advanced {
		// Signal only once the bytes really are durable (post-sync):
		// replication acks derive from what subscribers see here.
		l.signalDurableLocked()
	}
	return hookErr
}

// FlushTo forces the log through the record containing lsn, inclusive.
// This is the flush the WAL rule requires on the buffer pool's steal
// path: a dirty page may reach the volume only once the log covers its
// pageLSN, and flushing just that prefix avoids forcing unrelated tail
// records. An lsn already durable (or from a truncated generation) is a
// no-op; an lsn beyond the log, or one whose bytes do not parse as a
// record header (raw large-object pages stamp arbitrary bytes where the
// LSN would sit), falls back to a full flush.
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == NilLSN {
		return nil
	}
	off := int(lsn) - 1 - l.base
	if off < l.flushed {
		return nil
	}
	if off >= len(l.buf) {
		return l.flushLocked(len(l.buf))
	}
	_, n, err := unmarshal(l.buf[off:])
	if err != nil {
		return l.flushLocked(len(l.buf))
	}
	return l.flushLocked(off + n)
}

// SetCommitWindow sets the group-commit batching window. A committer that
// becomes batch leader sleeps for the window before forcing, letting
// concurrent committers append their records and join the batch; one force
// then covers them all. Zero (the default) forces immediately — correct
// and deterministic for single-session use, while concurrent committers
// still piggyback on a force already in progress.
func (l *Log) SetCommitWindow(d time.Duration) {
	l.mu.Lock()
	l.commitWindow = d
	l.mu.Unlock()
}

// Forces returns the number of physical log forces performed.
func (l *Log) Forces() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forces
}

// Piggybacks returns the number of FlushCommit calls that found their
// record already durable or joined another committer's batch — the forces
// group commit saved.
func (l *Log) Piggybacks() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.piggybacks
}

// FlushCommit makes the log durable through lsn (a commit record already
// appended by the caller), batching concurrent committers into one force.
// If lsn is already durable the call returns at once; if another committer
// is leading a batch, the call waits for that batch's force (which covers
// every record appended before it runs, this one included) and inherits
// its error; otherwise the caller becomes leader: it sleeps for the commit
// window, forces the whole log once, and releases its followers.
func (l *Log) FlushCommit(lsn LSN) error {
	if lsn == NilLSN {
		return nil
	}
	for {
		l.mu.Lock()
		if int(lsn)-1-l.base < l.flushed {
			l.piggybacks++
			l.mu.Unlock()
			return nil
		}
		if b := l.gcActive; b != nil {
			l.piggybacks++
			l.mu.Unlock()
			<-b.done
			if b.err != nil {
				return b.err
			}
			// The leader's force covered our record (it was appended
			// before FlushCommit was called); loop to verify durability.
			continue
		}
		b := &gcBatch{done: make(chan struct{})}
		l.gcActive = b
		window := l.commitWindow
		l.mu.Unlock()
		if window > 0 {
			time.Sleep(window)
		}
		l.mu.Lock()
		err := l.flushLocked(len(l.buf))
		l.gcActive = nil
		l.mu.Unlock()
		b.err = err
		close(b.done)
		return err
	}
}

// FlushedLSN returns the LSN up to which the log is durable (exclusive).
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(1 + l.base + l.flushed)
}

// Records returns the number of records appended.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Bytes returns the total serialized log size in bytes.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Iterate calls fn for each record in LSN order. fn returning false stops
// the scan.
func (l *Log) Iterate(fn func(Record) bool) error {
	l.mu.Lock()
	snapshot := l.buf[:len(l.buf)]
	l.mu.Unlock()
	for off := 0; off < len(snapshot); {
		rec, n, err := unmarshal(snapshot[off:])
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
		off += n
	}
	return nil
}

// Truncate discards the entire log after a quiescent checkpoint (every
// dirty page flushed, no active transactions): none of the records can be
// needed for redo or undo anymore. The backing file, if any, is reset.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// LSNs stamped into pages must stay comparable with future records:
	// the truncated generation's LSN space is never reused.
	l.base += len(l.buf)
	l.buf = l.buf[:0]
	l.flushed = 0
	// Wake subscribers: cursors inside the discarded generation must learn
	// they are compacted and fall back to a snapshot.
	l.signalDurableLocked()
	if l.file != nil {
		if err := l.file.Truncate(0); err != nil {
			return err
		}
		return l.file.Sync()
	}
	return nil
}

// TruncateBefore discards every whole record that lies strictly below lsn,
// keeping the tail. This is the fuzzy checkpoint's truncation: unlike
// Truncate it does not require a quiescent store — the caller chooses a cut
// below which no record can be needed for redo (the covered pages are on
// the volume) or undo (no active transaction began below it) and the live
// tail keeps its LSNs. A cut inside the unflushed tail is clamped to the
// durable prefix; a cut that lands mid-record backs up to the preceding
// record boundary. Subscription cursors inside the discarded generation
// observe ErrCompacted and fall back to a snapshot, exactly as with
// Truncate.
func (l *Log) TruncateBefore(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	off := int(lsn) - 1 - l.base
	if off > l.flushed {
		off = l.flushed
	}
	if off <= 0 {
		return nil
	}
	// Walk to the last record boundary at or below the cut. The buffer is
	// record-aligned from 0, so this also refuses to split a record whose
	// middle the (page-LSN-derived) cut points into.
	boundary := 0
	for boundary < off {
		_, n, err := unmarshal(l.buf[boundary:])
		if err != nil || boundary+n > off {
			break
		}
		boundary += n
	}
	if boundary == 0 {
		return nil
	}
	// The backing file is replaced atomically (write tail to a temp file,
	// rename over the log): rewriting in place could lose durable tail
	// records if a crash lands mid-rewrite, and the tail is exactly the
	// part that is still needed. Crash before the rename keeps the old
	// file whole (the cut simply didn't happen); crash after it leaves
	// precisely the tail. The in-memory state changes only once the new
	// file is in place.
	var newFile *os.File
	if l.file != nil {
		tmp := l.path + ".truncating"
		f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		tail := l.buf[boundary:l.flushed]
		if len(tail) > 0 {
			if _, err := f.WriteAt(tail, 0); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := os.Rename(tmp, l.path); err != nil {
			f.Close()
			return err
		}
		newFile = f
	}
	l.base += boundary
	l.buf = append([]byte(nil), l.buf[boundary:]...)
	l.flushed -= boundary
	if newFile != nil {
		l.file.Close()
		l.file = newFile
	}
	// Wake subscribers: cursors below the new start must learn they are
	// compacted and fall back to a snapshot.
	l.signalDurableLocked()
	return nil
}

// DiscardUnflushed drops records that were never forced, simulating the loss
// of log-buffer contents at a crash. Test hook for recovery experiments.
func (l *Log) DiscardUnflushed() {
	l.mu.Lock()
	l.buf = l.buf[:l.flushed]
	l.mu.Unlock()
}

// Close releases the backing file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.signalDurableLocked() // unblock subscription Wait loops
	if l.file != nil {
		err := l.file.Close()
		l.file = nil
		return err
	}
	return nil
}

// PageStore is the page access recovery needs; satisfied by the server's
// volume wrapper.
type PageStore interface {
	ReadPage(id uint32, buf []byte) error
	WritePage(id uint32, buf []byte) error
}

// InDoubt describes one prepared-but-undecided transaction found at
// restart: a 2PC participant whose coordinator's verdict is not on this
// log. Its updates are redone (prepared means durably installed) and NOT
// undone; the caller must hold its locks and resolve it against the
// coordinator before the pages become visible to conflicting writers.
type InDoubt struct {
	Tx         uint64 // participant-local transaction id
	PrepareLSN LSN    // the RecPrepare's LSN
	FirstLSN   LSN    // the tx's earliest surviving record; checkpoint-cut floor
	CoordShard uint32 // coordinator shard id (RecPrepare.Page)
	CoordTx    uint64 // coordinator-local transaction id (RecPrepare.New)
	Pages      []uint32
}

// Recover runs restart recovery against store: analysis (find winners),
// redo of winner updates whose effects are missing (page LSN < record LSN),
// then undo of loser updates in reverse LSN order, writing CLRs.
// It returns the sets of committed and rolled-back transaction ids, plus
// the in-doubt set: transactions prepared as 2PC participants whose
// coordinator decision is unknown. Those are redone like winners but left
// unresolved — no RecAbort is appended for them. A prepare carrying the
// PrepareCoord flag with no RecDecision is presumed aborted (normal loser):
// the decision record lives on the coordinator's own log, so its absence
// there IS the verdict. pageSize is the store's page size in bytes (callers
// pass disk.PageSize; wal cannot import disk without a cycle).
func Recover(l *Log, store PageStore, pageSize int, pageLSNOf func(pageBuf []byte) uint64, setPageLSN func(pageBuf []byte, lsn uint64)) (winners, losers map[uint64]bool, indoubt map[uint64]*InDoubt, err error) {
	if pageSize <= 0 {
		return nil, nil, nil, fmt.Errorf("wal: invalid page size %d", pageSize)
	}
	winners = map[uint64]bool{}
	losers = map[uint64]bool{}
	prepares := map[uint64]Record{}
	firstLSN := map[uint64]LSN{}
	var updates []Record
	err = l.Iterate(func(r Record) bool {
		if r.Tx != 0 {
			if _, ok := firstLSN[r.Tx]; !ok {
				firstLSN[r.Tx] = r.LSN
			}
		}
		switch r.Type {
		case RecBegin:
			losers[r.Tx] = true
		case RecCommit, RecDecision:
			delete(losers, r.Tx)
			delete(prepares, r.Tx)
			winners[r.Tx] = true
		case RecAbort:
			delete(losers, r.Tx)
			delete(prepares, r.Tx)
		case RecPrepare:
			prepares[r.Tx] = r
		case RecUpdate, RecCLR:
			updates = append(updates, r)
		}
		return true
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// In-doubt analysis: a prepared loser written by a participant stays in
	// doubt; a prepared loser written by the coordinator itself (PrepareCoord)
	// is presumed aborted — the missing decision record is the answer.
	indoubt = map[uint64]*InDoubt{}
	for tx, p := range prepares {
		if !losers[tx] || p.Off&PrepareCoord != 0 {
			continue
		}
		var coordTx uint64
		if len(p.New) >= 8 {
			coordTx = binary.LittleEndian.Uint64(p.New)
		}
		indoubt[tx] = &InDoubt{
			Tx:         tx,
			PrepareLSN: p.LSN,
			FirstLSN:   firstLSN[tx],
			CoordShard: p.Page,
			CoordTx:    coordTx,
		}
		delete(losers, tx)
	}
	buf := make([]byte, pageSize)
	// Redo phase: repeat history for winners, CLRs, and in-doubt prepares.
	for _, r := range updates {
		if r.Type == RecUpdate && !winners[r.Tx] && !losers[r.Tx] && indoubt[r.Tx] == nil {
			continue // aborted at runtime; undo already applied
		}
		if d := indoubt[r.Tx]; d != nil && r.Type == RecUpdate {
			if len(d.Pages) == 0 || d.Pages[len(d.Pages)-1] != r.Page {
				d.Pages = append(d.Pages, r.Page)
			}
		}
		if err := store.ReadPage(r.Page, buf); err != nil {
			return nil, nil, nil, err
		}
		if LSN(pageLSNOf(buf)) >= r.LSN {
			continue
		}
		copy(buf[int(r.Off):int(r.Off)+len(r.New)], r.New)
		setPageLSN(buf, uint64(r.LSN))
		if err := store.WritePage(r.Page, buf); err != nil {
			return nil, nil, nil, err
		}
	}
	// Undo phase: roll back losers newest-first. In-doubt transactions are
	// deliberately not here: their before-images stay in the log, protected
	// from truncation by FirstLSN, until the coordinator's verdict arrives.
	for i := len(updates) - 1; i >= 0; i-- {
		r := updates[i]
		if r.Type != RecUpdate || !losers[r.Tx] || len(r.Old) == 0 {
			continue
		}
		if err := store.ReadPage(r.Page, buf); err != nil {
			return nil, nil, nil, err
		}
		if LSN(pageLSNOf(buf)) < r.LSN {
			continue // update never reached the page
		}
		copy(buf[int(r.Off):int(r.Off)+len(r.Old)], r.Old)
		clr := l.Append(Record{Tx: r.Tx, Type: RecCLR, Page: r.Page, Off: r.Off, New: append([]byte(nil), r.Old...)})
		setPageLSN(buf, uint64(clr))
		if err := store.WritePage(r.Page, buf); err != nil {
			return nil, nil, nil, err
		}
	}
	for tx := range losers {
		l.Append(Record{Tx: tx, Type: RecAbort})
	}
	return winners, losers, indoubt, l.Flush()
}
