package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFlushToForcesPrefixOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a := l.Append(Record{Tx: 1, Type: RecBegin})
	b := l.Append(Record{Tx: 1, Type: RecUpdate, Page: 2, Off: 8, Old: []byte("xx"), New: []byte("yy")})
	c := l.Append(Record{Tx: 2, Type: RecBegin})
	if err := l.FlushTo(b); err != nil {
		t.Fatal(err)
	}
	// Records a and b are durable, c is not.
	if got := l.FlushedLSN(); got <= b || got > c {
		t.Fatalf("FlushedLSN = %d, want in (%d, %d]", got, b, c)
	}
	// Flushing an already-durable LSN is a no-op.
	before := l.FlushedLSN()
	if err := l.FlushTo(a); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != before {
		t.Fatal("FlushTo of durable LSN moved the horizon")
	}
	// The durable prefix really is on disk: a reopen sees exactly a and b.
	l.DiscardUnflushed()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Size()) != int(before-1) {
		t.Fatalf("file holds %d bytes, want %d", st.Size(), before-1)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 2 {
		t.Fatalf("reopened log has %d records, want 2", l2.Records())
	}
}

func TestFlushToUnparsableLSNFallsBackToFullFlush(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{Tx: 1, Type: RecBegin})
	end := l.Append(Record{Tx: 1, Type: RecCommit})
	// Raw large-object pages carry arbitrary bytes where a pageLSN would
	// sit; FlushTo must stay safe for any value, over-flushing at worst.
	if err := l.FlushTo(end + 999999); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() <= end {
		t.Fatal("fallback did not flush the whole log")
	}
}

func TestFlushHookErrorShortensTheDurableTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Tx: 1, Type: RecBegin})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Tx: 1, Type: RecUpdate, Page: 4, Off: 8, New: []byte("abcd")})
	l.Append(Record{Tx: 1, Type: RecCommit})
	boom := errors.New("crash in flush")
	l.FlushHook = func(pending int) (int, error) {
		return pending / 2, boom // a torn tail: half the pending bytes land
	}
	if err := l.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush fault not surfaced: %v", err)
	}
	// The file now ends mid-record; reopening prunes the torn tail and
	// keeps only the clean prefix (the BEGIN forced earlier).
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("reopened log has %d records, want the 1 clean record", l2.Records())
	}
	// LSN space stays monotone past the pruned bytes.
	next := l2.Append(Record{Tx: 2, Type: RecBegin})
	if next == NilLSN {
		t.Fatal("append after prune returned NilLSN")
	}
}

func TestFlushHookNilErrorFlushesEverything(t *testing.T) {
	l := NewMemLog()
	calls := 0
	l.FlushHook = func(pending int) (int, error) { calls++; return 0, nil }
	l.Append(Record{Tx: 1, Type: RecBegin})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hook called %d times", calls)
	}
	if l.FlushedLSN() != LSN(1+HeaderBytes) {
		t.Fatal("nil-error hook must not shorten the flush")
	}
}

// FuzzOpenFileLogTornTail feeds OpenFileLog logs whose tails were truncated
// or bit-flipped, as a crash mid-flush leaves them, and checks the
// invariants the recovery path relies on: the valid prefix is kept intact,
// corruption never propagates an error out of OpenFileLog, and LSNs handed
// out after reopen stay strictly monotone (the l.base arithmetic).
func FuzzOpenFileLogTornTail(f *testing.F) {
	f.Add(uint16(0), uint16(0), byte(0))
	f.Add(uint16(10), uint16(3), byte(0x01))
	f.Add(uint16(999), uint16(200), byte(0xFF))
	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipMask byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "log")
		l, err := CreateFileLog(path)
		if err != nil {
			t.Fatal(err)
		}
		var lsns []LSN
		for i := 0; i < 5; i++ {
			lsns = append(lsns, l.Append(Record{Tx: uint64(i + 1), Type: RecBegin}))
			lsns = append(lsns, l.Append(Record{
				Tx: uint64(i + 1), Type: RecUpdate, Page: uint32(i),
				Off: 8, Old: []byte{byte(i)}, New: []byte{byte(i + 1)},
			}))
			lsns = append(lsns, l.Append(Record{Tx: uint64(i + 1), Type: RecCommit}))
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		maxLSN := lsns[len(lsns)-1]
		l.Close()

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Tear the tail: truncate `cut` bytes, then flip a byte in what
		// remains.
		if int(cut) > len(raw) {
			cut = uint16(len(raw))
		}
		raw = raw[:len(raw)-int(cut)]
		if len(raw) > 0 && flipMask != 0 {
			raw[int(flipAt)%len(raw)] ^= flipMask
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("OpenFileLog must prune, not fail: %v", err)
		}
		defer l2.Close()

		// Whatever survived is a clean prefix of the original records.
		var prev LSN
		i := 0
		if err := l2.Iterate(func(r Record) bool {
			if i >= len(lsns) || r.LSN != lsns[i] {
				t.Fatalf("record %d: LSN %d, want %d", i, r.LSN, lsns[i])
			}
			if r.LSN <= prev {
				t.Fatalf("LSNs not increasing: %d after %d", r.LSN, prev)
			}
			prev = r.LSN
			i++
			return true
		}); err != nil {
			t.Fatalf("pruned log must iterate cleanly: %v", err)
		}

		// New appends never reuse LSN space from before the crash.
		next := l2.Append(Record{Tx: 99, Type: RecBegin})
		if i > 0 && next <= prev {
			t.Fatalf("post-reopen LSN %d not beyond surviving prefix %d", next, prev)
		}
		if i == len(lsns) && next <= maxLSN {
			t.Fatalf("post-reopen LSN %d not beyond full log %d", next, maxLSN)
		}
	})
}
