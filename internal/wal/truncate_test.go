package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TruncateBefore keeps the tail with its LSNs and advances the start.
func TestTruncateBeforeKeepsTail(t *testing.T) {
	l := NewMemLog()
	var lsns []LSN
	for i := 0; i < 6; i++ {
		lsns = append(lsns, appendUpdate(l, uint64(i+1), uint32(i+1), byte(i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(lsns[3]); err != nil {
		t.Fatal(err)
	}
	if got := l.StartLSN(); got != lsns[3] {
		t.Fatalf("StartLSN = %d, want %d", got, lsns[3])
	}
	recs := collect(t, l)
	if len(recs) != 3 {
		t.Fatalf("kept %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[3+i] {
			t.Errorf("record %d LSN = %d, want %d (LSNs must survive the cut)", i, r.LSN, lsns[3+i])
		}
	}
	// LSN space keeps growing monotonically past the cut.
	if next := appendUpdate(l, 99, 99, 0xFF); next <= lsns[5] {
		t.Fatalf("post-truncate LSN %d not beyond %d", next, lsns[5])
	}
}

// A cut that points inside a record backs up to the preceding record
// boundary, and a cut beyond the durable prefix clamps to it.
func TestTruncateBeforeClampsToBoundaries(t *testing.T) {
	l := NewMemLog()
	a := appendUpdate(l, 1, 1, 1)
	b := appendUpdate(l, 2, 2, 2)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	c := appendUpdate(l, 3, 3, 3) // appended but not flushed
	if err := l.TruncateBefore(b + 10); err != nil {
		t.Fatal(err) // mid-record: keeps b whole
	}
	if got := l.StartLSN(); got != b {
		t.Fatalf("mid-record cut: StartLSN = %d, want %d", got, b)
	}
	if err := l.TruncateBefore(c + 1000); err != nil {
		t.Fatal(err) // beyond flushed: clamps to durable prefix (drops b only)
	}
	if got := l.StartLSN(); got != c {
		t.Fatalf("beyond-durable cut: StartLSN = %d, want %d", got, c)
	}
	recs := collect(t, l)
	if len(recs) != 1 || recs[0].LSN != c {
		t.Fatalf("unflushed tail must survive any cut: %+v", recs)
	}
	_ = a
}

// A file log survives TruncateBefore across close/reopen: the tail is
// intact, the base is recovered from record LSNs, and appends continue.
func TestTruncateBeforeFileLogReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 5; i++ {
		lsns = append(lsns, appendUpdate(l, uint64(i+1), uint32(i+1), byte(i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(lsns[2]); err != nil {
		t.Fatal(err)
	}
	tail := appendUpdate(l, 9, 9, 9)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := collect(t, r)
	want := []LSN{lsns[2], lsns[3], lsns[4], tail}
	if len(recs) != len(want) {
		t.Fatalf("reopened with %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.LSN != want[i] {
			t.Errorf("record %d LSN = %d, want %d", i, rec.LSN, want[i])
		}
	}
	if next := appendUpdate(r, 10, 10, 10); next <= tail {
		t.Fatalf("reopened log reused LSN space: %d <= %d", next, tail)
	}
}

// A crash before the rename leaves the old file (plus a stale temp) — the
// log reopens whole; the cut simply never happened.
func TestTruncateBeforeCrashBeforeRenameKeepsOldLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 4; i++ {
		lsns = append(lsns, appendUpdate(l, uint64(i+1), uint32(i+1), byte(i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the temp file exists (fully or partially
	// written) but the rename never ran.
	if err := os.WriteFile(path+".truncating", []byte("partial tail garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs := collect(t, r); len(recs) != 4 {
		t.Fatalf("old log damaged by aborted truncation: %d records, want 4", len(recs))
	}
}

// Subscription cursors left below the cut observe compaction and must
// reseed from a snapshot — the same contract as full Truncate.
func TestTruncateBeforeCompactsSubscriptions(t *testing.T) {
	l := NewMemLog()
	first := appendUpdate(l, 1, 1, 1)
	mid := appendUpdate(l, 2, 2, 2)
	appendUpdate(l, 3, 3, 3)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := l.DurableFrom(first, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("DurableFrom below cut: err = %v, want ErrCompacted", err)
	}
	if chunk, err := l.DurableFrom(mid, 0); err != nil || len(chunk) == 0 {
		t.Fatalf("DurableFrom at cut: %d bytes, err %v", len(chunk), err)
	}
}

// OpenFileLog prunes at an LSN-run break: leftover bytes that happen to
// parse as records from an older file generation cannot splice onto the
// tail and corrupt the recovered base.
func TestOpenFileLogPrunesLSNRunBreak(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	appendUpdate(l, 1, 1, 1)
	good := appendUpdate(l, 2, 2, 2)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a VALID record image whose LSN belongs elsewhere in the
	// stream — stale bytes a torn in-place rewrite could have left.
	stale := Record{LSN: good + 1000, Tx: 9, Type: RecUpdate, Page: 9, New: []byte{9}}
	buf := make([]byte, stale.size())
	stale.marshal(buf)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := collect(t, r)
	if len(recs) != 2 || recs[len(recs)-1].LSN != good {
		t.Fatalf("stale record spliced in: %d records, last LSN %v", len(recs), recs[len(recs)-1].LSN)
	}
	if next := appendUpdate(r, 5, 5, 5); next <= good || next >= stale.LSN {
		t.Fatalf("base misrecovered: next LSN %d (want just past %d, not derived from stale %d)",
			next, good, stale.LSN)
	}
}
