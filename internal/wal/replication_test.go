package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendUpdate(l *Log, tx uint64, page uint32, payload byte) LSN {
	return l.Append(Record{Tx: tx, Type: RecUpdate, Page: page, New: bytes.Repeat([]byte{payload}, 16)})
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Iterate(func(r Record) bool { recs = append(recs, r); return true }); err != nil {
		t.Fatalf("iterate: %v", err)
	}
	return recs
}

// A follower that splices every shipped chunk ends up with a byte-identical
// log: same records, same LSNs, retransmits ignored.
func TestSubscribeShipAppendRaw(t *testing.T) {
	leader := NewMemLog()
	follower := NewMemLog()
	sub := leader.Subscribe(NilLSN)

	for i := 0; i < 5; i++ {
		appendUpdate(leader, uint64(i+1), uint32(i), byte(i))
	}
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}
	chunk, err := sub.Next(0)
	if err != nil || chunk == nil {
		t.Fatalf("Next: chunk=%v err=%v", chunk, err)
	}
	if err := follower.AppendRaw(1, chunk); err != nil {
		t.Fatalf("AppendRaw: %v", err)
	}
	// Retransmit of the same chunk is a verified no-op.
	if err := follower.AppendRaw(1, chunk); err != nil {
		t.Fatalf("retransmit: %v", err)
	}
	if err := follower.Flush(); err != nil {
		t.Fatal(err)
	}

	appendUpdate(leader, 9, 9, 0xAA)
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}
	start := sub.Pos()
	chunk, err = sub.Next(0)
	if err != nil || chunk == nil {
		t.Fatalf("Next tail: chunk=%v err=%v", chunk, err)
	}
	if err := follower.AppendRaw(start, chunk); err != nil {
		t.Fatalf("AppendRaw tail: %v", err)
	}

	lr, fr := collect(t, leader), collect(t, follower)
	if len(lr) != len(fr) || len(lr) != 6 {
		t.Fatalf("record counts: leader %d follower %d", len(lr), len(fr))
	}
	for i := range lr {
		if lr[i].LSN != fr[i].LSN || lr[i].Tx != fr[i].Tx {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, lr[i], fr[i])
		}
	}
	if follower.End() != leader.End() {
		t.Fatalf("ends differ: %d vs %d", follower.End(), leader.End())
	}
	// Caught up: nothing more durable.
	if chunk, err := sub.Next(0); err != nil || chunk != nil {
		t.Fatalf("caught-up Next: chunk=%v err=%v", chunk, err)
	}
}

// Next never splits a record and never returns unflushed bytes.
func TestDurableFromBounds(t *testing.T) {
	l := NewMemLog()
	first := appendUpdate(l, 1, 1, 1)
	appendUpdate(l, 2, 2, 2)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	unflushed := appendUpdate(l, 3, 3, 3)

	sub := l.Subscribe(first)
	chunk, err := sub.Next(1) // smaller than one record: nothing fits
	if err != nil || chunk != nil {
		t.Fatalf("tiny cap: chunk=%v err=%v", chunk, err)
	}
	one := int(l.FlushedLSN()-first) / 2
	chunk, err = sub.Next(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk) != one {
		t.Fatalf("capped chunk = %d bytes, want one record (%d)", len(chunk), one)
	}
	chunk, err = sub.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Pos() != l.FlushedLSN() {
		t.Fatalf("cursor %d did not stop at the durable prefix %d", sub.Pos(), l.FlushedLSN())
	}
	if len(chunk) != one {
		t.Fatalf("second chunk = %d bytes, want the remaining record (%d)", len(chunk), one)
	}
	_ = unflushed // its bytes must never have been returned; the cursor stops at FlushedLSN
}

func TestAppendRawGapAndDivergence(t *testing.T) {
	leader := NewMemLog()
	appendUpdate(leader, 1, 1, 1)
	appendUpdate(leader, 2, 2, 2)
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}
	chunk, err := leader.DurableFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}

	follower := NewMemLog()
	// Gap: the follower has nothing, a chunk starting past 1 must be refused.
	half := len(chunk) / 2
	if err := follower.AppendRaw(LSN(1+half), chunk[half:]); err == nil {
		t.Fatal("gap chunk accepted")
	}
	if err := follower.AppendRaw(1, chunk); err != nil {
		t.Fatal(err)
	}
	// Divergence: same LSNs, different bytes.
	other := NewMemLog()
	appendUpdate(other, 7, 7, 7)
	appendUpdate(other, 8, 8, 8)
	if err := other.Flush(); err != nil {
		t.Fatal(err)
	}
	stale, err := other.DurableFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.AppendRaw(1, stale); !errors.Is(err, ErrDiverged) {
		t.Fatalf("divergent retransmit: %v", err)
	}
	// Corrupt content is rejected before any mutation.
	bad := append([]byte(nil), chunk...)
	bad[len(bad)-1] ^= 0xFF
	fresh := NewMemLog()
	if err := fresh.AppendRaw(1, bad); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
	if fresh.End() != 1 {
		t.Fatalf("corrupt chunk mutated the log: end=%d", fresh.End())
	}
}

func TestSubscriptionCompactedAfterTruncate(t *testing.T) {
	l := NewMemLog()
	sub := l.Subscribe(NilLSN)
	appendUpdate(l, 1, 1, 1)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(0); err != nil {
		t.Fatal(err)
	}
	appendUpdate(l, 2, 2, 2)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("cursor in truncated generation: %v", err)
	}
}

// Wait blocks until a flush lands and returns false once the log closes.
func TestSubscriptionWait(t *testing.T) {
	l := NewMemLog()
	sub := l.Subscribe(NilLSN)
	woke := make(chan bool, 1)
	go func() { woke <- sub.Wait() }()
	select {
	case <-woke:
		t.Fatal("Wait returned with nothing durable")
	case <-time.After(20 * time.Millisecond):
	}
	appendUpdate(l, 1, 1, 1)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-woke:
		if !ok {
			t.Fatal("Wait returned closed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait missed the flush broadcast")
	}
	chunk, err := sub.Next(0)
	if err != nil || chunk == nil {
		t.Fatalf("post-wait Next: %v %v", chunk, err)
	}
	go func() { woke <- sub.Wait() }()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-woke:
		if ok {
			t.Fatal("Wait returned true on a closed log")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait missed the close broadcast")
	}
}

func TestNotifyDurable(t *testing.T) {
	l := NewMemLog()
	ch := make(chan struct{}, 1)
	l.NotifyDurable(ch)
	appendUpdate(l, 1, 1, 1)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no notify signal after flush")
	}
	l.StopNotify(ch)
	appendUpdate(l, 2, 2, 2)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("signal after StopNotify")
	default:
	}
}

// A snapshot install survives a file-log reopen: the base is re-derived
// from the records' absolute LSNs, exactly as after a checkpoint truncate.
func TestLoadSnapshotFileRoundTrip(t *testing.T) {
	leader := NewMemLog()
	for i := 0; i < 4; i++ {
		appendUpdate(leader, uint64(i+1), uint32(i), byte(i))
	}
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Truncate(); err != nil {
		t.Fatal(err)
	}
	tail := appendUpdate(leader, 9, 9, 9)
	if err := leader.Flush(); err != nil {
		t.Fatal(err)
	}
	start := leader.StartLSN()
	content, err := leader.DurableFrom(start, 0)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "follower.log")
	fl, err := CreateFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing content must be wholly replaced.
	appendUpdate(fl, 100, 100, 0xCC)
	if err := fl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fl.LoadSnapshot(start, content); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if fl.End() != leader.End() || fl.FlushedLSN() != leader.FlushedLSN() {
		t.Fatalf("follower end %d/%d, leader %d/%d", fl.End(), fl.FlushedLSN(), leader.End(), leader.FlushedLSN())
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := collect(t, re)
	if len(recs) != 1 || recs[0].LSN != tail {
		t.Fatalf("reopened snapshot: %d records, first LSN %v (want %v)", len(recs), recs[0].LSN, tail)
	}
	if re.End() != leader.End() {
		t.Fatalf("reopened end %d, want %d", re.End(), leader.End())
	}
	// Mismatched start is refused.
	if err := re.LoadSnapshot(start+1, content); err == nil {
		t.Fatal("snapshot with wrong start accepted")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not persisted: %v %v", fi, err)
	}
}
