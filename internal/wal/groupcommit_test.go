package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFlushCommitDurability checks the contract that matters: after
// FlushCommit(lsn) returns, the log is durable through lsn.
func TestFlushCommitDurability(t *testing.T) {
	l, err := CreateFileLog(filepath.Join(t.TempDir(), "gc.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn := l.Append(Record{Tx: 1, Type: RecCommit})
	if err := l.FlushCommit(lsn); err != nil {
		t.Fatal(err)
	}
	if got := l.FlushedLSN(); got <= lsn {
		t.Fatalf("FlushedLSN = %d after FlushCommit(%d), want > %d", got, lsn, lsn)
	}
	// A second call for the same LSN is a piggyback, not a new force.
	forces := l.Forces()
	if err := l.FlushCommit(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Forces() != forces {
		t.Fatalf("already-durable FlushCommit forced the log (%d -> %d forces)", forces, l.Forces())
	}
	if l.Piggybacks() == 0 {
		t.Fatal("piggyback not counted")
	}
}

// TestGroupCommitBatchesConcurrentCommitters runs many committers through
// a batching window and checks that (a) every committer's record is
// durable when its FlushCommit returns, and (b) far fewer physical forces
// than committers were needed — the group-commit win.
func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	const committers = 32
	l := NewMemLog()
	l.SetCommitWindow(2 * time.Millisecond)
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lsn := l.Append(Record{Tx: uint64(c + 1), Type: RecCommit})
			if err := l.FlushCommit(lsn); err != nil {
				t.Errorf("FlushCommit: %v", err)
				return
			}
			if got := l.FlushedLSN(); got <= lsn {
				t.Errorf("committer %d: FlushedLSN %d <= own lsn %d", c, got, lsn)
			}
		}(c)
	}
	wg.Wait()
	forces, piggy := l.Forces(), l.Piggybacks()
	if forces >= committers {
		t.Fatalf("%d forces for %d committers: group commit batched nothing", forces, committers)
	}
	if forces+piggy < committers {
		t.Fatalf("forces(%d) + piggybacks(%d) < committers(%d)", forces, piggy, committers)
	}
	t.Logf("%d committers -> %d forces, %d piggybacks", committers, forces, piggy)
}

// TestGroupCommitZeroWindowStillCorrect pins the deterministic default:
// with no window, a lone committer forces immediately, exactly once.
func TestGroupCommitZeroWindowStillCorrect(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 5; i++ {
		lsn := l.Append(Record{Tx: uint64(i + 1), Type: RecCommit})
		if err := l.FlushCommit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Forces(); got != 5 {
		t.Fatalf("serial committers forced %d times, want 5", got)
	}
}

// TestFlushCommitPropagatesFlushError checks that an injected flush
// failure reaches the leader and any follower waiting on the same batch.
func TestFlushCommitPropagatesFlushError(t *testing.T) {
	boom := errors.New("log device gone")
	l := NewMemLog()
	l.SetCommitWindow(5 * time.Millisecond)
	l.FlushHook = func(pending int) (int, error) { return 0, boom }
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for c := range errs {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lsn := l.Append(Record{Tx: uint64(c + 1), Type: RecCommit})
			errs[c] = l.FlushCommit(lsn)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("committer %d: err = %v, want %v", c, err, boom)
		}
	}
}
